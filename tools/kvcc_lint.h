// kvcc-lint — the project's determinism & scratch-discipline static checker.
//
// The system's load-bearing guarantee — components, cuts, hierarchies, and
// stats byte-identical across thread counts, cut oracles, and batch sizes —
// is enforced dynamically by the property tests and the sanitizer CI matrix.
// This linter makes the most common ways of *breaking* that guarantee a
// checkable property of the source itself, so a violation fails the analysis
// CI stage before a single test runs.
//
// The checker is a token-level pass (comments and literals stripped, brace /
// angle-bracket tracking, no preprocessor) rather than a full AST walk: the
// container ships no libclang, and the rules below are deliberately local
// enough that token evidence suffices. Where the rule cannot be decided
// statically, the site must carry a `// kvcc-lint: <directive>` justification
// and the justification itself is part of the reviewed source.
//
// Rule families (see docs/ANALYSIS.md for the full rationale):
//   R1 unordered-iteration  range-for over unordered_map/unordered_set.
//                           Iteration order is unspecified and varies across
//                           libstdc++ versions and address layouts, so any
//                           result- or stats-affecting loop over one is a
//                           determinism bug. Silence with
//                           `// kvcc-lint: ordered-independent` once the loop
//                           body is argued order-independent (pure
//                           accumulation, commutative merge, ...).
//   R2 nondeterminism       rand()/srand()/time()/clock()/std::random_device/
//                           std::mt19937/... and pointer-valued container
//                           keys inside src/kvcc/, src/flow/, src/graph/.
//                           Randomness flows only through util/random.h with
//                           seeds threaded from options; pointer keys hash by
//                           address and re-order per run.
//   R3 no-alloc             a function annotated `// kvcc-lint: no-alloc`
//                           must not allocate: new/make_unique/make_shared/
//                           malloc/resize/reserve/... are flagged outright,
//                           and growth calls (push_back/emplace_back/insert/
//                           emplace/append) need a per-line
//                           `// kvcc-lint: reserved` asserting capacity was
//                           pre-reserved. The static twin of the memhook
//                           assertions in memory_tracker_test.
//   R4 cancellation-blind   a function definition that accepts a CancelToken
//                           must use it (poll it, forward it, or store it) —
//                           an accepted-but-ignored token is a silently
//                           uncancellable path. Silence with
//                           `// kvcc-lint: cancel-ok` when ignoring the token
//                           is intended (e.g. a leaf too short to poll).
//   R0 bad-annotation       an unknown `kvcc-lint:` directive is itself an
//                           error, so a typo cannot silently disable a rule.
#ifndef KVCC_TOOLS_KVCC_LINT_H_
#define KVCC_TOOLS_KVCC_LINT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace kvcc {
namespace lint {

/// \brief Identifies the rule family a finding belongs to.
enum class Rule : std::uint8_t {
  kBadAnnotation,       ///< R0: unknown `kvcc-lint:` directive.
  kUnorderedIteration,  ///< R1: range-for over an unordered container.
  kNondeterminism,      ///< R2: wall-clock/libc randomness or pointer keys.
  kNoAlloc,             ///< R3: allocation inside a `no-alloc` function.
  kCancellationBlind,   ///< R4: accepted CancelToken never used.
};

/// \brief Short stable identifier for a rule ("R1-unordered-iteration").
const char* RuleId(Rule rule);

/// \brief One-line human description of what a rule enforces.
const char* RuleDescription(Rule rule);

/// \brief A single lint violation at a source location.
struct Finding {
  std::string path;     ///< File the finding is in (as given to the linter).
  int line = 0;         ///< 1-based line number.
  Rule rule = Rule::kBadAnnotation;  ///< Rule family that fired.
  std::string message;  ///< What was found and how to fix or justify it.

  /// \brief Renders as `path:line: [rule-id] message` for tooling and CI.
  std::string ToString() const;
};

/// \brief Which rule families run. All enabled by default.
struct LintConfig {
  bool r1_unordered_iteration = true;  ///< Toggle R1.
  bool r2_nondeterminism = true;       ///< Toggle R2.
  bool r3_no_alloc = true;             ///< Toggle R3.
  bool r4_cancellation_blind = true;   ///< Toggle R4.

  /// Path fragments R2 is restricted to (determinism-critical layers). A
  /// file whose path contains any fragment is in scope. Empty = everywhere.
  std::vector<std::string> r2_paths = {"src/kvcc/", "src/flow/",
                                       "src/graph/"};

  /// Extra identifiers treated as unordered containers by R1, on top of the
  /// names the linter harvests from declarations in the scanned sources.
  std::vector<std::string> extra_unordered_names;
};

/// \brief Lints one in-memory translation unit.
///
/// \param path Path the findings are reported under; also what R2's path
///   restriction matches against.
/// \param source Full file contents.
/// \param config Rule toggles; defaults enable everything.
/// \return Findings in line order (empty means the file is clean).
std::vector<Finding> LintSource(const std::string& path,
                                const std::string& source,
                                const LintConfig& config = {});

/// \brief Lints files on disk; directories recurse into `*.cc` / `*.h`.
///
/// Files are visited in sorted path order so output is deterministic. To
/// let R1 see container members declared in headers but iterated in other
/// files, all inputs are harvested for unordered declarations before any
/// file is checked.
/// \param paths Files or directories to lint.
/// \param config Rule toggles; defaults enable everything.
/// \return Findings ordered by (path, line).
std::vector<Finding> LintPaths(const std::vector<std::string>& paths,
                               const LintConfig& config = {});

}  // namespace lint
}  // namespace kvcc

#endif  // KVCC_TOOLS_KVCC_LINT_H_
