#!/usr/bin/env bash
# Builds (if needed) and runs the perf snapshot benches, leaving a
# machine-readable BENCH_kvcc.json in the repo root so the benchmark
# trajectory can be tracked across commits.
#
# usage: tools/run_bench.sh [build-dir] [out-file]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"
OUT_FILE="${2:-$REPO_ROOT/BENCH_kvcc.json}"

if [[ ! -d "$BUILD_DIR" ]]; then
  cmake -B "$BUILD_DIR" -S "$REPO_ROOT"
fi
cmake --build "$BUILD_DIR" -j \
  --target bench_scalability_threads bench_micro_kvcc 2>/dev/null ||
  cmake --build "$BUILD_DIR" -j

rm -f "$OUT_FILE"

# Thread-scalability sweep (also validates identical output per thread count).
"$BUILD_DIR/bench_scalability_threads" --threads=1,2,4 --json="$OUT_FILE"

# google-benchmark micro suite, if it was built.
if [[ -x "$BUILD_DIR/bench_micro_kvcc" ]]; then
  MICRO_OUT="$(mktemp)"
  "$BUILD_DIR/bench_micro_kvcc" --benchmark_format=json \
    --benchmark_min_time=0.1 >"$MICRO_OUT" 2>/dev/null
  # Append as a second JSON line: one snapshot object per line.
  tr -d '\n' <"$MICRO_OUT" >>"$OUT_FILE"
  echo >>"$OUT_FILE"
  rm -f "$MICRO_OUT"
fi

echo "perf snapshot written to $OUT_FILE"
