#!/usr/bin/env bash
# Builds (if needed) and runs the perf snapshot benches, leaving a
# machine-readable BENCH_kvcc.json in the repo root so the benchmark
# trajectory can be tracked across commits.
#
# The build is verified (and if necessary forced) to be a Release build:
# a previous revision of this script reused whatever build directory it
# found and silently recorded debug-build numbers. Every snapshot line is
# stamped with the build type and git commit so a stray debug number can
# never masquerade as a trajectory point again.
#
# usage: tools/run_bench.sh [build-dir] [out-file]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"
OUT_FILE="${2:-$REPO_ROOT/BENCH_kvcc.json}"

build_type() {
  sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD_DIR/CMakeCache.txt" 2>/dev/null
}

# Configure fresh, or reconfigure an existing dir whose build type is not
# Release (cmake updates the cached entry in place; ninja/make then rebuild
# whatever the flag change dirties).
if [[ ! -f "$BUILD_DIR/CMakeCache.txt" ]]; then
  cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release
elif [[ "$(build_type)" != "Release" ]]; then
  echo "run_bench.sh: $BUILD_DIR is a '$(build_type)' build; forcing Release" >&2
  cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release
fi

cmake --build "$BUILD_DIR" -j \
  --target bench_scalability_threads bench_batch_throughput \
           bench_stream_latency bench_cancellation bench_cut_oracle \
           bench_preprocessing bench_serving bench_incremental \
           bench_micro_kvcc 2>/dev/null ||
  cmake --build "$BUILD_DIR" -j

BUILD_TYPE="$(build_type)"
if [[ "$BUILD_TYPE" != "Release" ]]; then
  echo "run_bench.sh: refusing to record a '$BUILD_TYPE' build" >&2
  exit 1
fi
# --always --dirty: a snapshot from an uncommitted tree says so.
GIT_COMMIT="$(git -C "$REPO_ROOT" describe --always --dirty 2>/dev/null || echo unknown)"

rm -f "$OUT_FILE"

# Thread-scalability sweep (also validates identical output per thread
# count). Emits two snapshot lines: the planted bushy-recursion workload and
# the shallow single-k-VCC workload whose scaling comes entirely from the
# intra-GLOBAL-CUT probe wavefronts (probe-waste stats included).
"$BUILD_DIR/bench_scalability_threads" --threads=1,2,4 --json="$OUT_FILE" \
  --build-type="$BUILD_TYPE" --commit="$GIT_COMMIT"

# Batch serving throughput on the shared engine.
"$BUILD_DIR/bench_batch_throughput" --threads=1,2,4 --json="$OUT_FILE" \
  --build-type="$BUILD_TYPE" --commit="$GIT_COMMIT"

# Streaming delivery latency (time-to-first/median/last component vs the
# buffered Wait; also re-checks streamed-multiset identity).
"$BUILD_DIR/bench_stream_latency" --threads=1,2,4 --json="$OUT_FILE" \
  --build-type="$BUILD_TYPE" --commit="$GIT_COMMIT"

# Job control: abandonment reclaim latency (must land far under the full
# drain) and bounded-stream backpressure (peak buffer capped at the limit;
# fails hard if the bound is exceeded or a multiset diverges).
"$BUILD_DIR/bench_cancellation" --threads=1,2,4 --json="$OUT_FILE" \
  --build-type="$BUILD_TYPE" --commit="$GIT_COMMIT"

# CutOracle probe engines: per-probe arc inspections and end-to-end time
# for Dinic vs LocalVC vs Hybrid on the hub-heavy and planted scenarios
# (hard-fails if any engine's decomposition diverges from the baseline).
"$BUILD_DIR/bench_cut_oracle" --json="$OUT_FILE" \
  --build-type="$BUILD_TYPE" --commit="$GIT_COMMIT"

# Preprocessing pipeline: bytes-on-disk to first GLOBAL-CUT for the fused
# flat-parallel prune (parallel loader + Afforest + bucket peel) vs the
# staged serial baseline (hard-fails on any output or counter divergence
# across pipelines or thread counts).
"$BUILD_DIR/bench_preprocessing" --threads=1,2,8 --json="$OUT_FILE" \
  --build-type="$BUILD_TYPE" --commit="$GIT_COMMIT"

# kvccd serving: cold decompose vs cache-served repeat through the full
# protocol loop (hard-fails if a cached response is not byte-identical to
# the cold run or the cached path is under the 10x serving gate).
"$BUILD_DIR/bench_serving" --json="$OUT_FILE" \
  --build-type="$BUILD_TYPE" --commit="$GIT_COMMIT"

# Incremental re-decomposition: dirty-region update vs cold hierarchy
# rebuild per single-edge mutation batch (hard-fails if the incremental
# hierarchy ever diverges from a cold rebuild, if a localized edit
# dirties the whole decomposition, or if the speedup is under 2x).
"$BUILD_DIR/bench_incremental" --json="$OUT_FILE" \
  --build-type="$BUILD_TYPE" --commit="$GIT_COMMIT"

# google-benchmark micro suite, if it was built. The report is wrapped in
# an envelope carrying OUR build stamp: the inner context's
# "library_build_type" describes how the google-benchmark *library
# package* was compiled (Debian ships it as "debug"), not this repo.
if [[ -x "$BUILD_DIR/bench_micro_kvcc" ]]; then
  MICRO_OUT="$(mktemp)"
  "$BUILD_DIR/bench_micro_kvcc" --benchmark_format=json \
    --benchmark_min_time=0.1 >"$MICRO_OUT" 2>/dev/null
  # Append as one more JSON line: one snapshot object per line.
  printf '{"bench": "micro_kvcc", "build_type": "%s", "git_commit": "%s", "report": ' \
    "$BUILD_TYPE" "$GIT_COMMIT" >>"$OUT_FILE"
  tr -d '\n' <"$MICRO_OUT" >>"$OUT_FILE"
  printf '}\n' >>"$OUT_FILE"
  rm -f "$MICRO_OUT"
fi

if ! grep -q '"build_type": "Release"' "$OUT_FILE"; then
  echo "run_bench.sh: snapshot is missing the Release stamp" >&2
  exit 1
fi
if ! grep -q '"bench": "scalability_threads_shallow"' "$OUT_FILE" ||
   ! grep -q '"probes_launched"' "$OUT_FILE"; then
  echo "run_bench.sh: snapshot is missing the shallow-recursion wavefront entry" >&2
  exit 1
fi
if ! grep -q '"bench": "stream_latency"' "$OUT_FILE" ||
   ! grep -q '"first_component_ms"' "$OUT_FILE"; then
  echo "run_bench.sh: snapshot is missing the streaming-latency entry" >&2
  exit 1
fi
if ! grep -q '"bench": "cancellation"' "$OUT_FILE" ||
   ! grep -q '"abandon_reclaim_ms"' "$OUT_FILE" ||
   ! grep -q '"bounded_peak_buffered"' "$OUT_FILE"; then
  echo "run_bench.sh: snapshot is missing the job-control entry" >&2
  exit 1
fi
if ! grep -q '"bench": "cut_oracle"' "$OUT_FILE" ||
   ! grep -q '"scenario": "hub_heavy"' "$OUT_FILE" ||
   ! grep -q '"probe_edges_touched"' "$OUT_FILE"; then
  echo "run_bench.sh: snapshot is missing the cut-oracle entry" >&2
  exit 1
fi
if ! grep -q '"bench": "preprocessing"' "$OUT_FILE" ||
   ! grep -q '"first_cut_ms"' "$OUT_FILE" ||
   ! grep -q '"speedup_vs_staged"' "$OUT_FILE"; then
  echo "run_bench.sh: snapshot is missing the preprocessing-pipeline entry" >&2
  exit 1
fi
if ! grep -q '"bench": "serving"' "$OUT_FILE" ||
   ! grep -q '"byte_identical": true' "$OUT_FILE"; then
  echo "run_bench.sh: snapshot is missing the kvccd serving entry" >&2
  exit 1
fi
if ! grep -q '"bench": "incremental"' "$OUT_FILE" ||
   ! grep -q '"dirty_components"' "$OUT_FILE"; then
  echo "run_bench.sh: snapshot is missing the incremental entry" >&2
  exit 1
fi
echo "perf snapshot written to $OUT_FILE (Release @ $GIT_COMMIT)"
