// kvccd — the k-VCC decomposition daemon and its line client.
//
// Subcommands:
//   serve    bind 127.0.0.1:<port> and serve the NDJSON protocol
//            (docs/SERVING.md) until killed; one thread per connection,
//            all connections share one engine, cache, and admission
//            controller
//   client   connect to a running daemon, send one request line per
//            stdin line, and print every response line through each
//            request's terminal line
//
// The daemon prints "listening <port>" on stdout once the socket is
// bound (resolving --port=0 to the ephemeral port), so scripts can start
// it on a free port and scrape the real one — the CI server smoke stage
// does exactly that.

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "server/kvccd.h"
#include "server/tcp_transport.h"

namespace {

using namespace kvcc;

int Usage() {
  std::cerr <<
      "usage: kvccd <command> [args]\n"
      "  serve [--port=P] [--threads=N] [--cache-bytes=B]\n"
      "        [--stream-buffer=L] [--max-interactive=N] [--max-normal=N]\n"
      "        [--max-bulk=N] [--max-total=N] [--bulk-reserve=N]\n"
      "        (--port=0 picks a free port; the bound port is printed as\n"
      "         \"listening <port>\" once ready. --threads: engine\n"
      "         workers, 0 = all hardware threads. --cache-bytes: result\n"
      "         cache budget, 0 disables. Admission caps are 0 =\n"
      "         unlimited; --bulk-reserve keeps the last N total slots\n"
      "         away from bulk jobs, shedding bulk first.)\n"
      "  client --port=P\n"
      "        (sends each stdin line as one request; prints response\n"
      "         lines through the request's terminal line, then reads\n"
      "         the next stdin line. Exit 1 on connect failure.)\n";
  return 2;
}

bool ParseUint64(const std::string& value, std::uint64_t& out) {
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (value.empty() || *end != '\0' || value[0] == '-') return false;
  out = parsed;
  return true;
}

bool ParseUint32(const std::string& value, std::uint32_t& out) {
  std::uint64_t wide = 0;
  if (!ParseUint64(value, wide) || wide > 0xFFFFFFFFull) return false;
  out = static_cast<std::uint32_t>(wide);
  return true;
}

/// Splits "--name=value" option syntax; returns false if `arg` is not
/// that option.
bool OptionValue(const std::string& arg, const std::string& name,
                 std::string& value) {
  const std::string prefix = name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  value = arg.substr(prefix.size());
  return true;
}

int Serve(const std::vector<std::string>& args) {
  std::uint32_t port = 0;
  std::uint32_t threads = 1;
  server::KvccdConfig config;
  for (const std::string& arg : args) {
    std::string value;
    bool ok = true;
    if (OptionValue(arg, "--port", value)) {
      ok = ParseUint32(value, port) && port <= 65535;
    } else if (OptionValue(arg, "--threads", value)) {
      ok = ParseUint32(value, threads);
    } else if (OptionValue(arg, "--cache-bytes", value)) {
      ok = ParseUint64(value, config.cache_bytes);
    } else if (OptionValue(arg, "--stream-buffer", value)) {
      ok = ParseUint32(value, config.stream_buffer_limit);
    } else if (OptionValue(arg, "--max-interactive", value)) {
      ok = ParseUint32(value, config.admission.max_interactive);
    } else if (OptionValue(arg, "--max-normal", value)) {
      ok = ParseUint32(value, config.admission.max_normal);
    } else if (OptionValue(arg, "--max-bulk", value)) {
      ok = ParseUint32(value, config.admission.max_bulk);
    } else if (OptionValue(arg, "--max-total", value)) {
      ok = ParseUint32(value, config.admission.max_total);
    } else if (OptionValue(arg, "--bulk-reserve", value)) {
      ok = ParseUint32(value, config.admission.bulk_reserve);
    } else {
      std::cerr << "kvccd serve: unknown option " << arg << "\n";
      return Usage();
    }
    if (!ok) {
      std::cerr << "kvccd serve: bad value in " << arg << "\n";
      return Usage();
    }
  }
  config.engine_threads = threads;

  server::KvccdServer daemon(config);
  server::TcpListener listener(static_cast<std::uint16_t>(port));
  std::cout << "listening " << listener.BoundPort() << "\n" << std::flush;
  for (;;) {
    std::unique_ptr<server::Transport> connection = listener.Accept();
    if (connection == nullptr) break;
    std::thread([&daemon, conn = std::move(connection)]() mutable {
      daemon.ServeConnection(*conn);
      conn->Close();
    }).detach();
  }
  return 0;
}

/// True for response lines that are followed by more lines of the same
/// request; everything else ends the request's response.
bool IsNonTerminalLine(const std::string& line) {
  return line.rfind("{\"type\":\"component\"", 0) == 0 ||
         line.rfind("{\"type\":\"progress\"", 0) == 0 ||
         line.rfind("{\"type\":\"level\"", 0) == 0;
}

int Client(const std::vector<std::string>& args) {
  std::uint32_t port = 0;
  for (const std::string& arg : args) {
    std::string value;
    if (!OptionValue(arg, "--port", value) || !ParseUint32(value, port) ||
        port == 0 || port > 65535) {
      std::cerr << "kvccd client: expected --port=P, got " << arg << "\n";
      return Usage();
    }
  }
  if (port == 0) {
    std::cerr << "kvccd client: --port=P is required\n";
    return Usage();
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::cerr << "kvccd client: socket() failed\n";
    return 1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::cerr << "kvccd client: cannot connect to 127.0.0.1:" << port
              << "\n";
    ::close(fd);
    return 1;
  }
  server::TcpTransport transport(fd);
  std::string request;
  while (std::getline(std::cin, request)) {
    if (request.find_first_not_of(" \t\r") == std::string::npos) continue;
    if (!transport.WriteLine(request)) {
      std::cerr << "kvccd client: server closed the connection\n";
      return 1;
    }
    std::string response;
    for (;;) {
      if (!transport.ReadLine(response)) {
        std::cerr << "kvccd client: server closed mid-response\n";
        return 1;
      }
      std::cout << response << "\n";
      if (!IsNonTerminalLine(response)) break;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (command == "serve") return Serve(args);
    if (command == "client") return Client(args);
  } catch (const std::exception& e) {
    std::cerr << "kvccd: " << e.what() << "\n";
    return 1;
  }
  return Usage();
}
