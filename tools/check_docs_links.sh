#!/usr/bin/env bash
# Verifies that every repo file pointer in the given markdown docs resolves
# to an existing file, so docs/ARCHITECTURE.md (and friends) cannot drift
# silently when sources move. Two pointer shapes are checked:
#
#   * backtick-quoted tokens that look like a repo path with a known
#     extension, e.g. `src/kvcc/engine.h` or `tests/engine_test.cc` (an
#     optional :line suffix is stripped; directory pointers ending in '/'
#     are checked with -d);
#   * markdown-style cross-references to other repo docs, e.g.
#     [job control](JOB_CONTROL.md) or [arch](docs/ARCHITECTURE.md),
#     resolved relative to the referencing doc first, then the repo root —
#     so a dangling doc-to-doc link fails the same way a dead source
#     pointer does (web URLs are ignored).
#
# usage: tools/check_docs_links.sh <doc.md> [more.md ...]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"

if [[ $# -eq 0 ]]; then
  echo "usage: tools/check_docs_links.sh <doc.md> [more.md ...]" >&2
  exit 2
fi

fail=0
checked=0
for doc in "$@"; do
  if [[ ! -f "$doc" ]]; then
    echo "check_docs_links: no such doc: $doc" >&2
    fail=1
    continue
  fi
  # Backtick-quoted repo paths: a/b style with a code-ish extension, or a
  # trailing slash (directory pointer).
  while IFS= read -r ref; do
    target="${ref%%:*}"  # strip a :line or :symbol suffix
    checked=$((checked + 1))
    if [[ "$target" == */ ]]; then
      if [[ ! -d "$REPO_ROOT/$target" && ! -d "$REPO_ROOT/src/$target" ]]; then
        echo "check_docs_links: $doc points at missing directory '$target'" >&2
        fail=1
      fi
    # Include-style pointers ("kvcc/engine.h") resolve against src/, the
    # library's include root, exactly like the compiler does.
    elif [[ ! -f "$REPO_ROOT/$target" && ! -f "$REPO_ROOT/src/$target" ]]; then
      echo "check_docs_links: $doc points at missing file '$target'" >&2
      fail=1
    fi
  done < <(grep -oE '`[A-Za-z0-9_./-]+(\.(h|cc|cpp|md|sh|yml|json|txt)(:[A-Za-z0-9_:]+)?|/)`' "$doc" \
             | tr -d '`' | sort -u)

  # Markdown cross-references to other docs ([text](FOO.md), optional
  # #anchor). The path charset excludes ':', so web URLs never match.
  doc_dir="$(cd "$(dirname "$doc")" && pwd)"
  while IFS= read -r ref; do
    target="${ref%%#*}"  # strip an anchor
    [[ -z "$target" ]] && continue
    checked=$((checked + 1))
    if [[ ! -f "$doc_dir/$target" && ! -f "$REPO_ROOT/$target" ]]; then
      echo "check_docs_links: $doc has a dangling doc link '$target'" >&2
      fail=1
    fi
  done < <(grep -oE '\]\([A-Za-z0-9_./-]+\.md(#[A-Za-z0-9_-]+)?\)' "$doc" \
             | sed -E 's/^\]\(//; s/\)$//' | sort -u)
done

if [[ $fail -ne 0 ]]; then
  exit 1
fi
echo "check_docs_links: $checked pointer(s) in $# doc(s) resolve"
