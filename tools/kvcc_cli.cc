// kvcc — command-line front end for the library.
//
// Subcommands:
//   decompose   enumerate the k-VCCs of an edge-list graph
//   stream      like decompose, but emit each k-VCC as NDJSON the moment
//               it commits (KvccEngine streaming delivery)
//   batch       serve many (graph, k) jobs on one shared KvccEngine
//   hierarchy   print the full k-VCC hierarchy (cohesive blocking)
//   connectivity  report kappa(G) / test k-vertex-connectivity
//   models      compare k-core / k-ECC / k-VCC on one graph
//   update      replay an edge-mutation script against the incremental
//               dynamic-graph engine (VersionedGraph + IncrementalKvcc)
//   generate    write a synthetic dataset stand-in as an edge list
//
// Graphs are plain SNAP-style edge lists ('#'/'%' comments, "u v" lines).
// Output components are printed one per line in original-id space.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "ecc/kecc.h"
#include "gen/dataset_suite.h"
#include "graph/delta_store.h"
#include "graph/graph_io.h"
#include "graph/k_core.h"
#include "kvcc/connectivity.h"
#include "kvcc/engine.h"
#include "kvcc/hierarchy.h"
#include "kvcc/incremental.h"
#include "kvcc/kvcc_enum.h"
#include "kvcc/stream.h"
#include "kvcc/validation.h"
#include "metrics/cohesion_report.h"
#include "util/timer.h"

namespace {

using namespace kvcc;

int Usage() {
  std::cerr <<
      "usage: kvcc <command> [args]\n"
      "  decompose <graph> <k> [--variant=VCCE*|VCCE|VCCE-N|VCCE-G]\n"
      "            [--threads=N] [--probe-batch=B] [--no-intra-cut]\n"
      "            [--cut-oracle=dinic|localvc|hybrid]\n"
      "            [--format=snap|internal]\n"
      "            [--deadline-ms=D] [--validate] [--stats] [--quiet]\n"
      "            (--threads: 1 = serial, 0 = all hardware threads;\n"
      "             --format: snap = parallel whitespace edge-list loader\n"
      "             (labels sorted by raw id, uses --threads), internal =\n"
      "             serial loader with first-seen labels (default);\n"
      "             --probe-batch: probes per intra-cut wavefront, 0 =\n"
      "             adaptive; --no-intra-cut: disable intra-GLOBAL-CUT\n"
      "             probe parallelism; --cut-oracle: per-probe flow engine\n"
      "             (default hybrid), output is identical for all three;\n"
      "             --deadline-ms: wall-clock budget,\n"
      "             exit 3 with partial stats once it elapses)\n"
      "  stream <graph> <k> [--variant=VCCE*|VCCE|VCCE-N|VCCE-G]\n"
      "         [--threads=N] [--stable-order] [--probe-batch=B]\n"
      "         [--no-intra-cut] [--cut-oracle=dinic|localvc|hybrid]\n"
      "         [--format=snap|internal]\n"
      "         [--deadline-ms=D] [--stream-buffer=L]\n"
      "         [--priority=interactive|normal|bulk] [--stats]\n"
      "         (NDJSON: one {\"type\": \"component\", ...} line per k-VCC\n"
      "          as soon as it commits, then one \"complete\" line;\n"
      "          --stable-order reproduces the serial emission order;\n"
      "          --stream-buffer bounds undelivered components (0 =\n"
      "          unbounded, producer blocks when full); --deadline-ms\n"
      "          cancels mid-stream, closing with a \"cancelled\" line;\n"
      "          --threads defaults to 0 = all hardware threads)\n"
      "  batch <jobs-file> [--variant=...] [--threads=N] [--probe-batch=B]\n"
      "        [--no-intra-cut] [--cut-oracle=dinic|localvc|hybrid]\n"
      "        [--format=snap|internal] [--deadline-ms=D]\n"
      "        [--priority=interactive|normal|bulk] [--stats] [--quiet]\n"
      "        (jobs-file lines: \"<graph> <k> [variant]\"; '#' comments.\n"
      "         All jobs run concurrently on one shared engine; output\n"
      "         order and content match per-job serial decompose runs.\n"
      "         --variant is the default preset for lines naming none;\n"
      "         --deadline-ms/--priority apply to every job in the file;\n"
      "         deadline-cancelled jobs are reported and skipped.)\n"
      "  hierarchy <graph> [max_k] [--threads=N]\n"
      "  connectivity <graph> [k]\n"
      "  models <graph> <k>\n"
      "  update <graph> <mutations> [k] [--threads=N] [--check]\n"
      "         [--stats] [--quiet]\n"
      "         (mutations file lines: \"+ u v\" stages an insert,\n"
      "          \"- u v\" a delete, \"apply\" runs the staged batch\n"
      "          through the incremental engine, \"compact\" folds the\n"
      "          delta memtable; '#' comments. Endpoints use the graph\n"
      "          file's original ids; unseen ids grow the graph. Each\n"
      "          apply prints the incremental outcome counters; with k,\n"
      "          the final k-VCCs are printed. --check re-verifies every\n"
      "          apply against a cold hierarchy build, exit 1 on any\n"
      "          divergence)\n"
      "  generate <dataset> <out-file> [scale]\n"
      "  datasets\n";
  return 2;
}

/// Strict unsigned parse: pure digits only, capped. strtoul alone accepts
/// a leading '-' (wrapping) and trailing junk, so "-1" or "12abc" would
/// otherwise slip through as enormous or truncated values.
bool ParseUint(const std::string& value, unsigned long cap,
               std::uint32_t& out) {
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(value.c_str(), &end, 10);
  if (value.empty() || *end != '\0' || value[0] == '-' || parsed > cap) {
    return false;
  }
  out = static_cast<std::uint32_t>(parsed);
  return true;
}

/// Parses a --threads=N value; prints an error and returns false on junk.
bool ParseThreads(const std::string& value, std::uint32_t& threads) {
  if (!ParseUint(value, 1024, threads)) {
    std::cerr << "error: --threads expects an integer in [0, 1024] "
                 "(0 = all hardware threads)\n";
    return false;
  }
  return true;
}

/// Parses a --probe-batch=B value; prints an error and returns false on
/// junk.
bool ParseProbeBatch(const std::string& value, std::uint32_t& batch) {
  if (!ParseUint(value, 1u << 20, batch)) {
    std::cerr << "error: --probe-batch expects an integer in [0, 2^20] "
                 "(0 = adaptive)\n";
    return false;
  }
  return true;
}

/// Parses a --deadline-ms=D value; prints an error and returns false on
/// junk.
bool ParseDeadlineMs(const std::string& value, std::uint32_t& deadline_ms) {
  if (!ParseUint(value, 0xffffffffUL, deadline_ms)) {
    std::cerr << "error: --deadline-ms expects a non-negative integer "
                 "(0 = no deadline)\n";
    return false;
  }
  return true;
}

/// Parses a --priority= class name; prints an error and returns false on
/// junk.
bool ParsePriority(const std::string& value, JobPriority& priority) {
  if (value == "interactive") {
    priority = JobPriority::kInteractive;
  } else if (value == "normal") {
    priority = JobPriority::kNormal;
  } else if (value == "bulk") {
    priority = JobPriority::kBulk;
  } else {
    std::cerr << "error: --priority expects interactive, normal, or bulk\n";
    return false;
  }
  return true;
}

/// Input-file loader selection (--format=).
enum class GraphFormat {
  kInternal,  ///< serial reader, labels in first-seen order (default)
  kSnap,      ///< parallel whitespace reader, labels sorted by raw id
};

/// Flags shared by the decompose and stream subcommands: --variant=,
/// --threads=, --probe-batch=, --format=, --no-intra-cut, --stats. Parsed
/// into state
/// that Options() applies *after* the whole command line is consumed, so a
/// later --variant= cannot clobber the effect of an earlier flag (each
/// subcommand likewise applies its own extra flags post-loop).
struct CommonEnumFlags {
  explicit CommonEnumFlags(std::uint32_t default_threads)
      : threads(default_threads) {}

  enum class Parse { kHandled, kNotMine, kError };

  Parse TryParse(const std::string& arg) {
    if (arg.rfind("--variant=", 0) == 0) {
      variant = KvccOptions::FromVariantName(arg.substr(10));
      return Parse::kHandled;
    }
    if (arg.rfind("--threads=", 0) == 0) {
      return ParseThreads(arg.substr(10), threads) ? Parse::kHandled
                                                   : Parse::kError;
    }
    if (arg.rfind("--probe-batch=", 0) == 0) {
      return ParseProbeBatch(arg.substr(14), probe_batch) ? Parse::kHandled
                                                          : Parse::kError;
    }
    if (arg.rfind("--cut-oracle=", 0) == 0) {
      // Throws like FromVariantName; the top-level handler reports it.
      cut_oracle = CutOracleKindFromName(arg.substr(13));
      return Parse::kHandled;
    }
    if (arg.rfind("--deadline-ms=", 0) == 0) {
      return ParseDeadlineMs(arg.substr(14), deadline_ms) ? Parse::kHandled
                                                          : Parse::kError;
    }
    if (arg.rfind("--priority=", 0) == 0) {
      return ParsePriority(arg.substr(11), priority) ? Parse::kHandled
                                                     : Parse::kError;
    }
    if (arg.rfind("--format=", 0) == 0) {
      const std::string name = arg.substr(9);
      if (name == "snap") {
        format = GraphFormat::kSnap;
      } else if (name == "internal") {
        format = GraphFormat::kInternal;
      } else {
        std::cerr << "error: --format expects snap or internal\n";
        return Parse::kError;
      }
      return Parse::kHandled;
    }
    if (arg == "--no-intra-cut") {
      intra_cut = false;
      return Parse::kHandled;
    }
    if (arg == "--stats") {
      stats = true;
      return Parse::kHandled;
    }
    return Parse::kNotMine;
  }

  /// Applies the shared execution knobs, leaving the variant alone —
  /// batch mode resolves its variant per jobs-file line and layers these
  /// on top.
  void ApplyExecutionKnobs(KvccOptions& options) const {
    options.probe_batch_size = probe_batch;
    options.intra_cut_parallelism = intra_cut;
    options.cut_oracle = cut_oracle;
    options.deadline_ms = deadline_ms;
    options.priority = priority;
  }

  /// The selected variant with the shared execution knobs applied.
  KvccOptions Options() const {
    KvccOptions options = variant;
    ApplyExecutionKnobs(options);
    return options;
  }

  /// Loads a graph per --format. The snap path reuses --threads, so one
  /// flag scales both loading and enumeration.
  Graph LoadGraph(const std::string& path) const {
    return format == GraphFormat::kSnap
               ? ReadEdgeListFileParallel(path, threads)
               : ReadEdgeListFile(path);
  }

  KvccOptions variant = KvccOptions::VcceStar();
  GraphFormat format = GraphFormat::kInternal;
  std::uint32_t threads;
  std::uint32_t probe_batch = 0;
  CutOracleKind cut_oracle = CutOracleKind::kHybrid;
  std::uint32_t deadline_ms = 0;
  JobPriority priority = JobPriority::kNormal;
  bool intra_cut = true;
  bool stats = false;
};

void PrintComponents(const Graph& g,
                     const std::vector<std::vector<VertexId>>& components) {
  for (std::size_t i = 0; i < components.size(); ++i) {
    std::cout << "component " << i << " (" << components[i].size() << "):";
    for (VertexId v : components[i]) std::cout << " " << g.LabelOf(v);
    std::cout << "\n";
  }
}

int CmdDecompose(const std::vector<std::string>& args) {
  if (args.size() < 2) return Usage();
  CommonEnumFlags flags(/*default_threads=*/1);
  bool validate = false, quiet = false;
  for (std::size_t i = 2; i < args.size(); ++i) {
    const CommonEnumFlags::Parse parsed = flags.TryParse(args[i]);
    if (parsed == CommonEnumFlags::Parse::kError) return 2;
    if (parsed == CommonEnumFlags::Parse::kHandled) continue;
    if (args[i] == "--validate") {
      validate = true;
    } else if (args[i] == "--quiet") {
      quiet = true;
    } else {
      return Usage();
    }
  }
  const bool stats = flags.stats;
  const Graph g = flags.LoadGraph(args[0]);
  const auto k = static_cast<std::uint32_t>(std::stoul(args[1]));
  KvccOptions options = flags.Options();
  options.num_threads = flags.threads;
  Timer timer;
  KvccResult result;
  try {
    result = EnumerateKVccs(g, k, options);
  } catch (const JobCancelled& cancelled) {
    std::cerr << "cancelled: " << cancelled.what() << " after "
              << timer.ElapsedMillis() << "ms ("
              << cancelled.partial_stats().kvccs_found
              << " k-VCCs found before the deadline)\n";
    if (stats) std::cerr << cancelled.partial_stats().ToString();
    return 3;
  }
  std::cerr << "|V|=" << g.NumVertices() << " |E|=" << g.NumEdges() << " k="
            << k << ": " << result.components.size() << " k-VCCs in "
            << timer.ElapsedMillis() << "ms\n";
  if (!quiet) PrintComponents(g, result.components);
  if (stats) std::cerr << result.stats.ToString();
  if (validate) {
    const ValidationReport report =
        ValidateKvccResult(g, k, result.components);
    if (report.ok) {
      std::cerr << "validation: OK\n";
    } else {
      std::cerr << "validation FAILED:\n";
      for (const auto& violation : report.violations) {
        std::cerr << "  - " << violation << "\n";
      }
      return 1;
    }
  }
  return 0;
}

int CmdStream(const std::vector<std::string>& args) {
  if (args.size() < 2) return Usage();
  // Streaming defaults to all hardware threads (the serving shape).
  CommonEnumFlags flags(/*default_threads=*/0);
  bool stable_order = false;
  std::uint32_t stream_buffer = 0;
  for (std::size_t i = 2; i < args.size(); ++i) {
    const CommonEnumFlags::Parse parsed = flags.TryParse(args[i]);
    if (parsed == CommonEnumFlags::Parse::kError) return 2;
    if (parsed == CommonEnumFlags::Parse::kHandled) continue;
    if (args[i] == "--stable-order") {
      stable_order = true;
    } else if (args[i].rfind("--stream-buffer=", 0) == 0) {
      if (!ParseUint(args[i].substr(16), 1u << 20, stream_buffer)) {
        std::cerr << "error: --stream-buffer expects an integer in "
                     "[0, 2^20] (0 = unbounded)\n";
        return 2;
      }
    } else {
      return Usage();
    }
  }
  const bool stats = flags.stats;
  const Graph g = flags.LoadGraph(args[0]);
  std::uint32_t k = 0;
  if (!ParseUint(args[1], 0xffffffffUL, k) || k == 0) {
    std::cerr << "error: stream expects an integer k >= 1\n";
    return 2;
  }
  KvccOptions options = flags.Options();
  options.stable_order = stable_order;
  options.stream_buffer_limit = stream_buffer;

  KvccEngine engine(flags.threads);
  Timer timer;
  ResultStream result_stream = engine.SubmitStream(g, k, options);
  double first_ms = -1.0;
  std::size_t count = 0;
  try {
    while (std::optional<StreamedComponent> c = result_stream.Next()) {
      if (count == 0) first_ms = timer.ElapsedMillis();
      std::cout << "{\"type\": \"component\", \"sequence\": " << c->sequence
                << ", \"size\": " << c->vertices.size()
                << ", \"vertices\": [";
      for (std::size_t i = 0; i < c->vertices.size(); ++i) {
        if (i != 0) std::cout << ", ";
        std::cout << g.LabelOf(c->vertices[i]);
      }
      std::cout << "]}\n";
      ++count;
    }
  } catch (const JobCancelled& cancelled) {
    // Deadline fired mid-stream: the components above were delivered and
    // stay valid; close the NDJSON stream with a distinct outcome line.
    std::cout << "{\"type\": \"cancelled\", \"components\": " << count
              << ", \"elapsed_ms\": " << timer.ElapsedMillis();
    if (stats) {
      std::cout << ", \"partial_stats\": "
                << cancelled.partial_stats().ToJson();
    }
    std::cout << "}\n";
    std::cerr << "cancelled: " << cancelled.what() << " (" << count
              << " k-VCCs streamed before the deadline)\n";
    return 3;
  }
  const double total_ms = timer.ElapsedMillis();
  std::cout << "{\"type\": \"complete\", \"components\": " << count
            << ", \"first_component_ms\": " << (count ? first_ms : total_ms)
            << ", \"elapsed_ms\": " << total_ms;
  if (stats) std::cout << ", \"stats\": " << result_stream.Stats().ToJson();
  std::cout << "}\n";
  std::cerr << "|V|=" << g.NumVertices() << " |E|=" << g.NumEdges()
            << " k=" << k << ": streamed " << count << " k-VCCs in "
            << total_ms << "ms (first after "
            << (count ? first_ms : total_ms) << "ms, "
            << engine.num_workers() << " workers"
            << (options.stable_order ? ", stable order" : "") << ")\n";
  return 0;
}

/// One parsed line of a batch jobs file.
struct BatchJobLine {
  std::string graph_path;
  std::uint32_t k = 0;
  KvccOptions options;
};

int CmdBatch(const std::vector<std::string>& args) {
  if (args.empty()) return Usage();
  // Batch mode defaults to all hardware threads; the shared enumeration
  // flags (--threads/--probe-batch/--no-intra-cut/--deadline-ms/
  // --priority/--variant/--stats) parse exactly as in decompose/stream,
  // with --variant acting as the default preset for jobs-file lines that
  // name none.
  CommonEnumFlags flags(/*default_threads=*/0);
  bool quiet = false;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const CommonEnumFlags::Parse parsed = flags.TryParse(args[i]);
    if (parsed == CommonEnumFlags::Parse::kError) return 2;
    if (parsed == CommonEnumFlags::Parse::kHandled) continue;
    if (args[i] == "--quiet") {
      quiet = true;
    } else {
      return Usage();
    }
  }
  const bool stats = flags.stats;

  std::ifstream in(args[0]);
  if (!in) {
    std::cerr << "error: cannot open jobs file " << args[0] << "\n";
    return 1;
  }
  std::vector<BatchJobLine> jobs;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream fields(line);
    BatchJobLine job;
    if (!(fields >> job.graph_path) || job.graph_path[0] == '#' ||
        job.graph_path[0] == '%') {
      continue;  // Blank or comment line.
    }
    std::string k_field, variant;
    if (!(fields >> k_field) ||
        !ParseUint(k_field, 0xffffffffUL, job.k) || job.k == 0) {
      std::cerr << "error: " << args[0] << ":" << line_no
                << ": expected \"<graph> <k> [variant]\" with k >= 1\n";
      return 2;
    }
    job.options = fields >> variant ? KvccOptions::FromVariantName(variant)
                                    : flags.variant;
    flags.ApplyExecutionKnobs(job.options);
    jobs.push_back(std::move(job));
  }
  if (jobs.empty()) {
    std::cerr << "error: no jobs in " << args[0] << "\n";
    return 1;
  }

  // Load each distinct graph once; jobs borrow from the cache (std::map
  // nodes are pointer-stable while the engine runs).
  std::map<std::string, Graph> graphs;
  for (const BatchJobLine& job : jobs) {
    if (!graphs.count(job.graph_path)) {
      graphs.emplace(job.graph_path, flags.LoadGraph(job.graph_path));
    }
  }

  KvccEngine engine(flags.threads);
  Timer timer;
  std::vector<KvccEngine::JobId> ids;
  ids.reserve(jobs.size());
  for (const BatchJobLine& job : jobs) {
    ids.push_back(engine.Submit(graphs.at(job.graph_path), job.k,
                                job.options));
  }
  KvccStats totals;
  std::size_t total_components = 0;
  std::size_t cancelled_jobs = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const Graph& g = graphs.at(jobs[i].graph_path);
    KvccResult result;
    try {
      result = engine.Wait(ids[i]);
    } catch (const JobCancelled& cancelled) {
      // A deadline only fails its own job; the rest of the batch stands.
      std::cerr << "job " << i << ": " << jobs[i].graph_path
                << " k=" << jobs[i].k << ": CANCELLED ("
                << cancelled.what() << ")\n";
      totals.Add(cancelled.partial_stats());
      ++cancelled_jobs;
      continue;
    }
    std::cerr << "job " << i << ": " << jobs[i].graph_path
              << " |V|=" << g.NumVertices() << " |E|=" << g.NumEdges()
              << " k=" << jobs[i].k << ": " << result.components.size()
              << " k-VCCs\n";
    if (!quiet) PrintComponents(g, result.components);
    totals.Add(result.stats);
    total_components += result.components.size();
  }
  std::cerr << jobs.size() << " jobs (" << total_components
            << " k-VCCs, " << cancelled_jobs << " cancelled) on "
            << engine.num_workers() << " workers in "
            << timer.ElapsedMillis() << "ms\n";
  if (stats) std::cerr << totals.ToString();
  return cancelled_jobs == 0 ? 0 : 3;
}

int CmdHierarchy(const std::vector<std::string>& args) {
  if (args.empty()) return Usage();
  std::uint32_t max_k = 0;
  std::uint32_t threads = 1;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i].rfind("--threads=", 0) == 0) {
      if (!ParseThreads(args[i].substr(10), threads)) return 2;
    } else if (!ParseUint(args[i], 0xffffffffUL, max_k)) {
      std::cerr << "error: hierarchy max_k must be a non-negative integer\n";
      return 2;
    }
  }
  const Graph g = ReadEdgeListFile(args[0]);
  KvccOptions options;
  options.num_threads = threads;
  const KvccHierarchy hierarchy = BuildKvccHierarchy(g, max_k, options);
  for (std::uint32_t k = 1; k <= hierarchy.MaxLevel(); ++k) {
    const auto& nodes = hierarchy.NodesAtLevel(k);
    std::cout << "level " << k << ": " << nodes.size() << " component(s)";
    std::size_t largest = 0;
    for (std::size_t index : nodes) {
      largest = std::max(largest, hierarchy.nodes[index].vertices.size());
    }
    std::cout << ", largest " << largest << "\n";
  }
  return 0;
}

int CmdConnectivity(const std::vector<std::string>& args) {
  if (args.empty()) return Usage();
  const Graph g = ReadEdgeListFile(args[0]);
  if (args.size() > 1) {
    const auto k = static_cast<std::uint32_t>(std::stoul(args[1]));
    const bool yes = IsKVertexConnected(g, k);
    std::cout << (yes ? "yes" : "no") << ": graph is "
              << (yes ? "" : "NOT ") << k << "-vertex-connected\n";
    return yes ? 0 : 1;
  }
  std::cout << "kappa(G) = " << VertexConnectivity(g) << "\n";
  return 0;
}

int CmdModels(const std::vector<std::string>& args) {
  if (args.size() < 2) return Usage();
  const Graph g = ReadEdgeListFile(args[0]);
  const auto k = static_cast<std::uint32_t>(std::stoul(args[1]));
  const auto core = KCoreVertices(g, k);
  const auto eccs = KEdgeConnectedComponents(g, k);
  const auto vccs = EnumerateKVccs(g, k).components;
  std::cout << "k=" << k << "\n  k-core: " << core.size() << " vertices\n"
            << "  k-ECCs: " << eccs.size() << "\n  k-VCCs: " << vccs.size()
            << "\n";
  const CohesionSummary summary = SummarizeComponents(g, vccs);
  std::cout << "  k-VCC avg diameter " << summary.avg_diameter
            << ", avg density " << summary.avg_edge_density
            << ", avg clustering " << summary.avg_clustering << "\n";
  return 0;
}

/// Replays an edge-mutation script against the dynamic-graph stack:
/// VersionedGraph (snapshot-isolated delta store) + IncrementalKvcc
/// (dirty-region re-decomposition) on a shared engine. The same stack
/// kvccd serves; docs/DYNAMIC.md describes the algorithm.
int CmdUpdate(const std::vector<std::string>& args) {
  if (args.size() < 2) return Usage();
  std::uint32_t k = 0;
  std::uint32_t threads = 1;
  bool check = false, stats = false, quiet = false;
  bool have_k = false;
  for (std::size_t i = 2; i < args.size(); ++i) {
    if (args[i].rfind("--threads=", 0) == 0) {
      if (!ParseThreads(args[i].substr(10), threads)) return 2;
    } else if (args[i] == "--check") {
      check = true;
    } else if (args[i] == "--stats") {
      stats = true;
    } else if (args[i] == "--quiet") {
      quiet = true;
    } else if (!have_k && ParseUint(args[i], 0xffffffffUL, k) && k >= 1) {
      have_k = true;
    } else {
      return Usage();
    }
  }

  // The delta store works in root-id space; keep the file's original ids
  // as a label table of our own so output matches the other subcommands.
  const Graph loaded = ReadEdgeListFile(args[0]);
  std::vector<VertexId> labels(loaded.NumVertices());
  std::map<VertexId, VertexId> label_to_root;
  for (VertexId v = 0; v < loaded.NumVertices(); ++v) {
    labels[v] = loaded.LabelOf(v);
    label_to_root[labels[v]] = v;
  }
  const auto resolve = [&](VertexId label) {
    const auto [it, fresh] =
        label_to_root.emplace(label, static_cast<VertexId>(labels.size()));
    if (fresh) labels.push_back(label);
    return it->second;
  };

  VersionedGraph vg(loaded.WithIdentityLabels());
  IncrementalKvcc state;
  KvccEngine engine(threads);
  engine.SubmitIncremental(state, vg);  // initial (full) build

  std::ifstream in(args[1]);
  if (!in) {
    std::cerr << "error: cannot open mutations file " << args[1] << "\n";
    return 1;
  }

  std::vector<std::pair<VertexId, VertexId>> inserts, deletes;
  std::size_t batch_no = 0;
  std::size_t line_no = 0;
  std::string line;
  const auto apply = [&]() -> bool {
    if (inserts.empty() && deletes.empty()) return true;
    ++batch_no;
    const std::size_t applied =
        vg.InsertEdges(inserts) + vg.DeleteEdges(deletes);
    inserts.clear();
    deletes.clear();
    const IncrementalOutcome outcome = engine.SubmitIncremental(state, vg);
    std::cout << "batch " << batch_no << ": version=" << outcome.version
              << " applied=" << applied
              << " dirty_components=" << outcome.dirty_components
              << " reruns=" << outcome.incremental_reruns
              << " full_rebuild=" << (outcome.full_rebuild ? "yes" : "no")
              << " dirty_levels=[";
    for (std::size_t i = 0; i < outcome.dirty_levels.size(); ++i) {
      std::cout << (i ? "," : "") << outcome.dirty_levels[i];
    }
    std::cout << "]\n";
    if (check) {
      const KvccHierarchy cold = BuildKvccHierarchy(*state.CurrentGraph());
      const KvccHierarchy& warm = *state.Hierarchy();
      const std::uint32_t top = std::max(cold.MaxLevel(), warm.MaxLevel());
      for (std::uint32_t level = 1; level <= top; ++level) {
        if (cold.ComponentsAtLevel(level) !=
            warm.ComponentsAtLevel(level)) {
          std::cerr << "check FAILED: batch " << batch_no << " level "
                    << level
                    << ": incremental result diverges from cold build\n";
          return false;
        }
      }
    }
    return true;
  };

  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream fields(line);
    std::string op;
    if (!(fields >> op) || op[0] == '#' || op[0] == '%') continue;
    if (op == "apply") {
      if (!apply()) return 1;
      continue;
    }
    if (op == "compact") {
      if (!apply()) return 1;  // a compact closes any staged batch
      std::cout << "compact: folded=" << vg.Compact()
                << " version=" << vg.Version() << "\n";
      continue;
    }
    VertexId u = 0, v = 0;
    if ((op != "+" && op != "-") || !(fields >> u >> v) || u == v) {
      std::cerr << "error: " << args[1] << ":" << line_no
                << ": expected \"+ u v\", \"- u v\", \"apply\", or "
                   "\"compact\"\n";
      return 2;
    }
    auto& staged = op == "+" ? inserts : deletes;
    staged.emplace_back(resolve(u), resolve(v));
  }
  if (!apply()) return 1;  // trailing staged ops apply at EOF

  const Graph& g = *state.CurrentGraph();
  const KvccHierarchy& hierarchy = *state.Hierarchy();
  std::cerr << "final: |V|=" << g.NumVertices() << " |E|=" << g.NumEdges()
            << " version=" << vg.Version() << " batches=" << batch_no
            << "\n";
  for (std::uint32_t level = 1; level <= hierarchy.MaxLevel(); ++level) {
    std::cout << "level " << level << ": "
              << hierarchy.NodesAtLevel(level).size() << " component(s)\n";
  }
  if (have_k && !quiet) {
    const auto components = hierarchy.ComponentsAtLevel(k);
    for (std::size_t i = 0; i < components.size(); ++i) {
      std::cout << "component " << i << " (" << components[i].size()
                << "):";
      for (VertexId v : components[i]) std::cout << " " << labels[v];
      std::cout << "\n";
    }
  }
  if (check) std::cout << "check: OK (" << batch_no << " batches)\n";
  if (stats) std::cerr << state.Stats().ToString();
  return 0;
}

int CmdGenerate(const std::vector<std::string>& args) {
  if (args.size() < 2) return Usage();
  const double scale = args.size() > 2 ? std::atof(args[2].c_str()) : 1.0;
  const Graph g = GenerateDataset(args[0], scale);
  WriteEdgeListFile(g, args[1]);
  std::cerr << "wrote " << args[1] << ": |V|=" << g.NumVertices()
            << " |E|=" << g.NumEdges() << "\n";
  return 0;
}

int CmdDatasets() {
  for (const auto& name : DatasetNames()) {
    const DatasetInfo info = GetDatasetInfo(name);
    std::cout << name << "\t" << info.family << "\t"
              << info.paper_counterpart << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (command == "decompose") return CmdDecompose(args);
    if (command == "stream") return CmdStream(args);
    if (command == "batch") return CmdBatch(args);
    if (command == "hierarchy") return CmdHierarchy(args);
    if (command == "connectivity") return CmdConnectivity(args);
    if (command == "models") return CmdModels(args);
    if (command == "update") return CmdUpdate(args);
    if (command == "generate") return CmdGenerate(args);
    if (command == "datasets") return CmdDatasets();
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
  return Usage();
}
