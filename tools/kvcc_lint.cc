// Command-line driver for kvcc-lint (see kvcc_lint.h for the rules).
//
// Usage:
//   kvcc_lint [--rules=R1,R2,R3,R4] [--list-rules] <file-or-dir>...
//
// Exit status: 0 clean, 1 findings, 2 usage/IO error. Output is one
// `path:line: [rule-id] message` line per finding, in (path, line) order,
// so CI logs are stable and diffable.
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "kvcc_lint.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: kvcc_lint [--rules=R1,R2,R3,R4] [--list-rules] <path>...\n"
      "  Lints .cc/.h files (directories recurse) against the project's\n"
      "  determinism and scratch-discipline rules. --rules restricts which\n"
      "  families run (annotation hygiene R0 always runs).\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  kvcc::lint::LintConfig config;
  std::vector<std::string> paths;
  bool rules_restricted = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      using kvcc::lint::Rule;
      for (Rule rule :
           {Rule::kBadAnnotation, Rule::kUnorderedIteration,
            Rule::kNondeterminism, Rule::kNoAlloc, Rule::kCancellationBlind}) {
        std::printf("%-24s %s\n", kvcc::lint::RuleId(rule),
                    kvcc::lint::RuleDescription(rule));
      }
      return 0;
    }
    if (arg.rfind("--rules=", 0) == 0) {
      if (!rules_restricted) {
        config.r1_unordered_iteration = false;
        config.r2_nondeterminism = false;
        config.r3_no_alloc = false;
        config.r4_cancellation_blind = false;
        rules_restricted = true;
      }
      const std::string list = arg.substr(8);
      for (std::size_t pos = 0; pos < list.size();) {
        std::size_t comma = list.find(',', pos);
        if (comma == std::string::npos) comma = list.size();
        const std::string rule = list.substr(pos, comma - pos);
        if (rule == "R1") {
          config.r1_unordered_iteration = true;
        } else if (rule == "R2") {
          config.r2_nondeterminism = true;
        } else if (rule == "R3") {
          config.r3_no_alloc = true;
        } else if (rule == "R4") {
          config.r4_cancellation_blind = true;
        } else {
          std::fprintf(stderr, "kvcc_lint: unknown rule '%s'\n",
                       rule.c_str());
          return Usage();
        }
        pos = comma + 1;
      }
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "kvcc_lint: unknown flag '%s'\n", arg.c_str());
      return Usage();
    }
    paths.push_back(arg);
  }
  if (paths.empty()) return Usage();

  std::vector<kvcc::lint::Finding> findings;
  try {
    findings = kvcc::lint::LintPaths(paths, config);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  for (const auto& finding : findings) {
    std::printf("%s\n", finding.ToString().c_str());
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "kvcc_lint: %zu finding(s)\n", findings.size());
    return 1;
  }
  return 0;
}
