#include "kvcc_lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

namespace kvcc {
namespace lint {
namespace {

// ---------------------------------------------------------------------------
// Source preprocessing: strip comments and literals, harvest annotations.
// ---------------------------------------------------------------------------

// The linter's view of one file: `code` is the original text with comment
// bodies and string/char-literal contents replaced by spaces (newlines kept,
// so offsets map 1:1 to lines), and `directives` maps each line to the
// `kvcc-lint:` directives attached to it. A directive written on a line with
// code applies to that line; a directive on a comment-only line applies to
// the next line that has code (so a justification can sit above the site).
struct Preprocessed {
  std::string code;
  std::map<int, std::vector<std::string>> directives;
};

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Extracts every directive list of the form `kvcc-lint: a, b` from one
// comment body. Only a tag at the start of its comment line counts (modulo
// leading whitespace and `*`/`/` continuation marks), so documentation that
// merely *mentions* the annotation syntax mid-sentence does not parse as an
// annotation.
void ParseDirectives(const std::string& comment, std::vector<std::string>* out) {
  const std::string kTag = "kvcc-lint:";
  std::size_t pos = 0;
  while ((pos = comment.find(kTag, pos)) != std::string::npos) {
    bool at_line_start = true;
    for (std::size_t back = pos; back-- > 0;) {
      const char c = comment[back];
      if (c == '\n') break;
      if (c != ' ' && c != '\t' && c != '*' && c != '/') {
        at_line_start = false;
        break;
      }
    }
    if (!at_line_start) {
      pos += kTag.size();
      continue;
    }
    pos += kTag.size();
    // Directives are lower-case words/dashes, comma-separated.
    while (pos < comment.size()) {
      while (pos < comment.size() &&
             (comment[pos] == ' ' || comment[pos] == ',')) {
        ++pos;
      }
      std::string word;
      while (pos < comment.size() &&
             (IsIdentChar(comment[pos]) || comment[pos] == '-')) {
        word.push_back(comment[pos]);
        ++pos;
      }
      if (word.empty()) break;
      out->push_back(word);
      // Only a comma continues the directive list.
      std::size_t peek = pos;
      while (peek < comment.size() && comment[peek] == ' ') ++peek;
      if (peek >= comment.size() || comment[peek] != ',') break;
      pos = peek;
    }
  }
}

Preprocessed Preprocess(const std::string& source) {
  Preprocessed result;
  result.code.reserve(source.size());

  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string raw_delim;          // Delimiter of the active raw string.
  std::string comment;            // Body of the comment being scanned.
  int line = 1;
  bool line_has_code = false;     // Did the current line emit non-space code?
  // Directives seen on comment-only lines, pending attachment to the next
  // line that has code.
  std::vector<std::string> pending;

  auto end_comment = [&](int at_line) {
    std::vector<std::string> parsed;
    ParseDirectives(comment, &parsed);
    comment.clear();
    if (parsed.empty()) return;
    if (line_has_code) {
      auto& dst = result.directives[at_line];
      dst.insert(dst.end(), parsed.begin(), parsed.end());
    } else {
      pending.insert(pending.end(), parsed.begin(), parsed.end());
    }
  };

  auto newline = [&] {
    result.code.push_back('\n');
    ++line;
    line_has_code = false;
  };

  for (std::size_t i = 0; i < source.size(); ++i) {
    const char c = source[i];
    const char next = i + 1 < source.size() ? source[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          result.code.append("  ");
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          result.code.append("  ");
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !IsIdentChar(source[i - 1]))) {
          // Raw string literal: R"delim( ... )delim".
          std::size_t open = source.find('(', i + 2);
          if (open == std::string::npos) {
            result.code.push_back(c);
            break;
          }
          raw_delim = ")" + source.substr(i + 2, open - (i + 2)) + "\"";
          state = State::kRawString;
          result.code.append("R\"");
          line_has_code = true;
          i = open;  // Loop increment lands on the char after '('.
        } else if (c == '"') {
          state = State::kString;
          result.code.push_back('"');
          line_has_code = true;
        } else if (c == '\'') {
          state = State::kChar;
          result.code.push_back('\'');
          line_has_code = true;
        } else if (c == '\n') {
          if (line_has_code && !pending.empty()) {
            auto& dst = result.directives[line];
            dst.insert(dst.end(), pending.begin(), pending.end());
            pending.clear();
          }
          newline();
        } else {
          if (!std::isspace(static_cast<unsigned char>(c))) {
            line_has_code = true;
          }
          result.code.push_back(c);
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          end_comment(line);
          state = State::kCode;
          if (line_has_code && !pending.empty()) {
            auto& dst = result.directives[line];
            dst.insert(dst.end(), pending.begin(), pending.end());
            pending.clear();
          }
          newline();
        } else {
          comment.push_back(c);
          result.code.push_back(' ');
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          end_comment(line);
          state = State::kCode;
          result.code.append("  ");
          ++i;
        } else if (c == '\n') {
          // A block comment ending on a later line attaches its directives
          // where it ends; parse incrementally per line so a directive on
          // the comment's first line still lands near its site.
          newline();
          comment.push_back('\n');
        } else {
          comment.push_back(c);
          result.code.push_back(' ');
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0' && next != '\n') {
          result.code.append("  ");
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          result.code.push_back('"');
        } else if (c == '\n') {
          newline();  // Unterminated; recover.
          state = State::kCode;
        } else {
          result.code.push_back(' ');
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0' && next != '\n') {
          result.code.append("  ");
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          result.code.push_back('\'');
        } else if (c == '\n') {
          newline();
          state = State::kCode;
        } else {
          result.code.push_back(' ');
        }
        break;
      case State::kRawString:
        if (c == '\n') {
          newline();
        } else if (c == ')' &&
                   source.compare(i, raw_delim.size(), raw_delim) == 0) {
          state = State::kCode;
          result.code.push_back('"');
          result.code.append(raw_delim.size() - 1, ' ');
          i += raw_delim.size() - 1;
        } else {
          result.code.push_back(' ');
        }
        break;
    }
  }
  if (state == State::kLineComment || state == State::kBlockComment) {
    end_comment(line);
  }
  // Directives still pending at EOF attach to the last line so a dangling
  // annotation is reported rather than silently dropped.
  if (!pending.empty()) {
    auto& dst = result.directives[line];
    dst.insert(dst.end(), pending.begin(), pending.end());
  }
  return result;
}

// ---------------------------------------------------------------------------
// Tokenizer over the stripped code.
// ---------------------------------------------------------------------------

struct Token {
  std::string text;
  int line = 0;
  bool is_ident = false;
};

std::vector<Token> Tokenize(const std::string& code) {
  std::vector<Token> tokens;
  int line = 1;
  for (std::size_t i = 0; i < code.size();) {
    const char c = code[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (IsIdentChar(c)) {
      std::size_t j = i;
      while (j < code.size() && IsIdentChar(code[j])) ++j;
      bool ident = std::isdigit(static_cast<unsigned char>(c)) == 0;
      tokens.push_back({code.substr(i, j - i), line, ident});
      i = j;
      continue;
    }
    // Multi-char punctuation the rules care about.
    if (c == ':' && i + 1 < code.size() && code[i + 1] == ':') {
      tokens.push_back({"::", line, false});
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < code.size() && code[i + 1] == '>') {
      tokens.push_back({"->", line, false});
      i += 2;
      continue;
    }
    tokens.push_back({std::string(1, c), line, false});
    ++i;
  }
  return tokens;
}

// ---------------------------------------------------------------------------
// Shared helpers over the token stream.
// ---------------------------------------------------------------------------

class FileCheck {
 public:
  FileCheck(const std::string& path, const Preprocessed& pre,
            std::vector<Token> tokens, const LintConfig& config,
            const std::set<std::string>& unordered_names,
            std::vector<Finding>* findings)
      : path_(path),
        pre_(pre),
        tokens_(std::move(tokens)),
        config_(config),
        unordered_names_(unordered_names),
        findings_(findings) {}

  void Run();

 private:
  bool HasDirective(int line, const std::string& directive) const {
    auto it = pre_.directives.find(line);
    if (it == pre_.directives.end()) return false;
    return std::find(it->second.begin(), it->second.end(), directive) !=
           it->second.end();
  }

  void Report(Rule rule, int line, std::string message) {
    findings_->push_back({path_, line, rule, std::move(message)});
  }

  // Index of the token matching the closer for the opener at `open_index`
  // (whose text must be an opener like "(" / "{" / "<"). Returns
  // tokens_.size() if unmatched.
  std::size_t MatchForward(std::size_t open_index, const std::string& open,
                           const std::string& close) const {
    int depth = 0;
    for (std::size_t i = open_index; i < tokens_.size(); ++i) {
      if (tokens_[i].text == open) {
        ++depth;
      } else if (tokens_[i].text == close) {
        if (--depth == 0) return i;
      }
    }
    return tokens_.size();
  }

  // Matches a template argument list starting at the "<" at `open_index`,
  // tolerating ">>" being split into two ">" tokens already (we tokenize
  // single chars, so nesting works out naturally).
  std::size_t MatchAngles(std::size_t open_index) const {
    int depth = 0;
    for (std::size_t i = open_index; i < tokens_.size(); ++i) {
      const std::string& t = tokens_[i].text;
      if (t == "<") {
        ++depth;
      } else if (t == ">") {
        if (--depth == 0) return i;
      } else if (t == ";" || t == "{") {
        break;  // Not a template argument list after all (a < comparison).
      }
    }
    return tokens_.size();
  }

  bool InR2Scope() const {
    if (config_.r2_paths.empty()) return true;
    for (const auto& fragment : config_.r2_paths) {
      if (path_.find(fragment) != std::string::npos) return true;
    }
    return false;
  }

  void CheckAnnotations();
  void CheckUnorderedIteration();
  void CheckNondeterminism();
  void CheckNoAlloc();
  void CheckCancellationBlind();

  const std::string& path_;
  const Preprocessed& pre_;
  std::vector<Token> tokens_;
  const LintConfig& config_;
  const std::set<std::string>& unordered_names_;
  std::vector<Finding>* findings_;
};

// R0: every directive must be one the linter knows, so a typo cannot
// silently waive a rule.
void FileCheck::CheckAnnotations() {
  static const std::set<std::string> kKnown = {
      "ordered-independent", "no-alloc", "reserved", "cancel-ok"};
  for (const auto& [line, directives] : pre_.directives) {
    for (const auto& directive : directives) {
      if (kKnown.count(directive) == 0) {
        Report(Rule::kBadAnnotation, line,
               "unknown kvcc-lint directive '" + directive +
                   "' (known: ordered-independent, no-alloc, reserved, "
                   "cancel-ok)");
      }
    }
  }
}

// R1: range-for over an expression that names an unordered container.
void FileCheck::CheckUnorderedIteration() {
  for (std::size_t i = 0; i + 1 < tokens_.size(); ++i) {
    if (!(tokens_[i].is_ident && tokens_[i].text == "for")) continue;
    if (tokens_[i + 1].text != "(") continue;
    const std::size_t close = MatchForward(i + 1, "(", ")");
    if (close >= tokens_.size()) continue;
    // Find the range-for ':' at paren depth 1 (skip '::' which tokenized
    // separately, and ternaries are vanishingly rare in a for-header).
    std::size_t colon = tokens_.size();
    int depth = 0;
    for (std::size_t j = i + 1; j < close; ++j) {
      const std::string& t = tokens_[j].text;
      if (t == "(" || t == "[" || t == "{") ++depth;
      if (t == ")" || t == "]" || t == "}") --depth;
      if (t == ":" && depth == 1) {
        colon = j;
        break;
      }
      if (t == ";") break;  // Classic three-clause for loop.
    }
    if (colon >= tokens_.size()) continue;
    // The range expression: flag if it mentions a known unordered name or
    // spells out the container type inline.
    for (std::size_t j = colon + 1; j < close; ++j) {
      const Token& tok = tokens_[j];
      if (!tok.is_ident) continue;
      const bool inline_type =
          tok.text == "unordered_map" || tok.text == "unordered_set" ||
          tok.text == "unordered_multimap" || tok.text == "unordered_multiset";
      if (!inline_type && unordered_names_.count(tok.text) == 0) continue;
      const int line = tokens_[i].line;
      if (HasDirective(line, "ordered-independent") ||
          HasDirective(tok.line, "ordered-independent")) {
        break;
      }
      Report(Rule::kUnorderedIteration, line,
             "range-for over unordered container '" + tok.text +
                 "': iteration order is unspecified and can leak into "
                 "results or stats; sort first, or justify with "
                 "`// kvcc-lint: ordered-independent`");
      break;
    }
  }
}

// R2: wall-clock / libc randomness and pointer-valued keys in the
// determinism-critical layers.
void FileCheck::CheckNondeterminism() {
  if (!InR2Scope()) return;
  static const std::set<std::string> kBannedCalls = {
      "rand",   "srand",        "rand_r", "random",
      "time",   "clock",        "drand48"};
  static const std::set<std::string> kBannedTypes = {
      "random_device", "mt19937", "mt19937_64", "minstd_rand",
      "minstd_rand0",  "default_random_engine"};
  static const std::set<std::string> kKeyedContainers = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset", "map", "set", "multimap", "multiset", "hash"};
  for (std::size_t i = 0; i < tokens_.size(); ++i) {
    const Token& tok = tokens_[i];
    if (!tok.is_ident) continue;
    const std::string& prev = i > 0 ? tokens_[i - 1].text : std::string();
    const bool member = prev == "." || prev == "->";
    // `std::` qualification is fine to flag; `foo::time` (another namespace)
    // is not ours to judge — still flag, the annotation escape exists and
    // no such name occurs in this codebase.
    // A declaration (`double time()`) has a type identifier directly before
    // the name; a call site is preceded by an operator, punctuation, or
    // `return`. Only the call form is nondeterministic input.
    const bool declaration =
        i > 0 && tokens_[i - 1].is_ident && prev != "return";
    if (!member && !declaration && kBannedCalls.count(tok.text) != 0 &&
        i + 1 < tokens_.size() && tokens_[i + 1].text == "(") {
      Report(Rule::kNondeterminism, tok.line,
             "call to '" + tok.text +
                 "()': nondeterministic input; randomness must come from "
                 "util/random.h with a seed threaded from options");
      continue;
    }
    if (!member && kBannedTypes.count(tok.text) != 0) {
      Report(Rule::kNondeterminism, tok.line,
             "use of 'std::" + tok.text +
                 "': nondeterministic or stdlib-version-dependent generator; "
                 "use kvcc::Rng from util/random.h instead");
      continue;
    }
    // Pointer-valued key: container< T* , ...> or std::hash<T*>.
    if (kKeyedContainers.count(tok.text) != 0 && i + 1 < tokens_.size() &&
        tokens_[i + 1].text == "<") {
      const std::size_t close = MatchAngles(i + 1);
      if (close >= tokens_.size()) continue;
      // First template argument: up to the ',' at angle depth 1 (or the
      // closing '>').
      std::size_t arg_end = close;
      int depth = 0;
      for (std::size_t j = i + 1; j < close; ++j) {
        const std::string& t = tokens_[j].text;
        if (t == "<" || t == "(" || t == "[") ++depth;
        if (t == ">" || t == ")" || t == "]") --depth;
        if (t == "," && depth == 1) {
          arg_end = j;
          break;
        }
      }
      if (arg_end > i + 2 && tokens_[arg_end - 1].text == "*") {
        Report(Rule::kNondeterminism, tok.line,
               "pointer-valued key in '" + tok.text +
                   "<...>': pointer order/hash varies per run and breaks "
                   "byte-identical output; key by index or id instead");
      }
    }
  }
}

// R3: `// kvcc-lint: no-alloc` attaches to the next function definition;
// its body must stay off the allocator.
void FileCheck::CheckNoAlloc() {
  static const std::set<std::string> kAlwaysBad = {
      "new",    "make_unique", "make_shared", "malloc",       "calloc",
      "realloc", "strdup",     "resize",      "shrink_to_fit"};
  // Growth calls that are allocation-free only when capacity was reserved
  // ahead of the warm path; each site must say so.
  static const std::set<std::string> kNeedsReserved = {
      "push_back", "emplace_back", "insert", "emplace", "append", "assign",
      "reserve"};
  std::set<int> no_alloc_lines;
  for (const auto& [line, directives] : pre_.directives) {
    if (std::find(directives.begin(), directives.end(), "no-alloc") !=
        directives.end()) {
      no_alloc_lines.insert(line);
    }
  }
  if (no_alloc_lines.empty()) return;

  for (const int anchor : no_alloc_lines) {
    // The annotated function's body: first '{' at or after the anchor line.
    std::size_t open = tokens_.size();
    for (std::size_t i = 0; i < tokens_.size(); ++i) {
      if (tokens_[i].line >= anchor && tokens_[i].text == "{") {
        open = i;
        break;
      }
    }
    if (open >= tokens_.size()) {
      Report(Rule::kBadAnnotation, anchor,
             "`no-alloc` annotation is not followed by a function body");
      continue;
    }
    const std::size_t close = MatchForward(open, "{", "}");
    for (std::size_t i = open; i < close && i < tokens_.size(); ++i) {
      const Token& tok = tokens_[i];
      if (!tok.is_ident) continue;
      if (kAlwaysBad.count(tok.text) != 0) {
        // `new` only as the operator, not e.g. an identifier fragment (the
        // tokenizer already guarantees whole identifiers).
        if (HasDirective(tok.line, "reserved")) continue;
        Report(Rule::kNoAlloc, tok.line,
               "'" + tok.text +
                   "' inside a `no-alloc` function: this path is asserted "
                   "allocation-free (see memory_tracker_test); hoist the "
                   "allocation into scratch setup");
      } else if (kNeedsReserved.count(tok.text) != 0) {
        if (HasDirective(tok.line, "reserved")) continue;
        Report(Rule::kNoAlloc, tok.line,
               "'" + tok.text +
                   "' inside a `no-alloc` function without a "
                   "`// kvcc-lint: reserved` justification that capacity "
                   "was pre-reserved");
      }
    }
  }
}

// R4: a function definition accepting a CancelToken must mention the token
// parameter somewhere in its initializer list or body.
void FileCheck::CheckCancellationBlind() {
  for (std::size_t i = 0; i < tokens_.size(); ++i) {
    if (!(tokens_[i].is_ident && tokens_[i].text == "CancelToken")) continue;
    // Parameter position: inside a '(' ... ')' group. Find the nearest
    // unmatched '(' to the left.
    int depth = 0;
    std::size_t open = tokens_.size();
    for (std::size_t j = i; j-- > 0;) {
      const std::string& t = tokens_[j].text;
      if (t == ")") ++depth;
      if (t == "(") {
        if (depth == 0) {
          open = j;
          break;
        }
        --depth;
      }
      if (t == ";" || t == "{" || t == "}") break;
    }
    if (open >= tokens_.size()) continue;
    const std::size_t close = MatchForward(open, "(", ")");
    if (close >= tokens_.size()) continue;
    // Parameter name: next identifier after CancelToken (skipping *,&,const)
    // before ',' or ')'.
    std::string param;
    int param_line = tokens_[i].line;
    for (std::size_t j = i + 1; j < close; ++j) {
      const Token& t = tokens_[j];
      if (t.text == "," ) break;
      if (t.is_ident && t.text != "const") {
        param = t.text;
        param_line = t.line;
        break;
      }
      // `>` closes a smart-pointer wrapper (shared_ptr<CancelToken> tok).
      if (!t.is_ident && t.text != "*" && t.text != "&" && t.text != ">") {
        break;
      }
    }
    // Definition or declaration? Scan past ')' through specifiers; a
    // definition reaches '{' (possibly via a ctor-initializer ':').
    std::size_t body_open = tokens_.size();
    for (std::size_t j = close + 1; j < tokens_.size(); ++j) {
      const std::string& t = tokens_[j].text;
      if (t == "{") {
        body_open = j;
        break;
      }
      if (t == ";") break;  // Declaration only.
      // const/noexcept/override/final/-> trailing return/ctor-init exprs
      // all fine to skip; a '=' means `= 0`/`= default`/`= delete`.
      if (t == "=") break;
    }
    if (body_open >= tokens_.size()) continue;
    if (param.empty()) {
      if (HasDirective(tokens_[i].line, "cancel-ok")) continue;
      Report(Rule::kCancellationBlind, tokens_[i].line,
             "function takes an unnamed CancelToken it can never poll; name "
             "and use it, or justify with `// kvcc-lint: cancel-ok`");
      continue;
    }
    const std::size_t body_close = MatchForward(body_open, "{", "}");
    bool used = false;
    // The ctor-initializer list between ')' and '{' counts as use (storing
    // the token), as does any mention in the body.
    for (std::size_t j = close + 1;
         j < body_close && j < tokens_.size() && !used; ++j) {
      used = tokens_[j].is_ident && tokens_[j].text == param;
    }
    if (!used) {
      if (HasDirective(tokens_[i].line, "cancel-ok") ||
          HasDirective(param_line, "cancel-ok")) {
        continue;
      }
      Report(Rule::kCancellationBlind, tokens_[i].line,
             "CancelToken parameter '" + param +
                 "' is accepted but never polled or forwarded — this entry "
                 "point is silently uncancellable; poll it at a loop/probe "
                 "boundary, pass it down, or justify with "
                 "`// kvcc-lint: cancel-ok`");
    }
    // Continue scanning after this parameter list (there may be more
    // functions); the outer loop's ++i suffices.
  }
}

void FileCheck::Run() {
  CheckAnnotations();
  if (config_.r1_unordered_iteration) CheckUnorderedIteration();
  if (config_.r2_nondeterminism) CheckNondeterminism();
  if (config_.r3_no_alloc) CheckNoAlloc();
  if (config_.r4_cancellation_blind) CheckCancellationBlind();
}

// Harvests identifiers declared with an unordered container in their type
// (variables, members, aliases — and functions returning one, whose call
// results are equally unordered to iterate).
void HarvestUnorderedNames(const std::vector<Token>& tokens,
                           std::set<std::string>* names) {
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& tok = tokens[i];
    if (!tok.is_ident) continue;
    if (tok.text != "unordered_map" && tok.text != "unordered_set" &&
        tok.text != "unordered_multimap" && tok.text != "unordered_multiset") {
      continue;
    }
    // `using Alias = std::unordered_map<...>` — record the alias.
    if (i >= 3 && tokens[i - 1].text == "::" &&
        tokens[i - 2].text == "std") {
      if (i >= 5 && tokens[i - 3].text == "=" && tokens[i - 4].is_ident &&
          tokens[i - 5].text == "using") {
        names->insert(tokens[i - 4].text);
      }
    }
    // Skip to the end of the declaration statement and record the last
    // identifier before a declarator terminator. Outer wrappers
    // (std::vector<std::unordered_map<...>> weight) are handled naturally:
    // the scan starts at the unordered token and still ends at `weight`.
    std::string last_ident;
    int angle = 0;
    for (std::size_t j = i + 1; j < tokens.size(); ++j) {
      const std::string& t = tokens[j].text;
      if (t == "<") ++angle;
      if (t == ">") --angle;
      if (angle > 0) continue;
      if (t == ";" || t == "=" || t == "{" || t == "(" || t == ")" ||
          t == ",") {
        if (!last_ident.empty()) names->insert(last_ident);
        break;
      }
      if (tokens[j].is_ident && t != "const" && t != "std") {
        last_ident = t;
      }
      if (t == "::") last_ident.clear();  // Qualifier, not the declarator.
    }
  }
}

}  // namespace

const char* RuleId(Rule rule) {
  switch (rule) {
    case Rule::kBadAnnotation:
      return "R0-bad-annotation";
    case Rule::kUnorderedIteration:
      return "R1-unordered-iteration";
    case Rule::kNondeterminism:
      return "R2-nondeterminism";
    case Rule::kNoAlloc:
      return "R3-no-alloc";
    case Rule::kCancellationBlind:
      return "R4-cancellation-blind";
  }
  return "unknown";
}

const char* RuleDescription(Rule rule) {
  switch (rule) {
    case Rule::kBadAnnotation:
      return "unknown `kvcc-lint:` directive (typos cannot waive rules)";
    case Rule::kUnorderedIteration:
      return "range-for over unordered_map/unordered_set without an "
             "`ordered-independent` justification";
    case Rule::kNondeterminism:
      return "rand()/time()/std::random_device/pointer-keys in "
             "determinism-critical layers (src/kvcc, src/flow, src/graph)";
    case Rule::kNoAlloc:
      return "allocation or unjustified growth call inside a "
             "`no-alloc`-annotated warm-path function";
    case Rule::kCancellationBlind:
      return "CancelToken accepted but never polled, forwarded, or stored";
  }
  return "unknown";
}

std::string Finding::ToString() const {
  std::ostringstream os;
  os << path << ":" << line << ": [" << RuleId(rule) << "] " << message;
  return os.str();
}

std::vector<Finding> LintSource(const std::string& path,
                                const std::string& source,
                                const LintConfig& config) {
  const Preprocessed pre = Preprocess(source);
  std::vector<Token> tokens = Tokenize(pre.code);
  std::set<std::string> unordered_names(config.extra_unordered_names.begin(),
                                        config.extra_unordered_names.end());
  HarvestUnorderedNames(tokens, &unordered_names);
  std::vector<Finding> findings;
  FileCheck(path, pre, std::move(tokens), config, unordered_names, &findings)
      .Run();
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
  return findings;
}

std::vector<Finding> LintPaths(const std::vector<std::string>& paths,
                               const LintConfig& config) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const auto& path : paths) {
    if (fs::is_directory(path)) {
      for (const auto& entry : fs::recursive_directory_iterator(path)) {
        if (!entry.is_regular_file()) continue;
        const std::string ext = entry.path().extension().string();
        if (ext == ".cc" || ext == ".h" || ext == ".cpp" || ext == ".hpp") {
          files.push_back(entry.path().generic_string());
        }
      }
    } else if (fs::is_regular_file(path)) {
      files.push_back(path);
    } else {
      throw std::runtime_error("kvcc_lint: no such file or directory: " +
                               path);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // First pass: harvest unordered declarations from every input, so a member
  // declared in a header is recognized when iterated in a .cc file.
  LintConfig effective = config;
  std::map<std::string, std::string> contents;
  std::set<std::string> global_names(config.extra_unordered_names.begin(),
                                     config.extra_unordered_names.end());
  for (const auto& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) throw std::runtime_error("kvcc_lint: cannot read: " + file);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    contents[file] = buffer.str();
    const Preprocessed pre = Preprocess(contents[file]);
    HarvestUnorderedNames(Tokenize(pre.code), &global_names);
  }
  effective.extra_unordered_names.assign(global_names.begin(),
                                         global_names.end());

  std::vector<Finding> findings;
  for (const auto& file : files) {
    auto file_findings = LintSource(file, contents[file], effective);
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
  }
  return findings;
}

}  // namespace lint
}  // namespace kvcc
