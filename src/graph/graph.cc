#include "graph/graph.h"

#include <algorithm>
#include <cassert>

#include "graph/graph_builder.h"

namespace kvcc {

Graph Graph::FromEdges(VertexId num_vertices,
                       std::span<const std::pair<VertexId, VertexId>> edges) {
  GraphBuilder builder(num_vertices);
  for (const auto& [u, v] : edges) builder.AddEdge(u, v);
  return builder.Build();
}

Graph Graph::FromCsr(VertexId num_vertices,
                     std::vector<std::uint64_t> offsets,
                     std::vector<VertexId> adjacency,
                     std::vector<VertexId> labels) {
  assert(offsets.size() == static_cast<std::size_t>(num_vertices) + 1);
  assert(offsets.front() == 0 && offsets.back() == adjacency.size());
  assert(labels.empty() ||
         labels.size() == static_cast<std::size_t>(num_vertices));
#ifndef NDEBUG
  for (VertexId v = 0; v < num_vertices; ++v) {
    assert(offsets[v] <= offsets[v + 1]);
    for (std::uint64_t i = offsets[v]; i + 1 < offsets[v + 1]; ++i) {
      assert(adjacency[i] < adjacency[i + 1] && "neighbor list not strict");
    }
    for (std::uint64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      assert(adjacency[i] < num_vertices);
      assert(adjacency[i] != v && "self-loop in CSR");
    }
  }
#endif
  Graph g;
  g.num_vertices_ = num_vertices;
  g.num_edges_ = adjacency.size() / 2;
  g.offsets_ = std::move(offsets);
  g.adjacency_ = std::move(adjacency);
  g.labels_ = std::move(labels);
  return g;
}

bool Graph::HasEdge(VertexId u, VertexId v) const {
  const auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<VertexId> Graph::LabelsOf(std::span<const VertexId> vertices) const {
  std::vector<VertexId> out;
  out.reserve(vertices.size());
  for (VertexId v : vertices) out.push_back(LabelOf(v));
  return out;
}

Graph Graph::InducedSubgraph(std::span<const VertexId> vertices) const {
  return InduceImpl(vertices, /*as_root=*/false);
}

Graph Graph::InducedSubgraphAsRoot(std::span<const VertexId> vertices) const {
  return InduceImpl(vertices, /*as_root=*/true);
}

Graph Graph::InduceImpl(std::span<const VertexId> vertices,
                        bool as_root) const {
  std::vector<VertexId> sorted(vertices.begin(), vertices.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  std::vector<VertexId> local(num_vertices_, kInvalidVertex);
  for (VertexId i = 0; i < sorted.size(); ++i) local[sorted[i]] = i;

  Graph sub;
  sub.num_vertices_ = static_cast<VertexId>(sorted.size());
  sub.offsets_.assign(sub.num_vertices_ + 1, 0);

  // Two passes: count then fill, keeping neighbor order (already sorted in
  // the parent; the subset of a sorted list is sorted).
  for (VertexId i = 0; i < sub.num_vertices_; ++i) {
    std::uint64_t deg = 0;
    for (VertexId w : Neighbors(sorted[i])) {
      if (local[w] != kInvalidVertex) ++deg;
    }
    sub.offsets_[i + 1] = sub.offsets_[i] + deg;
  }
  sub.adjacency_.resize(sub.offsets_[sub.num_vertices_]);
  for (VertexId i = 0; i < sub.num_vertices_; ++i) {
    std::uint64_t pos = sub.offsets_[i];
    for (VertexId w : Neighbors(sorted[i])) {
      if (local[w] != kInvalidVertex) sub.adjacency_[pos++] = local[w];
    }
    // Local ids are assigned in increasing parent order, so the filled range
    // is already sorted.
  }
  sub.num_edges_ = sub.adjacency_.size() / 2;

  sub.labels_.resize(sub.num_vertices_);
  for (VertexId i = 0; i < sub.num_vertices_; ++i) {
    sub.labels_[i] = as_root ? sorted[i] : LabelOf(sorted[i]);
  }
  return sub;
}

std::vector<std::pair<VertexId, VertexId>> Graph::Edges() const {
  std::vector<std::pair<VertexId, VertexId>> out;
  out.reserve(num_edges_);
  for (VertexId u = 0; u < num_vertices_; ++u) {
    for (VertexId v : Neighbors(u)) {
      if (u < v) out.emplace_back(u, v);
    }
  }
  return out;
}

double Graph::AverageDegree() const {
  if (num_vertices_ == 0) return 0.0;
  return static_cast<double>(2 * num_edges_) / num_vertices_;
}

VertexId Graph::MaxDegree() const {
  VertexId best = 0;
  for (VertexId v = 0; v < num_vertices_; ++v) {
    best = std::max(best, Degree(v));
  }
  return best;
}

VertexId Graph::MinDegreeVertex() const {
  if (num_vertices_ == 0) return kInvalidVertex;
  VertexId best = 0;
  for (VertexId v = 1; v < num_vertices_; ++v) {
    if (Degree(v) < Degree(best)) best = v;
  }
  return best;
}

std::uint64_t Graph::MemoryBytes() const {
  return offsets_.capacity() * sizeof(std::uint64_t) +
         adjacency_.capacity() * sizeof(VertexId) +
         labels_.capacity() * sizeof(VertexId) + sizeof(*this);
}

}  // namespace kvcc
