// k-core peeling and full core decomposition.
//
// The k-core of G is the maximal subgraph with minimum degree >= k. By the
// Whitney theorem (paper Thm 3) every k-VCC and every k-ECC is contained in
// the k-core, so peeling is the first size-reduction step of KVCC-ENUM
// (Alg. 1 line 2).
#ifndef KVCC_GRAPH_K_CORE_H_
#define KVCC_GRAPH_K_CORE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace kvcc {

/// Vertices (sorted) surviving iterative removal of degree < k vertices.
/// O(n + m).
std::vector<VertexId> KCoreVertices(const Graph& g, std::uint32_t k);

/// Induced subgraph on KCoreVertices(g, k).
Graph KCoreSubgraph(const Graph& g, std::uint32_t k);

/// Core number of every vertex (Batagelj–Zaversnik bucket peeling, O(n + m)).
/// core[v] = largest k such that v belongs to the k-core.
std::vector<std::uint32_t> CoreNumbers(const Graph& g);

/// Degeneracy of the graph = max core number (0 for the empty graph).
std::uint32_t Degeneracy(const Graph& g);

}  // namespace kvcc

#endif  // KVCC_GRAPH_K_CORE_H_
