// k-core peeling and full core decomposition.
//
// The k-core of G is the maximal subgraph with minimum degree >= k. By the
// Whitney theorem (paper Thm 3) every k-VCC and every k-ECC is contained in
// the k-core, so peeling is the first size-reduction step of KVCC-ENUM
// (Alg. 1 line 2).
//
// The peel is a level-synchronous bucket kernel: each round removes every
// vertex whose degree fell below k in the previous round, decrementing
// neighbor degrees unconditionally and claiming a vertex exactly when its
// degree counter crosses k (old value == k). Round membership depends only
// on previous rounds' membership — never on traversal order — so the
// survivor set and the round count are byte-identical across thread counts.
#ifndef KVCC_GRAPH_K_CORE_H_
#define KVCC_GRAPH_K_CORE_H_

#include <cstdint>
#include <vector>

#include "exec/task_scheduler.h"
#include "graph/graph.h"

namespace kvcc {

/// Read-only view of a finished peel's removal marks (valid until the
/// owning KCoreScratch is rebound to another peel). Lets downstream kernels
/// skip peeled vertices without materializing a survivor subgraph.
struct PeelMask {
  const std::uint64_t* stamp = nullptr;  ///< removed_stamp of the scratch
  std::uint64_t epoch = 0;               ///< epoch of the peel

  /// True iff the peel removed v.
  bool Removed(VertexId v) const { return stamp[v] == epoch; }
  /// True iff v survived the peel.
  bool Alive(VertexId v) const { return stamp[v] != epoch; }
};

/// Reusable scratch for KCoreVerticesInto (epoch-stamped removal marks,
/// SweepContext shape: stamps start at 0, epochs at 1, payload arrays only
/// ever grow). One instance serves every peel without per-call clearing or
/// allocation once warm; slot_next is touched only by the parallel path.
struct KCoreScratch {
  std::uint64_t epoch = 0;
  std::vector<std::uint64_t> removed_stamp;  // == epoch ? removed : alive
  std::vector<std::uint32_t> degree;         // live residual degrees
  std::vector<VertexId> frontier;            // current peel round
  std::vector<VertexId> next;                // next peel round (serial path)
  std::vector<std::vector<VertexId>> slot_next;  // per-slot round bins

  /// Removal marks of the most recent peel.
  PeelMask Mask() const { return {removed_stamp.data(), epoch}; }
};

/// Bucket k-core peel into caller-owned storage: `survivors` receives the
/// sorted vertices of the k-core and `scratch` keeps the removal marks
/// (query via scratch.Mask()). Runs the flat-parallel kernel when
/// `scheduler` has more than one worker and the graph is large enough,
/// the exact serial loop otherwise — the survivor set, the marks, and the
/// returned round count are byte-identical either way. Allocation-free
/// once scratch and survivors have grown to the largest graph seen.
/// \return Number of level-synchronous peel rounds (the peel depth).
std::uint64_t KCoreVerticesInto(const Graph& g, std::uint32_t k,
                                exec::TaskScheduler* scheduler,
                                exec::TaskPriority priority,
                                KCoreScratch& scratch,
                                std::vector<VertexId>& survivors);

/// Vertices (sorted) surviving iterative removal of degree < k vertices.
/// O(n + m).
std::vector<VertexId> KCoreVertices(const Graph& g, std::uint32_t k);

/// Induced subgraph on KCoreVertices(g, k).
Graph KCoreSubgraph(const Graph& g, std::uint32_t k);

/// Core number of every vertex (Batagelj–Zaversnik bucket peeling, O(n + m)).
/// core[v] = largest k such that v belongs to the k-core.
std::vector<std::uint32_t> CoreNumbers(const Graph& g);

/// Degeneracy of the graph = max core number (0 for the empty graph).
std::uint32_t Degeneracy(const Graph& g);

}  // namespace kvcc

#endif  // KVCC_GRAPH_K_CORE_H_
