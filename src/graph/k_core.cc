#include "graph/k_core.h"

#include <algorithm>

namespace kvcc {

std::vector<VertexId> KCoreVertices(const Graph& g, std::uint32_t k) {
  const VertexId n = g.NumVertices();
  std::vector<std::uint32_t> degree(n);
  std::vector<bool> removed(n, false);
  std::vector<VertexId> queue;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = g.Degree(v);
    if (degree[v] < k) {
      removed[v] = true;
      queue.push_back(v);
    }
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const VertexId u = queue[head];
    for (VertexId w : g.Neighbors(u)) {
      if (removed[w]) continue;
      if (--degree[w] < k) {
        removed[w] = true;
        queue.push_back(w);
      }
    }
  }
  std::vector<VertexId> survivors;
  for (VertexId v = 0; v < n; ++v) {
    if (!removed[v]) survivors.push_back(v);
  }
  return survivors;
}

Graph KCoreSubgraph(const Graph& g, std::uint32_t k) {
  const std::vector<VertexId> survivors = KCoreVertices(g, k);
  return g.InducedSubgraph(survivors);
}

std::vector<std::uint32_t> CoreNumbers(const Graph& g) {
  const VertexId n = g.NumVertices();
  std::vector<std::uint32_t> degree(n), core(n, 0);
  std::uint32_t max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = g.Degree(v);
    max_degree = std::max(max_degree, degree[v]);
  }
  // Bucket sort vertices by degree.
  std::vector<std::uint32_t> bin(max_degree + 2, 0);
  for (VertexId v = 0; v < n; ++v) ++bin[degree[v]];
  std::uint32_t start = 0;
  for (std::uint32_t d = 0; d <= max_degree; ++d) {
    const std::uint32_t count = bin[d];
    bin[d] = start;
    start += count;
  }
  std::vector<VertexId> order(n);
  std::vector<std::uint32_t> position(n);
  {
    std::vector<std::uint32_t> cursor(bin.begin(), bin.end() - 1);
    for (VertexId v = 0; v < n; ++v) {
      position[v] = cursor[degree[v]]++;
      order[position[v]] = v;
    }
  }
  // Peel in nondecreasing degree order, lowering neighbor degrees in place.
  for (std::uint32_t i = 0; i < n; ++i) {
    const VertexId v = order[i];
    core[v] = degree[v];
    for (VertexId w : g.Neighbors(v)) {
      if (degree[w] > degree[v]) {
        // Swap w to the front of its degree bucket, then shrink its degree.
        const std::uint32_t dw = degree[w];
        const std::uint32_t pw = position[w];
        const std::uint32_t pfront = bin[dw];
        const VertexId front = order[pfront];
        if (front != w) {
          std::swap(order[pw], order[pfront]);
          position[w] = pfront;
          position[front] = pw;
        }
        ++bin[dw];
        --degree[w];
      }
    }
  }
  return core;
}

std::uint32_t Degeneracy(const Graph& g) {
  std::uint32_t best = 0;
  for (std::uint32_t c : CoreNumbers(g)) best = std::max(best, c);
  return best;
}

}  // namespace kvcc
