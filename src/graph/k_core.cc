#include "graph/k_core.h"

#include <algorithm>
#include <atomic>

#include "graph/parallel_blocks.h"

namespace kvcc {
namespace {

// Serial peel rounds over pooled scratch. frontier/next were reserved to n
// by the driver and the peel removes each vertex at most once, so every
// growth call below stays within capacity.
// kvcc-lint: no-alloc
std::uint64_t PeelSerial(const Graph& g, std::uint32_t k, KCoreScratch& s) {
  const VertexId n = g.NumVertices();
  const std::uint64_t epoch = s.epoch;
  s.frontier.clear();
  for (VertexId v = 0; v < n; ++v) {
    const std::uint32_t d = g.Degree(v);
    s.degree[v] = d;
    if (d < k) {
      s.removed_stamp[v] = epoch;
      s.frontier.push_back(v);  // kvcc-lint: reserved
    }
  }
  std::uint64_t rounds = 0;
  while (!s.frontier.empty()) {
    ++rounds;
    s.next.clear();
    for (const VertexId u : s.frontier) {
      for (const VertexId w : g.Neighbors(u)) {
        // Unconditional decrement, claim exactly at the k crossing: a
        // vertex that started below k (claimed at init) never sees old
        // == k again, and total decrements on w never exceed deg(w), so
        // the counter cannot wrap.
        const std::uint32_t old = s.degree[w]--;
        if (old == k) {
          s.removed_stamp[w] = epoch;
          s.next.push_back(w);  // kvcc-lint: reserved
        }
      }
    }
    s.frontier.swap(s.next);
  }
  return rounds;
}

// Flat-parallel peel: same rounds, atomic degree decrements, per-slot next-
// frontier bins. Round membership is the set of vertices whose cumulative
// decrement count crosses k this round — a function of the previous rounds
// only — so marks, survivors, and the round count match PeelSerial exactly;
// only the (never observed) frontier order differs.
std::uint64_t PeelParallel(const Graph& g, std::uint32_t k,
                           exec::TaskScheduler& scheduler,
                           exec::TaskPriority priority, KCoreScratch& s) {
  const VertexId n = g.NumVertices();
  const std::uint64_t epoch = s.epoch;
  const std::size_t slots = scheduler.num_workers() + 1;
  if (s.slot_next.size() < slots) s.slot_next.resize(slots);
  for (auto& bin : s.slot_next) bin.clear();
  detail::ForBlocks(scheduler, n, priority,
                    [&](std::size_t begin, std::size_t end, unsigned slot) {
                      for (std::size_t v = begin; v < end; ++v) {
                        const std::uint32_t d =
                            g.Degree(static_cast<VertexId>(v));
                        s.degree[v] = d;
                        if (d < k) {
                          s.removed_stamp[v] = epoch;
                          s.slot_next[slot].push_back(
                              static_cast<VertexId>(v));
                        }
                      }
                    });
  s.frontier.clear();
  for (std::size_t slot = 0; slot < slots; ++slot) {
    s.frontier.insert(s.frontier.end(), s.slot_next[slot].begin(),
                      s.slot_next[slot].end());
  }
  std::uint64_t rounds = 0;
  while (!s.frontier.empty()) {
    ++rounds;
    for (auto& bin : s.slot_next) bin.clear();
    detail::ForBlocks(
        scheduler, s.frontier.size(), priority,
        [&](std::size_t begin, std::size_t end, unsigned slot) {
          for (std::size_t i = begin; i < end; ++i) {
            const VertexId u = s.frontier[i];
            for (const VertexId w : g.Neighbors(u)) {
              // The fetch_sub claims are exactly-once (old == k fires for
              // one decrementer); the claimant's plain mark store becomes
              // visible through the ParallelFor join barrier.
              const std::uint32_t old =
                  std::atomic_ref<std::uint32_t>(s.degree[w])
                      .fetch_sub(1, std::memory_order_relaxed);
              if (old == k) {
                s.removed_stamp[w] = epoch;
                s.slot_next[slot].push_back(w);
              }
            }
          }
        });
    s.frontier.clear();
    for (std::size_t slot = 0; slot < slots; ++slot) {
      s.frontier.insert(s.frontier.end(), s.slot_next[slot].begin(),
                        s.slot_next[slot].end());
    }
  }
  return rounds;
}

}  // namespace

std::uint64_t KCoreVerticesInto(const Graph& g, std::uint32_t k,
                                exec::TaskScheduler* scheduler,
                                exec::TaskPriority priority,
                                KCoreScratch& scratch,
                                std::vector<VertexId>& survivors) {
  const VertexId n = g.NumVertices();
  if (scratch.removed_stamp.size() < n) scratch.removed_stamp.resize(n, 0);
  if (scratch.degree.size() < n) scratch.degree.resize(n);
  if (scratch.frontier.capacity() < n) scratch.frontier.reserve(n);
  if (scratch.next.capacity() < n) scratch.next.reserve(n);
  if (survivors.capacity() < n) survivors.reserve(n);
  ++scratch.epoch;
  const std::uint64_t rounds =
      detail::UsePreprocessParallel(scheduler, n)
          ? PeelParallel(g, k, *scheduler, priority, scratch)
          : PeelSerial(g, k, scratch);
  survivors.clear();
  const std::uint64_t epoch = scratch.epoch;
  for (VertexId v = 0; v < n; ++v) {
    if (scratch.removed_stamp[v] != epoch) survivors.push_back(v);
  }
  return rounds;
}

std::vector<VertexId> KCoreVertices(const Graph& g, std::uint32_t k) {
  KCoreScratch scratch;
  std::vector<VertexId> survivors;
  KCoreVerticesInto(g, k, nullptr, exec::TaskPriority::kNormal, scratch,
                    survivors);
  return survivors;
}

Graph KCoreSubgraph(const Graph& g, std::uint32_t k) {
  const std::vector<VertexId> survivors = KCoreVertices(g, k);
  return g.InducedSubgraph(survivors);
}

std::vector<std::uint32_t> CoreNumbers(const Graph& g) {
  const VertexId n = g.NumVertices();
  std::vector<std::uint32_t> degree(n), core(n, 0);
  std::uint32_t max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = g.Degree(v);
    max_degree = std::max(max_degree, degree[v]);
  }
  // Bucket sort vertices by degree.
  std::vector<std::uint32_t> bin(max_degree + 2, 0);
  for (VertexId v = 0; v < n; ++v) ++bin[degree[v]];
  std::uint32_t start = 0;
  for (std::uint32_t d = 0; d <= max_degree; ++d) {
    const std::uint32_t count = bin[d];
    bin[d] = start;
    start += count;
  }
  std::vector<VertexId> order(n);
  std::vector<std::uint32_t> position(n);
  {
    std::vector<std::uint32_t> cursor(bin.begin(), bin.end() - 1);
    for (VertexId v = 0; v < n; ++v) {
      position[v] = cursor[degree[v]]++;
      order[position[v]] = v;
    }
  }
  // Peel in nondecreasing degree order, lowering neighbor degrees in place.
  for (std::uint32_t i = 0; i < n; ++i) {
    const VertexId v = order[i];
    core[v] = degree[v];
    for (VertexId w : g.Neighbors(v)) {
      if (degree[w] > degree[v]) {
        // Swap w to the front of its degree bucket, then shrink its degree.
        const std::uint32_t dw = degree[w];
        const std::uint32_t pw = position[w];
        const std::uint32_t pfront = bin[dw];
        const VertexId front = order[pfront];
        if (front != w) {
          std::swap(order[pw], order[pfront]);
          position[w] = pfront;
          position[front] = pw;
        }
        ++bin[dw];
        --degree[w];
      }
    }
  }
  return core;
}

std::uint32_t Degeneracy(const Graph& g) {
  std::uint32_t best = 0;
  for (std::uint32_t c : CoreNumbers(g)) best = std::max(best, c);
  return best;
}

}  // namespace kvcc
