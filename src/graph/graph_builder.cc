#include "graph/graph_builder.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace kvcc {

void GraphBuilder::AddEdge(VertexId u, VertexId v) {
  if (u == v) return;
  if (u > v) std::swap(u, v);
  edges_.emplace_back(u, v);
  if (v >= num_vertices_) num_vertices_ = v + 1;
}

void GraphBuilder::EnsureVertex(VertexId v) {
  if (v >= num_vertices_) num_vertices_ = v + 1;
}

void GraphBuilder::SetLabels(std::vector<VertexId> labels) {
  labels_ = std::move(labels);
}

void GraphBuilder::SetLabelsFrom(const Graph& g) {
  labels_.resize(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) labels_[v] = g.LabelOf(v);
}

void GraphBuilder::SetLabelsFromSubset(const Graph& g,
                                       std::span<const VertexId> subset,
                                       bool as_root) {
  labels_.resize(subset.size());
  for (std::size_t i = 0; i < subset.size(); ++i) {
    labels_[i] = as_root ? subset[i] : g.LabelOf(subset[i]);
  }
}

Graph GraphBuilder::Build() {
  Graph g;
  BuildInto(g);
  return g;
}

void GraphBuilder::BuildInto(Graph& g) {
  if (!labels_.empty() && labels_.size() != num_vertices_) {
    throw std::invalid_argument("GraphBuilder: label count != vertex count");
  }
  // Producers that emit edges in lexicographic order with u < v (e.g. the
  // fused prune pass, which walks component vertices in ascending local id
  // and keeps only upper-triangle neighbors) skip the O(m log m) sort.
  if (!std::is_sorted(edges_.begin(), edges_.end())) {
    std::sort(edges_.begin(), edges_.end());
  }
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  g.num_vertices_ = num_vertices_;
  g.num_edges_ = edges_.size();
  g.offsets_.assign(num_vertices_ + 1, 0);
  for (const auto& [u, v] : edges_) {
    ++g.offsets_[u + 1];
    ++g.offsets_[v + 1];
  }
  for (VertexId i = 0; i < num_vertices_; ++i) {
    g.offsets_[i + 1] += g.offsets_[i];
  }
  g.adjacency_.resize(2 * edges_.size());
  cursor_.assign(g.offsets_.begin(), g.offsets_.end() - 1);
  // Edges are sorted by (u, v) with u < v, so per-vertex neighbor lists come
  // out sorted: for each u the v's arrive ascending, and for each v the u's
  // arrive ascending (outer sort is by u).
  for (const auto& [u, v] : edges_) {
    g.adjacency_[cursor_[u]++] = v;
  }
  for (const auto& [u, v] : edges_) {
    g.adjacency_[cursor_[v]++] = u;
  }
  // The two insertion waves above leave each list as "all larger neighbors,
  // then all smaller neighbors" — merge them by sorting each range once.
  for (VertexId v = 0; v < num_vertices_; ++v) {
    std::sort(g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v]),
              g.adjacency_.begin() +
                  static_cast<std::ptrdiff_t>(g.offsets_[v + 1]));
  }
  // Copy rather than move the labels so both sides keep their capacity.
  g.labels_.assign(labels_.begin(), labels_.end());

  edges_.clear();
  labels_.clear();
  num_vertices_ = 0;
}

}  // namespace kvcc
