// Plain-text edge-list IO in the SNAP dataset format.
//
// Input lines: `u v` (whitespace separated); lines starting with '#' or '%'
// are comments. Vertex ids may be arbitrary non-negative integers; they are
// compacted to [0, n) and the original id is preserved as the vertex label.
#ifndef KVCC_GRAPH_GRAPH_IO_H_
#define KVCC_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <string>
#include <string_view>

#include "graph/graph.h"

namespace kvcc {

/// Parses an edge list from a stream. Throws std::runtime_error on malformed
/// input.
Graph ReadEdgeList(std::istream& in);

/// Parses an edge list file. Throws std::runtime_error if the file cannot be
/// opened or is malformed.
Graph ReadEdgeListFile(const std::string& path);

/// Parallel SNAP/GAP whitespace edge-list parser over an in-memory buffer.
///
/// The buffer is split at newline boundaries into ~4 chunks per thread,
/// each parsed with std::from_chars into a thread-partitioned edge buffer;
/// the CSR is then assembled by counting sort (atomic degree count, prefix
/// sum, cursor scatter, per-row sort + dedup) instead of a global edge
/// sort. The resulting Graph is byte-identical for every `num_threads`
/// (0 = one per hardware thread):
///   - vertex ids are compacted by *sorted* raw id, so labels ascend
///     (unlike ReadEdgeList, which numbers ids by first appearance);
///   - duplicate edges collapse and self-loops contribute only their
///     endpoint's existence, as in ReadEdgeList;
///   - a malformed line throws std::runtime_error naming the first bad
///     line in file order, regardless of which chunk hit it first.
/// Stricter than ReadEdgeList in two documented ways: raw ids must fit in
/// 32 bits (the serial reader silently truncates larger ids into label
/// space), and an empty input yields the empty graph (the serial reader
/// yields one isolated vertex). Lines of only whitespace are skipped, and
/// tokens after the second id on a line are ignored.
Graph ReadEdgeListParallel(std::string_view text, unsigned num_threads);

/// ReadEdgeListParallel over a file's bytes. Throws std::runtime_error if
/// the file cannot be opened or is malformed.
Graph ReadEdgeListFileParallel(const std::string& path,
                               unsigned num_threads);

/// Writes `g` as an edge list (one `u v` pair per line, labels used as ids),
/// preceded by a `# nodes edges` comment header.
void WriteEdgeList(const Graph& g, std::ostream& out);

/// Writes `g` to a file. Throws std::runtime_error if the file cannot be
/// created.
void WriteEdgeListFile(const Graph& g, const std::string& path);

}  // namespace kvcc

#endif  // KVCC_GRAPH_GRAPH_IO_H_
