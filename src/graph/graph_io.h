// Plain-text edge-list IO in the SNAP dataset format.
//
// Input lines: `u v` (whitespace separated); lines starting with '#' or '%'
// are comments. Vertex ids may be arbitrary non-negative integers; they are
// compacted to [0, n) and the original id is preserved as the vertex label.
#ifndef KVCC_GRAPH_GRAPH_IO_H_
#define KVCC_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace kvcc {

/// Parses an edge list from a stream. Throws std::runtime_error on malformed
/// input.
Graph ReadEdgeList(std::istream& in);

/// Parses an edge list file. Throws std::runtime_error if the file cannot be
/// opened or is malformed.
Graph ReadEdgeListFile(const std::string& path);

/// Writes `g` as an edge list (one `u v` pair per line, labels used as ids),
/// preceded by a `# nodes edges` comment header.
void WriteEdgeList(const Graph& g, std::ostream& out);

/// Writes `g` to a file. Throws std::runtime_error if the file cannot be
/// created.
void WriteEdgeListFile(const Graph& g, const std::string& path);

}  // namespace kvcc

#endif  // KVCC_GRAPH_GRAPH_IO_H_
