// Mutable accumulator that produces immutable Graph objects.
#ifndef KVCC_GRAPH_GRAPH_BUILDER_H_
#define KVCC_GRAPH_GRAPH_BUILDER_H_

#include <span>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace kvcc {

/// Collects edges (duplicates and self-loops tolerated) and builds a
/// normalized CSR Graph. Vertex count grows automatically to cover the
/// largest endpoint seen; it can also be fixed up-front to include isolated
/// vertices.
class GraphBuilder {
 public:
  GraphBuilder() = default;
  explicit GraphBuilder(VertexId num_vertices) : num_vertices_(num_vertices) {}

  /// Adds an undirected edge. Self-loops are silently dropped.
  void AddEdge(VertexId u, VertexId v);

  /// Ensures the built graph has at least `v + 1` vertices.
  void EnsureVertex(VertexId v);

  /// Attaches root-graph labels (size must equal the final vertex count).
  void SetLabels(std::vector<VertexId> labels);

  /// Copies `g`'s labels as this builder's labels, reusing the builder's
  /// label buffer (no allocation in steady state).
  void SetLabelsFrom(const Graph& g);

  /// Labels the built graph so vertex i names subset[i]: with as_root the
  /// label is subset[i] itself (seeding a chain that bottoms out at g),
  /// otherwise g's label of subset[i] (composing through g's chain). Reuses
  /// the builder's label buffer. Exactly the label rule of
  /// Graph::InducedSubgraph[AsRoot] — the fused prune pass uses this to
  /// build component subgraphs without the intermediate whole-core Graph.
  void SetLabelsFromSubset(const Graph& g, std::span<const VertexId> subset,
                           bool as_root);

  VertexId NumVertices() const { return num_vertices_; }
  std::size_t NumEdgeEntries() const { return edges_.size(); }

  /// Normalizes (sort, dedup) and produces the Graph. The builder is left
  /// empty afterwards.
  Graph Build();

  /// Like Build(), but writes into `out`, reusing its CSR storage (and the
  /// builder's own buffers keep their capacity too). A builder + Graph pair
  /// cycled through AddEdge.../BuildInto reaches a steady state with no
  /// allocations once capacities have grown to the largest graph seen —
  /// this is what keeps the per-worker sparse-certificate rebuild off the
  /// allocator on the GLOBAL-CUT hot path.
  void BuildInto(Graph& out);

 private:
  VertexId num_vertices_ = 0;
  std::vector<std::pair<VertexId, VertexId>> edges_;
  std::vector<VertexId> labels_;
  std::vector<std::uint64_t> cursor_;  // BuildInto fill positions
};

}  // namespace kvcc

#endif  // KVCC_GRAPH_GRAPH_BUILDER_H_
