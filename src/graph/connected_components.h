// Connected components of an undirected graph.
//
// Two labelings are provided: the serial BFS reference here (allocating
// wrapper + a pooled-scratch variant for hot callers) and the flat-parallel
// Afforest kernel in graph/preprocess.h. Both assign the same canonical
// labels — component ids in increasing order of each component's smallest
// vertex — so callers can swap them freely.
#ifndef KVCC_GRAPH_CONNECTED_COMPONENTS_H_
#define KVCC_GRAPH_CONNECTED_COMPONENTS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace kvcc {

/// Assigns a component id in [0, count) to every vertex.
struct ComponentLabeling {
  std::vector<std::uint32_t> component_of;  // size n
  std::uint32_t count = 0;
};

/// Reusable scratch for LabelComponentsInto (epoch-stamped visited marks,
/// SweepContext shape: stamps start at 0, epochs at 1, payload arrays only
/// ever grow). One instance per worker serves every call without per-call
/// clearing or allocation once warm.
struct CcScratch {
  std::uint64_t epoch = 0;
  std::vector<std::uint64_t> visited_stamp;
  std::vector<VertexId> queue;
};

/// BFS-based component labeling. O(n + m).
ComponentLabeling LabelComponents(const Graph& g);

/// LabelComponents into caller-owned storage: `out.component_of` is
/// resized to n and fully rewritten, `scratch` supplies the BFS queue and
/// the epoch-stamped visited marks. Allocation-free once both have grown
/// to the largest graph seen.
void LabelComponentsInto(const Graph& g, CcScratch& scratch,
                         ComponentLabeling& out);

/// Vertex sets of all connected components, each sorted ascending; the list
/// is ordered by smallest contained vertex.
std::vector<std::vector<VertexId>> ConnectedComponents(const Graph& g);

/// True iff g is connected (the empty graph counts as connected).
bool IsConnected(const Graph& g);

}  // namespace kvcc

#endif  // KVCC_GRAPH_CONNECTED_COMPONENTS_H_
