// Connected components of an undirected graph.
#ifndef KVCC_GRAPH_CONNECTED_COMPONENTS_H_
#define KVCC_GRAPH_CONNECTED_COMPONENTS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace kvcc {

/// Assigns a component id in [0, count) to every vertex.
struct ComponentLabeling {
  std::vector<std::uint32_t> component_of;  // size n
  std::uint32_t count = 0;
};

/// BFS-based component labeling. O(n + m).
ComponentLabeling LabelComponents(const Graph& g);

/// Vertex sets of all connected components, each sorted ascending; the list
/// is ordered by smallest contained vertex.
std::vector<std::vector<VertexId>> ConnectedComponents(const Graph& g);

/// True iff g is connected (the empty graph counts as connected).
bool IsConnected(const Graph& g);

}  // namespace kvcc

#endif  // KVCC_GRAPH_CONNECTED_COMPONENTS_H_
