// Core immutable undirected graph type used across the library.
//
// Vertices of a Graph are contiguous ids [0, n). Because the k-VCC algorithm
// recursively partitions graphs into overlapped subgraphs, every Graph keeps
// a label per vertex naming the corresponding vertex of the *root* graph the
// subgraph chain started from; labels compose automatically through
// InducedSubgraph(). Results are reported in label space.
#ifndef KVCC_GRAPH_GRAPH_H_
#define KVCC_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace kvcc {

using VertexId = std::uint32_t;

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);

/// Immutable undirected simple graph in CSR (compressed sparse row) form.
/// Neighbor lists are sorted, enabling O(log d) adjacency queries and linear
/// merges for common-neighbor counting. Construction goes through
/// GraphBuilder (or the static factory below).
class Graph {
 public:
  Graph() = default;

  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  /// Builds a graph with vertices [0, num_vertices) from an edge list.
  /// Self-loops are dropped and duplicate edges are collapsed.
  static Graph FromEdges(VertexId num_vertices,
                         std::span<const std::pair<VertexId, VertexId>> edges);

  /// Adopts already-normalized CSR arrays directly (no copy). The caller
  /// guarantees the invariants Graph maintains everywhere else: offsets has
  /// num_vertices + 1 monotone entries ending at adjacency.size(), each
  /// neighbor list is sorted, strictly increasing (no duplicates, no
  /// self-loops), and every edge appears in both directions. Checked by
  /// assertions in debug builds. `labels` may be empty (identity). This is
  /// the seam the parallel edge-list loader builds through — it produces
  /// normalized CSR without a GraphBuilder edge-pair pass.
  static Graph FromCsr(VertexId num_vertices,
                       std::vector<std::uint64_t> offsets,
                       std::vector<VertexId> adjacency,
                       std::vector<VertexId> labels = {});

  VertexId NumVertices() const { return num_vertices_; }

  /// Number of undirected edges.
  std::uint64_t NumEdges() const { return num_edges_; }

  /// Sorted neighbor list of v.
  std::span<const VertexId> Neighbors(VertexId v) const {
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }

  VertexId Degree(VertexId v) const {
    return static_cast<VertexId>(offsets_[v + 1] - offsets_[v]);
  }

  /// O(log d) adjacency test.
  bool HasEdge(VertexId u, VertexId v) const;

  /// Root-graph name of vertex v. Identity when this graph *is* the root.
  VertexId LabelOf(VertexId v) const {
    return labels_.empty() ? v : labels_[v];
  }

  /// True if the graph carries a non-identity label mapping.
  bool HasLabels() const { return !labels_.empty(); }

  /// Maps a list of local vertex ids to root-graph labels.
  std::vector<VertexId> LabelsOf(std::span<const VertexId> vertices) const;

  /// Subgraph induced by `vertices` (local ids; duplicates allowed and
  /// ignored). The result has contiguous ids and composed labels.
  Graph InducedSubgraph(std::span<const VertexId> vertices) const;

  /// Like InducedSubgraph, but labels the result with *this graph's local
  /// ids*, ignoring any labels this graph carries. Seeds a subgraph chain
  /// that bottoms out here — equivalent to WithIdentityLabels()
  /// .InducedSubgraph(vertices) without materializing the identity copy.
  Graph InducedSubgraphAsRoot(std::span<const VertexId> vertices) const;

  /// Copy of this graph with labels reset to the identity. Algorithms that
  /// report results in *this graph's* id space seed their subgraph chain
  /// with this copy so that label composition bottoms out here.
  Graph WithIdentityLabels() const {
    Graph copy = *this;
    copy.labels_.clear();
    return copy;
  }

  /// All edges as (u, v) pairs with u < v, lexicographically sorted.
  std::vector<std::pair<VertexId, VertexId>> Edges() const;

  /// 2m / n; 0 for the empty graph. (Matches the "Density" column of the
  /// paper's Table 1, which reports average degree.)
  double AverageDegree() const;

  VertexId MaxDegree() const;

  /// Vertex with minimum degree (smallest id wins ties); kInvalidVertex for
  /// the empty graph.
  VertexId MinDegreeVertex() const;

  /// Structural equality (same vertex count, same adjacency; labels ignored).
  bool SameStructure(const Graph& other) const {
    return num_vertices_ == other.num_vertices_ &&
           offsets_ == other.offsets_ && adjacency_ == other.adjacency_;
  }

  /// Approximate heap footprint of this graph object, in bytes.
  std::uint64_t MemoryBytes() const;

 private:
  friend class GraphBuilder;
  // The dynamic-graph delta merge (graph/delta_store.h) writes CSR rows
  // into a reused Graph in place — the seam FromCsr/BuildInto lack.
  friend class DeltaApplier;

  Graph InduceImpl(std::span<const VertexId> vertices, bool as_root) const;

  VertexId num_vertices_ = 0;
  std::uint64_t num_edges_ = 0;
  std::vector<std::uint64_t> offsets_;  // size n+1
  std::vector<VertexId> adjacency_;     // size 2m, sorted per vertex
  std::vector<VertexId> labels_;        // size n, or empty for identity
};

}  // namespace kvcc

#endif  // KVCC_GRAPH_GRAPH_H_
