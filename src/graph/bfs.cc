#include "graph/bfs.h"

namespace kvcc {

std::uint32_t BfsDistances(const Graph& g, VertexId src,
                           std::vector<std::uint32_t>& dist) {
  dist.assign(g.NumVertices(), kUnreachable);
  std::vector<VertexId> queue;
  dist[src] = 0;
  queue.push_back(src);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const VertexId u = queue[head];
    for (VertexId w : g.Neighbors(u)) {
      if (dist[w] == kUnreachable) {
        dist[w] = dist[u] + 1;
        queue.push_back(w);
      }
    }
  }
  return static_cast<std::uint32_t>(queue.size());
}

std::vector<VertexId> BfsOrder(const Graph& g, VertexId src) {
  std::vector<bool> seen(g.NumVertices(), false);
  std::vector<VertexId> queue;
  seen[src] = true;
  queue.push_back(src);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const VertexId u = queue[head];
    for (VertexId w : g.Neighbors(u)) {
      if (!seen[w]) {
        seen[w] = true;
        queue.push_back(w);
      }
    }
  }
  return queue;
}

std::pair<VertexId, std::uint32_t> FarthestVertex(const Graph& g,
                                                  VertexId src) {
  std::vector<std::uint32_t> dist;
  BfsDistances(g, src, dist);
  VertexId best = src;
  std::uint32_t best_dist = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (dist[v] != kUnreachable && dist[v] > best_dist) {
      best = v;
      best_dist = dist[v];
    }
  }
  return {best, best_dist};
}

std::uint32_t Eccentricity(const Graph& g, VertexId src) {
  return FarthestVertex(g, src).second;
}

}  // namespace kvcc
