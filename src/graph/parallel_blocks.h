// Block-chunked ParallelFor for the flat preprocessing kernels.
//
// The preprocessing kernels (bucket k-core peel, Afforest CC, fused prune)
// are data-parallel over vertex or frontier ranges. Chunking the range into
// fixed-size blocks keeps the per-index ParallelFor overhead (one shared
// atomic claim per block, not per vertex) negligible, and the parallel
// engagement rule is a pure function of the input graph so the serial/
// parallel decision — like every other knob in this codebase — cannot
// change results.
#ifndef KVCC_GRAPH_PARALLEL_BLOCKS_H_
#define KVCC_GRAPH_PARALLEL_BLOCKS_H_

#include <algorithm>
#include <cstddef>

#include "exec/task_scheduler.h"

namespace kvcc {
namespace detail {

/// Graphs below this vertex count run the serial kernel even when a
/// multi-worker scheduler is available: the fork-join cost exceeds the
/// traversal on small working graphs (the recursion tail), and the cutoff
/// being a pure function of the input preserves replay determinism.
inline constexpr std::size_t kPreprocessParallelCutoff = 2048;

/// Indices per ParallelFor block (one shared-counter claim per block).
inline constexpr std::size_t kPreprocessBlock = 4096;

/// True when the preprocessing kernels should take their parallel path.
inline bool UsePreprocessParallel(exec::TaskScheduler* scheduler,
                                  std::size_t n) {
  return scheduler != nullptr && scheduler->num_workers() > 1 &&
         n >= kPreprocessParallelCutoff;
}

/// Runs body(begin, end, slot) over contiguous blocks of [0, count).
/// Slots follow ParallelFor's contract: size per-slot scratch to
/// num_workers() + 1.
template <typename Body>
void ForBlocks(exec::TaskScheduler& scheduler, std::size_t count,
               exec::TaskPriority priority, Body&& body) {
  const std::size_t blocks =
      (count + kPreprocessBlock - 1) / kPreprocessBlock;
  scheduler.ParallelFor(
      blocks,
      [&](std::size_t block, unsigned slot) {
        const std::size_t begin = block * kPreprocessBlock;
        const std::size_t end = std::min(count, begin + kPreprocessBlock);
        body(begin, end, slot);
      },
      priority);
}

}  // namespace detail
}  // namespace kvcc

#endif  // KVCC_GRAPH_PARALLEL_BLOCKS_H_
