// Dynamic-graph substrate: an LSM-style in-memory delta over the
// immutable CSR Graph.
//
// A VersionedGraph holds one materialized, immutable Graph per version
// behind a shared_ptr plus an append-only edge memtable (inserts and
// tombstoned deletes, stamped with the version that applied them).
// Snapshot() hands out the current materialized graph; because every
// version is a distinct immutable object, an in-flight decomposition job
// keeps reading its submission-time graph — byte-identical output — while
// any number of mutation batches land behind it. Compact() folds the
// memtable into the current materialization, resetting the catch-up
// horizon (EffectiveSince) without touching any outstanding snapshot.
//
// Materialization cost is one DeltaApplier merge per batch: the previous
// version's CSR rows are merged with the batch's per-vertex sorted delta
// into a reused buffer (the retired version's storage, once no snapshot
// holds it), so steady-state mutation applies without heap allocation —
// see the memhook test WarmDeltaApplyAllocatesNothing and docs/DYNAMIC.md.
#ifndef KVCC_GRAPH_DELTA_STORE_H_
#define KVCC_GRAPH_DELTA_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "graph/graph.h"

/// \file
/// \brief VersionedGraph: snapshot-isolated edge memtable over an
/// immutable base Graph, with a no-alloc CSR merge (DeltaApplier) and
/// Compact() folding.

namespace kvcc {

/// \brief One normalized, effective edge mutation (u < v).
///
/// "Effective" means the mutation changed the graph: an insert of an edge
/// that was absent, or a delete (tombstone) of an edge that was present.
/// VersionedGraph normalizes every incoming batch down to its effective
/// subset before recording or applying it.
struct EdgeDelta {
  /// \brief Smaller endpoint.
  VertexId u = 0;
  /// \brief Larger endpoint.
  VertexId v = 0;
  /// \brief True for an insert, false for a tombstoned delete.
  bool insert = true;
};

/// \brief Merges one effective batch into a base graph's CSR arrays,
/// reusing the output graph's storage.
///
/// This is the seam Graph::FromCsr / GraphBuilder::BuildInto lack: both
/// assume the edge set is final at build time, so a per-batch rebuild
/// through them costs a full edge-pair pass and fresh allocations.
/// DeltaApplier instead counting-sorts the batch's directed ops by source
/// row and two-pointer-merges each touched CSR row, writing into `out`'s
/// existing vectors. All scratch is owned by the applier and grows
/// monotonically, so a warm Apply performs zero heap allocation (memhook
/// test WarmDeltaApplyAllocatesNothing; inner merge annotated for
/// kvcc-lint R3).
class DeltaApplier {
 public:
  /// \brief Materializes `base` + `batch` into `out`.
  ///
  /// Requirements (debug-asserted): `base` carries no label mapping (the
  /// delta store works in root-id space), every delta has u < v, inserts
  /// are absent from `base`, deletes are present in it, and no (u, v)
  /// pair appears twice in the batch. The output vertex count is
  /// max(base vertices, largest endpoint + 1) — inserts may grow the
  /// graph. `out` must not alias `base`.
  /// \param base The previous materialization.
  /// \param batch Normalized effective deltas (any order).
  /// \param out Receives the new materialization (storage reused).
  void Apply(const Graph& base, std::span<const EdgeDelta> batch, Graph& out);

 private:
  // One direction of one delta, counting-sorted by src.
  struct DirectedOp {
    VertexId src = 0;
    VertexId dst = 0;
    bool is_insert = true;
  };

  // The allocation-free inner kernel: two-pointer merge of every CSR row
  // with its sorted op range into out's already-sized arrays.
  void MergeRowsInto(const Graph& base, VertexId n, Graph& out) const;

  // Grow-only scratch: directed ops sorted by (src, dst), and the op
  // range per source row (CSR-style offsets, size n+1).
  std::vector<DirectedOp> ops_;
  std::vector<std::uint64_t> op_offsets_;
  std::vector<std::uint64_t> op_cursor_;
};

/// \brief An immutable view of one VersionedGraph version.
///
/// The graph pointer stays valid (and its contents frozen) for as long as
/// the snapshot is held, regardless of later mutations or compactions.
struct GraphSnapshot {
  /// \brief The materialized graph of this version.
  std::shared_ptr<const Graph> graph;
  /// \brief The version counter value this snapshot reflects.
  std::uint64_t version = 0;
};

/// \brief Thread-safe versioned graph: immutable base + append-only edge
/// memtable, snapshot isolation, and delta compaction.
///
/// All mutating calls are serialized internally; Snapshot() may race with
/// them freely. Only edge mutations are supported — inserts may introduce
/// new (higher-id) vertices, deletes never remove vertices.
class VersionedGraph {
 public:
  /// \brief Wraps an initial base graph (version 0).
  /// \param base The starting graph; must not carry a label mapping
  ///   (the delta store works in root-id space).
  /// \throws std::invalid_argument if `base` has labels.
  explicit VersionedGraph(Graph base = Graph());

  /// \brief VersionedGraphs are not copyable (they own a mutex and
  /// buffer-reuse state).
  VersionedGraph(const VersionedGraph&) = delete;
  /// \brief VersionedGraphs are not copyable (they own a mutex and
  /// buffer-reuse state).
  VersionedGraph& operator=(const VersionedGraph&) = delete;

  /// \brief The current version's immutable view.
  /// \return Graph pointer + version; never null.
  GraphSnapshot Snapshot() const;

  /// \brief Current version counter (bumped once per effective batch).
  /// \return The version.
  std::uint64_t Version() const;

  /// \brief Version the memtable is relative to (last Compact, or 0).
  /// \return The base version.
  std::uint64_t BaseVersion() const;

  /// \brief Effective deltas currently in the memtable.
  /// \return The count (0 right after Compact()).
  std::size_t DeltaEdges() const;

  /// \brief Effective deltas applied over the graph's whole lifetime
  /// (survives Compact()).
  /// \return The cumulative count.
  std::uint64_t AppliedTotal() const;

  /// \brief Applies an insert batch.
  ///
  /// Self-loops are dropped, duplicates collapsed, and edges already
  /// present ignored; the version advances only if the effective subset
  /// is non-empty.
  /// \param edges Endpoint pairs in any order.
  /// \return Number of effective inserts applied.
  std::size_t InsertEdges(
      std::span<const std::pair<VertexId, VertexId>> edges);

  /// \brief Applies a delete batch (tombstones).
  ///
  /// Self-loops, duplicates, and edges not present are ignored; the
  /// version advances only if the effective subset is non-empty.
  /// \param edges Endpoint pairs in any order.
  /// \return Number of effective deletes applied.
  std::size_t DeleteEdges(
      std::span<const std::pair<VertexId, VertexId>> edges);

  /// \brief Folds the memtable into the current materialization.
  ///
  /// The current version becomes the new base: DeltaEdges() drops to 0
  /// and EffectiveSince() can no longer replay across the fold. No
  /// snapshot is disturbed and the version counter does not change.
  /// \return Number of memtable deltas folded away.
  std::size_t Compact();

  /// \brief Replays the effective deltas applied after `since`.
  ///
  /// The catch-up path for incremental consumers: a consumer at version
  /// `since` appends exactly the deltas it is missing. Fails (returns
  /// false, appends nothing) when `since` predates the base version — a
  /// Compact() folded part of the needed history, so the consumer must
  /// rebuild from a fresh Snapshot() instead.
  /// \param since The consumer's current version.
  /// \param out Receives the missing deltas, oldest first.
  /// \return Whether the memtable still covers `since`.
  bool EffectiveSince(std::uint64_t since, std::vector<EdgeDelta>& out) const;

 private:
  std::size_t Mutate(std::span<const std::pair<VertexId, VertexId>> edges,
                     bool insert);

  struct MemtableEntry {
    EdgeDelta delta;
    std::uint64_t version = 0;
  };

  mutable std::mutex mutex_;
  std::shared_ptr<Graph> current_;  // handed out as shared_ptr<const Graph>
  std::shared_ptr<Graph> retired_;  // previous version; reused when unique
  DeltaApplier applier_;
  std::vector<MemtableEntry> memtable_;
  std::vector<EdgeDelta> batch_;  // normalization scratch
  std::uint64_t version_ = 0;
  std::uint64_t base_version_ = 0;
  std::uint64_t applied_total_ = 0;
};

}  // namespace kvcc

#endif  // KVCC_GRAPH_DELTA_STORE_H_
