#include "graph/connected_components.h"

namespace kvcc {

ComponentLabeling LabelComponents(const Graph& g) {
  const VertexId n = g.NumVertices();
  ComponentLabeling out;
  out.component_of.assign(n, static_cast<std::uint32_t>(-1));
  std::vector<VertexId> queue;
  for (VertexId start = 0; start < n; ++start) {
    if (out.component_of[start] != static_cast<std::uint32_t>(-1)) continue;
    const std::uint32_t id = out.count++;
    out.component_of[start] = id;
    queue.clear();
    queue.push_back(start);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const VertexId u = queue[head];
      for (VertexId w : g.Neighbors(u)) {
        if (out.component_of[w] == static_cast<std::uint32_t>(-1)) {
          out.component_of[w] = id;
          queue.push_back(w);
        }
      }
    }
  }
  return out;
}

std::vector<std::vector<VertexId>> ConnectedComponents(const Graph& g) {
  const ComponentLabeling labeling = LabelComponents(g);
  std::vector<std::vector<VertexId>> components(labeling.count);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    components[labeling.component_of[v]].push_back(v);
  }
  return components;  // Vertex order within each component is ascending.
}

bool IsConnected(const Graph& g) {
  if (g.NumVertices() == 0) return true;
  return LabelComponents(g).count == 1;
}

}  // namespace kvcc
