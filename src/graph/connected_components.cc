#include "graph/connected_components.h"

namespace kvcc {

// Steady-state zero-allocation is asserted dynamically by
// memory_tracker_test.WarmLabelComponentsIntoAllocatesNothing; the grow-only
// resizes below run only when the graph outgrows the scratch watermark (a
// cold-path event).
// kvcc-lint: no-alloc
void LabelComponentsInto(const Graph& g, CcScratch& scratch,
                         ComponentLabeling& out) {
  const VertexId n = g.NumVertices();
  if (scratch.visited_stamp.size() < n) {
    scratch.visited_stamp.resize(n, 0);  // kvcc-lint: reserved
  }
  if (scratch.queue.capacity() < n) {
    scratch.queue.reserve(n);  // kvcc-lint: reserved
  }
  // Allocation-free once capacity has grown to the watermark (shrinks never
  // reallocate, and every element is overwritten below).
  out.component_of.resize(n);  // kvcc-lint: reserved
  out.count = 0;
  const std::uint64_t epoch = ++scratch.epoch;
  std::vector<VertexId>& queue = scratch.queue;
  for (VertexId start = 0; start < n; ++start) {
    if (scratch.visited_stamp[start] == epoch) continue;
    const std::uint32_t id = out.count++;
    scratch.visited_stamp[start] = epoch;
    out.component_of[start] = id;
    queue.clear();
    queue.push_back(start);  // kvcc-lint: reserved
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const VertexId u = queue[head];
      for (VertexId w : g.Neighbors(u)) {
        if (scratch.visited_stamp[w] != epoch) {
          scratch.visited_stamp[w] = epoch;
          out.component_of[w] = id;
          queue.push_back(w);  // kvcc-lint: reserved
        }
      }
    }
  }
}

ComponentLabeling LabelComponents(const Graph& g) {
  CcScratch scratch;
  ComponentLabeling out;
  LabelComponentsInto(g, scratch, out);
  return out;
}

std::vector<std::vector<VertexId>> ConnectedComponents(const Graph& g) {
  const ComponentLabeling labeling = LabelComponents(g);
  std::vector<std::vector<VertexId>> components(labeling.count);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    components[labeling.component_of[v]].push_back(v);
  }
  return components;  // Vertex order within each component is ascending.
}

bool IsConnected(const Graph& g) {
  if (g.NumVertices() == 0) return true;
  return LabelComponents(g).count == 1;
}

}  // namespace kvcc
