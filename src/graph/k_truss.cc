#include "graph/k_truss.h"

#include <algorithm>

#include "graph/graph_builder.h"

namespace kvcc {
namespace {

/// Edge-id lookup: edges indexed as in Graph::Edges() ((u,v), u < v,
/// lexicographic).
struct EdgeIndex {
  explicit EdgeIndex(const Graph& g) : offsets(g.NumVertices() + 1, 0) {
    for (VertexId u = 0; u < g.NumVertices(); ++u) {
      std::uint64_t larger = 0;
      for (VertexId v : g.Neighbors(u)) {
        if (v > u) ++larger;
      }
      offsets[u + 1] = offsets[u] + larger;
    }
  }

  /// Id of edge (u, v) with u < v: rank of v among u's larger neighbors.
  std::uint64_t IdOf(const Graph& g, VertexId u, VertexId v) const {
    const auto nbrs = g.Neighbors(u);
    const auto first_larger =
        std::upper_bound(nbrs.begin(), nbrs.end(), u);
    const auto it = std::lower_bound(first_larger, nbrs.end(), v);
    return offsets[u] + static_cast<std::uint64_t>(it - first_larger);
  }

  std::vector<std::uint64_t> offsets;
};

}  // namespace

std::vector<std::uint32_t> TrussNumbers(const Graph& g) {
  const auto edges = g.Edges();
  const std::uint64_t m = edges.size();
  const EdgeIndex index(g);

  // Support = number of triangles containing each edge.
  std::vector<std::uint32_t> support(m, 0);
  for (std::uint64_t e = 0; e < m; ++e) {
    const auto [u, v] = edges[e];
    const auto nu = g.Neighbors(u);
    const auto nv = g.Neighbors(v);
    std::size_t i = 0, j = 0;
    while (i < nu.size() && j < nv.size()) {
      if (nu[i] < nv[j]) {
        ++i;
      } else if (nu[i] > nv[j]) {
        ++j;
      } else {
        ++support[e];
        ++i;
        ++j;
      }
    }
  }

  // Peel edges in nondecreasing support order (bucket queue).
  std::vector<std::uint32_t> truss(m, 2);
  std::vector<bool> removed(m, false);
  std::uint32_t max_support = 0;
  for (std::uint32_t s : support) max_support = std::max(max_support, s);
  std::vector<std::vector<std::uint64_t>> buckets(max_support + 1);
  for (std::uint64_t e = 0; e < m; ++e) buckets[support[e]].push_back(e);

  std::uint32_t current = 0;
  std::uint64_t processed = 0;
  while (processed < m) {
    // Find the lowest non-empty bucket at or below any reachable level.
    std::uint64_t e = static_cast<std::uint64_t>(-1);
    for (std::uint32_t s = 0; s <= max_support; ++s) {
      while (!buckets[s].empty()) {
        const std::uint64_t candidate = buckets[s].back();
        if (removed[candidate] || support[candidate] != s) {
          buckets[s].pop_back();  // Stale entry.
          continue;
        }
        e = candidate;
        break;
      }
      if (e != static_cast<std::uint64_t>(-1)) break;
    }
    if (e == static_cast<std::uint64_t>(-1)) break;

    current = std::max(current, support[e] + 2);
    truss[e] = current;
    removed[e] = true;
    ++processed;
    buckets[support[e]].pop_back();

    // Decrement the support of the two companion edges of every triangle
    // through e.
    const auto [u, v] = edges[e];
    const auto nu = g.Neighbors(u);
    const auto nv = g.Neighbors(v);
    std::size_t i = 0, j = 0;
    while (i < nu.size() && j < nv.size()) {
      if (nu[i] < nv[j]) {
        ++i;
      } else if (nu[i] > nv[j]) {
        ++j;
      } else {
        const VertexId w = nu[i];
        const std::uint64_t eu =
            index.IdOf(g, std::min(u, w), std::max(u, w));
        const std::uint64_t ev =
            index.IdOf(g, std::min(v, w), std::max(v, w));
        if (!removed[eu] && !removed[ev]) {
          for (const std::uint64_t other : {eu, ev}) {
            --support[other];
            buckets[support[other]].push_back(other);
          }
        }
        ++i;
        ++j;
      }
    }
  }
  return truss;
}

Graph KTrussSubgraph(const Graph& g, std::uint32_t k) {
  const auto edges = g.Edges();
  const auto truss = TrussNumbers(g);
  std::vector<VertexId> keep_vertices;
  std::vector<bool> touched(g.NumVertices(), false);
  std::vector<std::pair<VertexId, VertexId>> kept;
  for (std::uint64_t e = 0; e < edges.size(); ++e) {
    if (truss[e] >= k) {
      kept.push_back(edges[e]);
      touched[edges[e].first] = true;
      touched[edges[e].second] = true;
    }
  }
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (touched[v]) keep_vertices.push_back(v);
  }
  // Induced on the touched vertices, then drop the sub-threshold edges by
  // rebuilding from the kept list (an induced subgraph would re-add them).
  std::vector<VertexId> local(g.NumVertices(), kInvalidVertex);
  for (VertexId i = 0; i < keep_vertices.size(); ++i) {
    local[keep_vertices[i]] = i;
  }
  GraphBuilder builder(static_cast<VertexId>(keep_vertices.size()));
  for (const auto& [u, v] : kept) builder.AddEdge(local[u], local[v]);
  std::vector<VertexId> labels;
  labels.reserve(keep_vertices.size());
  for (VertexId v : keep_vertices) labels.push_back(g.LabelOf(v));
  builder.SetLabels(std::move(labels));
  return builder.Build();
}

std::uint32_t Trussness(const Graph& g) {
  std::uint32_t best = 0;
  for (std::uint32_t t : TrussNumbers(g)) best = std::max(best, t);
  return best;
}

}  // namespace kvcc
