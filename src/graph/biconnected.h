// Biconnected components (blocks) and cut vertices via Hopcroft–Tarjan.
//
// Blocks with >= 3 vertices are exactly the maximal 2-vertex-connected
// subgraphs, so this module doubles as an independent reference for k = 2
// in the k-VCC property tests.
#ifndef KVCC_GRAPH_BICONNECTED_H_
#define KVCC_GRAPH_BICONNECTED_H_

#include <vector>

#include "graph/graph.h"

namespace kvcc {

struct BiconnectedDecomposition {
  /// Vertex sets of each block (sorted ascending). Bridge edges form
  /// 2-vertex blocks; isolated vertices form no block.
  std::vector<std::vector<VertexId>> blocks;
  /// Articulation points, sorted ascending.
  std::vector<VertexId> cut_vertices;
};

/// Iterative Hopcroft–Tarjan. O(n + m).
BiconnectedDecomposition BiconnectedComponents(const Graph& g);

/// Blocks with at least `min_size` vertices (e.g. 3 to obtain the maximal
/// 2-vertex-connected subgraphs).
std::vector<std::vector<VertexId>> BlocksOfAtLeast(const Graph& g,
                                                   std::size_t min_size);

}  // namespace kvcc

#endif  // KVCC_GRAPH_BICONNECTED_H_
