#include "graph/biconnected.h"

#include <algorithm>
#include <cstdint>

namespace kvcc {
namespace {

struct Frame {
  VertexId vertex;
  VertexId parent;
  std::uint32_t next_neighbor;  // index into Neighbors(vertex)
};

}  // namespace

BiconnectedDecomposition BiconnectedComponents(const Graph& g) {
  const VertexId n = g.NumVertices();
  BiconnectedDecomposition out;

  std::vector<std::uint32_t> disc(n, 0), low(n, 0);
  std::vector<bool> is_cut(n, false);
  std::vector<std::pair<VertexId, VertexId>> edge_stack;
  std::vector<Frame> call_stack;
  std::uint32_t timestamp = 0;

  auto pop_block = [&](VertexId u, VertexId w) {
    // Pop edges up to and including (u, w); their endpoints form one block.
    std::vector<VertexId> members;
    while (!edge_stack.empty()) {
      const auto [a, b] = edge_stack.back();
      edge_stack.pop_back();
      members.push_back(a);
      members.push_back(b);
      if (a == u && b == w) break;
    }
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()), members.end());
    out.blocks.push_back(std::move(members));
  };

  for (VertexId root = 0; root < n; ++root) {
    if (disc[root] != 0) continue;
    std::uint32_t root_children = 0;
    disc[root] = low[root] = ++timestamp;
    call_stack.push_back({root, kInvalidVertex, 0});

    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const VertexId u = frame.vertex;
      const auto nbrs = g.Neighbors(u);

      if (frame.next_neighbor < nbrs.size()) {
        const VertexId w = nbrs[frame.next_neighbor++];
        if (disc[w] == 0) {
          // Tree edge: descend.
          edge_stack.emplace_back(u, w);
          disc[w] = low[w] = ++timestamp;
          if (u == root) ++root_children;
          call_stack.push_back({w, u, 0});
        } else if (w != frame.parent && disc[w] < disc[u]) {
          // Back edge to an ancestor.
          edge_stack.emplace_back(u, w);
          low[u] = std::min(low[u], disc[w]);
        }
      } else {
        // All neighbors done: return to parent.
        call_stack.pop_back();
        if (call_stack.empty()) break;
        const VertexId parent = call_stack.back().vertex;
        low[parent] = std::min(low[parent], low[u]);
        if (low[u] >= disc[parent]) {
          // `parent` separates u's subtree: close a block.
          if (parent != root || root_children >= 1) {
            pop_block(parent, u);
          }
          if (parent != root) is_cut[parent] = true;
        }
      }
    }
    if (root_children >= 2) is_cut[root] = true;
  }

  for (VertexId v = 0; v < n; ++v) {
    if (is_cut[v]) out.cut_vertices.push_back(v);
  }
  return out;
}

std::vector<std::vector<VertexId>> BlocksOfAtLeast(const Graph& g,
                                                   std::size_t min_size) {
  BiconnectedDecomposition decomposition = BiconnectedComponents(g);
  std::vector<std::vector<VertexId>> out;
  for (auto& block : decomposition.blocks) {
    if (block.size() >= min_size) out.push_back(std::move(block));
  }
  return out;
}

}  // namespace kvcc
