// k-truss decomposition (Cohen 2008; paper Section 7, "local degree and
// triangulation" family). A k-truss is the maximal subgraph in which every
// edge participates in at least k-2 triangles. Like k-core it is cheap and
// unique; like k-core it suffers the free-rider effect the paper's k-VCCs
// eliminate — the library ships it as the third comparison model.
#ifndef KVCC_GRAPH_K_TRUSS_H_
#define KVCC_GRAPH_K_TRUSS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace kvcc {

/// Truss number per edge (aligned with Graph::Edges() order): the largest
/// k such that the edge survives in the k-truss. Edges in no triangle get
/// truss number 2. O(m^1.5) peeling.
std::vector<std::uint32_t> TrussNumbers(const Graph& g);

/// The k-truss subgraph (vertices with at least one surviving edge).
/// k >= 2; the 2-truss is g itself minus isolated vertices.
Graph KTrussSubgraph(const Graph& g, std::uint32_t k);

/// Maximum k with a non-empty k-truss (2 for triangle-free graphs with
/// edges, 0 for edgeless graphs).
std::uint32_t Trussness(const Graph& g);

}  // namespace kvcc

#endif  // KVCC_GRAPH_K_TRUSS_H_
