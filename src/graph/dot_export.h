// Graphviz (.dot) export for visual inspection of decompositions — used by
// the case-study harness to render the paper's Fig. 14 panels.
#ifndef KVCC_GRAPH_DOT_EXPORT_H_
#define KVCC_GRAPH_DOT_EXPORT_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace kvcc {

struct DotOptions {
  /// Optional display name per vertex (falls back to the label/id).
  std::vector<std::string> names;
  /// Optional group id per vertex (-1 = none); groups get distinct colors
  /// and vertices in 2+ groups are rendered black, as in the paper's
  /// Fig. 14(a).
  std::vector<std::vector<std::size_t>> groups_of;  // groups per vertex
  std::string graph_name = "G";
};

/// Writes an undirected Graphviz representation of g.
void WriteDot(const Graph& g, std::ostream& out,
              const DotOptions& options = {});

/// Writes to a file; throws std::runtime_error on IO failure.
void WriteDotFile(const Graph& g, const std::string& path,
                  const DotOptions& options = {});

}  // namespace kvcc

#endif  // KVCC_GRAPH_DOT_EXPORT_H_
