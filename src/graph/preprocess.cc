#include "graph/preprocess.h"

#include <algorithm>
#include <atomic>

#include "graph/parallel_blocks.h"
#include "util/random.h"

namespace kvcc {
namespace {

// Label of masked-out vertices; alive labels stay < n so this never
// collides (and it doubles as kInvalidVertex for callers).
constexpr std::uint32_t kNoComp = static_cast<std::uint32_t>(-1);

// Neighbor positions linked before sampling (Afforest phase A).
constexpr std::size_t kNeighborRounds = 2;

// Sampling engages only on graphs large enough for the skip set to pay for
// the snapshot pass; both constants are pure functions of nothing, so the
// sampled skip set replays identically for a given graph.
constexpr std::size_t kSampleMinVertices = 4096;
constexpr std::size_t kSampleCount = 1024;
constexpr std::uint64_t kSampleSeed = 0xaff04e57c0a1e5ceULL;

inline std::uint32_t LoadComp(const std::uint32_t& slot) {
  return std::atomic_ref<const std::uint32_t>(slot).load(
      std::memory_order_relaxed);
}

inline void StoreComp(std::uint32_t& slot, std::uint32_t value) {
  std::atomic_ref<std::uint32_t>(slot).store(value, std::memory_order_relaxed);
}

// Min-wins link: hook the larger of the two current roots under the
// smaller. Returns true on a successful hook (one union root retired).
inline bool Link(VertexId u, VertexId v, std::uint32_t* comp) {
  std::uint32_t p1 = LoadComp(comp[u]);
  std::uint32_t p2 = LoadComp(comp[v]);
  while (p1 != p2) {
    const std::uint32_t high = std::max(p1, p2);
    const std::uint32_t low = std::min(p1, p2);
    const std::uint32_t p_high = LoadComp(comp[high]);
    if (p_high == low) break;
    if (p_high == high) {
      std::uint32_t expected = high;
      if (std::atomic_ref<std::uint32_t>(comp[high])
              .compare_exchange_strong(expected, low,
                                       std::memory_order_relaxed)) {
        return true;
      }
    }
    p1 = LoadComp(comp[LoadComp(comp[high])]);
    p2 = LoadComp(comp[low]);
  }
  return false;
}

// Path-compress v's parent chain to the current root. Run in link-free
// phases only, so the chase terminates at a stable root.
inline void Compress(VertexId v, std::uint32_t* comp) {
  std::uint32_t p = LoadComp(comp[v]);
  std::uint32_t gp = LoadComp(comp[p]);
  while (p != gp) {
    StoreComp(comp[v], gp);
    p = gp;
    gp = LoadComp(comp[p]);
  }
}

// Runs body(begin, end, slot) over [0, count): one inline call on the
// serial path (slot 0), block-parallel otherwise.
template <typename Body>
void ForAll(exec::TaskScheduler* scheduler, bool parallel,
            exec::TaskPriority priority, std::size_t count, Body&& body) {
  if (parallel) {
    detail::ForBlocks(*scheduler, count, priority, body);
  } else if (count > 0) {
    body(std::size_t{0}, count, 0u);
  }
}

}  // namespace

std::uint64_t AfforestComponentsInto(const Graph& g, const PeelMask* mask,
                                     exec::TaskScheduler* scheduler,
                                     exec::TaskPriority priority,
                                     AfforestScratch& scratch,
                                     ComponentLabeling& out) {
  const VertexId n = g.NumVertices();
  const bool parallel = detail::UsePreprocessParallel(scheduler, n);
  const std::size_t slots = parallel ? scheduler->num_workers() + 1 : 1;
  out.component_of.resize(n);
  out.count = 0;
  if (scratch.skip.size() < n) scratch.skip.resize(n, 0);
  if (scratch.relabel.size() < n) scratch.relabel.resize(n);
  if (scratch.slot_hooks.size() < slots) scratch.slot_hooks.resize(slots);
  std::fill(scratch.slot_hooks.begin(), scratch.slot_hooks.end(), 0);
  std::uint32_t* comp = out.component_of.data();

  // Every vertex its own parent; masked-out vertices are parked on kNoComp
  // and never touched again (they are skipped as sources and as neighbors).
  ForAll(scheduler, parallel, priority, n,
         [&](std::size_t begin, std::size_t end, unsigned) {
           for (std::size_t v = begin; v < end; ++v) {
             comp[v] = (mask != nullptr &&
                        mask->Removed(static_cast<VertexId>(v)))
                           ? kNoComp
                           : static_cast<std::uint32_t>(v);
           }
         });

  // Phase A: link the first kNeighborRounds alive neighbors of every alive
  // vertex, then compress. Any alive edge missed here (because it sits at a
  // later position) is linked in phase B from its non-skipped endpoint.
  for (std::size_t r = 0; r < kNeighborRounds; ++r) {
    ForAll(scheduler, parallel, priority, n,
           [&](std::size_t begin, std::size_t end, unsigned slot) {
             std::uint64_t hooks = 0;
             for (std::size_t i = begin; i < end; ++i) {
               const VertexId v = static_cast<VertexId>(i);
               if (mask != nullptr && mask->Removed(v)) continue;
               const auto nbrs = g.Neighbors(v);
               if (r < nbrs.size()) {
                 const VertexId w = nbrs[r];
                 if (mask == nullptr || mask->Alive(w)) {
                   hooks += Link(v, w, comp) ? 1 : 0;
                 }
               }
             }
             scratch.slot_hooks[slot] += hooks;
           });
  }
  const auto compress_all = [&] {
    ForAll(scheduler, parallel, priority, n,
           [&](std::size_t begin, std::size_t end, unsigned) {
             for (std::size_t v = begin; v < end; ++v) {
               if (mask == nullptr ||
                   mask->Alive(static_cast<VertexId>(v))) {
                 Compress(static_cast<VertexId>(v), comp);
               }
             }
           });
  };
  compress_all();

  // Sample the (compressed, hence deterministic) labels to find the most
  // frequent component; its members can skip phase B entirely — their
  // remaining edges are either internal (redundant) or linked from the
  // other endpoint. The snapshot into `skip` happens after the compress
  // barrier, so the skip set does not depend on phase-B timing.
  std::uint32_t skip_comp = kNoComp;
  if (n >= kSampleMinVertices) {
    if (scratch.sample.capacity() < kSampleCount) {
      scratch.sample.reserve(kSampleCount);
    }
    scratch.sample.clear();
    Rng rng(kSampleSeed ^ static_cast<std::uint64_t>(n));
    for (std::size_t i = 0; i < kSampleCount; ++i) {
      const VertexId v = static_cast<VertexId>(rng.NextBounded(n));
      if (mask == nullptr || mask->Alive(v)) {
        scratch.sample.push_back(comp[v]);
      }
    }
    if (!scratch.sample.empty()) {
      std::sort(scratch.sample.begin(), scratch.sample.end());
      std::size_t best_len = 0, run = 1;
      for (std::size_t i = 1; i <= scratch.sample.size(); ++i) {
        if (i < scratch.sample.size() &&
            scratch.sample[i] == scratch.sample[i - 1]) {
          ++run;
        } else {
          if (run > best_len) {  // ties keep the earlier (smaller) value
            best_len = run;
            skip_comp = scratch.sample[i - 1];
          }
          run = 1;
        }
      }
    }
  }
  const bool has_skip = skip_comp != kNoComp;
  if (has_skip) {
    ForAll(scheduler, parallel, priority, n,
           [&](std::size_t begin, std::size_t end, unsigned) {
             for (std::size_t v = begin; v < end; ++v) {
               scratch.skip[v] = comp[v] == skip_comp ? 1 : 0;
             }
           });
  }

  // Phase B: finish the remaining neighbor positions of every alive,
  // non-skipped vertex, then compress. After this barrier comp[v] is the
  // minimum vertex of v's component (see the header's determinism note).
  ForAll(scheduler, parallel, priority, n,
         [&](std::size_t begin, std::size_t end, unsigned slot) {
           std::uint64_t hooks = 0;
           for (std::size_t i = begin; i < end; ++i) {
             const VertexId v = static_cast<VertexId>(i);
             if (mask != nullptr && mask->Removed(v)) continue;
             if (has_skip && scratch.skip[i] != 0) continue;
             const auto nbrs = g.Neighbors(v);
             for (std::size_t j = kNeighborRounds; j < nbrs.size(); ++j) {
               const VertexId w = nbrs[j];
               if (mask == nullptr || mask->Alive(w)) {
                 hooks += Link(v, w, comp) ? 1 : 0;
               }
             }
           }
           scratch.slot_hooks[slot] += hooks;
         });
  compress_all();

  // Canonical relabel: scan ascending, number roots in order. Because
  // comp[v] <= v for alive vertices, a root's dense id is always assigned
  // before any member reads it — and the resulting ids match the BFS
  // labeling (components numbered by smallest contained vertex).
  for (VertexId v = 0; v < n; ++v) {
    const std::uint32_t root = comp[v];
    if (root == kNoComp) continue;
    if (root == v) scratch.relabel[v] = out.count++;
    comp[v] = scratch.relabel[root];
  }

  std::uint64_t hooks = 0;
  for (const std::uint64_t h : scratch.slot_hooks) hooks += h;
  return hooks;
}

void GroupSurvivorsByComponent(FusedPruneScratch& scratch) {
  // Counting sort over the canonical labels. Survivors are scanned
  // ascending, so each component's member list comes out ascending too.
  const std::uint32_t count = scratch.labeling.count;
  scratch.comp_offsets.assign(count + 1, 0);
  for (const VertexId v : scratch.survivors) {
    ++scratch.comp_offsets[scratch.labeling.component_of[v] + 1];
  }
  for (std::uint32_t c = 0; c < count; ++c) {
    scratch.comp_offsets[c + 1] += scratch.comp_offsets[c];
  }
  scratch.comp_cursor.assign(scratch.comp_offsets.begin(),
                             scratch.comp_offsets.end() - 1);
  scratch.comp_vertices.resize(scratch.survivors.size());
  for (const VertexId v : scratch.survivors) {
    scratch.comp_vertices[scratch.comp_cursor[scratch.labeling
                                                  .component_of[v]]++] = v;
  }
}

PruneCounters FusedPrune(const Graph& g, std::uint32_t k,
                         exec::TaskScheduler* scheduler,
                         exec::TaskPriority priority,
                         FusedPruneScratch& scratch) {
  PruneCounters counters;
  counters.kcore_bucket_rounds = KCoreVerticesInto(
      g, k, scheduler, priority, scratch.kcore, scratch.survivors);
  const PeelMask mask = scratch.kcore.Mask();
  counters.cc_hooks = AfforestComponentsInto(g, &mask, scheduler, priority,
                                             scratch.cc, scratch.labeling);
  GroupSurvivorsByComponent(scratch);
  return counters;
}

}  // namespace kvcc
