#include "graph/dot_export.h"

#include <fstream>
#include <ostream>
#include <stdexcept>

namespace kvcc {
namespace {

const char* const kPalette[] = {"lightblue",   "lightgreen", "lightsalmon",
                                "gold",        "plum",       "khaki",
                                "lightcyan",   "mistyrose",  "palegreen",
                                "lavender"};
constexpr std::size_t kPaletteSize = sizeof(kPalette) / sizeof(kPalette[0]);

}  // namespace

void WriteDot(const Graph& g, std::ostream& out, const DotOptions& options) {
  out << "graph " << options.graph_name << " {\n";
  out << "  node [style=filled, fillcolor=white];\n";
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    out << "  " << v << " [label=\"";
    if (v < options.names.size() && !options.names[v].empty()) {
      out << options.names[v];
    } else {
      out << g.LabelOf(v);
    }
    out << "\"";
    if (v < options.groups_of.size()) {
      const auto& groups = options.groups_of[v];
      if (groups.size() > 1) {
        out << ", fillcolor=black, fontcolor=white";
      } else if (groups.size() == 1) {
        out << ", fillcolor=" << kPalette[groups[0] % kPaletteSize];
      }
    }
    out << "];\n";
  }
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    for (VertexId v : g.Neighbors(u)) {
      if (u < v) out << "  " << u << " -- " << v << ";\n";
    }
  }
  out << "}\n";
}

void WriteDotFile(const Graph& g, const std::string& path,
                  const DotOptions& options) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("WriteDotFile: cannot create " + path);
  }
  WriteDot(g, out, options);
}

}  // namespace kvcc
