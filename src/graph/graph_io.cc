#include "graph/graph_io.h"

#include <algorithm>
#include <atomic>
#include <charconv>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "exec/task_scheduler.h"
#include "graph/graph_builder.h"

namespace kvcc {

Graph ReadEdgeList(std::istream& in) {
  GraphBuilder builder;
  std::unordered_map<std::uint64_t, VertexId> compact;
  std::vector<VertexId> labels;
  auto intern = [&](std::uint64_t raw) -> VertexId {
    auto [it, inserted] =
        compact.try_emplace(raw, static_cast<VertexId>(labels.size()));
    if (inserted) labels.push_back(static_cast<VertexId>(raw));
    return it->second;
  };

  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream fields(line);
    std::uint64_t u = 0, v = 0;
    if (!(fields >> u >> v)) {
      throw std::runtime_error("ReadEdgeList: malformed line " +
                               std::to_string(line_number) + ": '" + line +
                               "'");
    }
    // Sequence the interning explicitly: argument evaluation order is
    // unspecified, and label order must follow first appearance in the file.
    const VertexId cu = intern(u);
    const VertexId cv = intern(v);
    builder.AddEdge(cu, cv);
  }
  builder.EnsureVertex(labels.empty()
                           ? 0
                           : static_cast<VertexId>(labels.size() - 1));
  builder.SetLabels(std::move(labels));
  return builder.Build();
}

Graph ReadEdgeListFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("ReadEdgeListFile: cannot open " + path);
  }
  return ReadEdgeList(in);
}

namespace {

// One newline-aligned slice of the input, parsed independently.
struct ChunkParse {
  std::vector<std::pair<VertexId, VertexId>> edges;  // raw ids, loops kept
  std::size_t lines = 0;       // lines scanned (including a bad one)
  std::size_t error_line = 0;  // chunk-relative 1-based; 0 = clean
  std::string error_text;
  VertexId max_id = 0;
};

const char* SkipSpace(const char* p, const char* end) {
  while (p < end && (*p == ' ' || *p == '\t' || *p == '\r')) ++p;
  return p;
}

// Parses [begin, end) of `text` (which starts at a line boundary) into
// `out`, stopping at the first malformed line.
void ParseChunk(std::string_view text, std::size_t begin, std::size_t end,
                ChunkParse& out) {
  const char* p = text.data() + begin;
  const char* const stop = text.data() + end;
  while (p < stop) {
    const char* nl = static_cast<const char*>(
        std::memchr(p, '\n', static_cast<std::size_t>(stop - p)));
    const char* const line_end = nl != nullptr ? nl : stop;
    ++out.lines;
    const char* const line_begin = p;
    p = SkipSpace(p, line_end);
    if (p == line_end || *p == '#' || *p == '%') {
      p = line_end + 1;
      continue;
    }
    VertexId u = 0, v = 0;
    auto [pu, eu] = std::from_chars(p, line_end, u);
    const char* q = SkipSpace(pu, line_end);
    auto [pv, ev] = std::from_chars(q, line_end, v);
    if (eu != std::errc() || ev != std::errc() || q == pu) {
      out.error_line = out.lines;
      out.error_text.assign(line_begin,
                            static_cast<std::size_t>(line_end - line_begin));
      return;
    }
    out.max_id = std::max(out.max_id, std::max(u, v));
    out.edges.emplace_back(u, v);
    p = line_end + 1;
  }
}

}  // namespace

Graph ReadEdgeListParallel(std::string_view text, unsigned num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  // Newline-aligned chunk ranges, ~4 per thread so the dynamic ParallelFor
  // claim evens out skewed line lengths.
  const std::size_t target_chunks =
      num_threads > 1 ? static_cast<std::size_t>(num_threads) * 4 : 1;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  std::size_t pos = 0;
  for (std::size_t i = 1; i <= target_chunks && pos < text.size(); ++i) {
    std::size_t end =
        i == target_chunks
            ? text.size()
            : std::max(pos + 1, i * text.size() / target_chunks);
    if (end < text.size()) {
      const void* nl =
          std::memchr(text.data() + end, '\n', text.size() - end);
      end = nl != nullptr ? static_cast<std::size_t>(
                                static_cast<const char*>(nl) - text.data()) +
                                1
                          : text.size();
    }
    ranges.emplace_back(pos, end);
    pos = end;
  }

  std::vector<ChunkParse> chunks(ranges.size());
  exec::TaskScheduler* scheduler = nullptr;
  exec::TaskScheduler pool(num_threads);
  if (num_threads > 1) {
    pool.Start();
    scheduler = &pool;
  }
  const auto for_indexed = [&](std::size_t count, const auto& body) {
    if (scheduler != nullptr && count > 1) {
      scheduler->ParallelFor(count,
                             [&](std::size_t i, unsigned) { body(i); });
    } else {
      for (std::size_t i = 0; i < count; ++i) body(i);
    }
  };
  for_indexed(ranges.size(), [&](std::size_t i) {
    ParseChunk(text, ranges[i].first, ranges[i].second, chunks[i]);
  });

  // First malformed line in *file* order: chunks are in file order and a
  // clean chunk's line count is exact, so prefix-summing locates it.
  std::size_t line_prefix = 0;
  for (const ChunkParse& chunk : chunks) {
    if (chunk.error_line != 0) {
      if (scheduler != nullptr) pool.Stop();
      throw std::runtime_error(
          "ReadEdgeListParallel: malformed line " +
          std::to_string(line_prefix + chunk.error_line) + ": '" +
          chunk.error_text + "'");
    }
    line_prefix += chunk.lines;
  }

  std::size_t total_pairs = 0;
  VertexId max_id = 0;
  for (const ChunkParse& chunk : chunks) {
    total_pairs += chunk.edges.size();
    max_id = std::max(max_id, chunk.max_id);
  }
  if (total_pairs == 0) {
    if (scheduler != nullptr) pool.Stop();
    return Graph();
  }

  // Compact raw ids to [0, n) in sorted order. Dense id spaces take a
  // present-bitmap + prefix scan; wildly sparse ones (raw ids far beyond
  // the edge count) fall back to sort + unique over the endpoints. Both
  // yield the same ascending label list.
  const std::uint64_t id_space = static_cast<std::uint64_t>(max_id) + 1;
  const bool dense =
      id_space <= std::max<std::uint64_t>(std::uint64_t{1} << 26,
                                          16 * total_pairs);
  std::vector<VertexId> labels;
  std::vector<VertexId> rank;  // dense path: raw id -> compact id
  if (dense) {
    std::vector<std::uint8_t> present(id_space, 0);
    for_indexed(chunks.size(), [&](std::size_t i) {
      for (const auto& [u, v] : chunks[i].edges) {
        std::atomic_ref<std::uint8_t>(present[u])
            .store(1, std::memory_order_relaxed);
        std::atomic_ref<std::uint8_t>(present[v])
            .store(1, std::memory_order_relaxed);
      }
    });
    rank.resize(id_space);
    for (std::uint64_t raw = 0; raw < id_space; ++raw) {
      if (present[raw] != 0) {
        rank[raw] = static_cast<VertexId>(labels.size());
        labels.push_back(static_cast<VertexId>(raw));
      }
    }
  } else {
    labels.reserve(2 * total_pairs);
    for (const ChunkParse& chunk : chunks) {
      for (const auto& [u, v] : chunk.edges) {
        labels.push_back(u);
        labels.push_back(v);
      }
    }
    std::sort(labels.begin(), labels.end());
    labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
  }
  const VertexId n = static_cast<VertexId>(labels.size());
  const auto compact = [&](VertexId raw) -> VertexId {
    if (dense) return rank[raw];
    return static_cast<VertexId>(
        std::lower_bound(labels.begin(), labels.end(), raw) -
        labels.begin());
  };

  // Counting-sort CSR build: atomic degree count (duplicates included),
  // prefix sum, atomic-cursor scatter of both directions, per-row sort +
  // dedup, then one compaction pass down to the final offsets.
  std::vector<std::uint64_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  for_indexed(chunks.size(), [&](std::size_t i) {
    for (const auto& [u, v] : chunks[i].edges) {
      if (u == v) continue;
      std::atomic_ref<std::uint64_t>(offsets[compact(u) + 1])
          .fetch_add(1, std::memory_order_relaxed);
      std::atomic_ref<std::uint64_t>(offsets[compact(v) + 1])
          .fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (VertexId v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
  std::vector<std::uint64_t> cursor(offsets.begin(), offsets.end() - 1);
  std::vector<VertexId> adjacency(offsets[n]);
  for_indexed(chunks.size(), [&](std::size_t i) {
    for (const auto& [u, v] : chunks[i].edges) {
      if (u == v) continue;
      const VertexId cu = compact(u), cv = compact(v);
      adjacency[std::atomic_ref<std::uint64_t>(cursor[cu]).fetch_add(
          1, std::memory_order_relaxed)] = cv;
      adjacency[std::atomic_ref<std::uint64_t>(cursor[cv]).fetch_add(
          1, std::memory_order_relaxed)] = cu;
    }
  });
  // Normalize each row; record deduped lengths in `cursor` (reused).
  for_indexed(n, [&](std::size_t v) {
    const auto row_begin =
        adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[v]);
    const auto row_end =
        adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]);
    std::sort(row_begin, row_end);
    cursor[v] =
        static_cast<std::uint64_t>(std::unique(row_begin, row_end) -
                                   row_begin);
  });
  // Compact duplicate slack out of the rows (serial: rows move down in
  // order, so this cannot run ahead of itself).
  std::uint64_t write = 0;
  for (VertexId v = 0; v < n; ++v) {
    const std::uint64_t row_start = offsets[v];
    const std::uint64_t row_len = cursor[v];
    if (write != row_start) {
      std::memmove(adjacency.data() + write, adjacency.data() + row_start,
                   row_len * sizeof(VertexId));
    }
    offsets[v] = write;
    write += row_len;
  }
  offsets[n] = write;
  adjacency.resize(write);
  if (scheduler != nullptr) pool.Stop();

  // Identity labels stay implicit when the raw ids were already compact.
  const bool identity = [&] {
    for (VertexId v = 0; v < n; ++v) {
      if (labels[v] != v) return false;
    }
    return true;
  }();
  return Graph::FromCsr(n, std::move(offsets), std::move(adjacency),
                        identity ? std::vector<VertexId>()
                                 : std::move(labels));
}

Graph ReadEdgeListFileParallel(const std::string& path,
                               unsigned num_threads) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("ReadEdgeListFileParallel: cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = std::move(buffer).str();
  return ReadEdgeListParallel(text, num_threads);
}

void WriteEdgeList(const Graph& g, std::ostream& out) {
  out << "# nodes " << g.NumVertices() << " edges " << g.NumEdges() << "\n";
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    for (VertexId v : g.Neighbors(u)) {
      if (u < v) out << g.LabelOf(u) << ' ' << g.LabelOf(v) << "\n";
    }
  }
}

void WriteEdgeListFile(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("WriteEdgeListFile: cannot create " + path);
  }
  WriteEdgeList(g, out);
}

}  // namespace kvcc
