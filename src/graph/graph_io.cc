#include "graph/graph_io.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "graph/graph_builder.h"

namespace kvcc {

Graph ReadEdgeList(std::istream& in) {
  GraphBuilder builder;
  std::unordered_map<std::uint64_t, VertexId> compact;
  std::vector<VertexId> labels;
  auto intern = [&](std::uint64_t raw) -> VertexId {
    auto [it, inserted] =
        compact.try_emplace(raw, static_cast<VertexId>(labels.size()));
    if (inserted) labels.push_back(static_cast<VertexId>(raw));
    return it->second;
  };

  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream fields(line);
    std::uint64_t u = 0, v = 0;
    if (!(fields >> u >> v)) {
      throw std::runtime_error("ReadEdgeList: malformed line " +
                               std::to_string(line_number) + ": '" + line +
                               "'");
    }
    // Sequence the interning explicitly: argument evaluation order is
    // unspecified, and label order must follow first appearance in the file.
    const VertexId cu = intern(u);
    const VertexId cv = intern(v);
    builder.AddEdge(cu, cv);
  }
  builder.EnsureVertex(labels.empty()
                           ? 0
                           : static_cast<VertexId>(labels.size() - 1));
  builder.SetLabels(std::move(labels));
  return builder.Build();
}

Graph ReadEdgeListFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("ReadEdgeListFile: cannot open " + path);
  }
  return ReadEdgeList(in);
}

void WriteEdgeList(const Graph& g, std::ostream& out) {
  out << "# nodes " << g.NumVertices() << " edges " << g.NumEdges() << "\n";
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    for (VertexId v : g.Neighbors(u)) {
      if (u < v) out << g.LabelOf(u) << ' ' << g.LabelOf(v) << "\n";
    }
  }
}

void WriteEdgeListFile(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("WriteEdgeListFile: cannot create " + path);
  }
  WriteEdgeList(g, out);
}

}  // namespace kvcc
