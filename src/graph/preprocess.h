// Flat-parallel preprocessing kernels: Afforest connected components and
// the fused k-core + component-split prune pass.
//
// The Afforest kernel (Sutton–Ben-Nun–Barak, IPDPS 2018) replaces BFS
// labeling with CAS label-linking: every vertex starts as its own parent,
// edges hook the larger of two tree roots under the smaller, and a
// compression pass flattens parent chains. Two properties make its output
// — not just its answer — deterministic here:
//
//   1. Parent values only ever decrease, and the minimum vertex of a
//      component can never be hooked under anything (hooking it would need
//      a smaller member). After each phase's join barrier + compression,
//      comp[v] is exactly the minimum vertex id reachable from v through
//      the edges linked so far — independent of thread interleaving.
//   2. The final canonical relabel scans vertices ascending and assigns
//      dense ids to roots in order, which reproduces the BFS labeling of
//      connected_components.h exactly (BFS also numbers components by
//      their smallest vertex).
//
// The sampling phase (skip the most frequent component when finishing the
// remaining edges) is seeded from util/random.h as a pure function of the
// graph size, so the sampled skip set — and therefore the work profile —
// replays identically too.
#ifndef KVCC_GRAPH_PREPROCESS_H_
#define KVCC_GRAPH_PREPROCESS_H_

#include <cstdint>
#include <vector>

#include "exec/task_scheduler.h"
#include "graph/connected_components.h"
#include "graph/graph.h"
#include "graph/k_core.h"

namespace kvcc {

/// Reusable scratch for AfforestComponentsInto (arrays only ever grow;
/// slot_hooks is sized num_workers() + 1 on parallel runs, 1 on serial).
struct AfforestScratch {
  std::vector<std::uint8_t> skip;        // sampled-component snapshot
  std::vector<std::uint32_t> sample;     // sampled comp values
  std::vector<std::uint32_t> relabel;    // root -> dense canonical id
  std::vector<std::uint64_t> slot_hooks; // per-slot successful hooks
};

/// Afforest-style connected components into caller-owned storage.
///
/// Vertices removed by `mask` (pass nullptr for "all alive") get label
/// kInvalidVertex; alive vertices get canonical component ids in [0,
/// out.count) ordered by smallest contained vertex — byte-identical to
/// LabelComponentsInto restricted to the alive subgraph, at every thread
/// count. Runs the flat-parallel kernel when `scheduler` has more than one
/// worker and the graph is large enough, the same single-threaded code
/// otherwise.
/// \return Successful hooks — always (alive vertices) - out.count, since
///   each hook retires exactly one union root (KvccStats::cc_hooks).
std::uint64_t AfforestComponentsInto(const Graph& g, const PeelMask* mask,
                                     exec::TaskScheduler* scheduler,
                                     exec::TaskPriority priority,
                                     AfforestScratch& scratch,
                                     ComponentLabeling& out);

/// Replay-identical counters produced by one FusedPrune call.
struct PruneCounters {
  std::uint64_t kcore_bucket_rounds = 0;  ///< peel rounds (peel depth)
  std::uint64_t cc_hooks = 0;             ///< Afforest hooks (survivors-comps)
};

/// All pooled state of one FusedPrune call; owning it in EnumScratch keeps
/// the per-work-item prune allocation-free once warm. After FusedPrune
/// returns, the caller reads:
///   survivors      sorted k-core vertices,
///   labeling       canonical component labels (masked = kInvalidVertex),
///   comp_sizes     vertices per component,
///   comp_offsets / comp_vertices   component members (CSR layout, each
///                  component's vertex list sorted ascending; components
///                  ordered by smallest contained vertex).
struct FusedPruneScratch {
  KCoreScratch kcore;
  AfforestScratch cc;
  std::vector<VertexId> survivors;
  ComponentLabeling labeling;
  std::vector<std::uint64_t> comp_offsets;
  std::vector<std::uint64_t> comp_cursor;
  std::vector<VertexId> comp_vertices;
};

/// Fills comp_offsets / comp_cursor / comp_vertices from an already
/// computed (survivors, labeling) pair — the grouping stage of FusedPrune,
/// exposed so a caller that ran the peel and the component kernel itself
/// (e.g. the enumeration step, which books their counters separately) can
/// reuse it. Counting sort: components ordered by canonical id (= smallest
/// contained vertex), members ascending.
void GroupSurvivorsByComponent(FusedPruneScratch& scratch);

/// The fused prune pass: k-core peel and component split in one traversal
/// of g, with no intermediate core subgraph materialized. The peel's
/// removal marks feed the Afforest kernel as a mask, and the component
/// grouping is a counting sort over the canonical labels — so the grouped
/// output lists each component's vertices ascending, components ordered by
/// smallest contained vertex: exactly ConnectedComponents(core) modulo the
/// core-relabeling. Byte-identical across thread counts.
PruneCounters FusedPrune(const Graph& g, std::uint32_t k,
                         exec::TaskScheduler* scheduler,
                         exec::TaskPriority priority,
                         FusedPruneScratch& scratch);

}  // namespace kvcc

#endif  // KVCC_GRAPH_PREPROCESS_H_
