#include "graph/delta_store.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace kvcc {

// ---- DeltaApplier ----------------------------------------------------

void DeltaApplier::Apply(const Graph& base, std::span<const EdgeDelta> batch,
                         Graph& out) {
  assert(&base != &out);
  assert(!base.HasLabels());

  VertexId n = base.NumVertices();
  std::uint64_t inserts = 0;
  for (const EdgeDelta& d : batch) {
    assert(d.u < d.v);
    n = std::max<VertexId>(n, d.v + 1);
    if (d.insert) ++inserts;
  }
  const std::uint64_t deletes = batch.size() - inserts;

  // Counting sort of the 2|batch| directed ops by source row. All three
  // scratch vectors grow monotonically across calls; assign/resize only
  // allocate while the high-water mark is still rising.
  op_offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  ops_.resize(batch.size() * 2);
  for (const EdgeDelta& d : batch) {
    ++op_offsets_[static_cast<std::size_t>(d.u) + 1];
    ++op_offsets_[static_cast<std::size_t>(d.v) + 1];
  }
  for (VertexId v = 0; v < n; ++v) {
    op_offsets_[static_cast<std::size_t>(v) + 1] += op_offsets_[v];
  }
  op_cursor_.assign(op_offsets_.begin(), op_offsets_.end() - 1);
  for (const EdgeDelta& d : batch) {
    ops_[op_cursor_[d.u]++] = {d.u, d.v, d.insert};
    ops_[op_cursor_[d.v]++] = {d.v, d.u, d.insert};
  }
  for (VertexId v = 0; v < n; ++v) {
    std::sort(ops_.begin() + static_cast<std::ptrdiff_t>(op_offsets_[v]),
              ops_.begin() +
                  static_cast<std::ptrdiff_t>(op_offsets_[v + 1]),
              [](const DirectedOp& a, const DirectedOp& b) {
                return a.dst < b.dst;
              });
  }

  const std::uint64_t new_directed =
      base.adjacency_.size() + 2 * inserts - 2 * deletes;
  out.labels_.clear();
  out.num_vertices_ = n;
  out.num_edges_ = new_directed / 2;
  out.offsets_.resize(static_cast<std::size_t>(n) + 1);
  out.adjacency_.resize(new_directed);
  MergeRowsInto(base, n, out);
}

// Steady-state row merge: every write lands in storage sized by Apply
// above, so the warm path must never touch the allocator (the memhook
// test WarmDeltaApplyAllocatesNothing is the dynamic twin).
// kvcc-lint: no-alloc
void DeltaApplier::MergeRowsInto(const Graph& base, VertexId n,
                                 Graph& out) const {
  const VertexId base_n = base.NumVertices();
  std::uint64_t write = 0;
  out.offsets_[0] = 0;
  for (VertexId v = 0; v < n; ++v) {
    const VertexId* b = base.adjacency_.data();
    std::uint64_t bi = v < base_n ? base.offsets_[v] : 0;
    const std::uint64_t be = v < base_n ? base.offsets_[v + 1] : 0;
    std::uint64_t oi = op_offsets_[v];
    const std::uint64_t oe = op_offsets_[v + 1];
    while (bi < be && oi < oe) {
      const VertexId existing = b[bi];
      const DirectedOp& op = ops_[oi];
      if (existing < op.dst) {
        out.adjacency_[write++] = existing;
        ++bi;
      } else if (existing > op.dst) {
        assert(op.is_insert);  // a delete must name a present edge
        out.adjacency_[write++] = op.dst;
        ++oi;
      } else {
        assert(!op.is_insert);  // an insert must name an absent edge
        ++bi;                // tombstone: drop the base entry
        ++oi;
      }
    }
    while (bi < be) out.adjacency_[write++] = b[bi++];
    while (oi < oe) {
      assert(ops_[oi].is_insert);
      out.adjacency_[write++] = ops_[oi++].dst;
    }
    out.offsets_[static_cast<std::size_t>(v) + 1] = write;
  }
  assert(write == out.adjacency_.size());
}

// ---- VersionedGraph --------------------------------------------------

VersionedGraph::VersionedGraph(Graph base) {
  if (base.HasLabels()) {
    throw std::invalid_argument(
        "VersionedGraph: base graph must be unlabeled (root id space)");
  }
  current_ = std::make_shared<Graph>(std::move(base));
}

GraphSnapshot VersionedGraph::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return GraphSnapshot{current_, version_};
}

std::uint64_t VersionedGraph::Version() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return version_;
}

std::uint64_t VersionedGraph::BaseVersion() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return base_version_;
}

std::size_t VersionedGraph::DeltaEdges() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return memtable_.size();
}

std::uint64_t VersionedGraph::AppliedTotal() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return applied_total_;
}

std::size_t VersionedGraph::InsertEdges(
    std::span<const std::pair<VertexId, VertexId>> edges) {
  return Mutate(edges, /*insert=*/true);
}

std::size_t VersionedGraph::DeleteEdges(
    std::span<const std::pair<VertexId, VertexId>> edges) {
  return Mutate(edges, /*insert=*/false);
}

std::size_t VersionedGraph::Mutate(
    std::span<const std::pair<VertexId, VertexId>> edges, bool insert) {
  std::lock_guard<std::mutex> lock(mutex_);
  batch_.clear();
  for (const auto& [a, b] : edges) {
    if (a == b) continue;  // self-loops are never representable
    batch_.push_back(EdgeDelta{std::min(a, b), std::max(a, b), insert});
  }
  std::sort(batch_.begin(), batch_.end(),
            [](const EdgeDelta& x, const EdgeDelta& y) {
              return x.u != y.u ? x.u < y.u : x.v < y.v;
            });
  batch_.erase(std::unique(batch_.begin(), batch_.end(),
                           [](const EdgeDelta& x, const EdgeDelta& y) {
                             return x.u == y.u && x.v == y.v;
                           }),
               batch_.end());
  // Effective subset: inserts of absent edges, deletes of present ones.
  const Graph& g = *current_;
  std::erase_if(batch_, [&](const EdgeDelta& d) {
    const bool present = d.v < g.NumVertices() && g.HasEdge(d.u, d.v);
    return present == insert;
  });
  if (batch_.empty()) return 0;

  const std::uint64_t next_version = version_ + 1;
  memtable_.reserve(memtable_.size() + batch_.size());
  for (const EdgeDelta& d : batch_) {
    memtable_.push_back(MemtableEntry{d, next_version});
  }

  // Materialize the next version. The retired buffer is reused only when
  // no snapshot holds it anymore — checked under the same mutex that
  // hands snapshots out, so a reader can never observe a version being
  // overwritten.
  std::shared_ptr<Graph> target;
  if (retired_ != nullptr && retired_.use_count() == 1) {
    target = std::move(retired_);
  } else {
    target = std::make_shared<Graph>();
  }
  applier_.Apply(*current_, batch_, *target);
  retired_ = std::move(current_);
  current_ = std::move(target);
  version_ = next_version;
  applied_total_ += batch_.size();
  return batch_.size();
}

std::size_t VersionedGraph::Compact() {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t folded = memtable_.size();
  memtable_.clear();
  base_version_ = version_;
  return folded;
}

bool VersionedGraph::EffectiveSince(std::uint64_t since,
                                    std::vector<EdgeDelta>& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (since > version_) return false;
  if (since < base_version_) return false;  // folded away by Compact()
  for (const MemtableEntry& entry : memtable_) {
    if (entry.version > since) out.push_back(entry.delta);
  }
  return true;
}

}  // namespace kvcc
