// Breadth-first search utilities: distance vectors, eccentricities, and
// traversal orders used by GLOBAL-CUT* (farthest-first processing) and by
// the diameter metric.
#ifndef KVCC_GRAPH_BFS_H_
#define KVCC_GRAPH_BFS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace kvcc {

/// Distance value for unreachable vertices.
inline constexpr std::uint32_t kUnreachable = static_cast<std::uint32_t>(-1);

/// Fills `dist` (resized to n) with hop distances from src; unreachable
/// vertices get kUnreachable. Returns the number of reached vertices.
std::uint32_t BfsDistances(const Graph& g, VertexId src,
                           std::vector<std::uint32_t>& dist);

/// Vertices reachable from src in visiting order (src first).
std::vector<VertexId> BfsOrder(const Graph& g, VertexId src);

/// (vertex, distance) of a farthest vertex from src within its component.
std::pair<VertexId, std::uint32_t> FarthestVertex(const Graph& g,
                                                  VertexId src);

/// Eccentricity of src within its component (max distance to any reachable
/// vertex).
std::uint32_t Eccentricity(const Graph& g, VertexId src);

}  // namespace kvcc

#endif  // KVCC_GRAPH_BFS_H_
