#include "ecc/kecc.h"

#include <algorithm>
#include <utility>

#include "flow/stoer_wagner.h"
#include "graph/connected_components.h"
#include "graph/k_core.h"

namespace kvcc {
namespace {

// 2-ECCs in O(n + m): the connected components left after deleting every
// bridge (Tarjan lowlink, iterative). Identical output to the generic
// Stoer-Wagner recursion below — a 2-ECC has minimum degree >= 2, so it
// survives the 2-core peel intact and is never split by a weight-1 cut.
std::vector<std::vector<VertexId>> TwoEdgeConnectedComponents(
    const Graph& g) {
  const VertexId n = g.NumVertices();
  std::vector<std::uint32_t> disc(n, 0), low(n, 0);
  std::vector<VertexId> comp_stack;
  std::vector<std::vector<VertexId>> result;
  std::uint32_t clock = 0;

  // DFS frame: vertex, its tree parent, and the cursor into its
  // neighbor list.
  struct Frame {
    VertexId v;
    VertexId parent;
    std::uint32_t next;
  };
  std::vector<Frame> dfs;
  const auto pop_component = [&](VertexId head) {
    std::vector<VertexId> comp;
    while (true) {
      const VertexId w = comp_stack.back();
      comp_stack.pop_back();
      comp.push_back(w);
      if (w == head) break;
    }
    // A simple graph has no 2-edge-connected subgraph on < 3 vertices.
    if (comp.size() > 2) {
      std::sort(comp.begin(), comp.end());
      result.push_back(std::move(comp));
    }
  };

  for (VertexId root = 0; root < n; ++root) {
    if (disc[root] != 0) continue;
    dfs.push_back({root, root, 0});
    disc[root] = low[root] = ++clock;
    comp_stack.push_back(root);
    while (!dfs.empty()) {
      Frame& frame = dfs.back();
      const auto neighbors = g.Neighbors(frame.v);
      if (frame.next < neighbors.size()) {
        const VertexId w = neighbors[frame.next++];
        if (w == frame.parent && frame.v != frame.parent) {
          // The one tree edge back to the parent (simple graph, so there
          // is no parallel edge to mistake for it).
          frame.parent = frame.v;  // skip it exactly once
          continue;
        }
        if (disc[w] != 0) {
          low[frame.v] = std::min(low[frame.v], disc[w]);
          continue;
        }
        disc[w] = low[w] = ++clock;
        comp_stack.push_back(w);
        dfs.push_back({w, frame.v, 0});
        continue;
      }
      const VertexId v = frame.v;
      const bool is_root = dfs.size() == 1;
      dfs.pop_back();
      if (is_root) {
        pop_component(v);
        continue;
      }
      Frame& up = dfs.back();
      low[up.v] = std::min(low[up.v], low[v]);
      if (low[v] > disc[up.v]) pop_component(v);  // tree edge is a bridge
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace

std::vector<std::vector<VertexId>> KEdgeConnectedComponents(const Graph& g,
                                                            std::uint32_t k) {
  // Linear fast paths. k = 1: the 1-ECCs are the connected components
  // with at least one edge. k = 2: bridge decomposition. Both match the
  // generic recursion's output exactly (sorted components, sorted list).
  if (k <= 1) {
    std::vector<std::vector<VertexId>> result;
    for (std::vector<VertexId>& comp : ConnectedComponents(g)) {
      if (comp.size() < 2) continue;
      std::sort(comp.begin(), comp.end());
      result.push_back(std::move(comp));
    }
    std::sort(result.begin(), result.end());
    return result;
  }
  if (k == 2) return TwoEdgeConnectedComponents(g);

  std::vector<std::vector<VertexId>> result;
  std::vector<Graph> stack;
  stack.push_back(g.WithIdentityLabels());

  while (!stack.empty()) {
    Graph cur = std::move(stack.back());
    stack.pop_back();

    // kappa' <= delta (Whitney), so peeling the k-core is sound and fast.
    const std::vector<VertexId> survivors = KCoreVertices(cur, k);
    if (survivors.size() <= k) continue;
    Graph core = survivors.size() == cur.NumVertices()
                     ? std::move(cur)
                     : cur.InducedSubgraph(survivors);

    for (const std::vector<VertexId>& comp : ConnectedComponents(core)) {
      if (comp.size() <= k) continue;
      Graph sub = core.InducedSubgraph(comp);

      const GlobalMinCut cut = StoerWagnerMinCut(sub, /*early_stop_below=*/k);
      if (cut.weight >= k) {
        // No edge cut below k: sub is a k-ECC.
        std::vector<VertexId> ids;
        ids.reserve(sub.NumVertices());
        for (VertexId v = 0; v < sub.NumVertices(); ++v) {
          ids.push_back(sub.LabelOf(v));
        }
        std::sort(ids.begin(), ids.end());
        result.push_back(std::move(ids));
        continue;
      }
      // Split along the edge cut: the two sides share no vertices.
      std::vector<bool> in_side(sub.NumVertices(), false);
      for (VertexId v : cut.side) in_side[v] = true;
      std::vector<VertexId> side, rest;
      for (VertexId v = 0; v < sub.NumVertices(); ++v) {
        (in_side[v] ? side : rest).push_back(v);
      }
      if (side.size() > k) stack.push_back(sub.InducedSubgraph(side));
      if (rest.size() > k) stack.push_back(sub.InducedSubgraph(rest));
    }
  }

  std::sort(result.begin(), result.end());
  return result;
}

bool IsKEdgeConnected(const Graph& g, std::uint32_t k) {
  if (g.NumVertices() < 2) return false;
  if (k == 0) return IsConnected(g);
  const GlobalMinCut cut = StoerWagnerMinCut(g, /*early_stop_below=*/k);
  return cut.weight >= k;
}

}  // namespace kvcc
