#include "ecc/kecc.h"

#include <algorithm>
#include <utility>

#include "flow/stoer_wagner.h"
#include "graph/connected_components.h"
#include "graph/k_core.h"

namespace kvcc {

std::vector<std::vector<VertexId>> KEdgeConnectedComponents(const Graph& g,
                                                            std::uint32_t k) {
  std::vector<std::vector<VertexId>> result;
  std::vector<Graph> stack;
  stack.push_back(g.WithIdentityLabels());

  while (!stack.empty()) {
    Graph cur = std::move(stack.back());
    stack.pop_back();

    // kappa' <= delta (Whitney), so peeling the k-core is sound and fast.
    const std::vector<VertexId> survivors = KCoreVertices(cur, k);
    if (survivors.size() <= k) continue;
    Graph core = survivors.size() == cur.NumVertices()
                     ? std::move(cur)
                     : cur.InducedSubgraph(survivors);

    for (const std::vector<VertexId>& comp : ConnectedComponents(core)) {
      if (comp.size() <= k) continue;
      Graph sub = core.InducedSubgraph(comp);

      const GlobalMinCut cut = StoerWagnerMinCut(sub, /*early_stop_below=*/k);
      if (cut.weight >= k) {
        // No edge cut below k: sub is a k-ECC.
        std::vector<VertexId> ids;
        ids.reserve(sub.NumVertices());
        for (VertexId v = 0; v < sub.NumVertices(); ++v) {
          ids.push_back(sub.LabelOf(v));
        }
        std::sort(ids.begin(), ids.end());
        result.push_back(std::move(ids));
        continue;
      }
      // Split along the edge cut: the two sides share no vertices.
      std::vector<bool> in_side(sub.NumVertices(), false);
      for (VertexId v : cut.side) in_side[v] = true;
      std::vector<VertexId> side, rest;
      for (VertexId v = 0; v < sub.NumVertices(); ++v) {
        (in_side[v] ? side : rest).push_back(v);
      }
      if (side.size() > k) stack.push_back(sub.InducedSubgraph(side));
      if (rest.size() > k) stack.push_back(sub.InducedSubgraph(rest));
    }
  }

  std::sort(result.begin(), result.end());
  return result;
}

bool IsKEdgeConnected(const Graph& g, std::uint32_t k) {
  if (g.NumVertices() < 2) return false;
  if (k == 0) return IsConnected(g);
  const GlobalMinCut cut = StoerWagnerMinCut(g, /*early_stop_below=*/k);
  return cut.weight >= k;
}

}  // namespace kvcc
