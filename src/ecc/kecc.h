// k-edge-connected components (k-ECC) — the comparison model of the paper's
// effectiveness study (Figs. 7-9, 14).
//
// A k-ECC is a maximal subgraph that cannot be disconnected by removing
// fewer than k edges. Unlike k-VCCs, k-ECCs never overlap, so the recursive
// split by a < k edge cut partitions the vertex set directly (no
// duplication). The implementation recursively peels the k-core and splits
// by Stoer–Wagner cuts with early termination (cf. Zhou et al., EDBT'12).
#ifndef KVCC_ECC_KECC_H_
#define KVCC_ECC_KECC_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace kvcc {

/// All k-ECCs of g (k >= 1), each as a sorted list of vertex ids of g;
/// the list is sorted lexicographically. Components have > k vertices
/// (a k-edge-connected graph has minimum degree >= k).
std::vector<std::vector<VertexId>> KEdgeConnectedComponents(const Graph& g,
                                                            std::uint32_t k);

/// True iff g is k-edge-connected: >= 2 vertices and every edge cut has at
/// least k edges.
bool IsKEdgeConnected(const Graph& g, std::uint32_t k);

}  // namespace kvcc

#endif  // KVCC_ECC_KECC_H_
