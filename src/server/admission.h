// Admission control for kvccd: per-class running-job caps plus a
// shed-bulk-first total cap.
//
// kvccd admits a request before touching the engine; a rejected request
// costs one "overloaded" error line and nothing else. The policy is
// deliberately deterministic — admission depends only on the counts of
// currently admitted jobs, never on time or load averages — so the
// protocol tests can drive the controller to its limits and assert the
// exact shed decisions (tests/kvccd_protocol_test.cc).
#ifndef KVCC_SERVER_ADMISSION_H_
#define KVCC_SERVER_ADMISSION_H_

#include <cstdint>
#include <mutex>

#include "kvcc/options.h"

/// \file
/// \brief AdmissionController: deterministic per-class admission with
/// bulk shed under pressure.

namespace kvcc {
namespace server {

/// \brief Admission limits. A zero cap means "unlimited" for that knob.
struct AdmissionLimits {
  /// \brief Max running interactive jobs.
  std::uint32_t max_interactive = 0;
  /// \brief Max running normal jobs.
  std::uint32_t max_normal = 0;
  /// \brief Max running bulk jobs.
  std::uint32_t max_bulk = 0;
  /// \brief Max running jobs across all classes.
  std::uint32_t max_total = 0;
  /// \brief Headroom reserved for non-bulk work: with a total cap of T
  /// and a reserve of R, bulk jobs are admitted only while fewer than
  /// T - R jobs run in total. This is what makes bulk shed *first* as
  /// the server fills: the last R total slots are never given to bulk.
  std::uint32_t bulk_reserve = 0;
};

/// \brief Tracks running jobs per class and decides admission.
///
/// Thread-safe; TryAdmit/Release are a matched pair around each served
/// job. Counters are monotone and replay-identical for a given request
/// sequence.
class AdmissionController {
 public:
  /// \brief Creates a controller with the given limits.
  /// \param limits The caps; zeros mean unlimited.
  explicit AdmissionController(const AdmissionLimits& limits);

  /// \brief Tries to admit one job of class `priority`.
  /// \param priority The job's latency class.
  /// \return True and counts the job as running, or false (shed) without
  ///   side effects beyond the shed counter.
  bool TryAdmit(JobPriority priority);

  /// \brief Releases a previously admitted job of class `priority`.
  /// \param priority The class passed to the matching TryAdmit.
  void Release(JobPriority priority);

  /// \brief Jobs currently admitted and not yet released.
  /// \return The total running count.
  std::uint32_t Running() const;

  /// \brief Requests rejected by TryAdmit so far (all classes).
  /// \return The shed count (monotone).
  std::uint64_t JobsShed() const;

  /// \brief Bulk-class requests rejected so far.
  /// \return The bulk shed count (monotone).
  std::uint64_t BulkShed() const;

 private:
  AdmissionLimits limits_;
  mutable std::mutex mutex_;
  std::uint32_t running_[3] = {0, 0, 0};  // indexed by JobPriority
  std::uint64_t jobs_shed_ = 0;
  std::uint64_t bulk_shed_ = 0;
};

}  // namespace server
}  // namespace kvcc

#endif  // KVCC_SERVER_ADMISSION_H_
