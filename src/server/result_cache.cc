#include "server/result_cache.h"

#include <algorithm>
#include <utility>

namespace kvcc {
namespace server {
namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void Mix(std::uint64_t& hash, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xFFu;
    hash *= kFnvPrime;
  }
}

std::uint64_t ComponentListBytes(const ComponentList& components) {
  std::uint64_t bytes = sizeof(ComponentList);
  for (const std::vector<VertexId>& component : components) {
    bytes += sizeof(component) + component.size() * sizeof(VertexId);
  }
  return bytes;
}

}  // namespace

std::uint64_t GraphFingerprint(const Graph& g) {
  std::uint64_t hash = kFnvOffset;
  const VertexId n = g.NumVertices();
  Mix(hash, n);
  Mix(hash, g.NumEdges());
  for (VertexId v = 0; v < n; ++v) {
    Mix(hash, g.Degree(v));
    for (const VertexId u : g.Neighbors(v)) Mix(hash, u);
    Mix(hash, g.LabelOf(v));
  }
  return hash;
}

bool GraphIdentical(const Graph& a, const Graph& b) {
  if (!a.SameStructure(b)) return false;
  const VertexId n = a.NumVertices();
  for (VertexId v = 0; v < n; ++v) {
    if (a.LabelOf(v) != b.LabelOf(v)) return false;
  }
  return true;
}

ResultCache::ResultCache(std::uint64_t byte_budget)
    : byte_budget_(byte_budget) {}

ResultCache::LruList::iterator ResultCache::TouchEntryLocked(const Graph& g,
                                                             bool create) {
  const std::uint64_t fingerprint = GraphFingerprint(g);
  auto bucket = index_.find(fingerprint);
  if (bucket != index_.end()) {
    for (const LruList::iterator it : bucket->second) {
      if (!GraphIdentical(it->graph, g)) continue;  // collision
      lru_.splice(lru_.begin(), lru_, it);
      return it;
    }
  }
  if (!create) return lru_.end();
  Entry entry;
  entry.fingerprint = fingerprint;
  entry.graph = g;
  entry.bytes = EntryBytes(entry);
  lru_.push_front(std::move(entry));
  bytes_used_ += lru_.front().bytes;
  index_[fingerprint].push_back(lru_.begin());
  return lru_.begin();
}

std::uint64_t ResultCache::EntryBytes(const Entry& entry) {
  std::uint64_t bytes = sizeof(Entry) + entry.graph.MemoryBytes();
  for (const auto& [k, components] : entry.flat) {
    (void)k;
    bytes += ComponentListBytes(*components);
  }
  if (entry.hierarchy != nullptr) bytes += entry.hierarchy->MemoryBytes();
  return bytes;
}

void ResultCache::RechargeLocked(LruList::iterator it) {
  bytes_used_ -= it->bytes;
  it->bytes = EntryBytes(*it);
  bytes_used_ += it->bytes;
}

std::shared_ptr<const ComponentList> ResultCache::LookupComponents(
    const Graph& g, std::uint32_t k) {
  std::lock_guard<std::mutex> lock(mutex_);
  const LruList::iterator it = TouchEntryLocked(g, /*create=*/false);
  if (it != lru_.end()) {
    const auto flat = it->flat.find(k);
    if (flat != it->flat.end()) {
      ++hits_;
      return flat->second;
    }
    if (it->hierarchy != nullptr && (it->exhausted || it->built_k >= k)) {
      ++hits_;
      return std::make_shared<const ComponentList>(
          it->hierarchy->ComponentsAtLevel(k));
    }
  }
  ++misses_;
  return nullptr;
}

void ResultCache::InsertComponents(
    const Graph& g, std::uint32_t k,
    std::shared_ptr<const ComponentList> components) {
  if (components == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const LruList::iterator it = TouchEntryLocked(g, /*create=*/true);
  it->flat.insert_or_assign(k, std::move(components));
  RechargeLocked(it);
  EvictToBudgetLocked();
}

std::shared_ptr<const KvccHierarchy> ResultCache::LookupHierarchy(
    const Graph& g, std::uint32_t min_depth, bool need_exhausted) {
  std::lock_guard<std::mutex> lock(mutex_);
  const LruList::iterator it = TouchEntryLocked(g, /*create=*/false);
  if (it != lru_.end() && it->hierarchy != nullptr &&
      (it->exhausted || (!need_exhausted && it->built_k >= min_depth))) {
    ++hits_;
    return it->hierarchy;
  }
  ++misses_;
  return nullptr;
}

void ResultCache::InsertHierarchy(
    const Graph& g, std::shared_ptr<const KvccHierarchy> hierarchy,
    std::uint32_t built_k, bool exhausted) {
  if (hierarchy == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const LruList::iterator it = TouchEntryLocked(g, /*create=*/true);
  // Keep the deeper of the two hierarchies; a fresh shallow build never
  // clobbers a cached exhausted one.
  const bool new_deeper =
      it->hierarchy == nullptr || (exhausted && !it->exhausted) ||
      (!it->exhausted && built_k > it->built_k);
  if (new_deeper) {
    it->hierarchy = std::move(hierarchy);
    it->built_k = built_k;
    it->exhausted = exhausted;
    RechargeLocked(it);
  }
  EvictToBudgetLocked();
}

void ResultCache::RekeyAfterMutation(
    const Graph& from, const Graph& to,
    const std::vector<std::uint32_t>& dirty_levels) {
  std::lock_guard<std::mutex> lock(mutex_);
  const LruList::iterator old_it = TouchEntryLocked(from, /*create=*/false);
  if (old_it == lru_.end()) return;

  // Survivors: every flat result whose level did not change, and the
  // hierarchy when no level changed at all (identical levels => the
  // rebuilt hierarchy is byte-identical).
  std::map<std::uint32_t, std::shared_ptr<const ComponentList>> surviving;
  for (const auto& [k, components] : old_it->flat) {
    if (!std::binary_search(dirty_levels.begin(), dirty_levels.end(), k)) {
      surviving.emplace(k, components);
    }
  }
  std::shared_ptr<const KvccHierarchy> hierarchy;
  std::uint32_t built_k = 0;
  bool exhausted = false;
  if (dirty_levels.empty()) {
    hierarchy = old_it->hierarchy;
    built_k = old_it->built_k;
    exhausted = old_it->exhausted;
  }

  // Drop the old entry: the superseded graph version is no longer
  // served. A rekey is not an eviction — counters stay untouched.
  const auto bucket = index_.find(old_it->fingerprint);
  std::vector<LruList::iterator>& slots = bucket->second;
  slots.erase(std::find(slots.begin(), slots.end(), old_it));
  if (slots.empty()) index_.erase(bucket);
  bytes_used_ -= old_it->bytes;
  lru_.erase(old_it);

  if (surviving.empty() && hierarchy == nullptr) return;
  const LruList::iterator it = TouchEntryLocked(to, /*create=*/true);
  for (auto& [k, components] : surviving) {
    // Merge, never clobber: a result already computed against `to` is at
    // least as fresh as the migrated one.
    it->flat.emplace(k, std::move(components));
  }
  if (hierarchy != nullptr && it->hierarchy == nullptr) {
    it->hierarchy = std::move(hierarchy);
    it->built_k = built_k;
    it->exhausted = exhausted;
  }
  RechargeLocked(it);
  EvictToBudgetLocked();
}

void ResultCache::EvictToBudgetLocked() {
  while (!lru_.empty() && bytes_used_ > byte_budget_) {
    const Entry& victim = lru_.back();
    const auto bucket = index_.find(victim.fingerprint);
    const auto last = std::prev(lru_.end());
    std::vector<LruList::iterator>& slots = bucket->second;
    slots.erase(std::find(slots.begin(), slots.end(), last));
    if (slots.empty()) index_.erase(bucket);
    bytes_used_ -= victim.bytes;
    lru_.pop_back();
    ++evictions_;
  }
}

std::uint64_t ResultCache::Hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t ResultCache::Misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::uint64_t ResultCache::Evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

std::uint64_t ResultCache::BytesUsed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_used_;
}

std::size_t ResultCache::Entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

}  // namespace server
}  // namespace kvcc
