#include "server/transport.h"

#include <utility>

namespace kvcc {
namespace server {

Transport::~Transport() = default;

namespace {

using internal::LoopbackDirection;
using internal::LoopbackState;

}  // namespace

LoopbackEndpoint::LoopbackEndpoint(std::shared_ptr<LoopbackState> state,
                                   bool is_client)
    : state_(std::move(state)), is_client_(is_client) {}

LoopbackDirection& LoopbackEndpoint::inbound() const {
  return is_client_ ? state_->server_to_client : state_->client_to_server;
}

LoopbackDirection& LoopbackEndpoint::outbound() const {
  return is_client_ ? state_->client_to_server : state_->server_to_client;
}

bool LoopbackEndpoint::ReadLine(std::string& line) {
  std::unique_lock<std::mutex> lock(state_->mutex);
  LoopbackDirection& dir = inbound();
  state_->cv.wait(lock,
                  [&] { return !dir.lines.empty() || dir.closed; });
  // Drain buffered lines even after a close, mirroring TCP: data sent
  // before the peer's close is still delivered, then EOF.
  if (dir.lines.empty()) return false;
  line = std::move(dir.lines.front());
  dir.lines.pop_front();
  state_->cv.notify_all();
  return true;
}

bool LoopbackEndpoint::WriteLine(const std::string& line) {
  std::unique_lock<std::mutex> lock(state_->mutex);
  LoopbackDirection& dir = outbound();
  if (dir.capacity != 0 && dir.lines.size() >= dir.capacity &&
      !dir.closed) {
    ++dir.writers_blocked;
    state_->cv.notify_all();  // wake WaitUntilPeerBlockedWriting observers
    state_->cv.wait(lock, [&] {
      return dir.closed ||
             (dir.capacity != 0 && dir.lines.size() < dir.capacity);
    });
    --dir.writers_blocked;
  }
  if (dir.closed) return false;
  dir.lines.push_back(line);
  ++dir.lines_written;
  state_->cv.notify_all();
  return true;
}

void LoopbackEndpoint::Close() {
  std::lock_guard<std::mutex> lock(state_->mutex);
  state_->client_to_server.closed = true;
  state_->server_to_client.closed = true;
  state_->cv.notify_all();
}

bool LoopbackEndpoint::WaitUntilPeerBlockedWriting() {
  std::unique_lock<std::mutex> lock(state_->mutex);
  LoopbackDirection& dir = inbound();  // the peer writes toward us
  state_->cv.wait(lock,
                  [&] { return dir.writers_blocked > 0 || dir.closed; });
  return dir.writers_blocked > 0;
}

std::size_t LoopbackEndpoint::PendingLines() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return inbound().lines.size();
}

std::uint64_t LoopbackEndpoint::PeerLinesWritten() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return inbound().lines_written;
}

LoopbackPair MakeLoopbackPair(std::size_t client_to_server_capacity,
                              std::size_t server_to_client_capacity) {
  auto state = std::make_shared<LoopbackState>();
  state->client_to_server.capacity = client_to_server_capacity;
  state->server_to_client.capacity = server_to_client_capacity;
  LoopbackPair pair;
  pair.client.reset(new LoopbackEndpoint(state, /*is_client=*/true));
  pair.server.reset(new LoopbackEndpoint(state, /*is_client=*/false));
  return pair;
}

}  // namespace server
}  // namespace kvcc
