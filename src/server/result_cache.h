// The kvccd result cache: decomposition results and k-VCC hierarchies,
// LRU-evicted under one byte budget.
//
// Each entry is one graph. It accumulates what the server has computed
// for that graph: flat component lists per k (from decompose requests)
// and, once any hierarchy or membership request ran, the full k-VCC
// hierarchy — after which every smaller-k decomposition and per-vertex
// membership query is an index lookup, because ComponentsAtLevel(k) of a
// hierarchy equals EnumerateKVccs(g, k).components exactly (same
// components, same canonical order; pinned by tests/hierarchy_test.cc).
// kvccd renders hits and cold runs from the same data, so a cache replay
// is byte-identical NDJSON to the run that populated it
// (docs/SERVING.md).
//
// Keys are a 64-bit structural fingerprint. Fingerprints can collide, so
// a hit is honest: every entry keeps a copy of its graph and the lookup
// confirms full equality (structure + labels) before serving it — a
// collision is a miss, never a wrong answer.
#ifndef KVCC_SERVER_RESULT_CACHE_H_
#define KVCC_SERVER_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "graph/graph.h"
#include "kvcc/hierarchy.h"

/// \file
/// \brief ResultCache: LRU-with-byte-budget cache of decomposition
/// results and hierarchies, keyed by graph fingerprint with
/// collision-honest equality on hit.

namespace kvcc {
namespace server {

/// \brief One decomposition's component lists, canonically sorted.
using ComponentList = std::vector<std::vector<VertexId>>;

/// \brief 64-bit FNV-1a fingerprint of a graph (vertex count, adjacency,
/// and per-vertex labels).
///
/// Labels are included because decomposition results are reported in
/// label space: two structurally equal graphs with different labels must
/// not share cache entries.
/// \param g The graph.
/// \return The fingerprint.
std::uint64_t GraphFingerprint(const Graph& g);

/// \brief Full equality: same structure and same per-vertex labels.
/// \param a First graph.
/// \param b Second graph.
/// \return Whether every query kvccd serves would answer identically on
///   the two graphs.
bool GraphIdentical(const Graph& a, const Graph& b);

/// \brief LRU cache of per-graph decomposition state under a byte
/// budget.
///
/// Thread-safe. Lookups return shared_ptrs, so an entry evicted while a
/// connection still renders from it stays alive until that connection
/// finishes. All counters are deterministic functions of the call
/// sequence.
class ResultCache {
 public:
  /// \brief Creates a cache.
  /// \param byte_budget Total budget for cached entries (graph copy +
  ///   stored results, per entry); 0 disables caching (every lookup
  ///   misses, every insert is dropped immediately by eviction).
  explicit ResultCache(std::uint64_t byte_budget);

  /// \brief Looks up the k-VCCs of `g` for one k.
  ///
  /// Served from the entry's flat list for that k if present, else
  /// derived from its hierarchy when that is deep enough (built to at
  /// least level k, or exhausted).
  /// \param g The query graph.
  /// \param k The connectivity parameter.
  /// \return The canonically sorted components, or null on miss.
  std::shared_ptr<const ComponentList> LookupComponents(const Graph& g,
                                                        std::uint32_t k);

  /// \brief Stores the k-VCCs of `g` for one k (a finished cold
  /// decompose).
  /// \param g The decomposed graph (copied into the entry).
  /// \param k The connectivity parameter.
  /// \param components The canonically sorted components.
  void InsertComponents(const Graph& g, std::uint32_t k,
                        std::shared_ptr<const ComponentList> components);

  /// \brief Looks up a hierarchy for `g` deep enough for the query.
  /// \param g The query graph.
  /// \param min_depth Deepest level the query needs. Ignored when
  ///   `need_exhausted`.
  /// \param need_exhausted The query needs the full hierarchy (built
  ///   until no components remain) — membership and unbounded hierarchy
  ///   requests.
  /// \return The cached hierarchy, or null on miss.
  std::shared_ptr<const KvccHierarchy> LookupHierarchy(const Graph& g,
                                                       std::uint32_t min_depth,
                                                       bool need_exhausted);

  /// \brief Stores (or deepens) the hierarchy for `g`.
  ///
  /// An existing hierarchy is replaced only if the new one is deeper
  /// (exhausted beats any bounded depth).
  /// \param g The decomposed graph (copied into the entry).
  /// \param hierarchy The built hierarchy.
  /// \param built_k The max_level the build was asked for.
  /// \param exhausted True if the build ran until no components remained.
  void InsertHierarchy(const Graph& g,
                       std::shared_ptr<const KvccHierarchy> hierarchy,
                       std::uint32_t built_k, bool exhausted);

  /// \brief Migrates the still-valid results of `from`'s entry to `to`
  /// after a dynamic-graph mutation.
  ///
  /// `dirty_levels` is IncrementalOutcome::dirty_levels: the exact set of
  /// levels whose component list changed. Flat per-k results for every
  /// other k are moved to (and merged into, never clobbering) the entry
  /// for `to`, so untouched (fingerprint, k) pairs keep hitting without
  /// recomputation; dirty ks are dropped — their next lookup misses. The
  /// hierarchy migrates only when no level changed at all. The old
  /// entry is removed (the superseded graph version is no longer served).
  /// Counters: no hits/misses/evictions are charged for the rekey itself;
  /// the byte budget is re-checked afterwards.
  /// \param from The pre-mutation materialized graph.
  /// \param to The post-mutation materialized graph.
  /// \param dirty_levels Levels invalidated by the mutation, ascending.
  void RekeyAfterMutation(const Graph& from, const Graph& to,
                          const std::vector<std::uint32_t>& dirty_levels);

  /// \brief Lookups that returned a result.
  /// \return The hit count (monotone).
  std::uint64_t Hits() const;
  /// \brief Lookups that returned null.
  /// \return The miss count (monotone).
  std::uint64_t Misses() const;
  /// \brief Entries evicted to hold the byte budget (in-place updates do
  /// not count).
  /// \return The eviction count (monotone).
  std::uint64_t Evictions() const;
  /// \brief Bytes currently charged against the budget.
  /// \return The total.
  std::uint64_t BytesUsed() const;
  /// \brief Graphs currently cached.
  /// \return The entry count.
  std::size_t Entries() const;

 private:
  struct Entry {
    std::uint64_t fingerprint = 0;
    Graph graph;  // collision honesty: full equality checked on hit
    // Flat per-k results from decompose requests. std::map (not
    // unordered): deterministic iteration, kvcc-lint R1.
    std::map<std::uint32_t, std::shared_ptr<const ComponentList>> flat;
    std::shared_ptr<const KvccHierarchy> hierarchy;
    std::uint32_t built_k = 0;
    bool exhausted = false;
    std::uint64_t bytes = 0;
  };
  using LruList = std::list<Entry>;

  // Finds (and front-splices) the entry for `g`, creating it if asked.
  // Returns lru_.end() when absent and !create. Caller holds mutex_.
  LruList::iterator TouchEntryLocked(const Graph& g, bool create);
  static std::uint64_t EntryBytes(const Entry& entry);
  void RechargeLocked(LruList::iterator it);
  void EvictToBudgetLocked();

  const std::uint64_t byte_budget_;
  mutable std::mutex mutex_;
  LruList lru_;  // front = most recently used
  std::map<std::uint64_t, std::vector<LruList::iterator>> index_;
  std::uint64_t bytes_used_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace server
}  // namespace kvcc

#endif  // KVCC_SERVER_RESULT_CACHE_H_
