// kvccd: a long-lived k-VCC decomposition service.
//
// One KvccdServer owns one KvccEngine (persistent work-stealing pool),
// one ResultCache, and one AdmissionController; any number of connection
// threads call ServeConnection concurrently. The connection loop maps:
//
//   * request lines        -> KvccEngine::SubmitStream jobs (decompose)
//                             or BuildKvccHierarchy jobs (hierarchy /
//                             membership);
//   * client disconnect    -> stream abandonment, which fires the job's
//                             CancelToken (Engine::Cancel semantics);
//   * slow readers         -> Transport::WriteLine backpressure, chained
//                             to the engine's bounded stream channel;
//   * admission caps       -> one "overloaded" error line, bulk shed
//                             first (AdmissionController);
//   * deadline expiry      -> one "cancelled" close line, connection
//                             stays alive.
//
// The server also owns one dynamic graph (VersionedGraph +
// IncrementalKvcc): insert_edges / delete_edges / compact requests mutate
// it, decompose / hierarchy / membership requests with "dynamic": true
// read it. Mutations run the incremental re-decomposition and rekey the
// result cache by the outcome's dirty-level set, so untouched
// (fingerprint, k) entries keep hitting byte-identically across
// mutations (docs/DYNAMIC.md).
//
// The server is transport-agnostic (the Transport seam): production runs
// TcpTransport connections (tools/kvccd_cli.cc), the protocol tests run
// deterministic in-process loopback pairs. Protocol and byte-identity
// guarantees are documented in docs/SERVING.md.
#ifndef KVCC_SERVER_KVCCD_H_
#define KVCC_SERVER_KVCCD_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "graph/delta_store.h"
#include "kvcc/engine.h"
#include "kvcc/incremental.h"
#include "server/admission.h"
#include "server/protocol.h"
#include "server/result_cache.h"
#include "server/transport.h"

/// \file
/// \brief KvccdServer: the kvccd request loop — admission, cache,
/// engine, NDJSON rendering — behind the Transport seam.

namespace kvcc {
namespace server {

/// \brief Configuration of one KvccdServer.
struct KvccdConfig {
  /// \brief Engine worker threads; 0 = one per hardware thread.
  unsigned engine_threads = 1;
  /// \brief Result-cache byte budget; 0 disables caching.
  std::uint64_t cache_bytes = 64u << 20;
  /// \brief Admission caps; zeros mean unlimited.
  AdmissionLimits admission;
  /// \brief KvccOptions::stream_buffer_limit applied to every decompose
  /// job: bounds undelivered components, so a slow reader parks the
  /// producing worker instead of growing server memory. 0 = unbounded.
  std::uint32_t stream_buffer_limit = 64;
};

/// \brief The kvccd request loop. Thread-safe: one instance serves any
/// number of concurrent connections.
class KvccdServer {
 public:
  /// \brief Creates the server; the engine's worker pool starts
  /// immediately.
  /// \param config Engine, cache, and admission configuration.
  explicit KvccdServer(const KvccdConfig& config = {});

  /// \brief Serves one connection until the client disconnects.
  ///
  /// Reads request lines, writes response lines; returns when ReadLine
  /// reports EOF or a response write fails (peer gone). Safe to call
  /// from many threads concurrently.
  /// \param transport The connection (borrowed for the call).
  void ServeConnection(Transport& transport);

  /// \brief The decomposition cache (for tests and monitoring).
  /// \return The cache.
  const ResultCache& Cache() const { return cache_; }

  /// \brief The admission controller (for tests and monitoring).
  /// \return The controller.
  const AdmissionController& Admission() const { return admission_; }

  /// \brief Streams abandoned because a mid-job response write failed —
  /// each one fired the job's cancel token.
  /// \return The count (monotone).
  std::uint64_t DisconnectCancels() const {
    return disconnect_cancels_.load(std::memory_order_relaxed);
  }

  /// \brief Jobs that ended with a "cancelled" close line because their
  /// deadline elapsed.
  /// \return The count (monotone).
  std::uint64_t DeadlineCancels() const {
    return deadline_cancels_.load(std::memory_order_relaxed);
  }

  /// \brief Renders the "stats" response line. Every field is a
  /// deterministic function of the served request sequence (no
  /// timestamps), so stats replay identically across identical runs.
  /// \return The NDJSON line.
  std::string StatsLine() const;

 private:
  // All handlers return false iff the connection is gone (stop serving).
  bool Dispatch(Transport& transport, const Request& request);
  bool HandleMutation(Transport& transport, const Request& request);
  bool HandleCompact(Transport& transport);
  bool HandleDynamicDecompose(Transport& transport, const Request& request);
  bool HandleDecompose(Transport& transport, const Request& request,
                       const Graph& g);
  bool HandleHierarchy(Transport& transport, const Request& request,
                       const Graph& g);
  bool HandleMembership(Transport& transport, const Request& request,
                        const Graph& g);
  bool EmitDecompose(Transport& transport, const Request& request,
                     const ComponentList& components);
  bool ResolveGraph(const Request& request, Graph& g, std::string& error);
  // Obtains the (cached or freshly built) hierarchy for a hierarchy /
  // membership request. On null a terminal line was already written
  // (cancelled / internal error); `connection_alive` reports whether that
  // write reached the client.
  std::shared_ptr<const KvccHierarchy> ObtainHierarchy(
      Transport& transport, const Request& request, const Graph& g,
      std::uint32_t max_level, bool need_exhausted, const char* op,
      bool& connection_alive);
  // The rendering halves of hierarchy / membership, shared between the
  // static (cache-or-build) and dynamic (incrementally maintained) paths.
  bool RenderHierarchy(Transport& transport, const Request& request,
                       const KvccHierarchy& hierarchy);
  bool RenderMembership(Transport& transport, const Request& request,
                        const Graph& g, const KvccHierarchy& hierarchy);

  const KvccdConfig config_;
  KvccEngine engine_;
  ResultCache cache_;
  AdmissionController admission_;
  // The dynamic graph and its incrementally maintained hierarchy.
  // dynamic_mutex_ serializes mutations and snapshots of the pair; the
  // shared_ptrs handed out stay valid (and frozen) across later updates.
  std::mutex dynamic_mutex_;
  VersionedGraph dynamic_graph_;
  IncrementalKvcc dynamic_state_;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> disconnect_cancels_{0};
  std::atomic<std::uint64_t> deadline_cancels_{0};
  // Dynamic-graph counters surfaced in StatsLine (replay-identical).
  std::atomic<std::uint64_t> delta_edges_applied_{0};
  std::atomic<std::uint64_t> dirty_components_{0};
  std::atomic<std::uint64_t> incremental_reruns_{0};
  std::atomic<std::uint64_t> compactions_{0};
};

}  // namespace server
}  // namespace kvcc

#endif  // KVCC_SERVER_KVCCD_H_
