#include "server/protocol.h"

#include <cmath>
#include <cstdlib>
#include <limits>

namespace kvcc {
namespace server {

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

namespace {

// Recursive-descent JSON parser over a string_view cursor. Every Parse*
// helper leaves `pos` just past what it consumed and reports failure by
// filling `error` and returning false.
struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string* error = nullptr;

  bool Fail(const char* what) {
    *error = std::string(what) + " at byte " + std::to_string(pos);
    return false;
  }

  void SkipSpace() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\r' ||
            text[pos] == '\n')) {
      ++pos;
    }
  }

  bool Literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  bool ParseHex4(std::uint32_t& out) {
    if (pos + 4 > text.size()) return Fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text[pos + static_cast<std::size_t>(i)];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return Fail("bad \\u escape");
      }
    }
    pos += 4;
    return true;
  }

  static void AppendUtf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool ParseString(std::string& out) {
    if (pos >= text.size() || text[pos] != '"') {
      return Fail("expected string");
    }
    ++pos;
    out.clear();
    while (pos < text.size()) {
      const unsigned char c = static_cast<unsigned char>(text[pos]);
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c < 0x20) return Fail("unescaped control character");
      if (c != '\\') {
        out.push_back(static_cast<char>(c));
        ++pos;
        continue;
      }
      ++pos;
      if (pos >= text.size()) return Fail("truncated escape");
      const char esc = text[pos++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!ParseHex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate must follow.
            if (!Literal("\\u")) return Fail("lone high surrogate");
            std::uint32_t low = 0;
            if (!ParseHex4(low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) {
              return Fail("bad low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Fail("lone low surrogate");
          }
          AppendUtf8(out, cp);
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(double& out) {
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    if (pos >= text.size() || text[pos] < '0' || text[pos] > '9') {
      pos = start;
      return Fail("expected number");
    }
    if (text[pos] == '0') {
      ++pos;  // no leading zeros
    } else {
      while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    }
    if (pos < text.size() && text[pos] == '.') {
      ++pos;
      if (pos >= text.size() || text[pos] < '0' || text[pos] > '9') {
        return Fail("digits required after decimal point");
      }
      while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      if (pos >= text.size() || text[pos] < '0' || text[pos] > '9') {
        return Fail("digits required in exponent");
      }
      while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    }
    const std::string token(text.substr(start, pos - start));
    out = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(out)) return Fail("number out of range");
    return true;
  }

  bool ParseValue(JsonValue& out, std::size_t depth) {
    if (depth > kMaxJsonDepth) return Fail("nesting too deep");
    SkipSpace();
    if (pos >= text.size()) return Fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') {
      ++pos;
      out.type = JsonValue::Type::kObject;
      SkipSpace();
      if (pos < text.size() && text[pos] == '}') {
        ++pos;
        return true;
      }
      for (;;) {
        SkipSpace();
        std::string key;
        if (!ParseString(key)) return false;
        for (const auto& [existing, unused] : out.object) {
          (void)unused;
          if (existing == key) return Fail("duplicate object key");
        }
        SkipSpace();
        if (pos >= text.size() || text[pos] != ':') {
          return Fail("expected ':'");
        }
        ++pos;
        JsonValue value;
        if (!ParseValue(value, depth + 1)) return false;
        out.object.emplace_back(std::move(key), std::move(value));
        SkipSpace();
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          continue;
        }
        if (pos < text.size() && text[pos] == '}') {
          ++pos;
          return true;
        }
        return Fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos;
      out.type = JsonValue::Type::kArray;
      SkipSpace();
      if (pos < text.size() && text[pos] == ']') {
        ++pos;
        return true;
      }
      for (;;) {
        JsonValue element;
        if (!ParseValue(element, depth + 1)) return false;
        out.array.push_back(std::move(element));
        SkipSpace();
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          continue;
        }
        if (pos < text.size() && text[pos] == ']') {
          ++pos;
          return true;
        }
        return Fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out.type = JsonValue::Type::kString;
      return ParseString(out.string);
    }
    if (c == 't') {
      if (!Literal("true")) return Fail("bad literal");
      out.type = JsonValue::Type::kBool;
      out.boolean = true;
      return true;
    }
    if (c == 'f') {
      if (!Literal("false")) return Fail("bad literal");
      out.type = JsonValue::Type::kBool;
      out.boolean = false;
      return true;
    }
    if (c == 'n') {
      if (!Literal("null")) return Fail("bad literal");
      out.type = JsonValue::Type::kNull;
      return true;
    }
    out.type = JsonValue::Type::kNumber;
    return ParseNumber(out.number);
  }
};

}  // namespace

bool ParseJson(std::string_view text, JsonValue& out, std::string& error) {
  Parser parser{text, 0, &error};
  out = JsonValue();
  if (!parser.ParseValue(out, 0)) return false;
  parser.SkipSpace();
  if (parser.pos != text.size()) {
    return parser.Fail("trailing characters after document");
  }
  return true;
}

bool IsValidUtf8(std::string_view text) {
  std::size_t i = 0;
  while (i < text.size()) {
    const unsigned char b0 = static_cast<unsigned char>(text[i]);
    std::size_t len = 0;
    std::uint32_t cp = 0;
    if (b0 < 0x80) {
      ++i;
      continue;
    } else if ((b0 & 0xE0) == 0xC0) {
      len = 2;
      cp = b0 & 0x1Fu;
    } else if ((b0 & 0xF0) == 0xE0) {
      len = 3;
      cp = b0 & 0x0Fu;
    } else if ((b0 & 0xF8) == 0xF0) {
      len = 4;
      cp = b0 & 0x07u;
    } else {
      return false;
    }
    if (i + len > text.size()) return false;
    for (std::size_t j = 1; j < len; ++j) {
      const unsigned char bj = static_cast<unsigned char>(text[i + j]);
      if ((bj & 0xC0) != 0x80) return false;
      cp = (cp << 6) | (bj & 0x3Fu);
    }
    // Reject overlong encodings, surrogates, and out-of-range points.
    if (len == 2 && cp < 0x80) return false;
    if (len == 3 && cp < 0x800) return false;
    if (len == 4 && cp < 0x10000) return false;
    if (cp >= 0xD800 && cp <= 0xDFFF) return false;
    if (cp > 0x10FFFF) return false;
    i += len;
  }
  return true;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  static const char kHex[] = "0123456789abcdef";
  for (const char c : text) {
    const unsigned char u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (u < 0x20) {
          out += "\\u00";
          out.push_back(kHex[u >> 4]);
          out.push_back(kHex[u & 0xF]);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

namespace {

// Reads an unsigned integer field: must be a non-negative integral JSON
// number fitting `max`.
bool ReadUint(const JsonValue& json, std::string_view field,
              std::uint64_t max, std::uint64_t& out, bool& present,
              std::string& error) {
  const JsonValue* value = json.Find(field);
  present = value != nullptr;
  if (value == nullptr) return true;
  if (value->type != JsonValue::Type::kNumber) {
    error = "field '" + std::string(field) + "' must be a number";
    return false;
  }
  const double d = value->number;
  if (d < 0 || d != std::floor(d) || d > static_cast<double>(max)) {
    error = "field '" + std::string(field) + "' out of range";
    return false;
  }
  out = static_cast<std::uint64_t>(d);
  return true;
}

bool ReadString(const JsonValue& json, std::string_view field,
                std::string& out, bool& present, std::string& error) {
  const JsonValue* value = json.Find(field);
  present = value != nullptr;
  if (value == nullptr) return true;
  if (value->type != JsonValue::Type::kString) {
    error = "field '" + std::string(field) + "' must be a string";
    return false;
  }
  out = value->string;
  return true;
}

bool ReadBool(const JsonValue& json, std::string_view field, bool& out,
              bool& present, std::string& error) {
  const JsonValue* value = json.Find(field);
  present = value != nullptr;
  if (value == nullptr) return true;
  if (value->type != JsonValue::Type::kBool) {
    error = "field '" + std::string(field) + "' must be a boolean";
    return false;
  }
  out = value->boolean;
  return true;
}

bool FieldAllowed(std::string_view key, const char* const* allowed,
                  std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    if (key == allowed[i]) return true;
  }
  return false;
}

}  // namespace

bool ParseRequest(const JsonValue& json, Request& out, std::string& error) {
  out = Request();
  if (json.type != JsonValue::Type::kObject) {
    error = "request must be a JSON object";
    return false;
  }
  std::string op;
  bool present = false;
  if (!ReadString(json, "op", op, present, error)) return false;
  if (!present) {
    error = "missing field 'op'";
    return false;
  }
  static const char* const kPingFields[] = {"op"};
  static const char* const kDecomposeFields[] = {
      "op",       "k",        "graph",          "edges",
      "variant",  "priority", "deadline_ms",    "progress_every",
      "dynamic"};
  static const char* const kHierarchyFields[] = {
      "op",    "max_k",    "graph",       "edges",
      "variant", "priority", "deadline_ms", "dynamic"};
  static const char* const kMembershipFields[] = {
      "op",     "vertex",   "graph",       "edges",
      "variant", "priority", "deadline_ms", "dynamic"};
  static const char* const kMutationFields[] = {"op", "edges"};
  const char* const* allowed = kPingFields;
  std::size_t allowed_count = 1;
  bool needs_graph = true;
  bool is_mutation = false;
  if (op == "ping") {
    out.op = Request::Op::kPing;
    needs_graph = false;
  } else if (op == "stats") {
    out.op = Request::Op::kStats;
    needs_graph = false;
  } else if (op == "decompose") {
    out.op = Request::Op::kDecompose;
    allowed = kDecomposeFields;
    allowed_count = sizeof(kDecomposeFields) / sizeof(kDecomposeFields[0]);
  } else if (op == "hierarchy") {
    out.op = Request::Op::kHierarchy;
    allowed = kHierarchyFields;
    allowed_count = sizeof(kHierarchyFields) / sizeof(kHierarchyFields[0]);
  } else if (op == "membership") {
    out.op = Request::Op::kMembership;
    allowed = kMembershipFields;
    allowed_count = sizeof(kMembershipFields) / sizeof(kMembershipFields[0]);
  } else if (op == "insert_edges" || op == "delete_edges") {
    out.op = op == "insert_edges" ? Request::Op::kInsertEdges
                                  : Request::Op::kDeleteEdges;
    allowed = kMutationFields;
    allowed_count = sizeof(kMutationFields) / sizeof(kMutationFields[0]);
    needs_graph = false;
    is_mutation = true;
  } else if (op == "compact") {
    out.op = Request::Op::kCompact;
    needs_graph = false;
  } else {
    error = "unknown op '" + op + "'";
    return false;
  }
  for (const auto& [key, unused] : json.object) {
    (void)unused;
    if (!FieldAllowed(key, allowed, allowed_count)) {
      error = "unknown field '" + key + "' for op '" + op + "'";
      return false;
    }
  }

  std::uint64_t number = 0;
  if (!ReadUint(json, "k", std::numeric_limits<std::uint32_t>::max(),
                number, present, error)) {
    return false;
  }
  if (present) out.k = static_cast<std::uint32_t>(number);
  if (out.op == Request::Op::kDecompose) {
    if (!present) {
      error = "missing field 'k'";
      return false;
    }
    if (out.k < 1) {
      error = "field 'k' must be >= 1";
      return false;
    }
  }

  if (!ReadUint(json, "max_k", std::numeric_limits<std::uint32_t>::max(),
                number, present, error)) {
    return false;
  }
  if (present) out.max_k = static_cast<std::uint32_t>(number);

  if (!ReadUint(json, "vertex", kInvalidVertex - 1, number, present,
                error)) {
    return false;
  }
  if (present) out.vertex = static_cast<VertexId>(number);
  if (out.op == Request::Op::kMembership && !present) {
    error = "missing field 'vertex'";
    return false;
  }

  if (!ReadString(json, "graph", out.graph_path, present, error)) {
    return false;
  }
  const bool has_path = present && !out.graph_path.empty();
  if (present && out.graph_path.empty()) {
    error = "field 'graph' must be a non-empty path";
    return false;
  }

  const JsonValue* edges = json.Find("edges");
  if (edges != nullptr) {
    if (edges->type != JsonValue::Type::kArray) {
      error = "field 'edges' must be an array";
      return false;
    }
    out.has_edges = true;
    out.edges.reserve(edges->array.size());
    for (const JsonValue& edge : edges->array) {
      if (edge.type != JsonValue::Type::kArray || edge.array.size() != 2 ||
          edge.array[0].type != JsonValue::Type::kNumber ||
          edge.array[1].type != JsonValue::Type::kNumber) {
        error = "each edge must be a [u, v] number pair";
        return false;
      }
      const double du = edge.array[0].number;
      const double dv = edge.array[1].number;
      const double max_id = static_cast<double>(kInvalidVertex - 1);
      if (du < 0 || dv < 0 || du != std::floor(du) ||
          dv != std::floor(dv) || du > max_id || dv > max_id) {
        error = "edge endpoint out of range";
        return false;
      }
      out.edges.emplace_back(static_cast<VertexId>(du),
                             static_cast<VertexId>(dv));
    }
  }
  if (is_mutation && !out.has_edges) {
    error = "missing field 'edges'";
    return false;
  }

  if (!ReadBool(json, "dynamic", out.dynamic, present, error)) return false;
  if (out.dynamic) {
    // The server's dynamic graph is the source; a request must not also
    // carry its own.
    if (has_path || out.has_edges) {
      error = "dynamic requests take no 'graph' or 'edges' source";
      return false;
    }
  } else if (needs_graph && has_path == out.has_edges) {
    error = has_path ? "give either 'graph' or 'edges', not both"
                     : "missing graph source ('graph' or 'edges')";
    return false;
  }

  std::string variant = "VCCE*";
  if (!ReadString(json, "variant", variant, present, error)) return false;
  if (variant == "VCCE") {
    out.options = KvccOptions::Vcce();
  } else if (variant == "VCCE-N") {
    out.options = KvccOptions::VcceN();
  } else if (variant == "VCCE-G") {
    out.options = KvccOptions::VcceG();
  } else if (variant == "VCCE*") {
    out.options = KvccOptions::VcceStar();
  } else {
    error = "unknown variant '" + variant + "'";
    return false;
  }

  std::string priority;
  if (!ReadString(json, "priority", priority, present, error)) return false;
  if (present) {
    if (priority == "interactive") {
      out.options.priority = JobPriority::kInteractive;
    } else if (priority == "normal") {
      out.options.priority = JobPriority::kNormal;
    } else if (priority == "bulk") {
      out.options.priority = JobPriority::kBulk;
    } else {
      error = "unknown priority '" + priority + "'";
      return false;
    }
  }

  if (!ReadUint(json, "deadline_ms",
                std::numeric_limits<std::uint32_t>::max(), number, present,
                error)) {
    return false;
  }
  if (present) out.options.deadline_ms = static_cast<std::uint32_t>(number);

  if (!ReadUint(json, "progress_every",
                std::numeric_limits<std::uint32_t>::max(), number, present,
                error)) {
    return false;
  }
  if (present) out.progress_every = static_cast<std::uint32_t>(number);
  return true;
}

namespace {

void AppendUintArray(std::string& line,
                     const std::vector<std::uint64_t>& values) {
  line.push_back('[');
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) line.push_back(',');
    line += std::to_string(values[i]);
  }
  line.push_back(']');
}

}  // namespace

std::string ComponentLine(std::uint64_t sequence,
                          const std::vector<VertexId>& labels) {
  std::string line = "{\"type\":\"component\",\"seq\":";
  line += std::to_string(sequence);
  line += ",\"size\":";
  line += std::to_string(labels.size());
  line += ",\"vertices\":[";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i != 0) line.push_back(',');
    line += std::to_string(labels[i]);
  }
  line += "]}";
  return line;
}

std::string ProgressLine(std::uint64_t delivered) {
  return "{\"type\":\"progress\",\"delivered\":" +
         std::to_string(delivered) + "}";
}

std::string DecomposeCompleteLine(std::uint32_t k,
                                  std::uint64_t components) {
  return "{\"type\":\"complete\",\"op\":\"decompose\",\"k\":" +
         std::to_string(k) +
         ",\"components\":" + std::to_string(components) + "}";
}

std::string LevelLine(std::uint32_t k, std::uint64_t components,
                      std::uint64_t largest) {
  return "{\"type\":\"level\",\"k\":" + std::to_string(k) +
         ",\"components\":" + std::to_string(components) +
         ",\"largest\":" + std::to_string(largest) + "}";
}

std::string HierarchyCompleteLine(std::uint32_t levels) {
  return "{\"type\":\"complete\",\"op\":\"hierarchy\",\"levels\":" +
         std::to_string(levels) + "}";
}

std::string MembershipLine(VertexId vertex_label, std::uint32_t cohesion,
                           const std::vector<std::uint64_t>& path_sizes) {
  std::string line = "{\"type\":\"membership\",\"vertex\":";
  line += std::to_string(vertex_label);
  line += ",\"cohesion\":";
  line += std::to_string(cohesion);
  line += ",\"path_sizes\":";
  AppendUintArray(line, path_sizes);
  line.push_back('}');
  return line;
}

std::string ErrorLine(std::string_view code, std::string_view message) {
  return "{\"type\":\"error\",\"code\":\"" + JsonEscape(code) +
         "\",\"message\":\"" + JsonEscape(message) + "\"}";
}

std::string CancelledLine(std::string_view op, std::uint64_t delivered) {
  return "{\"type\":\"cancelled\",\"op\":\"" + JsonEscape(op) +
         "\",\"delivered\":" + std::to_string(delivered) + "}";
}

std::string PongLine() { return "{\"type\":\"pong\"}"; }

std::string UpdatedLine(std::string_view op, std::uint64_t version,
                        std::uint64_t applied,
                        std::uint64_t dirty_components,
                        std::uint64_t reruns) {
  return "{\"type\":\"updated\",\"op\":\"" + JsonEscape(op) +
         "\",\"version\":" + std::to_string(version) +
         ",\"applied\":" + std::to_string(applied) +
         ",\"dirty_components\":" + std::to_string(dirty_components) +
         ",\"reruns\":" + std::to_string(reruns) + "}";
}

std::string CompactedLine(std::uint64_t version, std::uint64_t folded) {
  return "{\"type\":\"compacted\",\"version\":" + std::to_string(version) +
         ",\"delta_folded\":" + std::to_string(folded) + "}";
}

}  // namespace server
}  // namespace kvcc
