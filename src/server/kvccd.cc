#include "server/kvccd.h"

#include <algorithm>
#include <exception>
#include <optional>
#include <utility>

#include "graph/graph_io.h"
#include "kvcc/hierarchy.h"
#include "kvcc/job_control.h"

namespace kvcc {
namespace server {
namespace {

/// Pairs every TryAdmit with its Release, whatever path the handler
/// takes out.
class AdmissionGuard {
 public:
  AdmissionGuard(AdmissionController& admission, JobPriority priority)
      : admission_(admission),
        priority_(priority),
        admitted_(admission.TryAdmit(priority)) {}
  ~AdmissionGuard() {
    if (admitted_) admission_.Release(priority_);
  }
  AdmissionGuard(const AdmissionGuard&) = delete;
  AdmissionGuard& operator=(const AdmissionGuard&) = delete;

  bool admitted() const { return admitted_; }

 private:
  AdmissionController& admission_;
  JobPriority priority_;
  bool admitted_;
};

const char* PriorityName(JobPriority priority) {
  switch (priority) {
    case JobPriority::kInteractive: return "interactive";
    case JobPriority::kBulk: return "bulk";
    case JobPriority::kNormal: break;
  }
  return "normal";
}

}  // namespace

KvccdServer::KvccdServer(const KvccdConfig& config)
    : config_(config),
      engine_(config.engine_threads),
      cache_(config.cache_bytes),
      admission_(config.admission) {}

void KvccdServer::ServeConnection(Transport& transport) {
  std::string line;
  while (transport.ReadLine(line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;  // blank keep-alive line
    }
    requests_.fetch_add(1, std::memory_order_relaxed);
    std::string detail;
    if (line.size() > kMaxRequestBytes) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      if (!transport.WriteLine(ErrorLine(
              "overlong", "request exceeds " +
                              std::to_string(kMaxRequestBytes) + " bytes"))) {
        return;
      }
      continue;
    }
    if (!IsValidUtf8(line)) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      if (!transport.WriteLine(
              ErrorLine("invalid-utf8", "request is not valid UTF-8"))) {
        return;
      }
      continue;
    }
    JsonValue json;
    if (!ParseJson(line, json, detail)) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      if (!transport.WriteLine(ErrorLine("malformed", detail))) return;
      continue;
    }
    Request request;
    if (!ParseRequest(json, request, detail)) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      if (!transport.WriteLine(ErrorLine("bad-request", detail))) return;
      continue;
    }
    if (!Dispatch(transport, request)) return;
  }
}

bool KvccdServer::Dispatch(Transport& transport, const Request& request) {
  if (request.op == Request::Op::kPing) {
    return transport.WriteLine(PongLine());
  }
  if (request.op == Request::Op::kStats) {
    return transport.WriteLine(StatsLine());
  }

  Graph g;
  std::string error;
  if (!ResolveGraph(request, g, error)) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return transport.WriteLine(ErrorLine("graph", error));
  }

  AdmissionGuard guard(admission_, request.options.priority);
  if (!guard.admitted()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return transport.WriteLine(ErrorLine(
        "overloaded", std::string("admission limit reached for class '") +
                          PriorityName(request.options.priority) +
                          "'; retry later"));
  }
  switch (request.op) {
    case Request::Op::kDecompose:
      return HandleDecompose(transport, request, g);
    case Request::Op::kHierarchy:
      return HandleHierarchy(transport, request, g);
    case Request::Op::kMembership:
      return HandleMembership(transport, request, g);
    case Request::Op::kPing:
    case Request::Op::kStats:
      break;  // handled above
  }
  return true;
}

bool KvccdServer::ResolveGraph(const Request& request, Graph& g,
                               std::string& error) {
  if (request.has_edges) {
    VertexId num_vertices = 0;
    for (const auto& [u, v] : request.edges) {
      num_vertices = std::max({num_vertices, u + 1, v + 1});
    }
    g = Graph::FromEdges(num_vertices, request.edges);
    return true;
  }
  try {
    g = ReadEdgeListFile(request.graph_path);
  } catch (const std::exception& e) {
    error = e.what();
    return false;
  }
  return true;
}

bool KvccdServer::EmitDecompose(Transport& transport, const Request& request,
                                const ComponentList& components) {
  for (std::size_t i = 0; i < components.size(); ++i) {
    if (!transport.WriteLine(ComponentLine(i, components[i]))) return false;
  }
  return transport.WriteLine(
      DecomposeCompleteLine(request.k, components.size()));
}

bool KvccdServer::HandleDecompose(Transport& transport,
                                  const Request& request, const Graph& g) {
  const std::shared_ptr<const ComponentList> cached =
      cache_.LookupComponents(g, request.k);
  if (cached != nullptr) {
    // Replay: regenerate the cold run's progress cadence from the
    // component count, then the identical component and complete lines.
    if (request.progress_every != 0) {
      for (std::uint64_t d = request.progress_every; d <= cached->size();
           d += request.progress_every) {
        if (!transport.WriteLine(ProgressLine(d))) return false;
      }
    }
    return EmitDecompose(transport, request, *cached);
  }

  KvccOptions options = request.options;
  options.stream_buffer_limit = config_.stream_buffer_limit;
  auto components = std::make_shared<ComponentList>();
  std::uint64_t delivered = 0;
  try {
    ResultStream stream = engine_.SubmitStream(g, request.k, options);
    for (;;) {
      std::optional<StreamedComponent> component = stream.Next();
      if (!component.has_value()) break;
      components->push_back(std::move(component->vertices));
      ++delivered;
      // The cold run's only mid-compute output: a deterministic
      // count-based heartbeat. Its write is where a gone client is
      // noticed mid-job (returning destroys `stream`, which abandons the
      // channel and fires the job's cancel token) and where a slow
      // reader's transport backpressure reaches the engine.
      if (request.progress_every != 0 &&
          delivered % request.progress_every == 0) {
        if (!transport.WriteLine(ProgressLine(delivered))) {
          disconnect_cancels_.fetch_add(1, std::memory_order_relaxed);
          return false;
        }
      }
    }
  } catch (const JobCancelled&) {
    deadline_cancels_.fetch_add(1, std::memory_order_relaxed);
    return transport.WriteLine(CancelledLine("decompose", delivered));
  } catch (const std::exception& e) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return transport.WriteLine(ErrorLine("internal", e.what()));
  }
  std::sort(components->begin(), components->end());
  cache_.InsertComponents(g, request.k, components);
  return EmitDecompose(transport, request, *components);
}

std::shared_ptr<const KvccHierarchy> KvccdServer::ObtainHierarchy(
    Transport& transport, const Request& request, const Graph& g,
    std::uint32_t max_level, bool need_exhausted, const char* op,
    bool& connection_alive) {
  connection_alive = true;
  std::shared_ptr<const KvccHierarchy> hierarchy =
      cache_.LookupHierarchy(g, max_level, need_exhausted);
  if (hierarchy != nullptr) return hierarchy;
  try {
    auto built = std::make_shared<KvccHierarchy>(
        BuildKvccHierarchy(engine_, g, max_level, request.options));
    const bool exhausted =
        max_level == 0 || built->MaxLevel() < max_level;
    cache_.InsertHierarchy(g, built, max_level, exhausted);
    return built;
  } catch (const JobCancelled&) {
    deadline_cancels_.fetch_add(1, std::memory_order_relaxed);
    connection_alive = transport.WriteLine(CancelledLine(op, 0));
  } catch (const std::exception& e) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    connection_alive = transport.WriteLine(ErrorLine("internal", e.what()));
  }
  return nullptr;
}

bool KvccdServer::HandleHierarchy(Transport& transport,
                                  const Request& request, const Graph& g) {
  bool connection_alive = true;
  const std::shared_ptr<const KvccHierarchy> hierarchy = ObtainHierarchy(
      transport, request, g, request.max_k, request.max_k == 0, "hierarchy",
      connection_alive);
  if (hierarchy == nullptr) return connection_alive;
  std::uint32_t levels = hierarchy->MaxLevel();
  if (request.max_k != 0) levels = std::min(levels, request.max_k);
  for (std::uint32_t k = 1; k <= levels; ++k) {
    const std::vector<std::size_t>& nodes = hierarchy->NodesAtLevel(k);
    std::uint64_t largest = 0;
    for (const std::size_t index : nodes) {
      largest =
          std::max<std::uint64_t>(largest,
                                  hierarchy->nodes[index].vertices.size());
    }
    if (!transport.WriteLine(LevelLine(k, nodes.size(), largest))) {
      return false;
    }
  }
  return transport.WriteLine(HierarchyCompleteLine(levels));
}

bool KvccdServer::HandleMembership(Transport& transport,
                                   const Request& request, const Graph& g) {
  if (request.vertex >= g.NumVertices()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return transport.WriteLine(
        ErrorLine("bad-request", "vertex out of range"));
  }
  bool connection_alive = true;
  const std::shared_ptr<const KvccHierarchy> hierarchy =
      ObtainHierarchy(transport, request, g, /*max_level=*/0,
                      /*need_exhausted=*/true, "membership",
                      connection_alive);
  if (hierarchy == nullptr) return connection_alive;
  return transport.WriteLine(MembershipLine(
      g.LabelOf(request.vertex), hierarchy->CohesionOf(request.vertex),
      hierarchy->PathOf(request.vertex)));
}

std::string KvccdServer::StatsLine() const {
  std::string line = "{\"type\":\"stats\",\"requests\":";
  line += std::to_string(requests_.load(std::memory_order_relaxed));
  line += ",\"errors\":";
  line += std::to_string(errors_.load(std::memory_order_relaxed));
  line += ",\"cache_hits\":";
  line += std::to_string(cache_.Hits());
  line += ",\"cache_misses\":";
  line += std::to_string(cache_.Misses());
  line += ",\"cache_evictions\":";
  line += std::to_string(cache_.Evictions());
  line += ",\"cache_entries\":";
  line += std::to_string(cache_.Entries());
  line += ",\"cache_bytes\":";
  line += std::to_string(cache_.BytesUsed());
  line += ",\"jobs_shed\":";
  line += std::to_string(admission_.JobsShed());
  line += ",\"bulk_shed\":";
  line += std::to_string(admission_.BulkShed());
  line += ",\"running\":";
  line += std::to_string(admission_.Running());
  line += ",\"disconnect_cancels\":";
  line += std::to_string(disconnect_cancels_.load(std::memory_order_relaxed));
  line += ",\"deadline_cancels\":";
  line += std::to_string(deadline_cancels_.load(std::memory_order_relaxed));
  line += "}";
  return line;
}

}  // namespace server
}  // namespace kvcc
