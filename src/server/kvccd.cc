#include "server/kvccd.h"

#include <algorithm>
#include <exception>
#include <optional>
#include <utility>

#include "graph/graph_io.h"
#include "kvcc/hierarchy.h"
#include "kvcc/job_control.h"

namespace kvcc {
namespace server {
namespace {

/// Pairs every TryAdmit with its Release, whatever path the handler
/// takes out.
class AdmissionGuard {
 public:
  AdmissionGuard(AdmissionController& admission, JobPriority priority)
      : admission_(admission),
        priority_(priority),
        admitted_(admission.TryAdmit(priority)) {}
  ~AdmissionGuard() {
    if (admitted_) admission_.Release(priority_);
  }
  AdmissionGuard(const AdmissionGuard&) = delete;
  AdmissionGuard& operator=(const AdmissionGuard&) = delete;

  bool admitted() const { return admitted_; }

 private:
  AdmissionController& admission_;
  JobPriority priority_;
  bool admitted_;
};

const char* PriorityName(JobPriority priority) {
  switch (priority) {
    case JobPriority::kInteractive: return "interactive";
    case JobPriority::kBulk: return "bulk";
    case JobPriority::kNormal: break;
  }
  return "normal";
}

}  // namespace

KvccdServer::KvccdServer(const KvccdConfig& config)
    : config_(config),
      engine_(config.engine_threads),
      cache_(config.cache_bytes),
      admission_(config.admission),
      dynamic_state_(KvccOptions::VcceStar()) {
  // Eagerly initialize the dynamic state (on the empty graph) so the
  // first mutation takes the incremental path, not a cold rebuild.
  dynamic_state_.Update(dynamic_graph_);
}

void KvccdServer::ServeConnection(Transport& transport) {
  std::string line;
  while (transport.ReadLine(line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;  // blank keep-alive line
    }
    requests_.fetch_add(1, std::memory_order_relaxed);
    std::string detail;
    if (line.size() > kMaxRequestBytes) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      if (!transport.WriteLine(ErrorLine(
              "overlong", "request exceeds " +
                              std::to_string(kMaxRequestBytes) + " bytes"))) {
        return;
      }
      continue;
    }
    if (!IsValidUtf8(line)) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      if (!transport.WriteLine(
              ErrorLine("invalid-utf8", "request is not valid UTF-8"))) {
        return;
      }
      continue;
    }
    JsonValue json;
    if (!ParseJson(line, json, detail)) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      if (!transport.WriteLine(ErrorLine("malformed", detail))) return;
      continue;
    }
    Request request;
    if (!ParseRequest(json, request, detail)) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      if (!transport.WriteLine(ErrorLine("bad-request", detail))) return;
      continue;
    }
    if (!Dispatch(transport, request)) return;
  }
}

bool KvccdServer::Dispatch(Transport& transport, const Request& request) {
  if (request.op == Request::Op::kPing) {
    return transport.WriteLine(PongLine());
  }
  if (request.op == Request::Op::kStats) {
    return transport.WriteLine(StatsLine());
  }

  const bool dynamic_op = request.dynamic ||
                          request.op == Request::Op::kInsertEdges ||
                          request.op == Request::Op::kDeleteEdges ||
                          request.op == Request::Op::kCompact;
  Graph g;
  if (!dynamic_op) {
    std::string error;
    if (!ResolveGraph(request, g, error)) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      return transport.WriteLine(ErrorLine("graph", error));
    }
  }

  AdmissionGuard guard(admission_, request.options.priority);
  if (!guard.admitted()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return transport.WriteLine(ErrorLine(
        "overloaded", std::string("admission limit reached for class '") +
                          PriorityName(request.options.priority) +
                          "'; retry later"));
  }
  switch (request.op) {
    case Request::Op::kDecompose:
      if (request.dynamic) return HandleDynamicDecompose(transport, request);
      return HandleDecompose(transport, request, g);
    case Request::Op::kHierarchy: {
      if (!request.dynamic) return HandleHierarchy(transport, request, g);
      std::shared_ptr<const KvccHierarchy> hierarchy;
      {
        std::lock_guard<std::mutex> lock(dynamic_mutex_);
        hierarchy = dynamic_state_.Hierarchy();
      }
      return RenderHierarchy(transport, request, *hierarchy);
    }
    case Request::Op::kMembership: {
      if (!request.dynamic) return HandleMembership(transport, request, g);
      std::shared_ptr<const Graph> dynamic_graph;
      std::shared_ptr<const KvccHierarchy> hierarchy;
      {
        std::lock_guard<std::mutex> lock(dynamic_mutex_);
        dynamic_graph = dynamic_state_.CurrentGraph();
        hierarchy = dynamic_state_.Hierarchy();
      }
      return RenderMembership(transport, request, *dynamic_graph,
                              *hierarchy);
    }
    case Request::Op::kInsertEdges:
    case Request::Op::kDeleteEdges:
      return HandleMutation(transport, request);
    case Request::Op::kCompact:
      return HandleCompact(transport);
    case Request::Op::kPing:
    case Request::Op::kStats:
      break;  // handled above
  }
  return true;
}

bool KvccdServer::HandleMutation(Transport& transport,
                                 const Request& request) {
  const bool insert = request.op == Request::Op::kInsertEdges;
  std::uint64_t version = 0;
  std::size_t applied = 0;
  IncrementalOutcome outcome;
  std::string internal_error;
  {
    std::lock_guard<std::mutex> lock(dynamic_mutex_);
    const std::shared_ptr<const Graph> before =
        dynamic_state_.CurrentGraph();
    applied = insert ? dynamic_graph_.InsertEdges(request.edges)
                     : dynamic_graph_.DeleteEdges(request.edges);
    if (applied > 0) {
      try {
        outcome = engine_.SubmitIncremental(dynamic_state_, dynamic_graph_);
      } catch (const std::exception& e) {
        internal_error = e.what();
      }
      if (internal_error.empty()) {
        cache_.RekeyAfterMutation(*before, *dynamic_state_.CurrentGraph(),
                                  outcome.dirty_levels);
        delta_edges_applied_.fetch_add(outcome.delta_edges_applied,
                                       std::memory_order_relaxed);
        dirty_components_.fetch_add(outcome.dirty_components,
                                    std::memory_order_relaxed);
        incremental_reruns_.fetch_add(outcome.incremental_reruns,
                                      std::memory_order_relaxed);
      }
    }
    version = dynamic_graph_.Version();
  }
  if (!internal_error.empty()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return transport.WriteLine(ErrorLine("internal", internal_error));
  }
  return transport.WriteLine(
      UpdatedLine(insert ? "insert_edges" : "delete_edges", version, applied,
                  outcome.dirty_components, outcome.incremental_reruns));
}

bool KvccdServer::HandleCompact(Transport& transport) {
  std::uint64_t version = 0;
  std::size_t folded = 0;
  {
    std::lock_guard<std::mutex> lock(dynamic_mutex_);
    folded = dynamic_graph_.Compact();
    version = dynamic_graph_.Version();
  }
  compactions_.fetch_add(1, std::memory_order_relaxed);
  return transport.WriteLine(CompactedLine(version, folded));
}

bool KvccdServer::HandleDynamicDecompose(Transport& transport,
                                         const Request& request) {
  std::shared_ptr<const Graph> g;
  std::shared_ptr<const KvccHierarchy> hierarchy;
  {
    std::lock_guard<std::mutex> lock(dynamic_mutex_);
    g = dynamic_state_.CurrentGraph();
    hierarchy = dynamic_state_.Hierarchy();
  }
  std::shared_ptr<const ComponentList> components =
      cache_.LookupComponents(*g, request.k);
  if (components == nullptr) {
    // The maintained hierarchy answers any k exactly (ComponentsAtLevel
    // equals the cold enumeration's canonical output); cache the list so
    // later replays hit.
    components = std::make_shared<const ComponentList>(
        hierarchy->ComponentsAtLevel(request.k));
    cache_.InsertComponents(*g, request.k, components);
  }
  // Miss and hit render through the same path, so a post-mutation cold
  // render and its cached replay are byte-identical.
  if (request.progress_every != 0) {
    for (std::uint64_t d = request.progress_every; d <= components->size();
         d += request.progress_every) {
      if (!transport.WriteLine(ProgressLine(d))) return false;
    }
  }
  return EmitDecompose(transport, request, *components);
}

bool KvccdServer::ResolveGraph(const Request& request, Graph& g,
                               std::string& error) {
  if (request.has_edges) {
    VertexId num_vertices = 0;
    for (const auto& [u, v] : request.edges) {
      num_vertices = std::max({num_vertices, u + 1, v + 1});
    }
    g = Graph::FromEdges(num_vertices, request.edges);
    return true;
  }
  try {
    g = ReadEdgeListFile(request.graph_path);
  } catch (const std::exception& e) {
    error = e.what();
    return false;
  }
  return true;
}

bool KvccdServer::EmitDecompose(Transport& transport, const Request& request,
                                const ComponentList& components) {
  for (std::size_t i = 0; i < components.size(); ++i) {
    if (!transport.WriteLine(ComponentLine(i, components[i]))) return false;
  }
  return transport.WriteLine(
      DecomposeCompleteLine(request.k, components.size()));
}

bool KvccdServer::HandleDecompose(Transport& transport,
                                  const Request& request, const Graph& g) {
  const std::shared_ptr<const ComponentList> cached =
      cache_.LookupComponents(g, request.k);
  if (cached != nullptr) {
    // Replay: regenerate the cold run's progress cadence from the
    // component count, then the identical component and complete lines.
    if (request.progress_every != 0) {
      for (std::uint64_t d = request.progress_every; d <= cached->size();
           d += request.progress_every) {
        if (!transport.WriteLine(ProgressLine(d))) return false;
      }
    }
    return EmitDecompose(transport, request, *cached);
  }

  KvccOptions options = request.options;
  options.stream_buffer_limit = config_.stream_buffer_limit;
  auto components = std::make_shared<ComponentList>();
  std::uint64_t delivered = 0;
  try {
    ResultStream stream = engine_.SubmitStream(g, request.k, options);
    for (;;) {
      std::optional<StreamedComponent> component = stream.Next();
      if (!component.has_value()) break;
      components->push_back(std::move(component->vertices));
      ++delivered;
      // The cold run's only mid-compute output: a deterministic
      // count-based heartbeat. Its write is where a gone client is
      // noticed mid-job (returning destroys `stream`, which abandons the
      // channel and fires the job's cancel token) and where a slow
      // reader's transport backpressure reaches the engine.
      if (request.progress_every != 0 &&
          delivered % request.progress_every == 0) {
        if (!transport.WriteLine(ProgressLine(delivered))) {
          disconnect_cancels_.fetch_add(1, std::memory_order_relaxed);
          return false;
        }
      }
    }
  } catch (const JobCancelled&) {
    deadline_cancels_.fetch_add(1, std::memory_order_relaxed);
    return transport.WriteLine(CancelledLine("decompose", delivered));
  } catch (const std::exception& e) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return transport.WriteLine(ErrorLine("internal", e.what()));
  }
  std::sort(components->begin(), components->end());
  cache_.InsertComponents(g, request.k, components);
  return EmitDecompose(transport, request, *components);
}

std::shared_ptr<const KvccHierarchy> KvccdServer::ObtainHierarchy(
    Transport& transport, const Request& request, const Graph& g,
    std::uint32_t max_level, bool need_exhausted, const char* op,
    bool& connection_alive) {
  connection_alive = true;
  std::shared_ptr<const KvccHierarchy> hierarchy =
      cache_.LookupHierarchy(g, max_level, need_exhausted);
  if (hierarchy != nullptr) return hierarchy;
  try {
    auto built = std::make_shared<KvccHierarchy>(
        BuildKvccHierarchy(engine_, g, max_level, request.options));
    const bool exhausted =
        max_level == 0 || built->MaxLevel() < max_level;
    cache_.InsertHierarchy(g, built, max_level, exhausted);
    return built;
  } catch (const JobCancelled&) {
    deadline_cancels_.fetch_add(1, std::memory_order_relaxed);
    connection_alive = transport.WriteLine(CancelledLine(op, 0));
  } catch (const std::exception& e) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    connection_alive = transport.WriteLine(ErrorLine("internal", e.what()));
  }
  return nullptr;
}

bool KvccdServer::RenderHierarchy(Transport& transport,
                                  const Request& request,
                                  const KvccHierarchy& hierarchy) {
  std::uint32_t levels = hierarchy.MaxLevel();
  if (request.max_k != 0) levels = std::min(levels, request.max_k);
  for (std::uint32_t k = 1; k <= levels; ++k) {
    const std::vector<std::size_t>& nodes = hierarchy.NodesAtLevel(k);
    std::uint64_t largest = 0;
    for (const std::size_t index : nodes) {
      largest =
          std::max<std::uint64_t>(largest,
                                  hierarchy.nodes[index].vertices.size());
    }
    if (!transport.WriteLine(LevelLine(k, nodes.size(), largest))) {
      return false;
    }
  }
  return transport.WriteLine(HierarchyCompleteLine(levels));
}

bool KvccdServer::RenderMembership(Transport& transport,
                                   const Request& request, const Graph& g,
                                   const KvccHierarchy& hierarchy) {
  if (request.vertex >= g.NumVertices()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return transport.WriteLine(
        ErrorLine("bad-request", "vertex out of range"));
  }
  return transport.WriteLine(MembershipLine(
      g.LabelOf(request.vertex), hierarchy.CohesionOf(request.vertex),
      hierarchy.PathOf(request.vertex)));
}

bool KvccdServer::HandleHierarchy(Transport& transport,
                                  const Request& request, const Graph& g) {
  bool connection_alive = true;
  const std::shared_ptr<const KvccHierarchy> hierarchy = ObtainHierarchy(
      transport, request, g, request.max_k, request.max_k == 0, "hierarchy",
      connection_alive);
  if (hierarchy == nullptr) return connection_alive;
  return RenderHierarchy(transport, request, *hierarchy);
}

bool KvccdServer::HandleMembership(Transport& transport,
                                   const Request& request, const Graph& g) {
  if (request.vertex >= g.NumVertices()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return transport.WriteLine(
        ErrorLine("bad-request", "vertex out of range"));
  }
  bool connection_alive = true;
  const std::shared_ptr<const KvccHierarchy> hierarchy =
      ObtainHierarchy(transport, request, g, /*max_level=*/0,
                      /*need_exhausted=*/true, "membership",
                      connection_alive);
  if (hierarchy == nullptr) return connection_alive;
  return RenderMembership(transport, request, g, *hierarchy);
}

std::string KvccdServer::StatsLine() const {
  std::string line = "{\"type\":\"stats\",\"requests\":";
  line += std::to_string(requests_.load(std::memory_order_relaxed));
  line += ",\"errors\":";
  line += std::to_string(errors_.load(std::memory_order_relaxed));
  line += ",\"cache_hits\":";
  line += std::to_string(cache_.Hits());
  line += ",\"cache_misses\":";
  line += std::to_string(cache_.Misses());
  line += ",\"cache_evictions\":";
  line += std::to_string(cache_.Evictions());
  line += ",\"cache_entries\":";
  line += std::to_string(cache_.Entries());
  line += ",\"cache_bytes\":";
  line += std::to_string(cache_.BytesUsed());
  line += ",\"jobs_shed\":";
  line += std::to_string(admission_.JobsShed());
  line += ",\"bulk_shed\":";
  line += std::to_string(admission_.BulkShed());
  line += ",\"running\":";
  line += std::to_string(admission_.Running());
  line += ",\"disconnect_cancels\":";
  line += std::to_string(disconnect_cancels_.load(std::memory_order_relaxed));
  line += ",\"deadline_cancels\":";
  line += std::to_string(deadline_cancels_.load(std::memory_order_relaxed));
  line += ",\"delta_edges_applied\":";
  line +=
      std::to_string(delta_edges_applied_.load(std::memory_order_relaxed));
  line += ",\"dirty_components\":";
  line += std::to_string(dirty_components_.load(std::memory_order_relaxed));
  line += ",\"incremental_reruns\":";
  line +=
      std::to_string(incremental_reruns_.load(std::memory_order_relaxed));
  line += ",\"compactions\":";
  line += std::to_string(compactions_.load(std::memory_order_relaxed));
  line += "}";
  return line;
}

}  // namespace server
}  // namespace kvcc
