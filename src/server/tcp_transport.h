// Real-socket Transport implementation for kvccd: a loopback-bound TCP
// listener handing out connected TcpTransport channels.
//
// This is deliberately the thin end of the seam — framing, limits, and all
// protocol behavior live transport-agnostically in kvccd.cc, proven by the
// LoopbackTransport tests; this file only turns POSIX sockets into the
// blocking line channel Transport specifies.
#ifndef KVCC_SERVER_TCP_TRANSPORT_H_
#define KVCC_SERVER_TCP_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "server/transport.h"

/// \file
/// \brief TcpListener / TcpTransport: the production socket
/// implementation of the kvccd Transport seam.

namespace kvcc {
namespace server {

/// \brief Transport over one connected TCP socket.
///
/// ReadLine recv()s into an internal buffer and splits at '\n'; a line
/// longer than the wire cap (8 MiB) is truncated to the cap and the rest
/// discarded up to the next newline, so one hostile client line cannot
/// grow server memory without bound — the protocol layer's (smaller)
/// request-size limit then rejects the truncated line as overlong.
/// WriteLine send()s with SIGPIPE suppressed and reports a gone peer by
/// returning false, exactly as the seam requires.
class TcpTransport : public Transport {
 public:
  /// \brief Adopts a connected socket fd (takes ownership).
  /// \param fd The accepted socket.
  explicit TcpTransport(int fd);
  /// \brief Closes the socket if still open.
  ~TcpTransport() override;

  bool ReadLine(std::string& line) override;
  bool WriteLine(const std::string& line) override;
  void Close() override;

 private:
  int fd_ = -1;
  std::string buffer_;  // bytes received but not yet returned as lines
};

/// \brief Listening socket producing TcpTransport connections.
///
/// Binds 127.0.0.1 only: kvccd has no authentication story yet, so the
/// default posture is local-only serving (docs/SERVING.md).
class TcpListener {
 public:
  /// \brief Binds and listens on 127.0.0.1:port.
  /// \param port Port to bind; 0 picks an ephemeral port (see
  ///   BoundPort()).
  /// \throws std::runtime_error if socket/bind/listen fails.
  explicit TcpListener(std::uint16_t port);
  /// \brief Closes the listening socket if still open.
  ~TcpListener();

  /// \brief The actual bound port (resolves port 0).
  /// \return The port number.
  std::uint16_t BoundPort() const { return port_; }

  /// \brief Blocks for the next connection.
  /// \return A connected transport, or null once Close() was called (or
  ///   on an unrecoverable accept error).
  std::unique_ptr<Transport> Accept();

  /// \brief Unblocks Accept() and stops listening. Idempotent.
  void Close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace server
}  // namespace kvcc

#endif  // KVCC_SERVER_TCP_TRANSPORT_H_
