#include "server/tcp_transport.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace kvcc {
namespace server {
namespace {

// Hard wire-level cap on one request line. The protocol's own request
// limit (protocol.h kMaxRequestBytes) is far smaller; this bound only
// keeps a newline-free byte flood from growing buffer_ without limit.
constexpr std::size_t kWireLineCap = 8u << 20;

}  // namespace

TcpTransport::TcpTransport(int fd) : fd_(fd) {}

TcpTransport::~TcpTransport() { Close(); }

bool TcpTransport::ReadLine(std::string& line) {
  bool discarding = false;  // past the cap: drop bytes until newline
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      line.assign(buffer_, 0, newline);
      buffer_.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return true;
    }
    if (buffer_.size() > kWireLineCap && !discarding) {
      // Keep the truncated prefix as the line the protocol layer will
      // reject as overlong; drop the remainder of the wire line.
      line = std::move(buffer_);
      buffer_.clear();
      discarding = true;
    }
    char chunk[4096];
    const ssize_t got = ::recv(fd_ < 0 ? -1 : fd_, chunk, sizeof(chunk), 0);
    if (got <= 0) {
      if (got < 0 && (errno == EINTR)) continue;
      // EOF (or error, or Close() from another thread): any partial
      // trailing line without a newline is delivered as a final line.
      if (!discarding && !buffer_.empty()) {
        line = std::move(buffer_);
        buffer_.clear();
        return true;
      }
      return discarding && !line.empty();
    }
    if (discarding) {
      const char* nl = static_cast<const char*>(
          std::memchr(chunk, '\n', static_cast<std::size_t>(got)));
      if (nl != nullptr) {
        buffer_.assign(nl + 1, static_cast<const char*>(chunk) + got);
        return true;  // the truncated overlong line
      }
      continue;
    }
    buffer_.append(chunk, static_cast<std::size_t>(got));
  }
}

bool TcpTransport::WriteLine(const std::string& line) {
  std::string wire = line;
  wire.push_back('\n');
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::send(fd_ < 0 ? -1 : fd_, wire.data() + sent,
                             wire.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // peer gone (EPIPE/ECONNRESET) or socket closed
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void TcpTransport::Close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

TcpListener::TcpListener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("kvccd: socket() failed");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("kvccd: cannot bind 127.0.0.1:" +
                             std::to_string(port));
  }
  if (::listen(fd_, 64) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("kvccd: listen() failed");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = port;
  }
}

TcpListener::~TcpListener() { Close(); }

std::unique_ptr<Transport> TcpListener::Accept() {
  for (;;) {
    const int fd = ::accept(fd_ < 0 ? -1 : fd_, nullptr, nullptr);
    if (fd >= 0) return std::make_unique<TcpTransport>(fd);
    if (errno == EINTR) continue;
    return nullptr;  // Close()d or unrecoverable
  }
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace server
}  // namespace kvcc
