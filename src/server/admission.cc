#include "server/admission.h"

namespace kvcc {
namespace server {

AdmissionController::AdmissionController(const AdmissionLimits& limits)
    : limits_(limits) {}

bool AdmissionController::TryAdmit(JobPriority priority) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t cls = static_cast<std::size_t>(priority);
  const std::uint32_t total = running_[0] + running_[1] + running_[2];
  std::uint32_t class_cap = 0;
  switch (priority) {
    case JobPriority::kInteractive: class_cap = limits_.max_interactive;
      break;
    case JobPriority::kNormal: class_cap = limits_.max_normal; break;
    case JobPriority::kBulk: class_cap = limits_.max_bulk; break;
  }
  bool admit = true;
  if (class_cap != 0 && running_[cls] >= class_cap) admit = false;
  if (limits_.max_total != 0 && total >= limits_.max_total) admit = false;
  if (priority == JobPriority::kBulk && limits_.max_total != 0 &&
      limits_.bulk_reserve != 0) {
    // Bulk never takes the last bulk_reserve total slots.
    const std::uint32_t bulk_ceiling =
        limits_.max_total > limits_.bulk_reserve
            ? limits_.max_total - limits_.bulk_reserve
            : 0;
    if (total >= bulk_ceiling) admit = false;
  }
  if (!admit) {
    ++jobs_shed_;
    if (priority == JobPriority::kBulk) ++bulk_shed_;
    return false;
  }
  ++running_[cls];
  return true;
}

void AdmissionController::Release(JobPriority priority) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t cls = static_cast<std::size_t>(priority);
  if (running_[cls] > 0) --running_[cls];
}

std::uint32_t AdmissionController::Running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_[0] + running_[1] + running_[2];
}

std::uint64_t AdmissionController::JobsShed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return jobs_shed_;
}

std::uint64_t AdmissionController::BulkShed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bulk_shed_;
}

}  // namespace server
}  // namespace kvcc
