// The kvccd wire protocol: newline-delimited JSON (NDJSON) requests and
// responses.
//
// One request per line, one or more response lines per request, ending in
// exactly one terminal line ("complete", "error", "cancelled", "pong",
// "stats", "membership"). Malformed input of any shape — truncated JSON,
// overlong lines, invalid UTF-8, wrong field types — yields one "error"
// line and leaves the connection alive (tests/kvccd_corpus_test.cc drives
// a checked-in corpus through exactly that contract). Response rendering
// is a pure function of the decomposition data and the request, never of
// timing, so a cache replay is byte-identical to the cold run that
// populated it (docs/SERVING.md).
//
// The JSON parser is deliberately minimal (objects/arrays/strings/numbers/
// bool/null, depth-capped, whole-line consumption) — requests are small
// and the server must never trust a network peer with an allocation it
// did not bound.
#ifndef KVCC_SERVER_PROTOCOL_H_
#define KVCC_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "kvcc/options.h"

/// \file
/// \brief kvccd NDJSON protocol: request parsing (bounded JSON parser)
/// and deterministic response-line rendering.

namespace kvcc {
namespace server {

/// \brief Requests larger than this are rejected with an "overlong"
/// error before parsing (1 MiB).
inline constexpr std::size_t kMaxRequestBytes = 1u << 20;

/// \brief Maximum JSON nesting depth a request may use.
inline constexpr std::size_t kMaxJsonDepth = 32;

/// \brief One parsed JSON value (objects keep declaration order, so
/// nothing here depends on hash-map iteration).
struct JsonValue {
  /// \brief JSON type tag.
  enum class Type : std::uint8_t {
    kNull,    ///< null
    kBool,    ///< true / false
    kNumber,  ///< double (integral range validated at use sites)
    kString,  ///< UTF-8 string
    kArray,   ///< [...]
    kObject,  ///< {...}
  };

  /// \brief The value's type; selects which member below is meaningful.
  Type type = Type::kNull;
  /// \brief Boolean payload (type == kBool).
  bool boolean = false;
  /// \brief Numeric payload (type == kNumber).
  double number = 0.0;
  /// \brief String payload (type == kString).
  std::string string;
  /// \brief Element payload (type == kArray).
  std::vector<JsonValue> array;
  /// \brief Member payload in declaration order (type == kObject).
  std::vector<std::pair<std::string, JsonValue>> object;

  /// \brief Looks up an object member.
  /// \param key Member name.
  /// \return The member value, or null if absent (or not an object).
  const JsonValue* Find(std::string_view key) const;
};

/// \brief Parses one complete JSON document from `text`.
///
/// The whole input must be consumed (trailing junk is an error); depth is
/// capped at kMaxJsonDepth.
/// \param text The document.
/// \param out Receives the parsed value on success.
/// \param error Receives a one-line description on failure.
/// \return Whether parsing succeeded.
bool ParseJson(std::string_view text, JsonValue& out, std::string& error);

/// \brief Validates that `text` is well-formed UTF-8.
/// \param text The bytes to check.
/// \return True iff every sequence is valid (overlong encodings and
///   surrogate code points rejected).
bool IsValidUtf8(std::string_view text);

/// \brief Escapes a string for embedding in a JSON string literal.
/// \param text Raw text.
/// \return The escaped body (no surrounding quotes).
std::string JsonEscape(std::string_view text);

/// \brief A validated kvccd request.
struct Request {
  /// \brief Request verb ("op" field).
  enum class Op : std::uint8_t {
    kPing,         ///< liveness probe -> "pong"
    kStats,        ///< server counters -> "stats"
    kDecompose,    ///< k-VCC decomposition -> components + "complete"
    kHierarchy,    ///< full dendrogram -> level lines + "complete"
    kMembership,   ///< per-vertex cohesion path -> "membership"
    kInsertEdges,  ///< mutate the dynamic graph -> "updated"
    kDeleteEdges,  ///< mutate the dynamic graph -> "updated"
    kCompact,      ///< fold the dynamic graph's delta -> "compacted"
  };

  /// \brief The request verb.
  Op op = Op::kPing;
  /// \brief True when a decompose / hierarchy / membership request
  /// targets the server's dynamic graph ("dynamic": true) instead of
  /// carrying its own graph source.
  bool dynamic = false;
  /// \brief Connectivity parameter (decompose; >= 1).
  std::uint32_t k = 0;
  /// \brief Deepest hierarchy level (hierarchy; 0 = until exhausted).
  std::uint32_t max_k = 0;
  /// \brief Queried vertex, in original-label space (membership).
  VertexId vertex = 0;
  /// \brief Server-side edge-list path ("graph"); empty if inline edges.
  std::string graph_path;
  /// \brief True if the request carried inline "edges".
  bool has_edges = false;
  /// \brief Inline edge list (valid when has_edges).
  std::vector<std::pair<VertexId, VertexId>> edges;
  /// \brief Algorithm options: variant preset plus the request's
  /// deadline_ms and priority already applied.
  KvccOptions options;
  /// \brief Emit one "progress" line per this many delivered components
  /// while a cold decomposition runs (0 = none). Replayed from cache
  /// byte-identically.
  std::uint32_t progress_every = 0;
};

/// \brief Validates a parsed JSON document as a Request.
///
/// Strict: unknown "op" values, wrong field types, missing graph sources,
/// out-of-range numbers, and unknown variant names all fail with a
/// description instead of guessing.
/// \param json The parsed request line.
/// \param out Receives the request on success.
/// \param error Receives a one-line description on failure.
/// \return Whether validation succeeded.
bool ParseRequest(const JsonValue& json, Request& out, std::string& error);

// ---- response lines --------------------------------------------------
// Every renderer is a pure function of its arguments; kvccd's byte-
// identical cache replay depends on that.

/// \brief One decomposed component.
/// \param sequence 0-based canonical index of the component.
/// \param labels The component's vertices in original-label space,
///   ordered by internal id (the canonical component order).
/// \return The NDJSON line.
std::string ComponentLine(std::uint64_t sequence,
                          const std::vector<VertexId>& labels);

/// \brief Cold-run progress heartbeat (also replayed from cache).
/// \param delivered Components delivered so far.
/// \return The NDJSON line.
std::string ProgressLine(std::uint64_t delivered);

/// \brief Terminal line of a successful decompose.
/// \param k The request's connectivity parameter.
/// \param components Number of components emitted.
/// \return The NDJSON line.
std::string DecomposeCompleteLine(std::uint32_t k, std::uint64_t components);

/// \brief One hierarchy level summary.
/// \param k The level.
/// \param components Components at that level.
/// \param largest Vertex count of the level's largest component.
/// \return The NDJSON line.
std::string LevelLine(std::uint32_t k, std::uint64_t components,
                      std::uint64_t largest);

/// \brief Terminal line of a successful hierarchy request.
/// \param levels Deepest level with components.
/// \return The NDJSON line.
std::string HierarchyCompleteLine(std::uint32_t levels);

/// \brief Terminal line of a membership query.
/// \param vertex_label The queried vertex (original-label space).
/// \param cohesion Largest k with a k-VCC containing the vertex.
/// \param path_sizes Component sizes along the containment path, level 1
///   first.
/// \return The NDJSON line.
std::string MembershipLine(VertexId vertex_label, std::uint32_t cohesion,
                           const std::vector<std::uint64_t>& path_sizes);

/// \brief Terminal error line. The connection stays alive after it.
/// \param code Stable machine-readable code ("malformed", "overlong",
///   "invalid-utf8", "bad-request", "overloaded", "graph", "internal").
/// \param message Human-readable detail (JSON-escaped here).
/// \return The NDJSON line.
std::string ErrorLine(std::string_view code, std::string_view message);

/// \brief Terminal line of a job stopped by its deadline.
/// \param op Name of the cancelled op ("decompose" / "hierarchy" /
///   "membership").
/// \param delivered Components delivered before the deadline fired.
/// \return The NDJSON line.
std::string CancelledLine(std::string_view op, std::uint64_t delivered);

/// \brief Response to "ping".
/// \return The NDJSON line.
std::string PongLine();

/// \brief Terminal line of a dynamic-graph mutation.
/// \param op The mutation verb ("insert_edges" / "delete_edges").
/// \param version Dynamic-graph version after the batch.
/// \param applied Effective deltas applied (0 = the batch was a no-op).
/// \param dirty_components Old hierarchy components invalidated by the
///   incremental re-decomposition.
/// \param reruns Dirty regions re-enumerated.
/// \return The NDJSON line.
std::string UpdatedLine(std::string_view op, std::uint64_t version,
                        std::uint64_t applied,
                        std::uint64_t dirty_components, std::uint64_t reruns);

/// \brief Terminal line of a dynamic-graph compaction.
/// \param version Dynamic-graph version (unchanged by compaction).
/// \param folded Memtable deltas folded into the base.
/// \return The NDJSON line.
std::string CompactedLine(std::uint64_t version, std::uint64_t folded);

}  // namespace server
}  // namespace kvcc

#endif  // KVCC_SERVER_PROTOCOL_H_
