// The kvccd transport seam: one accepted connection as a blocking
// line-oriented byte channel.
//
// The whole request → admission → cache → engine → stream path in
// kvccd.{h,cc} is written against this interface, so the protocol loop is
// testable without real sockets or wall-clock sleeps: production traffic
// runs over TcpTransport (tcp_transport.h), and the deterministic
// in-process tests run over the LoopbackTransport pair below, whose
// bounded write queues and condition-variable hooks let a test *prove* the
// server is parked on a slow reader before it acts, instead of sleeping
// and hoping (tests/kvccd_protocol_test.cc).
#ifndef KVCC_SERVER_TRANSPORT_H_
#define KVCC_SERVER_TRANSPORT_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>

/// \file
/// \brief Transport: the kvccd connection seam (blocking line channel),
/// with the deterministic in-process LoopbackTransport implementation.

namespace kvcc {
namespace server {

/// \brief One accepted kvccd connection as a blocking line channel.
///
/// The server side reads request lines and writes response lines; both
/// calls block (ReadLine until a line or EOF arrives, WriteLine while the
/// peer's receive queue is full) and both report peer departure by
/// returning false — the server maps a false WriteLine mid-stream to
/// abandoning the job's ResultStream, which fires the engine's cancel
/// token (see docs/SERVING.md). Implementations must support one reader
/// thread plus one writer thread concurrently with Close() from any
/// thread.
class Transport {
 public:
  /// \brief Closing is the owner's job; the destructor must not block.
  virtual ~Transport();

  /// \brief Blocks until the next newline-terminated line arrives and
  /// stores it (newline stripped).
  /// \param line Receives the line content on success.
  /// \return False once the peer has closed and every buffered line was
  ///   consumed (EOF); true otherwise.
  virtual bool ReadLine(std::string& line) = 0;

  /// \brief Sends one line (a trailing newline is appended on the wire).
  ///
  /// Blocks while the peer's receive buffer is full — this is the slow
  /// reader backpressure the server relies on — and fails once the peer
  /// is gone.
  /// \param line Line content without trailing newline.
  /// \return False if the peer closed (the line may be dropped); true
  ///   once the line was accepted.
  virtual bool WriteLine(const std::string& line) = 0;

  /// \brief Closes both directions; concurrent blocked ReadLine/WriteLine
  /// calls on either endpoint unblock and return false. Idempotent.
  virtual void Close() = 0;
};

namespace internal {

/// One direction of a loopback connection: a bounded (or unbounded) line
/// queue plus the bookkeeping the test hooks observe. Guarded by the
/// owning LoopbackState's mutex.
struct LoopbackDirection {
  std::deque<std::string> lines;
  std::size_t capacity = 0;  // 0 = unbounded
  bool closed = false;       // either endpoint closed; latching
  std::size_t writers_blocked = 0;   // writers parked on a full queue now
  std::uint64_t lines_written = 0;   // accepted WriteLine calls
};

/// State shared by the two endpoints of one loopback connection.
struct LoopbackState {
  std::mutex mutex;
  std::condition_variable cv;
  LoopbackDirection client_to_server;
  LoopbackDirection server_to_client;
};

}  // namespace internal

struct LoopbackPair;

/// \brief Deterministic in-process Transport endpoint (one end of a
/// MakeLoopbackPair connection).
///
/// Beyond the Transport contract it exposes the synchronization hooks the
/// protocol tests are built on: a test can block until the peer is
/// provably parked in WriteLine on this endpoint's full receive queue
/// (WaitUntilPeerBlockedWriting) — no sleeps, no polling — and can close
/// its end mid-stream to reproduce a client disconnect exactly at that
/// point.
class LoopbackEndpoint : public Transport {
 public:
  bool ReadLine(std::string& line) override;
  bool WriteLine(const std::string& line) override;
  void Close() override;

  /// \brief Blocks until at least one writer on the *peer* endpoint is
  /// parked inside WriteLine because this endpoint's receive queue is
  /// full, or the connection is closed.
  /// \return True if a blocked peer writer was observed; false if the
  ///   connection closed first.
  bool WaitUntilPeerBlockedWriting();

  /// \brief Lines the peer has written toward this endpoint that this
  /// endpoint has not yet read.
  /// \return The instantaneous receive-queue depth.
  std::size_t PendingLines() const;

  /// \brief Lines the peer has successfully written toward this endpoint
  /// over the connection's lifetime (monotone).
  /// \return The accepted-write count.
  std::uint64_t PeerLinesWritten() const;

 private:
  friend LoopbackPair MakeLoopbackPair(std::size_t, std::size_t);
  LoopbackEndpoint(std::shared_ptr<internal::LoopbackState> state,
                   bool is_client);

  internal::LoopbackDirection& inbound() const;
  internal::LoopbackDirection& outbound() const;

  std::shared_ptr<internal::LoopbackState> state_;
  bool is_client_ = false;
};

/// \brief The two endpoints of one in-process connection
/// (MakeLoopbackPair).
struct LoopbackPair {
  /// \brief The client's end: writes requests, reads responses.
  std::unique_ptr<LoopbackEndpoint> client;
  /// \brief The server's end: passed to KvccdServer::ServeConnection.
  std::unique_ptr<LoopbackEndpoint> server;
};

/// \brief Creates a connected in-process transport pair.
///
/// \param client_to_server_capacity Request-queue bound in lines
///   (0 = unbounded): a client writing past it blocks like a full socket
///   send buffer.
/// \param server_to_client_capacity Response-queue bound in lines
///   (0 = unbounded): the server writing past it blocks until the client
///   reads — the deterministic stand-in for a slow reader's TCP window.
/// \return The connected pair.
LoopbackPair MakeLoopbackPair(std::size_t client_to_server_capacity = 0,
                              std::size_t server_to_client_capacity = 0);

}  // namespace server
}  // namespace kvcc

#endif  // KVCC_SERVER_TRANSPORT_H_
