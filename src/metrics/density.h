// Edge density (paper Eq. 4).
#ifndef KVCC_METRICS_DENSITY_H_
#define KVCC_METRICS_DENSITY_H_

#include "graph/graph.h"

namespace kvcc {

/// rho_e(g) = 2|E| / (|V| (|V|-1)); 0 for graphs with fewer than 2 vertices.
double EdgeDensity(const Graph& g);

}  // namespace kvcc

#endif  // KVCC_METRICS_DENSITY_H_
