// Aggregated cohesion statistics over a family of subgraphs — the quantity
// the paper's effectiveness figures (7, 8, 9) plot for k-cores, k-ECCs and
// k-VCCs at each k.
#ifndef KVCC_METRICS_COHESION_REPORT_H_
#define KVCC_METRICS_COHESION_REPORT_H_

#include <cstddef>
#include <vector>

#include "graph/graph.h"

namespace kvcc {

struct CohesionSummary {
  std::size_t component_count = 0;
  double avg_diameter = 0.0;
  double avg_edge_density = 0.0;
  double avg_clustering = 0.0;
  double avg_size = 0.0;
};

/// Computes per-component diameter / density / clustering for each vertex
/// set (ids of `root`) and averages them. Empty input gives all zeros.
CohesionSummary SummarizeComponents(
    const Graph& root, const std::vector<std::vector<VertexId>>& components);

}  // namespace kvcc

#endif  // KVCC_METRICS_COHESION_REPORT_H_
