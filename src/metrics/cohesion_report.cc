#include "metrics/cohesion_report.h"

#include "metrics/clustering.h"
#include "metrics/density.h"
#include "metrics/diameter.h"

namespace kvcc {

CohesionSummary SummarizeComponents(
    const Graph& root, const std::vector<std::vector<VertexId>>& components) {
  CohesionSummary summary;
  if (components.empty()) return summary;
  for (const auto& component : components) {
    const Graph sub = root.InducedSubgraph(component);
    summary.avg_diameter += ExactDiameter(sub);
    summary.avg_edge_density += EdgeDensity(sub);
    summary.avg_clustering += AverageClusteringCoefficient(sub);
    summary.avg_size += sub.NumVertices();
  }
  const auto count = static_cast<double>(components.size());
  summary.component_count = components.size();
  summary.avg_diameter /= count;
  summary.avg_edge_density /= count;
  summary.avg_clustering /= count;
  summary.avg_size /= count;
  return summary;
}

}  // namespace kvcc
