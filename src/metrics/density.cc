#include "metrics/density.h"

namespace kvcc {

double EdgeDensity(const Graph& g) {
  const double n = g.NumVertices();
  if (n < 2) return 0.0;
  return 2.0 * static_cast<double>(g.NumEdges()) / (n * (n - 1.0));
}

}  // namespace kvcc
