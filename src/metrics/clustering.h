// Local and average clustering coefficients (paper Eqs. 5-6).
#ifndef KVCC_METRICS_CLUSTERING_H_
#define KVCC_METRICS_CLUSTERING_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace kvcc {

/// Number of triangles through each vertex. O(sum of d(u)*d(v) over edges)
/// via sorted-adjacency merges.
std::vector<std::uint64_t> TrianglesPerVertex(const Graph& g);

/// c(u) = triangles(u) / (d(u) choose 2); vertices with degree < 2 get 0.
double LocalClusteringCoefficient(const Graph& g, VertexId u);

/// C(G) = average of c(u) over all vertices (0 for the empty graph).
double AverageClusteringCoefficient(const Graph& g);

/// Total number of triangles in g.
std::uint64_t TriangleCount(const Graph& g);

}  // namespace kvcc

#endif  // KVCC_METRICS_CLUSTERING_H_
