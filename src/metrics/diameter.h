// Exact graph diameter via the iFUB algorithm (Crescenzi et al.).
//
// The effectiveness study (paper Fig. 7) reports the average diameter of
// all k-cores / k-ECCs / k-VCCs. Subgraphs of real-like graphs have small
// diameter, which is exactly the regime where iFUB needs only a handful of
// BFS runs instead of n.
#ifndef KVCC_METRICS_DIAMETER_H_
#define KVCC_METRICS_DIAMETER_H_

#include <cstdint>

#include "graph/graph.h"

namespace kvcc {

/// Exact diameter of a *connected* graph (0 for n <= 1). iFUB: worst case
/// O(n m), typically a few BFS sweeps.
std::uint32_t ExactDiameter(const Graph& g);

/// Reference implementation: BFS from every vertex. O(n m); test oracle.
std::uint32_t DiameterByAllPairsBfs(const Graph& g);

/// The paper's Theorem 2 upper bound for a k-VCC: floor((n-2)/kappa) + 1.
/// Requires kappa >= 1.
std::uint32_t KvccDiameterUpperBound(std::uint32_t n, std::uint32_t kappa);

}  // namespace kvcc

#endif  // KVCC_METRICS_DIAMETER_H_
