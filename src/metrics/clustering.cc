#include "metrics/clustering.h"

namespace kvcc {
namespace {

/// |N(a) ∩ N(b)| by merging the sorted adjacency lists.
std::uint64_t CountCommonNeighbors(const Graph& g, VertexId a, VertexId b) {
  const auto na = g.Neighbors(a);
  const auto nb = g.Neighbors(b);
  std::uint64_t common = 0;
  std::size_t i = 0, j = 0;
  while (i < na.size() && j < nb.size()) {
    if (na[i] < nb[j]) {
      ++i;
    } else if (na[i] > nb[j]) {
      ++j;
    } else {
      ++common;
      ++i;
      ++j;
    }
  }
  return common;
}

}  // namespace

std::vector<std::uint64_t> TrianglesPerVertex(const Graph& g) {
  std::vector<std::uint64_t> triangles(g.NumVertices(), 0);
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    for (VertexId v : g.Neighbors(u)) {
      if (v <= u) continue;
      // Each common neighbor w of the edge (u,v) closes a triangle; it will
      // be credited to w when the edges (u,w) and (v,w) are scanned, so
      // crediting u and v here counts every triangle once per member.
      const std::uint64_t common = CountCommonNeighbors(g, u, v);
      triangles[u] += common;
      triangles[v] += common;
    }
  }
  // Each triangle {a,b,c} was credited twice to each member (once per
  // incident edge pair), so halve.
  for (auto& t : triangles) t /= 2;
  return triangles;
}

double LocalClusteringCoefficient(const Graph& g, VertexId u) {
  const std::uint64_t d = g.Degree(u);
  if (d < 2) return 0.0;
  std::uint64_t triangles = 0;
  const auto nbrs = g.Neighbors(u);
  for (VertexId v : nbrs) triangles += CountCommonNeighbors(g, u, v);
  triangles /= 2;  // Each triangle at u counted from both incident edges.
  return static_cast<double>(triangles) /
         (static_cast<double>(d) * static_cast<double>(d - 1) / 2.0);
}

double AverageClusteringCoefficient(const Graph& g) {
  if (g.NumVertices() == 0) return 0.0;
  const std::vector<std::uint64_t> triangles = TrianglesPerVertex(g);
  double sum = 0.0;
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    const std::uint64_t d = g.Degree(u);
    if (d < 2) continue;
    sum += static_cast<double>(triangles[u]) /
           (static_cast<double>(d) * static_cast<double>(d - 1) / 2.0);
  }
  return sum / static_cast<double>(g.NumVertices());
}

std::uint64_t TriangleCount(const Graph& g) {
  std::uint64_t total = 0;
  for (std::uint64_t t : TrianglesPerVertex(g)) total += t;
  return total / 3;
}

}  // namespace kvcc
