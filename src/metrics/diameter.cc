#include "metrics/diameter.h"

#include <algorithm>
#include <vector>

#include "graph/bfs.h"

namespace kvcc {
namespace {

/// BFS that also records parents, for extracting a mid path vertex.
void BfsWithParents(const Graph& g, VertexId src,
                    std::vector<std::uint32_t>& dist,
                    std::vector<VertexId>& parent) {
  dist.assign(g.NumVertices(), kUnreachable);
  parent.assign(g.NumVertices(), kInvalidVertex);
  std::vector<VertexId> queue{src};
  dist[src] = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const VertexId u = queue[head];
    for (VertexId w : g.Neighbors(u)) {
      if (dist[w] == kUnreachable) {
        dist[w] = dist[u] + 1;
        parent[w] = u;
        queue.push_back(w);
      }
    }
  }
}

}  // namespace

std::uint32_t ExactDiameter(const Graph& g) {
  const VertexId n = g.NumVertices();
  if (n <= 1) return 0;

  // Double sweep from a max-degree vertex to seed the lower bound and find
  // a (near-)peripheral path.
  VertexId hub = 0;
  for (VertexId v = 1; v < n; ++v) {
    if (g.Degree(v) > g.Degree(hub)) hub = v;
  }
  const VertexId a = FarthestVertex(g, hub).first;
  std::vector<std::uint32_t> dist;
  std::vector<VertexId> parent;
  BfsWithParents(g, a, dist, parent);
  VertexId b = a;
  for (VertexId v = 0; v < n; ++v) {
    if (dist[v] != kUnreachable && dist[v] > dist[b]) b = v;
  }
  std::uint32_t lower_bound = dist[b];

  // Root iFUB at the midpoint of the a-b path.
  VertexId mid = b;
  for (std::uint32_t step = 0; step < dist[b] / 2; ++step) mid = parent[mid];

  std::vector<std::uint32_t> level;
  BfsDistances(g, mid, level);
  std::uint32_t ecc_mid = 0;
  for (std::uint32_t d : level) {
    if (d != kUnreachable) ecc_mid = std::max(ecc_mid, d);
  }
  lower_bound = std::max(lower_bound, ecc_mid);

  // Vertices at distance exactly i from mid ("fringe"), processed from the
  // outermost level inwards; any vertex pair through level < i has distance
  // <= 2(i-1), so once lower_bound >= 2(i-1) the bound is the diameter.
  std::vector<std::vector<VertexId>> fringe(ecc_mid + 1);
  for (VertexId v = 0; v < n; ++v) {
    if (level[v] != kUnreachable) fringe[level[v]].push_back(v);
  }
  for (std::uint32_t i = ecc_mid; i > 0; --i) {
    if (lower_bound >= 2 * i) break;
    for (VertexId v : fringe[i]) {
      lower_bound = std::max(lower_bound, Eccentricity(g, v));
    }
    if (lower_bound >= 2 * (i - 1)) break;
  }
  return lower_bound;
}

std::uint32_t DiameterByAllPairsBfs(const Graph& g) {
  std::uint32_t best = 0;
  std::vector<std::uint32_t> dist;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    BfsDistances(g, v, dist);
    for (std::uint32_t d : dist) {
      if (d != kUnreachable) best = std::max(best, d);
    }
  }
  return best;
}

std::uint32_t KvccDiameterUpperBound(std::uint32_t n, std::uint32_t kappa) {
  return (n - 2) / kappa + 1;
}

}  // namespace kvcc
