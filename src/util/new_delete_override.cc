// Global operator new/delete overrides that feed MemoryTracker.
//
// Linked only into binaries that need live-heap measurements (the Fig. 12
// bench and the memory tests); see target kvcc_memhook in src/CMakeLists.txt.
// Uses malloc_usable_size() so frees can be accounted without a size header.

#include <malloc.h>

#include <cstdlib>
#include <new>

#include "util/memory_tracker.h"

namespace {

void* TrackedAlloc(std::size_t size) {
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  kvcc::MemoryTracker::RecordAlloc(malloc_usable_size(p));
  return p;
}

void* TrackedAllocNoThrow(std::size_t size) noexcept {
  void* p = std::malloc(size);
  if (p != nullptr) kvcc::MemoryTracker::RecordAlloc(malloc_usable_size(p));
  return p;
}

void TrackedFree(void* p) noexcept {
  if (p == nullptr) return;
  kvcc::MemoryTracker::RecordFree(malloc_usable_size(p));
  std::free(p);
}

struct HookRegistrar {
  HookRegistrar() { kvcc::MemoryTracker::MarkEnabled(); }
};
HookRegistrar hook_registrar;

}  // namespace

void* operator new(std::size_t size) { return TrackedAlloc(size); }
void* operator new[](std::size_t size) { return TrackedAlloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return TrackedAllocNoThrow(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return TrackedAllocNoThrow(size);
}

void operator delete(void* p) noexcept { TrackedFree(p); }
void operator delete[](void* p) noexcept { TrackedFree(p); }
void operator delete(void* p, std::size_t) noexcept { TrackedFree(p); }
void operator delete[](void* p, std::size_t) noexcept { TrackedFree(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  TrackedFree(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  TrackedFree(p);
}

// Aligned forms (C++17). malloc_usable_size works for aligned_alloc too.
void* operator new(std::size_t size, std::align_val_t align) {
  void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                               (size + static_cast<std::size_t>(align) - 1) /
                                   static_cast<std::size_t>(align) *
                                   static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  kvcc::MemoryTracker::RecordAlloc(malloc_usable_size(p));
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}
void operator delete(void* p, std::align_val_t) noexcept { TrackedFree(p); }
void operator delete[](void* p, std::align_val_t) noexcept { TrackedFree(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  TrackedFree(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  TrackedFree(p);
}
