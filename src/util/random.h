// Deterministic pseudo-random number generation for workload generators and
// property tests. All generators in this project are seeded explicitly so
// that every experiment and test is reproducible bit-for-bit.
#ifndef KVCC_UTIL_RANDOM_H_
#define KVCC_UTIL_RANDOM_H_

#include <cstdint>
#include <limits>

namespace kvcc {

/// SplitMix64: tiny, fast, high-quality 64-bit mixer. Used to seed
/// Xoshiro256ss and for cheap stateless hashing of indices.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: the project-wide PRNG. Satisfies the UniformRandomBitGenerator
/// concept so it can be used with <random> distributions when convenient,
/// though the helpers below avoid libstdc++ distribution implementations to
/// keep sequences stable across standard library versions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9b7f23c1d5e8a4f6ULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return Next(); }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  std::uint64_t NextBounded(std::uint64_t bound) {
    __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(Next()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    NextBounded(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace kvcc

#endif  // KVCC_UTIL_RANDOM_H_
