// Wall-clock timing helper used by the benchmark harnesses.
#ifndef KVCC_UTIL_TIMER_H_
#define KVCC_UTIL_TIMER_H_

#include <chrono>

namespace kvcc {

/// Monotonic wall-clock stopwatch. Started on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace kvcc

#endif  // KVCC_UTIL_TIMER_H_
