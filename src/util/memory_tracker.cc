#include "util/memory_tracker.h"

namespace kvcc {

std::atomic<std::uint64_t> MemoryTracker::current_{0};
std::atomic<std::uint64_t> MemoryTracker::peak_{0};
std::atomic<bool> MemoryTracker::enabled_{false};

bool MemoryTracker::Enabled() {
  return enabled_.load(std::memory_order_relaxed);
}

std::uint64_t MemoryTracker::CurrentBytes() {
  return current_.load(std::memory_order_relaxed);
}

std::uint64_t MemoryTracker::PeakBytes() {
  return peak_.load(std::memory_order_relaxed);
}

void MemoryTracker::ResetPeak() {
  peak_.store(current_.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
}

void MemoryTracker::RecordAlloc(std::size_t bytes) {
  const std::uint64_t now =
      current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  // Lock-free max update; racy misses are acceptable for measurement.
  std::uint64_t prev = peak_.load(std::memory_order_relaxed);
  while (now > prev &&
         !peak_.compare_exchange_weak(prev, now, std::memory_order_relaxed)) {
  }
}

void MemoryTracker::RecordFree(std::size_t bytes) {
  current_.fetch_sub(bytes, std::memory_order_relaxed);
}

void MemoryTracker::MarkEnabled() {
  enabled_.store(true, std::memory_order_relaxed);
}

}  // namespace kvcc
