// Process-level memory readings from /proc (Linux).
#ifndef KVCC_UTIL_PROCESS_MEMORY_H_
#define KVCC_UTIL_PROCESS_MEMORY_H_

#include <cstdint>

namespace kvcc {

/// Current resident set size of this process, in bytes. Returns 0 if the
/// value cannot be read (non-Linux platforms).
std::uint64_t CurrentRssBytes();

/// Peak resident set size (VmHWM) of this process, in bytes. Returns 0 if
/// unavailable. Note: this is process-lifetime cumulative and never drops.
std::uint64_t PeakRssBytes();

}  // namespace kvcc

#endif  // KVCC_UTIL_PROCESS_MEMORY_H_
