// Live-heap accounting for the memory-usage experiment (paper Fig. 12).
//
// The counters below are bumped by global operator new/delete overrides that
// live in new_delete_override.cc (target kvcc_memhook). Binaries that do not
// link the hook target still link this header/TU; the counters simply stay
// at zero and Enabled() reports false.
#ifndef KVCC_UTIL_MEMORY_TRACKER_H_
#define KVCC_UTIL_MEMORY_TRACKER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace kvcc {

class MemoryTracker {
 public:
  /// True iff the operator new/delete accounting hooks are linked into this
  /// binary (i.e., the counters are meaningful).
  static bool Enabled();

  /// Bytes of live heap allocated through operator new right now.
  static std::uint64_t CurrentBytes();

  /// High-water mark of CurrentBytes() since the last ResetPeak().
  static std::uint64_t PeakBytes();

  /// Resets the high-water mark to the current live size.
  static void ResetPeak();

  // --- internal: called by the allocation hooks ---
  static void RecordAlloc(std::size_t bytes);
  static void RecordFree(std::size_t bytes);
  static void MarkEnabled();

 private:
  static std::atomic<std::uint64_t> current_;
  static std::atomic<std::uint64_t> peak_;
  static std::atomic<bool> enabled_;
};

}  // namespace kvcc

#endif  // KVCC_UTIL_MEMORY_TRACKER_H_
