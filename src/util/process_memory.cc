#include "util/process_memory.h"

#include <cstdio>
#include <cstring>

namespace kvcc {
namespace {

std::uint64_t ReadStatusField(const char* field) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kb = 0;
  const std::size_t field_len = std::strlen(field);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0) {
      std::sscanf(line + field_len, "%lu", &kb);
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
}

}  // namespace

std::uint64_t CurrentRssBytes() { return ReadStatusField("VmRSS:"); }

std::uint64_t PeakRssBytes() { return ReadStatusField("VmHWM:"); }

}  // namespace kvcc
