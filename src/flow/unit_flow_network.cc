#include "flow/unit_flow_network.h"

#include <algorithm>
#include <cassert>

namespace kvcc {

UnitFlowNetwork::UnitFlowNetwork(std::uint32_t num_nodes) {
  Reinit(num_nodes);
}

void UnitFlowNetwork::Reinit(std::uint32_t num_nodes) {
  topo_ = &own_topo_;
  own_topo_.first.assign(num_nodes, kNone);
  own_topo_.next.clear();
  own_topo_.arc_to.clear();
  own_topo_.init_cap.clear();
  arc_cap_.clear();
  arc_init_cap_.clear();
  dirty_pairs_.clear();
  dirty_epoch_.clear();
  reset_epoch_ = 1;
  level_.resize(num_nodes);
  iter_.resize(num_nodes);
  node_epoch_.assign(num_nodes, 0);
  phase_epoch_ = 0;
}

std::uint32_t UnitFlowNetwork::AddArc(std::uint32_t from, std::uint32_t to,
                                      std::int32_t capacity) {
  assert(topo_ == &own_topo_ && "AddArc on an adopted topology");
  const auto forward = static_cast<std::uint32_t>(own_topo_.arc_to.size());
  own_topo_.arc_to.push_back(to);
  arc_cap_.push_back(capacity);
  own_topo_.next.push_back(own_topo_.first[from]);
  own_topo_.first[from] = forward;

  const auto backward = forward + 1;
  own_topo_.arc_to.push_back(from);
  arc_cap_.push_back(0);
  own_topo_.next.push_back(own_topo_.first[to]);
  own_topo_.first[to] = backward;

  own_topo_.init_cap.push_back(capacity);
  own_topo_.init_cap.push_back(0);
  arc_init_cap_.push_back(capacity);
  arc_init_cap_.push_back(0);
  dirty_epoch_.push_back(0);  // one stamp per (forward, reverse) pair
  return forward;
}

// Steady-state zero-allocation is asserted dynamically by
// memory_tracker_test.WarmOracleBindSharedAllocatesNothing; the grow-only
// resizes below run only when the adopted topology outgrows the private
// watermark (a cold-path event).
// kvcc-lint: no-alloc
void UnitFlowNetwork::AdoptTopology(const UnitFlowNetwork& owner) {
  // Restore any dirt left under the *previous* topology first: the dirty
  // pairs index into arc_init_cap_, our private grow-only copy, which is
  // valid regardless of what topo_ points at afterwards.
  ResetFlow();
  topo_ = owner.topo_;
  const std::size_t arcs = topo_->arc_to.size();
  // Grow-only sync: arcs below the watermark (arc_init_cap_.size()) already
  // hold their initial capacities — by the equal-initial-capacity contract
  // these are the same values the new topology assigns — so only the new
  // tail is written. In the steady state (same-or-smaller topology) this
  // whole block is a no-op.
  const std::size_t synced = arc_init_cap_.size();
  if (synced < arcs) {
    arc_cap_.resize(arcs);      // kvcc-lint: reserved
    arc_init_cap_.resize(arcs);  // kvcc-lint: reserved
    for (std::size_t i = synced; i < arcs; ++i) {
      arc_cap_[i] = topo_->init_cap[i];
      arc_init_cap_[i] = topo_->init_cap[i];
    }
    dirty_epoch_.resize(arcs / 2, 0);  // kvcc-lint: reserved
  }
#ifndef NDEBUG
  for (std::size_t i = 0; i < arcs; ++i) {
    assert(arc_init_cap_[i] == topo_->init_cap[i] &&
           "AdoptTopology: initial-capacity pattern mismatch");
    assert(arc_cap_[i] == topo_->init_cap[i]);
  }
#endif
  const std::size_t n = topo_->first.size();
  if (node_epoch_.size() < n) {
    // New nodes carry stamp 0, which never equals a live (monotone) epoch.
    node_epoch_.resize(n, 0);  // kvcc-lint: reserved
    level_.resize(n);          // kvcc-lint: reserved
    iter_.resize(n);           // kvcc-lint: reserved
  }
}

// Warm-path: one level BFS per Dinic phase on pooled buffers.
// kvcc-lint: no-alloc
bool UnitFlowNetwork::BuildLevels(std::uint32_t s, std::uint32_t t) {
  NextPhase();
  const Topology& topo = *topo_;
  bfs_queue_.clear();
  Visit(s, 0);
  // Grow-only member buffer: capacity reached high-water after the first
  // probe on this topology, every later push stays within it.
  bfs_queue_.push_back(s);  // kvcc-lint: reserved
  std::uint64_t work = 0;
  for (std::size_t head = 0; head < bfs_queue_.size(); ++head) {
    const std::uint32_t u = bfs_queue_[head];
    for (std::uint32_t arc = topo.first[u]; arc != kNone;
         arc = topo.next[arc]) {
      ++work;
      const std::uint32_t w = topo.arc_to[arc];
      if (arc_cap_[arc] > 0 && LevelOf(w) == kNone) {
        Visit(w, level_[u] + 1);
        if (w == t) {  // Shortest t level found; enough to phase.
          work_arcs_ += work;
          return true;
        }
        bfs_queue_.push_back(w);  // kvcc-lint: reserved
      }
    }
  }
  work_arcs_ += work;
  return LevelOf(t) != kNone;
}

// Warm-path: augmenting-path DFS over pooled cursors and path stack.
// kvcc-lint: no-alloc
std::int32_t UnitFlowNetwork::FindAugmentingPath(std::uint32_t s,
                                                 std::uint32_t t,
                                                 std::int32_t limit) {
  const Topology& topo = *topo_;
  path_.clear();
  std::uint32_t u = s;
  std::uint64_t work = 0;
  while (true) {
    if (u == t) {
      work_arcs_ += work;
      std::int32_t bottleneck = limit;
      for (std::uint32_t arc : path_) {
        bottleneck = std::min(bottleneck, arc_cap_[arc]);
      }
      for (std::uint32_t arc : path_) {
        MarkDirty(arc);
        arc_cap_[arc] -= bottleneck;
        arc_cap_[arc ^ 1] += bottleneck;
      }
      return bottleneck;
    }
    // u is on a path from s, so the level BFS visited it and seeded iter_[u].
    std::uint32_t& arc = iter_[u];
    while (arc != kNone &&
           !(arc_cap_[arc] > 0 && LevelOf(topo.arc_to[arc]) == level_[u] + 1)) {
      ++work;
      arc = topo.next[arc];
    }
    if (arc == kNone) {
      level_[u] = kNone;  // Dead end within this phase.
      if (path_.empty()) {
        work_arcs_ += work;
        return 0;
      }
      u = topo.arc_to[path_.back() ^ 1];  // Retreat to the arc's tail node.
      path_.pop_back();
    } else {
      ++work;
      path_.push_back(arc);  // kvcc-lint: reserved
      u = topo.arc_to[arc];
    }
  }
}

// kvcc-lint: no-alloc
std::int32_t UnitFlowNetwork::MaxFlow(std::uint32_t s, std::uint32_t t,
                                      std::int32_t limit) {
  std::int32_t flow = 0;
  while (flow < limit && BuildLevels(s, t)) {
    while (flow < limit) {
      const std::int32_t got = FindAugmentingPath(s, t, limit - flow);
      if (got == 0) break;
      flow += got;
    }
  }
  return flow;
}

// Warm-path: the LocalVC greedy probe engine; stamps, cursors, and the
// path stack are all pooled members.
// kvcc-lint: no-alloc
UnitFlowNetwork::LocalFlowResult UnitFlowNetwork::MaxFlowLocal(
    std::uint32_t s, std::uint32_t t, std::int32_t limit,
    std::uint64_t arc_budget) {
  const Topology& topo = *topo_;
  LocalFlowResult result;
  while (result.flow < limit) {
    // One greedy DFS pass over the residual graph. Visit stamps and the
    // per-node arc cursors persist across every augmentation found within
    // the pass, so growing several short disjoint paths costs one
    // exploration instead of one restart per path (the restart-per-path
    // variant lost to Dinic on exactly the certify-heavy probes this mode
    // targets). The price: a stamp left by an earlier augmentation of the
    // same pass can hide a residual path that only opened up behind it —
    // so a pass that found flow proves nothing, and only a pass that
    // augments NOTHING is a complete residual reachability search from s
    // (all stamps fresh, search exhausted) proving the flow maximum,
    // having inspected only arcs incident to the residual-reachable set.
    NextPhase();
    path_.clear();
    Visit(s, 0);
    std::uint32_t u = s;
    std::int32_t pass_flow = 0;
    while (true) {
      if (u == t) {
        std::int32_t bottleneck = limit - result.flow;
        for (std::uint32_t arc : path_) {
          bottleneck = std::min(bottleneck, arc_cap_[arc]);
        }
        for (std::uint32_t arc : path_) {
          MarkDirty(arc);
          arc_cap_[arc] -= bottleneck;
          arc_cap_[arc ^ 1] += bottleneck;
        }
        result.flow += bottleneck;
        pass_flow += bottleneck;
        if (result.flow >= limit) {
          result.exact = true;  // Hit the limit: kappa certified.
          return result;
        }
        // Same pass, next path: restart from s keeping stamps and
        // cursors. The just-saturated arcs fail the capacity check, and
        // the used intermediate nodes stay stamped — in a unit
        // vertex-capacity network the remaining disjoint paths avoid them
        // anyway (rerouting *through* them is the next pass's job).
        path_.clear();
        u = s;
        continue;
      }
      std::uint32_t& arc = iter_[u];
      while (arc != kNone) {
        if (arc_budget == 0) return result;  // Budget spent: inexact.
        --arc_budget;
        ++work_arcs_;
        const std::uint32_t w = topo.arc_to[arc];
        if (arc_cap_[arc] > 0 && node_epoch_[w] != phase_epoch_) break;
        arc = topo.next[arc];
      }
      if (arc == kNone) {
        if (path_.empty()) break;  // s exhausted: pass over.
        u = topo.arc_to[path_.back() ^ 1];  // Retreat.
        path_.pop_back();
      } else {
        path_.push_back(arc);  // kvcc-lint: reserved
        u = topo.arc_to[arc];
        // Seed the cursor; never stamp t, so later paths of this pass may
        // reach it again.
        if (u != t) Visit(u, 0);  // Level is unused in this mode.
      }
    }
    if (pass_flow == 0) {
      result.exact = true;  // t unreachable: flow is a true max flow.
      return result;
    }
  }
  result.exact = true;  // Hit the limit.
  return result;
}

// Warm-path: O(touched) undo of the last probe's flow.
// kvcc-lint: no-alloc
void UnitFlowNetwork::ResetFlow() {
  for (const std::uint32_t pair : dirty_pairs_) {
    arc_cap_[2 * pair] = arc_init_cap_[2 * pair];
    arc_cap_[2 * pair + 1] = arc_init_cap_[2 * pair + 1];
  }
  dirty_pairs_.clear();
  if (++reset_epoch_ == 0) {  // Epoch wrapped: invalidate all stamps.
    std::fill(dirty_epoch_.begin(), dirty_epoch_.end(), 0);
    reset_epoch_ = 1;
  }
}

std::vector<bool> UnitFlowNetwork::ResidualReachable(std::uint32_t s) const {
  const Topology& topo = *topo_;
  std::vector<bool> reachable(topo.first.size(), false);
  std::vector<std::uint32_t> queue;
  reachable[s] = true;
  queue.push_back(s);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const std::uint32_t u = queue[head];
    for (std::uint32_t arc = topo.first[u]; arc != kNone;
         arc = topo.next[arc]) {
      const std::uint32_t w = topo.arc_to[arc];
      if (arc_cap_[arc] > 0 && !reachable[w]) {
        reachable[w] = true;
        queue.push_back(w);
      }
    }
  }
  return reachable;
}

}  // namespace kvcc
