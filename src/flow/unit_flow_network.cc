#include "flow/unit_flow_network.h"

#include <algorithm>

namespace kvcc {

UnitFlowNetwork::UnitFlowNetwork(std::uint32_t num_nodes) {
  Reinit(num_nodes);
}

void UnitFlowNetwork::Reinit(std::uint32_t num_nodes) {
  first_.assign(num_nodes, kNone);
  next_.clear();
  arc_to_.clear();
  arc_cap_.clear();
  arc_init_cap_.clear();
  dirty_pairs_.clear();
  dirty_epoch_.clear();
  reset_epoch_ = 1;
  level_.resize(num_nodes);
  iter_.resize(num_nodes);
  node_epoch_.assign(num_nodes, 0);
  phase_epoch_ = 0;
}

std::uint32_t UnitFlowNetwork::AddArc(std::uint32_t from, std::uint32_t to,
                                      std::int32_t capacity) {
  const auto forward = static_cast<std::uint32_t>(arc_to_.size());
  arc_to_.push_back(to);
  arc_cap_.push_back(capacity);
  next_.push_back(first_[from]);
  first_[from] = forward;

  const auto backward = forward + 1;
  arc_to_.push_back(from);
  arc_cap_.push_back(0);
  next_.push_back(first_[to]);
  first_[to] = backward;

  arc_init_cap_.push_back(capacity);
  arc_init_cap_.push_back(0);
  dirty_epoch_.push_back(0);  // one stamp per (forward, reverse) pair
  return forward;
}

bool UnitFlowNetwork::BuildLevels(std::uint32_t s, std::uint32_t t) {
  if (++phase_epoch_ == 0) {  // Epoch wrapped: invalidate all stamps.
    std::fill(node_epoch_.begin(), node_epoch_.end(), 0);
    phase_epoch_ = 1;
  }
  bfs_queue_.clear();
  Visit(s, 0);
  bfs_queue_.push_back(s);
  for (std::size_t head = 0; head < bfs_queue_.size(); ++head) {
    const std::uint32_t u = bfs_queue_[head];
    for (std::uint32_t arc = first_[u]; arc != kNone; arc = next_[arc]) {
      const std::uint32_t w = arc_to_[arc];
      if (arc_cap_[arc] > 0 && LevelOf(w) == kNone) {
        Visit(w, level_[u] + 1);
        if (w == t) return true;  // Shortest t level found; enough to phase.
        bfs_queue_.push_back(w);
      }
    }
  }
  return LevelOf(t) != kNone;
}

std::int32_t UnitFlowNetwork::FindAugmentingPath(std::uint32_t s,
                                                 std::uint32_t t,
                                                 std::int32_t limit) {
  path_.clear();
  std::uint32_t u = s;
  while (true) {
    if (u == t) {
      std::int32_t bottleneck = limit;
      for (std::uint32_t arc : path_) {
        bottleneck = std::min(bottleneck, arc_cap_[arc]);
      }
      for (std::uint32_t arc : path_) {
        MarkDirty(arc);
        arc_cap_[arc] -= bottleneck;
        arc_cap_[arc ^ 1] += bottleneck;
      }
      return bottleneck;
    }
    // u is on a path from s, so the level BFS visited it and seeded iter_[u].
    std::uint32_t& arc = iter_[u];
    while (arc != kNone &&
           !(arc_cap_[arc] > 0 && LevelOf(arc_to_[arc]) == level_[u] + 1)) {
      arc = next_[arc];
    }
    if (arc == kNone) {
      level_[u] = kNone;  // Dead end within this phase.
      if (path_.empty()) return 0;
      u = arc_to_[path_.back() ^ 1];  // Retreat to the arc's tail node.
      path_.pop_back();
    } else {
      path_.push_back(arc);
      u = arc_to_[arc];
    }
  }
}

std::int32_t UnitFlowNetwork::MaxFlow(std::uint32_t s, std::uint32_t t,
                                      std::int32_t limit) {
  std::int32_t flow = 0;
  while (flow < limit && BuildLevels(s, t)) {
    while (flow < limit) {
      const std::int32_t got = FindAugmentingPath(s, t, limit - flow);
      if (got == 0) break;
      flow += got;
    }
  }
  return flow;
}

void UnitFlowNetwork::ResetFlow() {
  for (const std::uint32_t pair : dirty_pairs_) {
    arc_cap_[2 * pair] = arc_init_cap_[2 * pair];
    arc_cap_[2 * pair + 1] = arc_init_cap_[2 * pair + 1];
  }
  dirty_pairs_.clear();
  if (++reset_epoch_ == 0) {  // Epoch wrapped: invalidate all stamps.
    std::fill(dirty_epoch_.begin(), dirty_epoch_.end(), 0);
    reset_epoch_ = 1;
  }
}

std::vector<bool> UnitFlowNetwork::ResidualReachable(std::uint32_t s) const {
  std::vector<bool> reachable(first_.size(), false);
  std::vector<std::uint32_t> queue;
  reachable[s] = true;
  queue.push_back(s);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const std::uint32_t u = queue[head];
    for (std::uint32_t arc = first_[u]; arc != kNone; arc = next_[arc]) {
      const std::uint32_t w = arc_to_[arc];
      if (arc_cap_[arc] > 0 && !reachable[w]) {
        reachable[w] = true;
        queue.push_back(w);
      }
    }
  }
  return reachable;
}

}  // namespace kvcc
