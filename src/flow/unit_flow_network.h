// Unit-capacity max-flow (Dinic / Even–Tarjan) with early termination.
//
// The k-VCC algorithm tests local vertex connectivity by max-flow on a
// vertex-split "directed flow graph" in which every arc has capacity 1 and
// every node has in-degree 1 or out-degree 1; on such networks Dinic runs in
// O(sqrt(n) * m) (Even & Tarjan 1975). Because the algorithm only needs to
// know whether the flow reaches k, MaxFlow takes a `limit` and stops as soon
// as the flow value reaches it, giving O(min(sqrt(n), k) * m).
//
// The network is built for heavy reuse: the enumeration runs O(n * delta)
// flow probes against the same network, so per-probe state is restored in
// time proportional to what the probe touched, not to the network size.
//   * ResetFlow restores only the arcs dirtied by augmentation (a dirty-pair
//     list with epoch stamps), not the whole capacity array.
//   * Per-phase Dinic state (levels and arc iterators) is seeded lazily via
//     epoch stamps during the level BFS instead of O(n) assignments.
//   * Reinit() rebinds the object to a new node count while keeping every
//     internal buffer's capacity, so one instance serves a whole recursion.
#ifndef KVCC_FLOW_UNIT_FLOW_NETWORK_H_
#define KVCC_FLOW_UNIT_FLOW_NETWORK_H_

#include <cstdint>
#include <vector>

namespace kvcc {

/// Directed flow network with integer capacities and residual bookkeeping.
/// Arcs are stored in (forward, reverse) pairs: arc i's reverse is i ^ 1.
class UnitFlowNetwork {
 public:
  explicit UnitFlowNetwork(std::uint32_t num_nodes);

  /// Clears all arcs and resets the node count, reusing the allocated
  /// buffers. Equivalent to constructing a fresh network of `num_nodes`.
  void Reinit(std::uint32_t num_nodes);

  /// Adds arc from->to with the given capacity (reverse arc capacity 0).
  /// Returns the forward arc index.
  std::uint32_t AddArc(std::uint32_t from, std::uint32_t to,
                       std::int32_t capacity = 1);

  std::uint32_t NumNodes() const { return static_cast<std::uint32_t>(first_.size()); }
  std::size_t NumArcs() const { return arc_to_.size(); }

  /// Max flow from s to t, stopping early once the value reaches `limit`.
  /// Returns the achieved flow value (== true max flow when < limit).
  std::int32_t MaxFlow(std::uint32_t s, std::uint32_t t,
                       std::int32_t limit = kNoLimit);

  /// Restores all capacities to their construction-time values so the
  /// network can be reused for another (s, t) query. O(arcs dirtied since
  /// the previous reset), not O(total arcs).
  void ResetFlow();

  /// Nodes reachable from s along positive-residual arcs. Valid after
  /// MaxFlow; defines the minimum cut (reachable -> unreachable arcs).
  std::vector<bool> ResidualReachable(std::uint32_t s) const;

  std::uint32_t ArcTo(std::uint32_t arc) const { return arc_to_[arc]; }
  std::int32_t ArcResidual(std::uint32_t arc) const { return arc_cap_[arc]; }
  /// Flow currently on forward arc `arc` (= residual of its reverse).
  std::int32_t ArcFlow(std::uint32_t arc) const { return arc_cap_[arc ^ 1]; }

  static constexpr std::int32_t kNoLimit = 0x3fffffff;

 private:
  bool BuildLevels(std::uint32_t s, std::uint32_t t);
  // Iterative DFS for one augmenting path in the level graph; returns the
  // pushed amount (0 when the phase is exhausted). Iterative so that long
  // augmenting paths cannot overflow the call stack.
  std::int32_t FindAugmentingPath(std::uint32_t s, std::uint32_t t,
                                  std::int32_t limit);

  /// Seeds v's per-phase state (BFS level + arc iterator) for the current
  /// phase epoch.
  void Visit(std::uint32_t v, std::uint32_t level) {
    node_epoch_[v] = phase_epoch_;
    level_[v] = level;
    iter_[v] = first_[v];
  }

  /// v's BFS level in the current phase; kNone if the BFS never reached it.
  std::uint32_t LevelOf(std::uint32_t v) const {
    return node_epoch_[v] == phase_epoch_ ? level_[v] : kNone;
  }

  /// Records that `arc`'s capacity pair deviates from its initial values.
  void MarkDirty(std::uint32_t arc) {
    const std::uint32_t pair = arc >> 1;
    if (dirty_epoch_[pair] != reset_epoch_) {
      dirty_epoch_[pair] = reset_epoch_;
      dirty_pairs_.push_back(pair);
    }
  }

  // Linked adjacency: first_[node] -> arc index, next_[arc] -> next arc.
  std::vector<std::uint32_t> first_;
  std::vector<std::uint32_t> next_;
  std::vector<std::uint32_t> arc_to_;
  std::vector<std::int32_t> arc_cap_;
  std::vector<std::int32_t> arc_init_cap_;

  // Arc pairs whose capacities differ from arc_init_cap_ (for ResetFlow).
  std::vector<std::uint32_t> dirty_pairs_;
  std::vector<std::uint32_t> dirty_epoch_;  // one stamp per arc pair
  std::uint32_t reset_epoch_ = 1;

  // Dinic per-phase state, seeded lazily against phase_epoch_.
  std::vector<std::uint32_t> level_;
  std::vector<std::uint32_t> iter_;
  std::vector<std::uint32_t> node_epoch_;  // one stamp per node
  std::uint32_t phase_epoch_ = 0;
  std::vector<std::uint32_t> bfs_queue_;
  std::vector<std::uint32_t> path_;

  static constexpr std::uint32_t kNone = static_cast<std::uint32_t>(-1);
};

}  // namespace kvcc

#endif  // KVCC_FLOW_UNIT_FLOW_NETWORK_H_
