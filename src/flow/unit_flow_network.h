// Unit-capacity max-flow (Dinic / Even–Tarjan) with early termination.
//
// The k-VCC algorithm tests local vertex connectivity by max-flow on a
// vertex-split "directed flow graph" in which every arc has capacity 1 and
// every node has in-degree 1 or out-degree 1; on such networks Dinic runs in
// O(sqrt(n) * m) (Even & Tarjan 1975). Because the algorithm only needs to
// know whether the flow reaches k, MaxFlow takes a `limit` and stops as soon
// as the flow value reaches it, giving O(min(sqrt(n), k) * m).
#ifndef KVCC_FLOW_UNIT_FLOW_NETWORK_H_
#define KVCC_FLOW_UNIT_FLOW_NETWORK_H_

#include <cstdint>
#include <vector>

namespace kvcc {

/// Directed flow network with integer capacities and residual bookkeeping.
/// Arcs are stored in (forward, reverse) pairs: arc i's reverse is i ^ 1.
class UnitFlowNetwork {
 public:
  explicit UnitFlowNetwork(std::uint32_t num_nodes);

  /// Adds arc from->to with the given capacity (reverse arc capacity 0).
  /// Returns the forward arc index.
  std::uint32_t AddArc(std::uint32_t from, std::uint32_t to,
                       std::int32_t capacity = 1);

  std::uint32_t NumNodes() const { return static_cast<std::uint32_t>(first_.size()); }
  std::size_t NumArcs() const { return arc_to_.size(); }

  /// Max flow from s to t, stopping early once the value reaches `limit`.
  /// Returns the achieved flow value (== true max flow when < limit).
  std::int32_t MaxFlow(std::uint32_t s, std::uint32_t t,
                       std::int32_t limit = kNoLimit);

  /// Restores all capacities to their construction-time values so the
  /// network can be reused for another (s, t) query.
  void ResetFlow();

  /// Nodes reachable from s along positive-residual arcs. Valid after
  /// MaxFlow; defines the minimum cut (reachable -> unreachable arcs).
  std::vector<bool> ResidualReachable(std::uint32_t s) const;

  std::uint32_t ArcTo(std::uint32_t arc) const { return arc_to_[arc]; }
  std::int32_t ArcResidual(std::uint32_t arc) const { return arc_cap_[arc]; }
  /// Flow currently on forward arc `arc` (= residual of its reverse).
  std::int32_t ArcFlow(std::uint32_t arc) const { return arc_cap_[arc ^ 1]; }

  static constexpr std::int32_t kNoLimit = 0x3fffffff;

 private:
  bool BuildLevels(std::uint32_t s, std::uint32_t t);
  // Iterative DFS for one augmenting path in the level graph; returns the
  // pushed amount (0 when the phase is exhausted). Iterative so that long
  // augmenting paths cannot overflow the call stack.
  std::int32_t FindAugmentingPath(std::uint32_t s, std::uint32_t t,
                                  std::int32_t limit);

  // Linked adjacency: first_[node] -> arc index, next_[arc] -> next arc.
  std::vector<std::uint32_t> first_;
  std::vector<std::uint32_t> next_;
  std::vector<std::uint32_t> arc_to_;
  std::vector<std::int32_t> arc_cap_;
  std::vector<std::int32_t> arc_init_cap_;

  // Dinic state, reused across calls.
  std::vector<std::uint32_t> level_;
  std::vector<std::uint32_t> iter_;
  std::vector<std::uint32_t> bfs_queue_;
  std::vector<std::uint32_t> path_;

  static constexpr std::uint32_t kNone = static_cast<std::uint32_t>(-1);
};

}  // namespace kvcc

#endif  // KVCC_FLOW_UNIT_FLOW_NETWORK_H_
