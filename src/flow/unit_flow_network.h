// Unit-capacity max-flow (Dinic / Even–Tarjan) with early termination.
//
// The k-VCC algorithm tests local vertex connectivity by max-flow on a
// vertex-split "directed flow graph" in which every arc has capacity 1 and
// every node has in-degree 1 or out-degree 1; on such networks Dinic runs in
// O(sqrt(n) * m) (Even & Tarjan 1975). Because the algorithm only needs to
// know whether the flow reaches k, MaxFlow takes a `limit` and stops as soon
// as the flow value reaches it, giving O(min(sqrt(n), k) * m).
//
// The network is built for heavy reuse: the enumeration runs O(n * delta)
// flow probes against the same network, so per-probe state is restored in
// time proportional to what the probe touched, not to the network size.
//   * ResetFlow restores only the arcs dirtied by augmentation (a dirty-pair
//     list with epoch stamps), not the whole capacity array.
//   * Per-phase Dinic state (levels and arc iterators) is seeded lazily via
//     epoch stamps during the level BFS instead of O(n) assignments.
//   * Reinit() rebinds the object to a new node count while keeping every
//     internal buffer's capacity, so one instance serves a whole recursion.
//   * AdoptTopology() shares another instance's immutable arc arrays, so a
//     pool of networks probing one graph pays the O(m) build exactly once
//     ("incremental rebind"); only per-instance capacity/epoch state stays
//     private.
//
// Two flow-growth modes share the residual state and compose freely:
//   * MaxFlow — Dinic phases (level BFS + blocking DFS), globally efficient.
//   * MaxFlowLocal — plain DFS augmentation capped by an arc-inspection
//     budget; touches only the residual volume around the source, so a
//     probe whose answer is "a small cut near s" finishes without ever
//     scanning the whole network. On budget exhaustion the partial flow is
//     kept and the caller may continue with either mode.
#ifndef KVCC_FLOW_UNIT_FLOW_NETWORK_H_
#define KVCC_FLOW_UNIT_FLOW_NETWORK_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace kvcc {

/// Directed flow network with integer capacities and residual bookkeeping.
/// Arcs are stored in (forward, reverse) pairs: arc i's reverse is i ^ 1.
class UnitFlowNetwork {
 public:
  /// Outcome of a budget-capped MaxFlowLocal call.
  struct LocalFlowResult {
    /// Flow units pushed by this call (on top of any pre-existing flow).
    std::int32_t flow = 0;
    /// True when the search ran to completion: either `flow` hit the limit
    /// or no augmenting path exists (the total flow is a true max flow and
    /// the residual state supports cut extraction). False means the arc
    /// budget ran out first; the partial flow is retained.
    bool exact = false;
  };

  explicit UnitFlowNetwork(std::uint32_t num_nodes);

  /// Clears all arcs and resets the node count, reusing the allocated
  /// buffers. Equivalent to constructing a fresh network of `num_nodes`.
  /// Detaches from any adopted topology (the instance owns its own again).
  void Reinit(std::uint32_t num_nodes);

  /// Adds arc from->to with the given capacity (reverse arc capacity 0).
  /// Returns the forward arc index. Only valid on an instance that owns its
  /// topology (i.e., not after AdoptTopology without an intervening Reinit).
  std::uint32_t AddArc(std::uint32_t from, std::uint32_t to,
                       std::int32_t capacity = 1);

  /// Shares `owner`'s arc topology (adjacency structure) instead of
  /// rebuilding it arc by arc: O(1) in the steady state, O(new arcs) the
  /// first time this instance sees a larger topology. All flow state is
  /// reset as by ResetFlow().
  ///
  /// Contract: every topology adopted by one instance over its lifetime
  /// must assign the same initial capacity to the same arc index (true for
  /// any fixed AddArc capacity pattern, e.g. the unit [1, 0] pair pattern
  /// of the vertex-split networks). `owner`'s topology must outlive all
  /// queries on this instance and must not be mutated (Reinit/AddArc) while
  /// borrowed; re-adopt after the owner rebuilds. Concurrent AdoptTopology
  /// and queries on *distinct* borrower instances of one owner are safe —
  /// borrowers only read the owner's immutable arrays.
  void AdoptTopology(const UnitFlowNetwork& owner);

  std::uint32_t NumNodes() const {
    return static_cast<std::uint32_t>(topo_->first.size());
  }
  std::size_t NumArcs() const { return topo_->arc_to.size(); }

  /// Max flow from s to t, stopping early once the value reaches `limit`.
  /// Returns the achieved flow value (== true max flow when < limit).
  /// Composes with prior MaxFlowLocal growth: the value returned is the
  /// *additional* flow pushed on the current residual state.
  std::int32_t MaxFlow(std::uint32_t s, std::uint32_t t,
                       std::int32_t limit = kNoLimit);

  /// Grows the flow from s to t by greedy DFS augmentation (no level
  /// phases): each pass keeps its visit stamps and arc cursors across the
  /// augmentations it finds, so several short disjoint paths cost one
  /// exploration, and a pass that augments nothing is a complete residual
  /// reachability search proving the flow maximum. Inspects at most
  /// `arc_budget` arcs; stops as soon as the pushed amount reaches
  /// `limit`. Unlike MaxFlow, proving t unreachable touches only the
  /// residual-reachable volume around s — sublinear when a small cut sits
  /// near s — at the cost of weaker worst-case bounds; see LocalFlowResult
  /// for the exactness signal.
  LocalFlowResult MaxFlowLocal(std::uint32_t s, std::uint32_t t,
                               std::int32_t limit, std::uint64_t arc_budget);

  /// Restores all capacities to their construction-time values so the
  /// network can be reused for another (s, t) query. O(arcs dirtied since
  /// the previous reset), not O(total arcs).
  void ResetFlow();

  /// Nodes reachable from s along positive-residual arcs. Valid after
  /// MaxFlow; defines the minimum cut (reachable -> unreachable arcs).
  std::vector<bool> ResidualReachable(std::uint32_t s) const;

  std::uint32_t ArcTo(std::uint32_t arc) const { return topo_->arc_to[arc]; }
  std::int32_t ArcResidual(std::uint32_t arc) const { return arc_cap_[arc]; }
  /// Flow currently on forward arc `arc` (= residual of its reverse).
  std::int32_t ArcFlow(std::uint32_t arc) const { return arc_cap_[arc ^ 1]; }

  /// Monotone count of arc inspections performed by MaxFlow and
  /// MaxFlowLocal since construction — the per-probe work measure behind
  /// KvccStats::probe_edges_touched. Callers snapshot-and-diff.
  std::uint64_t work_arcs() const { return work_arcs_; }

  static constexpr std::int32_t kNoLimit = 0x3fffffff;

 private:
  // The immutable adjacency structure: linked arc lists plus the
  // construction-time capacities. Separated from the mutable flow state so
  // AdoptTopology can share one build across a pool of instances.
  struct Topology {
    // Linked adjacency: first[node] -> arc index, next[arc] -> next arc.
    std::vector<std::uint32_t> first;
    std::vector<std::uint32_t> next;
    std::vector<std::uint32_t> arc_to;
    std::vector<std::int32_t> init_cap;
  };

  bool BuildLevels(std::uint32_t s, std::uint32_t t);
  // Iterative DFS for one augmenting path in the level graph; returns the
  // pushed amount (0 when the phase is exhausted). Iterative so that long
  // augmenting paths cannot overflow the call stack.
  std::int32_t FindAugmentingPath(std::uint32_t s, std::uint32_t t,
                                  std::int32_t limit);

  /// Bumps the per-phase epoch, invalidating all Visit stamps.
  void NextPhase() {
    if (++phase_epoch_ == 0) {  // Epoch wrapped: invalidate all stamps.
      std::fill(node_epoch_.begin(), node_epoch_.end(), 0);
      phase_epoch_ = 1;
    }
  }

  /// Seeds v's per-phase state (BFS level + arc iterator) for the current
  /// phase epoch.
  void Visit(std::uint32_t v, std::uint32_t level) {
    node_epoch_[v] = phase_epoch_;
    level_[v] = level;
    iter_[v] = topo_->first[v];
  }

  /// v's BFS level in the current phase; kNone if the BFS never reached it.
  std::uint32_t LevelOf(std::uint32_t v) const {
    return node_epoch_[v] == phase_epoch_ ? level_[v] : kNone;
  }

  /// Records that `arc`'s capacity pair deviates from its initial values.
  void MarkDirty(std::uint32_t arc) {
    const std::uint32_t pair = arc >> 1;
    if (dirty_epoch_[pair] != reset_epoch_) {
      dirty_epoch_[pair] = reset_epoch_;
      dirty_pairs_.push_back(pair);
    }
  }

  Topology own_topo_;
  // The active topology: &own_topo_ (owner) or another instance's (after
  // AdoptTopology). Never null.
  const Topology* topo_ = &own_topo_;

  // Mutable per-instance flow state. arc_cap_ / arc_init_cap_ are sized
  // grow-only to the largest topology seen; arc_init_cap_ doubles as the
  // sync watermark for AdoptTopology (its size = arcs already initialized).
  std::vector<std::int32_t> arc_cap_;
  std::vector<std::int32_t> arc_init_cap_;

  // Arc pairs whose capacities differ from arc_init_cap_ (for ResetFlow).
  std::vector<std::uint32_t> dirty_pairs_;
  std::vector<std::uint32_t> dirty_epoch_;  // one stamp per arc pair
  std::uint32_t reset_epoch_ = 1;

  // Dinic per-phase state, seeded lazily against phase_epoch_.
  std::vector<std::uint32_t> level_;
  std::vector<std::uint32_t> iter_;
  std::vector<std::uint32_t> node_epoch_;  // one stamp per node
  std::uint32_t phase_epoch_ = 0;
  std::vector<std::uint32_t> bfs_queue_;
  std::vector<std::uint32_t> path_;

  std::uint64_t work_arcs_ = 0;

  static constexpr std::uint32_t kNone = static_cast<std::uint32_t>(-1);
};

}  // namespace kvcc

#endif  // KVCC_FLOW_UNIT_FLOW_NETWORK_H_
