#include "flow/stoer_wagner.h"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <utility>

namespace kvcc {
namespace {

// Contracted multigraph state: per-supernode weight maps plus the original
// vertices each supernode represents.
struct Contraction {
  std::vector<std::unordered_map<VertexId, std::uint64_t>> weight;
  std::vector<std::vector<VertexId>> members;
  std::vector<bool> alive;

  explicit Contraction(const Graph& g)
      : weight(g.NumVertices()),
        members(g.NumVertices()),
        alive(g.NumVertices(), true) {
    for (VertexId u = 0; u < g.NumVertices(); ++u) {
      members[u] = {u};
      for (VertexId v : g.Neighbors(u)) weight[u].emplace(v, 1);
    }
  }

  /// Merges supernode `t` into supernode `s`.
  void Merge(VertexId s, VertexId t) {
    alive[t] = false;
    weight[s].erase(t);
    weight[t].erase(s);
    // Pure commutative accumulation: every neighbor's weight is folded into
    // s exactly once, so any visit order yields the same merged map.
    // kvcc-lint: ordered-independent
    for (const auto& [w, value] : weight[t]) {
      weight[w].erase(t);
      weight[s][w] += value;
      weight[w][s] += value;
    }
    weight[t].clear();
    members[s].insert(members[s].end(), members[t].begin(),
                      members[t].end());
    members[t].clear();
    members[t].shrink_to_fit();
  }
};

}  // namespace

GlobalMinCut StoerWagnerMinCut(const Graph& g,
                               std::uint64_t early_stop_below) {
  GlobalMinCut best;
  const VertexId n = g.NumVertices();
  if (n < 2) return best;

  Contraction state(g);
  std::vector<VertexId> active;
  active.reserve(n);
  for (VertexId v = 0; v < n; ++v) active.push_back(v);

  std::vector<std::uint64_t> attachment(n, 0);
  std::vector<bool> in_order(n, false);

  while (active.size() >= 2) {
    // One maximum-adjacency phase over the current contracted graph.
    for (VertexId v : active) {
      attachment[v] = 0;
      in_order[v] = false;
    }
    using HeapEntry = std::pair<std::uint64_t, VertexId>;  // (weight, node)
    std::priority_queue<HeapEntry> heap;
    const VertexId start = active.front();
    heap.emplace(0, start);

    VertexId last = kInvalidVertex;
    VertexId second_last = kInvalidVertex;
    std::uint64_t last_weight = 0;
    std::size_t added = 0;

    while (added < active.size()) {
      VertexId u = kInvalidVertex;
      std::uint64_t wu = 0;
      // Lazy-deletion pop; a disconnected contracted graph is handled by
      // pulling an arbitrary not-yet-ordered node with attachment 0.
      while (!heap.empty()) {
        auto [w, cand] = heap.top();
        heap.pop();
        if (!in_order[cand] && w == attachment[cand]) {
          u = cand;
          wu = w;
          break;
        }
      }
      if (u == kInvalidVertex) {
        for (VertexId cand : active) {
          if (!in_order[cand]) {
            u = cand;
            wu = 0;
            break;
          }
        }
      }
      in_order[u] = true;
      ++added;
      second_last = last;
      last = u;
      last_weight = wu;
      // Accumulates attachment weights and pushes (weight, node) heap
      // entries. Order-independent: attachments are commutative sums, and
      // the lazy-deletion pop above accepts an entry only when its weight
      // matches the node's final attachment, with ties broken by the node
      // id in the pair comparison — never by insertion order.
      // kvcc-lint: ordered-independent
      for (const auto& [w, value] : state.weight[u]) {
        if (!in_order[w]) {
          attachment[w] += value;
          heap.emplace(attachment[w], w);
        }
      }
    }

    // Cut of the phase: members(last) vs the rest, weight = last_weight.
    if (last_weight < best.weight) {
      best.weight = last_weight;
      best.side = state.members[last];
      if (early_stop_below > 0 && best.weight < early_stop_below) {
        std::sort(best.side.begin(), best.side.end());
        return best;
      }
    }

    state.Merge(second_last, last);
    active.erase(std::find(active.begin(), active.end(), last));
  }

  std::sort(best.side.begin(), best.side.end());
  return best;
}

}  // namespace kvcc
