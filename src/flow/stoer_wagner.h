// Stoer–Wagner global minimum edge cut with optional early termination.
//
// Used by the k-ECC baseline: a k-ECC split only needs *some* edge cut with
// fewer than k edges, so the search can return the first cut-of-the-phase
// whose weight drops below the threshold instead of completing all n-1
// phases. The paper discusses this algorithm in Section 4 as a related
// (but vertex-cut-unsuitable) technique.
#ifndef KVCC_FLOW_STOER_WAGNER_H_
#define KVCC_FLOW_STOER_WAGNER_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/graph.h"

namespace kvcc {

struct GlobalMinCut {
  /// Weight (= number of edges in an unweighted graph) of the cut found.
  /// Infinite when the graph has fewer than 2 vertices.
  std::uint64_t weight = kInfiniteCut;
  /// One side of the cut, as vertex ids of the input graph. Never empty or
  /// the full vertex set when weight is finite.
  std::vector<VertexId> side;

  static constexpr std::uint64_t kInfiniteCut =
      std::numeric_limits<std::uint64_t>::max();
};

/// Computes a global minimum edge cut of g (which may be disconnected; a
/// disconnected graph has a cut of weight 0).
///
/// If `early_stop_below` > 0, the search returns the first phase cut with
/// weight < early_stop_below; the result is then a valid (not necessarily
/// minimum) cut below the threshold. With the default 0 the exact minimum
/// cut is returned. O(n * m log n) worst case.
GlobalMinCut StoerWagnerMinCut(const Graph& g,
                               std::uint64_t early_stop_below = 0);

}  // namespace kvcc

#endif  // KVCC_FLOW_STOER_WAGNER_H_
