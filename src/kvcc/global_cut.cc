#include "kvcc/global_cut.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

#include "graph/bfs.h"
#include "graph/connected_components.h"
#include "kvcc/flow_graph.h"
#include "kvcc/sparse_certificate.h"
#include "kvcc/sweep_context.h"

namespace kvcc {
namespace {

/// True iff removing `cut` disconnects g (or empties it). Uses the BFS
/// buffers in `scratch` so repeated calls do not allocate.
bool CutDisconnects(const Graph& g, const std::vector<VertexId>& cut,
                    GlobalCutScratch& scratch) {
  std::vector<bool>& removed = scratch.cut_removed;
  std::vector<bool>& seen = scratch.cut_seen;
  std::vector<VertexId>& queue = scratch.cut_queue;
  removed.assign(g.NumVertices(), false);
  for (VertexId v : cut) removed[v] = true;
  VertexId start = kInvalidVertex;
  VertexId alive = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (!removed[v]) {
      if (start == kInvalidVertex) start = v;
      ++alive;
    }
  }
  if (alive == 0) return false;  // Removing everything is not a cut.
  queue.clear();
  queue.push_back(start);
  seen.assign(g.NumVertices(), false);
  seen[start] = true;
  VertexId reached = 1;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    for (VertexId w : g.Neighbors(queue[head])) {
      if (!removed[w] && !seen[w]) {
        seen[w] = true;
        ++reached;
        queue.push_back(w);
      }
    }
  }
  return reached < alive;
}

/// BFS from the source into scratch.order_dist and returns the largest
/// distance. Throws std::invalid_argument if some vertex is unreachable —
/// a hard check in every build mode, because the old assert compiled out
/// of Release builds and let kUnreachable either index out of bounds
/// (distance ordering) or silently misread a 0-flow as local
/// k-connectivity (phase 1 on a disconnected input).
std::uint32_t CheckConnectedFromSource(const Graph& g, VertexId source,
                                       GlobalCutScratch& scratch) {
  const VertexId n = g.NumVertices();
  std::vector<std::uint32_t>& dist = scratch.order_dist;
  BfsDistances(g, source, dist);
  std::uint32_t max_dist = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (dist[v] == kUnreachable) {
      throw std::invalid_argument(
          "GlobalCut: input graph is not connected (vertex " +
          std::to_string(v) + " is unreachable from source " +
          std::to_string(source) + ")");
    }
    max_dist = std::max(max_dist, dist[v]);
  }
  return max_dist;
}

/// Fills scratch.order with the phase-1 processing order: non-ascending
/// BFS distance from the source (in scratch.order_dist), ties by ascending
/// id (deterministic). Counting sort over distances into reused buffers.
void DistanceDescendingOrder(const Graph& g, VertexId source,
                             std::uint32_t max_dist,
                             GlobalCutScratch& scratch) {
  const VertexId n = g.NumVertices();
  const std::vector<std::uint32_t>& dist = scratch.order_dist;

  // Bucket counts, then start offsets laid out from the farthest distance
  // down to 0; a stable ascending-id fill lands every vertex in place.
  std::vector<std::uint32_t>& start = scratch.order_bucket_start;
  start.assign(max_dist + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    if (v != source) ++start[dist[v]];
  }
  std::uint32_t base = 0;
  for (std::uint32_t d = max_dist;; --d) {
    const std::uint32_t count = start[d];
    start[d] = base;
    base += count;
    if (d == 0) break;
  }
  std::vector<VertexId>& order = scratch.order;
  order.resize(n - 1);
  for (VertexId v = 0; v < n; ++v) {
    if (v != source) order[start[dist[v]]++] = v;
  }
}

void CountPrunedVertex(SweepCause cause, KvccStats* stats) {
  switch (cause) {
    case SweepCause::kNeighborSweepSide:
      ++stats->phase1_pruned_ns1;
      break;
    case SweepCause::kNeighborSweepDeposit:
      ++stats->phase1_pruned_ns2;
      break;
    case SweepCause::kGroupSweep:
      ++stats->phase1_pruned_gs;
      break;
    case SweepCause::kTested:
      // Only the source carries kTested before the loop reaches a vertex,
      // and the source is excluded from the order; nothing to count.
      break;
  }
}

}  // namespace

GlobalCutResult GlobalCut(const Graph& g, std::uint32_t k,
                          const std::vector<SideVertexHint>& hints,
                          const KvccOptions& options, KvccStats* stats,
                          GlobalCutScratch* scratch) {
  GlobalCutScratch transient;
  if (scratch == nullptr) scratch = &transient;
  const VertexId n = g.NumVertices();
  assert(n > k);
  assert(hints.empty() || hints.size() == n);
  ++stats->global_cut_calls;

  GlobalCutResult result;

  // --- sparse certificate (Alg. 2/3 line 1) ---
  // Rebuilt into the scratch's reused storage: on the steady-state path
  // the certificate construction touches no allocator.
  SparseCertificate& sc = scratch->cert;
  const bool use_certificate = options.sparse_certificate;
  if (use_certificate) {
    BuildSparseCertificate(g, k, sc, scratch->cert_scratch);
    stats->certificate_edges_input += g.NumEdges();
    stats->certificate_edges_kept += sc.certificate.NumEdges();
    stats->side_groups_found += sc.groups.size();
  }
  const Graph& test_graph = use_certificate ? sc.certificate : g;
  const bool group_sweep = options.group_sweep && use_certificate;
  static const std::vector<std::vector<VertexId>> kNoGroups;
  static const std::vector<std::uint32_t> kNoGroupOf;
  const auto& groups = group_sweep ? sc.groups : kNoGroups;
  const auto& group_of = group_sweep ? sc.group_of : kNoGroupOf;

  // --- strong side-vertices (Alg. 3 line 3) ---
  SideVertexResult side;
  if (options.neighbor_sweep) {
    static const std::vector<SideVertexHint> kNoHints;
    const auto& effective_hints =
        options.maintain_side_vertices ? hints : kNoHints;
    side = ComputeStrongSideVertices(g, k, effective_hints,
                                     options.side_vertex_degree_cap);
    stats->strong_side_vertices_found += side.strong_count;
    stats->strong_side_checks_run += side.checks_run;
    stats->strong_side_verdicts_reused += side.reused;
    result.strong_side = side.strong;
    result.strong_side_valid = true;
  } else {
    side.strong.assign(n, false);
  }

  // --- source selection (Alg. 3 lines 4-7) ---
  VertexId source = kInvalidVertex;
  if (options.neighbor_sweep) {
    for (VertexId v = 0; v < n; ++v) {
      if (side.strong[v]) {
        source = v;
        break;
      }
    }
  }
  if (source == kInvalidVertex) source = test_graph.MinDegreeVertex();
  const bool source_is_strong =
      options.neighbor_sweep && side.strong[source];

  DirectedFlowGraph& oracle = scratch->oracle;
  oracle.Rebuild(test_graph);
  // Epoch rebind: O(1) reset of the sweep arrays, no reallocation.
  SweepContext& sweep = scratch->sweep;
  sweep.Bind(g, k, side.strong, groups, group_of, options.neighbor_sweep,
             group_sweep);
  sweep.Sweep(source, SweepCause::kTested);

  auto finish_with_cut = [&](std::vector<VertexId> cut) {
    if (use_certificate && options.verify_cuts &&
        !CutDisconnects(g, cut, *scratch)) {
      // By the certificate theorem this cannot happen; if it ever does,
      // fall back to an exact search on the full graph. The recursive call
      // rebinds the scratch's oracle/sweep/order state; none of it is used
      // here afterwards.
      ++stats->certificate_cut_fallbacks;
      KvccOptions fallback = options;
      fallback.sparse_certificate = false;
      return GlobalCut(g, k, hints, fallback, stats, scratch);
    }
    std::sort(cut.begin(), cut.end());
    result.cut = std::move(cut);
    return result;
  };

  // --- phase 1 (Alg. 3 lines 8-15): covers every cut avoiding the source ---
  // The connectivity precondition is enforced for every variant (one BFS,
  // dwarfed by the flow tests), not just when its distances are needed.
  const std::uint32_t max_dist = CheckConnectedFromSource(g, source, *scratch);
  if (options.distance_order) {
    DistanceDescendingOrder(g, source, max_dist, *scratch);
  } else {
    scratch->order.clear();
    scratch->order.reserve(n - 1);
    for (VertexId v = 0; v < n; ++v) {
      if (v != source) scratch->order.push_back(v);
    }
  }
  for (VertexId v : scratch->order) {
    if (sweep.IsSwept(v)) {
      CountPrunedVertex(sweep.CauseOf(v), stats);
      continue;
    }
    if (g.HasEdge(source, v)) {
      // Lemma 5: adjacent vertices are locally k-connected for free.
      ++stats->phase1_tested_trivial;
      sweep.Sweep(v, SweepCause::kTested);
      continue;
    }
    ++stats->phase1_tested_flow;
    ++stats->loc_cut_flow_calls;
    std::vector<VertexId> cut = oracle.LocCut(source, v, k);
    if (!cut.empty()) return finish_with_cut(std::move(cut));
    sweep.Sweep(v, SweepCause::kTested);
  }

  // --- phase 2 (Alg. 3 lines 16-21): covers cuts containing the source ---
  // A strong side-vertex source is in no minimum cut; skip entirely.
  if (!source_is_strong) {
    const auto nbrs = test_graph.Neighbors(source);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        const VertexId va = nbrs[i];
        const VertexId vb = nbrs[j];
        if (group_sweep && group_of[va] != kNoGroup &&
            group_of[va] == group_of[vb]) {
          // Group sweep rule 3: same side-group => locally k-connected.
          ++stats->phase2_pairs_skipped_group;
          continue;
        }
        if (g.HasEdge(va, vb)) {
          ++stats->phase2_pairs_skipped_adjacent;  // Lemma 5.
          continue;
        }
        if (options.phase2_common_neighbor_skip &&
            CommonNeighborsAtLeast(g, va, vb, k)) {
          ++stats->phase2_pairs_skipped_common;  // Lemma 13.
          continue;
        }
        ++stats->phase2_pairs_tested;
        ++stats->loc_cut_flow_calls;
        std::vector<VertexId> cut = oracle.LocCut(va, vb, k);
        if (!cut.empty()) return finish_with_cut(std::move(cut));
      }
    }
  }

  return result;  // Empty cut: g is k-vertex-connected.
}

}  // namespace kvcc
