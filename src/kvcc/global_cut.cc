#include "kvcc/global_cut.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>
#include <utility>

#include "kvcc/cut_oracle.h"
#include "kvcc/sparse_certificate.h"
#include "kvcc/sweep_context.h"

namespace kvcc {
namespace {

/// Rolls one probe's work trace into the run-wide stats counters.
void AccumulateProbe(const ProbeCounters& trace, KvccStats* stats) {
  stats->probes_localvc += trace.probes_localvc;
  stats->probes_localvc_fallback += trace.probes_localvc_fallback;
  stats->probe_edges_touched += trace.probe_edges_touched;
}

/// Grow-only sizing of the epoch-stamped visit marks. New entries carry
/// stamp 0, which never equals a live epoch. Warm calls (marks already at
/// high-water) touch no allocator.
// kvcc-lint: no-alloc
void EnsureMarks(GlobalCutScratch& scratch, VertexId n) {
  if (scratch.removed_mark.size() < n) {
    scratch.removed_mark.resize(n, 0);  // kvcc-lint: reserved
    scratch.seen_mark.resize(n, 0);     // kvcc-lint: reserved
  }
}

/// BFS from the source into scratch.order_dist and returns the largest
/// distance. Visited state is epoch-stamped (no O(n) re-assignment per
/// call). Throws std::invalid_argument if some vertex is unreachable —
/// a hard check in every build mode, because the old assert compiled out
/// of Release builds and let kUnreachable either index out of bounds
/// (distance ordering) or silently misread a 0-flow as local
/// k-connectivity (phase 1 on a disconnected input).
// kvcc-lint: no-alloc — warm path; the unreachable-vertex throw below is
// the (allocating) error exit of a dead input, never the steady state.
std::uint32_t CheckConnectedFromSource(const Graph& g, VertexId source,
                                       GlobalCutScratch& scratch) {
  const VertexId n = g.NumVertices();
  EnsureMarks(scratch, n);
  // Grow-only scratch buffers: warm calls stay at high-water capacity.
  if (scratch.order_dist.size() < n) scratch.order_dist.resize(n);  // kvcc-lint: reserved
  const std::uint64_t epoch = ++scratch.mark_epoch;
  std::vector<std::uint32_t>& dist = scratch.order_dist;
  std::vector<std::uint64_t>& seen = scratch.seen_mark;
  std::vector<VertexId>& queue = scratch.mark_queue;
  queue.clear();
  queue.push_back(source);  // kvcc-lint: reserved
  seen[source] = epoch;
  dist[source] = 0;
  VertexId reached = 1;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const VertexId u = queue[head];
    const std::uint32_t next_dist = dist[u] + 1;
    for (VertexId w : g.Neighbors(u)) {
      if (seen[w] != epoch) {
        seen[w] = epoch;
        dist[w] = next_dist;
        ++reached;
        queue.push_back(w);  // kvcc-lint: reserved
      }
    }
  }
  if (reached < n) {
    VertexId unreachable = kInvalidVertex;
    for (VertexId v = 0; v < n; ++v) {
      if (seen[v] != epoch) {
        unreachable = v;
        break;
      }
    }
    throw std::invalid_argument(
        "GlobalCut: input graph is not connected (vertex " +
        std::to_string(unreachable) + " is unreachable from source " +
        std::to_string(source) + ")");
  }
  return dist[queue.back()];  // BFS order: the last vertex is farthest.
}

/// Fills scratch.order with the phase-1 processing order: non-ascending
/// BFS distance from the source (in scratch.order_dist), ties by ascending
/// id (deterministic). Counting sort over distances into reused buffers.
void DistanceDescendingOrder(const Graph& g, VertexId source,
                             std::uint32_t max_dist,
                             GlobalCutScratch& scratch) {
  const VertexId n = g.NumVertices();
  const std::vector<std::uint32_t>& dist = scratch.order_dist;

  // Bucket counts, then start offsets laid out from the farthest distance
  // down to 0; a stable ascending-id fill lands every vertex in place.
  std::vector<std::uint32_t>& start = scratch.order_bucket_start;
  start.assign(max_dist + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    if (v != source) ++start[dist[v]];
  }
  std::uint32_t base = 0;
  for (std::uint32_t d = max_dist;; --d) {
    const std::uint32_t count = start[d];
    start[d] = base;
    base += count;
    if (d == 0) break;
  }
  std::vector<VertexId>& order = scratch.order;
  order.resize(n - 1);
  for (VertexId v = 0; v < n; ++v) {
    if (v != source) order[start[dist[v]]++] = v;
  }
}

void CountPrunedVertex(SweepCause cause, KvccStats* stats) {
  switch (cause) {
    case SweepCause::kNeighborSweepSide:
      ++stats->phase1_pruned_ns1;
      break;
    case SweepCause::kNeighborSweepDeposit:
      ++stats->phase1_pruned_ns2;
      break;
    case SweepCause::kGroupSweep:
      ++stats->phase1_pruned_gs;
      break;
    case SweepCause::kTested:
      // Only the source carries kTested before the loop reaches a vertex,
      // and the source is excluded from the order; nothing to count.
      break;
  }
}

// Adaptive wavefront batch bounds: start small (distance ordering tends to
// surface cuts within the first few probes, and every probe past a
// committed cut is waste), grow while the observed prune rate keeps
// speculative waste low, shrink when sweeps are pruning aggressively.
// Driven purely by committed (deterministic) outcomes, so the batch-size
// trajectory — and with it every probe-waste counter — is a pure function
// of (input, options), independent of thread count or timing.
constexpr std::uint32_t kBatchInit = 4;
constexpr std::uint32_t kBatchMin = 4;
constexpr std::uint32_t kBatchMax = 256;

}  // namespace

namespace detail {

// Precondition: `cut` entries are distinct vertices of g (LocCut extracts
// them from a deduplicated residual scan). Warm zero-allocation asserted by
// memory_tracker_test.WarmCutDisconnectsAllocatesNothing.
// kvcc-lint: no-alloc
bool CutDisconnects(const Graph& g, const std::vector<VertexId>& cut,
                    GlobalCutScratch& scratch) {
  const VertexId n = g.NumVertices();
  EnsureMarks(scratch, n);
  const std::uint64_t epoch = ++scratch.mark_epoch;
  std::vector<std::uint64_t>& removed = scratch.removed_mark;
  std::vector<std::uint64_t>& seen = scratch.seen_mark;
  std::vector<VertexId>& queue = scratch.mark_queue;
  for (VertexId v : cut) removed[v] = epoch;
  const VertexId alive = n - static_cast<VertexId>(cut.size());
  if (alive == 0) return false;  // Removing everything is not a cut.
  VertexId start = 0;
  while (removed[start] == epoch) ++start;
  queue.clear();
  queue.push_back(start);  // kvcc-lint: reserved
  seen[start] = epoch;
  VertexId reached = 1;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    for (VertexId w : g.Neighbors(queue[head])) {
      if (removed[w] != epoch && seen[w] != epoch) {
        seen[w] = epoch;
        ++reached;
        queue.push_back(w);  // kvcc-lint: reserved
      }
    }
  }
  return reached < alive;
}

}  // namespace detail

GlobalCutResult GlobalCut(const Graph& g, std::uint32_t k,
                          const std::vector<SideVertexHint>& hints,
                          const KvccOptions& options, KvccStats* stats,
                          GlobalCutScratch* scratch,
                          exec::TaskScheduler* scheduler,
                          const CancelToken* cancel) {
  GlobalCutScratch transient;
  if (scratch == nullptr) scratch = &transient;
  const VertexId n = g.NumVertices();
  assert(n > k);
  assert(hints.empty() || hints.size() == n);

  // Cooperative cancellation: polled at entry, before every serial flow
  // probe, and at every wavefront-batch formation — the boundaries that
  // bound time-to-unwind by one probe / one batch. The thrown JobCancelled
  // carries no stats; the enumeration driver attaches the job's partial
  // counters when it surfaces the outcome.
  auto check_cancelled = [cancel, stats]() {
    if (cancel != nullptr && cancel->Cancelled()) {
      ++stats->cuts_cancelled;
      throw JobCancelled("GLOBAL-CUT cancelled mid-search");
    }
  };
  // Count the invocation before the entry check: a cancelled-at-entry
  // search is still a (cancelled) call, keeping cuts_cancelled <=
  // global_cut_calls coherent in partial stats.
  ++stats->global_cut_calls;
  check_cancelled();
  ++scratch->probe_epoch;  // Pool oracles from older invocations are stale.

  GlobalCutResult result;

  // --- sparse certificate (Alg. 2/3 line 1) ---
  // Rebuilt into the scratch's reused storage: on the steady-state path
  // the certificate construction touches no allocator.
  SparseCertificate& sc = scratch->cert;
  const bool use_certificate = options.sparse_certificate;
  if (use_certificate) {
    BuildSparseCertificate(g, k, sc, scratch->cert_scratch);
    stats->certificate_edges_input += g.NumEdges();
    stats->certificate_edges_kept += sc.certificate.NumEdges();
    stats->side_groups_found += sc.groups.size();
  }
  const Graph& test_graph = use_certificate ? sc.certificate : g;
  const bool group_sweep = options.group_sweep && use_certificate;
  static const std::vector<std::vector<VertexId>> kNoGroups;
  static const std::vector<std::uint32_t> kNoGroupOf;
  const auto& groups = group_sweep ? sc.groups : kNoGroups;
  const auto& group_of = group_sweep ? sc.group_of : kNoGroupOf;

  // --- strong side-vertices (Alg. 3 line 3) ---
  // Verdicts land in the scratch's reused buffer (no per-call O(n) copy);
  // they stay readable there until the scratch's next GlobalCut call.
  if (options.neighbor_sweep) {
    static const std::vector<SideVertexHint> kNoHints;
    const auto& effective_hints =
        options.maintain_side_vertices ? hints : kNoHints;
    const SideVertexCounts side_counts = ComputeStrongSideVerticesInto(
        g, k, effective_hints, options.side_vertex_degree_cap, scratch->side);
    stats->strong_side_vertices_found += side_counts.strong_count;
    stats->strong_side_checks_run += side_counts.checks_run;
    stats->strong_side_verdicts_reused += side_counts.reused;
    result.strong_side_valid = true;
  } else {
    scratch->side.strong.assign(n, false);
  }
  const std::vector<bool>& strong = scratch->side.strong;

  // --- source selection (Alg. 3 lines 4-7) ---
  VertexId source = kInvalidVertex;
  if (options.neighbor_sweep) {
    for (VertexId v = 0; v < n; ++v) {
      if (strong[v]) {
        source = v;
        break;
      }
    }
  }
  if (source == kInvalidVertex) source = test_graph.MinDegreeVertex();
  const bool source_is_strong = options.neighbor_sweep && strong[source];

  // Wavefront engagement, decided up front (see the machinery comment
  // below). The vertex floor keeps small subproblems — which the
  // subproblem level already parallelizes — on the exact serial loop,
  // where speculation cannot pay for itself.
  const bool wavefronts = scheduler != nullptr &&
                          scheduler->num_workers() > 1 &&
                          options.intra_cut_parallelism &&
                          (options.intra_cut_min_vertices == 0 ||
                           n >= options.intra_cut_min_vertices);
  // Probe engine (KvccOptions::cut_oracle): created lazily, replaced only
  // when the option changes between jobs sharing this scratch. Bound in
  // both modes — serial probes run on it directly, and in wavefront mode
  // it is the topology owner every pool slot incrementally rebinds to
  // (one O(m) build per invocation instead of one per slot).
  if (!scratch->oracle || scratch->oracle->kind() != options.cut_oracle) {
    scratch->oracle = MakeCutOracle(options.cut_oracle);
  }
  CutOracle& oracle = *scratch->oracle;
  oracle.BindGraph(test_graph);
  // Epoch rebind: O(1) reset of the sweep arrays, no reallocation.
  SweepContext& sweep = scratch->sweep;
  sweep.Bind(g, k, strong, groups, group_of, options.neighbor_sweep,
             group_sweep);
  sweep.Sweep(source, SweepCause::kTested);

  auto finish_with_cut = [&](std::vector<VertexId> cut) {
    if (use_certificate && options.verify_cuts &&
        !detail::CutDisconnects(g, cut, *scratch)) {
      // By the certificate theorem this cannot happen; if it ever does,
      // fall back to an exact search on the full graph. The recursive call
      // rebinds the scratch's oracle/sweep/order/wavefront state; none of
      // it is used here afterwards.
      ++stats->certificate_cut_fallbacks;
      KvccOptions fallback = options;
      fallback.sparse_certificate = false;
      return GlobalCut(g, k, hints, fallback, stats, scratch, scheduler,
                       cancel);
    }
    std::sort(cut.begin(), cut.end());
    result.cut = std::move(cut);
    return result;
  };

  // --- phase-1 processing order ---
  // The connectivity precondition is enforced for every variant (one BFS,
  // dwarfed by the flow tests), not just when its distances are needed.
  const std::uint32_t max_dist = CheckConnectedFromSource(g, source, *scratch);
  if (options.distance_order) {
    DistanceDescendingOrder(g, source, max_dist, *scratch);
  } else {
    scratch->order.clear();
    scratch->order.reserve(n - 1);
    for (VertexId v = 0; v < n; ++v) {
      if (v != source) scratch->order.push_back(v);
    }
  }

  // --- intra-cut wavefront machinery ---
  // Engagement depends only on (options, scheduler shape), never on runtime
  // load: whether a wavefront's probes actually execute on several workers
  // is the scheduler's starvation-gated call, but the wavefront *structure*
  // — which probes launch, in which batches — is a pure function of the
  // input, so the probe-waste counters (and everything else) reproduce
  // exactly across runs and thread counts.
  std::uint32_t batch =
      options.probe_batch_size != 0 ? options.probe_batch_size : kBatchInit;
  const bool adaptive_batch = options.probe_batch_size == 0;
  auto adapt = [&](std::uint32_t launched, std::uint32_t wasted) {
    if (!adaptive_batch || launched == 0) return;
    if (wasted * 4 >= launched) {
      batch = std::max(kBatchMin, batch / 2);  // > 25% waste: back off.
    } else if (wasted * 8 <= launched) {
      batch = std::min(kBatchMax, batch * 2);  // <= 12.5% waste: open up.
    }
  };

  // Runs the current wavefront's probe list concurrently and returns how
  // many *flow* probes actually ran (deferred-common entries settled by
  // the Lemma-13 test never touch an oracle). Each executor slot owns one
  // pool oracle, incrementally rebound (CutOracle::BindShared — adopt the
  // owner's arc arrays, restamp capacities by epoch) to this invocation's
  // topology owner the first time the slot participates; a probe writes
  // only its own wave_cuts / wave_common_skip / wave_traces entries, and
  // the commit loop below reads the results only after ParallelFor
  // returned, so probes race with nothing. The sweep state is
  // snapshot-immutable during the wavefront: formation read it serially,
  // and commits mutate it serially afterwards.
  auto run_probes = [&]() -> std::uint32_t {
    const auto& args = scratch->wave_probe_args;
    const std::uint32_t launched = static_cast<std::uint32_t>(args.size());
    if (launched == 0) return 0;
    const unsigned slots = scheduler->num_workers() + 1;
    if (scratch->probe_pool.size() < slots) scratch->probe_pool.resize(slots);
    if (scratch->wave_cuts.size() < launched) scratch->wave_cuts.resize(launched);
    if (scratch->wave_common_skip.size() < launched) {
      scratch->wave_common_skip.resize(launched);
    }
    if (scratch->wave_traces.size() < launched) {
      scratch->wave_traces.resize(launched);
    }
    ++stats->probe_wavefronts;
    auto& pool = scratch->probe_pool;
    auto& cuts = scratch->wave_cuts;
    auto& common_skip = scratch->wave_common_skip;
    auto& traces = scratch->wave_traces;
    const auto& deferred = scratch->wave_probe_common;
    const std::uint64_t epoch = scratch->probe_epoch;
    const CutOracle& owner = oracle;
    const CutOracleKind oracle_kind = options.cut_oracle;
    const Graph& host = g;
    // Helper stubs carry the owning job's latency class, so an
    // interactive job's wavefront competes for idle workers at its own
    // priority instead of degrading to kNormal on its hardest subproblem.
    scheduler->ParallelFor(
        launched,
        [&pool, &cuts, &common_skip, &traces, &args, &deferred, &owner,
         &host, epoch, oracle_kind, k](std::size_t i, unsigned slot) {
          if (!pool[slot]) pool[slot] = std::make_unique<ProbeOracle>();
          ProbeOracle& po = *pool[slot];
          if (!po.oracle || po.oracle->kind() != oracle_kind) {
            po.oracle = MakeCutOracle(oracle_kind);
            po.bound_epoch = 0;
          }
          if (po.bound_epoch != epoch) {
            po.oracle->BindShared(owner);
            po.bound_epoch = epoch;
          }
          traces[i] = ProbeCounters{};
          // Lemma-13 pre-test, hoisted out of the serial formation loop: a
          // pure function of the working graph, so evaluating it here is
          // replay-equivalent while parallelizing the Theta(d) merges that
          // dominate pair formation on hub-heavy sources.
          if (deferred[i] != 0 &&
              CommonNeighborsAtLeast(host, args[i].first, args[i].second,
                                     k)) {
            common_skip[i] = 1;
            cuts[i].clear();
          } else {
            common_skip[i] = 0;
            cuts[i] =
                po.oracle->Probe(args[i].first, args[i].second, k, traces[i]);
          }
        },
        ToTaskPriority(options.priority));
    // Serial roll-up over every launched probe — speculative ones
    // included, their flow work is real — keeps the oracle counters
    // deterministic for a fixed (input, options, thread count).
    std::uint32_t flow_probes = 0;
    for (std::uint32_t i = 0; i < launched; ++i) {
      if (common_skip[i] == 0) ++flow_probes;
      AccumulateProbe(traces[i], stats);
    }
    stats->probes_launched += flow_probes;
    return flow_probes;
  };

  // --- phase 1 (Alg. 3 lines 8-15): covers every cut avoiding the source ---
  if (!wavefronts) {
    for (VertexId v : scratch->order) {
      if (sweep.IsSwept(v)) {
        CountPrunedVertex(sweep.CauseOf(v), stats);
        continue;
      }
      if (g.HasEdge(source, v)) {
        // Lemma 5: adjacent vertices are locally k-connected for free.
        ++stats->phase1_tested_trivial;
        sweep.Sweep(v, SweepCause::kTested);
        continue;
      }
      check_cancelled();
      ++stats->phase1_tested_flow;
      ++stats->loc_cut_flow_calls;
      ProbeCounters trace;
      std::vector<VertexId> cut = oracle.Probe(source, v, k, trace);
      AccumulateProbe(trace, stats);
      if (!cut.empty()) return finish_with_cut(std::move(cut));
      sweep.Sweep(v, SweepCause::kTested);
    }
  } else {
    const std::vector<VertexId>& order = scratch->order;
    std::size_t pos = 0;
    while (pos < order.size()) {
      check_cancelled();
      // Formation (serial): classify vertices from the current position
      // until `batch` probes are collected. The sweep snapshot is the live
      // state — no commit of this wavefront has happened yet, so anything
      // unswept here is exactly what the serial loop could still reach.
      std::vector<ProbeCandidate>& wave = scratch->wave;
      auto& args = scratch->wave_probe_args;
      wave.clear();
      args.clear();
      scratch->wave_probe_common.clear();
      std::size_t end = pos;
      while (end < order.size() && args.size() < batch) {
        const VertexId v = order[end];
        ProbeCandidate cand;
        cand.a = v;
        if (sweep.IsSwept(v)) {
          cand.kind = ProbeCandidate::Kind::kSwept;
        } else if (g.HasEdge(source, v)) {
          cand.kind = ProbeCandidate::Kind::kAdjacent;
        } else {
          cand.kind = ProbeCandidate::Kind::kProbe;
          cand.probe_index = static_cast<std::uint32_t>(args.size());
          args.emplace_back(source, v);
          scratch->wave_probe_common.push_back(0);
        }
        wave.push_back(cand);
        ++end;
      }
      const std::uint32_t launched = static_cast<std::uint32_t>(args.size());
      run_probes();

      // Commit (serial replay): walk the slice in order, re-deriving every
      // serial decision against the *live* sweep state. A probe whose
      // vertex got swept by an earlier commit in this very wavefront is
      // discarded (the serial loop never ran it) and counted as waste.
      std::uint32_t used = 0;
      std::uint32_t wasted_swept = 0;
      for (const ProbeCandidate& cand : wave) {
        const VertexId v = cand.a;
        if (sweep.IsSwept(v)) {
          CountPrunedVertex(sweep.CauseOf(v), stats);
          if (cand.kind == ProbeCandidate::Kind::kProbe) ++wasted_swept;
          continue;
        }
        if (cand.kind == ProbeCandidate::Kind::kAdjacent) {
          ++stats->phase1_tested_trivial;
          sweep.Sweep(v, SweepCause::kTested);
          continue;
        }
        // Unswept and non-adjacent: formation necessarily probed it
        // (sweeps only grow between formation and commit).
        assert(cand.kind == ProbeCandidate::Kind::kProbe);
        ++stats->phase1_tested_flow;
        ++stats->loc_cut_flow_calls;
        ++used;
        std::vector<VertexId>& cut = scratch->wave_cuts[cand.probe_index];
        if (!cut.empty()) {
          // Earliest-in-order cut wins; everything the serial loop would
          // not have reached is pure waste.
          stats->probes_wasted_swept += wasted_swept;
          stats->probes_wasted_after_cut += launched - used - wasted_swept;
          return finish_with_cut(std::move(cut));
        }
        sweep.Sweep(v, SweepCause::kTested);
      }
      stats->probes_wasted_swept += wasted_swept;
      adapt(launched, wasted_swept);
      pos = end;
    }
  }

  // --- phase 2 (Alg. 3 lines 16-21): covers cuts containing the source ---
  // A strong side-vertex source is in no minimum cut; skip entirely.
  if (!source_is_strong) {
    const auto nbrs = test_graph.Neighbors(source);
    const std::size_t deg = nbrs.size();
    // Restart the adaptive ramp: a batch grown across a cut-free phase 1
    // would otherwise turn an early phase-2 cut into a full-batch write-off.
    if (adaptive_batch) batch = kBatchInit;
    if (!wavefronts) {
      for (std::size_t i = 0; i < deg; ++i) {
        for (std::size_t j = i + 1; j < deg; ++j) {
          const VertexId va = nbrs[i];
          const VertexId vb = nbrs[j];
          if (group_sweep && group_of[va] != kNoGroup &&
              group_of[va] == group_of[vb]) {
            // Group sweep rule 3: same side-group => locally k-connected.
            ++stats->phase2_pairs_skipped_group;
            continue;
          }
          if (g.HasEdge(va, vb)) {
            ++stats->phase2_pairs_skipped_adjacent;  // Lemma 5.
            continue;
          }
          if (options.phase2_common_neighbor_skip &&
              CommonNeighborsAtLeast(g, va, vb, k)) {
            ++stats->phase2_pairs_skipped_common;  // Lemma 13.
            continue;
          }
          check_cancelled();
          ++stats->phase2_pairs_tested;
          ++stats->loc_cut_flow_calls;
          ProbeCounters trace;
          std::vector<VertexId> cut = oracle.Probe(va, vb, k, trace);
          AccumulateProbe(trace, stats);
          if (!cut.empty()) return finish_with_cut(std::move(cut));
        }
      }
    } else {
      // Pair wavefronts. The group and adjacency skip predicates are pure
      // functions of the graphs (no sweep state), so formation classifies
      // exactly as the serial loop would. The common-neighbor test (Lemma
      // 13) — also pure, but Theta(d) per pair and the dominant formation
      // cost on hub-heavy sources — is *deferred into the wavefront*: the
      // pair is launched as kProbeDeferred and the parallel body either
      // settles it via the common test (wave_common_skip) or runs the
      // flow probe. The commit replay keeps the skip counters honest —
      // pairs past a committed cut are never counted.
      std::size_t pi = 0;
      std::size_t pj = 1;
      while (pi + 1 < deg) {
        check_cancelled();
        std::vector<ProbeCandidate>& wave = scratch->wave;
        auto& args = scratch->wave_probe_args;
        wave.clear();
        args.clear();
        scratch->wave_probe_common.clear();
        while (pi + 1 < deg && args.size() < batch) {
          const VertexId va = nbrs[pi];
          const VertexId vb = nbrs[pj];
          ProbeCandidate cand;
          cand.a = va;
          cand.b = vb;
          if (group_sweep && group_of[va] != kNoGroup &&
              group_of[va] == group_of[vb]) {
            cand.kind = ProbeCandidate::Kind::kPairGroupSkip;
          } else if (g.HasEdge(va, vb)) {
            cand.kind = ProbeCandidate::Kind::kPairAdjacent;
          } else {
            cand.kind = options.phase2_common_neighbor_skip
                            ? ProbeCandidate::Kind::kProbeDeferred
                            : ProbeCandidate::Kind::kProbe;
            cand.probe_index = static_cast<std::uint32_t>(args.size());
            args.emplace_back(va, vb);
            scratch->wave_probe_common.push_back(
                options.phase2_common_neighbor_skip ? 1 : 0);
          }
          wave.push_back(cand);
          ++pj;
          if (pj >= deg) {
            ++pi;
            pj = pi + 1;
          }
        }
        const std::uint32_t launched = static_cast<std::uint32_t>(args.size());
        const std::uint32_t flow_launched = run_probes();

        std::uint32_t used = 0;
        for (const ProbeCandidate& cand : wave) {
          switch (cand.kind) {
            case ProbeCandidate::Kind::kPairGroupSkip:
              ++stats->phase2_pairs_skipped_group;
              break;
            case ProbeCandidate::Kind::kPairAdjacent:
              ++stats->phase2_pairs_skipped_adjacent;
              break;
            case ProbeCandidate::Kind::kProbeDeferred:
              if (scratch->wave_common_skip[cand.probe_index] != 0) {
                // The wavefront's Lemma-13 test settled the pair — same
                // verdict, same counter as the serial loop's inline test.
                ++stats->phase2_pairs_skipped_common;
                break;
              }
              [[fallthrough]];
            case ProbeCandidate::Kind::kProbe: {
              ++stats->phase2_pairs_tested;
              ++stats->loc_cut_flow_calls;
              ++used;
              std::vector<VertexId>& cut =
                  scratch->wave_cuts[cand.probe_index];
              if (!cut.empty()) {
                stats->probes_wasted_after_cut += flow_launched - used;
                return finish_with_cut(std::move(cut));
              }
              break;
            }
            case ProbeCandidate::Kind::kSwept:
            case ProbeCandidate::Kind::kAdjacent:
              break;  // Phase-1 kinds; unreachable here.
          }
        }
        adapt(launched, 0);
      }
    }
  }

  return result;  // Empty cut: g is k-vertex-connected.
}

}  // namespace kvcc
