#include "kvcc/engine.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace kvcc {

KvccEngine::KvccEngine(unsigned num_threads)
    : scratch_(exec::ResolveThreadCount(num_threads)),
      scheduler_(exec::ResolveThreadCount(num_threads)) {
  scheduler_.Start();
}

KvccEngine::~KvccEngine() { scheduler_.Stop(); }

KvccEngine::JobId KvccEngine::Submit(const Graph& g, std::uint32_t k,
                                     const KvccOptions& options) {
  if (k == 0) {
    throw std::invalid_argument("KvccEngine::Submit: k must be at least 1");
  }
  auto state = std::make_unique<JobState>();
  state->graph = &g;
  state->k = k;
  state->options = options;
  state->maintain = options.maintain_side_vertices && options.neighbor_sweep;
  state->pending.store(1, std::memory_order_relaxed);  // The root task.
  JobState* job = state.get();
  JobId id;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    id = next_job_id_++;
    jobs_.emplace(id, std::move(state));
  }
  // Root tasks seed round-robin across the worker deques even when Submit
  // is called from inside a worker (e.g. a job spawned from a running
  // task): landing a new job behind the submitter's whole LIFO subtree
  // would let one huge job starve every small one.
  scheduler_.SubmitShared([this, job](unsigned worker_id) {
    RunTask(job, internal::WorkItem{}, /*is_root=*/true, worker_id);
  });
  return id;
}

void KvccEngine::RunTask(JobState* job, internal::WorkItem&& item,
                         bool is_root, unsigned worker_id) {
  // Task-local accumulators: one lock acquisition per task (below), not one
  // per found component or counter bump.
  std::vector<std::vector<VertexId>> found;
  KvccStats stats;
  std::exception_ptr error;
  try {
    internal::ProcessItem(
        std::move(item), is_root ? job->graph : nullptr, job->k, job->options,
        job->maintain, scratch_[worker_id], stats, &scheduler_,
        [&](std::vector<VertexId> ids) { found.push_back(std::move(ids)); },
        [&](internal::WorkItem&& child) {
          // Count the child before it can possibly run and finish, so
          // `pending` can never dip to zero while work remains.
          job->pending.fetch_add(1, std::memory_order_relaxed);
          scheduler_.Submit(
              [this, job, moved = std::move(child)](unsigned w) mutable {
                RunTask(job, std::move(moved), /*is_root=*/false, w);
              });
        });
  } catch (...) {
    // A failing subproblem poisons only its own job: record the first
    // exception for Wait() to rethrow; sibling tasks (already spawned
    // children included) still run to completion so `pending` drains.
    error = std::current_exception();
  }

  {
    std::lock_guard<std::mutex> lock(job->mutex);
    for (std::vector<VertexId>& component : found) {
      job->components.push_back(std::move(component));
    }
    job->stats.Add(stats);
    if (error && !job->error) job->error = error;
  }
  if (job->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last task of the tree: canonicalize and publish. No other thread
    // touches the accumulators anymore, but the mutex still orders the
    // publication against a concurrent Wait().
    std::lock_guard<std::mutex> lock(job->mutex);
    std::sort(job->components.begin(), job->components.end());
    job->done = true;
    job->done_cv.notify_all();
  }
}

KvccResult KvccEngine::Wait(JobId id) {
  // Take ownership of the ticket up front: once this Wait returns (or
  // throws), the job's bookkeeping is gone and the engine's table holds
  // only jobs still worth remembering. Destruction is safe after `done`
  // — the final task's notify happens under the job mutex, so reacquiring
  // it in the wait proves no task touches the state anymore.
  std::unique_ptr<JobState> job;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      throw std::out_of_range(
          "KvccEngine::Wait: unknown or already-consumed job id");
    }
    job = std::move(it->second);
    jobs_.erase(it);
  }
  KvccResult result;
  {
    std::unique_lock<std::mutex> lock(job->mutex);
    job->done_cv.wait(lock, [&] { return job->done; });
    if (job->error) {
      std::rethrow_exception(job->error);
    }
    result.components = std::move(job->components);
    result.stats = job->stats;
  }
  return result;
}

std::vector<KvccResult> KvccEngine::RunBatch(
    const std::vector<EngineJobSpec>& jobs) {
  std::vector<JobId> ids;
  ids.reserve(jobs.size());
  for (const EngineJobSpec& spec : jobs) {
    if (spec.graph == nullptr) {
      throw std::invalid_argument("KvccEngine::RunBatch: null graph");
    }
    ids.push_back(Submit(*spec.graph, spec.k, spec.options));
  }
  std::vector<KvccResult> results;
  results.reserve(ids.size());
  for (JobId id : ids) results.push_back(Wait(id));
  return results;
}

}  // namespace kvcc
