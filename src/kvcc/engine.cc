#include "kvcc/engine.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace kvcc {

namespace {

/// Producer side of a SubmitStream channel: forwards deliveries into the
/// shared StreamChannel, dropping them once the consumer abandoned it.
class ChannelSink : public ComponentSink {
 public:
  explicit ChannelSink(std::shared_ptr<internal::StreamChannel> channel)
      : channel_(std::move(channel)) {}

  void OnComponent(StreamedComponent component) override {
    std::lock_guard<std::mutex> lock(channel_->mutex);
    if (channel_->abandoned) return;
    channel_->queue.push_back(std::move(component));
    channel_->cv.notify_one();
  }

  void OnComplete(const KvccStats& stats) override {
    std::lock_guard<std::mutex> lock(channel_->mutex);
    channel_->stats = stats;
    channel_->complete = true;
    channel_->cv.notify_all();
  }

  void OnError(std::exception_ptr error) override {
    std::lock_guard<std::mutex> lock(channel_->mutex);
    channel_->error = std::move(error);
    channel_->complete = true;
    channel_->cv.notify_all();
  }

 private:
  std::shared_ptr<internal::StreamChannel> channel_;
};

/// The smallest emission key the subtree of an item at `path` that has
/// already emitted `emitted` own components can still produce: its next
/// own emit. (Every child subtree key is larger — child elements carry the
/// top bit.)
std::vector<std::uint64_t> MinFutureKey(
    const std::vector<std::uint64_t>& path, std::uint64_t emitted) {
  std::vector<std::uint64_t> key = path;
  key.push_back(emitted);
  return key;
}

}  // namespace

KvccEngine::KvccEngine(unsigned num_threads)
    : scratch_(exec::ResolveThreadCount(num_threads)),
      scheduler_(exec::ResolveThreadCount(num_threads)) {
  scheduler_.Start();
}

KvccEngine::~KvccEngine() { scheduler_.Stop(); }

KvccEngine::JobId KvccEngine::Submit(const Graph& g, std::uint32_t k,
                                     const KvccOptions& options) {
  return SubmitJob(g, k, options, /*sink=*/nullptr);
}

KvccEngine::JobId KvccEngine::SubmitStreaming(
    const Graph& g, std::uint32_t k, std::shared_ptr<ComponentSink> sink,
    const KvccOptions& options) {
  if (!sink) {
    throw std::invalid_argument(
        "KvccEngine::SubmitStreaming: sink must be non-null");
  }
  return SubmitJob(g, k, options, std::move(sink));
}

ResultStream KvccEngine::SubmitStream(const Graph& g, std::uint32_t k,
                                      const KvccOptions& options) {
  auto channel = std::make_shared<internal::StreamChannel>();
  const JobId id =
      SubmitJob(g, k, options, std::make_shared<ChannelSink>(channel));
  {
    // Detach: the stream observes completion (and errors) through the
    // channel, so the Wait table must not hold the job hostage — and an
    // abandoned stream must not leak an unclaimable ticket. Tasks keep
    // the JobState alive through their shared_ptr until the tree drains.
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    jobs_.erase(id);
  }
  return ResultStream(std::move(channel));
}

KvccEngine::JobId KvccEngine::SubmitJob(const Graph& g, std::uint32_t k,
                                        const KvccOptions& options,
                                        std::shared_ptr<ComponentSink> sink) {
  if (k == 0) {
    throw std::invalid_argument("KvccEngine::Submit: k must be at least 1");
  }
  auto state = std::make_shared<JobState>();
  state->graph = &g;
  state->k = k;
  state->options = options;
  state->maintain = options.maintain_side_vertices && options.neighbor_sweep;
  state->sink = std::move(sink);
  state->stable_order = state->sink != nullptr && options.stable_order;
  state->pending.store(1, std::memory_order_relaxed);  // The root task.
  if (state->stable_order) {
    // The root item is live from submission on; its subtree can still
    // produce every key, the smallest being its own first emit {0}.
    state->live_min_keys.insert(MinFutureKey({}, 0));
  }
  std::shared_ptr<JobState> job = state;
  JobId id;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    id = next_job_id_++;
    jobs_.emplace(id, std::move(state));
  }
  // Root tasks seed round-robin across the worker deques even when Submit
  // is called from inside a worker (e.g. a job spawned from a running
  // task): landing a new job behind the submitter's whole LIFO subtree
  // would let one huge job starve every small one.
  scheduler_.SubmitShared([this, job = std::move(job)](unsigned worker_id) {
    RunTask(job, internal::WorkItem{}, /*is_root=*/true, EmitKey{},
            worker_id);
  });
  return id;
}

void KvccEngine::DeliverLocked(JobState* job, std::vector<VertexId> ids) {
  if (job->delivery_suppressed) return;
  StreamedComponent component;
  component.sequence = job->next_sequence++;
  component.vertices = std::move(ids);
  try {
    job->sink->OnComponent(std::move(component));
  } catch (...) {
    // A throwing sink poisons the job exactly like a failing subproblem:
    // stop delivering, let the tree drain, surface the error at the end.
    job->delivery_suppressed = true;
    std::lock_guard<std::mutex> lock(job->mutex);
    if (!job->error) job->error = std::current_exception();
  }
}

void KvccEngine::DrainReorderLocked(JobState* job) {
  // A buffered component is deliverable once no live item's subtree can
  // still emit a smaller key. Every future emission's key is bounded
  // below by some live item's min-future key (the emitting item is live,
  // and children register before their parent retires), so comparing
  // against the smallest live key is exact, not heuristic.
  while (!job->reorder.empty() &&
         (job->live_min_keys.empty() ||
          job->reorder.begin()->first < *job->live_min_keys.begin())) {
    auto first = job->reorder.begin();
    std::vector<VertexId> ids = std::move(first->second);
    job->reorder.erase(first);
    DeliverLocked(job, std::move(ids));
  }
}

void KvccEngine::FinishStreaming(JobState* job) {
  std::lock_guard<std::mutex> lock(job->emit_mutex);
  // Every item has retired, so the live set is empty and the drain
  // releases any still-buffered tail in key order.
  DrainReorderLocked(job);
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> job_lock(job->mutex);
    error = job->error;
  }
  if (error) {
    try {
      job->sink->OnError(error);
    } catch (...) {
      // The job already failed; a throwing OnError has nothing further
      // to add. Wait() rethrows the original error.
    }
  } else {
    try {
      // Safe to read without job->mutex: every task merged its stats
      // (under the mutex) before the final pending decrement that led
      // here, and acq_rel on that counter orders the merges before us.
      job->sink->OnComplete(job->stats);
    } catch (...) {
      std::lock_guard<std::mutex> job_lock(job->mutex);
      if (!job->error) job->error = std::current_exception();
    }
  }
}

void KvccEngine::RunTask(const std::shared_ptr<JobState>& job,
                         internal::WorkItem&& item, bool is_root,
                         EmitKey path, unsigned worker_id) {
  const bool streaming = job->sink != nullptr;
  const bool stable = job->stable_order;
  // Buffered mode keeps task-local accumulators: one lock acquisition per
  // task (below), not one per found component. Streaming mode delivers
  // each component under the job's emit mutex the moment it commits.
  std::vector<std::vector<VertexId>> found;
  KvccStats stats;
  std::exception_ptr error;
  std::uint64_t emit_count = 0;   // own components emitted by this item
  std::uint64_t spawn_count = 0;  // children spawned by this item

  auto emit = [&](std::vector<VertexId> ids) {
    if (!streaming) {
      found.push_back(std::move(ids));
      return;
    }
    std::lock_guard<std::mutex> lock(job->emit_mutex);
    if (!stable) {
      // Immediate delivery; emit_count is stable-order bookkeeping only.
      DeliverLocked(job.get(), std::move(ids));
      return;
    }
    // Advance this item's min-future key past the component being
    // buffered, then release whatever became in-order.
    EmitKey key = MinFutureKey(path, emit_count);
    job->live_min_keys.erase(job->live_min_keys.find(key));
    ++emit_count;
    job->live_min_keys.insert(MinFutureKey(path, emit_count));
    job->reorder.emplace(std::move(key), std::move(ids));
    DrainReorderLocked(job.get());
  };

  auto spawn = [&](internal::WorkItem&& child) {
    EmitKey child_path;
    if (stable) {
      child_path = path;
      // Descending in spawn index: the serial LIFO stack runs the
      // last-spawned child's subtree first.
      child_path.push_back(kChildFlag | (kChildMax - spawn_count));
      ++spawn_count;
      std::lock_guard<std::mutex> lock(job->emit_mutex);
      // Register the child live *before* its parent retires (and before
      // the child can run), so the reorder drain never releases a key the
      // child's subtree could still undercut.
      job->live_min_keys.insert(MinFutureKey(child_path, 0));
    }
    // Count the child before it can possibly run and finish, so
    // `pending` can never dip to zero while work remains.
    job->pending.fetch_add(1, std::memory_order_relaxed);
    scheduler_.Submit([this, job, moved = std::move(child),
                       child_path = std::move(child_path)](
                          unsigned w) mutable {
      RunTask(job, std::move(moved), /*is_root=*/false,
              std::move(child_path), w);
    });
  };

  try {
    internal::ProcessItem(std::move(item), is_root ? job->graph : nullptr,
                          job->k, job->options, job->maintain,
                          scratch_[worker_id], stats, &scheduler_, emit,
                          spawn);
  } catch (...) {
    // A failing subproblem poisons only its own job: record the first
    // exception for Wait() to rethrow; sibling tasks (already spawned
    // children included) still run to completion so `pending` drains.
    error = std::current_exception();
  }

  if (stable) {
    // This item retires: it can emit nothing further. Children spawned
    // above (even on the exception path) are already registered.
    std::lock_guard<std::mutex> lock(job->emit_mutex);
    job->live_min_keys.erase(
        job->live_min_keys.find(MinFutureKey(path, emit_count)));
    DrainReorderLocked(job.get());
  }

  {
    std::lock_guard<std::mutex> lock(job->mutex);
    for (std::vector<VertexId>& component : found) {
      job->components.push_back(std::move(component));
    }
    job->stats.Add(stats);
    if (error && !job->error) job->error = error;
  }
  if (job->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last task of the tree. Streaming jobs flush the reorder tail and
    // close out the sink before the done flag is published, so a Wait()er
    // observes delivery fully finished.
    if (streaming) FinishStreaming(job.get());
    // No other thread touches the accumulators anymore, but the mutex
    // still orders the publication against a concurrent Wait().
    std::lock_guard<std::mutex> lock(job->mutex);
    std::sort(job->components.begin(), job->components.end());
    job->done = true;
    job->done_cv.notify_all();
  }
}

KvccResult KvccEngine::Wait(JobId id) {
  // Take ownership of the ticket up front: once this Wait returns (or
  // throws), the job's bookkeeping is gone and the engine's table holds
  // only jobs still worth remembering. Destruction is safe after `done`
  // — the final task's notify happens under the job mutex, so reacquiring
  // it in the wait proves no task touches the state anymore.
  std::shared_ptr<JobState> job;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      throw std::out_of_range(
          "KvccEngine::Wait: unknown or already-consumed job id");
    }
    job = std::move(it->second);
    jobs_.erase(it);
  }
  KvccResult result;
  {
    std::unique_lock<std::mutex> lock(job->mutex);
    job->done_cv.wait(lock, [&] { return job->done; });
    if (job->error) {
      std::rethrow_exception(job->error);
    }
    result.components = std::move(job->components);
    result.stats = job->stats;
  }
  return result;
}

std::vector<KvccResult> KvccEngine::RunBatch(
    const std::vector<EngineJobSpec>& jobs) {
  std::vector<JobId> ids;
  ids.reserve(jobs.size());
  for (const EngineJobSpec& spec : jobs) {
    if (spec.graph == nullptr) {
      throw std::invalid_argument("KvccEngine::RunBatch: null graph");
    }
    ids.push_back(Submit(*spec.graph, spec.k, spec.options));
  }
  std::vector<KvccResult> results;
  results.reserve(ids.size());
  for (JobId id : ids) results.push_back(Wait(id));
  return results;
}

}  // namespace kvcc
