#include "kvcc/engine.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

namespace kvcc {

namespace {

/// Producer side of a SubmitStream channel: forwards deliveries into the
/// shared StreamChannel, dropping them once the consumer abandoned it.
/// With channel->limit > 0 the queue is bounded: a delivery that would
/// overfill it blocks (backpressure) until the consumer pops, the stream
/// is abandoned, or the job's cancel token fires.
class ChannelSink : public ComponentSink {
 public:
  explicit ChannelSink(std::shared_ptr<internal::StreamChannel> channel)
      : channel_(std::move(channel)) {}

  void OnComponent(StreamedComponent component) override {
    std::unique_lock<std::mutex> lock(channel_->mutex);
    if (channel_->limit != 0 &&
        channel_->queue.size() >= channel_->limit) {
      ++channel_->backpressure_blocks;
      // The timed wait doubles as the deadline poll: an elapsed
      // KvccOptions::deadline_ms latches the token but notifies no
      // condition variable, so the producer must look for itself.
      while (channel_->queue.size() >= channel_->limit &&
             !channel_->abandoned && !channel_->cancel.Cancelled()) {
        channel_->cv.wait_for(lock, std::chrono::milliseconds(10));
      }
    }
    if (channel_->abandoned) return;
    if (channel_->limit != 0 &&
        channel_->queue.size() >= channel_->limit) {
      // Cancelled while the channel is still full: this component cannot
      // be delivered without violating the bound, and silently dropping
      // it would let a job whose every other boundary check passed
      // complete "cleanly" with a missing component. Poison the job
      // instead (the standard throwing-sink path), so the stream reports
      // JobCancelled rather than a silently incomplete success.
      throw JobCancelled(
          "stream delivery cancelled with the bounded channel full");
    }
    channel_->queue.push_back(std::move(component));
    channel_->peak_queued = std::max<std::uint64_t>(
        channel_->peak_queued, channel_->queue.size());
    channel_->cv.notify_all();
  }

  void OnComplete(const KvccStats& stats) override {
    std::lock_guard<std::mutex> lock(channel_->mutex);
    channel_->stats = stats;
    // Channel-side delivery diagnostics live here, not in the job's task
    // accumulators; patch them into the final counters the consumer sees.
    channel_->stats.stream_backpressure_blocks +=
        channel_->backpressure_blocks;
    channel_->stats.stream_peak_buffered = std::max(
        channel_->stats.stream_peak_buffered, channel_->peak_queued);
    channel_->complete = true;
    channel_->cv.notify_all();
  }

  void OnError(std::exception_ptr error) override {
    std::lock_guard<std::mutex> lock(channel_->mutex);
    // A cancelled job is the outcome most likely to have backpressured;
    // rewrap its partial stats with the channel-side diagnostics so the
    // JobCancelled that Next() rethrows reports them. Other failures
    // carry no final stats, so there is nothing to patch.
    try {
      std::rethrow_exception(error);
    } catch (const JobCancelled& cancelled) {
      KvccStats partial = cancelled.partial_stats();
      partial.stream_backpressure_blocks += channel_->backpressure_blocks;
      partial.stream_peak_buffered = std::max(
          partial.stream_peak_buffered, channel_->peak_queued);
      error = std::make_exception_ptr(
          JobCancelled(cancelled.what(), std::move(partial)));
    } catch (...) {
    }
    channel_->error = std::move(error);
    channel_->complete = true;
    channel_->cv.notify_all();
  }

 private:
  std::shared_ptr<internal::StreamChannel> channel_;
};

/// The smallest emission key the subtree of an item at `path` that has
/// already emitted `emitted` own components can still produce: its next
/// own emit. (Every child subtree key is larger — child elements carry the
/// top bit.)
std::vector<std::uint64_t> MinFutureKey(
    const std::vector<std::uint64_t>& path, std::uint64_t emitted) {
  std::vector<std::uint64_t> key = path;
  key.push_back(emitted);
  return key;
}

}  // namespace

KvccEngine::KvccEngine(unsigned num_threads)
    : scratch_(exec::ResolveThreadCount(num_threads)),
      scheduler_(exec::ResolveThreadCount(num_threads)) {
  scheduler_.Start();
}

KvccEngine::~KvccEngine() { scheduler_.Stop(); }

KvccEngine::JobId KvccEngine::Submit(const Graph& g, std::uint32_t k,
                                     const KvccOptions& options) {
  return SubmitJob(g, k, options, /*sink=*/nullptr, CancelToken{});
}

KvccEngine::JobId KvccEngine::SubmitStreaming(
    const Graph& g, std::uint32_t k, std::shared_ptr<ComponentSink> sink,
    const KvccOptions& options) {
  if (!sink) {
    throw std::invalid_argument(
        "KvccEngine::SubmitStreaming: sink must be non-null");
  }
  return SubmitJob(g, k, options, std::move(sink), CancelToken{});
}

ResultStream KvccEngine::SubmitStream(const Graph& g, std::uint32_t k,
                                      const KvccOptions& options) {
  auto channel = std::make_shared<internal::StreamChannel>();
  channel->limit = options.stream_buffer_limit;
  // The channel shares the job's cancel flag *before* the root task can
  // run, so abandonment observed at any point of the job's life reaches
  // every subsequent boundary check.
  CancelToken cancel;
  channel->cancel = cancel;
  const JobId id = SubmitJob(g, k, options,
                             std::make_shared<ChannelSink>(channel),
                             std::move(cancel));
  {
    // Detach: the stream observes completion (and errors) through the
    // channel, so the Wait table must not hold the job hostage — and an
    // abandoned stream must not leak an unclaimable ticket. Tasks keep
    // the JobState alive through their shared_ptr until the tree drains.
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    jobs_.erase(id);
  }
  return ResultStream(std::move(channel));
}

bool KvccEngine::Cancel(JobId id) {
  std::lock_guard<std::mutex> lock(jobs_mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  it->second->cancel.RequestCancel();
  return true;
}

KvccEngine::JobId KvccEngine::SubmitJob(const Graph& g, std::uint32_t k,
                                        const KvccOptions& options,
                                        std::shared_ptr<ComponentSink> sink,
                                        CancelToken cancel) {
  if (k == 0) {
    throw std::invalid_argument("KvccEngine::Submit: k must be at least 1");
  }
  if (options.deadline_ms > 0) {
    // Armed before any task exists, so no synchronization is needed and
    // the budget covers queueing delay too (a deadline is an end-to-end
    // promise, not a compute budget).
    cancel.SetDeadline(std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(options.deadline_ms));
  }
  auto state = std::make_shared<JobState>();
  state->graph = &g;
  state->k = k;
  state->options = options;
  state->maintain = options.maintain_side_vertices && options.neighbor_sweep;
  state->cancel = std::move(cancel);
  state->priority = ToTaskPriority(options.priority);
  state->sink = std::move(sink);
  state->stable_order = state->sink != nullptr && options.stable_order;
  state->pending.store(1, std::memory_order_relaxed);  // The root task.
  if (state->stable_order) {
    // The root item is live from submission on; its subtree can still
    // produce every key, the smallest being its own first emit {0}.
    state->live_min_keys.insert(MinFutureKey({}, 0));
  }
  std::shared_ptr<JobState> job = state;
  JobId id;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    id = next_job_id_++;
    jobs_.emplace(id, std::move(state));
  }
  // Root tasks seed round-robin across the worker deques even when Submit
  // is called from inside a worker (e.g. a job spawned from a running
  // task): landing a new job behind the submitter's whole LIFO subtree
  // would let one huge job starve every small one.
  const exec::TaskPriority priority = job->priority;
  scheduler_.SubmitShared(
      [this, job = std::move(job)](unsigned worker_id) {
        RunTask(job, internal::WorkItem{}, /*is_root=*/true, EmitKey{},
                worker_id);
      },
      priority);
  return id;
}

void KvccEngine::DeliverLocked(JobState* job, std::vector<VertexId> ids) {
  if (job->delivery_suppressed) return;
  StreamedComponent component;
  component.sequence = job->next_sequence++;
  component.vertices = std::move(ids);
  try {
    job->sink->OnComponent(std::move(component));
  } catch (...) {
    // A throwing sink poisons the job exactly like a failing subproblem:
    // stop delivering, let the tree drain, surface the error at the end.
    job->delivery_suppressed = true;
    std::lock_guard<std::mutex> lock(job->mutex);
    if (!job->error) job->error = std::current_exception();
  }
}

void KvccEngine::DrainReorderLocked(JobState* job) {
  // A buffered component is deliverable once no live item's subtree can
  // still emit a smaller key. Every future emission's key is bounded
  // below by some live item's min-future key (the emitting item is live,
  // and children register before their parent retires), so comparing
  // against the smallest live key is exact, not heuristic.
  while (!job->reorder.empty() &&
         (job->live_min_keys.empty() ||
          job->reorder.begin()->first < *job->live_min_keys.begin())) {
    auto first = job->reorder.begin();
    std::vector<VertexId> ids = std::move(first->second);
    job->reorder.erase(first);
    DeliverLocked(job, std::move(ids));
  }
}

void KvccEngine::FinishStreaming(JobState* job) {
  std::lock_guard<std::mutex> lock(job->emit_mutex);
  // Every item has retired, so the live set is empty and the drain
  // releases any still-buffered tail in key order.
  DrainReorderLocked(job);
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> job_lock(job->mutex);
    error = job->error;
  }
  if (error) {
    try {
      job->sink->OnError(error);
    } catch (...) {
      // The job already failed; a throwing OnError has nothing further
      // to add. Wait() rethrows the original error.
    }
  } else {
    try {
      // Safe to read without job->mutex: every task merged its stats
      // (under the mutex) before the final pending decrement that led
      // here, and acq_rel on that counter orders the merges before us.
      job->sink->OnComplete(job->stats);
    } catch (...) {
      std::lock_guard<std::mutex> job_lock(job->mutex);
      if (!job->error) job->error = std::current_exception();
    }
  }
}

void KvccEngine::RunTask(const std::shared_ptr<JobState>& job,
                         internal::WorkItem&& item, bool is_root,
                         EmitKey path, unsigned worker_id) {
  const bool streaming = job->sink != nullptr;
  const bool stable = job->stable_order;
  // Buffered mode keeps task-local accumulators: one lock acquisition per
  // task (below), not one per found component. Streaming mode delivers
  // each component under the job's emit mutex the moment it commits.
  std::vector<std::vector<VertexId>> found;
  KvccStats stats;
  std::exception_ptr error;
  std::uint64_t emit_count = 0;   // own components emitted by this item
  std::uint64_t spawn_count = 0;  // children spawned by this item

  auto emit = [&](std::vector<VertexId> ids) {
    if (!streaming) {
      found.push_back(std::move(ids));
      return;
    }
    std::lock_guard<std::mutex> lock(job->emit_mutex);
    if (!stable) {
      // Immediate delivery; emit_count is stable-order bookkeeping only.
      DeliverLocked(job.get(), std::move(ids));
      return;
    }
    // Advance this item's min-future key past the component being
    // buffered, then release whatever became in-order.
    EmitKey key = MinFutureKey(path, emit_count);
    job->live_min_keys.erase(job->live_min_keys.find(key));
    ++emit_count;
    job->live_min_keys.insert(MinFutureKey(path, emit_count));
    job->reorder.emplace(std::move(key), std::move(ids));
    DrainReorderLocked(job.get());
  };

  auto spawn = [&](internal::WorkItem&& child) {
    EmitKey child_path;
    if (stable) {
      child_path = path;
      // Descending in spawn index: the serial LIFO stack runs the
      // last-spawned child's subtree first.
      child_path.push_back(kChildFlag | (kChildMax - spawn_count));
      ++spawn_count;
      std::lock_guard<std::mutex> lock(job->emit_mutex);
      // Register the child live *before* its parent retires (and before
      // the child can run), so the reorder drain never releases a key the
      // child's subtree could still undercut.
      job->live_min_keys.insert(MinFutureKey(child_path, 0));
    }
    // Count the child before it can possibly run and finish, so
    // `pending` can never dip to zero while work remains.
    job->pending.fetch_add(1, std::memory_order_relaxed);
    scheduler_.Submit(
        [this, job, moved = std::move(child),
         child_path = std::move(child_path)](unsigned w) mutable {
          RunTask(job, std::move(moved), /*is_root=*/false,
                  std::move(child_path), w);
        },
        job->priority);
  };

  // Task-boundary cancellation check: a cancelled job's queued tasks each
  // start, observe the token, and retire in O(1) — the pool drains the
  // tree's *bookkeeping* without processing any further subgraph (and
  // GLOBAL-CUT polls the same token at its probe/wavefront boundaries for
  // the task already in flight).
  if (job->cancel.Cancelled()) {
    ++stats.tasks_cancelled;
  } else {
    try {
      internal::ProcessItem(std::move(item), is_root ? job->graph : nullptr,
                            job->k, job->options, job->maintain,
                            scratch_[worker_id], stats, &scheduler_,
                            &job->cancel, emit, spawn);
    } catch (const JobCancelled&) {
      // Cooperative unwind from inside GLOBAL-CUT; the token is already
      // latched, so every remaining task short-circuits above, and the
      // final task reports the JobCancelled outcome with merged partials
      // (a deep-unwind instance carries none).
    } catch (...) {
      // A failing subproblem poisons only its own job: record the first
      // exception for Wait() to rethrow; sibling tasks (already spawned
      // children included) still run to completion so `pending` drains.
      error = std::current_exception();
    }
  }

  if (stable) {
    // This item retires: it can emit nothing further. Children spawned
    // above (even on the exception path) are already registered.
    std::lock_guard<std::mutex> lock(job->emit_mutex);
    job->live_min_keys.erase(
        job->live_min_keys.find(MinFutureKey(path, emit_count)));
    DrainReorderLocked(job.get());
  }

  {
    std::lock_guard<std::mutex> lock(job->mutex);
    for (std::vector<VertexId>& component : found) {
      job->components.push_back(std::move(component));
    }
    job->stats.Add(stats);
    if (error && !job->error) job->error = error;
  }
  if (job->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last task of the tree. A cancelled job (with no earlier real
    // failure) reports the JobCancelled outcome, carrying the merged
    // partial stats — every task's merge happened before its pending
    // decrement, so the read below sees all of them. The counters also
    // gate the report: a token that latched only after every task had
    // already run to completion short-circuited nothing, and the
    // documented contract is that such a job returns its full result.
    if (job->cancel.Cancelled()) {
      std::lock_guard<std::mutex> lock(job->mutex);
      if (!job->error &&
          job->stats.tasks_cancelled + job->stats.cuts_cancelled > 0) {
        job->error = std::make_exception_ptr(JobCancelled(
            "k-VCC job cancelled (explicit cancel, stream abandonment, "
            "or deadline)",
            job->stats));
      } else if (job->error) {
        // A JobCancelled recorded mid-flight (e.g. the bounded channel's
        // cancelled-while-full delivery) carries no counters; rewrap it
        // with the merged partials now that every task has reported.
        try {
          std::rethrow_exception(job->error);
        } catch (const JobCancelled& cancelled) {
          job->error = std::make_exception_ptr(
              JobCancelled(cancelled.what(), job->stats));
        } catch (...) {
        }
      }
    }
    // Streaming jobs flush the reorder tail and close out the sink before
    // the done flag is published, so a Wait()er observes delivery fully
    // finished.
    if (streaming) FinishStreaming(job.get());
    // No other thread touches the accumulators anymore, but the mutex
    // still orders the publication against a concurrent Wait().
    std::lock_guard<std::mutex> lock(job->mutex);
    std::sort(job->components.begin(), job->components.end());
    job->done = true;
    job->done_cv.notify_all();
  }
}

KvccResult KvccEngine::Wait(JobId id) {
  // Claim the ticket up front (one Wait per id), but leave the table
  // entry in place until the job finishes: a Cancel() racing with a
  // blocked Wait must still find the job — the watchdog pattern is
  // "thread A waits, thread B cancels to unstick it". The entry is
  // erased once the wait is over, so a completed-and-returned job holds
  // no engine state. Destruction is safe after `done` — the final task's
  // notify happens under the job mutex, so reacquiring it in the wait
  // proves no task touches the state anymore.
  std::shared_ptr<JobState> job;
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end() || it->second->claimed) {
      throw std::out_of_range(
          "KvccEngine::Wait: unknown or already-consumed job id");
    }
    it->second->claimed = true;
    job = it->second;
  }
  KvccResult result;
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(job->mutex);
    job->done_cv.wait(lock, [&] { return job->done; });
    error = job->error;
    if (!error) {
      result.components = std::move(job->components);
      result.stats = job->stats;
    }
  }
  {
    // Ticket fully consumed: from here Cancel(id) reports false.
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    jobs_.erase(id);
  }
  if (error) std::rethrow_exception(error);
  return result;
}

std::vector<KvccResult> KvccEngine::RunBatch(
    const std::vector<EngineJobSpec>& jobs) {
  std::vector<JobId> ids;
  ids.reserve(jobs.size());
  for (const EngineJobSpec& spec : jobs) {
    if (spec.graph == nullptr) {
      throw std::invalid_argument("KvccEngine::RunBatch: null graph");
    }
    ids.push_back(Submit(*spec.graph, spec.k, spec.options));
  }
  std::vector<KvccResult> results;
  results.reserve(ids.size());
  // Wait out *every* job before surfacing a failure: throwing at the
  // first bad job would strand the later tickets un-Waited (their
  // bookkeeping held until engine destruction) with ids the caller never
  // received. The first failure — including a JobCancelled from a
  // per-spec deadline — is rethrown once the whole batch is reclaimed;
  // callers that want per-job outcomes should Submit/Wait themselves.
  std::exception_ptr first_error;
  for (JobId id : ids) {
    try {
      results.push_back(Wait(id));
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

}  // namespace kvcc
