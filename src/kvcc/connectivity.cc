#include "kvcc/connectivity.h"

#include <algorithm>

#include "graph/connected_components.h"
#include "kvcc/flow_graph.h"

namespace kvcc {

std::uint32_t LocalVertexConnectivity(const Graph& g, VertexId u, VertexId v,
                                      std::uint32_t limit) {
  if (u == v || g.HasEdge(u, v)) return kInfiniteConnectivity;
  DirectedFlowGraph oracle(g);
  // kappa(u,v) <= min(d(u), d(v)) <= n - 2, so n is a safe "exact" limit.
  const std::int32_t effective_limit =
      limit == 0 ? static_cast<std::int32_t>(g.NumVertices())
                 : static_cast<std::int32_t>(limit);
  return static_cast<std::uint32_t>(
      oracle.LocalConnectivity(u, v, effective_limit));
}

bool IsKVertexConnected(const Graph& g, std::uint32_t k) {
  if (k == 0) return true;
  const VertexId n = g.NumVertices();
  if (n <= k) return false;  // Definition 2 requires |V| > k.
  if (!IsConnected(g)) return false;
  if (k == 1) return true;

  // Esfahanian–Hakimi: pick any source u; if a cut S (|S| < k) avoids u,
  // phase 1 finds kappa(u, v) < k for v behind S; if every such cut
  // contains u, phase 2 finds a neighbor pair with kappa < k (Lemma 4).
  const VertexId source = g.MinDegreeVertex();
  if (g.Degree(source) < k) return false;  // Whitney: kappa <= delta.
  DirectedFlowGraph oracle(g);
  const auto limit = static_cast<std::int32_t>(k);
  for (VertexId v = 0; v < n; ++v) {
    if (v == source || g.HasEdge(source, v)) continue;
    if (oracle.LocalConnectivity(source, v, limit) < limit) return false;
  }
  const auto nbrs = g.Neighbors(source);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
      if (g.HasEdge(nbrs[i], nbrs[j])) continue;
      if (oracle.LocalConnectivity(nbrs[i], nbrs[j], limit) < limit) {
        return false;
      }
    }
  }
  return true;
}

std::uint32_t VertexConnectivity(const Graph& g) {
  const VertexId n = g.NumVertices();
  if (n <= 1) return 0;
  if (!IsConnected(g)) return 0;

  const VertexId source = g.MinDegreeVertex();
  std::uint32_t best = g.Degree(source);  // kappa <= delta (Whitney).
  if (best == 0) return 0;

  DirectedFlowGraph oracle(g);
  for (VertexId v = 0; v < n && best > 0; ++v) {
    if (v == source || g.HasEdge(source, v)) continue;
    const auto flow = static_cast<std::uint32_t>(oracle.LocalConnectivity(
        source, v, static_cast<std::int32_t>(best)));
    best = std::min(best, flow);
  }
  const auto nbrs = g.Neighbors(source);
  for (std::size_t i = 0; i < nbrs.size() && best > 0; ++i) {
    for (std::size_t j = i + 1; j < nbrs.size() && best > 0; ++j) {
      if (g.HasEdge(nbrs[i], nbrs[j])) continue;
      const auto flow = static_cast<std::uint32_t>(oracle.LocalConnectivity(
          nbrs[i], nbrs[j], static_cast<std::int32_t>(best)));
      best = std::min(best, flow);
    }
  }
  // If no non-adjacent pair was ever tested the graph is complete and
  // best == delta == n - 1, which is correct for K_n.
  return best;
}

}  // namespace kvcc
