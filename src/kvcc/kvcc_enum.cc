#include "kvcc/kvcc_enum.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>
#include <utility>

#include "exec/task_scheduler.h"
#include "kvcc/engine.h"
#include "kvcc/enum_internal.h"
#include "kvcc/job_control.h"

namespace kvcc {

namespace {

/// Arms `token` from options.deadline_ms and returns it as the cancel
/// pointer the serial drivers poll (null when no deadline is set — the
/// serial paths have no other cancellation trigger).
const CancelToken* ArmDeadline(const KvccOptions& options,
                               CancelToken& token) {
  if (options.deadline_ms == 0) return nullptr;
  token.SetDeadline(std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(options.deadline_ms));
  return &token;
}

}  // namespace

std::vector<PartitionPiece> OverlapPartition(
    const Graph& g, const std::vector<VertexId>& cut, bool as_root) {
  const VertexId n = g.NumVertices();
  std::vector<bool> in_cut(n, false);
  for (VertexId v : cut) in_cut[v] = true;

  std::vector<PartitionPiece> pieces;
  std::vector<bool> seen(n, false);
  std::vector<VertexId> queue;
  for (VertexId start = 0; start < n; ++start) {
    if (seen[start] || in_cut[start]) continue;
    // BFS one component of g - cut.
    queue.clear();
    queue.push_back(start);
    seen[start] = true;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      for (VertexId w : g.Neighbors(queue[head])) {
        if (!seen[w] && !in_cut[w]) {
          seen[w] = true;
          queue.push_back(w);
        }
      }
    }
    PartitionPiece piece;
    piece.vertices.reserve(queue.size() + cut.size());
    piece.vertices.insert(piece.vertices.end(), queue.begin(), queue.end());
    piece.vertices.insert(piece.vertices.end(), cut.begin(), cut.end());
    std::sort(piece.vertices.begin(), piece.vertices.end());
    piece.graph = as_root ? g.InducedSubgraphAsRoot(piece.vertices)
                          : g.InducedSubgraph(piece.vertices);
    pieces.push_back(std::move(piece));
  }
  if (pieces.size() < 2) {
    // Hard check, not an assert: in a Release build a non-separating "cut"
    // would otherwise yield a single piece equal to its parent, and the
    // recursion would respawn that piece forever.
    throw std::logic_error(
        "OverlapPartition: set of " + std::to_string(cut.size()) +
        " vertices is not a vertex cut of the " + std::to_string(n) +
        "-vertex graph (" + std::to_string(pieces.size()) +
        " piece(s) after removal)");
  }
  return pieces;
}

Graph MaterializeComponent(const Graph& g,
                           const std::vector<VertexId>& component) {
  return g.InducedSubgraph(component);
}

KvccResult EnumerateKVccs(const Graph& g, std::uint32_t k,
                          const KvccOptions& options) {
  if (k == 0) {
    throw std::invalid_argument("EnumerateKVccs: k must be at least 1");
  }
  const unsigned num_workers = exec::ResolveThreadCount(options.num_threads);
  if (num_workers > 1) {
    // One-job batch on a transient engine. Callers that decompose many
    // graphs should hold a KvccEngine themselves and Submit jobs against
    // its warm worker pool instead of paying this spin-up per call.
    KvccEngine engine(num_workers);
    return engine.Wait(engine.Submit(g, k, options));
  }

  // Serial path: the scheduler degenerates to an explicit LIFO stack run
  // on the calling thread.
  const bool maintain =
      options.maintain_side_vertices && options.neighbor_sweep;
  internal::EnumScratch scratch;
  CancelToken deadline_token;
  const CancelToken* cancel = ArmDeadline(options, deadline_token);
  KvccResult result;
  std::vector<internal::WorkItem> stack;
  auto emit = [&result](std::vector<VertexId> ids) {
    result.components.push_back(std::move(ids));
  };
  auto spawn = [&stack](internal::WorkItem&& child) {
    stack.push_back(std::move(child));
  };
  try {
    internal::ProcessItem(internal::WorkItem{}, &g, k, options, maintain,
                          scratch, result.stats, /*scheduler=*/nullptr,
                          cancel, emit, spawn);
    while (!stack.empty()) {
      if (cancel != nullptr && cancel->Cancelled()) {
        // Task-boundary check: the remaining stack is never processed.
        result.stats.tasks_cancelled += stack.size();
        stack.clear();
        throw JobCancelled("EnumerateKVccs: deadline elapsed");
      }
      internal::WorkItem item = std::move(stack.back());
      stack.pop_back();
      internal::ProcessItem(std::move(item), nullptr, k, options, maintain,
                            scratch, result.stats, /*scheduler=*/nullptr,
                            cancel, emit, spawn);
    }
  } catch (const JobCancelled& cancelled) {
    // Attach the partial counters (a mid-GLOBAL-CUT unwind carries none)
    // and account the stack items the unwind left unprocessed.
    result.stats.tasks_cancelled += stack.size();
    throw JobCancelled(cancelled.what(), result.stats);
  }
  std::sort(result.components.begin(), result.components.end());
  return result;
}

void EnumerateKVccsStreaming(const Graph& g, std::uint32_t k,
                             ComponentSink& sink,
                             const KvccOptions& options) {
  if (k == 0) {
    throw std::invalid_argument(
        "EnumerateKVccsStreaming: k must be at least 1");
  }
  const unsigned num_workers = exec::ResolveThreadCount(options.num_threads);
  if (num_workers > 1) {
    // One-job streaming batch on a transient engine; Wait() rethrows the
    // first algorithm or sink error after the tree drains, matching the
    // serial path's throw-through semantics. The sink is borrowed, not
    // owned: alias it into a shared_ptr with no ownership.
    KvccEngine engine(num_workers);
    std::shared_ptr<ComponentSink> borrowed(std::shared_ptr<void>(), &sink);
    engine.Wait(engine.SubmitStreaming(g, k, std::move(borrowed), options));
    return;
  }

  // Serial path: the LIFO stack below *is* the definition of the serial
  // emission order (stable_order replays it) — each item's own components
  // first, then the subtree of its last-spawned child, and so on.
  const bool maintain =
      options.maintain_side_vertices && options.neighbor_sweep;
  internal::EnumScratch scratch;
  CancelToken deadline_token;
  const CancelToken* cancel = ArmDeadline(options, deadline_token);
  KvccStats stats;
  std::uint64_t sequence = 0;
  std::vector<internal::WorkItem> stack;
  auto emit = [&](std::vector<VertexId> ids) {
    StreamedComponent component;
    component.sequence = sequence++;
    component.vertices = std::move(ids);
    sink.OnComponent(std::move(component));
  };
  auto spawn = [&stack](internal::WorkItem&& child) {
    stack.push_back(std::move(child));
  };
  try {
    internal::ProcessItem(internal::WorkItem{}, &g, k, options, maintain,
                          scratch, stats, /*scheduler=*/nullptr, cancel,
                          emit, spawn);
    while (!stack.empty()) {
      if (cancel != nullptr && cancel->Cancelled()) {
        stats.tasks_cancelled += stack.size();
        stack.clear();
        throw JobCancelled("EnumerateKVccsStreaming: deadline elapsed");
      }
      internal::WorkItem item = std::move(stack.back());
      stack.pop_back();
      internal::ProcessItem(std::move(item), nullptr, k, options, maintain,
                            scratch, stats, /*scheduler=*/nullptr, cancel,
                            emit, spawn);
    }
  } catch (const JobCancelled& cancelled) {
    // Same OnError-then-throw shape as the generic failure path below,
    // but the surfaced outcome carries the partial stats of the work
    // that ran (components delivered so far stay delivered).
    stats.tasks_cancelled += stack.size();
    const JobCancelled outcome(cancelled.what(), stats);
    try {
      sink.OnError(std::make_exception_ptr(outcome));
    } catch (...) {
    }
    throw outcome;
  } catch (...) {
    const std::exception_ptr error = std::current_exception();
    try {
      sink.OnError(error);
    } catch (...) {
      // OnError is informational; the first error is the one the caller
      // must see (same semantics as the engine path's FinishStreaming).
    }
    std::rethrow_exception(error);
  }
  sink.OnComplete(stats);
}

}  // namespace kvcc
