#include "kvcc/kvcc_enum.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "graph/connected_components.h"
#include "graph/k_core.h"
#include "kvcc/global_cut.h"
#include "kvcc/side_vertex.h"

namespace kvcc {
namespace {

struct WorkItem {
  Graph graph;
  /// Strong side-vertex carry-over verdicts (Lemmas 15/16); empty = none.
  std::vector<SideVertexHint> hints;
};

/// Vertices of g with at least one neighbor in `sources` (the 1-hop
/// dilation, excluding the sources themselves unless they qualify). Used
/// for the partition-time maintenance rule: a strong side-vertex verdict
/// survives a partition by cut S iff N(v) ∩ S = ∅ (Lemma 16).
std::vector<bool> NeighborsOfSet(const Graph& g,
                                 const std::vector<VertexId>& sources) {
  std::vector<bool> in_set(g.NumVertices(), false);
  for (VertexId s : sources) in_set[s] = true;
  std::vector<bool> touched(g.NumVertices(), false);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (VertexId w : g.Neighbors(v)) {
      if (in_set[w]) {
        touched[v] = true;
        break;
      }
    }
  }
  return touched;
}

}  // namespace

std::vector<PartitionPiece> OverlapPartition(
    const Graph& g, const std::vector<VertexId>& cut) {
  const VertexId n = g.NumVertices();
  std::vector<bool> in_cut(n, false);
  for (VertexId v : cut) in_cut[v] = true;

  std::vector<PartitionPiece> pieces;
  std::vector<bool> seen(n, false);
  std::vector<VertexId> queue;
  for (VertexId start = 0; start < n; ++start) {
    if (seen[start] || in_cut[start]) continue;
    // BFS one component of g - cut.
    queue.clear();
    queue.push_back(start);
    seen[start] = true;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      for (VertexId w : g.Neighbors(queue[head])) {
        if (!seen[w] && !in_cut[w]) {
          seen[w] = true;
          queue.push_back(w);
        }
      }
    }
    PartitionPiece piece;
    piece.vertices.reserve(queue.size() + cut.size());
    piece.vertices.insert(piece.vertices.end(), queue.begin(), queue.end());
    piece.vertices.insert(piece.vertices.end(), cut.begin(), cut.end());
    std::sort(piece.vertices.begin(), piece.vertices.end());
    piece.graph = g.InducedSubgraph(piece.vertices);
    pieces.push_back(std::move(piece));
  }
  assert(pieces.size() >= 2 && "OverlapPartition requires a real vertex cut");
  return pieces;
}

Graph MaterializeComponent(const Graph& g,
                           const std::vector<VertexId>& component) {
  return g.InducedSubgraph(component);
}

KvccResult EnumerateKVccs(const Graph& g, std::uint32_t k,
                          const KvccOptions& options) {
  if (k == 0) {
    throw std::invalid_argument("EnumerateKVccs: k must be at least 1");
  }
  KvccResult result;
  const bool maintain =
      options.maintain_side_vertices && options.neighbor_sweep;

  std::vector<WorkItem> stack;
  stack.push_back({g.WithIdentityLabels(), {}});

  while (!stack.empty()) {
    WorkItem item = std::move(stack.back());
    stack.pop_back();
    const Graph& cur = item.graph;

    // --- k-core peel (Alg. 1 line 2) ---
    const std::vector<VertexId> survivors = KCoreVertices(cur, k);
    ++result.stats.kcore_rounds;
    result.stats.kcore_removed_vertices +=
        cur.NumVertices() - survivors.size();
    if (survivors.size() <= k) continue;  // A k-VCC needs > k vertices.

    // Peeling invalidates side-vertex verdicts within 2 hops of a removed
    // vertex (common-neighbor counts may have dropped).
    std::vector<bool> peel_touched;
    const bool have_hints = maintain && !item.hints.empty();
    if (have_hints && survivors.size() != cur.NumVertices()) {
      std::vector<bool> survives(cur.NumVertices(), false);
      for (VertexId v : survivors) survives[v] = true;
      std::vector<VertexId> removed;
      removed.reserve(cur.NumVertices() - survivors.size());
      for (VertexId v = 0; v < cur.NumVertices(); ++v) {
        if (!survives[v]) removed.push_back(v);
      }
      peel_touched = TwoHopBall(cur, removed);
    }

    Graph core = cur.InducedSubgraph(survivors);

    // --- connected components (Alg. 1 line 3) ---
    std::vector<std::vector<VertexId>> components = ConnectedComponents(core);
    const bool single_component = components.size() == 1;
    for (const std::vector<VertexId>& comp : components) {
      if (comp.size() <= k) continue;  // Cannot contain a k-VCC (Def. 2).

      // core vertex comp[i] corresponds to cur vertex survivors[comp[i]].
      Graph sub = single_component ? std::move(core)
                                   : core.InducedSubgraph(comp);

      std::vector<SideVertexHint> sub_hints;
      if (have_hints) {
        sub_hints.resize(sub.NumVertices());
        for (VertexId i = 0; i < sub.NumVertices(); ++i) {
          const VertexId cur_v = survivors[comp[i]];
          SideVertexHint h = item.hints[cur_v];
          if (h == SideVertexHint::kStrong && !peel_touched.empty() &&
              peel_touched[cur_v]) {
            h = SideVertexHint::kRecheck;
          }
          sub_hints[i] = h;
        }
      }

      // --- cut search (Alg. 1 line 5) ---
      GlobalCutResult found =
          GlobalCut(sub, k, sub_hints, options, &result.stats);

      if (found.cut.empty()) {
        // sub is k-vertex-connected and maximal within this branch: k-VCC.
        std::vector<VertexId> ids;
        ids.reserve(sub.NumVertices());
        for (VertexId v = 0; v < sub.NumVertices(); ++v) {
          ids.push_back(sub.LabelOf(v));
        }
        std::sort(ids.begin(), ids.end());
        result.components.push_back(std::move(ids));
        ++result.stats.kvccs_found;
        continue;
      }

      // --- overlapped partition (Alg. 1 line 9) ---
      ++result.stats.overlap_partitions;
      std::vector<bool> cut_touched;
      if (maintain && found.strong_side_valid) {
        cut_touched = NeighborsOfSet(sub, found.cut);
      }
      for (PartitionPiece& piece : OverlapPartition(sub, found.cut)) {
        std::vector<SideVertexHint> child_hints;
        if (maintain && found.strong_side_valid) {
          child_hints.resize(piece.graph.NumVertices());
          for (VertexId i = 0; i < piece.graph.NumVertices(); ++i) {
            const VertexId sub_v = piece.vertices[i];
            if (!found.strong_side[sub_v]) {
              child_hints[i] = SideVertexHint::kNotStrong;  // Lemma 15.
            } else if (cut_touched[sub_v]) {
              child_hints[i] = SideVertexHint::kRecheck;
            } else {
              child_hints[i] = SideVertexHint::kStrong;  // Lemma 16.
            }
          }
        }
        stack.push_back({std::move(piece.graph), std::move(child_hints)});
      }
    }
  }

  std::sort(result.components.begin(), result.components.end());
  return result;
}

}  // namespace kvcc
