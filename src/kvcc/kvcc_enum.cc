#include "kvcc/kvcc_enum.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "exec/task_scheduler.h"
#include "graph/connected_components.h"
#include "graph/k_core.h"
#include "kvcc/global_cut.h"
#include "kvcc/side_vertex.h"

namespace kvcc {
namespace {

struct WorkItem {
  Graph graph;
  /// Strong side-vertex carry-over verdicts (Lemmas 15/16); empty = none.
  std::vector<SideVertexHint> hints;
};

/// Per-worker mutable state. Workers never share an EnumWorker, so the hot
/// path runs without atomics or locks; results and stats are merged once
/// after the scheduler drains. The scratch members amortize the allocations
/// that used to happen on every recursion step.
struct EnumWorker {
  std::vector<std::vector<VertexId>> components;
  KvccStats stats;
  GlobalCutScratch cut_scratch;
  // NeighborsOfSet working set.
  std::vector<bool> nbr_in_set;
  std::vector<bool> nbr_touched;
};

/// Vertices of g with at least one neighbor in `sources` (the 1-hop
/// dilation, excluding the sources themselves unless they qualify). Used
/// for the partition-time maintenance rule: a strong side-vertex verdict
/// survives a partition by cut S iff N(v) ∩ S = ∅ (Lemma 16). Returns a
/// reference into `worker`'s scratch, valid until the next call.
const std::vector<bool>& NeighborsOfSet(const Graph& g,
                                        const std::vector<VertexId>& sources,
                                        EnumWorker& worker) {
  std::vector<bool>& in_set = worker.nbr_in_set;
  std::vector<bool>& touched = worker.nbr_touched;
  in_set.assign(g.NumVertices(), false);
  for (VertexId s : sources) in_set[s] = true;
  touched.assign(g.NumVertices(), false);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (VertexId w : g.Neighbors(v)) {
      if (in_set[w]) {
        touched[v] = true;
        break;
      }
    }
  }
  return touched;
}

/// Runs one step of the Algorithm-1 recursion (k-core peel -> components ->
/// GLOBAL-CUT -> overlapped partition) on one work item. Found k-VCCs are
/// appended to `worker`; partition pieces are handed to `spawn` as child
/// items. `root` is non-null only for the initial item: the step then reads
/// the caller's graph in place (no identity-label copy) and derived
/// subgraphs seed their label chain at the root via InducedSubgraphAsRoot.
///
/// The step is a pure function of (item/root, k, options): the set of
/// spawned children and the local stats increments do not depend on which
/// worker runs it or when, which is what makes the parallel run's merged
/// output identical to the serial run's.
template <typename Spawn>
void ProcessItem(WorkItem&& item, const Graph* root, std::uint32_t k,
                 const KvccOptions& options, bool maintain,
                 EnumWorker& worker, Spawn&& spawn) {
  const bool as_root = root != nullptr;
  const Graph& cur = as_root ? *root : item.graph;

  // --- k-core peel (Alg. 1 line 2) ---
  const std::vector<VertexId> survivors = KCoreVertices(cur, k);
  ++worker.stats.kcore_rounds;
  worker.stats.kcore_removed_vertices += cur.NumVertices() - survivors.size();
  if (survivors.size() <= k) return;  // A k-VCC needs > k vertices.

  // Peeling invalidates side-vertex verdicts within 2 hops of a removed
  // vertex (common-neighbor counts may have dropped).
  std::vector<bool> peel_touched;
  const bool have_hints = maintain && !item.hints.empty();
  if (have_hints && survivors.size() != cur.NumVertices()) {
    std::vector<bool> survives(cur.NumVertices(), false);
    for (VertexId v : survivors) survives[v] = true;
    std::vector<VertexId> removed;
    removed.reserve(cur.NumVertices() - survivors.size());
    for (VertexId v = 0; v < cur.NumVertices(); ++v) {
      if (!survives[v]) removed.push_back(v);
    }
    peel_touched = TwoHopBall(cur, removed);
  }

  // --- materialize the k-core ---
  // When nothing was peeled the graph already *is* its k-core: reuse the
  // owned graph (or keep reading the root in place) instead of copying.
  const bool full_core = survivors.size() == cur.NumVertices();
  Graph core_owned;
  const Graph* core = nullptr;
  bool core_as_root = false;
  if (full_core && as_root) {
    core = root;
    core_as_root = true;
  } else if (full_core) {
    core_owned = std::move(item.graph);  // `cur` is dead from here on.
    core = &core_owned;
  } else {
    core_owned = as_root ? cur.InducedSubgraphAsRoot(survivors)
                         : cur.InducedSubgraph(survivors);
    core = &core_owned;
  }

  // --- connected components (Alg. 1 line 3) ---
  const std::vector<std::vector<VertexId>> components =
      ConnectedComponents(*core);
  const bool single_component = components.size() == 1;
  for (const std::vector<VertexId>& comp : components) {
    if (comp.size() <= k) continue;  // Cannot contain a k-VCC (Def. 2).

    // Materialize this component; a single component spanning everything
    // reuses `core` the same way `core` reused the item graph.
    Graph sub_owned;
    const Graph* sub = nullptr;
    bool sub_as_root = false;
    if (single_component && core_as_root) {
      sub = core;
      sub_as_root = true;
    } else if (single_component) {
      sub_owned = std::move(core_owned);
      sub = &sub_owned;
    } else if (core_as_root) {
      sub_owned = core->InducedSubgraphAsRoot(comp);
      sub = &sub_owned;
    } else {
      sub_owned = core->InducedSubgraph(comp);
      sub = &sub_owned;
    }

    // core vertex comp[i] corresponds to cur vertex survivors[comp[i]].
    std::vector<SideVertexHint> sub_hints;
    if (have_hints) {
      sub_hints.resize(sub->NumVertices());
      for (VertexId i = 0; i < sub->NumVertices(); ++i) {
        const VertexId cur_v = survivors[comp[i]];
        SideVertexHint h = item.hints[cur_v];
        if (h == SideVertexHint::kStrong && !peel_touched.empty() &&
            peel_touched[cur_v]) {
          h = SideVertexHint::kRecheck;
        }
        sub_hints[i] = h;
      }
    }

    // --- cut search (Alg. 1 line 5) ---
    GlobalCutResult found = GlobalCut(*sub, k, sub_hints, options,
                                      &worker.stats, &worker.cut_scratch);

    if (found.cut.empty()) {
      // sub is k-vertex-connected and maximal within this branch: k-VCC.
      std::vector<VertexId> ids;
      ids.reserve(sub->NumVertices());
      for (VertexId v = 0; v < sub->NumVertices(); ++v) {
        ids.push_back(sub_as_root ? v : sub->LabelOf(v));
      }
      std::sort(ids.begin(), ids.end());
      worker.components.push_back(std::move(ids));
      ++worker.stats.kvccs_found;
      continue;
    }

    // --- overlapped partition (Alg. 1 line 9) ---
    ++worker.stats.overlap_partitions;
    const std::vector<bool>* cut_touched = nullptr;
    if (maintain && found.strong_side_valid) {
      cut_touched = &NeighborsOfSet(*sub, found.cut, worker);
    }
    for (PartitionPiece& piece :
         OverlapPartition(*sub, found.cut, sub_as_root)) {
      std::vector<SideVertexHint> child_hints;
      if (maintain && found.strong_side_valid) {
        child_hints.resize(piece.graph.NumVertices());
        for (VertexId i = 0; i < piece.graph.NumVertices(); ++i) {
          const VertexId sub_v = piece.vertices[i];
          if (!found.strong_side[sub_v]) {
            child_hints[i] = SideVertexHint::kNotStrong;  // Lemma 15.
          } else if ((*cut_touched)[sub_v]) {
            child_hints[i] = SideVertexHint::kRecheck;
          } else {
            child_hints[i] = SideVertexHint::kStrong;  // Lemma 16.
          }
        }
      }
      spawn(WorkItem{std::move(piece.graph), std::move(child_hints)});
    }
  }
}

/// Executes `item` on the scheduler's worker `worker_id`, resubmitting each
/// partition piece as an independent child task.
void RunParallelTask(exec::TaskScheduler& scheduler,
                     std::vector<EnumWorker>& workers, WorkItem item,
                     const Graph* root, std::uint32_t k,
                     const KvccOptions& options, bool maintain,
                     unsigned worker_id) {
  auto spawn = [&](WorkItem&& child) {
    scheduler.Submit([&scheduler, &workers, moved = std::move(child), k,
                      &options, maintain](unsigned wid) mutable {
      RunParallelTask(scheduler, workers, std::move(moved), nullptr, k,
                      options, maintain, wid);
    });
  };
  ProcessItem(std::move(item), root, k, options, maintain, workers[worker_id],
              spawn);
}

}  // namespace

std::vector<PartitionPiece> OverlapPartition(
    const Graph& g, const std::vector<VertexId>& cut, bool as_root) {
  const VertexId n = g.NumVertices();
  std::vector<bool> in_cut(n, false);
  for (VertexId v : cut) in_cut[v] = true;

  std::vector<PartitionPiece> pieces;
  std::vector<bool> seen(n, false);
  std::vector<VertexId> queue;
  for (VertexId start = 0; start < n; ++start) {
    if (seen[start] || in_cut[start]) continue;
    // BFS one component of g - cut.
    queue.clear();
    queue.push_back(start);
    seen[start] = true;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      for (VertexId w : g.Neighbors(queue[head])) {
        if (!seen[w] && !in_cut[w]) {
          seen[w] = true;
          queue.push_back(w);
        }
      }
    }
    PartitionPiece piece;
    piece.vertices.reserve(queue.size() + cut.size());
    piece.vertices.insert(piece.vertices.end(), queue.begin(), queue.end());
    piece.vertices.insert(piece.vertices.end(), cut.begin(), cut.end());
    std::sort(piece.vertices.begin(), piece.vertices.end());
    piece.graph = as_root ? g.InducedSubgraphAsRoot(piece.vertices)
                          : g.InducedSubgraph(piece.vertices);
    pieces.push_back(std::move(piece));
  }
  assert(pieces.size() >= 2 && "OverlapPartition requires a real vertex cut");
  return pieces;
}

Graph MaterializeComponent(const Graph& g,
                           const std::vector<VertexId>& component) {
  return g.InducedSubgraph(component);
}

KvccResult EnumerateKVccs(const Graph& g, std::uint32_t k,
                          const KvccOptions& options) {
  if (k == 0) {
    throw std::invalid_argument("EnumerateKVccs: k must be at least 1");
  }
  const bool maintain =
      options.maintain_side_vertices && options.neighbor_sweep;
  const unsigned num_workers = exec::ResolveThreadCount(options.num_threads);

  KvccResult result;
  if (num_workers <= 1) {
    // Serial path: the scheduler degenerates to an explicit LIFO stack.
    EnumWorker worker;
    std::vector<WorkItem> stack;
    auto spawn = [&stack](WorkItem&& child) {
      stack.push_back(std::move(child));
    };
    ProcessItem(WorkItem{}, &g, k, options, maintain, worker, spawn);
    while (!stack.empty()) {
      WorkItem item = std::move(stack.back());
      stack.pop_back();
      ProcessItem(std::move(item), nullptr, k, options, maintain, worker,
                  spawn);
    }
    result.components = std::move(worker.components);
    result.stats = worker.stats;
  } else {
    exec::TaskScheduler scheduler(num_workers);
    std::vector<EnumWorker> workers(scheduler.num_workers());
    scheduler.Submit([&](unsigned wid) {
      RunParallelTask(scheduler, workers, WorkItem{}, &g, k, options,
                      maintain, wid);
    });
    scheduler.Run();
    std::size_t total = 0;
    for (const EnumWorker& w : workers) total += w.components.size();
    result.components.reserve(total);
    for (EnumWorker& w : workers) {
      for (std::vector<VertexId>& component : w.components) {
        result.components.push_back(std::move(component));
      }
      result.stats.Add(w.stats);
    }
  }

  std::sort(result.components.begin(), result.components.end());
  return result;
}

}  // namespace kvcc
