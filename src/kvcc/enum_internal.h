// Internal core of the k-VCC enumeration engine (paper Algorithm 1),
// shared by the serial path in kvcc_enum.cc and the batch KvccEngine in
// engine.cc. Not part of the public API surface; include kvcc/kvcc_enum.h
// or kvcc/engine.h instead.
//
// The unit of work is a WorkItem (one subgraph of the recursion tree plus
// carried side-vertex verdicts). ProcessItem runs one recursion step on one
// item using only a per-worker EnumScratch, emitting found k-VCCs and
// spawning partition pieces through caller-supplied sinks. The step is a
// pure function of (item/root, k, options): the emitted components and the
// spawned children do not depend on which worker runs it or when, which is
// what makes any parallel interleaving's merged-and-sorted output identical
// to the serial run's.
//
// The emit callback is also the streaming-delivery tap (kvcc/stream.h):
// the drivers either buffer emitted components for a sorted KvccResult
// (EnumerateKVccs, KvccEngine::Wait) or forward them to a ComponentSink
// the moment they fire (EnumerateKVccsStreaming,
// KvccEngine::SubmitStreaming). Within one ProcessItem call the emission
// order is deterministic, and the serial driver's LIFO stack visits
// children last-spawned-first — together that fixes the "serial emission
// order" that KvccOptions::stable_order reproduces under parallelism (the
// engine keys each emit/spawn with a hierarchical path; see
// KvccEngine::EmitKey in kvcc/engine.h). docs/ARCHITECTURE.md has the
// full map.
#ifndef KVCC_KVCC_ENUM_INTERNAL_H_
#define KVCC_KVCC_ENUM_INTERNAL_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "graph/connected_components.h"
#include "graph/graph.h"
#include "graph/k_core.h"
#include "kvcc/global_cut.h"
#include "kvcc/kvcc_enum.h"
#include "kvcc/options.h"
#include "kvcc/side_vertex.h"
#include "kvcc/stats.h"

namespace kvcc::internal {

struct WorkItem {
  Graph graph;
  /// Strong side-vertex carry-over verdicts (Lemmas 15/16); empty = none.
  std::vector<SideVertexHint> hints;
};

/// Per-worker mutable scratch. Workers never share an EnumScratch, so the
/// hot path runs without atomics or locks, and a long-lived engine keeps
/// the probe oracle (CutOracle, including its flow-network topology),
/// certificate, and sweep buffers warm across every job it serves. A
/// default-constructed scratch is always valid.
struct EnumScratch {
  GlobalCutScratch cut_scratch;
  // NeighborsOfSet working set.
  std::vector<bool> nbr_in_set;
  std::vector<bool> nbr_touched;
};

/// Vertices of g with at least one neighbor in `sources` (the 1-hop
/// dilation, excluding the sources themselves unless they qualify). Used
/// for the partition-time maintenance rule: a strong side-vertex verdict
/// survives a partition by cut S iff N(v) ∩ S = ∅ (Lemma 16). Returns a
/// reference into `scratch`, valid until the next call.
inline const std::vector<bool>& NeighborsOfSet(
    const Graph& g, const std::vector<VertexId>& sources,
    EnumScratch& scratch) {
  std::vector<bool>& in_set = scratch.nbr_in_set;
  std::vector<bool>& touched = scratch.nbr_touched;
  in_set.assign(g.NumVertices(), false);
  for (VertexId s : sources) in_set[s] = true;
  touched.assign(g.NumVertices(), false);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (VertexId w : g.Neighbors(v)) {
      if (in_set[w]) {
        touched[v] = true;
        break;
      }
    }
  }
  return touched;
}

/// Runs one step of the Algorithm-1 recursion (k-core peel -> components ->
/// GLOBAL-CUT -> overlapped partition) on one work item. Found k-VCCs are
/// passed to `emit` as sorted id lists; partition pieces are handed to
/// `spawn` as child items; counters accumulate into `stats`. `root` is
/// non-null only for the initial item: the step then reads the caller's
/// graph in place (no identity-label copy) and derived subgraphs seed their
/// label chain at the root via InducedSubgraphAsRoot. `scheduler` (may be
/// null: fully serial) is handed down into GLOBAL-CUT so a single hard
/// subproblem can fan its flow probes out to idle workers as deterministic
/// wavefronts — the missing parallelism level when the recursion tree is
/// too shallow to feed the pool on its own. `cancel` (may be null:
/// uncancellable) is handed down too; GLOBAL-CUT polls it at its probe and
/// wavefront boundaries and unwinds this step by throwing JobCancelled —
/// the driver is responsible for the whole-item boundary check *before*
/// calling in, and for catching JobCancelled and reporting the outcome
/// with the job's partial stats attached.
template <typename Emit, typename Spawn>
void ProcessItem(WorkItem&& item, const Graph* root, std::uint32_t k,
                 const KvccOptions& options, bool maintain,
                 EnumScratch& scratch, KvccStats& stats,
                 exec::TaskScheduler* scheduler, const CancelToken* cancel,
                 Emit&& emit, Spawn&& spawn) {
  const bool as_root = root != nullptr;
  const Graph& cur = as_root ? *root : item.graph;

  // --- k-core peel (Alg. 1 line 2) ---
  const std::vector<VertexId> survivors = KCoreVertices(cur, k);
  ++stats.kcore_rounds;
  stats.kcore_removed_vertices += cur.NumVertices() - survivors.size();
  if (survivors.size() <= k) return;  // A k-VCC needs > k vertices.

  // Peeling invalidates side-vertex verdicts within 2 hops of a removed
  // vertex (common-neighbor counts may have dropped).
  std::vector<bool> peel_touched;
  const bool have_hints = maintain && !item.hints.empty();
  if (have_hints && survivors.size() != cur.NumVertices()) {
    std::vector<bool> survives(cur.NumVertices(), false);
    for (VertexId v : survivors) survives[v] = true;
    std::vector<VertexId> removed;
    removed.reserve(cur.NumVertices() - survivors.size());
    for (VertexId v = 0; v < cur.NumVertices(); ++v) {
      if (!survives[v]) removed.push_back(v);
    }
    peel_touched = TwoHopBall(cur, removed);
  }

  // --- materialize the k-core ---
  // When nothing was peeled the graph already *is* its k-core: reuse the
  // owned graph (or keep reading the root in place) instead of copying.
  const bool full_core = survivors.size() == cur.NumVertices();
  Graph core_owned;
  const Graph* core = nullptr;
  bool core_as_root = false;
  if (full_core && as_root) {
    core = root;
    core_as_root = true;
  } else if (full_core) {
    core_owned = std::move(item.graph);  // `cur` is dead from here on.
    core = &core_owned;
  } else {
    core_owned = as_root ? cur.InducedSubgraphAsRoot(survivors)
                         : cur.InducedSubgraph(survivors);
    core = &core_owned;
  }

  // --- connected components (Alg. 1 line 3) ---
  const std::vector<std::vector<VertexId>> components =
      ConnectedComponents(*core);
  const bool single_component = components.size() == 1;
  for (const std::vector<VertexId>& comp : components) {
    if (comp.size() <= k) continue;  // Cannot contain a k-VCC (Def. 2).

    // Materialize this component; a single component spanning everything
    // reuses `core` the same way `core` reused the item graph.
    Graph sub_owned;
    const Graph* sub = nullptr;
    bool sub_as_root = false;
    if (single_component && core_as_root) {
      sub = core;
      sub_as_root = true;
    } else if (single_component) {
      sub_owned = std::move(core_owned);
      sub = &sub_owned;
    } else if (core_as_root) {
      sub_owned = core->InducedSubgraphAsRoot(comp);
      sub = &sub_owned;
    } else {
      sub_owned = core->InducedSubgraph(comp);
      sub = &sub_owned;
    }

    // core vertex comp[i] corresponds to cur vertex survivors[comp[i]].
    std::vector<SideVertexHint> sub_hints;
    if (have_hints) {
      sub_hints.resize(sub->NumVertices());
      for (VertexId i = 0; i < sub->NumVertices(); ++i) {
        const VertexId cur_v = survivors[comp[i]];
        SideVertexHint h = item.hints[cur_v];
        if (h == SideVertexHint::kStrong && !peel_touched.empty() &&
            peel_touched[cur_v]) {
          h = SideVertexHint::kRecheck;
        }
        sub_hints[i] = h;
      }
    }

    // --- cut search (Alg. 1 line 5) ---
    GlobalCutResult found = GlobalCut(*sub, k, sub_hints, options, &stats,
                                      &scratch.cut_scratch, scheduler,
                                      cancel);

    if (found.cut.empty()) {
      // sub is k-vertex-connected and maximal within this branch: k-VCC.
      std::vector<VertexId> ids;
      ids.reserve(sub->NumVertices());
      for (VertexId v = 0; v < sub->NumVertices(); ++v) {
        ids.push_back(sub_as_root ? v : sub->LabelOf(v));
      }
      std::sort(ids.begin(), ids.end());
      emit(std::move(ids));
      ++stats.kvccs_found;
      continue;
    }

    // --- overlapped partition (Alg. 1 line 9) ---
    ++stats.overlap_partitions;
    // The strong-side verdicts live in the cut scratch (GlobalCutResult
    // documents this); they stay valid until the next GlobalCut call, and
    // every use below happens before this loop iteration ends.
    const std::vector<bool>& strong_side = scratch.cut_scratch.side.strong;
    const std::vector<bool>* cut_touched = nullptr;
    if (maintain && found.strong_side_valid) {
      cut_touched = &NeighborsOfSet(*sub, found.cut, scratch);
    }
    for (PartitionPiece& piece :
         OverlapPartition(*sub, found.cut, sub_as_root)) {
      std::vector<SideVertexHint> child_hints;
      if (maintain && found.strong_side_valid) {
        child_hints.resize(piece.graph.NumVertices());
        for (VertexId i = 0; i < piece.graph.NumVertices(); ++i) {
          const VertexId sub_v = piece.vertices[i];
          if (!strong_side[sub_v]) {
            child_hints[i] = SideVertexHint::kNotStrong;  // Lemma 15.
          } else if ((*cut_touched)[sub_v]) {
            child_hints[i] = SideVertexHint::kRecheck;
          } else {
            child_hints[i] = SideVertexHint::kStrong;  // Lemma 16.
          }
        }
      }
      spawn(WorkItem{std::move(piece.graph), std::move(child_hints)});
    }
  }
}

}  // namespace kvcc::internal

#endif  // KVCC_KVCC_ENUM_INTERNAL_H_
