// Internal core of the k-VCC enumeration engine (paper Algorithm 1),
// shared by the serial path in kvcc_enum.cc and the batch KvccEngine in
// engine.cc. Not part of the public API surface; include kvcc/kvcc_enum.h
// or kvcc/engine.h instead.
//
// The unit of work is a WorkItem (one subgraph of the recursion tree plus
// carried side-vertex verdicts). ProcessItem runs one recursion step on one
// item using only a per-worker EnumScratch, emitting found k-VCCs and
// spawning partition pieces through caller-supplied sinks. The step is a
// pure function of (item/root, k, options): the emitted components and the
// spawned children do not depend on which worker runs it or when, which is
// what makes any parallel interleaving's merged-and-sorted output identical
// to the serial run's.
//
// Preprocessing inside the step (peel + component split) runs the flat
// kernels of graph/k_core.h and graph/preprocess.h. With
// KvccOptions::fused_prune (the default) the step never materializes the
// whole k-core as an intermediate Graph: the peel's removal marks mask the
// Afforest component kernel, and each component's induced subgraph is built
// directly from the working graph through the pooled GraphBuilder —
// emitting upper-triangle edges in lexicographic order so BuildInto takes
// its sorted fast path. The staged reference path (fused_prune off)
// materializes core-then-components exactly like the pre-fusion code and
// must stay byte-identical; preprocessing_test pins the equivalence.
//
// The emit callback is also the streaming-delivery tap (kvcc/stream.h):
// the drivers either buffer emitted components for a sorted KvccResult
// (EnumerateKVccs, KvccEngine::Wait) or forward them to a ComponentSink
// the moment they fire (EnumerateKVccsStreaming,
// KvccEngine::SubmitStreaming). Within one ProcessItem call the emission
// order is deterministic, and the serial driver's LIFO stack visits
// children last-spawned-first — together that fixes the "serial emission
// order" that KvccOptions::stable_order reproduces under parallelism (the
// engine keys each emit/spawn with a hierarchical path; see
// KvccEngine::EmitKey in kvcc/engine.h). docs/ARCHITECTURE.md has the
// full map.
#ifndef KVCC_KVCC_ENUM_INTERNAL_H_
#define KVCC_KVCC_ENUM_INTERNAL_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/connected_components.h"
#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "graph/k_core.h"
#include "graph/preprocess.h"
#include "kvcc/global_cut.h"
#include "kvcc/job_control.h"
#include "kvcc/kvcc_enum.h"
#include "kvcc/options.h"
#include "kvcc/side_vertex.h"
#include "kvcc/stats.h"

namespace kvcc::internal {

struct WorkItem {
  Graph graph;
  /// Strong side-vertex carry-over verdicts (Lemmas 15/16); empty = none.
  std::vector<SideVertexHint> hints;
};

/// Per-worker mutable scratch. Workers never share an EnumScratch, so the
/// hot path runs without atomics or locks, and a long-lived engine keeps
/// the probe oracle (CutOracle, including its flow-network topology),
/// certificate, sweep buffers, and the prune-pipeline scratch warm across
/// every job it serves. A default-constructed scratch is always valid.
struct EnumScratch {
  GlobalCutScratch cut_scratch;
  // NeighborsOfSet working set.
  std::vector<bool> nbr_in_set;
  std::vector<bool> nbr_touched;
  // Fused prune pipeline: peel marks + Afforest labels + component
  // grouping, the direct component-subgraph builder, and its output pool
  // (cycled through BuildInto, so the warm path stays off the allocator).
  FusedPruneScratch prune;
  GraphBuilder sub_builder;
  Graph sub_pool;
  std::vector<VertexId> local_id;  // cur vertex -> component-local id
  std::vector<VertexId> removed;   // peel casualties (hint invalidation)
};

/// Vertices of g with at least one neighbor in `sources` (the 1-hop
/// dilation, excluding the sources themselves unless they qualify). Used
/// for the partition-time maintenance rule: a strong side-vertex verdict
/// survives a partition by cut S iff N(v) ∩ S = ∅ (Lemma 16). Returns a
/// reference into `scratch`, valid until the next call.
inline const std::vector<bool>& NeighborsOfSet(
    const Graph& g, const std::vector<VertexId>& sources,
    EnumScratch& scratch) {
  std::vector<bool>& in_set = scratch.nbr_in_set;
  std::vector<bool>& touched = scratch.nbr_touched;
  in_set.assign(g.NumVertices(), false);
  for (VertexId s : sources) in_set[s] = true;
  touched.assign(g.NumVertices(), false);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (VertexId w : g.Neighbors(v)) {
      if (in_set[w]) {
        touched[v] = true;
        break;
      }
    }
  }
  return touched;
}

/// Runs one step of the Algorithm-1 recursion (k-core peel -> components ->
/// GLOBAL-CUT -> overlapped partition) on one work item. Found k-VCCs are
/// passed to `emit` as sorted id lists; partition pieces are handed to
/// `spawn` as child items; counters accumulate into `stats`. `root` is
/// non-null only for the initial item: the step then reads the caller's
/// graph in place (no identity-label copy) and derived subgraphs seed their
/// label chain at the root via subset labeling. `scheduler` (may be null:
/// fully serial) is handed down into the preprocessing kernels and into
/// GLOBAL-CUT so a single hard subproblem can fan out to idle workers —
/// the missing parallelism level when the recursion tree is too shallow to
/// feed the pool on its own. `cancel` (may be null: uncancellable) is
/// handed down too; GLOBAL-CUT polls it at its probe and wavefront
/// boundaries and unwinds this step by throwing JobCancelled — the driver
/// is responsible for the whole-item boundary check *before* calling in,
/// and for catching JobCancelled and reporting the outcome with the job's
/// partial stats attached.
template <typename Emit, typename Spawn>
void ProcessItem(WorkItem&& item, const Graph* root, std::uint32_t k,
                 const KvccOptions& options, bool maintain,
                 EnumScratch& scratch, KvccStats& stats,
                 exec::TaskScheduler* scheduler, const CancelToken* cancel,
                 Emit&& emit, Spawn&& spawn) {
  const bool as_root = root != nullptr;
  const Graph* cur = as_root ? root : &item.graph;
  const exec::TaskPriority task_priority = ToTaskPriority(options.priority);
  FusedPruneScratch& prune = scratch.prune;

  // --- k-core peel (Alg. 1 line 2), bucket kernel ---
  stats.kcore_bucket_rounds += KCoreVerticesInto(
      *cur, k, scheduler, task_priority, prune.kcore, prune.survivors);
  const std::vector<VertexId>& survivors = prune.survivors;
  ++stats.kcore_rounds;
  stats.kcore_removed_vertices += cur->NumVertices() - survivors.size();
  if (survivors.size() <= k) return;  // A k-VCC needs > k vertices.
  const bool full_core = survivors.size() == cur->NumVertices();

  // Peeling invalidates side-vertex verdicts within 2 hops of a removed
  // vertex (common-neighbor counts may have dropped).
  std::vector<bool> peel_touched;
  const bool have_hints = maintain && !item.hints.empty();
  if (have_hints && !full_core) {
    const PeelMask mask = prune.kcore.Mask();
    std::vector<VertexId>& removed = scratch.removed;
    if (removed.capacity() < cur->NumVertices()) {
      removed.reserve(cur->NumVertices());
    }
    removed.clear();
    for (VertexId v = 0; v < cur->NumVertices(); ++v) {
      if (mask.Removed(v)) removed.push_back(v);
    }
    peel_touched = TwoHopBall(*cur, removed);
  }

  // Maps a component subgraph's vertex i (= cur vertex cur_of(i)) to its
  // carried hint, degrading peel-touched strong verdicts to recheck.
  const auto build_hints = [&](auto&& cur_of, VertexId sub_n,
                               std::vector<SideVertexHint>& out_hints) {
    if (!have_hints) return;
    out_hints.resize(sub_n);
    for (VertexId i = 0; i < sub_n; ++i) {
      const VertexId cur_v = cur_of(i);
      SideVertexHint h = item.hints[cur_v];
      if (h == SideVertexHint::kStrong && !peel_touched.empty() &&
          peel_touched[cur_v]) {
        h = SideVertexHint::kRecheck;
      }
      out_hints[i] = h;
    }
  };

  // Shared recursion tail (Alg. 1 lines 5-9): GLOBAL-CUT on one component
  // subgraph, then emit it as a k-VCC or partition along the cut.
  const auto run_cut = [&](const Graph& sub, bool sub_is_root,
                           const std::vector<SideVertexHint>& sub_hints) {
    GlobalCutResult found = GlobalCut(sub, k, sub_hints, options, &stats,
                                      &scratch.cut_scratch, scheduler,
                                      cancel);
    if (found.cut.empty()) {
      // sub is k-vertex-connected and maximal within this branch: k-VCC.
      std::vector<VertexId> ids;
      ids.reserve(sub.NumVertices());
      for (VertexId v = 0; v < sub.NumVertices(); ++v) {
        ids.push_back(sub_is_root ? v : sub.LabelOf(v));
      }
      std::sort(ids.begin(), ids.end());
      emit(std::move(ids));
      ++stats.kvccs_found;
      return;
    }

    // --- overlapped partition (Alg. 1 line 9) ---
    ++stats.overlap_partitions;
    // The strong-side verdicts live in the cut scratch (GlobalCutResult
    // documents this); they stay valid until the next GlobalCut call, and
    // every use below happens before this call returns.
    const std::vector<bool>& strong_side = scratch.cut_scratch.side.strong;
    const std::vector<bool>* cut_touched = nullptr;
    if (maintain && found.strong_side_valid) {
      cut_touched = &NeighborsOfSet(sub, found.cut, scratch);
    }
    for (PartitionPiece& piece :
         OverlapPartition(sub, found.cut, sub_is_root)) {
      std::vector<SideVertexHint> child_hints;
      if (maintain && found.strong_side_valid) {
        child_hints.resize(piece.graph.NumVertices());
        for (VertexId i = 0; i < piece.graph.NumVertices(); ++i) {
          const VertexId sub_v = piece.vertices[i];
          if (!strong_side[sub_v]) {
            child_hints[i] = SideVertexHint::kNotStrong;  // Lemma 15.
          } else if ((*cut_touched)[sub_v]) {
            child_hints[i] = SideVertexHint::kRecheck;
          } else {
            child_hints[i] = SideVertexHint::kStrong;  // Lemma 16.
          }
        }
      }
      spawn(WorkItem{std::move(piece.graph), std::move(child_hints)});
    }
  };

  if (options.fused_prune) {
    // --- fused component split (Alg. 1 line 3) ---
    // The peel marks mask the Afforest kernel, and each component's
    // subgraph is built straight from `cur` — no whole-core intermediate.
    const PeelMask mask = prune.kcore.Mask();
    stats.cc_hooks += AfforestComponentsInto(
        *cur, &mask, scheduler, task_priority, prune.cc, prune.labeling);
    GroupSurvivorsByComponent(prune);
    const std::uint32_t ncomp = prune.labeling.count;
    const bool single_component = ncomp == 1;
    if (!full_core && ncomp > 1) {
      // Only this shape would have materialized a whole-core Graph that no
      // component reuses on the staged path.
      ++stats.prune_fused_passes;
    }
    for (std::uint32_t c = 0; c < ncomp; ++c) {
      const std::span<const VertexId> comp{
          prune.comp_vertices.data() + prune.comp_offsets[c],
          static_cast<std::size_t>(prune.comp_offsets[c + 1] -
                                   prune.comp_offsets[c])};
      if (comp.size() <= k) continue;  // Cannot contain a k-VCC (Def. 2).
      std::vector<SideVertexHint> sub_hints;
      build_hints([&](VertexId i) { return comp[i]; },
                  static_cast<VertexId>(comp.size()), sub_hints);
      if (full_core && single_component) {
        // The working graph already is the single component: reuse it
        // (read the root in place / adopt the owned graph) — the same
        // zero-copy fast path the staged code takes.
        if (as_root) {
          run_cut(*root, /*sub_is_root=*/true, sub_hints);
        } else {
          const Graph sub_owned = std::move(item.graph);  // `cur` dies.
          run_cut(sub_owned, /*sub_is_root=*/false, sub_hints);
        }
        continue;
      }
      // Direct induced-subgraph build: component members get local ids in
      // ascending cur order, and only upper-triangle (lw > i) alive
      // neighbors are emitted — lexicographically sorted, so BuildInto
      // skips its edge sort. An alive neighbor of a component member is in
      // the same component by definition, so local_id[w] is always bound.
      std::vector<VertexId>& local = scratch.local_id;
      if (local.size() < cur->NumVertices()) local.resize(cur->NumVertices());
      for (std::size_t i = 0; i < comp.size(); ++i) {
        local[comp[i]] = static_cast<VertexId>(i);
      }
      GraphBuilder& builder = scratch.sub_builder;
      builder.EnsureVertex(static_cast<VertexId>(comp.size()) - 1);
      for (std::size_t i = 0; i < comp.size(); ++i) {
        const VertexId li = static_cast<VertexId>(i);
        for (const VertexId w : cur->Neighbors(comp[i])) {
          if (mask.Removed(w)) continue;
          const VertexId lw = local[w];
          if (lw > li) builder.AddEdge(li, lw);
        }
      }
      builder.SetLabelsFromSubset(*cur, comp, as_root);
      builder.BuildInto(scratch.sub_pool);
      run_cut(scratch.sub_pool, /*sub_is_root=*/false, sub_hints);
    }
    return;
  }

  // --- staged reference path (fused_prune off) ---
  // Materialize the whole k-core, BFS-label its components, then induce
  // each component from the core. Kept as the ablation baseline the fused
  // path is tested against; cc_hooks is booked in closed form (each hook
  // of the union kernel retires exactly one root, so the total is always
  // survivors - components).
  Graph core_owned;
  const Graph* core = nullptr;
  bool core_as_root = false;
  if (full_core && as_root) {
    core = root;
    core_as_root = true;
  } else if (full_core) {
    core_owned = std::move(item.graph);  // `cur` is dead from here on.
    core = &core_owned;
  } else {
    core_owned = as_root ? cur->InducedSubgraphAsRoot(survivors)
                         : cur->InducedSubgraph(survivors);
    core = &core_owned;
  }

  const std::vector<std::vector<VertexId>> components =
      ConnectedComponents(*core);
  stats.cc_hooks += survivors.size() - components.size();
  const bool single_component = components.size() == 1;
  for (const std::vector<VertexId>& comp : components) {
    if (comp.size() <= k) continue;  // Cannot contain a k-VCC (Def. 2).

    // Materialize this component; a single component spanning everything
    // reuses `core` the same way `core` reused the item graph.
    Graph sub_owned;
    const Graph* sub = nullptr;
    bool sub_as_root = false;
    if (single_component && core_as_root) {
      sub = core;
      sub_as_root = true;
    } else if (single_component) {
      sub_owned = std::move(core_owned);
      sub = &sub_owned;
    } else if (core_as_root) {
      sub_owned = core->InducedSubgraphAsRoot(comp);
      sub = &sub_owned;
    } else {
      sub_owned = core->InducedSubgraph(comp);
      sub = &sub_owned;
    }

    // core vertex comp[i] corresponds to cur vertex survivors[comp[i]].
    std::vector<SideVertexHint> sub_hints;
    build_hints([&](VertexId i) { return survivors[comp[i]]; },
                sub->NumVertices(), sub_hints);
    run_cut(*sub, sub_as_root, sub_hints);
  }
}

}  // namespace kvcc::internal

#endif  // KVCC_KVCC_ENUM_INTERNAL_H_
