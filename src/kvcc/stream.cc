#include "kvcc/stream.h"

#include <stdexcept>
#include <utility>

namespace kvcc {

ComponentSink::~ComponentSink() = default;

void ComponentSink::OnError(std::exception_ptr /*error*/) {}

ResultStream::ResultStream(std::shared_ptr<internal::StreamChannel> channel)
    : channel_(std::move(channel)) {}

ResultStream& ResultStream::operator=(ResultStream&& other) noexcept {
  if (this != &other) {
    Abandon();
    channel_ = std::move(other.channel_);
  }
  return *this;
}

ResultStream::~ResultStream() { Abandon(); }

void ResultStream::Abandon() {
  if (!channel_) return;
  {
    std::lock_guard<std::mutex> lock(channel_->mutex);
    channel_->abandoned = true;
    channel_->queue.clear();
  }
  // Cancel the job itself, not just the delivery: the remaining recursion
  // short-circuits at its next task / probe boundary instead of draining,
  // and a producer blocked on a bounded channel wakes and drops.
  channel_->cancel.RequestCancel();
  channel_->cv.notify_all();
  // Join the job before returning. A detached SubmitStream job reads the
  // caller's Graph through a raw pointer in its root task; if Abandon()
  // returned while that task was still running, the caller could destroy
  // the graph under it. `complete` is published by the job's final task
  // (after every task has retired), so waiting for it here makes
  // "stream destroyed" imply "no worker touches the job's inputs".
  std::unique_lock<std::mutex> lock(channel_->mutex);
  channel_->cv.wait(lock, [&] { return channel_->complete; });
}

std::optional<StreamedComponent> ResultStream::Next() {
  if (!channel_) {
    throw std::logic_error("ResultStream::Next: stream was moved from");
  }
  std::unique_lock<std::mutex> lock(channel_->mutex);
  channel_->cv.wait(lock,
                    [&] { return !channel_->queue.empty() || channel_->complete; });
  if (!channel_->queue.empty()) {
    StreamedComponent component = std::move(channel_->queue.front());
    channel_->queue.pop_front();
    if (channel_->limit != 0) {
      // Freed a bounded slot: wake a producer blocked on the full queue.
      channel_->cv.notify_all();
    }
    return component;
  }
  if (channel_->error) std::rethrow_exception(channel_->error);
  return std::nullopt;
}

std::size_t ResultStream::BufferedComponents() const {
  if (!channel_) {
    throw std::logic_error(
        "ResultStream::BufferedComponents: stream was moved from");
  }
  std::lock_guard<std::mutex> lock(channel_->mutex);
  return channel_->queue.size();
}

std::uint64_t ResultStream::BackpressureBlocks() const {
  if (!channel_) {
    throw std::logic_error(
        "ResultStream::BackpressureBlocks: stream was moved from");
  }
  std::lock_guard<std::mutex> lock(channel_->mutex);
  return channel_->backpressure_blocks;
}

const KvccStats& ResultStream::Stats() const {
  if (!channel_) {
    throw std::logic_error("ResultStream::Stats: stream was moved from");
  }
  std::lock_guard<std::mutex> lock(channel_->mutex);
  if (!channel_->complete) {
    throw std::logic_error(
        "ResultStream::Stats: stream not finished; drain with Next() until "
        "it returns nullopt first");
  }
  // A failed job has no final stats; surface the recorded error (the same
  // one Next() rethrows) instead of a misleading drain hint.
  if (channel_->error) std::rethrow_exception(channel_->error);
  return channel_->stats;
}

}  // namespace kvcc
