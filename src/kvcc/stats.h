// Execution counters for the k-VCC algorithms.
//
// These drive the paper's Table 2 (proportion of phase-1 vertices handled by
// each sweep rule) and the micro-benchmarks; they also make regressions in
// pruning effectiveness visible in tests.
#ifndef KVCC_KVCC_STATS_H_
#define KVCC_KVCC_STATS_H_

#include <cstdint>
#include <string>

namespace kvcc {

struct KvccStats {
  // --- phase-1 vertex outcomes (the paper's Table 2 categories) ---
  /// Vertices skipped because a strong side-vertex sweep covered them
  /// (neighbor sweep rule 1).
  std::uint64_t phase1_pruned_ns1 = 0;
  /// Vertices skipped because their deposit reached k (neighbor sweep
  /// rule 2).
  std::uint64_t phase1_pruned_ns2 = 0;
  /// Vertices skipped by a group sweep (rules 1 and 2 of Section 5.2).
  std::uint64_t phase1_pruned_gs = 0;
  /// Vertices that required a real max-flow test ("Non-Pru").
  std::uint64_t phase1_tested_flow = 0;
  /// Vertices adjacent to the source: locally k-connected for free
  /// (Lemma 5), no flow run.
  std::uint64_t phase1_tested_trivial = 0;

  // --- phase-2 pair outcomes ---
  std::uint64_t phase2_pairs_tested = 0;
  std::uint64_t phase2_pairs_skipped_group = 0;     // group sweep rule 3
  std::uint64_t phase2_pairs_skipped_adjacent = 0;  // Lemma 5
  std::uint64_t phase2_pairs_skipped_common = 0;    // Lemma 13

  // --- framework-level counters ---
  std::uint64_t global_cut_calls = 0;
  std::uint64_t loc_cut_flow_calls = 0;
  std::uint64_t overlap_partitions = 0;
  std::uint64_t kvccs_found = 0;
  std::uint64_t kcore_rounds = 0;
  /// Vertices deleted by k-core peeling, summed over all rounds.
  std::uint64_t kcore_removed_vertices = 0;

  // --- certificate / side-vertex instrumentation ---
  std::uint64_t certificate_edges_input = 0;
  std::uint64_t certificate_edges_kept = 0;
  std::uint64_t side_groups_found = 0;
  std::uint64_t strong_side_vertices_found = 0;
  std::uint64_t strong_side_checks_run = 0;
  std::uint64_t strong_side_verdicts_reused = 0;
  /// Times a certificate cut failed to disconnect the working graph and the
  /// search was re-run without the certificate. Must stay 0; see
  /// KvccOptions::verify_cuts.
  std::uint64_t certificate_cut_fallbacks = 0;

  // --- intra-GLOBAL-CUT wavefront diagnostics ---
  // A wavefront speculatively probes the next batch of phase-1 vertices /
  // phase-2 pairs concurrently and then commits serially, so some probes
  // are redundant: the serial loop would have pruned the vertex (an earlier
  // commit swept it) or stopped before the pair (an earlier probe found the
  // cut). These counters quantify that waste; they stay 0 on serial runs
  // and are the only stats fields that differ between a serial and an
  // intra-cut-parallel run of the same input (everything above is replay-
  // identical by construction).
  std::uint64_t probe_wavefronts = 0;
  std::uint64_t probes_launched = 0;
  /// Probes whose vertex was swept between launch and its serial commit.
  std::uint64_t probes_wasted_swept = 0;
  /// Probes past the point where the committed cut ended the search.
  std::uint64_t probes_wasted_after_cut = 0;

  /// Total phase-1 vertices considered (all categories above).
  std::uint64_t Phase1Total() const {
    return phase1_pruned_ns1 + phase1_pruned_ns2 + phase1_pruned_gs +
           phase1_tested_flow + phase1_tested_trivial;
  }

  /// Share of phase-1 vertices in [0,1] for each Table-2 row; 0 when no
  /// vertex was processed.
  double Ns1Share() const;
  double Ns2Share() const;
  double GsShare() const;
  double NonPrunedShare() const;

  void Add(const KvccStats& other);

  /// Multi-line human-readable dump.
  std::string ToString() const;
};

}  // namespace kvcc

#endif  // KVCC_KVCC_STATS_H_
