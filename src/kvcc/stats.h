// Execution counters for the k-VCC algorithms.
//
// These drive the paper's Table 2 (proportion of phase-1 vertices handled by
// each sweep rule) and the micro-benchmarks; they also make regressions in
// pruning effectiveness visible in tests. A field glossary with the paper
// references lives in README.md ("KvccStats field glossary").
#ifndef KVCC_KVCC_STATS_H_
#define KVCC_KVCC_STATS_H_

#include <cstdint>
#include <string>

/// \file
/// \brief KvccStats: execution counters (Table-2 sweep categories, flow
/// tests, certificate compression, wavefront probe waste) carried with
/// every enumeration result.

namespace kvcc {

/// \brief Execution counters accumulated over one enumeration run (or one
/// engine job).
///
/// Every field except the probe-waste diagnostics is byte-identical across
/// thread counts for the same (graph, k, options) — the parallel paths
/// replay the serial decision sequence exactly.
struct KvccStats {
  // --- phase-1 vertex outcomes (the paper's Table 2 categories) ---

  /// \brief Vertices skipped because a strong side-vertex sweep covered
  /// them (neighbor sweep rule 1).
  std::uint64_t phase1_pruned_ns1 = 0;
  /// \brief Vertices skipped because their deposit reached k (neighbor
  /// sweep rule 2).
  std::uint64_t phase1_pruned_ns2 = 0;
  /// \brief Vertices skipped by a group sweep (rules 1 and 2 of Section
  /// 5.2).
  std::uint64_t phase1_pruned_gs = 0;
  /// \brief Vertices that required a real max-flow test ("Non-Pru").
  std::uint64_t phase1_tested_flow = 0;
  /// \brief Vertices adjacent to the source: locally k-connected for free
  /// (Lemma 5), no flow run.
  std::uint64_t phase1_tested_trivial = 0;

  // --- phase-2 pair outcomes ---

  /// \brief Neighbor pairs of the source that ran a real max-flow test.
  std::uint64_t phase2_pairs_tested = 0;
  /// \brief Pairs skipped because both endpoints share a side-group
  /// (group sweep rule 3).
  std::uint64_t phase2_pairs_skipped_group = 0;
  /// \brief Pairs skipped because the endpoints are adjacent (Lemma 5).
  std::uint64_t phase2_pairs_skipped_adjacent = 0;
  /// \brief Pairs skipped for sharing >= k common neighbors (Lemma 13).
  std::uint64_t phase2_pairs_skipped_common = 0;

  // --- framework-level counters ---

  /// \brief GLOBAL-CUT invocations over the whole recursion.
  std::uint64_t global_cut_calls = 0;
  /// \brief LOC-CUT max-flow computations (phase 1 + phase 2).
  std::uint64_t loc_cut_flow_calls = 0;
  /// \brief Overlapped partitions performed (Alg. 1 line 9).
  std::uint64_t overlap_partitions = 0;
  /// \brief k-VCCs emitted.
  std::uint64_t kvccs_found = 0;
  /// \brief k-core peels run (one per processed work item).
  std::uint64_t kcore_rounds = 0;
  /// \brief Vertices deleted by k-core peeling, summed over all rounds.
  std::uint64_t kcore_removed_vertices = 0;

  // --- preprocessing-kernel counters (flat-parallel prune pipeline) ---
  // All three are replay-identical across thread counts.
  // kcore_bucket_rounds and cc_hooks are also identical between the fused
  // and staged prune paths: the bucket peel's round count is the peel
  // depth of the graph, and the hook count of the min-wins Afforest
  // union equals (survivors - components) — an identity the staged path
  // computes in closed form and tests assert against the fused kernel's
  // live count. prune_fused_passes is a fused-path diagnostic: it stays 0
  // when KvccOptions::fused_prune is off (like the probe-waste counters
  // on serial runs, it is the one documented fused-vs-staged difference).

  /// \brief Level-synchronous rounds of the bucket k-core peel, summed
  /// over all work items (the peel depth of each processed subgraph).
  std::uint64_t kcore_bucket_rounds = 0;
  /// \brief Successful CAS hooks of the Afforest component kernel. Each
  /// hook retires exactly one union-find root, so per work item this is
  /// survivors - components regardless of interleaving; the staged path
  /// books the same closed form.
  std::uint64_t cc_hooks = 0;
  /// \brief Fused prune passes that actually elided an intermediate
  /// whole-core materialization (0 when fused_prune is off).
  std::uint64_t prune_fused_passes = 0;

  // --- certificate / side-vertex instrumentation ---

  /// \brief Edges of the working graphs fed to certificate construction.
  std::uint64_t certificate_edges_input = 0;
  /// \brief Edges the sparse certificates kept (<= k * n per graph).
  std::uint64_t certificate_edges_kept = 0;
  /// \brief Side-groups discovered from the certificate forests (Section
  /// 5.2).
  std::uint64_t side_groups_found = 0;
  /// \brief Vertices verified to be strong side-vertices.
  std::uint64_t strong_side_vertices_found = 0;
  /// \brief Strong-side checks actually executed (Theta(d^2) pair work
  /// each).
  std::uint64_t strong_side_checks_run = 0;
  /// \brief Checks skipped by reusing a carried verdict (Lemmas 15/16).
  std::uint64_t strong_side_verdicts_reused = 0;
  /// \brief Times a certificate cut failed to disconnect the working
  /// graph and the search was re-run without the certificate. Must stay
  /// 0; see KvccOptions::verify_cuts.
  std::uint64_t certificate_cut_fallbacks = 0;

  // --- intra-GLOBAL-CUT wavefront diagnostics ---
  // A wavefront speculatively probes the next batch of phase-1 vertices /
  // phase-2 pairs concurrently and then commits serially, so some probes
  // are redundant: the serial loop would have pruned the vertex (an earlier
  // commit swept it) or stopped before the pair (an earlier probe found the
  // cut). These counters quantify that waste; they stay 0 on serial runs
  // and are the only stats fields that differ between a serial and an
  // intra-cut-parallel run of the same input (everything above is replay-
  // identical by construction).

  /// \brief Wavefront batches formed across all GLOBAL-CUT calls.
  std::uint64_t probe_wavefronts = 0;
  /// \brief Speculative flow probes launched inside wavefronts.
  std::uint64_t probes_launched = 0;
  /// \brief Probes whose vertex was swept between launch and its serial
  /// commit.
  std::uint64_t probes_wasted_swept = 0;
  /// \brief Probes past the point where the committed cut ended the
  /// search.
  std::uint64_t probes_wasted_after_cut = 0;

  // --- cut-oracle routing / work profile ---
  // Per-probe accounting from the pluggable probe engine (see
  // KvccOptions::cut_oracle and docs/ARCHITECTURE.md, "The CutOracle
  // seam"). Serial runs are replay-identical; wavefront runs add the work
  // of speculative probes, so — like the waste counters above — these are
  // deterministic per (input, options, thread count) but not across
  // thread counts.

  /// \brief Probes answered by the local-search (LocalVC) engine,
  /// including those that fell back. 0 under the Dinic oracle; under
  /// Hybrid this counts the probes routed to local search.
  std::uint64_t probes_localvc = 0;
  /// \brief Local-search probes whose doubling budgets all ran out and
  /// that Dinic completed from the partial flow.
  std::uint64_t probes_localvc_fallback = 0;
  /// \brief Flow-network arcs inspected across all probes (every oracle
  /// reports it). The LocalVC speedup is visible here before it is
  /// visible in wall-clock.
  std::uint64_t probe_edges_touched = 0;

  // --- dynamic-graph maintenance counters (kvcc/incremental.h) ---
  // Booked by IncrementalKvcc::Update. Replay-identical: a given
  // mutation sequence produces the same totals at every thread count and
  // with or without an engine — the dirty-region analysis is a pure
  // function of (old levels, batch, new graph). They stay 0 on static
  // enumeration runs.

  /// \brief Effective edge deltas consumed by incremental updates
  /// (inserts of absent edges + deletes of present ones).
  std::uint64_t delta_edges_applied = 0;
  /// \brief Old hierarchy components invalidated (not carried verbatim)
  /// across all updates; strictly below the component total on localized
  /// edits.
  std::uint64_t dirty_components = 0;
  /// \brief Dirty regions re-enumerated (full rebuilds count as one).
  std::uint64_t incremental_reruns = 0;

  // --- job-control diagnostics (PR 5) ---
  // Like the wavefront counters these are *not* replay-identical: they
  // depend on when a cancel trigger or a slow consumer was observed, which
  // is timing. They stay 0 on jobs that were never cancelled and never
  // backpressured.

  /// \brief Recursion work items short-circuited whole at the
  /// task-boundary cancellation check (their subgraphs were never
  /// processed).
  std::uint64_t tasks_cancelled = 0;
  /// \brief GLOBAL-CUT searches abandoned mid-flight at a flow-probe or
  /// wavefront-batch boundary by cancellation.
  std::uint64_t cuts_cancelled = 0;
  /// \brief Components whose delivery blocked on a full bounded stream
  /// channel (KvccOptions::stream_buffer_limit) before being accepted.
  std::uint64_t stream_backpressure_blocks = 0;
  /// \brief High-water mark of undelivered components held in the stream
  /// channel; with stream_buffer_limit > 0 this never exceeds the limit.
  std::uint64_t stream_peak_buffered = 0;

  /// \brief Total phase-1 vertices considered (all categories above).
  /// \return Sum of the five phase-1 outcome counters.
  std::uint64_t Phase1Total() const {
    return phase1_pruned_ns1 + phase1_pruned_ns2 + phase1_pruned_gs +
           phase1_tested_flow + phase1_tested_trivial;
  }

  /// \brief Share of phase-1 vertices pruned by neighbor sweep rule 1.
  /// \return Value in [0,1]; 0 when no vertex was processed.
  double Ns1Share() const;
  /// \brief Share of phase-1 vertices pruned by neighbor sweep rule 2.
  /// \return Value in [0,1]; 0 when no vertex was processed.
  double Ns2Share() const;
  /// \brief Share of phase-1 vertices pruned by group sweeps.
  /// \return Value in [0,1]; 0 when no vertex was processed.
  double GsShare() const;
  /// \brief Share of phase-1 vertices that needed a flow test or were
  /// trivially connected ("Non-Pru" in Table 2).
  /// \return Value in [0,1]; 0 when no vertex was processed.
  double NonPrunedShare() const;

  /// \brief Accumulates another run's (or task's) counters into this one.
  /// \param other The counters to add field-by-field.
  void Add(const KvccStats& other);

  /// \brief Multi-line human-readable dump.
  /// \return One line per counter group.
  std::string ToString() const;

  /// \brief Single JSON object with every counter, for NDJSON streaming
  /// output (`kvcc stream`) and bench snapshots.
  /// \return A compact JSON object string.
  std::string ToJson() const;
};

}  // namespace kvcc

#endif  // KVCC_KVCC_STATS_H_
