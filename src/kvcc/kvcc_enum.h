// KVCC-ENUM (paper Algorithm 1): enumerate all k-vertex connected
// components of a graph by recursive overlapped partitioning.
//
// Outline: peel the k-core; for every connected component, search for a
// vertex cut with fewer than k vertices (GLOBAL-CUT); components without
// such a cut are k-VCCs; otherwise the cut S is *duplicated* into every
// component of G - S (OVERLAP-PARTITION) and the pieces are processed
// recursively. Correctness: paper Theorem 4; the number of partitions and
// of k-VCCs are both < n/2 (Lemma 10, Theorem 6), giving polynomial total
// time O(min(n^1/2, k) * m * (n + delta^2) * n) (Theorem 7).
#ifndef KVCC_KVCC_KVCC_ENUM_H_
#define KVCC_KVCC_KVCC_ENUM_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "kvcc/options.h"
#include "kvcc/stats.h"

namespace kvcc {

struct KvccResult {
  /// All k-VCCs, each as a sorted list of vertex ids of the *input* graph;
  /// the list of components is sorted lexicographically. (If the input
  /// graph carries labels, map with Graph::LabelsOf.)
  std::vector<std::vector<VertexId>> components;

  /// Execution counters accumulated over the whole run.
  KvccStats stats;
};

/// Enumerates all k-VCCs of g (k >= 1; g need not be connected).
/// Deterministic: identical inputs and options give identical output order,
/// for every KvccOptions::num_threads setting. With num_threads > 1 this is
/// a thin one-job wrapper over KvccEngine (see kvcc/engine.h); callers with
/// many (graph, k) requests should hold an engine and batch them instead.
KvccResult EnumerateKVccs(const Graph& g, std::uint32_t k,
                          const KvccOptions& options = {});

/// OVERLAP-PARTITION (Algorithm 1 lines 13-18): removes `cut` from g,
/// splits the remainder into connected components, and returns for each
/// component the induced subgraph on (component ∪ cut) together with the
/// vertex ids (in g's id space) it was built from. `cut` must be a real
/// vertex cut of g, so at least two pieces are returned; a set that fails
/// to separate g (or swallows it whole) throws std::logic_error — checked
/// in every build mode, since recursing on a single self-equal piece would
/// never terminate. With `as_root`
/// the pieces' label chains bottom out at g's local ids (see
/// Graph::InducedSubgraphAsRoot) instead of composing g's own labels.
struct PartitionPiece {
  Graph graph;
  std::vector<VertexId> vertices;  // sorted ids in g's space
};
std::vector<PartitionPiece> OverlapPartition(const Graph& g,
                                             const std::vector<VertexId>& cut,
                                             bool as_root = false);

/// Materializes one k-VCC (as returned in KvccResult::components) as an
/// induced subgraph of the input graph.
Graph MaterializeComponent(const Graph& g,
                           const std::vector<VertexId>& component);

}  // namespace kvcc

#endif  // KVCC_KVCC_KVCC_ENUM_H_
