// KVCC-ENUM (paper Algorithm 1): enumerate all k-vertex connected
// components of a graph by recursive overlapped partitioning.
//
// Outline: peel the k-core; for every connected component, search for a
// vertex cut with fewer than k vertices (GLOBAL-CUT); components without
// such a cut are k-VCCs; otherwise the cut S is *duplicated* into every
// component of G - S (OVERLAP-PARTITION) and the pieces are processed
// recursively. Correctness: paper Theorem 4; the number of partitions and
// of k-VCCs are both < n/2 (Lemma 10, Theorem 6), giving polynomial total
// time O(min(n^1/2, k) * m * (n + delta^2) * n) (Theorem 7).
#ifndef KVCC_KVCC_KVCC_ENUM_H_
#define KVCC_KVCC_KVCC_ENUM_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "kvcc/job_control.h"
#include "kvcc/options.h"
#include "kvcc/stats.h"
#include "kvcc/stream.h"

/// \file
/// \brief KVCC-ENUM (paper Algorithm 1): enumerate all k-vertex connected
/// components by recursive overlapped partitioning — buffered
/// (EnumerateKVccs) and streaming (EnumerateKVccsStreaming) entry points.

/// \brief The k-VCC library: enumeration (EnumerateKVccs), batch serving
/// (KvccEngine), streaming delivery (stream.h), and the cohesion
/// hierarchy (hierarchy.h).
namespace kvcc {

/// \brief The complete output of one k-VCC enumeration.
struct KvccResult {
  /// \brief All k-VCCs, each as a sorted list of vertex ids of the
  /// *input* graph; the list of components is sorted lexicographically.
  /// (If the input graph carries labels, map with Graph::LabelsOf.)
  std::vector<std::vector<VertexId>> components;

  /// \brief Execution counters accumulated over the whole run.
  KvccStats stats;
};

/// \brief Enumerates all k-VCCs of g (k >= 1; g need not be connected).
///
/// Deterministic: identical inputs and options give identical output
/// order, for every KvccOptions::num_threads setting. With num_threads > 1
/// this is a thin one-job wrapper over KvccEngine (see kvcc/engine.h);
/// callers with many (graph, k) requests should hold an engine and batch
/// them instead.
/// \param g The input graph.
/// \param k Connectivity parameter (>= 1).
/// \param options Algorithm variant and execution knobs; deadline_ms > 0
///   arms a wall-clock budget for the call.
/// \return Every k-VCC plus the run's execution counters.
/// \throws std::invalid_argument if k == 0.
/// \throws JobCancelled if options.deadline_ms elapsed before the run
///   finished; the exception carries the partial stats of the work that
///   ran (see kvcc/job_control.h).
KvccResult EnumerateKVccs(const Graph& g, std::uint32_t k,
                          const KvccOptions& options = {});

/// \brief Streams all k-VCCs of g to `sink` in the order the recursion
/// emits them, instead of buffering the whole set.
///
/// With num_threads resolving to 1 this runs the exact serial recursion
/// and delivers each component the moment its branch bottoms out — the
/// emission order of this serial path *defines* the "serial order" that
/// KvccOptions::stable_order reproduces. With num_threads > 1 the call is
/// a one-job wrapper over KvccEngine::SubmitStreaming on a transient
/// engine (hold an engine yourself to amortize pool spin-up). In both
/// cases the multiset of streamed components is byte-identical to
/// EnumerateKVccs(g, k, options).components, the sink receives the final
/// stats via OnComplete, and a sink exception aborts delivery and is
/// rethrown here (after OnError fires).
/// \param g The input graph.
/// \param k Connectivity parameter (>= 1).
/// \param sink Receives every component, then OnComplete (or OnError).
/// \param options Algorithm variant and execution knobs; stable_order
///   makes multi-threaded runs reproduce the serial delivery order;
///   deadline_ms > 0 arms a wall-clock budget.
/// \throws std::invalid_argument if k == 0; rethrows the first algorithm
///   or sink error otherwise.
/// \throws JobCancelled if options.deadline_ms elapsed mid-run: delivery
///   stops, OnError receives the same JobCancelled (with partial stats),
///   and OnComplete never fires for that call.
void EnumerateKVccsStreaming(const Graph& g, std::uint32_t k,
                             ComponentSink& sink,
                             const KvccOptions& options = {});

/// \brief One piece of an overlapped partition: the induced subgraph on
/// (component ∪ cut) plus the ids it was built from.
struct PartitionPiece {
  /// \brief The piece as a graph (label chain per OverlapPartition's
  /// `as_root` parameter).
  Graph graph;
  /// \brief Sorted vertex ids of the piece in the parent graph's id space.
  std::vector<VertexId> vertices;
};

/// \brief OVERLAP-PARTITION (Algorithm 1 lines 13-18): removes `cut` from
/// g, splits the remainder into connected components, and returns for each
/// component the induced subgraph on (component ∪ cut) together with the
/// vertex ids (in g's id space) it was built from.
///
/// `cut` must be a real vertex cut of g, so at least two pieces are
/// returned; a set that fails to separate g (or swallows it whole) throws
/// std::logic_error — checked in every build mode, since recursing on a
/// single self-equal piece would never terminate.
/// \param g The graph to partition.
/// \param cut A vertex cut of g (ids in g's id space).
/// \param as_root When true the pieces' label chains bottom out at g's
///   local ids (see Graph::InducedSubgraphAsRoot) instead of composing
///   g's own labels.
/// \return One piece per connected component of g - cut (at least two).
/// \throws std::logic_error if removing `cut` leaves fewer than two
///   pieces.
std::vector<PartitionPiece> OverlapPartition(const Graph& g,
                                             const std::vector<VertexId>& cut,
                                             bool as_root = false);

/// \brief Materializes one k-VCC (as returned in KvccResult::components)
/// as an induced subgraph of the input graph.
/// \param g The graph the enumeration ran on.
/// \param component One entry of KvccResult::components.
/// \return The induced subgraph on `component`.
Graph MaterializeComponent(const Graph& g,
                           const std::vector<VertexId>& component);

}  // namespace kvcc

#endif  // KVCC_KVCC_KVCC_ENUM_H_
