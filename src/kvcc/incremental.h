// Incremental re-decomposition over a VersionedGraph.
//
// IncrementalKvcc keeps the full k-VCC hierarchy of a mutating graph
// current without re-running the enumeration on the whole graph per
// batch. The exactness argument (docs/DYNAMIC.md spells it out) rests on
// locality of vertex connectivity: for each level k, every k-VCC of the
// new graph lies inside exactly one of its k-ECCs ("regions" — Whitney:
// k-vertex-connected implies k-edge-connected); a region is dirty iff it
// contains both endpoints of some batch edge or intersects an old k-VCC
// that does. Every k-VCC of the new graph inside a clean region is
// exactly an old, untouched k-VCC — its induced subgraph did not change —
// so only dirty regions are re-enumerated and everything else is carried
// over verbatim. The assembled per-level component lists (and the
// hierarchy rebuilt from them) are byte-identical to a cold
// BuildKvccHierarchy on the materialized graph; the differential harness
// in tests/incremental_test.cc asserts this after every mutation step.
#ifndef KVCC_KVCC_INCREMENTAL_H_
#define KVCC_KVCC_INCREMENTAL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/delta_store.h"
#include "graph/graph.h"
#include "kvcc/hierarchy.h"
#include "kvcc/options.h"
#include "kvcc/stats.h"

/// \file
/// \brief IncrementalKvcc: dirty-region incremental maintenance of the
/// k-VCC hierarchy over a VersionedGraph, exact by construction.

namespace kvcc {

class KvccEngine;

/// \brief What one IncrementalKvcc::Update call did.
struct IncrementalOutcome {
  /// \brief The VersionedGraph version the state now reflects.
  std::uint64_t version = 0;
  /// \brief Effective deltas consumed by this update (0 for a no-op).
  std::uint64_t delta_edges_applied = 0;
  /// \brief Old hierarchy components invalidated (not carried verbatim),
  /// summed over levels. Strictly below the old component total on
  /// localized edits — the headline locality metric.
  std::uint64_t dirty_components = 0;
  /// \brief Dirty regions re-enumerated (k-core component × level pairs
  /// that ran a fresh enumeration; 1 for a full rebuild).
  std::uint64_t incremental_reruns = 0;
  /// \brief True when the update could not proceed incrementally (first
  /// initialization, or a Compact() folded away the needed deltas) and
  /// the hierarchy was rebuilt from scratch.
  bool full_rebuild = false;
  /// \brief Levels whose component set actually changed, ascending.
  ///
  /// Computed by exact comparison of the old and new per-level lists, so
  /// a mutation that re-derives an identical level leaves it out —
  /// cached results for such levels stay valid (the serving layer keys
  /// its invalidation off this list).
  std::vector<std::uint32_t> dirty_levels;
};

/// \brief Incrementally maintained k-VCC hierarchy of a VersionedGraph.
///
/// Not thread-safe: callers serialize Update() externally (kvccd holds
/// one mutation lock). Readers may hold the shared_ptr results of
/// Hierarchy() / CurrentGraph() across updates — each update publishes
/// fresh immutable objects and never mutates published ones.
class IncrementalKvcc {
 public:
  /// \brief Creates an empty (uninitialized) state.
  /// \param options Enumeration options used for every rebuild and every
  ///   dirty-region re-run (num_threads is ignored when an engine drives
  ///   the update).
  explicit IncrementalKvcc(KvccOptions options = {});

  /// \brief Whether a first Update() has run.
  /// \return True once the state holds a hierarchy.
  bool Initialized() const { return hierarchy_ != nullptr; }

  /// \brief The VersionedGraph version the state currently reflects.
  /// \return The version (0 before initialization).
  std::uint64_t Version() const { return version_; }

  /// \brief Catches the state up to `vg`'s current version.
  ///
  /// Snapshots `vg`, replays the effective deltas since the state's
  /// version, re-enumerates only the dirty regions, and publishes the
  /// patched hierarchy. Falls back to a full rebuild when uninitialized
  /// or when Compact() folded the needed history away. With a non-null
  /// engine all dirty-region jobs (across every level) run concurrently
  /// on its pool; the result is byte-identical either way.
  /// \param vg The versioned graph to catch up to.
  /// \param engine Optional warm engine for the region jobs.
  /// \return Counters describing the work done.
  IncrementalOutcome Update(const VersionedGraph& vg,
                            KvccEngine* engine = nullptr);

  /// \brief The current hierarchy (null before the first Update()).
  ///
  /// Structurally byte-identical — nodes, levels, parent/child links,
  /// cohesion — to BuildKvccHierarchy on CurrentGraph(); only the stats
  /// field differs (it accumulates incremental work, not a cold build's).
  /// \return Immutable shared hierarchy.
  std::shared_ptr<const KvccHierarchy> Hierarchy() const {
    return hierarchy_;
  }

  /// \brief The materialized graph the hierarchy describes.
  /// \return Immutable shared graph (null before the first Update()).
  std::shared_ptr<const Graph> CurrentGraph() const { return graph_; }

  /// \brief Cumulative counters over every update since construction,
  /// including the dynamic-maintenance trio (delta_edges_applied,
  /// dirty_components, incremental_reruns). Replay-identical: a given
  /// mutation sequence produces the same totals at every thread count.
  /// \return The accumulated stats.
  const KvccStats& Stats() const { return stats_; }

 private:
  IncrementalOutcome Rebuild(GraphSnapshot snapshot, KvccEngine* engine,
                             std::uint64_t applied);
  void PublishHierarchy();
  std::vector<std::uint32_t> DiffLevels(
      const std::vector<std::vector<std::vector<VertexId>>>& before) const;

  KvccOptions options_;
  std::shared_ptr<const Graph> graph_;
  std::shared_ptr<const KvccHierarchy> hierarchy_;
  // levels_[k-1] = the k-VCCs of *graph_, each sorted, the list in
  // canonical lexicographic order (EnumerateKVccs output format);
  // trailing empty levels trimmed.
  std::vector<std::vector<std::vector<VertexId>>> levels_;
  // regions_[k-1] = the k-ECCs of *graph_ ("regions" at level k), same
  // format as levels_. Cached so the next update only re-derives regions
  // whose induced subgraph a batch edge touched; cleared on full rebuilds
  // (the following update re-derives every level once and re-primes it).
  std::vector<std::vector<std::vector<VertexId>>> regions_;
  KvccStats stats_;
  std::uint64_t version_ = 0;
  std::uint64_t applied_seen_ = 0;  // vg.AppliedTotal() at last update
  std::vector<EdgeDelta> batch_;    // replay scratch
};

}  // namespace kvcc

#endif  // KVCC_KVCC_INCREMENTAL_H_
