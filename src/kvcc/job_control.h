// Job control primitives for the k-VCC serving surface.
//
// A production engine needs more than "submit and wait": a caller that
// abandons a stream, hits a deadline, or explicitly cancels must get its
// worker threads back *now*, not after the remaining recursion drains.
// The contract here is cooperative: a CancelToken is shared between the
// caller side (KvccEngine::Cancel, ResultStream abandonment, the
// KvccOptions::deadline_ms timer) and the execution side, which checks it
// at recursion-task boundaries (KvccEngine::RunTask) and inside GLOBAL-CUT
// at every flow-probe / wavefront-batch boundary — the two granularities
// that bound time-to-worker-return by one task prologue or one probe
// batch, whichever is in flight.
//
// A cancelled job finishes by reporting JobCancelled (thrown by Wait(),
// delivered to ComponentSink::OnError, rethrown by ResultStream::Next)
// carrying the stats of the work that *did* run. docs/JOB_CONTROL.md has
// the full map of triggers and cancellation points.
#ifndef KVCC_KVCC_JOB_CONTROL_H_
#define KVCC_KVCC_JOB_CONTROL_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>

#include "exec/task_scheduler.h"
#include "kvcc/options.h"
#include "kvcc/stats.h"

/// \file
/// \brief Cooperative job control: CancelToken (explicit cancel, stream
/// abandonment, deadlines) and the JobCancelled outcome it produces.

namespace kvcc {

/// \brief Maps a job's latency class to the scheduler's task class.
///
/// Every task a job puts on the pool — root, spawned subproblems, and
/// the helper stubs of its intra-cut wavefronts — carries this class, so
/// the whole recursion inherits the job's priority.
/// \param priority The job-level class from KvccOptions::priority.
/// \return The matching scheduler class.
inline exec::TaskPriority ToTaskPriority(JobPriority priority) {
  switch (priority) {
    case JobPriority::kInteractive:
      return exec::TaskPriority::kInteractive;
    case JobPriority::kBulk:
      return exec::TaskPriority::kBulk;
    case JobPriority::kNormal:
      break;
  }
  return exec::TaskPriority::kNormal;
}

/// \brief Shared cooperative-cancellation handle for one job.
///
/// Copies of a token share one flag: any copy's RequestCancel() (or an
/// elapsed deadline) makes every copy's Cancelled() return true. The
/// execution side polls Cancelled() at recursion-task and probe/wavefront
/// boundaries and unwinds by throwing JobCancelled; cancellation is
/// therefore cooperative — it never interrupts a flow probe or a sink
/// call already in progress, it short-circuits the next one.
class CancelToken {
 public:
  /// \brief Creates a fresh token: not cancelled, no deadline.
  CancelToken();

  /// \brief Arms a deadline: Cancelled() latches to true once the steady
  /// clock passes `deadline`.
  ///
  /// Call before the token is shared with running tasks (the engine arms
  /// it at submission, before the root task is enqueued); the deadline is
  /// not synchronized for later rearming.
  /// \param deadline Absolute steady-clock expiry time.
  void SetDeadline(std::chrono::steady_clock::time_point deadline);

  /// \brief Requests cancellation. Thread-safe, idempotent, never blocks.
  void RequestCancel() noexcept;

  /// \brief True once cancellation was requested or the armed deadline
  /// elapsed (latching: never reverts to false). Thread-safe; cheap
  /// enough to poll per flow probe.
  /// \return Whether the job should stop as soon as it can.
  bool Cancelled() const noexcept;

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    // Written only before the token is shared (see SetDeadline).
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
  };
  std::shared_ptr<State> state_;
};

/// \brief The outcome of a cancelled job: thrown by KvccEngine::Wait and
/// the serial EnumerateKVccs family, rethrown by ResultStream::Next, and
/// the exception ComponentSink::OnError receives.
///
/// Distinct from algorithm failures: a cancelled job ran correctly as far
/// as it got, so the exception carries the counters of the work that did
/// execute (partial_stats()). A job that failed *and* was cancelled
/// reports the failure — cancellation is only the outcome when nothing
/// else went wrong.
class JobCancelled : public std::runtime_error {
 public:
  /// \brief Builds the outcome.
  /// \param what Human-readable reason (which trigger fired, if known).
  /// \param partial Counters accumulated before the job stopped. Engine
  ///   jobs report the merge of every task that ran; the deep-unwind
  ///   instances thrown inside GLOBAL-CUT carry empty stats and are
  ///   re-wrapped with the real partials before reaching the caller.
  explicit JobCancelled(const std::string& what, KvccStats partial = {});

  /// \brief Counters of the work that ran before cancellation took
  /// effect. Cancellation diagnostics included (KvccStats::tasks_cancelled,
  /// cuts_cancelled).
  /// \return The partial counters, valid for the exception's lifetime.
  const KvccStats& partial_stats() const { return partial_; }

 private:
  KvccStats partial_;
};

}  // namespace kvcc

#endif  // KVCC_KVCC_JOB_CONTROL_H_
