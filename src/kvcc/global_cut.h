// GLOBAL-CUT (paper Alg. 2) and GLOBAL-CUT* (paper Alg. 3).
//
// Given a connected graph g with minimum degree >= k and more than k
// vertices, finds a vertex cut with fewer than k vertices, or reports that
// none exists (g is then k-vertex-connected). The search follows
// Esfahanian–Hakimi: phase 1 tests the local connectivity between a source
// u and every other vertex (covers every cut avoiding u); phase 2 tests all
// pairs of u's neighbors (covers cuts containing u, Lemma 4). All flow
// tests run on a sparse certificate; sweeps (KvccOptions) skip most tests.
//
// Probes run on a pluggable CutOracle (KvccOptions::cut_oracle): Dinic
// baseline, NSY-style local search, or a degree-routed hybrid. Every
// engine is exact, so the cut (and all replay-identical stats) are
// byte-identical across engines; see cut_oracle.h.
//
// Intra-cut parallelism: when a multi-worker TaskScheduler is passed in,
// both phases run as *deterministic probe wavefronts* — the next batch of
// flow probes executes concurrently on the pool (each participant on its
// own oracle, incrementally rebound to the invocation's shared topology
// owner), then the batch is committed serially in the exact order the
// serial loop would have used. The phase-2 common-neighbor test (Lemma 13,
// a pure function) also runs inside the wavefront instead of the serial
// formation loop, so hub-heavy pair formation no longer serializes on it.
// Sweeps, all pre-existing stats, and the returned cut are byte-identical
// to the serial loop for every thread count and batch size; speculative
// probes a serial run would have skipped are bounded by an adaptive batch
// size and surfaced in KvccStats::probes_wasted_*.
#ifndef KVCC_KVCC_GLOBAL_CUT_H_
#define KVCC_KVCC_GLOBAL_CUT_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "exec/task_scheduler.h"
#include "graph/graph.h"
#include "kvcc/cut_oracle.h"
#include "kvcc/flow_graph.h"
#include "kvcc/job_control.h"
#include "kvcc/options.h"
#include "kvcc/side_vertex.h"
#include "kvcc/sparse_certificate.h"
#include "kvcc/stats.h"
#include "kvcc/sweep_context.h"

namespace kvcc {

/// One wavefront probe oracle: a CutOracle owned by one executor slot,
/// lazily rebound ("epoch rebind") to the GLOBAL-CUT invocation's topology
/// owner the first time that slot participates in the invocation. The
/// rebind is incremental (CutOracle::BindShared): the slot adopts the
/// owner's already-built arc arrays and restamps its private capacity
/// state by epoch, so steady-state entry into a wavefront costs O(1) and
/// allocates nothing instead of an O(m) per-slot rebuild.
struct ProbeOracle {
  /// The slot's probe engine; created on first use, recreated only when
  /// KvccOptions::cut_oracle changes between jobs sharing the scratch.
  std::unique_ptr<CutOracle> oracle;
  /// GlobalCutScratch::probe_epoch value this slot last bound to.
  std::uint64_t bound_epoch = 0;
};

/// One entry of a wavefront: a phase-1 vertex or phase-2 pair together with
/// the classification the serial loop's replay needs at commit time.
struct ProbeCandidate {
  enum class Kind : std::uint8_t {
    kSwept,           // phase 1: already swept at formation time
    kAdjacent,        // phase 1: adjacent to the source (Lemma 5)
    kPairGroupSkip,   // phase 2: same side-group (group sweep rule 3)
    kPairAdjacent,    // phase 2: adjacent pair (Lemma 5)
    kProbe,           // flow probe launched; result in wave_cuts[probe_index]
    kProbeDeferred,   // phase 2: launched with the common-neighbor test
                      // (Lemma 13) evaluated inside the wavefront; commit
                      // consults wave_common_skip[probe_index] first
  };
  VertexId a = 0;  // phase 1: the vertex; phase 2: first endpoint
  VertexId b = 0;  // phase 2: second endpoint
  Kind kind = Kind::kProbe;
  std::uint32_t probe_index = 0;  // valid iff kind == kProbe
};

/// Reusable per-caller state for GlobalCut. The enumeration engine keeps one
/// instance per worker thread so that the flow network, the sparse
/// certificate (storage and working buffers), the side-vertex detection
/// working set, the sweep context, and the hot-path BFS/mark buffers are all
/// recycled across the O(n) GLOBAL-CUT invocations of a run instead of being
/// reallocated in each — the steady-state cut search performs no per-call
/// heap allocation for any of them. A default-constructed scratch is always
/// valid; GlobalCut rebinds it to the working graph on entry, and its
/// contents are meaningless (but safely reusable) between calls — with one
/// documented exception: `side.strong` holds the last call's strong
/// side-vertex verdicts until the next call (see GlobalCutResult).
struct GlobalCutScratch {
  /// Probe engine (KvccOptions::cut_oracle); created lazily, recreated
  /// only when the option changes, rebound (buffers recycled) per
  /// invocation. Serial probes run here; in wavefront mode this instance
  /// is the *topology owner* the pool below incrementally rebinds to, and
  /// is never probed while a wavefront is in flight.
  std::unique_ptr<CutOracle> oracle;

  /// Sparse-certificate output storage plus build buffers (mate/offset/
  /// used/builder); rebuilt in place per invocation when the certificate
  /// is enabled.
  SparseCertificate cert;
  CertificateScratch cert_scratch;

  /// Strong side-vertex detection working set (verdict vector + memoized
  /// pair-check table); epoch-invalidated per invocation.
  SideVertexScratch side;

  /// Sweep bookkeeping; epoch-rebound per invocation (O(1) reset).
  SweepContext sweep;

  // Epoch-stamped visit marks shared by CutDisconnects (verify-cuts mode)
  // and the phase-1 source BFS: a counter bump replaces the O(n) per-call
  // re-assignment of bool/dist arrays (same pattern as SweepContext::Bind).
  std::uint64_t mark_epoch = 0;
  std::vector<std::uint64_t> removed_mark;
  std::vector<std::uint64_t> seen_mark;
  std::vector<VertexId> mark_queue;

  // Phase-1 processing-order working set. order_dist[v] is valid only where
  // seen_mark[v] carries the epoch of the last source BFS — which is all of
  // [0, n) whenever that BFS succeeded (a disconnected input throws).
  std::vector<std::uint32_t> order_dist;
  std::vector<std::uint32_t> order_bucket_start;
  std::vector<VertexId> order;

  // --- intra-cut wavefront state ---
  /// Bumped per GlobalCut invocation; pool oracles lazily rebind when their
  /// bound_epoch trails it.
  std::uint64_t probe_epoch = 0;
  /// One oracle per executor slot (scheduler workers + 1 external slot).
  /// Grown once per scratch lifetime; entries are created on first use.
  std::vector<std::unique_ptr<ProbeOracle>> probe_pool;
  /// Current wavefront: candidates in serial order, probe argument list
  /// (indexed by ProbeCandidate::probe_index), and per launched probe one
  /// deferred-common flag (input), one cut slot, one common-skip verdict,
  /// and one work trace (outputs; disjoint writes across the wavefront).
  std::vector<ProbeCandidate> wave;
  std::vector<std::pair<VertexId, VertexId>> wave_probe_args;
  std::vector<std::uint8_t> wave_probe_common;
  std::vector<std::vector<VertexId>> wave_cuts;
  std::vector<std::uint8_t> wave_common_skip;
  std::vector<ProbeCounters> wave_traces;
};

struct GlobalCutResult {
  /// A vertex cut of g with fewer than k vertices; empty iff g is
  /// k-vertex-connected.
  std::vector<VertexId> cut;

  /// True when the call computed strong side-vertex verdicts (neighbor
  /// sweep enabled). The verdicts themselves live in the scratch —
  /// `scratch->side.strong`, one flag per vertex of g, valid until the
  /// scratch's next GlobalCut call — so the steady-state search does not
  /// copy an O(n) vector per invocation. Callers that want the verdicts
  /// (Lemma 15/16 maintenance) must pass their own scratch.
  bool strong_side_valid = false;
};

/// Preconditions: |V(g)| > k and (for the intended use) min degree >= k.
/// g must be connected: a disconnected input throws std::invalid_argument
/// (checked in every build mode, not assert-only). `hints` is either empty
/// or one entry per vertex of g. `scratch` may be nullptr (a transient
/// scratch is used); pass a live one to amortize allocations across
/// repeated calls. `scheduler` may be nullptr (fully serial search); with a
/// multi-worker scheduler and options.intra_cut_parallelism, flow probes
/// run as parallel wavefronts (see file comment) with identical output.
/// `cancel` may be nullptr (uncancellable); with a token, the search polls
/// it at entry, before every serial flow probe, and at every
/// wavefront-batch formation, and unwinds by throwing JobCancelled (with
/// empty stats — the driver attaches the job's partials) the first time it
/// observes cancellation, after bumping KvccStats::cuts_cancelled. Time to
/// unwind is therefore bounded by one probe (serial) or one batch
/// (wavefronts), never by the remaining search space.
GlobalCutResult GlobalCut(const Graph& g, std::uint32_t k,
                          const std::vector<SideVertexHint>& hints,
                          const KvccOptions& options, KvccStats* stats,
                          GlobalCutScratch* scratch = nullptr,
                          exec::TaskScheduler* scheduler = nullptr,
                          const CancelToken* cancel = nullptr);

namespace detail {

/// True iff removing `cut` disconnects g (or empties it). Exposed for the
/// allocation-regression test of verify-cuts mode; uses the epoch-stamped
/// marks in `scratch`, so steady-state calls allocate nothing and touch
/// O(component reached) state, not O(n).
bool CutDisconnects(const Graph& g, const std::vector<VertexId>& cut,
                    GlobalCutScratch& scratch);

}  // namespace detail

}  // namespace kvcc

#endif  // KVCC_KVCC_GLOBAL_CUT_H_
