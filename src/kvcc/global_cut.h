// GLOBAL-CUT (paper Alg. 2) and GLOBAL-CUT* (paper Alg. 3).
//
// Given a connected graph g with minimum degree >= k and more than k
// vertices, finds a vertex cut with fewer than k vertices, or reports that
// none exists (g is then k-vertex-connected). The search follows
// Esfahanian–Hakimi: phase 1 tests the local connectivity between a source
// u and every other vertex (covers every cut avoiding u); phase 2 tests all
// pairs of u's neighbors (covers cuts containing u, Lemma 4). All flow
// tests run on a sparse certificate; sweeps (KvccOptions) skip most tests.
#ifndef KVCC_KVCC_GLOBAL_CUT_H_
#define KVCC_KVCC_GLOBAL_CUT_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "kvcc/flow_graph.h"
#include "kvcc/options.h"
#include "kvcc/side_vertex.h"
#include "kvcc/sparse_certificate.h"
#include "kvcc/stats.h"
#include "kvcc/sweep_context.h"

namespace kvcc {

/// Reusable per-caller state for GlobalCut. The enumeration engine keeps one
/// instance per worker thread so that the flow network, the sparse
/// certificate (storage and working buffers), the sweep context, and the
/// hot-path BFS buffers are all recycled across the O(n) GLOBAL-CUT
/// invocations of a run instead of being reallocated in each — the
/// steady-state cut search performs no per-call heap allocation for any of
/// them. A default-constructed scratch is always valid; GlobalCut rebinds
/// it to the working graph on entry, and its contents are meaningless (but
/// safely reusable) between calls.
struct GlobalCutScratch {
  /// Vertex-connectivity oracle; rebuilt (buffers recycled) per invocation.
  DirectedFlowGraph oracle;

  /// Sparse-certificate output storage plus build buffers (mate/offset/
  /// used/builder); rebuilt in place per invocation when the certificate
  /// is enabled.
  SparseCertificate cert;
  CertificateScratch cert_scratch;

  /// Sweep bookkeeping; epoch-rebound per invocation (O(1) reset).
  SweepContext sweep;

  // CutDisconnects working set (hoisted off the recursion hot path).
  std::vector<bool> cut_removed;
  std::vector<bool> cut_seen;
  std::vector<VertexId> cut_queue;

  // Phase-1 processing-order working set.
  std::vector<std::uint32_t> order_dist;
  std::vector<std::uint32_t> order_bucket_start;
  std::vector<VertexId> order;
};

struct GlobalCutResult {
  /// A vertex cut of g with fewer than k vertices; empty iff g is
  /// k-vertex-connected.
  std::vector<VertexId> cut;

  /// Strong side-vertex flags of g computed during the search (valid only
  /// when strong_side_valid; used for Lemma 15/16 maintenance in children).
  std::vector<bool> strong_side;
  bool strong_side_valid = false;
};

/// Preconditions: |V(g)| > k and (for the intended use) min degree >= k.
/// g must be connected: a disconnected input throws std::invalid_argument
/// (checked in every build mode, not assert-only). `hints` is either empty
/// or one entry per vertex of g. `scratch` may be nullptr (a transient
/// scratch is used); pass a live one to amortize allocations across
/// repeated calls.
GlobalCutResult GlobalCut(const Graph& g, std::uint32_t k,
                          const std::vector<SideVertexHint>& hints,
                          const KvccOptions& options, KvccStats* stats,
                          GlobalCutScratch* scratch = nullptr);

}  // namespace kvcc

#endif  // KVCC_KVCC_GLOBAL_CUT_H_
