#include "kvcc/cut_oracle.h"

#include <cassert>

namespace kvcc {
namespace {

// Auto budget for the first local round: poly(k), independent of the graph
// size. Sized so that k DFS passes over a side of O(k) vertices with O(k)
// certificate degree each (the shape of a shallow cut) fit without a
// doubling, while a certify-bound probe on a big graph wastes at most
// budget * (2^(doublings+1) - 1) arcs before Dinic takes over.
std::uint64_t AutoBudget(std::uint32_t k) {
  const std::uint64_t kk = static_cast<std::uint64_t>(k) * k;
  return 64 + 8 * kk * k;  // 64 + 8k^3
}

std::uint64_t BudgetFor(const LocalProbeTuning& tuning, std::uint32_t k) {
  return tuning.budget_base != 0 ? tuning.budget_base : AutoBudget(k);
}

class DinicOracle final : public CutOracle {
 public:
  std::vector<VertexId> Probe(VertexId u, VertexId v, std::uint32_t k,
                              ProbeCounters& counters) override {
    const std::uint64_t before = flow_.work_arcs();
    std::vector<VertexId> cut = flow_.LocCut(u, v, k);
    counters.probe_edges_touched += flow_.work_arcs() - before;
    return cut;
  }

  CutOracleKind kind() const override { return CutOracleKind::kDinic; }
};

class LocalVCOracle final : public CutOracle {
 public:
  explicit LocalVCOracle(const LocalProbeTuning& tuning) : tuning_(tuning) {}

  std::vector<VertexId> Probe(VertexId u, VertexId v, std::uint32_t k,
                              ProbeCounters& counters) override {
    return LocalProbe(flow_, tuning_, u, v, k, counters);
  }

  CutOracleKind kind() const override { return CutOracleKind::kLocalVC; }

  /// Shared implementation of the local-search probe path (also used by
  /// HybridOracle when it routes a probe locally).
  static std::vector<VertexId> LocalProbe(DirectedFlowGraph& flow,
                                          const LocalProbeTuning& tuning,
                                          VertexId u, VertexId v,
                                          std::uint32_t k,
                                          ProbeCounters& counters) {
    const std::uint64_t before = flow.work_arcs();
    DirectedFlowGraph::LocalProbeResult result = flow.LocCutLocal(
        u, v, k, BudgetFor(tuning, k), tuning.doublings);
    counters.probe_edges_touched += flow.work_arcs() - before;
    ++counters.probes_localvc;
    if (result.fell_back) ++counters.probes_localvc_fallback;
    return std::move(result.cut);
  }

 private:
  LocalProbeTuning tuning_;
};

class HybridOracle final : public CutOracle {
 public:
  explicit HybridOracle(const LocalProbeTuning& tuning) : tuning_(tuning) {}

  std::vector<VertexId> Probe(VertexId u, VertexId v, std::uint32_t k,
                              ProbeCounters& counters) override {
    const Graph& g = *flow_.graph();
    // Route to local search only where it can win. A Dinic probe pays at
    // least one full level BFS — about total_arcs — per phase, and the
    // certify-heavy probes of a k-connected region pay two or three; the
    // greedy local pass usually certifies within the first budget round
    // (~budget_base arcs). So local search is worth the fallback risk once
    // the network is large enough that a first budget round is cheap next
    // to a single Dinic phase, provided the source is not a hub (the DFS
    // frontier grows with deg(u), defeating locality). Both tests are pure
    // functions of (graph, u, k), keeping probe routing — and with it
    // every stats counter — deterministic.
    const std::uint64_t base = BudgetFor(tuning_, k);
    const std::uint64_t total_arcs =
        2 * (static_cast<std::uint64_t>(g.NumVertices()) + 2 * g.NumEdges());
    const bool route_local =
        total_arcs > 2 * base &&
        g.Degree(u) <= 8 * static_cast<std::uint64_t>(k);
    if (route_local) {
      return LocalVCOracle::LocalProbe(flow_, tuning_, u, v, k, counters);
    }
    const std::uint64_t before = flow_.work_arcs();
    std::vector<VertexId> cut = flow_.LocCut(u, v, k);
    counters.probe_edges_touched += flow_.work_arcs() - before;
    return cut;
  }

  CutOracleKind kind() const override { return CutOracleKind::kHybrid; }

 private:
  LocalProbeTuning tuning_;
};

}  // namespace

std::unique_ptr<CutOracle> MakeCutOracle(CutOracleKind kind,
                                         const LocalProbeTuning& tuning) {
  switch (kind) {
    case CutOracleKind::kDinic:
      return std::make_unique<DinicOracle>();
    case CutOracleKind::kLocalVC:
      return std::make_unique<LocalVCOracle>(tuning);
    case CutOracleKind::kHybrid:
      return std::make_unique<HybridOracle>(tuning);
  }
  assert(false && "invalid CutOracleKind");
  return std::make_unique<DinicOracle>();
}

}  // namespace kvcc
