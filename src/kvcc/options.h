// Configuration knobs for the k-VCC enumeration algorithms.
//
// The four presets correspond to the paper's four evaluated variants:
//   VCCE    = basic algorithm (Section 4)
//   VCCE-N  = + neighbor sweep (Section 5.1)
//   VCCE-G  = + group sweep (Section 5.2)
//   VCCE*   = + both (Section 5.3, GLOBAL-CUT*)
#ifndef KVCC_KVCC_OPTIONS_H_
#define KVCC_KVCC_OPTIONS_H_

#include <cstdint>
#include <string>

/// \file
/// \brief KvccOptions: algorithm-variant presets (VCCE / VCCE-N / VCCE-G
/// / VCCE*) and execution knobs (threads, wavefronts, streaming order).

namespace kvcc {

/// \brief Latency class of one engine job (KvccOptions::priority).
///
/// Priorities shape *scheduling*, never results: the enumerated
/// components and all replay-identical stats are byte-identical across
/// classes. The engine's worker deques pop higher classes preferentially
/// (weighted, not strict — a bounded share of pops rotates through the
/// lower classes, so neither bulk nor normal work can starve; see
/// exec::TaskScheduler and docs/JOB_CONTROL.md).
enum class JobPriority : std::uint8_t {
  /// \brief Latency-sensitive: pops ahead of everything else.
  kInteractive = 0,
  /// \brief Default class.
  kNormal = 1,
  /// \brief Throughput work that should yield to the other classes.
  kBulk = 2,
};

/// \brief Probe engine behind every LOC-CUT connectivity test
/// (KvccOptions::cut_oracle).
///
/// Every oracle is exact — the enumerated components, cuts, and hierarchy
/// are byte-identical across all three settings at every thread count —
/// so this is purely a work-profile knob. See docs/ARCHITECTURE.md
/// ("The CutOracle seam").
enum class CutOracleKind : std::uint8_t {
  /// \brief Dinic (Even–Tarjan) max-flow from scratch per probe: the
  /// paper-faithful baseline, O(min(sqrt(n), k) * m) per probe.
  kDinic = 0,
  /// \brief Local-search probe (NSY 2019 style): budget-capped DFS flow
  /// growth with doubling budgets, touching O(poly(k) * vol) edges when a
  /// small cut sits near the source, falling back to Dinic on the partial
  /// flow when budgets run out.
  kLocalVC = 1,
  /// \brief Routes each probe between the two engines by degree/volume
  /// heuristics; routing decisions surface in KvccStats::probes_localvc
  /// and probes_localvc_fallback.
  kHybrid = 2,
};

/// \brief Lower-case name of a CutOracleKind ("dinic" / "localvc" /
/// "hybrid"), as accepted by the CLI `--cut-oracle` flag.
/// \param kind The oracle kind.
/// \return A static string; never null.
const char* CutOracleKindName(CutOracleKind kind);

/// \brief Parses a CutOracleKind from its lower-case name.
/// \param name One of "dinic", "localvc", "hybrid".
/// \return The matching kind.
/// \throws std::invalid_argument for unknown names.
CutOracleKind CutOracleKindFromName(const std::string& name);

/// \brief Algorithm-variant and execution knobs for the k-VCC
/// enumeration family (EnumerateKVccs, KvccEngine, BuildKvccHierarchy).
struct KvccOptions {
  /// \brief Enables neighbor sweep (strong side-vertices + vertex
  /// deposits, Section 5.1). Off = never prune phase-1 tests via
  /// neighborhoods.
  bool neighbor_sweep = true;

  /// \brief Enables group sweep (side-groups + group deposits, Section
  /// 5.2), including the phase-2 same-group pair skip (rule 3).
  bool group_sweep = true;

  /// \brief Runs connectivity tests on a sparse certificate instead of
  /// the full graph (Section 4.2). Disabling is only useful for ablation
  /// studies; group sweep requires the certificate (side-groups come from
  /// F_k) and is silently unavailable without it.
  bool sparse_certificate = true;

  /// \brief Processes phase-1 vertices in non-ascending BFS-distance
  /// order from the source (Alg. 3 line 11). Off = ascending vertex id
  /// (basic algorithm).
  bool distance_order = true;

  /// \brief Reuses strong side-vertex verdicts across partitions when a
  /// vertex's 2-hop neighbourhood is untouched (Lemmas 15/16). Off =
  /// recompute from scratch on every subgraph.
  bool maintain_side_vertices = true;

  /// \brief Also skip phase-2 pair tests when the two neighbors share
  /// >= k common neighbors (Lemma 13). A cheap, sound extension the paper
  /// applies in Theorem 8; kept optional for ablation.
  bool phase2_common_neighbor_skip = true;

  /// \brief Vertices with degree above this cap are never *checked* for
  /// the strong side-vertex property (checking is Theta(d^2) pair work);
  /// they are conservatively treated as non-strong, which is sound. The
  /// default keeps detection cheap on hub-heavy graphs where the pair
  /// work would exceed the flow tests it saves. 0 = no cap.
  std::uint32_t side_vertex_degree_cap = 128;

  /// \brief Probe engine behind every LOC-CUT test (see CutOracleKind).
  /// All three settings produce byte-identical output; the default hybrid
  /// keeps Dinic's worst-case profile on hub sources and large probes
  /// while letting local search answer the rest in time bounded by the
  /// local volume. Not a variant axis of the paper — the four presets
  /// leave it untouched.
  CutOracleKind cut_oracle = CutOracleKind::kHybrid;

  /// \brief Runs each recursion step's preprocessing (k-core peel +
  /// component split) as one fused pass that builds every component's
  /// induced subgraph directly from the parent graph, instead of
  /// materializing the whole k-core as an intermediate Graph first. The
  /// enumerated components, cuts, and every stats counter except
  /// KvccStats::prune_fused_passes are byte-identical either way (the
  /// fused pass uses the Afforest component kernel, whose canonical
  /// relabel reproduces the BFS labeling exactly); off is the
  /// staged-reference ablation.
  bool fused_prune = true;

  /// \brief Defensive verification that every cut found on the sparse
  /// certificate actually disconnects the working graph (it must, by the
  /// certificate theorem). Costs O(n + m) per cut; keep on in production.
  bool verify_cuts = true;

  /// \brief Worker threads for the enumeration engine. 1 (default) runs
  /// the exact serial code path; 0 uses one worker per hardware thread;
  /// any other value runs that many workers over a work-stealing
  /// scheduler. The enumerated components (and all stats totals) are
  /// identical for every setting — partition subproblems are independent
  /// and the output is canonically sorted — so this is purely a
  /// wall-clock knob.
  std::uint32_t num_threads = 1;

  /// \brief Parallelize the probes *inside* one GLOBAL-CUT call
  /// (deterministic wavefronts over phase-1 vertices / phase-2 pairs)
  /// when the run has a multi-worker scheduler. This is what lets a
  /// recursion tree that is too shallow to feed the pool — e.g. one giant
  /// k-connected component — still scale with cores. The returned cut,
  /// the components, and every pre-existing stats counter are
  /// byte-identical to the serial loop for any thread count or batch
  /// size; the only observable difference is the probe-waste diagnostics
  /// in KvccStats (a serial run launches no speculative probes). Engages
  /// only on workers>1 engine runs; serial EnumerateKVccs
  /// (num_threads = 1) never batches.
  bool intra_cut_parallelism = true;

  /// \brief Probes per intra-cut wavefront. 0 (default) adapts the batch
  /// to the observed prune rate: it grows while little of the batch turns
  /// out to have been swept by earlier commits (bounded waste) and
  /// shrinks when sweeps are pruning aggressively. A nonzero value pins
  /// the batch size — results are identical either way; only probe waste
  /// and parallel saturation change.
  std::uint32_t probe_batch_size = 0;

  /// \brief Wavefronts engage only on working graphs with at least this
  /// many vertices (0 = no floor). Small subproblems — the recursion tail
  /// of a bushy tree, which already feeds the pool through subproblem
  /// parallelism — cannot amortize the per-slot oracle binds and the
  /// speculative probes, so they stay on the exact serial loop. The floor
  /// is a pure function of the input graph, preserving reproducibility.
  std::uint32_t intra_cut_min_vertices = 128;

  /// \brief Streaming delivery only (KvccEngine::SubmitStreaming /
  /// SubmitStream, EnumerateKVccsStreaming): deliver components in the
  /// exact serial emission order — the order the num_threads = 1
  /// streaming path produces — by holding out-of-order completions in a
  /// small reorder buffer, instead of delivering each component the
  /// moment it commits. The delivered *multiset* is byte-identical either
  /// way; stable order trades a little time-to-first-component for a
  /// reproducible sequence. Ignored by the buffered APIs (their output is
  /// canonically sorted regardless).
  bool stable_order = false;

  // ---- job control (see docs/JOB_CONTROL.md) ----

  /// \brief Wall-clock budget for the job in milliseconds; 0 (default) =
  /// none. The deadline arms the job's CancelToken at submission: once it
  /// elapses, tasks short-circuit at the next recursion-task or
  /// probe/wavefront boundary and the job reports JobCancelled with the
  /// partial stats of the work that ran. Honored by KvccEngine jobs and
  /// by the serial EnumerateKVccs / EnumerateKVccsStreaming paths.
  std::uint32_t deadline_ms = 0;

  /// \brief Latency class for engine scheduling (KvccEngine only; the
  /// serial path has nothing to schedule against). Every task of the job
  /// — root, subproblems — carries this class on the shared worker pool,
  /// so an interactive job overtakes a saturating bulk batch instead of
  /// merely round-robining with it. Results are identical across classes.
  JobPriority priority = JobPriority::kNormal;

  /// \brief Bound on undelivered components buffered in a
  /// KvccEngine::SubmitStream channel; 0 (default) = unbounded. When the
  /// consumer lags `stream_buffer_limit` components behind, the producing
  /// worker blocks (backpressure) until the consumer drains, the stream
  /// is abandoned, or the job is cancelled — capping the memory a slow
  /// consumer can pin, where an unbounded channel grows with the
  /// component count (worst-case exponential in dense graphs). Composes
  /// with stable_order: the reorder buffer releases in serial order and
  /// the channel bounds what is released but unread. Ignored by
  /// SubmitStreaming (a push sink owns its own buffering) and by the
  /// buffered APIs. Backpressure parks the producing worker inside the
  /// job's delivery section — pair bounded streams with deadline_ms if
  /// the consumer may stall forever (see docs/JOB_CONTROL.md).
  std::uint32_t stream_buffer_limit = 0;

  // ---- presets matching the paper's evaluated variants ----

  /// \brief Preset VCCE: the paper's basic algorithm (no sweeps, id
  /// order, no verdict maintenance).
  /// \return The configured options.
  static KvccOptions Vcce() {
    KvccOptions o;
    o.neighbor_sweep = false;
    o.group_sweep = false;
    o.distance_order = false;
    o.maintain_side_vertices = false;
    o.phase2_common_neighbor_skip = false;
    return o;
  }

  /// \brief Preset VCCE-N: basic + neighbor sweep, distance order, and
  /// verdict maintenance (Section 5.1).
  /// \return The configured options.
  static KvccOptions VcceN() {
    KvccOptions o = Vcce();
    o.neighbor_sweep = true;
    o.distance_order = true;
    o.maintain_side_vertices = true;
    return o;
  }

  /// \brief Preset VCCE-G: basic + group sweep and distance order
  /// (Section 5.2).
  /// \return The configured options.
  static KvccOptions VcceG() {
    KvccOptions o = Vcce();
    o.group_sweep = true;
    o.distance_order = true;
    return o;
  }

  /// \brief Preset VCCE*: every optimization on (Section 5.3,
  /// GLOBAL-CUT*) — the default-constructed options.
  /// \return The configured options.
  static KvccOptions VcceStar() { return KvccOptions(); }

  /// \brief Preset by name.
  /// \param name One of "VCCE", "VCCE-N", "VCCE-G", "VCCE*".
  /// \return The matching preset.
  /// \throws std::invalid_argument for unknown names.
  static KvccOptions FromVariantName(const std::string& name);
};

}  // namespace kvcc

#endif  // KVCC_KVCC_OPTIONS_H_
