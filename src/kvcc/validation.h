// Independent result validation: checks that a claimed k-VCC decomposition
// satisfies every property the paper proves. Downstream users can run this
// after an enumeration (it is how our own tests and benches self-check);
// it relies only on the flow-based connectivity oracle, not on the
// enumeration machinery.
#ifndef KVCC_KVCC_VALIDATION_H_
#define KVCC_KVCC_VALIDATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace kvcc {

struct ValidationReport {
  bool ok = true;
  /// Human-readable description of every violated property.
  std::vector<std::string> violations;

  void Fail(std::string what) {
    ok = false;
    violations.push_back(std::move(what));
  }
};

/// Validates `components` as the k-VCC set of g:
///   1. each component has more than k vertices (Definition 2),
///   2. each induced subgraph is k-vertex-connected (Lemma 1),
///   3. pairwise overlaps have fewer than k vertices (Property 1),
///   4. no component contains another (Lemma 3),
///   5. there are at most n/2 components (Theorem 6),
///   6. every component lies inside the k-core (Theorem 3),
///   7. every vertex of the k-core whose component is k-connected is
///      covered — spot-checked via: no k-connected "leftover" among the
///      k-core vertices missing from all components (completeness is spot
///      checked by re-running the cut search on uncovered regions).
ValidationReport ValidateKvccResult(
    const Graph& g, std::uint32_t k,
    const std::vector<std::vector<VertexId>>& components);

}  // namespace kvcc

#endif  // KVCC_KVCC_VALIDATION_H_
