// Sweep bookkeeping for GLOBAL-CUT* (paper Algorithm 4).
//
// A vertex is "swept" once the algorithm knows it is locally k-connected to
// the current source without running a max-flow test. Sweeping v:
//   * increments deposit(w) of every unswept neighbor w (Def. 11); when a
//     deposit reaches k, w is swept too (neighbor sweep rule 2 / Thm 9);
//   * if v is a strong side-vertex, sweeps all of v's neighbors directly
//     (neighbor sweep rule 1 / Lemma 11);
//   * increments the group deposit of v's side-group (Def. 13); when it
//     reaches k — or v is a strong side-vertex — sweeps the whole group
//     (group sweep rules 1 and 2 / Thm 11).
// Cascades are processed iteratively with an explicit worklist.
#ifndef KVCC_KVCC_SWEEP_CONTEXT_H_
#define KVCC_KVCC_SWEEP_CONTEXT_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "kvcc/sparse_certificate.h"

namespace kvcc {

/// Why a vertex was marked locally k-connected to the source.
enum class SweepCause : std::uint8_t {
  kTested,      // source itself, or an actual/trivial phase-1 test passed
  kNeighborSweepSide,     // rule NS1: neighbor of a swept strong side-vertex
  kNeighborSweepDeposit,  // rule NS2: vertex deposit reached k
  kGroupSweep,            // rules GS1/GS2: whole side-group swept
};

class SweepContext {
 public:
  /// `g` is the working graph (sweep conditions use its full adjacency);
  /// `strong` flags strong side-vertices of g; `groups`/`group_of` come from
  /// the sparse certificate. Either sweep family can be disabled.
  SweepContext(const Graph& g, std::uint32_t k,
               const std::vector<bool>& strong,
               const std::vector<std::vector<VertexId>>& groups,
               const std::vector<std::uint32_t>& group_of,
               bool neighbor_sweep_enabled, bool group_sweep_enabled);

  /// Marks v locally k-connected to the source and runs all cascades.
  /// No-op if v is already swept.
  void Sweep(VertexId v, SweepCause cause);

  bool IsSwept(VertexId v) const { return swept_[v]; }
  SweepCause CauseOf(VertexId v) const { return cause_[v]; }

  std::uint32_t deposit(VertexId v) const { return deposit_[v]; }
  std::uint32_t group_deposit(std::uint32_t group) const {
    return group_deposit_[group];
  }

 private:
  void Enqueue(VertexId v, SweepCause cause);

  const Graph& graph_;
  const std::uint32_t k_;
  const std::vector<bool>& strong_;
  const std::vector<std::vector<VertexId>>& groups_;
  const std::vector<std::uint32_t>& group_of_;
  const bool neighbor_sweep_enabled_;
  const bool group_sweep_enabled_;

  std::vector<bool> swept_;
  std::vector<SweepCause> cause_;
  std::vector<std::uint32_t> deposit_;
  std::vector<std::uint32_t> group_deposit_;
  std::vector<bool> group_processed_;
  std::vector<VertexId> worklist_;
};

}  // namespace kvcc

#endif  // KVCC_KVCC_SWEEP_CONTEXT_H_
