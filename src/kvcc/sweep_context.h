// Sweep bookkeeping for GLOBAL-CUT* (paper Algorithm 4).
//
// A vertex is "swept" once the algorithm knows it is locally k-connected to
// the current source without running a max-flow test. Sweeping v:
//   * increments deposit(w) of every unswept neighbor w (Def. 11); when a
//     deposit reaches k, w is swept too (neighbor sweep rule 2 / Thm 9);
//   * if v is a strong side-vertex, sweeps all of v's neighbors directly
//     (neighbor sweep rule 1 / Lemma 11);
//   * increments the group deposit of v's side-group (Def. 13); when it
//     reaches k — or v is a strong side-vertex — sweeps the whole group
//     (group sweep rules 1 and 2 / Thm 11).
// Cascades are processed iteratively with an explicit worklist.
//
// A SweepContext is reusable: Bind() rebinds it to a new working graph in
// O(1) amortized time by bumping an epoch instead of clearing (or
// reallocating) its six per-vertex/per-group arrays. State written under an
// older epoch reads as pristine (unswept, zero deposits), so one instance
// per enumeration worker serves every GLOBAL-CUT call of a run without
// per-call allocation.
//
// Concurrency contract (intra-cut wavefronts): the API splits into const
// snapshot queries (IsSwept, CauseOf, deposit, group_deposit) and the
// mutating commit call (Sweep). GLOBAL-CUT's wavefronts rely on that
// split — wavefront *formation* reads the snapshot and *commits* replay
// sweeps, both on the owning thread, while the concurrent probes read no
// sweep state at all (a probe's flow result does not depend on what is
// swept; sweeping only decides whether a probe's result is used). The
// context itself is therefore never accessed from more than one thread and
// needs no synchronization.
#ifndef KVCC_KVCC_SWEEP_CONTEXT_H_
#define KVCC_KVCC_SWEEP_CONTEXT_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "kvcc/sparse_certificate.h"

namespace kvcc {

/// Why a vertex was marked locally k-connected to the source.
enum class SweepCause : std::uint8_t {
  kTested,      // source itself, or an actual/trivial phase-1 test passed
  kNeighborSweepSide,     // rule NS1: neighbor of a swept strong side-vertex
  kNeighborSweepDeposit,  // rule NS2: vertex deposit reached k
  kGroupSweep,            // rules GS1/GS2: whole side-group swept
};

class SweepContext {
 public:
  /// Unbound context; call Bind() before use.
  SweepContext() = default;

  /// Convenience: construct and Bind in one step (see Bind for parameter
  /// semantics).
  SweepContext(const Graph& g, std::uint32_t k,
               const std::vector<bool>& strong,
               const std::vector<std::vector<VertexId>>& groups,
               const std::vector<std::uint32_t>& group_of,
               bool neighbor_sweep_enabled, bool group_sweep_enabled) {
    Bind(g, k, strong, groups, group_of, neighbor_sweep_enabled,
         group_sweep_enabled);
  }

  /// (Re)binds the context to a working graph, resetting all sweep state.
  /// `g` is the working graph (sweep conditions use its full adjacency);
  /// `strong` flags strong side-vertices of g; `groups`/`group_of` come
  /// from the sparse certificate. Either sweep family can be disabled. All
  /// arguments are borrowed and must outlive the binding (i.e. stay alive
  /// until the next Bind or destruction).
  void Bind(const Graph& g, std::uint32_t k, const std::vector<bool>& strong,
            const std::vector<std::vector<VertexId>>& groups,
            const std::vector<std::uint32_t>& group_of,
            bool neighbor_sweep_enabled, bool group_sweep_enabled);

  /// Marks v locally k-connected to the source and runs all cascades.
  /// No-op if v is already swept.
  void Sweep(VertexId v, SweepCause cause);

  bool IsSwept(VertexId v) const {
    return vertex_epoch_[v] == epoch_ && swept_[v];
  }
  SweepCause CauseOf(VertexId v) const {
    return vertex_epoch_[v] == epoch_ ? cause_[v] : SweepCause::kTested;
  }

  std::uint32_t deposit(VertexId v) const {
    return vertex_epoch_[v] == epoch_ ? deposit_[v] : 0;
  }
  std::uint32_t group_deposit(std::uint32_t group) const {
    return group_epoch_[group] == epoch_ ? group_deposit_[group] : 0;
  }

 private:
  /// Lazily initializes v's slice of the per-vertex arrays for the current
  /// epoch. Every write path goes through here first.
  void TouchVertex(VertexId v) {
    if (vertex_epoch_[v] != epoch_) {
      vertex_epoch_[v] = epoch_;
      swept_[v] = false;
      cause_[v] = SweepCause::kTested;
      deposit_[v] = 0;
    }
  }
  void TouchGroup(std::uint32_t group) {
    if (group_epoch_[group] != epoch_) {
      group_epoch_[group] = epoch_;
      group_deposit_[group] = 0;
      group_processed_[group] = false;
    }
  }
  void Enqueue(VertexId v, SweepCause cause);

  const Graph* graph_ = nullptr;
  std::uint32_t k_ = 0;
  const std::vector<bool>* strong_ = nullptr;
  const std::vector<std::vector<VertexId>>* groups_ = nullptr;
  const std::vector<std::uint32_t>* group_of_ = nullptr;
  bool neighbor_sweep_enabled_ = false;
  bool group_sweep_enabled_ = false;

  // Epoch 0 never matches: stamps start at 0, epochs at 1. 64-bit, so the
  // counter cannot wrap within any feasible run.
  std::uint64_t epoch_ = 0;
  std::vector<std::uint64_t> vertex_epoch_;
  std::vector<std::uint64_t> group_epoch_;

  // Payload arrays, valid for entries stamped with the current epoch. They
  // only ever grow (to the largest graph seen), never shrink or clear.
  std::vector<bool> swept_;
  std::vector<SweepCause> cause_;
  std::vector<std::uint32_t> deposit_;
  std::vector<std::uint32_t> group_deposit_;
  std::vector<bool> group_processed_;
  std::vector<VertexId> worklist_;
};

}  // namespace kvcc

#endif  // KVCC_KVCC_SWEEP_CONTEXT_H_
