#include "kvcc/validation.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "graph/connected_components.h"
#include "graph/k_core.h"
#include "kvcc/connectivity.h"

namespace kvcc {
namespace {

std::string Describe(std::size_t index,
                     const std::vector<VertexId>& component) {
  std::ostringstream out;
  out << "component #" << index << " (size " << component.size() << ")";
  return out.str();
}

}  // namespace

ValidationReport ValidateKvccResult(
    const Graph& g, std::uint32_t k,
    const std::vector<std::vector<VertexId>>& components) {
  ValidationReport report;

  // 5. count bound.
  if (2 * components.size() > g.NumVertices()) {
    report.Fail("more than n/2 components (Theorem 6 violated)");
  }

  const auto core = KCoreVertices(g, k);
  const std::set<VertexId> core_set(core.begin(), core.end());
  std::vector<bool> covered(g.NumVertices(), false);

  for (std::size_t i = 0; i < components.size(); ++i) {
    const auto& component = components[i];
    if (!std::is_sorted(component.begin(), component.end())) {
      report.Fail(Describe(i, component) + ": vertex list not sorted");
      continue;
    }
    // 1. size.
    if (component.size() <= k) {
      report.Fail(Describe(i, component) + ": needs more than k vertices");
    }
    // 6. k-core nesting.
    bool out_of_range = false;
    for (VertexId v : component) {
      if (v >= g.NumVertices()) {
        report.Fail(Describe(i, component) + ": vertex out of range");
        out_of_range = true;
        break;
      }
      if (!core_set.count(v)) {
        report.Fail(Describe(i, component) + ": vertex " +
                    std::to_string(v) + " outside the k-core");
        break;
      }
      covered[v] = true;
    }
    if (out_of_range) continue;  // InducedSubgraph would index out of bounds.
    // 2. k-vertex-connectivity.
    const Graph sub = g.InducedSubgraph(component);
    if (!IsKVertexConnected(sub, k)) {
      report.Fail(Describe(i, component) + ": not k-vertex-connected");
    }
  }

  // 3 + 4. pairwise overlap / containment.
  for (std::size_t i = 0; i < components.size(); ++i) {
    for (std::size_t j = i + 1; j < components.size(); ++j) {
      std::vector<VertexId> overlap;
      std::set_intersection(components[i].begin(), components[i].end(),
                            components[j].begin(), components[j].end(),
                            std::back_inserter(overlap));
      if (overlap.size() >= k) {
        report.Fail("components #" + std::to_string(i) + " and #" +
                    std::to_string(j) + " overlap in >= k vertices");
      }
      if (overlap.size() == components[i].size() ||
          overlap.size() == components[j].size()) {
        report.Fail("components #" + std::to_string(i) + " and #" +
                    std::to_string(j) + " nest (redundancy)");
      }
    }
  }

  // 7. completeness spot check: an uncovered part of the k-core that is
  // itself k-connected would be a missed k-VCC (or part of one).
  std::vector<VertexId> uncovered;
  for (VertexId v : core) {
    if (!covered[v]) uncovered.push_back(v);
  }
  if (!uncovered.empty()) {
    const Graph leftover = g.InducedSubgraph(uncovered);
    // Re-peel: only parts with min degree >= k could host a k-VCC.
    const Graph repeel = KCoreSubgraph(leftover, k);
    for (const auto& comp : ConnectedComponents(repeel)) {
      if (comp.size() <= k) continue;
      if (IsKVertexConnected(repeel.InducedSubgraph(comp), k)) {
        report.Fail("uncovered k-connected region of " +
                    std::to_string(comp.size()) +
                    " vertices (missed k-VCC)");
      }
    }
  }
  return report;
}

}  // namespace kvcc
