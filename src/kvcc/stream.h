// Streaming result delivery for k-VCC enumeration.
//
// The VCCE recursion (paper Algorithm 1) emits each k-VCC the moment its
// recursion branch bottoms out, but KvccEngine::Wait buffers the whole
// component set until the last subtree finishes. The types here let a
// consumer observe components as they commit instead:
//
//   * ComponentSink — push-style: KvccEngine::SubmitStreaming invokes the
//     sink for every finished component and once more on completion;
//   * ResultStream — pull-style: KvccEngine::SubmitStream returns an
//     iterator-like handle whose Next() blocks for the next component.
//
// Delivery contract (enforced by tests/engine_test.cc): the multiset of
// streamed components is byte-identical to the KvccResult::components a
// Wait() on the same (graph, k, options) would return, for every worker
// count. With KvccOptions::stable_order the *order* is additionally the
// exact serial emission order (the order EnumerateKVccsStreaming with
// num_threads = 1 produces), reconstructed from out-of-order completions
// by a reorder buffer inside the engine.
#ifndef KVCC_KVCC_STREAM_H_
#define KVCC_KVCC_STREAM_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "graph/graph.h"
#include "kvcc/job_control.h"
#include "kvcc/stats.h"

/// \file
/// \brief Streaming result delivery: ComponentSink (push) and
/// ResultStream (pull) observe each k-VCC the moment its subproblem
/// commits, instead of buffering until KvccEngine::Wait.

namespace kvcc {

/// \brief One k-VCC delivered through a streaming channel.
struct StreamedComponent {
  /// \brief Per-job delivery index: 0 for the first component a job
  /// delivers, then 1, 2, ... with no gaps. Under
  /// KvccOptions::stable_order this equals the component's position in
  /// the serial emission order.
  std::uint64_t sequence = 0;

  /// \brief The component's vertex ids in the input graph's id space,
  /// sorted ascending — the same bytes Wait() would have returned for
  /// this component.
  std::vector<VertexId> vertices;
};

/// \brief Consumer interface for push-style streaming
/// (KvccEngine::SubmitStreaming, EnumerateKVccsStreaming).
///
/// Calls are *serialized per job* (never concurrent with each other) but
/// may arrive on any worker thread, so implementations need no locking of
/// their own state against the engine — only against the implementor's
/// other threads. Exactly one of OnComplete / OnError is the last call a
/// job makes. An exception thrown from OnComponent poisons the job:
/// delivery stops, the job's remaining subproblems still drain, and the
/// exception is rethrown by KvccEngine::Wait (or immediately by the
/// serial EnumerateKVccsStreaming path).
class ComponentSink {
 public:
  /// \brief Sinks are owned (or borrowed) by the caller; destroying one
  /// while its job is in flight is the caller's bug.
  virtual ~ComponentSink();

  /// \brief Receives one finished k-VCC as soon as its subproblem commits
  /// (or, under stable_order, as soon as every serially-earlier component
  /// has been delivered).
  /// \param component The component and its per-job sequence number.
  virtual void OnComponent(StreamedComponent component) = 0;

  /// \brief Final call on success: every component has been delivered.
  /// \param stats The job's merged execution counters (identical totals
  ///   to the serial run's for every pre-existing field; probe-waste
  ///   diagnostics may differ, see KvccStats).
  virtual void OnComplete(const KvccStats& stats) = 0;

  /// \brief Final call on failure: the job (or the sink itself) threw.
  /// Default implementation does nothing; the error also reaches the
  /// caller by throw (from Wait or from EnumerateKVccsStreaming).
  /// \param error The first exception the job recorded.
  virtual void OnError(std::exception_ptr error);
};

namespace internal {

/// Shared state between a streaming job's producer side (the engine's
/// channel sink) and a ResultStream consumer. Unbounded by default:
/// undelivered components occupy the same memory a buffered Wait() would
/// have held. With `limit` > 0 (KvccOptions::stream_buffer_limit) the
/// queue is bounded: the producer blocks while it is full, until the
/// consumer pops, the stream is abandoned, or the job's cancel token
/// fires — so a slow consumer pins at most `limit` undelivered
/// components instead of the whole result set.
struct StreamChannel {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<StreamedComponent> queue;
  bool complete = false;   // producer finished (stats or error valid)
  bool abandoned = false;  // consumer gone; drop further pushes
  KvccStats stats;
  std::exception_ptr error;

  // --- job control (set by the engine before the job's root task runs) ---
  std::size_t limit = 0;  // 0 = unbounded
  CancelToken cancel;     // shares the job's flag; Abandon() requests it
  // Delivery diagnostics, patched into `stats` at completion.
  std::uint64_t backpressure_blocks = 0;
  std::uint64_t peak_queued = 0;
};

}  // namespace internal

/// \brief Pull-style handle to one streaming job
/// (see KvccEngine::SubmitStream).
///
/// Next() blocks until the next component commits; after it returns
/// std::nullopt the job is finished and Stats() is valid. Destroying a
/// stream mid-flight *abandons* it: undelivered components are discarded
/// and the job's cancel token is requested, so its remaining recursion
/// short-circuits at the next task / probe boundary and the workers
/// return promptly instead of draining the whole tree (the partial
/// bookkeeping is still reclaimed normally). Abandonment then joins the
/// job — it blocks until the final task has retired — so once the stream
/// is gone the caller may destroy the graph it submitted: a detached
/// SubmitStream job reads that graph in place, and the join is what
/// makes the detachment memory-safe. A stream must not outlive its
/// engine.
class ResultStream {
 public:
  /// \brief Streams are movable but not copyable (one consumer per job).
  ResultStream(ResultStream&&) noexcept = default;
  /// \brief Move assignment; the overwritten stream is abandoned.
  ResultStream& operator=(ResultStream&&) noexcept;
  /// \brief Streams are not copyable (one consumer per job).
  ResultStream(const ResultStream&) = delete;
  /// \brief Streams are not copyable (one consumer per job).
  ResultStream& operator=(const ResultStream&) = delete;

  /// \brief Abandons the stream if it was not fully drained (see class
  /// comment): cancels the job and joins it, blocking until its final
  /// task retires so the submitted graph may be destroyed afterwards.
  ~ResultStream();

  /// \brief Blocks until the next component is available and returns it;
  /// returns std::nullopt once the job has completed and every component
  /// has been delivered.
  /// \return The next component in delivery order, or std::nullopt at
  ///   end of stream.
  /// \throws Whatever the job failed with (first recorded exception),
  ///   after the in-order prefix delivered so far. A job cancelled by
  ///   KvccOptions::deadline_ms surfaces here as JobCancelled (with the
  ///   partial stats of the work that ran).
  std::optional<StreamedComponent> Next();

  /// \brief Components currently buffered in the channel (delivered by
  /// the job but not yet returned by Next()). With
  /// KvccOptions::stream_buffer_limit > 0 this never exceeds the limit —
  /// the producer blocks instead.
  /// \return The instantaneous undelivered-component count.
  std::size_t BufferedComponents() const;

  /// \brief Deliveries that have blocked on the full bounded channel so
  /// far (live view of what KvccStats::stream_backpressure_blocks will
  /// report at completion). Monitoring hook: a consumer watching this
  /// grow knows it is the bottleneck while the job still runs.
  /// \return The running backpressure-block count.
  std::uint64_t BackpressureBlocks() const;

  /// \brief The job's final merged counters.
  /// \return Reference valid for the stream's lifetime.
  /// \throws std::logic_error if the stream has not finished yet (call
  ///   Next() until it returns std::nullopt first); rethrows the job's
  ///   recorded error if it finished by failing (a failed job has no
  ///   final stats).
  const KvccStats& Stats() const;

 private:
  friend class KvccEngine;
  explicit ResultStream(std::shared_ptr<internal::StreamChannel> channel);

  void Abandon();

  std::shared_ptr<internal::StreamChannel> channel_;
};

}  // namespace kvcc

#endif  // KVCC_KVCC_STREAM_H_
