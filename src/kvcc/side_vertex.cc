#include "kvcc/side_vertex.h"

#include <unordered_map>

namespace kvcc {
namespace {

/// Memoized Theorem-8 pair check. In clique-rich graphs the same neighbor
/// pair (v, v') appears in N(u) for every common neighbor u, so caching the
/// verdict turns Theta(d^2 * common) repeated work into a hash lookup.
class PairVerdictCache {
 public:
  PairVerdictCache(const Graph& g, std::uint32_t k) : graph_(g), k_(k) {}

  bool PairIsGood(VertexId v, VertexId w) {
    if (graph_.HasEdge(v, w)) return true;
    const std::uint64_t key =
        (static_cast<std::uint64_t>(std::min(v, w)) << 32) | std::max(v, w);
    const auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
    const bool good = CommonNeighborsAtLeast(graph_, v, w, k_);
    cache_.emplace(key, good);
    return good;
  }

 private:
  const Graph& graph_;
  const std::uint32_t k_;
  std::unordered_map<std::uint64_t, bool> cache_;
};

}  // namespace

bool CommonNeighborsAtLeast(const Graph& g, VertexId a, VertexId b,
                            std::uint32_t k) {
  if (k == 0) return true;
  const auto na = g.Neighbors(a);
  const auto nb = g.Neighbors(b);
  std::uint32_t common = 0;
  std::size_t i = 0, j = 0;
  while (i < na.size() && j < nb.size()) {
    // Even if every remaining candidate matched, k would be unreachable.
    const std::size_t remaining = std::min(na.size() - i, nb.size() - j);
    if (common + remaining < k) return false;
    if (na[i] < nb[j]) {
      ++i;
    } else if (na[i] > nb[j]) {
      ++j;
    } else {
      if (++common >= k) return true;
      ++i;
      ++j;
    }
  }
  return false;
}

bool IsStrongSideVertex(const Graph& g, VertexId u, std::uint32_t k) {
  const auto nbrs = g.Neighbors(u);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
      const VertexId v = nbrs[i];
      const VertexId w = nbrs[j];
      if (g.HasEdge(v, w)) continue;
      if (CommonNeighborsAtLeast(g, v, w, k)) continue;
      return false;
    }
  }
  return true;
}

SideVertexResult ComputeStrongSideVertices(
    const Graph& g, std::uint32_t k, const std::vector<SideVertexHint>& hints,
    std::uint32_t degree_cap) {
  const VertexId n = g.NumVertices();
  SideVertexResult out;
  out.strong.assign(n, false);
  PairVerdictCache pairs(g, k);
  for (VertexId u = 0; u < n; ++u) {
    if (!hints.empty()) {
      if (hints[u] == SideVertexHint::kStrong) {
        out.strong[u] = true;
        ++out.reused;
        ++out.strong_count;
        continue;
      }
      if (hints[u] == SideVertexHint::kNotStrong) {
        ++out.reused;
        continue;
      }
    }
    if (degree_cap != 0 && g.Degree(u) > degree_cap) continue;
    ++out.checks_run;
    const auto nbrs = g.Neighbors(u);
    bool strong = true;
    for (std::size_t i = 0; i < nbrs.size() && strong; ++i) {
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        if (!pairs.PairIsGood(nbrs[i], nbrs[j])) {
          strong = false;
          break;
        }
      }
    }
    if (strong) {
      out.strong[u] = true;
      ++out.strong_count;
    }
  }
  return out;
}

std::vector<bool> TwoHopBall(const Graph& g,
                             const std::vector<VertexId>& sources) {
  const VertexId n = g.NumVertices();
  std::vector<bool> ball(n, false);
  for (VertexId s : sources) ball[s] = true;
  // Two whole-graph dilation passes: O(n + m) independent of |sources|.
  for (int pass = 0; pass < 2; ++pass) {
    std::vector<bool> next = ball;
    for (VertexId v = 0; v < n; ++v) {
      if (next[v]) continue;
      for (VertexId w : g.Neighbors(v)) {
        if (ball[w]) {
          next[v] = true;
          break;
        }
      }
    }
    ball = std::move(next);
  }
  return ball;
}

}  // namespace kvcc
