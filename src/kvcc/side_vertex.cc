#include "kvcc/side_vertex.h"

#include <algorithm>

namespace kvcc {
namespace {

/// SplitMix64 finalizer: spreads packed (min, max) vertex pairs across the
/// table (consecutive ids would otherwise cluster in one probe run).
std::uint64_t MixPairKey(std::uint64_t key) {
  key += 0x9e3779b97f4a7c15ull;
  key = (key ^ (key >> 30)) * 0xbf58476d1ce4e5b9ull;
  key = (key ^ (key >> 27)) * 0x94d049bb133111ebull;
  return key ^ (key >> 31);
}

/// Memoized Theorem-8 pair check over the flat epoch-stamped table in
/// SideVertexScratch. In clique-rich graphs the same neighbor pair (v, v')
/// appears in N(u) for every common neighbor u, so caching the verdict
/// turns Theta(d^2 * common) repeated work into a probe-and-read — without
/// the per-node allocations an unordered_map would pay on every insert.
class PairVerdictCache {
 public:
  PairVerdictCache(const Graph& g, std::uint32_t k, SideVertexScratch& scratch)
      : graph_(g), k_(k), scratch_(scratch) {
    ++scratch_.pair_epoch;  // O(1) invalidation of all cached verdicts.
    scratch_.pair_live = 0;
    if (scratch_.pair_slots.empty()) scratch_.pair_slots.resize(kMinSlots);
  }

  bool PairIsGood(VertexId v, VertexId w) {
    if (graph_.HasEdge(v, w)) return true;
    const std::uint64_t key =
        (static_cast<std::uint64_t>(std::min(v, w)) << 32) | std::max(v, w);
    auto& slots = scratch_.pair_slots;
    const std::size_t mask = slots.size() - 1;
    std::size_t i = MixPairKey(key) & mask;
    while (true) {
      SideVertexScratch::PairSlot& slot = slots[i];
      if (slot.epoch != scratch_.pair_epoch) {
        // Empty slot for this epoch: compute, memoize, maybe grow.
        const bool good = CommonNeighborsAtLeast(graph_, v, w, k_);
        slot.key = key;
        slot.epoch = scratch_.pair_epoch;
        slot.good = good;
        if (++scratch_.pair_live * 2 > slots.size()) Grow();
        return good;
      }
      if (slot.key == key) return slot.good;
      i = (i + 1) & mask;
    }
  }

 private:
  /// Doubles the table. Cached verdicts are dropped (epoch bump) rather
  /// than rehashed: they are pure functions of (graph, k, pair), so losing
  /// them costs recomputation, never correctness — and steady state (table
  /// already at the high-water mark of the run) never grows again.
  void Grow() {
    auto& slots = scratch_.pair_slots;
    const std::size_t next = slots.size() * 2;
    slots.assign(next, SideVertexScratch::PairSlot{});
    ++scratch_.pair_epoch;
    scratch_.pair_live = 0;
  }

  static constexpr std::size_t kMinSlots = 64;  // power of two

  const Graph& graph_;
  const std::uint32_t k_;
  SideVertexScratch& scratch_;
};

}  // namespace

bool CommonNeighborsAtLeast(const Graph& g, VertexId a, VertexId b,
                            std::uint32_t k) {
  if (k == 0) return true;
  const auto na = g.Neighbors(a);
  const auto nb = g.Neighbors(b);
  std::uint32_t common = 0;
  std::size_t i = 0, j = 0;
  while (i < na.size() && j < nb.size()) {
    // Even if every remaining candidate matched, k would be unreachable.
    const std::size_t remaining = std::min(na.size() - i, nb.size() - j);
    if (common + remaining < k) return false;
    if (na[i] < nb[j]) {
      ++i;
    } else if (na[i] > nb[j]) {
      ++j;
    } else {
      if (++common >= k) return true;
      ++i;
      ++j;
    }
  }
  return false;
}

bool IsStrongSideVertex(const Graph& g, VertexId u, std::uint32_t k) {
  const auto nbrs = g.Neighbors(u);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
      const VertexId v = nbrs[i];
      const VertexId w = nbrs[j];
      if (g.HasEdge(v, w)) continue;
      if (CommonNeighborsAtLeast(g, v, w, k)) continue;
      return false;
    }
  }
  return true;
}

// kvcc-lint: no-alloc — warm path under tests/memory_tracker_test.cc's
// WarmGlobalCutAllocatesNothing: the strong mask and the pair table are
// grow-only scratch; the memoized pair checks recycle slots by epoch.
SideVertexCounts ComputeStrongSideVerticesInto(
    const Graph& g, std::uint32_t k, const std::vector<SideVertexHint>& hints,
    std::uint32_t degree_cap, SideVertexScratch& scratch) {
  const VertexId n = g.NumVertices();
  SideVertexCounts out;
  scratch.strong.assign(n, false);  // kvcc-lint: reserved
  PairVerdictCache pairs(g, k, scratch);
  for (VertexId u = 0; u < n; ++u) {
    if (!hints.empty()) {
      if (hints[u] == SideVertexHint::kStrong) {
        scratch.strong[u] = true;
        ++out.reused;
        ++out.strong_count;
        continue;
      }
      if (hints[u] == SideVertexHint::kNotStrong) {
        ++out.reused;
        continue;
      }
    }
    if (degree_cap != 0 && g.Degree(u) > degree_cap) continue;
    ++out.checks_run;
    const auto nbrs = g.Neighbors(u);
    bool strong = true;
    for (std::size_t i = 0; i < nbrs.size() && strong; ++i) {
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        if (!pairs.PairIsGood(nbrs[i], nbrs[j])) {
          strong = false;
          break;
        }
      }
    }
    if (strong) {
      scratch.strong[u] = true;
      ++out.strong_count;
    }
  }
  return out;
}

SideVertexResult ComputeStrongSideVertices(
    const Graph& g, std::uint32_t k, const std::vector<SideVertexHint>& hints,
    std::uint32_t degree_cap) {
  SideVertexScratch scratch;
  const SideVertexCounts counts =
      ComputeStrongSideVerticesInto(g, k, hints, degree_cap, scratch);
  SideVertexResult out;
  out.strong = std::move(scratch.strong);
  out.checks_run = counts.checks_run;
  out.reused = counts.reused;
  out.strong_count = counts.strong_count;
  return out;
}

std::vector<bool> TwoHopBall(const Graph& g,
                             const std::vector<VertexId>& sources) {
  const VertexId n = g.NumVertices();
  std::vector<bool> ball(n, false);
  for (VertexId s : sources) ball[s] = true;
  // Two whole-graph dilation passes: O(n + m) independent of |sources|.
  for (int pass = 0; pass < 2; ++pass) {
    std::vector<bool> next = ball;
    for (VertexId v = 0; v < n; ++v) {
      if (next[v]) continue;
      for (VertexId w : g.Neighbors(v)) {
        if (ball[w]) {
          next[v] = true;
          break;
        }
      }
    }
    ball = std::move(next);
  }
  return ball;
}

}  // namespace kvcc
