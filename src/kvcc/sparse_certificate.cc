#include "kvcc/sparse_certificate.h"

#include <algorithm>

#include "graph/graph_builder.h"

namespace kvcc {
namespace {

/// Positions of each adjacency entry's reverse entry, so forest edges can be
/// retired from both endpoints in O(1).
std::vector<std::uint64_t> BuildMatePositions(const Graph& g) {
  std::vector<std::uint64_t> mate;
  std::vector<std::uint64_t> entry_offset(g.NumVertices() + 1, 0);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    entry_offset[v + 1] = entry_offset[v] + g.Degree(v);
  }
  mate.resize(entry_offset[g.NumVertices()]);
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    const auto nbrs = g.Neighbors(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId v = nbrs[i];
      // Position of u within v's sorted neighbor list.
      const auto vn = g.Neighbors(v);
      const auto it = std::lower_bound(vn.begin(), vn.end(), u);
      mate[entry_offset[u] + i] =
          entry_offset[v] + static_cast<std::uint64_t>(it - vn.begin());
    }
  }
  return mate;
}

}  // namespace

SparseCertificate BuildSparseCertificate(const Graph& g, std::uint32_t k) {
  const VertexId n = g.NumVertices();
  SparseCertificate out;
  out.group_of.assign(n, kNoGroup);

  std::vector<std::uint64_t> entry_offset(n + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    entry_offset[v + 1] = entry_offset[v] + g.Degree(v);
  }
  const std::vector<std::uint64_t> mate = BuildMatePositions(g);
  std::vector<bool> used(entry_offset[n], false);

  GraphBuilder certificate_builder(n);
  std::vector<bool> visited(n);
  std::vector<VertexId> queue;
  std::vector<std::pair<VertexId, VertexId>> last_forest;

  for (std::uint32_t round = 0; round < k; ++round) {
    std::fill(visited.begin(), visited.end(), false);
    last_forest.clear();
    bool any_edge = false;

    for (VertexId root = 0; root < n; ++root) {
      if (visited[root]) continue;
      visited[root] = true;
      queue.clear();
      queue.push_back(root);
      for (std::size_t head = 0; head < queue.size(); ++head) {
        const VertexId u = queue[head];
        // Scan u: claim one unused edge to every unvisited neighbor.
        const auto nbrs = g.Neighbors(u);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
          const std::uint64_t pos = entry_offset[u] + i;
          if (used[pos]) continue;
          const VertexId w = nbrs[i];
          if (visited[w]) continue;
          visited[w] = true;
          used[pos] = true;
          used[mate[pos]] = true;
          certificate_builder.AddEdge(u, w);
          last_forest.emplace_back(u, w);
          any_edge = true;
          queue.push_back(w);
        }
      }
    }
    if (!any_edge) break;  // Graph exhausted before k rounds.
  }

  // Side-groups: components of the k-th (= last completed) forest. When the
  // graph ran out of edges early, the final forest is empty and there are
  // no groups; that is sound (groups are a pure optimization).
  {
    std::vector<std::vector<VertexId>> adjacency(n);
    for (const auto& [u, w] : last_forest) {
      adjacency[u].push_back(w);
      adjacency[w].push_back(u);
    }
    std::vector<bool> seen(n, false);
    for (VertexId root = 0; root < n; ++root) {
      if (seen[root] || adjacency[root].empty()) continue;
      seen[root] = true;
      std::vector<VertexId> component{root};
      for (std::size_t head = 0; head < component.size(); ++head) {
        for (VertexId w : adjacency[component[head]]) {
          if (!seen[w]) {
            seen[w] = true;
            component.push_back(w);
          }
        }
      }
      if (component.size() < 2) continue;
      const auto group_id = static_cast<std::uint32_t>(out.groups.size());
      std::sort(component.begin(), component.end());
      for (VertexId v : component) out.group_of[v] = group_id;
      out.groups.push_back(std::move(component));
    }
  }

  // Preserve the input graph's labels on the certificate (same vertex ids).
  if (g.HasLabels()) {
    std::vector<VertexId> labels(n);
    for (VertexId v = 0; v < n; ++v) labels[v] = g.LabelOf(v);
    certificate_builder.SetLabels(std::move(labels));
  }
  out.certificate = certificate_builder.Build();
  return out;
}

}  // namespace kvcc
