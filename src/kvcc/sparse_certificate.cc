#include "kvcc/sparse_certificate.h"

#include <algorithm>

namespace kvcc {

SparseCertificate BuildSparseCertificate(const Graph& g, std::uint32_t k) {
  SparseCertificate out;
  CertificateScratch scratch;
  BuildSparseCertificate(g, k, out, scratch);
  return out;
}

void BuildSparseCertificate(const Graph& g, std::uint32_t k,
                            SparseCertificate& out,
                            CertificateScratch& scratch) {
  const VertexId n = g.NumVertices();
  out.group_of.assign(n, kNoGroup);

  auto& entry_offset = scratch.entry_offset;
  entry_offset.assign(n + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    entry_offset[v + 1] = entry_offset[v] + g.Degree(v);
  }

  // Positions of each adjacency entry's reverse entry, so forest edges can
  // be retired from both endpoints in O(1).
  auto& mate = scratch.mate;
  mate.resize(entry_offset[n]);  // Fully overwritten below.
  for (VertexId u = 0; u < n; ++u) {
    const auto nbrs = g.Neighbors(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId v = nbrs[i];
      // Position of u within v's sorted neighbor list.
      const auto vn = g.Neighbors(v);
      const auto it = std::lower_bound(vn.begin(), vn.end(), u);
      mate[entry_offset[u] + i] =
          entry_offset[v] + static_cast<std::uint64_t>(it - vn.begin());
    }
  }

  auto& used = scratch.used;
  used.assign(entry_offset[n], false);

  GraphBuilder& certificate_builder = scratch.builder;
  if (n > 0) certificate_builder.EnsureVertex(n - 1);
  auto& visited = scratch.visited;
  visited.assign(n, false);
  auto& queue = scratch.queue;
  auto& last_forest = scratch.last_forest;

  for (std::uint32_t round = 0; round < k; ++round) {
    if (round > 0) std::fill(visited.begin(), visited.end(), false);
    last_forest.clear();
    bool any_edge = false;

    for (VertexId root = 0; root < n; ++root) {
      if (visited[root]) continue;
      visited[root] = true;
      queue.clear();
      queue.push_back(root);
      for (std::size_t head = 0; head < queue.size(); ++head) {
        const VertexId u = queue[head];
        // Scan u: claim one unused edge to every unvisited neighbor.
        const auto nbrs = g.Neighbors(u);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
          const std::uint64_t pos = entry_offset[u] + i;
          if (used[pos]) continue;
          const VertexId w = nbrs[i];
          if (visited[w]) continue;
          visited[w] = true;
          used[pos] = true;
          used[mate[pos]] = true;
          certificate_builder.AddEdge(u, w);
          last_forest.emplace_back(u, w);
          any_edge = true;
          queue.push_back(w);
        }
      }
    }
    if (!any_edge) break;  // Graph exhausted before k rounds.
  }

  // Side-groups: components of the k-th (= last completed) forest, found by
  // BFS over a flat CSR of its edges. When the graph ran out of edges
  // early, the final forest is empty and there are no groups; that is
  // sound (groups are a pure optimization). Group ids increase with the
  // smallest member (roots are scanned ascending and a component's first
  // unseen vertex is its minimum), matching the nested-vector original.
  {
    auto& offset = scratch.forest_offset;
    auto& adj = scratch.forest_adj;
    offset.assign(n + 1, 0);
    for (const auto& [u, w] : last_forest) {
      ++offset[u + 1];
      ++offset[w + 1];
    }
    for (VertexId v = 0; v < n; ++v) offset[v + 1] += offset[v];
    adj.resize(2 * last_forest.size());
    {
      // Reuse the BFS queue's storage as the fill cursor; sized n below.
      auto& cursor = scratch.queue;
      cursor.assign(offset.begin(), offset.end() - 1);
      for (const auto& [u, w] : last_forest) {
        adj[cursor[u]++] = w;
        adj[cursor[w]++] = u;
      }
    }

    std::size_t num_groups = 0;
    auto& groups = out.groups;
    std::fill(visited.begin(), visited.end(), false);  // Reused as "seen".
    for (VertexId root = 0; root < n; ++root) {
      if (visited[root] || offset[root + 1] == offset[root]) continue;
      visited[root] = true;
      // Recycle the inner vectors of previous builds instead of
      // reallocating one per group.
      if (num_groups == groups.size()) groups.emplace_back();
      std::vector<VertexId>& component = groups[num_groups];
      component.clear();
      component.push_back(root);
      for (std::size_t head = 0; head < component.size(); ++head) {
        const VertexId u = component[head];
        for (std::uint32_t pos = offset[u]; pos < offset[u + 1]; ++pos) {
          const VertexId w = adj[pos];
          if (!visited[w]) {
            visited[w] = true;
            component.push_back(w);
          }
        }
      }
      // Forest components have >= 2 vertices by construction (an edge put
      // the root in the CSR), so every one is a group.
      const auto group_id = static_cast<std::uint32_t>(num_groups);
      std::sort(component.begin(), component.end());
      for (VertexId v : component) out.group_of[v] = group_id;
      ++num_groups;
    }
    groups.resize(num_groups);
  }

  // Preserve the input graph's labels on the certificate (same vertex ids).
  if (g.HasLabels()) certificate_builder.SetLabelsFrom(g);
  certificate_builder.BuildInto(out.certificate);
}

}  // namespace kvcc
