#include "kvcc/sweep_context.h"

namespace kvcc {

// kvcc-lint: no-alloc — warm rebind; the epoch bump invalidates all
// per-vertex state in O(1), and the resizes below are grow-only (covered by
// the warm GLOBAL-CUT assertion in tests/memory_tracker_test.cc).
void SweepContext::Bind(const Graph& g, std::uint32_t k,
                        const std::vector<bool>& strong,
                        const std::vector<std::vector<VertexId>>& groups,
                        const std::vector<std::uint32_t>& group_of,
                        bool neighbor_sweep_enabled,
                        bool group_sweep_enabled) {
  graph_ = &g;
  k_ = k;
  strong_ = &strong;
  groups_ = &groups;
  group_of_ = &group_of;
  neighbor_sweep_enabled_ = neighbor_sweep_enabled;
  group_sweep_enabled_ = group_sweep_enabled;

  ++epoch_;
  // Grow-only resizes; new entries carry stamp 0, which never equals a live
  // epoch. Steady state (graph no larger than any predecessor): no work.
  if (vertex_epoch_.size() < g.NumVertices()) {
    vertex_epoch_.resize(g.NumVertices(), 0);  // kvcc-lint: reserved
    swept_.resize(g.NumVertices());            // kvcc-lint: reserved
    cause_.resize(g.NumVertices());            // kvcc-lint: reserved
    deposit_.resize(g.NumVertices());          // kvcc-lint: reserved
  }
  if (group_epoch_.size() < groups.size()) {
    group_epoch_.resize(groups.size(), 0);   // kvcc-lint: reserved
    group_deposit_.resize(groups.size());    // kvcc-lint: reserved
    group_processed_.resize(groups.size());  // kvcc-lint: reserved
  }
  worklist_.clear();
}

// kvcc-lint: no-alloc — the worklist is bounded by NumVertices() (each
// vertex is enqueued at most once per Bind), so it stays within its
// high-water capacity in steady state.
void SweepContext::Enqueue(VertexId v, SweepCause cause) {
  TouchVertex(v);
  if (swept_[v]) return;
  swept_[v] = true;
  cause_[v] = cause;
  worklist_.push_back(v);  // kvcc-lint: reserved
}

// kvcc-lint: no-alloc — Algorithm 4's sweep loop is pure worklist pops and
// counter updates; all growth happens through Enqueue's reserved push.
void SweepContext::Sweep(VertexId v, SweepCause cause) {
  Enqueue(v, cause);
  // Algorithm 4, iteratively: each popped vertex deposits on its neighbors
  // and its side-group, possibly enqueuing more sweeps.
  while (!worklist_.empty()) {
    const VertexId u = worklist_.back();
    worklist_.pop_back();
    const bool u_strong = neighbor_sweep_enabled_ && (*strong_)[u];

    if (neighbor_sweep_enabled_) {
      for (VertexId w : graph_->Neighbors(u)) {
        TouchVertex(w);
        if (swept_[w]) continue;
        ++deposit_[w];
        if (u_strong) {
          Enqueue(w, SweepCause::kNeighborSweepSide);
        } else if (deposit_[w] >= k_) {
          Enqueue(w, SweepCause::kNeighborSweepDeposit);
        }
      }
    }

    if (group_sweep_enabled_ && !group_of_->empty()) {
      const std::uint32_t group = (*group_of_)[u];
      if (group != kNoGroup) {
        TouchGroup(group);
        if (!group_processed_[group]) {
          ++group_deposit_[group];
          // Group sweep rule 1 needs a strong side-vertex in the group;
          // rule 2 needs k known-connected members (only possible when
          // |group| > k).
          const bool group_strong =
              neighbor_sweep_enabled_ ? (*strong_)[u] : false;
          if (group_strong || group_deposit_[group] >= k_) {
            group_processed_[group] = true;
            for (VertexId w : (*groups_)[group]) {
              Enqueue(w, SweepCause::kGroupSweep);
            }
          }
        }
      }
    }
  }
}

}  // namespace kvcc
