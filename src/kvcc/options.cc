#include "kvcc/options.h"

#include <stdexcept>

namespace kvcc {

const char* CutOracleKindName(CutOracleKind kind) {
  switch (kind) {
    case CutOracleKind::kDinic:
      return "dinic";
    case CutOracleKind::kLocalVC:
      return "localvc";
    case CutOracleKind::kHybrid:
      return "hybrid";
  }
  return "hybrid";  // Unreachable for valid enum values.
}

CutOracleKind CutOracleKindFromName(const std::string& name) {
  if (name == "dinic") return CutOracleKind::kDinic;
  if (name == "localvc") return CutOracleKind::kLocalVC;
  if (name == "hybrid") return CutOracleKind::kHybrid;
  throw std::invalid_argument("unknown cut oracle: " + name +
                              " (expected dinic, localvc, or hybrid)");
}

KvccOptions KvccOptions::FromVariantName(const std::string& name) {
  if (name == "VCCE") return Vcce();
  if (name == "VCCE-N") return VcceN();
  if (name == "VCCE-G") return VcceG();
  if (name == "VCCE*") return VcceStar();
  throw std::invalid_argument("unknown k-VCC algorithm variant: " + name);
}

}  // namespace kvcc
