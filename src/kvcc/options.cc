#include "kvcc/options.h"

#include <stdexcept>

namespace kvcc {

KvccOptions KvccOptions::FromVariantName(const std::string& name) {
  if (name == "VCCE") return Vcce();
  if (name == "VCCE-N") return VcceN();
  if (name == "VCCE-G") return VcceG();
  if (name == "VCCE*") return VcceStar();
  throw std::invalid_argument("unknown k-VCC algorithm variant: " + name);
}

}  // namespace kvcc
