// The k-VCC hierarchy: k-VCCs for every k = 1..k_max, organized as a
// dendrogram of structural cohesion (Moody & White's "cohesive blocking",
// which the paper cites as the sociological root of vertex connectivity).
//
// Built on a nesting fact: every k-VCC is (k-1)-vertex-connected, so it is
// contained in exactly one (k-1)-VCC (two parents would overlap in >= k-1
// vertices, violating Property 1 at level k-1). Level k is therefore
// computed *inside* each level-(k-1) component instead of on the whole
// graph, which both speeds the sweep up and yields parent links for free.
#ifndef KVCC_KVCC_HIERARCHY_H_
#define KVCC_KVCC_HIERARCHY_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "kvcc/options.h"
#include "kvcc/stats.h"

namespace kvcc {

class KvccEngine;

struct HierarchyNode {
  /// Connectivity level of this component (it is a level-VCC).
  std::uint32_t level = 0;
  /// Sorted vertex ids (in the input graph's id space).
  std::vector<VertexId> vertices;
  /// Index of the enclosing node at level-1, or kNoParent for level 1.
  std::size_t parent = kNoParent;
  /// Indices of the nodes at level+1 nested inside this one.
  std::vector<std::size_t> children;

  static constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);
};

struct KvccHierarchy {
  /// All nodes, grouped by level: levels[k-1] lists node indices of level k.
  std::vector<HierarchyNode> nodes;
  std::vector<std::vector<std::size_t>> levels;
  KvccStats stats;

  /// The deepest level that still has components.
  std::uint32_t MaxLevel() const {
    return static_cast<std::uint32_t>(levels.size());
  }

  /// Node indices of the k-VCCs (empty if k is beyond the hierarchy).
  const std::vector<std::size_t>& NodesAtLevel(std::uint32_t k) const;

  /// The components at level k in EnumerateKVccs output format.
  std::vector<std::vector<VertexId>> ComponentsAtLevel(std::uint32_t k) const;

  /// Largest k such that some k-VCC contains vertex v (0 if none does).
  std::uint32_t CohesionOf(VertexId v) const;

 private:
  friend KvccHierarchy BuildKvccHierarchy(const Graph&, std::uint32_t,
                                          const KvccOptions&);
  friend KvccHierarchy BuildKvccHierarchy(KvccEngine&, const Graph&,
                                          std::uint32_t,
                                          const KvccOptions&);
  std::vector<std::uint32_t> cohesion_;  // per input vertex
};

/// Builds the hierarchy up to `max_level` (0 = until no components remain,
/// bounded by the degeneracy since a k-VCC needs minimum degree >= k).
/// With KvccOptions::num_threads resolving to more than one worker, each
/// level's parent components are decomposed as independent jobs on a
/// KvccEngine and merged in parent order, so the output is identical for
/// every thread count.
KvccHierarchy BuildKvccHierarchy(const Graph& g, std::uint32_t max_level = 0,
                                 const KvccOptions& options = {});

/// Same, but runs every level's jobs on a caller-provided engine — the way
/// to build many hierarchies (or mix hierarchy and plain enumeration
/// traffic) on one warm worker pool. The engine's worker count governs
/// parallelism; KvccOptions::num_threads is ignored.
KvccHierarchy BuildKvccHierarchy(KvccEngine& engine, const Graph& g,
                                 std::uint32_t max_level = 0,
                                 const KvccOptions& options = {});

}  // namespace kvcc

#endif  // KVCC_KVCC_HIERARCHY_H_
