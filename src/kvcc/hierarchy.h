// The k-VCC hierarchy: k-VCCs for every k = 1..k_max, organized as a
// dendrogram of structural cohesion (Moody & White's "cohesive blocking",
// which the paper cites as the sociological root of vertex connectivity).
//
// Built on a nesting fact: every k-VCC is (k-1)-vertex-connected, so it is
// contained in exactly one (k-1)-VCC (two parents would overlap in >= k-1
// vertices, violating Property 1 at level k-1). Level k is therefore
// computed *inside* each level-(k-1) component instead of on the whole
// graph, which both speeds the sweep up and yields parent links for free.
#ifndef KVCC_KVCC_HIERARCHY_H_
#define KVCC_KVCC_HIERARCHY_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "kvcc/options.h"
#include "kvcc/stats.h"

/// \file
/// \brief The k-VCC hierarchy (cohesive blocking): nested k-VCCs for
/// every k, built level-inside-level with parent links for free.

namespace kvcc {

class KvccEngine;

/// \brief One component of the k-VCC hierarchy dendrogram.
struct HierarchyNode {
  /// \brief Connectivity level of this component (it is a level-VCC).
  std::uint32_t level = 0;
  /// \brief Sorted vertex ids (in the input graph's id space).
  std::vector<VertexId> vertices;
  /// \brief Index of the enclosing node at level-1, or kNoParent for
  /// level 1.
  std::size_t parent = kNoParent;
  /// \brief Indices of the nodes at level+1 nested inside this one.
  std::vector<std::size_t> children;

  /// \brief Sentinel parent index for level-1 nodes.
  static constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);
};

/// \brief The full dendrogram produced by BuildKvccHierarchy.
struct KvccHierarchy {
  /// \brief All nodes, in construction order.
  std::vector<HierarchyNode> nodes;
  /// \brief Nodes grouped by level: levels[k-1] lists node indices of
  /// level k.
  std::vector<std::vector<std::size_t>> levels;
  /// \brief Execution counters summed over every level's enumeration.
  KvccStats stats;

  /// \brief The deepest level that still has components.
  /// \return Largest k with at least one k-VCC (0 for an empty
  /// hierarchy).
  std::uint32_t MaxLevel() const {
    return static_cast<std::uint32_t>(levels.size());
  }

  /// \brief Node indices of the k-VCCs at one level.
  /// \param k The connectivity level to look up.
  /// \return The node indices (empty if k is beyond the hierarchy).
  const std::vector<std::size_t>& NodesAtLevel(std::uint32_t k) const;

  /// \brief The components at level k in EnumerateKVccs output format.
  /// \param k The connectivity level to extract.
  /// \return Sorted component lists, sorted lexicographically.
  std::vector<std::vector<VertexId>> ComponentsAtLevel(std::uint32_t k) const;

  /// \brief Largest k such that some k-VCC contains vertex v.
  /// \param v A vertex id of the input graph.
  /// \return The vertex's structural cohesion (0 if no component holds
  /// it).
  std::uint32_t CohesionOf(VertexId v) const;

  /// \brief Sizes of the components containing v, level 1 first.
  ///
  /// Since k-VCCs at one level may overlap (in up to k-1 vertices), a
  /// vertex can sit in several components of a level; the path follows
  /// the first containing node in construction order at every level,
  /// which is deterministic for a given build. Used by kvccd's
  /// membership responses, so a cached hierarchy answers them
  /// byte-identically to a fresh one.
  /// \param v A vertex id of the input graph.
  /// \return One size per level from 1 to CohesionOf(v); empty if no
  /// component holds v.
  std::vector<std::uint64_t> PathOf(VertexId v) const;

  /// \brief Approximate heap footprint of the hierarchy, in bytes.
  ///
  /// The byte-budget currency of kvccd's result cache.
  /// \return The estimate (element counts, not capacities, so it is
  /// reproducible across builds).
  std::uint64_t MemoryBytes() const;

 private:
  /// \cond INTERNAL
  friend KvccHierarchy BuildKvccHierarchy(const Graph&, std::uint32_t,
                                          const KvccOptions&);
  friend KvccHierarchy BuildKvccHierarchy(KvccEngine&, const Graph&,
                                          std::uint32_t,
                                          const KvccOptions&);
  // Incremental maintenance (kvcc/incremental.h) reassembles hierarchies
  // from patched per-level lists, including the cohesion array.
  friend class IncrementalKvcc;
  /// \endcond
  std::vector<std::uint32_t> cohesion_;  // per input vertex
};

/// \brief Builds the hierarchy up to `max_level`.
///
/// With KvccOptions::num_threads resolving to more than one worker, each
/// level's parent components are decomposed as independent jobs on a
/// KvccEngine and merged in parent order, so the output is identical for
/// every thread count.
/// \param g The input graph.
/// \param max_level Deepest level to compute; 0 = until no components
///   remain (bounded by the degeneracy since a k-VCC needs minimum degree
///   >= k).
/// \param options Algorithm variant and execution knobs.
/// \return The dendrogram of nested k-VCCs.
KvccHierarchy BuildKvccHierarchy(const Graph& g, std::uint32_t max_level = 0,
                                 const KvccOptions& options = {});

/// \brief Same, but runs every level's jobs on a caller-provided engine —
/// the way to build many hierarchies (or mix hierarchy and plain
/// enumeration traffic) on one warm worker pool.
/// \param engine The engine to run on; its worker count governs
///   parallelism (KvccOptions::num_threads is ignored).
/// \param g The input graph.
/// \param max_level Deepest level to compute; 0 = until no components
///   remain.
/// \param options Algorithm variant and execution knobs.
/// \return The dendrogram of nested k-VCCs.
KvccHierarchy BuildKvccHierarchy(KvccEngine& engine, const Graph& g,
                                 std::uint32_t max_level = 0,
                                 const KvccOptions& options = {});

}  // namespace kvcc

#endif  // KVCC_KVCC_HIERARCHY_H_
