// Sparse certificate for k-vertex connectivity (Cheriyan–Kao–Thurimella)
// and the side-groups used by the group-sweep optimization.
//
// For i = 1..k, F_i is a scan-first-search forest of G_{i-1} where
// G_0 = G and G_i = G_{i-1} - E(F_i). SC = F_1 ∪ ... ∪ F_k has at most
// k(n-1) edges, and for every vertex set S with |S| < k, G - S and SC - S
// have the same connected components (paper Thm 5). Consequently:
//   * any vertex cut of SC with fewer than k vertices is a cut of G, and
//   * min(kappa(u,v), k) is identical in SC and G,
// which lets GLOBAL-CUT run all flow tests on the much sparser SC.
//
// Side-groups (paper Thm 10): the connected components of the last forest
// F_k are sets in which every vertex pair is locally k-connected in G.
#ifndef KVCC_KVCC_SPARSE_CERTIFICATE_H_
#define KVCC_KVCC_SPARSE_CERTIFICATE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace kvcc {

/// Group id meaning "vertex belongs to no side-group".
inline constexpr std::uint32_t kNoGroup = static_cast<std::uint32_t>(-1);

struct SparseCertificate {
  /// The certificate subgraph. Same vertex ids (and labels) as the input.
  Graph certificate;

  /// Side-groups: connected components of F_k with at least 2 vertices.
  /// groups[i] is sorted ascending.
  std::vector<std::vector<VertexId>> groups;

  /// Per-vertex group id, or kNoGroup.
  std::vector<std::uint32_t> group_of;
};

/// Builds the certificate by k rounds of BFS forests (BFS is a valid
/// scan-first search). O(k (n + m)).
SparseCertificate BuildSparseCertificate(const Graph& g, std::uint32_t k);

}  // namespace kvcc

#endif  // KVCC_KVCC_SPARSE_CERTIFICATE_H_
