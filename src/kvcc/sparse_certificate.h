// Sparse certificate for k-vertex connectivity (Cheriyan–Kao–Thurimella)
// and the side-groups used by the group-sweep optimization.
//
// For i = 1..k, F_i is a scan-first-search forest of G_{i-1} where
// G_0 = G and G_i = G_{i-1} - E(F_i). SC = F_1 ∪ ... ∪ F_k has at most
// k(n-1) edges, and for every vertex set S with |S| < k, G - S and SC - S
// have the same connected components (paper Thm 5). Consequently:
//   * any vertex cut of SC with fewer than k vertices is a cut of G, and
//   * min(kappa(u,v), k) is identical in SC and G,
// which lets GLOBAL-CUT run all flow tests on the much sparser SC.
//
// Side-groups (paper Thm 10): the connected components of the last forest
// F_k are sets in which every vertex pair is locally k-connected in G.
#ifndef KVCC_KVCC_SPARSE_CERTIFICATE_H_
#define KVCC_KVCC_SPARSE_CERTIFICATE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/graph_builder.h"

namespace kvcc {

/// Group id meaning "vertex belongs to no side-group".
inline constexpr std::uint32_t kNoGroup = static_cast<std::uint32_t>(-1);

struct SparseCertificate {
  /// The certificate subgraph. Same vertex ids (and labels) as the input.
  Graph certificate;

  /// Side-groups: connected components of F_k with at least 2 vertices,
  /// ordered by smallest member. groups[i] is sorted ascending.
  std::vector<std::vector<VertexId>> groups;

  /// Per-vertex group id, or kNoGroup.
  std::vector<std::uint32_t> group_of;
};

/// Reusable working buffers for BuildSparseCertificate. One instance per
/// enumeration worker amortizes the mate/offset/used/forest arrays and the
/// CSR builder across the O(n) certificate constructions of a run: once
/// capacities have grown to the largest subgraph seen, a rebuild performs
/// no heap allocation (beyond side-group list growth on pathological
/// inputs). A default-constructed scratch is always valid.
struct CertificateScratch {
  // BuildMatePositions / forest extraction.
  std::vector<std::uint64_t> entry_offset;  // size n+1
  std::vector<std::uint64_t> mate;          // reverse adjacency positions
  std::vector<bool> used;                   // retired adjacency entries
  std::vector<bool> visited;                // per-round BFS marks
  std::vector<VertexId> queue;              // BFS frontier
  std::vector<std::pair<VertexId, VertexId>> last_forest;  // F_k edges

  // Flat CSR of F_k for the side-group pass.
  std::vector<std::uint32_t> forest_offset;
  std::vector<VertexId> forest_adj;

  GraphBuilder builder;  // accumulates SC edges; cycled via BuildInto
};

/// Builds the certificate by k rounds of BFS forests (BFS is a valid
/// scan-first search), O(k (n + m)), writing into `out` and reusing both
/// `out`'s storage and `scratch`'s buffers.
void BuildSparseCertificate(const Graph& g, std::uint32_t k,
                            SparseCertificate& out,
                            CertificateScratch& scratch);

/// Convenience overload allocating transient storage.
SparseCertificate BuildSparseCertificate(const Graph& g, std::uint32_t k);

}  // namespace kvcc

#endif  // KVCC_KVCC_SPARSE_CERTIFICATE_H_
