// Vertex-connectivity queries built directly on the directed flow graph.
//
// These are deliberately independent of GLOBAL-CUT's certificate and sweep
// machinery (they run on the full graph with no pruning) so they can serve
// as a trustworthy oracle in tests and as a simple public API for one-off
// connectivity questions.
#ifndef KVCC_KVCC_CONNECTIVITY_H_
#define KVCC_KVCC_CONNECTIVITY_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace kvcc {

/// Local connectivity value reported for adjacent pairs (no u-v cut exists).
inline constexpr std::uint32_t kInfiniteConnectivity =
    static_cast<std::uint32_t>(-1);

/// kappa(u, v): minimum number of vertices (excluding u, v) whose removal
/// disconnects u from v; kInfiniteConnectivity when (u,v) is an edge. The
/// search stops at `limit` (result is min(kappa, limit)) unless limit is 0,
/// meaning exact.
std::uint32_t LocalVertexConnectivity(const Graph& g, VertexId u, VertexId v,
                                      std::uint32_t limit = 0);

/// True iff g is k-vertex-connected per Definition 2: |V| > k and no vertex
/// cut of fewer than k vertices exists. Every graph is 0-connected.
bool IsKVertexConnected(const Graph& g, std::uint32_t k);

/// kappa(g) (Definition 1): 0 for disconnected or single-vertex graphs,
/// n - 1 for the complete graph. Uses the Esfahanian–Hakimi reduction:
/// kappa = min over (source vs non-neighbors) and (pairs of source
/// neighbors).
std::uint32_t VertexConnectivity(const Graph& g);

}  // namespace kvcc

#endif  // KVCC_KVCC_CONNECTIVITY_H_
