#include "kvcc/hierarchy.h"

#include <algorithm>
#include <utility>

#include "exec/task_scheduler.h"
#include "graph/k_core.h"
#include "kvcc/engine.h"
#include "kvcc/kvcc_enum.h"

namespace kvcc {
namespace {

/// Shared level-by-level construction. `engine` may be null (serial
/// per-parent EnumerateKVccs calls). With an engine, all parent components
/// of a level are submitted as independent jobs up front and collected in
/// parent order, so the node/level/cohesion arrays come out identical to
/// the serial build's for every worker count (each job's result already
/// matches the serial enumeration exactly). `cohesion` aliases the
/// hierarchy's private per-vertex array (passed in by the friended public
/// entry points).
void BuildHierarchyInto(KvccEngine* engine, const Graph& g,
                        std::uint32_t max_level, const KvccOptions& options,
                        KvccHierarchy& hierarchy,
                        std::vector<std::uint32_t>& cohesion) {
  cohesion.assign(g.NumVertices(), 0);
  if (max_level == 0) {
    max_level = Degeneracy(g) + 1;  // kappa <= delta <= degeneracy... + slack
  }

  // Per-job options: an engine parallelizes across and within jobs itself,
  // and the serial path must not recursively spin up one engine per call.
  KvccOptions job_options = options;
  job_options.num_threads = 1;

  // Level 1 over the whole graph; level k inside each level-(k-1) node.
  std::vector<std::size_t> frontier;
  for (std::uint32_t k = 1; k <= max_level; ++k) {
    std::vector<std::size_t> next;
    const std::vector<std::size_t> parents =
        k == 1 ? std::vector<std::size_t>{HierarchyNode::kNoParent}
               : frontier;

    // The subgraphs to decompose: the whole graph at level 1 (read in
    // place), otherwise each parent component. The engine path
    // materializes the whole level up front — jobs borrow stable Graph
    // pointers while they run concurrently — and collects in parent
    // order; the serial path streams one parent at a time so its peak
    // memory stays one subgraph, as before the engine existed.
    std::vector<Graph> subgraphs;
    std::vector<KvccResult> engine_results;
    if (engine != nullptr) {
      subgraphs.resize(parents.size());
      std::vector<KvccEngine::JobId> ids(parents.size());
      for (std::size_t p = 0; p < parents.size(); ++p) {
        const Graph* job_graph = &g;
        if (parents[p] != HierarchyNode::kNoParent) {
          subgraphs[p] =
              g.InducedSubgraph(hierarchy.nodes[parents[p]].vertices);
          job_graph = &subgraphs[p];
        }
        ids[p] = engine->Submit(*job_graph, k, job_options);
      }
      // Wait on EVERY job before anything can unwind: the jobs borrow
      // `subgraphs`, so letting one job's exception escape while siblings
      // are still running would free graphs under live worker threads.
      engine_results.resize(parents.size());
      std::exception_ptr first_error;
      for (std::size_t p = 0; p < parents.size(); ++p) {
        try {
          engine_results[p] = engine->Wait(ids[p]);
        } catch (...) {
          if (!first_error) first_error = std::current_exception();
        }
      }
      if (first_error) std::rethrow_exception(first_error);
    }

    for (std::size_t p = 0; p < parents.size(); ++p) {
      const std::size_t parent_index = parents[p];
      const bool root = parent_index == HierarchyNode::kNoParent;
      KvccResult result;
      if (engine != nullptr) {
        result = std::move(engine_results[p]);
      } else if (root) {
        result = EnumerateKVccs(g, k, job_options);
      } else {
        const Graph sub =
            g.InducedSubgraph(hierarchy.nodes[parent_index].vertices);
        result = EnumerateKVccs(sub, k, job_options);
      }
      hierarchy.stats.Add(result.stats);
      for (const auto& component : result.components) {
        HierarchyNode node;
        node.level = k;
        node.parent = parent_index;
        if (root) {
          node.vertices = component;
        } else {
          // Map back from the parent-subgraph ids to input ids.
          node.vertices.reserve(component.size());
          for (VertexId v : component) {
            node.vertices.push_back(
                hierarchy.nodes[parent_index].vertices[v]);
          }
          std::sort(node.vertices.begin(), node.vertices.end());
        }
        for (VertexId v : node.vertices) {
          cohesion[v] = std::max(cohesion[v], k);
        }
        const std::size_t index = hierarchy.nodes.size();
        if (!root) hierarchy.nodes[parent_index].children.push_back(index);
        next.push_back(index);
        hierarchy.nodes.push_back(std::move(node));
      }
    }
    if (next.empty()) break;
    hierarchy.levels.push_back(next);
    frontier = std::move(next);
  }
}

}  // namespace

const std::vector<std::size_t>& KvccHierarchy::NodesAtLevel(
    std::uint32_t k) const {
  static const std::vector<std::size_t> kEmpty;
  if (k == 0 || k > levels.size()) return kEmpty;
  return levels[k - 1];
}

std::vector<std::vector<VertexId>> KvccHierarchy::ComponentsAtLevel(
    std::uint32_t k) const {
  std::vector<std::vector<VertexId>> out;
  for (std::size_t index : NodesAtLevel(k)) {
    out.push_back(nodes[index].vertices);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::uint32_t KvccHierarchy::CohesionOf(VertexId v) const {
  return v < cohesion_.size() ? cohesion_[v] : 0;
}

std::vector<std::uint64_t> KvccHierarchy::PathOf(VertexId v) const {
  std::vector<std::uint64_t> sizes;
  const auto contains = [&](std::size_t index) {
    const std::vector<VertexId>& vs = nodes[index].vertices;
    return std::binary_search(vs.begin(), vs.end(), v);
  };
  std::size_t current = HierarchyNode::kNoParent;
  if (!levels.empty()) {
    for (std::size_t index : levels[0]) {
      if (contains(index)) {
        current = index;
        break;
      }
    }
  }
  while (current != HierarchyNode::kNoParent) {
    sizes.push_back(nodes[current].vertices.size());
    std::size_t next = HierarchyNode::kNoParent;
    for (std::size_t child : nodes[current].children) {
      if (contains(child)) {
        next = child;
        break;
      }
    }
    current = next;
  }
  return sizes;
}

std::uint64_t KvccHierarchy::MemoryBytes() const {
  std::uint64_t bytes = sizeof(KvccHierarchy);
  for (const HierarchyNode& node : nodes) {
    bytes += sizeof(HierarchyNode);
    bytes += node.vertices.size() * sizeof(VertexId);
    bytes += node.children.size() * sizeof(std::size_t);
  }
  for (const std::vector<std::size_t>& level : levels) {
    bytes += level.size() * sizeof(std::size_t);
  }
  bytes += cohesion_.size() * sizeof(std::uint32_t);
  return bytes;
}

KvccHierarchy BuildKvccHierarchy(const Graph& g, std::uint32_t max_level,
                                 const KvccOptions& options) {
  KvccHierarchy hierarchy;
  const unsigned workers = exec::ResolveThreadCount(options.num_threads);
  if (workers > 1) {
    KvccEngine engine(workers);
    BuildHierarchyInto(&engine, g, max_level, options, hierarchy,
                       hierarchy.cohesion_);
  } else {
    BuildHierarchyInto(nullptr, g, max_level, options, hierarchy,
                       hierarchy.cohesion_);
  }
  return hierarchy;
}

KvccHierarchy BuildKvccHierarchy(KvccEngine& engine, const Graph& g,
                                 std::uint32_t max_level,
                                 const KvccOptions& options) {
  KvccHierarchy hierarchy;
  BuildHierarchyInto(&engine, g, max_level, options, hierarchy,
                     hierarchy.cohesion_);
  return hierarchy;
}

}  // namespace kvcc
