#include "kvcc/hierarchy.h"

#include <algorithm>

#include "graph/k_core.h"
#include "kvcc/kvcc_enum.h"

namespace kvcc {

const std::vector<std::size_t>& KvccHierarchy::NodesAtLevel(
    std::uint32_t k) const {
  static const std::vector<std::size_t> kEmpty;
  if (k == 0 || k > levels.size()) return kEmpty;
  return levels[k - 1];
}

std::vector<std::vector<VertexId>> KvccHierarchy::ComponentsAtLevel(
    std::uint32_t k) const {
  std::vector<std::vector<VertexId>> out;
  for (std::size_t index : NodesAtLevel(k)) {
    out.push_back(nodes[index].vertices);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::uint32_t KvccHierarchy::CohesionOf(VertexId v) const {
  return v < cohesion_.size() ? cohesion_[v] : 0;
}

KvccHierarchy BuildKvccHierarchy(const Graph& g, std::uint32_t max_level,
                                 const KvccOptions& options) {
  KvccHierarchy hierarchy;
  hierarchy.cohesion_.assign(g.NumVertices(), 0);
  if (max_level == 0) {
    max_level = Degeneracy(g) + 1;  // kappa <= delta <= degeneracy... + slack
  }

  // Level 1 over the whole graph; level k inside each level-(k-1) node.
  std::vector<std::size_t> frontier;
  for (std::uint32_t k = 1; k <= max_level; ++k) {
    std::vector<std::size_t> next;
    const std::vector<std::size_t> parents =
        k == 1 ? std::vector<std::size_t>{HierarchyNode::kNoParent}
               : frontier;
    for (std::size_t parent_index : parents) {
      // The subgraph to decompose: whole graph at level 1, otherwise the
      // parent component.
      const bool root = parent_index == HierarchyNode::kNoParent;
      const Graph sub =
          root ? g : g.InducedSubgraph(hierarchy.nodes[parent_index].vertices);
      const KvccResult result = EnumerateKVccs(sub, k, options);
      hierarchy.stats.Add(result.stats);
      for (const auto& component : result.components) {
        HierarchyNode node;
        node.level = k;
        node.parent = parent_index;
        if (root) {
          node.vertices = component;
        } else {
          // Map back from the parent-subgraph ids to input ids.
          node.vertices.reserve(component.size());
          for (VertexId v : component) {
            node.vertices.push_back(
                hierarchy.nodes[parent_index].vertices[v]);
          }
          std::sort(node.vertices.begin(), node.vertices.end());
        }
        for (VertexId v : node.vertices) {
          hierarchy.cohesion_[v] = std::max(hierarchy.cohesion_[v], k);
        }
        const std::size_t index = hierarchy.nodes.size();
        if (!root) hierarchy.nodes[parent_index].children.push_back(index);
        next.push_back(index);
        hierarchy.nodes.push_back(std::move(node));
      }
    }
    if (next.empty()) break;
    hierarchy.levels.push_back(next);
    frontier = std::move(next);
  }
  return hierarchy;
}

}  // namespace kvcc
