#include "kvcc/incremental.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <utility>

#include "ecc/kecc.h"
#include "kvcc/engine.h"
#include "kvcc/kvcc_enum.h"

namespace kvcc {
namespace {

constexpr std::uint32_t kNoRegion = std::numeric_limits<std::uint32_t>::max();

// One dirty region gathered by the per-level analysis: the induced
// subgraph to re-enumerate plus the root ids its local ids map back to.
struct RegionJob {
  Graph graph;
  std::vector<VertexId> vertices;
  std::uint32_t k = 0;
};

// Per-level output of the analysis: components carried over verbatim and
// the [begin, end) slice of the gathered job list to re-enumerate.
struct LevelPlan {
  std::vector<std::vector<VertexId>> carried;
  std::size_t job_begin = 0;
  std::size_t job_end = 0;
};

bool ContainsEdge(const std::vector<VertexId>& sorted, VertexId u,
                  VertexId v) {
  return std::binary_search(sorted.begin(), sorted.end(), u) &&
         std::binary_search(sorted.begin(), sorted.end(), v);
}

}  // namespace

IncrementalKvcc::IncrementalKvcc(KvccOptions options)
    : options_(std::move(options)) {}

IncrementalOutcome IncrementalKvcc::Update(const VersionedGraph& vg,
                                           KvccEngine* engine) {
  GraphSnapshot snap = vg.Snapshot();
  const std::uint64_t applied_now = vg.AppliedTotal();

  if (!Initialized()) {
    applied_seen_ = applied_now;
    return Rebuild(std::move(snap), engine, 0);
  }
  if (snap.version == version_) {
    IncrementalOutcome outcome;
    outcome.version = version_;
    return outcome;
  }
  batch_.clear();
  if (!vg.EffectiveSince(version_, batch_)) {
    // A Compact() folded away the deltas between our version and now.
    const std::uint64_t applied = applied_now - applied_seen_;
    applied_seen_ = applied_now;
    return Rebuild(std::move(snap), engine, applied);
  }
  assert(!batch_.empty());  // the version advanced, so deltas exist

  const Graph& g = *snap.graph;
  const VertexId n = g.NumVertices();
  std::vector<std::vector<std::vector<VertexId>>> old_levels =
      std::move(levels_);
  levels_.clear();
  std::vector<std::vector<std::vector<VertexId>>> old_regions =
      std::move(regions_);
  regions_.clear();

  // --- analysis: one pass per level, cheap (O(n + m) each), independent
  // of every other level's re-enumeration results, so all dirty-region
  // jobs can be gathered first and run as one engine batch.
  std::vector<RegionJob> jobs;
  std::vector<LevelPlan> plans;
  std::uint64_t invalidated = 0;
  std::vector<std::uint32_t> region_of(n, kNoRegion);
  for (std::uint32_t k = 1;; ++k) {
    // Regions: the k-ECCs of the new graph. Every k-VCC is k-edge-
    // connected (Whitney), so it lies inside exactly one region — and
    // k-ECCs are much finer than k-core components (a chain of dense
    // blocks joined by thin bridges is one k-core component but one
    // region per block), which is what keeps localized edits local.
    //
    // k-ECCs nest — every k-ECC lies inside exactly one (k-1)-ECC, and
    // the k-ECCs of g are exactly the k-ECCs of each (k-1)-region's
    // induced subgraph — so deeper levels run on the shrinking regions
    // of the level before instead of the whole graph. Level 1 and 2 are
    // the linear fast paths (connected components / bridge
    // decomposition); from level 3 up, the Stoer-Wagner recursion only
    // ever sees one region at a time. Regions of the previous update are
    // cached (old_regions): a (k-1)-region with no batch edge inside it
    // that was also a (k-1)-ECC of the old graph has an unchanged induced
    // subgraph, so its k-ECCs are carried from the cache instead of
    // re-derived — the per-batch region cost is proportional to the
    // edit's footprint, not the graph.
    static const std::vector<std::vector<VertexId>> kNoRegions;
    std::vector<std::vector<VertexId>> regions;
    if (k == 1) {
      regions = KEdgeConnectedComponents(g, 1);
    } else {
      const std::vector<std::vector<VertexId>>& prev = regions_[k - 2];
      const bool old_known = k <= old_regions.size();
      const std::vector<std::vector<VertexId>>& old_prev =
          old_known ? old_regions[k - 2] : kNoRegions;
      const std::vector<std::vector<VertexId>>& old_here =
          old_known ? old_regions[k - 1] : kNoRegions;
      for (const std::vector<VertexId>& region : prev) {
        if (region.size() <= k) continue;
        bool clean = true;
        for (const EdgeDelta& d : batch_) {
          if (ContainsEdge(region, d.u, d.v)) {
            clean = false;
            break;
          }
        }
        if (clean && old_known &&
            std::binary_search(old_prev.begin(), old_prev.end(), region)) {
          // Unchanged induced subgraph of an old (k-1)-ECC: its k-ECCs
          // are exactly the cached old level-k regions inside it (every
          // old region is inside or disjoint, so one member decides).
          for (const std::vector<VertexId>& old_region : old_here) {
            if (std::binary_search(region.begin(), region.end(),
                                   old_region.front())) {
              regions.push_back(old_region);
            }
          }
          continue;
        }
        // g is a VersionedGraph materialization, so it is unlabeled and
        // the subgraph's labels are g's vertex ids.
        const Graph sub = g.InducedSubgraph(region);
        for (const std::vector<VertexId>& local :
             KEdgeConnectedComponents(sub, k)) {
          std::vector<VertexId> mapped;
          mapped.reserve(local.size());
          for (VertexId v : local) mapped.push_back(sub.LabelOf(v));
          std::sort(mapped.begin(), mapped.end());
          regions.push_back(std::move(mapped));
        }
      }
      std::sort(regions.begin(), regions.end());
    }
    std::uint32_t invalidate_from = 0;
    if (regions.empty()) {
      invalidate_from = k;  // level k was never analyzed
    } else {
      region_of.assign(n, kNoRegion);
      for (std::size_t r = 0; r < regions.size(); ++r) {
        for (VertexId v : regions[r]) {
          region_of[v] = static_cast<std::uint32_t>(r);
        }
      }

      // Rule (a): a region holding both endpoints of a batch edge has a
      // changed induced subgraph (insert adds the edge, delete drops it).
      std::vector<char> dirty(regions.size(), 0);
      for (const EdgeDelta& d : batch_) {
        if (d.v < n && region_of[d.u] != kNoRegion &&
            region_of[d.u] == region_of[d.v]) {
          dirty[region_of[d.u]] = 1;
        }
      }

      // Rule (b): an old k-VCC with both endpoints of a batch edge inside
      // it ("touched") may grow, shrink, split, or die; every region it
      // still reaches must be re-derived so carried and re-found
      // components never overlap incorrectly.
      static const std::vector<std::vector<VertexId>> kEmptyLevel;
      const std::vector<std::vector<VertexId>>& old_k =
          k <= old_levels.size() ? old_levels[k - 1] : kEmptyLevel;
      std::vector<char> touched(old_k.size(), 0);
      for (std::size_t s = 0; s < old_k.size(); ++s) {
        for (const EdgeDelta& d : batch_) {
          if (ContainsEdge(old_k[s], d.u, d.v)) {
            touched[s] = 1;
            break;
          }
        }
        if (touched[s]) {
          for (VertexId w : old_k[s]) {
            if (region_of[w] != kNoRegion) dirty[region_of[w]] = 1;
          }
        }
      }

      // Carry every untouched old component whose region is clean: its
      // induced subgraph is unchanged, so it is still a maximal k-VCC.
      LevelPlan plan;
      for (std::size_t s = 0; s < old_k.size(); ++s) {
        const std::vector<VertexId>& old_comp = old_k[s];
        const std::uint32_t r = touched[s] ? kNoRegion : region_of[old_comp[0]];
        if (r == kNoRegion || dirty[r]) {
          ++invalidated;
          continue;
        }
        assert(std::all_of(old_comp.begin(), old_comp.end(),
                           [&](VertexId w) { return region_of[w] == r; }));
        plan.carried.push_back(old_comp);
      }
      plan.job_begin = jobs.size();
      for (std::size_t r = 0; r < regions.size(); ++r) {
        if (!dirty[r]) continue;
        RegionJob job;
        job.k = k;
        job.vertices = regions[r];
        job.graph = g.InducedSubgraph(job.vertices);
        jobs.push_back(std::move(job));
      }
      plan.job_end = jobs.size();

      if (plan.job_end > plan.job_begin || !plan.carried.empty()) {
        plans.push_back(std::move(plan));
        regions_.push_back(std::move(regions));
        continue;  // level k may be non-empty; analyze k + 1
      }
      // No region to re-run and nothing carried: level k is provably
      // empty, and by nesting every deeper level is too. Old level k was
      // already booked as invalidated above.
      invalidate_from = k + 1;
    }
    for (std::uint32_t j = invalidate_from;
         j <= static_cast<std::uint32_t>(old_levels.size()); ++j) {
      invalidated += old_levels[j - 1].size();
    }
    break;
  }

  // --- re-enumeration: every dirty region across every level, as one
  // batch on the caller's engine (or serially without one). Results are
  // byte-identical either way.
  std::vector<KvccResult> results;
  if (!jobs.empty()) {
    if (engine != nullptr) {
      std::vector<EngineJobSpec> specs;
      specs.reserve(jobs.size());
      for (const RegionJob& job : jobs) {
        specs.push_back(EngineJobSpec{&job.graph, job.k, options_});
      }
      results = engine->RunBatch(specs);
    } else {
      results.reserve(jobs.size());
      for (const RegionJob& job : jobs) {
        results.push_back(EnumerateKVccs(job.graph, job.k, options_));
      }
    }
  }
  for (const KvccResult& result : results) {
    stats_.Add(result.stats);
  }

  // --- assembly: per level, carried ∪ re-derived (mapped back to root
  // ids through each region's vertex list — a monotone map, so sorted
  // stays sorted), in the canonical lexicographic output order.
  for (std::size_t lvl = 0; lvl < plans.size(); ++lvl) {
    LevelPlan& plan = plans[lvl];
    std::vector<std::vector<VertexId>> comps = std::move(plan.carried);
    for (std::size_t j = plan.job_begin; j < plan.job_end; ++j) {
      for (const std::vector<VertexId>& local : results[j].components) {
        std::vector<VertexId> mapped;
        mapped.reserve(local.size());
        for (VertexId v : local) mapped.push_back(jobs[j].vertices[v]);
        comps.push_back(std::move(mapped));
      }
    }
    std::sort(comps.begin(), comps.end());
    if (comps.empty()) break;  // nesting: all deeper levels are empty too
    levels_.push_back(std::move(comps));
  }

  graph_ = snap.graph;
  version_ = snap.version;
  applied_seen_ += batch_.size();
  PublishHierarchy();

  IncrementalOutcome outcome;
  outcome.version = version_;
  outcome.delta_edges_applied = batch_.size();
  outcome.dirty_components = invalidated;
  outcome.incremental_reruns = jobs.size();
  outcome.dirty_levels = DiffLevels(old_levels);
  stats_.delta_edges_applied += outcome.delta_edges_applied;
  stats_.dirty_components += outcome.dirty_components;
  stats_.incremental_reruns += outcome.incremental_reruns;
  return outcome;
}

IncrementalOutcome IncrementalKvcc::Rebuild(GraphSnapshot snapshot,
                                            KvccEngine* engine,
                                            std::uint64_t applied) {
  const bool first = !Initialized();
  std::uint64_t old_total = 0;
  for (const auto& level : levels_) old_total += level.size();
  std::vector<std::vector<std::vector<VertexId>>> old_levels =
      std::move(levels_);
  levels_.clear();
  regions_.clear();  // stale against the rebuilt graph; re-primed lazily

  KvccHierarchy built =
      engine != nullptr
          ? BuildKvccHierarchy(*engine, *snapshot.graph, 0, options_)
          : BuildKvccHierarchy(*snapshot.graph, 0, options_);
  stats_.Add(built.stats);
  for (std::uint32_t k = 1; k <= built.MaxLevel(); ++k) {
    levels_.push_back(built.ComponentsAtLevel(k));
  }

  graph_ = snapshot.graph;
  version_ = snapshot.version;

  IncrementalOutcome outcome;
  outcome.version = version_;
  outcome.full_rebuild = true;
  outcome.delta_edges_applied = applied;
  outcome.dirty_components = old_total;
  outcome.incremental_reruns = first ? 0 : 1;
  outcome.dirty_levels = DiffLevels(old_levels);
  stats_.delta_edges_applied += outcome.delta_edges_applied;
  stats_.dirty_components += outcome.dirty_components;
  stats_.incremental_reruns += outcome.incremental_reruns;

  auto published = std::make_shared<KvccHierarchy>(std::move(built));
  published->stats = stats_;
  hierarchy_ = std::move(published);
  return outcome;
}

void IncrementalKvcc::PublishHierarchy() {
  // Reassemble the dendrogram from the flat per-level lists in exactly
  // the order BuildHierarchyInto constructs it: level 1 in canonical
  // (lexicographic) order, every deeper level grouped under its parent
  // in parent construction order. Within one parent the canonical order
  // of the root-id components equals the enumeration's local-id order —
  // parent vertex lists are sorted, so the id map is monotone — which
  // makes the reassembled nodes, levels, children, and cohesion arrays
  // byte-identical to a cold build's.
  auto h = std::make_shared<KvccHierarchy>();
  h->stats = stats_;
  h->cohesion_.assign(graph_->NumVertices(), 0);
  for (std::size_t lvl = 0; lvl < levels_.size(); ++lvl) {
    const std::uint32_t k = static_cast<std::uint32_t>(lvl) + 1;
    std::vector<std::size_t> level_nodes;
    // Bucket this level's components by parent node. Level 1 has a
    // single implicit parent (the root), keeping one shared code path.
    const std::vector<std::size_t> parents =
        k == 1 ? std::vector<std::size_t>{HierarchyNode::kNoParent}
               : h->levels[lvl - 1];
    std::vector<std::vector<const std::vector<VertexId>*>> buckets(
        parents.size());
    for (const std::vector<VertexId>& comp : levels_[lvl]) {
      std::size_t slot = 0;
      if (k > 1) {
        // The parent is unique: two level-(k-1) components overlap in
        // fewer than k-1 vertices, and comp has more than k of them.
        while (slot < parents.size()) {
          const std::vector<VertexId>& pv = h->nodes[parents[slot]].vertices;
          if (std::includes(pv.begin(), pv.end(), comp.begin(), comp.end())) {
            break;
          }
          ++slot;
        }
        assert(slot < parents.size());
      }
      buckets[slot].push_back(&comp);
    }
    for (std::size_t p = 0; p < parents.size(); ++p) {
      for (const std::vector<VertexId>* comp : buckets[p]) {
        HierarchyNode node;
        node.level = k;
        node.vertices = *comp;
        node.parent = parents[p];
        for (VertexId v : node.vertices) {
          h->cohesion_[v] = std::max(h->cohesion_[v], k);
        }
        const std::size_t index = h->nodes.size();
        if (node.parent != HierarchyNode::kNoParent) {
          h->nodes[node.parent].children.push_back(index);
        }
        level_nodes.push_back(index);
        h->nodes.push_back(std::move(node));
      }
    }
    h->levels.push_back(std::move(level_nodes));
  }
  hierarchy_ = std::move(h);
}

std::vector<std::uint32_t> IncrementalKvcc::DiffLevels(
    const std::vector<std::vector<std::vector<VertexId>>>& before) const {
  std::vector<std::uint32_t> dirty;
  const std::size_t depth = std::max(before.size(), levels_.size());
  static const std::vector<std::vector<VertexId>> kEmptyLevel;
  for (std::size_t lvl = 0; lvl < depth; ++lvl) {
    const auto& old_level = lvl < before.size() ? before[lvl] : kEmptyLevel;
    const auto& new_level = lvl < levels_.size() ? levels_[lvl] : kEmptyLevel;
    if (old_level != new_level) {
      dirty.push_back(static_cast<std::uint32_t>(lvl) + 1);
    }
  }
  return dirty;
}

IncrementalOutcome KvccEngine::SubmitIncremental(IncrementalKvcc& state,
                                                 const VersionedGraph& graph) {
  return state.Update(graph, this);
}

}  // namespace kvcc
