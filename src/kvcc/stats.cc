#include "kvcc/stats.h"

#include <algorithm>
#include <sstream>

namespace kvcc {
namespace {

double Share(std::uint64_t part, std::uint64_t total) {
  return total == 0 ? 0.0 : static_cast<double>(part) / static_cast<double>(total);
}

}  // namespace

double KvccStats::Ns1Share() const {
  return Share(phase1_pruned_ns1, Phase1Total());
}

double KvccStats::Ns2Share() const {
  return Share(phase1_pruned_ns2, Phase1Total());
}

double KvccStats::GsShare() const {
  return Share(phase1_pruned_gs, Phase1Total());
}

double KvccStats::NonPrunedShare() const {
  return Share(phase1_tested_flow + phase1_tested_trivial, Phase1Total());
}

void KvccStats::Add(const KvccStats& other) {
  phase1_pruned_ns1 += other.phase1_pruned_ns1;
  phase1_pruned_ns2 += other.phase1_pruned_ns2;
  phase1_pruned_gs += other.phase1_pruned_gs;
  phase1_tested_flow += other.phase1_tested_flow;
  phase1_tested_trivial += other.phase1_tested_trivial;
  phase2_pairs_tested += other.phase2_pairs_tested;
  phase2_pairs_skipped_group += other.phase2_pairs_skipped_group;
  phase2_pairs_skipped_adjacent += other.phase2_pairs_skipped_adjacent;
  phase2_pairs_skipped_common += other.phase2_pairs_skipped_common;
  global_cut_calls += other.global_cut_calls;
  loc_cut_flow_calls += other.loc_cut_flow_calls;
  overlap_partitions += other.overlap_partitions;
  kvccs_found += other.kvccs_found;
  kcore_rounds += other.kcore_rounds;
  kcore_removed_vertices += other.kcore_removed_vertices;
  kcore_bucket_rounds += other.kcore_bucket_rounds;
  cc_hooks += other.cc_hooks;
  prune_fused_passes += other.prune_fused_passes;
  certificate_edges_input += other.certificate_edges_input;
  certificate_edges_kept += other.certificate_edges_kept;
  side_groups_found += other.side_groups_found;
  strong_side_vertices_found += other.strong_side_vertices_found;
  strong_side_checks_run += other.strong_side_checks_run;
  strong_side_verdicts_reused += other.strong_side_verdicts_reused;
  certificate_cut_fallbacks += other.certificate_cut_fallbacks;
  probe_wavefronts += other.probe_wavefronts;
  probes_launched += other.probes_launched;
  probes_wasted_swept += other.probes_wasted_swept;
  probes_wasted_after_cut += other.probes_wasted_after_cut;
  probes_localvc += other.probes_localvc;
  probes_localvc_fallback += other.probes_localvc_fallback;
  probe_edges_touched += other.probe_edges_touched;
  delta_edges_applied += other.delta_edges_applied;
  dirty_components += other.dirty_components;
  incremental_reruns += other.incremental_reruns;
  tasks_cancelled += other.tasks_cancelled;
  cuts_cancelled += other.cuts_cancelled;
  stream_backpressure_blocks += other.stream_backpressure_blocks;
  // A watermark, not a flow: the merged peak is the largest observed.
  stream_peak_buffered = std::max(stream_peak_buffered,
                                  other.stream_peak_buffered);
}

std::string KvccStats::ToJson() const {
  std::ostringstream out;
  out << "{\"phase1_pruned_ns1\": " << phase1_pruned_ns1
      << ", \"phase1_pruned_ns2\": " << phase1_pruned_ns2
      << ", \"phase1_pruned_gs\": " << phase1_pruned_gs
      << ", \"phase1_tested_flow\": " << phase1_tested_flow
      << ", \"phase1_tested_trivial\": " << phase1_tested_trivial
      << ", \"phase2_pairs_tested\": " << phase2_pairs_tested
      << ", \"phase2_pairs_skipped_group\": " << phase2_pairs_skipped_group
      << ", \"phase2_pairs_skipped_adjacent\": "
      << phase2_pairs_skipped_adjacent
      << ", \"phase2_pairs_skipped_common\": " << phase2_pairs_skipped_common
      << ", \"global_cut_calls\": " << global_cut_calls
      << ", \"loc_cut_flow_calls\": " << loc_cut_flow_calls
      << ", \"overlap_partitions\": " << overlap_partitions
      << ", \"kvccs_found\": " << kvccs_found
      << ", \"kcore_rounds\": " << kcore_rounds
      << ", \"kcore_removed_vertices\": " << kcore_removed_vertices
      << ", \"kcore_bucket_rounds\": " << kcore_bucket_rounds
      << ", \"cc_hooks\": " << cc_hooks
      << ", \"prune_fused_passes\": " << prune_fused_passes
      << ", \"certificate_edges_input\": " << certificate_edges_input
      << ", \"certificate_edges_kept\": " << certificate_edges_kept
      << ", \"side_groups_found\": " << side_groups_found
      << ", \"strong_side_vertices_found\": " << strong_side_vertices_found
      << ", \"strong_side_checks_run\": " << strong_side_checks_run
      << ", \"strong_side_verdicts_reused\": " << strong_side_verdicts_reused
      << ", \"certificate_cut_fallbacks\": " << certificate_cut_fallbacks
      << ", \"probe_wavefronts\": " << probe_wavefronts
      << ", \"probes_launched\": " << probes_launched
      << ", \"probes_wasted_swept\": " << probes_wasted_swept
      << ", \"probes_wasted_after_cut\": " << probes_wasted_after_cut
      << ", \"probes_localvc\": " << probes_localvc
      << ", \"probes_localvc_fallback\": " << probes_localvc_fallback
      << ", \"probe_edges_touched\": " << probe_edges_touched
      << ", \"delta_edges_applied\": " << delta_edges_applied
      << ", \"dirty_components\": " << dirty_components
      << ", \"incremental_reruns\": " << incremental_reruns
      << ", \"tasks_cancelled\": " << tasks_cancelled
      << ", \"cuts_cancelled\": " << cuts_cancelled
      << ", \"stream_backpressure_blocks\": " << stream_backpressure_blocks
      << ", \"stream_peak_buffered\": " << stream_peak_buffered << "}";
  return out.str();
}

std::string KvccStats::ToString() const {
  std::ostringstream out;
  out << "phase1: ns1=" << phase1_pruned_ns1 << " ns2=" << phase1_pruned_ns2
      << " gs=" << phase1_pruned_gs << " flow=" << phase1_tested_flow
      << " trivial=" << phase1_tested_trivial << "\n"
      << "phase2: tested=" << phase2_pairs_tested
      << " skip_group=" << phase2_pairs_skipped_group
      << " skip_adj=" << phase2_pairs_skipped_adjacent
      << " skip_common=" << phase2_pairs_skipped_common << "\n"
      << "framework: global_cut=" << global_cut_calls
      << " flow_calls=" << loc_cut_flow_calls
      << " partitions=" << overlap_partitions << " kvccs=" << kvccs_found
      << " kcore_removed=" << kcore_removed_vertices << "\n"
      << "preprocess: bucket_rounds=" << kcore_bucket_rounds
      << " cc_hooks=" << cc_hooks
      << " fused_passes=" << prune_fused_passes << "\n"
      << "certificate: edges " << certificate_edges_input << " -> "
      << certificate_edges_kept << ", side_groups=" << side_groups_found
      << ", strong_side=" << strong_side_vertices_found
      << " (checks=" << strong_side_checks_run
      << ", reused=" << strong_side_verdicts_reused
      << "), fallbacks=" << certificate_cut_fallbacks << "\n"
      << "wavefronts: " << probe_wavefronts
      << " probes_launched=" << probes_launched
      << " wasted_swept=" << probes_wasted_swept
      << " wasted_after_cut=" << probes_wasted_after_cut << "\n"
      << "cut oracle: localvc=" << probes_localvc
      << " fallbacks=" << probes_localvc_fallback
      << " edges_touched=" << probe_edges_touched << "\n"
      << "incremental: delta_edges=" << delta_edges_applied
      << " dirty_components=" << dirty_components
      << " reruns=" << incremental_reruns << "\n"
      << "job control: tasks_cancelled=" << tasks_cancelled
      << " cuts_cancelled=" << cuts_cancelled
      << " backpressure_blocks=" << stream_backpressure_blocks
      << " peak_buffered=" << stream_peak_buffered << "\n";
  return out.str();
}

}  // namespace kvcc
