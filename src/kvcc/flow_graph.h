// The directed flow graph (vertex splitting) and the LOC-CUT primitive.
//
// Construction (paper Section 4.1, Fig. 3): every vertex v of the undirected
// graph becomes an arc v_in -> v_out of capacity 1; every undirected edge
// (u, v) becomes two arcs u_out -> v_in and v_out -> u_in of capacity 1.
// The max flow from u_out to v_in equals the local vertex connectivity
// kappa(u, v) for non-adjacent u, v (Menger), and every node of the network
// has in-degree 1 or out-degree 1, so Dinic runs in O(sqrt(n) m).
//
// Two probe styles are offered over the same network:
//   * LocCut — Dinic from scratch: the baseline, O(min(sqrt(n), k) * m).
//   * LocCutLocal — budget-capped DFS flow growth (local search in the
//     style of Nanongkai–Saranurak–Yingchareonthawornchai 2019): when a
//     < k cut sits near u, the probe touches only the volume on u's side
//     of it. Budgets double a fixed number of times; if they run out the
//     probe falls back to Dinic *on the accumulated partial flow*, so no
//     augmentation work is ever discarded.
// Both styles are exact and return the identical cut: whenever
// kappa(u, v) < k, the extracted cut is derived from the residual-reachable
// set of a true max flow, which (for the minimal source-side min cut) is
// independent of which max flow was computed.
#ifndef KVCC_KVCC_FLOW_GRAPH_H_
#define KVCC_KVCC_FLOW_GRAPH_H_

#include <cstdint>
#include <vector>

#include "flow/unit_flow_network.h"
#include "graph/graph.h"

namespace kvcc {

/// Reusable vertex-connectivity oracle over a fixed undirected graph.
/// Queries reset the flow state internally, so a single instance serves all
/// LOC-CUT calls of one GLOBAL-CUT invocation. Rebind the oracle to another
/// graph with Rebuild(): the flow network's buffers are recycled, so one
/// long-lived instance (e.g. per enumeration worker) runs the whole
/// recursion without reallocating per subgraph. RebindShared() goes one
/// step further and adopts another instance's already-built arc topology in
/// O(1) steady state — the "incremental rebind" used by the wavefront probe
/// pool, where one owner pays the O(m) build per GLOBAL-CUT invocation and
/// every pool slot borrows it.
///
/// Instances are not thread-safe, but they are affine: GLOBAL-CUT's probe
/// wavefronts keep a pool of these, one per executor slot, each lazily
/// RebindShared-bound ("epoch rebind", see GlobalCutScratch::probe_pool) to
/// the invocation's topology owner — concurrent probes then query disjoint
/// mutable state over one immutable topology and Graph, which is safe.
class DirectedFlowGraph {
 public:
  /// Result of a budget-capped local LOC-CUT probe (LocCutLocal).
  struct LocalProbeResult {
    /// Same contract as LocCut's return value: empty when u == v, the
    /// endpoints are adjacent, or kappa(u, v) >= k; otherwise a u-v vertex
    /// cut with fewer than k vertices — byte-identical to LocCut's.
    std::vector<VertexId> cut;
    /// True when every local budget ran out and Dinic completed the probe
    /// from the partial flow.
    bool fell_back = false;
  };

  /// Unbound oracle; call Rebuild() before querying.
  DirectedFlowGraph() = default;
  explicit DirectedFlowGraph(const Graph& g);

  DirectedFlowGraph(const DirectedFlowGraph&) = delete;
  DirectedFlowGraph& operator=(const DirectedFlowGraph&) = delete;

  /// Rebinds the oracle to `g`, which must outlive all subsequent queries.
  /// Reuses the internal network storage. This instance becomes a topology
  /// owner (see RebindShared).
  void Rebuild(const Graph& g);

  /// Rebinds the oracle to `owner`'s graph by adopting its already-built
  /// arc topology instead of re-running the O(m) Rebuild: O(1) when this
  /// instance has seen a topology at least this large before (the pool
  /// steady state), O(m) tail-fill the first time. `owner` must stay bound
  /// and un-rebuilt for as long as this instance queries it; re-call after
  /// the owner's next Rebuild. Distinct borrowers of one owner may rebind
  /// and query concurrently (they only read the owner's immutable state).
  void RebindShared(const DirectedFlowGraph& owner);

  /// min(kappa(u, v), limit) for non-adjacent u != v. The caller must not
  /// pass adjacent vertices (kappa is infinite there; Lemma 5).
  std::int32_t LocalConnectivity(VertexId u, VertexId v, std::int32_t limit);

  /// LOC-CUT (paper Alg. 2 lines 12-17): empty result when u == v, u and v
  /// are adjacent, or kappa(u, v) >= k; otherwise a u-v vertex cut with
  /// fewer than k vertices (excluding u and v themselves).
  std::vector<VertexId> LocCut(VertexId u, VertexId v, std::uint32_t k);

  /// LOC-CUT by local search: grows the flow with DFS augmentation capped
  /// at `arc_budget` inspected arcs, doubling the budget `doublings` times
  /// before falling back to Dinic on the partial flow. The cut (or its
  /// absence) is byte-identical to LocCut's; only the work profile differs.
  /// Track the work via work_arcs() deltas.
  LocalProbeResult LocCutLocal(VertexId u, VertexId v, std::uint32_t k,
                               std::uint64_t arc_budget, int doublings);

  /// Number of flow computations run so far (for KvccStats).
  std::uint64_t flow_calls() const { return flow_calls_; }

  /// Monotone count of arcs inspected by all flow work on this oracle
  /// (KvccStats::probe_edges_touched is accumulated from deltas of this).
  std::uint64_t work_arcs() const { return network_.work_arcs(); }

  /// The bound graph (nullptr before the first Rebuild/RebindShared).
  const Graph* graph() const { return graph_; }

  static std::uint32_t InNode(VertexId v) { return 2 * v; }
  static std::uint32_t OutNode(VertexId v) { return 2 * v + 1; }

 private:
  /// Extracts the vertex cut after a LocalConnectivity call that returned a
  /// value < limit (i.e., a true max flow).
  std::vector<VertexId> ExtractVertexCut(VertexId u, VertexId v);

  const Graph* graph_ = nullptr;
  UnitFlowNetwork network_{0};
  std::uint64_t flow_calls_ = 0;
};

}  // namespace kvcc

#endif  // KVCC_KVCC_FLOW_GRAPH_H_
