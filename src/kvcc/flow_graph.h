// The directed flow graph (vertex splitting) and the LOC-CUT primitive.
//
// Construction (paper Section 4.1, Fig. 3): every vertex v of the undirected
// graph becomes an arc v_in -> v_out of capacity 1; every undirected edge
// (u, v) becomes two arcs u_out -> v_in and v_out -> u_in of capacity 1.
// The max flow from u_out to v_in equals the local vertex connectivity
// kappa(u, v) for non-adjacent u, v (Menger), and every node of the network
// has in-degree 1 or out-degree 1, so Dinic runs in O(sqrt(n) m).
#ifndef KVCC_KVCC_FLOW_GRAPH_H_
#define KVCC_KVCC_FLOW_GRAPH_H_

#include <cstdint>
#include <vector>

#include "flow/unit_flow_network.h"
#include "graph/graph.h"

namespace kvcc {

/// Reusable vertex-connectivity oracle over a fixed undirected graph.
/// Queries reset the flow state internally, so a single instance serves all
/// LOC-CUT calls of one GLOBAL-CUT invocation. Rebind the oracle to another
/// graph with Rebuild(): the flow network's buffers are recycled, so one
/// long-lived instance (e.g. per enumeration worker) runs the whole
/// recursion without reallocating per subgraph.
///
/// Instances are not thread-safe, but they are affine: GLOBAL-CUT's probe
/// wavefronts keep a pool of these, one per executor slot, each lazily
/// Rebuild-bound ("epoch rebind", see GlobalCutScratch::probe_pool) to the
/// invocation's shared test graph — concurrent probes then query disjoint
/// oracles over one immutable Graph, which is safe.
class DirectedFlowGraph {
 public:
  /// Unbound oracle; call Rebuild() before querying.
  DirectedFlowGraph() = default;
  explicit DirectedFlowGraph(const Graph& g);

  DirectedFlowGraph(const DirectedFlowGraph&) = delete;
  DirectedFlowGraph& operator=(const DirectedFlowGraph&) = delete;

  /// Rebinds the oracle to `g`, which must outlive all subsequent queries.
  /// Reuses the internal network storage.
  void Rebuild(const Graph& g);

  /// min(kappa(u, v), limit) for non-adjacent u != v. The caller must not
  /// pass adjacent vertices (kappa is infinite there; Lemma 5).
  std::int32_t LocalConnectivity(VertexId u, VertexId v, std::int32_t limit);

  /// LOC-CUT (paper Alg. 2 lines 12-17): empty result when u == v, u and v
  /// are adjacent, or kappa(u, v) >= k; otherwise a u-v vertex cut with
  /// fewer than k vertices (excluding u and v themselves).
  std::vector<VertexId> LocCut(VertexId u, VertexId v, std::uint32_t k);

  /// Number of flow computations run so far (for KvccStats).
  std::uint64_t flow_calls() const { return flow_calls_; }

  static std::uint32_t InNode(VertexId v) { return 2 * v; }
  static std::uint32_t OutNode(VertexId v) { return 2 * v + 1; }

 private:
  /// Extracts the vertex cut after a LocalConnectivity call that returned a
  /// value < limit (i.e., a true max flow).
  std::vector<VertexId> ExtractVertexCut(VertexId u, VertexId v);

  const Graph* graph_ = nullptr;
  UnitFlowNetwork network_{0};
  std::uint64_t flow_calls_ = 0;
};

}  // namespace kvcc

#endif  // KVCC_KVCC_FLOW_GRAPH_H_
