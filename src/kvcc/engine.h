// KvccEngine: a long-lived batch execution engine for k-VCC enumeration.
//
// The paper's VCCE algorithm decomposes each (graph, k) request into many
// independent GLOBAL-CUT subproblems. One engine owns a single persistent
// work-stealing TaskScheduler plus one EnumScratch (flow network, sparse
// certificate, sweep buffers) per worker; every submitted job's subproblem
// tasks interleave on that shared pool, so a server handling many requests
// keeps its workers and their scratch hot instead of paying scheduler
// spin-up and buffer allocation per call.
//
// Determinism: each job's result is byte-identical to a serial
// EnumerateKVccs call on the same (graph, k, options) regardless of the
// engine's worker count, concurrent jobs, or submission order — subproblem
// tasks are pure functions of their input and each job's merged output is
// canonically sorted.
//
// Streaming: SubmitStreaming / SubmitStream deliver each k-VCC the moment
// its subproblem commits instead of buffering until Wait(). The multiset
// of streamed components is byte-identical to the buffered result; with
// KvccOptions::stable_order the delivery *order* additionally reproduces
// the exact serial emission order via a reorder buffer (see stream.h and
// docs/ARCHITECTURE.md).
//
// Job control (docs/JOB_CONTROL.md): every job carries a CancelToken —
// fired by Cancel(ticket), by abandoning the job's ResultStream, or by an
// elapsed KvccOptions::deadline_ms — that its tasks poll at recursion and
// probe/wavefront boundaries, so a cancelled job returns its workers
// within one probe batch instead of draining the remaining recursion;
// Wait() then throws JobCancelled with the partial stats.
// KvccOptions::stream_buffer_limit bounds a SubmitStream channel with
// blocking producer backpressure, and KvccOptions::priority places every
// task of a job in a latency class on the shared pool.
#ifndef KVCC_KVCC_ENGINE_H_
#define KVCC_KVCC_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <unordered_map>
#include <vector>

#include "exec/task_scheduler.h"
#include "kvcc/enum_internal.h"
#include "kvcc/job_control.h"
#include "kvcc/kvcc_enum.h"
#include "kvcc/options.h"
#include "kvcc/stream.h"

/// \file
/// \brief KvccEngine: a long-lived batch engine serving many concurrent
/// (graph, k) jobs on one persistent work-stealing pool, with buffered
/// (Wait) and streaming (SubmitStreaming / SubmitStream) result delivery.

namespace kvcc {

class VersionedGraph;
class IncrementalKvcc;
struct IncrementalOutcome;

/// \brief One (graph, k) request for KvccEngine::RunBatch.
///
/// The graph is borrowed: it must stay alive until the batch call returns.
struct EngineJobSpec {
  /// \brief The graph to decompose (borrowed, non-null).
  const Graph* graph = nullptr;
  /// \brief Connectivity parameter (>= 1).
  std::uint32_t k = 0;
  /// \brief Algorithm options for this job (num_threads is ignored; the
  /// engine's worker count governs parallelism).
  KvccOptions options;
};

/// \brief Batch execution engine serving many concurrent (graph, k)
/// decomposition jobs on one persistent work-stealing worker pool.
class KvccEngine {
 public:
  /// \brief Ticket for a submitted job; pass to Wait() exactly once.
  using JobId = std::size_t;

  /// \brief Creates the engine and starts the persistent worker pool
  /// immediately.
  /// \param num_threads Worker count; 0 = one per hardware thread.
  ///   KvccOptions::num_threads is ignored for jobs served by an engine;
  ///   the engine's own worker count governs parallelism.
  explicit KvccEngine(unsigned num_threads = 0);

  /// \brief Drains any jobs still in flight, then joins the workers.
  /// Results of jobs never Wait()ed on are discarded.
  ~KvccEngine();

  /// \brief Engines are not copyable (they own threads and scratch).
  KvccEngine(const KvccEngine&) = delete;
  /// \brief Engines are not copyable (they own threads and scratch).
  KvccEngine& operator=(const KvccEngine&) = delete;

  /// \brief Number of worker threads serving this engine.
  /// \return The resolved worker count (>= 1).
  unsigned num_workers() const { return scheduler_.num_workers(); }

  /// \brief Enqueues one buffered job.
  ///
  /// Returns immediately; the job starts running on the shared pool right
  /// away, interleaved with every other in-flight job.
  /// \param g The graph to decompose; borrowed, must outlive the matching
  ///   Wait.
  /// \param k Connectivity parameter (>= 1).
  /// \param options Algorithm options (num_threads ignored).
  /// \return Ticket to pass to Wait() exactly once.
  /// \throws std::invalid_argument if k == 0.
  JobId Submit(const Graph& g, std::uint32_t k,
               const KvccOptions& options = {});

  /// \brief Enqueues one streaming job: `sink` receives every finished
  /// k-VCC as soon as its subproblem commits, then the final stats.
  ///
  /// Sink calls are serialized per job but arrive on worker threads; see
  /// ComponentSink for the full delivery contract. With
  /// options.stable_order the delivery order is the exact serial emission
  /// order (out-of-order completions are held in a reorder buffer);
  /// otherwise components are delivered the moment they commit, in a
  /// thread-count-dependent order whose multiset is still byte-identical
  /// to the buffered result. The returned ticket must still be Wait()ed:
  /// Wait blocks until delivery has finished, rethrows the first error
  /// (from the algorithm or from the sink), and returns a KvccResult
  /// whose `components` is empty (they were streamed) and whose `stats`
  /// equals what OnComplete received.
  /// \param g The graph to decompose; borrowed, must outlive Wait.
  /// \param k Connectivity parameter (>= 1).
  /// \param sink Non-null consumer for components and completion.
  /// \param options Algorithm options (num_threads ignored;
  ///   stable_order selects ordered delivery).
  /// \return Ticket to pass to Wait() exactly once.
  /// \throws std::invalid_argument if k == 0 or sink is null.
  JobId SubmitStreaming(const Graph& g, std::uint32_t k,
                        std::shared_ptr<ComponentSink> sink,
                        const KvccOptions& options = {});

  /// \brief Enqueues one streaming job and returns a pull-style handle.
  ///
  /// Built on the same delivery channel as SubmitStreaming. The job is
  /// detached from the Wait table: completion, stats, and errors are all
  /// observed through the stream (Next() rethrows job errors), and
  /// destroying the stream mid-flight abandons the remaining components,
  /// fires the job's cancel token — so the remaining recursion
  /// short-circuits at the next task / probe boundary instead of
  /// draining (bookkeeping is still reclaimed normally) — and then joins
  /// the job, returning once its final task has retired. With
  /// options.stream_buffer_limit > 0 the channel is bounded: a producer
  /// that runs `limit` components ahead of Next() blocks until the
  /// consumer catches up, the stream is abandoned, or the job is
  /// cancelled. The stream must not outlive the engine.
  /// \param g The graph to decompose; borrowed, must stay alive until the
  ///   stream reports completion or is destroyed (abandonment joins the
  ///   job, so either event means no worker reads the graph anymore).
  /// \param k Connectivity parameter (>= 1).
  /// \param options Algorithm options (num_threads ignored; stable_order
  ///   selects ordered delivery; stream_buffer_limit bounds the channel;
  ///   deadline_ms arms a wall-clock budget; priority picks the latency
  ///   class).
  /// \return Stream handle delivering the job's components.
  /// \throws std::invalid_argument if k == 0.
  ResultStream SubmitStream(const Graph& g, std::uint32_t k,
                            const KvccOptions& options = {});

  /// \brief Requests cooperative cancellation of job `id`.
  ///
  /// Returns immediately; the job's tasks observe the token at their next
  /// recursion-task or probe/wavefront boundary, short-circuit the
  /// remaining work, and the job completes with the JobCancelled outcome
  /// — Wait(id) (still required, and still the ticket's one consumer)
  /// throws JobCancelled carrying the partial stats of the work that ran.
  /// Components already delivered by a streaming job stay delivered;
  /// OnError receives the same JobCancelled instead of OnComplete. A job
  /// that completes before observing the token returns its full result
  /// normally — cancellation is best-effort by design.
  /// \param id Ticket from Submit or SubmitStreaming (detached
  ///   SubmitStream jobs are cancelled by abandoning their stream).
  /// \return True if the ticket was live — job in flight, unclaimed, or
  ///   currently blocked in another thread's Wait(id) (the watchdog
  ///   pattern: Cancel unsticks the waiter); false once that Wait has
  ///   returned, or for unknown ids.
  bool Cancel(JobId id);

  /// \brief Blocks until job `id` completes and returns its result
  /// (components canonically sorted, stats totals equal to the serial
  /// run's).
  ///
  /// If the job failed, rethrows its first recorded exception. Waiting
  /// consumes the ticket and reclaims the job's bookkeeping — a
  /// long-lived engine holds state only for in-flight and not-yet-waited
  /// jobs — so each id is valid for exactly one Wait. For streaming jobs
  /// the returned components are empty (they were delivered to the sink).
  /// \param id Ticket from Submit or SubmitStreaming.
  /// \return The job's result.
  /// \throws std::out_of_range on an unknown or already-consumed id.
  /// \throws JobCancelled if the job was cancelled (Cancel, deadline_ms)
  ///   and no other failure was recorded first; carries the partial
  ///   stats of the work that ran.
  KvccResult Wait(JobId id);

  /// \brief Convenience: submits every spec, waits for all, and returns
  /// results in spec order. Equivalent to per-call EnumerateKVccs
  /// output-wise.
  ///
  /// Every job is waited out (and its bookkeeping reclaimed) even when
  /// one fails: the first failure — including a JobCancelled from a
  /// per-spec deadline_ms — is rethrown only after the whole batch has
  /// drained. Callers that need per-job outcomes (e.g. "skip cancelled
  /// jobs, keep the rest") should Submit and Wait individually, as the
  /// CLI's batch mode does.
  /// \param jobs The specs to run (graphs borrowed for the call).
  /// \return One result per spec, in spec order.
  /// \throws std::invalid_argument if any spec's graph is null.
  /// \throws JobCancelled (or the job's own first error) for the first
  ///   failed job, after all jobs finished.
  std::vector<KvccResult> RunBatch(const std::vector<EngineJobSpec>& jobs);

  /// \brief Catches an incremental decomposition state up to a
  /// VersionedGraph's current version, running every dirty-region
  /// re-enumeration (across all levels) as one batch on this engine's
  /// pool.
  ///
  /// Equivalent to state.Update(graph, this) — see
  /// IncrementalKvcc::Update (kvcc/incremental.h) for the dirty-region
  /// contract; the patched hierarchy is byte-identical to a cold build
  /// on the materialized graph at every worker count.
  /// \param state The incremental state to advance (caller-serialized).
  /// \param graph The versioned graph to catch up to.
  /// \return Counters describing the work done.
  IncrementalOutcome SubmitIncremental(IncrementalKvcc& state,
                                       const VersionedGraph& graph);

 private:
  // Serial-emission-order key of one streamed component (stable_order
  // mode). Keys are sequences of elements, compared lexicographically:
  //   * an item's own j-th emitted component appends element j
  //     (top bit clear, ascending: earlier emits sort first);
  //   * the child spawned i-th appends element (kChildFlag | (kChildMax -
  //     i)) (top bit set: children sort after every own emit; descending
  //     in i: the serial LIFO stack processes the *last*-spawned child
  //     first, so later spawns sort earlier).
  // The serial run's emission order is exactly ascending key order, and
  // keys are prefix-free, so a reorder buffer over them can replay the
  // serial order from any parallel interleaving.
  using EmitKey = std::vector<std::uint64_t>;
  static constexpr std::uint64_t kChildFlag = std::uint64_t{1} << 63;
  static constexpr std::uint64_t kChildMax = kChildFlag - 1;

  struct JobState {
    const Graph* graph = nullptr;
    std::uint32_t k = 0;
    KvccOptions options;
    bool maintain = false;
    // Ticket already claimed by a Wait() (guarded by jobs_mutex_). The
    // table entry outlives the claim so Cancel() can still reach a job
    // someone is blocked waiting on; it is erased when that Wait returns.
    bool claimed = false;
    // Cooperative cancel flag shared with Cancel(), the job's stream
    // channel (abandonment), and the deadline armed at submission; every
    // task and GLOBAL-CUT of this job polls it.
    CancelToken cancel;
    // Latency class every task of this job carries on the shared pool.
    exec::TaskPriority priority = exec::TaskPriority::kNormal;

    // Unfinished tasks of this job's recursion tree; incremented before a
    // child is submitted, decremented when its task finishes, so reaching
    // zero proves the whole tree (and every merge into the accumulators
    // below) is done.
    std::atomic<std::size_t> pending{0};

    std::mutex mutex;
    std::condition_variable done_cv;
    std::vector<std::vector<VertexId>> components;  // buffered mode only
    KvccStats stats;
    std::exception_ptr error;
    bool done = false;

    // --- streaming delivery (sink != nullptr) ---
    // emit_mutex serializes every sink call and all reorder bookkeeping.
    // Lock order: emit_mutex before mutex, never the reverse.
    std::shared_ptr<ComponentSink> sink;
    bool stable_order = false;
    std::mutex emit_mutex;
    std::uint64_t next_sequence = 0;
    bool delivery_suppressed = false;  // sink threw; drop the rest
    // stable_order reorder state: components buffered until no live item
    // can emit a serially-earlier one. `live_min_keys` holds, per live
    // recursion item, the smallest key its subtree can still produce.
    std::map<EmitKey, std::vector<VertexId>> reorder;
    std::multiset<EmitKey> live_min_keys;
  };

  JobId SubmitJob(const Graph& g, std::uint32_t k, const KvccOptions& options,
                  std::shared_ptr<ComponentSink> sink, CancelToken cancel);
  void RunTask(const std::shared_ptr<JobState>& job,
               internal::WorkItem&& item, bool is_root, EmitKey path,
               unsigned worker_id);
  // All three require job->emit_mutex to be held by the caller.
  void DeliverLocked(JobState* job, std::vector<VertexId> ids);
  void DrainReorderLocked(JobState* job);
  void FinishStreaming(JobState* job);

  std::vector<internal::EnumScratch> scratch_;  // one per worker, unshared
  std::mutex jobs_mutex_;
  // Live tickets only: a returning Wait() frees its entry (and detached
  // stream jobs never hold one past submission), so the table holds
  // in-flight / unclaimed / being-waited-on jobs, not the full submission
  // history — keeping an entry until its Wait *returns* is what lets
  // Cancel() reach a job another thread is blocked waiting on. Tasks
  // share ownership of their JobState, so erasing an entry while the job
  // runs is safe — the state dies with its last task.
  std::unordered_map<JobId, std::shared_ptr<JobState>> jobs_;
  JobId next_job_id_ = 0;
  exec::TaskScheduler scheduler_;
};

}  // namespace kvcc

#endif  // KVCC_KVCC_ENGINE_H_
