// KvccEngine: a long-lived batch execution engine for k-VCC enumeration.
//
// The paper's VCCE algorithm decomposes each (graph, k) request into many
// independent GLOBAL-CUT subproblems. One engine owns a single persistent
// work-stealing TaskScheduler plus one EnumScratch (flow network, sparse
// certificate, sweep buffers) per worker; every submitted job's subproblem
// tasks interleave on that shared pool, so a server handling many requests
// keeps its workers and their scratch hot instead of paying scheduler
// spin-up and buffer allocation per call.
//
// Determinism: each job's result is byte-identical to a serial
// EnumerateKVccs call on the same (graph, k, options) regardless of the
// engine's worker count, concurrent jobs, or submission order — subproblem
// tasks are pure functions of their input and each job's merged output is
// canonically sorted.
#ifndef KVCC_KVCC_ENGINE_H_
#define KVCC_KVCC_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "exec/task_scheduler.h"
#include "kvcc/enum_internal.h"
#include "kvcc/kvcc_enum.h"
#include "kvcc/options.h"

namespace kvcc {

/// One (graph, k) request for KvccEngine::RunBatch. The graph is borrowed:
/// it must stay alive until the batch call returns.
struct EngineJobSpec {
  const Graph* graph = nullptr;
  std::uint32_t k = 0;
  KvccOptions options;
};

class KvccEngine {
 public:
  /// Ticket for a submitted job; pass to Wait() exactly once.
  using JobId = std::size_t;

  /// Creates the engine with `num_threads` workers (0 = one per hardware
  /// thread) and starts the persistent worker pool immediately.
  /// KvccOptions::num_threads is ignored for jobs served by an engine; the
  /// engine's own worker count governs parallelism.
  explicit KvccEngine(unsigned num_threads = 0);

  /// Drains any jobs still in flight, then joins the workers. Results of
  /// jobs never Wait()ed on are discarded.
  ~KvccEngine();

  KvccEngine(const KvccEngine&) = delete;
  KvccEngine& operator=(const KvccEngine&) = delete;

  unsigned num_workers() const { return scheduler_.num_workers(); }

  /// Enqueues one job (k >= 1; g is borrowed and must outlive the matching
  /// Wait). Returns immediately; the job starts running on the shared pool
  /// right away, interleaved with every other in-flight job.
  JobId Submit(const Graph& g, std::uint32_t k,
               const KvccOptions& options = {});

  /// Blocks until job `id` completes and returns its result (components
  /// canonically sorted, stats totals equal to the serial run's). If the
  /// job failed, rethrows its first recorded exception. Waiting consumes
  /// the ticket and reclaims the job's bookkeeping — a long-lived engine
  /// holds state only for in-flight and not-yet-waited jobs — so each id
  /// is valid for exactly one Wait; reusing it throws std::out_of_range.
  KvccResult Wait(JobId id);

  /// Convenience: submits every spec, waits for all, and returns results
  /// in spec order. Equivalent to per-call EnumerateKVccs output-wise.
  std::vector<KvccResult> RunBatch(const std::vector<EngineJobSpec>& jobs);

 private:
  struct JobState {
    const Graph* graph = nullptr;
    std::uint32_t k = 0;
    KvccOptions options;
    bool maintain = false;

    // Unfinished tasks of this job's recursion tree; incremented before a
    // child is submitted, decremented when its task finishes, so reaching
    // zero proves the whole tree (and every merge into the accumulators
    // below) is done.
    std::atomic<std::size_t> pending{0};

    std::mutex mutex;
    std::condition_variable done_cv;
    std::vector<std::vector<VertexId>> components;
    KvccStats stats;
    std::exception_ptr error;
    bool done = false;
  };

  void RunTask(JobState* job, internal::WorkItem&& item, bool is_root,
               unsigned worker_id);

  std::vector<internal::EnumScratch> scratch_;  // one per worker, unshared
  std::mutex jobs_mutex_;
  // Live tickets only: Wait() extracts and frees its entry, so the table
  // holds in-flight / unclaimed jobs, not the full submission history.
  std::unordered_map<JobId, std::unique_ptr<JobState>> jobs_;
  JobId next_job_id_ = 0;
  exec::TaskScheduler scheduler_;
};

}  // namespace kvcc

#endif  // KVCC_KVCC_ENGINE_H_
