// Strong side-vertex detection (paper Section 5.1.1).
//
// A vertex u is a *strong side-vertex* (Thm 8 / Def 10) if every pair of its
// neighbors is either adjacent or shares >= k common neighbors. Such a
// vertex cannot belong to any minimum vertex cut, which makes the
// transitivity rule of Lemma 11 applicable: once the source is known to be
// locally k-connected to u, all of u's neighbors can be swept.
//
// Soundness note: over-reporting strong side-vertices would let sweeps hide
// real cuts, so detection errs strictly on the side of under-reporting
// (degree caps and unverified maintenance hints downgrade to "not strong").
#ifndef KVCC_KVCC_SIDE_VERTEX_H_
#define KVCC_KVCC_SIDE_VERTEX_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace kvcc {

/// Carry-over verdict for one vertex when a graph is derived from a parent
/// graph (overlap partition and/or k-core peeling), per Lemmas 15/16.
enum class SideVertexHint : std::uint8_t {
  /// No usable parent verdict; run the full check.
  kRecheck,
  /// Strong in the parent and 2-hop neighbourhood untouched: still strong.
  kStrong,
  /// Not strong in the parent: conservatively treated as not strong
  /// (Lemma 15 direction; sound under-detection).
  kNotStrong,
};

struct SideVertexResult {
  std::vector<bool> strong;       // size n
  std::uint64_t checks_run = 0;   // full Theta(d^2) checks executed
  std::uint64_t reused = 0;       // verdicts taken from hints
  std::uint64_t strong_count = 0;
};

/// Instrumentation counters of one detection pass (the buffer-reusing API
/// below returns these; the verdicts land in the scratch).
struct SideVertexCounts {
  std::uint64_t checks_run = 0;
  std::uint64_t reused = 0;
  std::uint64_t strong_count = 0;
};

/// Reusable working set for strong side-vertex detection. One instance per
/// enumeration worker (inside GlobalCutScratch) serves every GLOBAL-CUT
/// call of a run: the verdict vector and the memoized pair-verdict table
/// only ever grow, so the steady-state detection pass performs no heap
/// allocation. A default-constructed scratch is always valid.
struct SideVertexScratch {
  /// Verdicts of the most recent ComputeStrongSideVerticesInto call
  /// (size n of that call's graph). Stable until the next call.
  std::vector<bool> strong;

  // Open-addressing pair-verdict cache (Theorem-8 memoization). Slots are
  // epoch-stamped so a new detection pass invalidates the table in O(1);
  // growth reallocates and simply drops the cached verdicts (they are
  // deterministic, so re-deriving them cannot change any result).
  struct PairSlot {
    std::uint64_t key = 0;
    std::uint64_t epoch = 0;
    bool good = false;
  };
  std::vector<PairSlot> pair_slots;
  std::uint64_t pair_epoch = 0;
  std::size_t pair_live = 0;
};

/// Buffer-reusing core of ComputeStrongSideVertices: verdicts are written
/// into scratch.strong (grown, never shrunk) and the Theorem-8 pair checks
/// are memoized in the scratch's flat table. Steady state (capacities
/// already grown): no heap allocation.
SideVertexCounts ComputeStrongSideVerticesInto(
    const Graph& g, std::uint32_t k, const std::vector<SideVertexHint>& hints,
    std::uint32_t degree_cap, SideVertexScratch& scratch);

/// True iff a and b have at least k common neighbors in g (Lemma 13 gives
/// a ≡k b then). Linear merge of the sorted adjacency lists, early exit.
bool CommonNeighborsAtLeast(const Graph& g, VertexId a, VertexId b,
                            std::uint32_t k);

/// Full Theorem-8 check for a single vertex. O(d(u)^2 * d_max) worst case.
bool IsStrongSideVertex(const Graph& g, VertexId u, std::uint32_t k);

/// Computes the strong side-vertex set of g. `hints` may be empty (check
/// everything) or size n. Vertices with degree above `degree_cap` (if
/// nonzero) are reported not strong without checking.
SideVertexResult ComputeStrongSideVertices(
    const Graph& g, std::uint32_t k, const std::vector<SideVertexHint>& hints,
    std::uint32_t degree_cap);

/// Vertices within distance <= 2 of any vertex in `sources` (including the
/// sources themselves). Used to invalidate side-vertex verdicts around a
/// cut / peeled set before deriving child graphs.
std::vector<bool> TwoHopBall(const Graph& g,
                             const std::vector<VertexId>& sources);

}  // namespace kvcc

#endif  // KVCC_KVCC_SIDE_VERTEX_H_
