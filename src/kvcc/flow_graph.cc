#include "kvcc/flow_graph.h"

#include <cassert>

namespace kvcc {

DirectedFlowGraph::DirectedFlowGraph(const Graph& g) { Rebuild(g); }

void DirectedFlowGraph::Rebuild(const Graph& g) {
  graph_ = &g;
  flow_calls_ = 0;  // flow_calls() counts queries against the *current* graph.
  network_.Reinit(2 * g.NumVertices());
  // Vertex arcs first: arc index of v's arc is 2v (its reverse 2v+1), which
  // makes vertex-arc lookups in ExtractVertexCut index-free.
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    network_.AddArc(InNode(v), OutNode(v), 1);
  }
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    for (VertexId v : g.Neighbors(u)) {
      // Each undirected edge contributes u_out -> v_in from both endpoints'
      // iterations.
      network_.AddArc(OutNode(u), InNode(v), 1);
    }
  }
}

// Warm-path: O(1) steady-state rebind (see AdoptTopology).
// kvcc-lint: no-alloc
void DirectedFlowGraph::RebindShared(const DirectedFlowGraph& owner) {
  assert(owner.graph_ != nullptr && "RebindShared from an unbound owner");
  graph_ = owner.graph_;
  flow_calls_ = 0;  // flow_calls() counts queries against the *current* graph.
  network_.AdoptTopology(owner.network_);
}

// Warm-path: one exact Dinic probe on the pooled network.
// kvcc-lint: no-alloc
std::int32_t DirectedFlowGraph::LocalConnectivity(VertexId u, VertexId v,
                                                  std::int32_t limit) {
  assert(graph_ != nullptr);
  assert(u != v);
  network_.ResetFlow();
  ++flow_calls_;
  return network_.MaxFlow(OutNode(u), InNode(v), limit);
}

std::vector<VertexId> DirectedFlowGraph::LocCut(VertexId u, VertexId v,
                                                std::uint32_t k) {
  if (u == v || graph_->HasEdge(u, v)) return {};  // Lemma 5.
  const std::int32_t flow =
      LocalConnectivity(u, v, static_cast<std::int32_t>(k));
  if (flow >= static_cast<std::int32_t>(k)) return {};
  return ExtractVertexCut(u, v);
}

DirectedFlowGraph::LocalProbeResult DirectedFlowGraph::LocCutLocal(
    VertexId u, VertexId v, std::uint32_t k, std::uint64_t arc_budget,
    int doublings) {
  LocalProbeResult result;
  if (u == v || graph_->HasEdge(u, v)) return result;  // Lemma 5.
  network_.ResetFlow();
  ++flow_calls_;
  const auto limit = static_cast<std::int32_t>(k);
  const std::uint32_t s = OutNode(u);
  const std::uint32_t t = InNode(v);
  std::int32_t flow = 0;
  for (int round = 0; round <= doublings; ++round, arc_budget *= 2) {
    const UnitFlowNetwork::LocalFlowResult local =
        network_.MaxFlowLocal(s, t, limit - flow, arc_budget);
    flow += local.flow;
    if (!local.exact) continue;  // Budget spent; retry doubled.
    if (flow < limit) result.cut = ExtractVertexCut(u, v);
    return result;
  }
  // Every local budget ran out: let Dinic finish from the partial flow —
  // max flow (and the minimal source-side cut) is independent of how the
  // flow so far was grown, so nothing local is wasted or re-derived.
  result.fell_back = true;
  flow += network_.MaxFlow(s, t, limit - flow);
  if (flow < limit) result.cut = ExtractVertexCut(u, v);
  return result;
}

std::vector<VertexId> DirectedFlowGraph::ExtractVertexCut(VertexId u,
                                                          VertexId v) {
  const std::vector<bool> reachable =
      network_.ResidualReachable(OutNode(u));
  std::vector<bool> in_cut(graph_->NumVertices(), false);
  std::vector<VertexId> cut;

  auto add = [&](VertexId w) {
    assert(w != u && w != v);
    if (!in_cut[w]) {
      in_cut[w] = true;
      cut.push_back(w);
    }
  };

  // Vertex arcs crossing the residual cut: w itself is a cut vertex.
  for (VertexId w = 0; w < graph_->NumVertices(); ++w) {
    if (reachable[InNode(w)] && !reachable[OutNode(w)]) add(w);
  }
  // Edge arcs a_out -> b_in crossing the cut. Any source-to-sink path using
  // such an arc must next traverse b's vertex arc (b_in has a single
  // outgoing arc), so removing b also severs it — unless b is the sink v,
  // in which case the path came through a's vertex arc and removing a works
  // (a cannot be the source u because u and v are non-adjacent).
  for (VertexId a = 0; a < graph_->NumVertices(); ++a) {
    if (!reachable[OutNode(a)]) continue;
    for (VertexId b : graph_->Neighbors(a)) {
      if (reachable[InNode(b)]) continue;
      if (b != v) {
        // Arcs into u_in never carry flow, so b == u cannot occur here.
        add(b);
      } else {
        add(a);
      }
    }
  }
  assert(!cut.empty());
  return cut;
}

}  // namespace kvcc
