// Pluggable LOC-CUT probe engines (the "CutOracle seam").
//
// GLOBAL-CUT's inner loop is a long sequence of LOC-CUT probes: "is there a
// vertex cut of size < k between u and v, and if so, which one?". This
// header abstracts that probe behind an interface so the connectivity core
// can be swapped — Dinic baseline, NSY-2019-style local search, or a
// degree-routed hybrid — without touching the search logic. Every engine is
// exact: probe results (and therefore components, cuts, and hierarchies)
// are byte-identical across engines, because a found cut is always derived
// from the residual-reachable set of a true max flow, which is the same
// minimal source-side min cut no matter how the flow was computed.
//
// Selection: KvccOptions::cut_oracle, surfaced on the CLI as --cut-oracle.
// Documentation: docs/ARCHITECTURE.md, "The CutOracle seam".
#ifndef KVCC_KVCC_CUT_ORACLE_H_
#define KVCC_KVCC_CUT_ORACLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.h"
#include "kvcc/flow_graph.h"
#include "kvcc/options.h"

/// \file
/// \brief CutOracle: pluggable LOC-CUT probe engines (Dinic / LocalVC /
/// Hybrid) behind one exact, byte-identical interface.

namespace kvcc {

/// \brief Per-probe work accounting emitted by CutOracle::Probe.
///
/// Accumulated into the matching KvccStats fields by the GLOBAL-CUT
/// commit loops. Like the wavefront waste counters, the totals are not
/// replay-identical across thread counts (speculative wavefront probes do
/// real oracle work), but they are deterministic for a fixed
/// (input, options, thread count).
struct ProbeCounters {
  /// \brief Probes answered by the local-search engine (including those
  /// that fell back mid-probe).
  std::uint64_t probes_localvc = 0;
  /// \brief Local-search probes whose budgets ran out, completed by Dinic
  /// on the accumulated partial flow.
  std::uint64_t probes_localvc_fallback = 0;
  /// \brief Arcs of the flow network inspected by the probe's flow work
  /// (all engines report this; the LocalVC win shows up here first).
  std::uint64_t probe_edges_touched = 0;

  /// \brief Adds another probe's counters field-by-field.
  /// \param other The counters to accumulate.
  void Add(const ProbeCounters& other) {
    probes_localvc += other.probes_localvc;
    probes_localvc_fallback += other.probes_localvc_fallback;
    probe_edges_touched += other.probe_edges_touched;
  }
};

/// \brief Tuning for the local-search probe path (LocalVC and Hybrid).
///
/// The defaults are what the presets run; tests pin tiny budgets to force
/// the fallback path deterministically.
struct LocalProbeTuning {
  /// \brief First-round arc-inspection budget; 0 (default) derives the
  /// budget from k (poly(k), independent of the graph size — that
  /// independence is what makes the probe sublinear).
  std::uint64_t budget_base = 0;
  /// \brief How many times the budget doubles before the probe falls back
  /// to Dinic on the partial flow.
  int doublings = 4;
};

/// \brief Interface of one LOC-CUT probe engine.
///
/// Binding: BindGraph builds the vertex-split flow topology (O(n + m));
/// BindShared adopts another oracle's already-built topology in O(1)
/// steady state (the wavefront pool's incremental rebind). A bound oracle
/// answers any number of probes; instances are affine (not thread-safe),
/// but distinct borrowers of one owner may bind and probe concurrently.
class CutOracle {
 public:
  virtual ~CutOracle() = default;

  /// \brief Binds the oracle to `g`, building the flow topology from
  /// scratch (buffers recycled across binds). `g` must outlive all probes.
  /// This oracle becomes a topology owner for BindShared.
  /// \param g The (certificate or working) graph to probe.
  void BindGraph(const Graph& g) { flow_.Rebuild(g); }

  /// \brief Binds the oracle to `owner`'s graph by adopting its built
  /// topology — O(1) once this oracle has seen a topology this large.
  /// `owner` must stay bound unchanged while this oracle probes; rebind
  /// after the owner's next BindGraph. Safe concurrently across distinct
  /// borrowers of one owner.
  /// \param owner A bound oracle (of any kind) to borrow the topology from.
  void BindShared(const CutOracle& owner) {
    flow_.RebindShared(owner.flow_);
  }

  /// \brief LOC-CUT probe: empty result when u == v, the endpoints are
  /// adjacent, or kappa(u, v) >= k; otherwise a u-v vertex cut with fewer
  /// than k vertices. The result is byte-identical across all engines.
  /// \param u Probe source (flow runs from u's out-node).
  /// \param v Probe sink.
  /// \param k The connectivity threshold.
  /// \param counters Incremented with this probe's work accounting.
  /// \return The cut, or empty.
  virtual std::vector<VertexId> Probe(VertexId u, VertexId v,
                                      std::uint32_t k,
                                      ProbeCounters& counters) = 0;

  /// \brief Which engine this oracle implements (mirrors the
  /// KvccOptions::cut_oracle it was created from).
  /// \return The engine kind.
  virtual CutOracleKind kind() const = 0;

  /// \brief The graph bound by the last BindGraph/BindShared.
  /// \return The bound graph, or nullptr before the first bind.
  const Graph* graph() const { return flow_.graph(); }

 protected:
  /// \brief Shared flow substrate: the vertex-split network plus LOC-CUT
  /// extraction, reused by every engine.
  DirectedFlowGraph flow_;
};

/// \brief Creates the probe engine for `kind`.
/// \param kind Which engine to instantiate.
/// \param tuning Local-search budgets (ignored by kDinic).
/// \return A fresh unbound oracle; call BindGraph/BindShared before
/// probing.
std::unique_ptr<CutOracle> MakeCutOracle(CutOracleKind kind,
                                         const LocalProbeTuning& tuning = {});

}  // namespace kvcc

#endif  // KVCC_KVCC_CUT_ORACLE_H_
