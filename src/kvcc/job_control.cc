#include "kvcc/job_control.h"

#include <utility>

namespace kvcc {

CancelToken::CancelToken() : state_(std::make_shared<State>()) {}

void CancelToken::SetDeadline(
    std::chrono::steady_clock::time_point deadline) {
  state_->has_deadline = true;
  state_->deadline = deadline;
}

void CancelToken::RequestCancel() noexcept {
  state_->cancelled.store(true, std::memory_order_relaxed);
}

bool CancelToken::Cancelled() const noexcept {
  if (state_->cancelled.load(std::memory_order_relaxed)) return true;
  if (state_->has_deadline &&
      std::chrono::steady_clock::now() >= state_->deadline) {
    // Latch: once a deadline has fired, every future poll is O(flag) and
    // every copy of the token agrees.
    state_->cancelled.store(true, std::memory_order_relaxed);
    return true;
  }
  return false;
}

JobCancelled::JobCancelled(const std::string& what, KvccStats partial)
    : std::runtime_error(what), partial_(std::move(partial)) {}

}  // namespace kvcc
