#include "exec/task_scheduler.h"

#include <utility>

namespace kvcc::exec {
namespace {

/// Worker id of the current thread while inside WorkerLoop; -1 elsewhere.
/// Lets Submit route child tasks to the spawning worker's own deque.
thread_local int tls_worker_id = -1;

}  // namespace

unsigned ResolveThreadCount(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

TaskScheduler::TaskScheduler(unsigned num_workers) {
  if (num_workers == 0) num_workers = 1;
  queues_.reserve(num_workers);
  for (unsigned i = 0; i < num_workers; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
}

TaskScheduler::~TaskScheduler() { Stop(); }

void TaskScheduler::Submit(Task task) {
  unsigned target;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++outstanding_;
    const int self = tls_worker_id;
    if (self >= 0 && static_cast<unsigned>(self) < queues_.size()) {
      target = static_cast<unsigned>(self);
    } else {
      target = next_seed_queue_++ % num_workers();
    }
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(task));
  }
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++submit_seq_;  // After the push: sleepers re-scan once they see it.
  }
  wake_cv_.notify_one();
}

bool TaskScheduler::TryPopOwn(unsigned worker, Task& task) {
  WorkerQueue& q = *queues_[worker];
  std::lock_guard<std::mutex> lock(q.mutex);
  if (q.tasks.empty()) return false;
  task = std::move(q.tasks.back());  // LIFO: newest subtree, cache-hot.
  q.tasks.pop_back();
  return true;
}

bool TaskScheduler::TrySteal(unsigned thief, Task& task) {
  const unsigned n = num_workers();
  for (unsigned offset = 1; offset < n; ++offset) {
    WorkerQueue& q = *queues_[(thief + offset) % n];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (q.tasks.empty()) continue;
    task = std::move(q.tasks.front());  // FIFO: oldest = largest subtree.
    q.tasks.pop_front();
    return true;
  }
  return false;
}

void TaskScheduler::WorkerLoop(unsigned worker) {
  tls_worker_id = static_cast<int>(worker);
  Task task;
  while (true) {
    // Snapshot the submit sequence *before* scanning: any task pushed
    // before the snapshot is visible to the scan, and any task pushed
    // after it advances submit_seq_, so the wait below cannot sleep
    // through a submission.
    std::uint64_t seen;
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      if (stop_ && outstanding_ == 0) break;
      seen = submit_seq_;
    }
    if (TryPopOwn(worker, task) || TrySteal(worker, task)) {
      try {
        task(worker);
      } catch (...) {
        // Record the first failure and keep draining so the counter still
        // reaches zero; Run() rethrows after the workers join. Matches the
        // serial path, where the exception reaches the caller directly.
        std::lock_guard<std::mutex> lock(state_mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      task = nullptr;  // Release captures before possibly blocking.
      std::lock_guard<std::mutex> lock(state_mutex_);
      if (--outstanding_ == 0) {
        // Quiescent: wake Run()/Stop() waiters and parked siblings (which
        // either exit, if stopping, or re-park until the next Submit).
        wake_cv_.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(state_mutex_);
    wake_cv_.wait(lock, [&] {
      return (stop_ && outstanding_ == 0) || submit_seq_ != seen;
    });
    if (stop_ && outstanding_ == 0) break;
  }
  tls_worker_id = -1;
}

void TaskScheduler::Start() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (started_) return;
    started_ = true;
  }
  threads_.reserve(num_workers());
  for (unsigned i = 0; i < num_workers(); ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

void TaskScheduler::Stop() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (stop_ && threads_.empty()) return;  // Already stopped (or never ran).
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  threads_.clear();
}

void TaskScheduler::Run() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (outstanding_ == 0) {
      stop_ = true;  // Nothing to do; leave the scheduler retired.
      return;
    }
  }
  // One-shot = persistent lifecycle compressed: spawn, drain (Stop only
  // joins once outstanding_ hits zero), then surface the first failure.
  Start();
  Stop();
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    std::rethrow_exception(error);
  }
}

}  // namespace kvcc::exec
