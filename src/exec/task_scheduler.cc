#include "exec/task_scheduler.h"

#include <atomic>
#include <memory>
#include <utility>

namespace kvcc::exec {
namespace {

/// Worker id of the current thread while inside WorkerLoop; -1 elsewhere.
/// Lets Submit route child tasks to the spawning worker's own deque.
thread_local int tls_worker_id = -1;

/// The scheduler the current thread is a worker of; null elsewhere. A
/// worker id is only meaningful relative to its own scheduler — ParallelFor
/// on scheduler A called from a worker of scheduler B must treat the caller
/// as external, or its slot could collide with one of A's helpers.
thread_local const TaskScheduler* tls_scheduler = nullptr;

}  // namespace

unsigned ResolveThreadCount(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

TaskScheduler::TaskScheduler(unsigned num_workers) {
  if (num_workers == 0) num_workers = 1;
  queues_.reserve(num_workers);
  for (unsigned i = 0; i < num_workers; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
}

TaskScheduler::~TaskScheduler() { Stop(); }

void TaskScheduler::Enqueue(Task task, TaskPriority priority, bool shared) {
  unsigned target;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++outstanding_;
    const int self = tls_worker_id;
    if (!shared && tls_scheduler == this && self >= 0 &&
        static_cast<unsigned>(self) < queues_.size()) {
      target = static_cast<unsigned>(self);
    } else {
      target = next_seed_queue_++ % num_workers();
    }
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mutex);
    queues_[target]->tasks[static_cast<unsigned>(priority)].push_back(
        std::move(task));
  }
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++submit_seq_;  // After the push: sleepers re-scan once they see it.
  }
  wake_cv_.notify_one();
}

void TaskScheduler::Submit(Task task, TaskPriority priority) {
  Enqueue(std::move(task), priority, false);
}

void TaskScheduler::SubmitShared(Task task, TaskPriority priority) {
  Enqueue(std::move(task), priority, true);
}

std::uint64_t TaskScheduler::ApproxOutstanding() {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return outstanding_;
}

void TaskScheduler::ParallelFor(
    std::size_t count,
    const std::function<void(std::size_t index, unsigned slot)>& body,
    TaskPriority priority) {
  const unsigned caller_slot =
      (tls_scheduler == this && tls_worker_id >= 0)
          ? static_cast<unsigned>(tls_worker_id)
          : num_workers();
  if (count <= 1 || num_workers() == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i, caller_slot);
    return;
  }

  // Shared by the caller and the helper stubs. Heap-owned so a stub that
  // runs after the caller already returned (every index long claimed) finds
  // dead-but-valid state instead of a dangling stack frame; such a straggler
  // sees next >= count and exits without ever touching `body`.
  struct ForState {
    std::atomic<std::size_t> next{0};
    std::mutex mutex;
    std::condition_variable done_cv;
    std::size_t completed = 0;
    std::size_t count = 0;
    std::exception_ptr first_error;
    const std::function<void(std::size_t, unsigned)>* body = nullptr;
  };
  auto state = std::make_shared<ForState>();
  state->count = count;
  state->body = &body;

  auto drain = [](const std::shared_ptr<ForState>& s, unsigned slot) {
    std::size_t done_here = 0;
    std::exception_ptr error;
    while (true) {
      const std::size_t i = s->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= s->count) break;
      try {
        (*s->body)(i, slot);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
      ++done_here;
    }
    if (done_here == 0 && !error) return;
    std::lock_guard<std::mutex> lock(s->mutex);
    if (error && !s->first_error) s->first_error = error;
    s->completed += done_here;
    if (s->completed == s->count) s->done_cv.notify_all();
  };

  // Helper stubs are worth their submission cost only when part of the pool
  // is idle (outstanding < workers, counting the caller's own task). When
  // the queues are already saturated with real tasks, the caller simply
  // drains the whole range itself — same results, no stub churn.
  const std::uint64_t outstanding = ApproxOutstanding();
  std::size_t helpers = 0;
  if (outstanding < num_workers()) {
    helpers = std::min<std::size_t>(num_workers() - 1, count - 1);
  }
  for (std::size_t h = 0; h < helpers; ++h) {
    SubmitShared([state, drain](unsigned worker) { drain(state, worker); },
                 priority);
  }

  drain(state, caller_slot);

  // Bounded wait: every unclaimed index was drained by the caller above, so
  // this only waits for bodies other threads are executing right now. A
  // helper stub never blocks, so no wait cycle can form — nested calls
  // (even on one worker, even from inside a body) always terminate.
  std::unique_lock<std::mutex> lock(state->mutex);
  state->done_cv.wait(lock, [&] { return state->completed == state->count; });
  if (state->first_error) {
    std::exception_ptr error = std::exchange(state->first_error, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

bool TaskScheduler::TryPopOwn(unsigned worker, Task& task) {
  WorkerQueue& q = *queues_[worker];
  std::lock_guard<std::mutex> lock(q.mutex);
  // Weighted pop: usually take the highest class waiting (interactive
  // overtakes bulk), but every kFairnessStride-th pop serves a *lower*
  // class first — alternating which one, so both bulk and normal keep a
  // guaranteed share even when a saturating interactive stream would
  // otherwise monopolize the regular pops (and a bulk backlog would
  // monopolize the fairness turns, starving the middle class).
  const std::uint64_t pop = q.pops++;
  const bool fairness_turn = (pop % kFairnessStride) == 0;
  const bool serve_bulk_first =
      fairness_turn && (pop / kFairnessStride) % 2 == 0;
  // Scan orders: regular {0,1,2}; fairness turns alternate {2,1,0} and
  // {1,2,0} (favored lower class first, the other lower class next, the
  // top class only as a fallback).
  static_assert(kNumTaskPriorities == 3,
                "fairness rotation below spells out the three classes");
  unsigned order[kNumTaskPriorities];
  if (!fairness_turn) {
    for (unsigned c = 0; c < kNumTaskPriorities; ++c) order[c] = c;
  } else if (serve_bulk_first) {
    order[0] = 2, order[1] = 1, order[2] = 0;
  } else {
    order[0] = 1, order[1] = 2, order[2] = 0;
  }
  for (unsigned step = 0; step < kNumTaskPriorities; ++step) {
    std::deque<Task>& tasks = q.tasks[order[step]];
    if (tasks.empty()) continue;
    task = std::move(tasks.back());  // LIFO: newest subtree, cache-hot.
    tasks.pop_back();
    return true;
  }
  return false;
}

bool TaskScheduler::TrySteal(unsigned thief, Task& task) {
  const unsigned n = num_workers();
  // One lock per victim: within each victim, steal the highest class
  // waiting there — a thief is idle capacity, and idle capacity should
  // serve the latency-sensitive class first. (No global class-before-
  // victim order: that would cost up to kNumTaskPriorities locked passes
  // over every queue per failed scan, and the weighted owner pops make
  // cross-queue class order best-effort anyway.)
  for (unsigned offset = 1; offset < n; ++offset) {
    WorkerQueue& q = *queues_[(thief + offset) % n];
    std::lock_guard<std::mutex> lock(q.mutex);
    for (unsigned cls = 0; cls < kNumTaskPriorities; ++cls) {
      std::deque<Task>& tasks = q.tasks[cls];
      if (tasks.empty()) continue;
      task = std::move(tasks.front());  // FIFO: oldest = largest subtree.
      tasks.pop_front();
      return true;
    }
  }
  return false;
}

void TaskScheduler::WorkerLoop(unsigned worker) {
  tls_worker_id = static_cast<int>(worker);
  tls_scheduler = this;
  Task task;
  while (true) {
    // Snapshot the submit sequence *before* scanning: any task pushed
    // before the snapshot is visible to the scan, and any task pushed
    // after it advances submit_seq_, so the wait below cannot sleep
    // through a submission.
    std::uint64_t seen;
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      if (stop_ && outstanding_ == 0) break;
      seen = submit_seq_;
    }
    if (TryPopOwn(worker, task) || TrySteal(worker, task)) {
      try {
        task(worker);
      } catch (...) {
        // Record the first failure and keep draining so the counter still
        // reaches zero; Run() rethrows after the workers join. Matches the
        // serial path, where the exception reaches the caller directly.
        std::lock_guard<std::mutex> lock(state_mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      task = nullptr;  // Release captures before possibly blocking.
      std::lock_guard<std::mutex> lock(state_mutex_);
      if (--outstanding_ == 0) {
        // Quiescent: wake Run()/Stop() waiters and parked siblings (which
        // either exit, if stopping, or re-park until the next Submit).
        wake_cv_.notify_all();
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(state_mutex_);
    wake_cv_.wait(lock, [&] {
      return (stop_ && outstanding_ == 0) || submit_seq_ != seen;
    });
    if (stop_ && outstanding_ == 0) break;
  }
  tls_worker_id = -1;
  tls_scheduler = nullptr;
}

void TaskScheduler::Start() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (started_) return;
    started_ = true;
  }
  threads_.reserve(num_workers());
  for (unsigned i = 0; i < num_workers(); ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

void TaskScheduler::Stop() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (stop_ && threads_.empty()) return;  // Already stopped (or never ran).
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  threads_.clear();
}

void TaskScheduler::Run() {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (outstanding_ == 0) {
      stop_ = true;  // Nothing to do; leave the scheduler retired.
      return;
    }
  }
  // One-shot = persistent lifecycle compressed: spawn, drain (Stop only
  // joins once outstanding_ hits zero), then surface the first failure.
  Start();
  Stop();
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    std::rethrow_exception(error);
  }
}

}  // namespace kvcc::exec
