// Work-stealing task scheduler for recursive decomposition workloads.
//
// The k-VCC recursion (and any divide-and-conquer over graphs) produces a
// dynamic tree of independent tasks: processing one work item may spawn
// several child items. This scheduler runs such a tree to quiescence on a
// fixed set of worker threads:
//
//   * each worker owns a deque; the owner pushes/pops at the back (LIFO,
//     keeps the working set cache-hot and the deque shallow), thieves steal
//     from the front (FIFO, steals the largest remaining subtrees first);
//   * tasks submitted from within a task go to the submitting worker's own
//     deque, so a worker keeps draining its subtree until someone steals;
//   * quiescence is detected with a global outstanding-task counter:
//     when it drops to zero no task is running or queued, so no new task
//     can appear until the next external Submit.
//
// Two driving modes share the same worker loop:
//
//   * one-shot (Run): seed tasks with Submit, then Run() executes the tree
//     to quiescence on freshly spawned threads and joins them;
//   * persistent (Start/Stop): Start() spawns workers that park at
//     quiescence instead of exiting, so a long-lived owner (KvccEngine) can
//     keep submitting batches of independent jobs against warm per-worker
//     state. Stop() drains every remaining task, then joins.
//
// Tasks receive their worker's id (0 <= id < num_workers), which callers
// use to index per-worker scratch state without any synchronization.
//
// Besides whole tasks, a running task can fan a flat index range out to the
// idle part of the pool with ParallelFor: the caller claims indices itself
// (so progress never depends on anyone else being free) while helper stubs
// submitted to the other workers claim from the same shared counter. The
// wait at the end is bounded by the in-flight bodies only — helpers never
// block and the owner never executes unrelated tasks — so ParallelFor nests
// inside tasks (and inside other ParallelFor bodies) without deadlock even
// on a single worker.
//
// Latency classes: every task carries a TaskPriority. Each worker deque is
// really one deque per class, and the pop policy is *weighted*, not strict:
// most pops take the highest-priority waiting task (so an interactive job
// overtakes a saturating bulk backlog), but a fixed fraction of each
// worker's pops serves a lower class first — alternating between bulk and
// normal — so *every* class keeps a guaranteed share of the pool and none
// can starve outright, even under combined saturation of the others.
// Steals lock each victim once and take the highest class waiting there
// (a thief is by definition idle capacity; giving it the latency-
// sensitive work first is the point of having classes).
//
// Determinism note: the scheduler makes no ordering guarantees between
// tasks. Callers that need deterministic output must make each task a pure
// function of its input and canonicalize (e.g. sort) the merged results —
// exactly what the k-VCC engine does. ParallelFor makes no assignment
// guarantees either: bodies must write only to their own index's slot.
// Priorities shape wall-clock order only; they must never change results.
#ifndef KVCC_EXEC_TASK_SCHEDULER_H_
#define KVCC_EXEC_TASK_SCHEDULER_H_

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

/// \file
/// \brief Work-stealing task scheduler for recursive decomposition
/// workloads: per-worker deques, one-shot and persistent driving modes,
/// and a nest-safe ParallelFor.

/// \brief Execution substrate: the work-stealing task scheduler shared by
/// every parallel layer of the k-VCC engine.
namespace kvcc::exec {

/// \brief Maps a user-facing thread-count request to a concrete worker
/// count: 0 = one worker per hardware thread, otherwise the request
/// itself.
/// \param requested The user-facing thread-count knob.
/// \return The resolved worker count (>= 1).
unsigned ResolveThreadCount(unsigned requested);

/// \brief Latency class of a submitted task (see the file comment's
/// weighted-pop policy). Lower numeric value = served sooner.
enum class TaskPriority : std::uint8_t {
  /// \brief Latency-sensitive work; preferred by almost every pop.
  kInteractive = 0,
  /// \brief The default class.
  kNormal = 1,
  /// \brief Throughput backlog; yields to the other classes but keeps a
  /// guaranteed share of pops (anti-starvation).
  kBulk = 2,
};

/// \brief Number of TaskPriority classes (deques per worker).
inline constexpr unsigned kNumTaskPriorities = 3;

/// \brief Work-stealing task scheduler for dynamic trees of independent
/// tasks (see file comment for the deque discipline and the two driving
/// modes).
class TaskScheduler {
 public:
  /// \brief A task body; the argument is the executing worker's id.
  using Task = std::function<void(unsigned worker)>;

  /// \brief Creates the scheduler. Threads are spawned by Run() or
  /// Start(), not here.
  /// \param num_workers Number of worker threads (>= 1).
  explicit TaskScheduler(unsigned num_workers);

  /// \brief Stops the workers (as if by Stop()) if still running.
  ~TaskScheduler();

  /// \brief Schedulers are not copyable (they own threads).
  TaskScheduler(const TaskScheduler&) = delete;
  /// \brief Schedulers are not copyable (they own threads).
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  /// \brief Number of worker threads.
  /// \return The count passed to the constructor.
  unsigned num_workers() const { return static_cast<unsigned>(queues_.size()); }

  /// \brief Enqueues a task.
  ///
  /// Callable before Run()/Start() (seeding), from within a running task
  /// (spawning children; the task lands on the calling worker's own
  /// deque), and — in persistent mode — from any external thread while
  /// the workers are parked.
  /// \param task The body to run; receives the executing worker's id.
  /// \param priority Latency class; children of a prioritized job should
  ///   carry their job's class so the whole recursion inherits it.
  void Submit(Task task, TaskPriority priority = TaskPriority::kNormal);

  /// \brief Like Submit, but always seeds round-robin across the worker
  /// deques, even when called from within a running task.
  ///
  /// Use for root tasks of new independent jobs (fairness: a job
  /// submitted from inside a busy worker must not queue behind that
  /// worker's whole subtree) and for helper stubs that should be picked
  /// up by *other* workers.
  /// \param task The body to run; receives the executing worker's id.
  /// \param priority Latency class of the seeded task.
  void SubmitShared(Task task,
                    TaskPriority priority = TaskPriority::kNormal);

  /// \brief Tasks submitted but not yet finished (queued + running),
  /// sampled now.
  ///
  /// `ApproxOutstanding() < num_workers()` means part of the pool is
  /// idle — the signal ParallelFor uses to decide whether helper stubs
  /// are worth submitting.
  /// \return The sampled outstanding-task count.
  std::uint64_t ApproxOutstanding();

  /// \brief Runs body(index, slot) for every index in [0, count) as a
  /// nested fork-join.
  ///
  /// The calling thread claims indices from a shared counter; when the
  /// pool looks starved, helper stubs are submitted so idle workers claim
  /// from the same counter concurrently. `slot` identifies the executing
  /// thread for per-slot scratch: a worker of this scheduler gets its
  /// worker id, any other thread gets num_workers() — so slots of
  /// concurrent participants never collide and callers size per-slot
  /// pools to num_workers() + 1.
  ///
  /// Safe to call from inside a task (nested fork-join) and reentrantly
  /// from inside a ParallelFor body: the caller never blocks on a helper
  /// *starting* (it drains the index space itself) and waits only for
  /// bodies already in flight on other threads. If one external (non-
  /// worker) thread may call this concurrently with another, callers must
  /// serialize those external calls themselves (they would share the
  /// external slot).
  /// \param count Number of indices to process.
  /// \param body Called once per index with (index, slot).
  /// \param priority Latency class of the helper stubs; pass the owning
  ///   job's class so a wavefront competes for idle workers at its job's
  ///   priority (the caller drains its own indices regardless).
  /// \throws Rethrows the first exception thrown by a body after all
  ///   claimed bodies have finished.
  void ParallelFor(std::size_t count,
                   const std::function<void(std::size_t index, unsigned slot)>&
                       body,
                   TaskPriority priority = TaskPriority::kNormal);

  /// \brief One-shot mode: runs until every submitted task (including
  /// tasks submitted while running) has completed, then joins the
  /// workers.
  ///
  /// Call at most once, and not after Start().
  /// \throws Rethrows the first exception a task threw (after all
  ///   remaining tasks have still been drained).
  void Run();

  /// \brief Persistent mode: spawns worker threads that park at
  /// quiescence and wake on the next Submit, so the scheduler serves an
  /// open-ended stream of task trees. Call at most once; pair with
  /// Stop().
  void Start();

  /// \brief Drains every outstanding task, joins the workers, and retires
  /// the scheduler. Exceptions thrown by tasks are NOT rethrown here (a
  /// persistent owner is expected to capture failures per job); they are
  /// swallowed after the drain. Idempotent.
  void Stop();

 private:
  struct WorkerQueue {
    std::mutex mutex;
    // One deque per TaskPriority class, indexed by the enum value.
    std::array<std::deque<Task>, kNumTaskPriorities> tasks;
    // Owner-pop counter driving the weighted policy: every
    // kFairnessStride-th pop serves a lower class first, alternating
    // bulk-first / normal-first, so each lower class keeps a guaranteed
    // 1/(2*kFairnessStride) share of this worker's pops.
    std::uint64_t pops = 0;
  };
  static constexpr std::uint64_t kFairnessStride = 8;

  bool TryPopOwn(unsigned worker, Task& task);
  bool TrySteal(unsigned thief, Task& task);
  void WorkerLoop(unsigned worker);
  void Enqueue(Task task, TaskPriority priority, bool shared);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;

  // Tasks submitted but not yet finished; 0 <=> quiescent.
  std::uint64_t outstanding_ = 0;
  // Bumped (under state_mutex_) after every queue push. An idle worker
  // snapshots it *before* scanning the queues and sleeps only while it is
  // unchanged, so a Submit racing with the scan can never be missed.
  std::uint64_t submit_seq_ = 0;
  std::mutex state_mutex_;
  std::condition_variable wake_cv_;
  std::exception_ptr first_error_;  // first task failure; rethrown by Run()
  // Workers exit once stop_ is set *and* the outstanding counter hits zero,
  // so Stop() always drains in-flight task trees before joining.
  bool stop_ = false;
  bool started_ = false;
  std::vector<std::thread> threads_;
  unsigned next_seed_queue_ = 0;  // round-robin target for external submits
};

}  // namespace kvcc::exec

#endif  // KVCC_EXEC_TASK_SCHEDULER_H_
