#include "gen/dataset_suite.h"

#include <cmath>
#include <stdexcept>

#include "gen/barabasi_albert.h"
#include "gen/clique_chain.h"
#include "gen/planted_vcc.h"
#include "gen/rmat.h"
#include "graph/graph_builder.h"
#include "util/random.h"

namespace kvcc {
namespace {

enum class BackgroundKind { kRmat, kBa };

struct DatasetRecipe {
  DatasetInfo info;
  BackgroundKind background;
  VertexId background_n;      // scaled by `scale`
  double background_density;  // target average degree of the background
  PlantedVccConfig chain;     // block chain overlaid on the background
  std::uint32_t attach_edges_per_block;
  // Large, dense "web cores" (mirror the big k-cores of the real SNAP
  // graphs): (connectivity, size) pairs, sizes decreasing as connectivity
  // rises. A core survives peeling while k <= its connectivity and then
  // forces a full phase-1 confirmation pass — the regime where the sweep
  // optimizations pay off — and because lower-connectivity cores peel away
  // as k grows, total work *decreases* in k as in the paper's Fig. 10.
  std::vector<std::pair<std::uint32_t, VertexId>> cores;
  // Optional clique-chain core (clique-rich web-core structure; zero
  // cliques = none). With overlap 50 the chain stays one k-VCC through the
  // whole k = 20..40 sweep and every vertex is a strong side-vertex for
  // k <= 48, the best case for neighbor sweep rule 1 (large VCCE / VCCE*
  // gaps as in the paper's Stanford and Cit plots).
  std::uint32_t chain_cliques = 0;
  VertexId chain_clique_size = 100;
  VertexId chain_overlap = 50;
  std::uint64_t seed;
};

DatasetRecipe RecipeFor(const std::string& name) {
  DatasetRecipe r;
  r.attach_edges_per_block = 2;
  r.cores = {{24, 650}, {32, 420}, {40, 280}, {48, 170}};
  r.chain.overlap = 3;
  r.chain.bridge_edges = 2;
  // Keep the densification mild so a block's actual connectivity stays
  // near its Harary value and the k sweeps see counts change.
  r.chain.extra_edge_factor = 0.35;
  // Efficiency sweep (k = 20..40) needs blocks across [22, 48]; the
  // effectiveness sweeps need a few low-k blocks as well.
  r.chain.connectivities = {22, 26, 30, 34, 38, 42, 46, 24, 32, 40};
  r.chain.block_size_min = 52;
  r.chain.block_size_max = 88;

  if (name == "stanford") {
    r.info = {"stanford", "web-Stanford (SNAP)", "web"};
    r.background = BackgroundKind::kRmat;
    r.background_n = 16384;
    r.background_density = 8.2;
    r.chain.num_blocks = 18;
    r.chain_cliques = 14;
    r.seed = 1001;
  } else if (name == "dblp") {
    r.info = {"dblp", "com-DBLP (SNAP)", "collaboration"};
    r.background = BackgroundKind::kBa;
    r.background_n = 20000;
    r.background_density = 3.3;
    r.chain.num_blocks = 24;
    r.chain.connectivities = {16, 18, 20, 24, 28, 32, 36, 40, 44, 22};
    r.chain.block_size_min = 48;
    r.chain.block_size_max = 76;
    r.seed = 1002;
  } else if (name == "cnr") {
    r.info = {"cnr", "cnr-2000 (LAW/SNAP)", "web"};
    r.background = BackgroundKind::kRmat;
    r.background_n = 16384;
    r.background_density = 9.9;
    r.chain.num_blocks = 20;
    r.chain.connectivities = {19, 22, 26, 30, 34, 38, 42, 46, 21, 28};
    r.seed = 1003;
  } else if (name == "nd") {
    r.info = {"nd", "web-NotreDame (SNAP)", "web"};
    r.background = BackgroundKind::kRmat;
    r.background_n = 16384;
    r.background_density = 4.6;
    r.chain.num_blocks = 16;
    r.seed = 1004;
  } else if (name == "google") {
    r.info = {"google", "web-Google (SNAP)", "web"};
    r.background = BackgroundKind::kRmat;
    r.background_n = 32768;
    r.background_density = 5.8;
    r.chain.num_blocks = 28;
    r.chain.connectivities = {20, 23, 26, 30, 34, 38, 42, 46, 22, 28};
    r.seed = 1005;
  } else if (name == "youtube") {
    r.info = {"youtube", "com-Youtube (SNAP)", "social"};
    r.background = BackgroundKind::kBa;
    r.background_n = 24000;
    r.background_density = 2.6;
    // youtube is only used by the effectiveness sweep (k = 6..9), so its
    // planted blocks stay in the low-connectivity regime.
    r.chain.num_blocks = 26;
    r.chain.connectivities = {7, 8, 9, 10, 12, 14};
    r.chain.overlap = 1;
    r.chain.bridge_edges = 1;
    r.chain.block_size_min = 24;
    r.chain.block_size_max = 56;
    r.cores = {{10, 500}, {16, 260}};
    r.seed = 1006;
  } else if (name == "cit") {
    r.info = {"cit", "cit-Patents (SNAP/NBER)", "citation"};
    r.background = BackgroundKind::kBa;
    r.background_n = 48000;
    r.background_density = 4.4;
    r.chain.num_blocks = 32;
    r.chain_cliques = 20;
    r.seed = 1007;
  } else {
    throw std::invalid_argument("unknown dataset: " + name);
  }
  return r;
}

}  // namespace

std::vector<std::string> DatasetNames() {
  return {"stanford", "dblp", "cnr", "nd", "google", "youtube", "cit"};
}

DatasetInfo GetDatasetInfo(const std::string& name) {
  return RecipeFor(name).info;
}

Graph GenerateDataset(const std::string& name, double scale) {
  if (scale <= 0) throw std::invalid_argument("scale must be positive");
  DatasetRecipe r = RecipeFor(name);

  // --- planted chain (blocks scale in count, not size) ---
  r.chain.num_blocks = static_cast<std::uint32_t>(
      std::max(2.0, std::round(r.chain.num_blocks * std::sqrt(scale))));
  r.chain.seed = r.seed * 7919 + 13;
  const PlantedVccGraph planted = GeneratePlantedVcc(r.chain);

  // --- the large web cores (one k-connected block each) ---
  std::vector<Graph> cores;
  for (std::size_t i = 0; i < r.cores.size(); ++i) {
    const auto [conn, size] = r.cores[i];
    PlantedVccConfig cc;
    cc.num_blocks = 1;
    cc.block_size_min = cc.block_size_max = std::max<VertexId>(
        conn + 2, static_cast<VertexId>(std::round(size * scale)));
    cc.connectivity = conn;
    cc.extra_edge_factor = 0.3;
    cc.overlap = 0;
    cc.bridge_edges = 0;
    cc.seed = r.seed * 31 + 5 + i;
    cores.push_back(GeneratePlantedVcc(cc).graph);
  }
  if (r.chain_cliques > 0) {
    const auto cliques = static_cast<std::uint32_t>(
        std::max(2.0, std::round(r.chain_cliques * scale)));
    cores.push_back(
        CliqueChain(cliques, r.chain_clique_size, r.chain_overlap));
  }
  std::uint64_t cores_vertices = 0, cores_edges = 0;
  for (const Graph& core : cores) {
    cores_vertices += core.NumVertices();
    cores_edges += core.NumEdges();
  }

  // --- background; its edge budget is the density target minus what the
  //     planted blocks already contribute ---
  const auto background_n = static_cast<VertexId>(
      std::max(1.0, std::round(r.background_n * scale)));
  const double target_edges =
      r.background_density *
      static_cast<double>(background_n + planted.graph.NumVertices() +
                          cores_vertices) /
      2.0;
  const double budget =
      std::max(static_cast<double>(background_n),
               target_edges - static_cast<double>(planted.graph.NumEdges()) -
                   static_cast<double>(cores_edges));
  Graph background;
  if (r.background == BackgroundKind::kRmat) {
    RmatConfig rc;
    rc.scale = 1;
    while ((static_cast<VertexId>(1) << rc.scale) < background_n) ++rc.scale;
    // Oversample: R-MAT self-loops/duplicates shrink the final count.
    rc.edges = static_cast<std::uint64_t>(budget * 1.15);
    rc.seed = r.seed;
    background = Rmat(rc);
  } else {
    const auto per_vertex = static_cast<std::uint32_t>(std::max(
        1.0, std::round(budget / static_cast<double>(background_n))));
    background = BarabasiAlbert(background_n, per_vertex, r.seed);
  }

  // --- merge; planted chain then cores are offset past the background ---
  const VertexId offset = background.NumVertices();
  GraphBuilder merged(
      static_cast<VertexId>(offset + planted.graph.NumVertices() +
                            cores_vertices));
  for (const auto& [u, v] : background.Edges()) merged.AddEdge(u, v);
  for (const auto& [u, v] : planted.graph.Edges()) {
    merged.AddEdge(offset + u, offset + v);
  }
  Rng rng(r.seed * 104729 + 7);
  VertexId core_offset = offset + planted.graph.NumVertices();
  VertexId previous_core_offset = kInvalidVertex;
  VertexId previous_core_size = 0;
  for (const Graph& core : cores) {
    for (const auto& [u, v] : core.Edges()) {
      merged.AddEdge(core_offset + u, core_offset + v);
    }
    // Attach each core to the background with a couple of edges.
    for (std::uint32_t e = 0; e < r.attach_edges_per_block; ++e) {
      const VertexId c = static_cast<VertexId>(
          rng.NextBounded(core.NumVertices()));
      const VertexId g = static_cast<VertexId>(
          rng.NextBounded(background.NumVertices()));
      merged.AddEdge(core_offset + c, g);
    }
    // Tie consecutive cores together with 3 edges (< every evaluated k):
    // the k-core keeps them in one component while every k-ECC and k-VCC
    // still splits — the free-rider structure of the paper's Fig. 1.
    if (previous_core_offset != kInvalidVertex) {
      for (std::uint32_t e = 0; e < 3; ++e) {
        merged.AddEdge(
            previous_core_offset +
                static_cast<VertexId>(rng.NextBounded(previous_core_size)),
            core_offset +
                static_cast<VertexId>(rng.NextBounded(core.NumVertices())));
      }
    }
    previous_core_offset = core_offset;
    previous_core_size = core.NumVertices();
    core_offset += core.NumVertices();
  }
  // Likewise tie the planted chain to the first core.
  if (!cores.empty() && planted.graph.NumVertices() > 0) {
    const VertexId first_core = offset + planted.graph.NumVertices();
    for (std::uint32_t e = 0; e < 3; ++e) {
      merged.AddEdge(
          offset + static_cast<VertexId>(
                       rng.NextBounded(planted.graph.NumVertices())),
          first_core + static_cast<VertexId>(
                           rng.NextBounded(cores.front().NumVertices())));
    }
  }
  // Sparse attachments so the whole graph is (mostly) one component while
  // blocks keep a small boundary.
  for (const auto& block : planted.blocks) {
    for (std::uint32_t e = 0; e < r.attach_edges_per_block; ++e) {
      const VertexId b = block[rng.NextBounded(block.size())];
      const VertexId g = static_cast<VertexId>(
          rng.NextBounded(background.NumVertices()));
      merged.AddEdge(offset + b, g);
    }
  }
  return merged.Build();
}

std::vector<std::uint32_t> EffectivenessKs(const std::string& name) {
  // Per the x-axes of Figs. 7-9.
  if (name == "youtube") return {6, 7, 8, 9};
  if (name == "dblp") return {15, 16, 17, 18};
  if (name == "google") return {18, 19, 20, 21};
  if (name == "cnr") return {17, 18, 19, 20};
  return {15, 16, 17, 18};  // Other datasets are not in Figs. 7-9.
}

std::vector<std::uint32_t> EfficiencyKs() { return {20, 25, 30, 35, 40}; }

}  // namespace kvcc
