#include "gen/planted_vcc.h"

#include <algorithm>
#include <stdexcept>

#include "gen/harary.h"
#include "graph/graph_builder.h"
#include "util/random.h"

namespace kvcc {
namespace {

std::uint32_t ConnectivityOfBlock(const PlantedVccConfig& config,
                                  std::uint32_t block) {
  if (config.connectivities.empty()) return config.connectivity;
  return config.connectivities[block % config.connectivities.size()];
}

}  // namespace

PlantedVccGraph GeneratePlantedVcc(const PlantedVccConfig& config) {
  if (config.num_blocks == 0) {
    throw std::invalid_argument("PlantedVcc: need at least one block");
  }
  if (config.block_size_min > config.block_size_max) {
    throw std::invalid_argument("PlantedVcc: size range inverted");
  }
  std::uint32_t min_connectivity = ConnectivityOfBlock(config, 0);
  for (std::uint32_t b = 1; b < config.num_blocks; ++b) {
    min_connectivity =
        std::min(min_connectivity, ConnectivityOfBlock(config, b));
  }
  const std::uint32_t boundary_budget =
      2 * (config.overlap + config.bridge_edges);
  if (config.num_blocks > 1 && boundary_budget >= min_connectivity) {
    throw std::invalid_argument(
        "PlantedVcc: 2*(overlap + bridge_edges) must stay below the "
        "smallest block connectivity, or blocks may merge");
  }
  // Sizes must host the densest Harary core and keep the two shared ranges
  // (head and tail of each block) disjoint.
  std::uint32_t max_connectivity = ConnectivityOfBlock(config, 0);
  for (std::uint32_t b = 1; b < config.num_blocks; ++b) {
    max_connectivity =
        std::max(max_connectivity, ConnectivityOfBlock(config, b));
  }
  const VertexId min_feasible = std::max<VertexId>(
      max_connectivity + 1, 2 * config.overlap + 2 * config.bridge_edges + 2);
  if (config.block_size_min < min_feasible) {
    throw std::invalid_argument(
        "PlantedVcc: block_size_min too small for the requested "
        "connectivity / overlap / bridges");
  }
  if (config.ring && config.num_blocks < 3) {
    throw std::invalid_argument("PlantedVcc: a ring needs >= 3 blocks");
  }

  Rng rng(config.seed);
  PlantedVccGraph out;
  out.min_separating_k = config.num_blocks > 1 ? boundary_budget + 1 : 1;
  out.max_connected_k = min_connectivity;

  // --- allocate vertex ranges; consecutive blocks share `overlap` ids ---
  std::vector<std::vector<VertexId>> blocks(config.num_blocks);
  VertexId next_free = 0;
  for (std::uint32_t b = 0; b < config.num_blocks; ++b) {
    const VertexId size = static_cast<VertexId>(
        rng.NextInRange(config.block_size_min, config.block_size_max));
    std::vector<VertexId>& vertices = blocks[b];
    if (b > 0 && config.overlap > 0) {
      // First `overlap` vertices = last `overlap` of the previous block.
      const auto& prev = blocks[b - 1];
      vertices.insert(vertices.end(), prev.end() - config.overlap,
                      prev.end());
    }
    while (vertices.size() < size) vertices.push_back(next_free++);
  }
  if (config.ring && config.overlap > 0) {
    // Close the ring: the last block additionally absorbs the first
    // `overlap` vertices of block 0 (replacing its tail).
    auto& last = blocks.back();
    const auto& first = blocks.front();
    last.erase(last.end() - config.overlap, last.end());
    // The erased ids end up isolated in the final graph; they belong to no
    // block and are removed by any k-core peel, so ground truth is intact.
    last.insert(last.end(), first.begin(),
                first.begin() + config.overlap);
  }

  GraphBuilder builder(next_free);

  // --- per-block Harary core + densifying edges ---
  for (std::uint32_t b = 0; b < config.num_blocks; ++b) {
    const auto& vertices = blocks[b];
    const std::uint32_t k_block = ConnectivityOfBlock(config, b);
    const auto harary =
        HararyEdges(k_block, static_cast<VertexId>(vertices.size()));
    for (const auto& [u, v] : harary) {
      builder.AddEdge(vertices[u], vertices[v]);
    }
    const auto extra = static_cast<std::uint64_t>(
        static_cast<double>(harary.size()) * config.extra_edge_factor);
    for (std::uint64_t e = 0; e < extra; ++e) {
      const VertexId u = vertices[rng.NextBounded(vertices.size())];
      const VertexId v = vertices[rng.NextBounded(vertices.size())];
      builder.AddEdge(u, v);  // Self-loops dropped by the builder.
    }
  }

  // --- bridges between consecutive blocks (interior endpoints only) ---
  const std::uint32_t num_links =
      config.num_blocks - (config.ring ? 0 : 1);
  for (std::uint32_t b = 0; b + 1 <= num_links && config.num_blocks > 1;
       ++b) {
    const auto& left = blocks[b];
    const auto& right = blocks[(b + 1) % config.num_blocks];
    // Interior = exclude the first/last `overlap` vertices of each block.
    const std::size_t lo = config.overlap;
    auto pick_interior = [&](const std::vector<VertexId>& block,
                             std::vector<VertexId>& used) -> VertexId {
      for (int attempt = 0; attempt < 64; ++attempt) {
        const std::size_t span = block.size() - 2 * lo;
        const VertexId v = block[lo + rng.NextBounded(span)];
        if (std::find(used.begin(), used.end(), v) == used.end()) {
          used.push_back(v);
          return v;
        }
      }
      return block[lo];  // Degenerate fallback (tiny blocks).
    };
    std::vector<VertexId> used_left, used_right;
    for (std::uint32_t e = 0; e < config.bridge_edges; ++e) {
      builder.AddEdge(pick_interior(left, used_left),
                      pick_interior(right, used_right));
    }
  }

  out.graph = builder.Build();
  for (auto& block : blocks) std::sort(block.begin(), block.end());
  std::sort(blocks.begin(), blocks.end());
  out.blocks = std::move(blocks);
  return out;
}

}  // namespace kvcc
