// Synthetic stand-ins for the paper's seven SNAP datasets (Table 1).
//
// This environment is offline, so the suite deterministically generates
// graphs with the same qualitative structure at laptop scale:
//   * web graphs (stanford, cnr, nd, google)  -> R-MAT background,
//   * social / collaboration (dblp, youtube)  -> BA / community background,
//   * citation (cit)                          -> BA background,
// each overlaid with planted Harary-core blocks whose connectivities span
// the paper's k sweeps, so k-VCCs exist at every evaluated k and the
// efficiency experiments exercise the same code paths as the real data.
// See DESIGN.md ("Substitutions") for the full rationale.
#ifndef KVCC_GEN_DATASET_SUITE_H_
#define KVCC_GEN_DATASET_SUITE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace kvcc {

struct DatasetInfo {
  std::string name;               // e.g. "stanford"
  std::string paper_counterpart;  // e.g. "web-Stanford (SNAP)"
  std::string family;             // "web", "collaboration", ...
};

/// The seven dataset names, in the paper's Table 1 order (plus youtube).
std::vector<std::string> DatasetNames();

/// Metadata for one dataset. Throws std::invalid_argument for unknown names.
DatasetInfo GetDatasetInfo(const std::string& name);

/// Generates the stand-in graph. `scale` multiplies the vertex budget
/// (1.0 ~ tens of thousands of vertices; the paper's graphs are 10-100x
/// larger). Deterministic per (name, scale).
Graph GenerateDataset(const std::string& name, double scale = 1.0);

/// The k values the paper's effectiveness figures (7-9) use per dataset.
std::vector<std::uint32_t> EffectivenessKs(const std::string& name);

/// The k sweep of the efficiency experiments (Figs. 10-12, Table 2).
std::vector<std::uint32_t> EfficiencyKs();

}  // namespace kvcc

#endif  // KVCC_GEN_DATASET_SUITE_H_
