#include "gen/harary.h"

#include <stdexcept>

#include "graph/graph_builder.h"

namespace kvcc {

std::vector<std::pair<VertexId, VertexId>> HararyEdges(std::uint32_t k,
                                                       VertexId n) {
  if (k < 1 || k >= n) {
    throw std::invalid_argument("HararyEdges requires 1 <= k < n");
  }
  std::vector<std::pair<VertexId, VertexId>> edges;
  if (k == 1) {
    // H_{1,n} is any tree with minimum edges; use the path.
    for (VertexId u = 0; u + 1 < n; ++u) edges.emplace_back(u, u + 1);
    return edges;
  }
  const std::uint32_t r = k / 2;
  // Circulant base C_n(1..r): 2r-connected.
  for (VertexId u = 0; u < n; ++u) {
    for (std::uint32_t off = 1; off <= r; ++off) {
      edges.emplace_back(u, static_cast<VertexId>((u + off) % n));
    }
  }
  if (k % 2 == 1) {
    if (n % 2 == 0) {
      // Odd k, even n: add all diameters.
      for (VertexId u = 0; u < n / 2; ++u) {
        edges.emplace_back(u, static_cast<VertexId>(u + n / 2));
      }
    } else {
      // Odd k, odd n: near-diameters i -> i + (n+1)/2 for i in [0, (n-1)/2]
      // (vertex 0 ends up with degree k+1; all others degree k).
      const VertexId half = (n + 1) / 2;
      for (VertexId u = 0; u <= (n - 1) / 2; ++u) {
        edges.emplace_back(u, static_cast<VertexId>((u + half) % n));
      }
    }
  }
  return edges;
}

Graph HararyGraph(std::uint32_t k, VertexId n) {
  GraphBuilder builder(n);
  for (const auto& [u, v] : HararyEdges(k, n)) builder.AddEdge(u, v);
  return builder.Build();
}

}  // namespace kvcc
