// Planted k-VCC workload generator with provable ground truth.
//
// Builds a chain (optionally a ring) of dense blocks. Every block carries a
// Harary H_{connectivity, size} core (deterministically `connectivity`-
// vertex-connected) plus random densifying edges. Consecutive blocks share
// `overlap` vertices and are joined by `bridge_edges` single edges.
//
// Ground truth: for every k with
//     separation_threshold() < k <= min block connectivity,
// the k-VCCs of the generated graph are exactly the planted blocks,
// because each block's boundary (shared vertices + bridge endpoints) is a
// vertex set smaller than k that cuts it off from the rest, while the block
// itself is k-connected. The generator enforces the budget
//     2*overlap + bridge_edges < min block connectivity.
#ifndef KVCC_GEN_PLANTED_VCC_H_
#define KVCC_GEN_PLANTED_VCC_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace kvcc {

struct PlantedVccConfig {
  std::uint32_t num_blocks = 6;
  VertexId block_size_min = 24;
  VertexId block_size_max = 40;
  /// Harary core connectivity per block. If `connectivities` is non-empty
  /// it overrides this with one value per block (cycled).
  std::uint32_t connectivity = 8;
  std::vector<std::uint32_t> connectivities;
  /// Extra random intra-block edges, as a fraction of the Harary edge count.
  double extra_edge_factor = 0.8;
  /// Vertices shared between consecutive blocks (must keep the separation
  /// budget below the smallest connectivity).
  std::uint32_t overlap = 2;
  /// Extra single edges between consecutive blocks (endpoints not shared).
  std::uint32_t bridge_edges = 1;
  /// Close the chain into a ring (first and last block also overlap).
  bool ring = false;
  std::uint64_t seed = 42;
};

struct PlantedVccGraph {
  Graph graph;
  /// Ground-truth blocks: sorted vertex-id lists (including shared
  /// vertices), sorted lexicographically.
  std::vector<std::vector<VertexId>> blocks;
  /// Smallest k for which the blocks are guaranteed separated
  /// (= 2*overlap + bridge_edges + 1).
  std::uint32_t min_separating_k = 0;
  /// Largest k for which every block is guaranteed k-connected
  /// (= min over blocks of their Harary connectivity).
  std::uint32_t max_connected_k = 0;
};

/// Throws std::invalid_argument if the separation budget is violated or the
/// block sizes cannot host the requested connectivity.
PlantedVccGraph GeneratePlantedVcc(const PlantedVccConfig& config);

}  // namespace kvcc

#endif  // KVCC_GEN_PLANTED_VCC_H_
