// Harary graphs H_{k,n}: the minimum-edge graphs with vertex connectivity
// exactly k. Used as the deterministic k-connected core of every planted
// block, so planted k-VCC ground truth never depends on a probabilistic
// "whp" argument.
#ifndef KVCC_GEN_HARARY_H_
#define KVCC_GEN_HARARY_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace kvcc {

/// Edges of H_{k,n} over vertices 0..n-1 (requires 1 <= k < n).
/// kappa(H_{k,n}) = k exactly.
std::vector<std::pair<VertexId, VertexId>> HararyEdges(std::uint32_t k,
                                                       VertexId n);

/// H_{k,n} as a Graph.
Graph HararyGraph(std::uint32_t k, VertexId n);

}  // namespace kvcc

#endif  // KVCC_GEN_HARARY_H_
