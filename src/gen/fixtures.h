// Hand-built graphs with known structure: the paper's Figure 1, the DBLP
// case study shape (Figure 14), and classic graphs used throughout the
// tests and examples.
#ifndef KVCC_GEN_FIXTURES_H_
#define KVCC_GEN_FIXTURES_H_

#include <string>
#include <vector>

#include "graph/graph.h"

namespace kvcc {

/// The paper's Fig. 1 motivation graph: four dense blocks where, at k = 4,
///   * the 4-core is the union of all four blocks,
///   * the 4-ECCs are {G1 ∪ G2 ∪ G3, G4},
///   * the 4-VCCs are {G1, G2, G3, G4}.
/// G1 and G2 share the edge (a, b); G2 and G3 share the single vertex c;
/// G3 and G4 are joined by two independent edges.
struct Figure1Fixture {
  Graph graph;
  VertexId a, b, c;
  /// Expected 4-VCC vertex sets (sorted lists, sorted lexicographically).
  std::vector<std::vector<VertexId>> expected_vccs;
  /// Expected 4-ECC vertex sets.
  std::vector<std::vector<VertexId>> expected_eccs;
  /// Expected 4-core vertex set (single component).
  std::vector<VertexId> expected_core;
};
Figure1Fixture MakeFigure1Graph();

/// A collaboration ego-network shaped like the paper's Fig. 14 case study:
/// an ego author, several dense research groups all containing the ego,
/// hub co-authors shared between some groups, and one "bridge" author who
/// belongs to the 4-ECC and the 4-core but to no 4-VCC.
struct CaseStudyFixture {
  Graph graph;
  VertexId ego;
  std::vector<VertexId> hubs;
  VertexId bridge_author;
  std::vector<std::string> names;  // display name per vertex
  std::size_t expected_vcc_count;  // number of 4-VCCs (research groups)
};
CaseStudyFixture MakeCaseStudyGraph();

// --- classic small graphs (test vocabulary) ---

/// Complete graph K_n (kappa = n-1).
Graph CompleteGraph(VertexId n);

/// Cycle C_n (kappa = 2).
Graph CycleGraph(VertexId n);

/// Path P_n (kappa = 1).
Graph PathGraph(VertexId n);

/// Petersen graph (10 vertices, 3-regular, kappa = 3).
Graph PetersenGraph();

/// rows x cols grid (kappa = 2 for rows, cols >= 2).
Graph GridGraph(VertexId rows, VertexId cols);

/// Two cliques of size `clique` sharing `shared` vertices.
Graph TwoCliquesSharing(VertexId clique, VertexId shared);

/// Complete bipartite graph K_{a,b} (kappa = min(a, b)).
Graph CompleteBipartite(VertexId a, VertexId b);

}  // namespace kvcc

#endif  // KVCC_GEN_FIXTURES_H_
