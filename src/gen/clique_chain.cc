#include "gen/clique_chain.h"

#include <stdexcept>

#include "graph/graph_builder.h"

namespace kvcc {

Graph CliqueChain(std::uint32_t num_cliques, VertexId clique_size,
                  VertexId overlap) {
  if (num_cliques == 0 || overlap == 0 || overlap >= clique_size) {
    throw std::invalid_argument(
        "CliqueChain requires num_cliques >= 1 and 0 < overlap < size");
  }
  const VertexId stride = clique_size - overlap;
  const VertexId n = stride * num_cliques + overlap;
  GraphBuilder builder(n);
  for (std::uint32_t c = 0; c < num_cliques; ++c) {
    const VertexId base = c * stride;
    for (VertexId i = 0; i < clique_size; ++i) {
      for (VertexId j = i + 1; j < clique_size; ++j) {
        builder.AddEdge(base + i, base + j);
      }
    }
  }
  return builder.Build();
}

}  // namespace kvcc
