#include "gen/fixtures.h"

#include <algorithm>

#include "graph/graph_builder.h"

namespace kvcc {
namespace {

void AddClique(GraphBuilder& builder, const std::vector<VertexId>& members) {
  for (std::size_t i = 0; i < members.size(); ++i) {
    for (std::size_t j = i + 1; j < members.size(); ++j) {
      builder.AddEdge(members[i], members[j]);
    }
  }
}

std::vector<VertexId> Sorted(std::vector<VertexId> v) {
  std::sort(v.begin(), v.end());
  return v;
}

}  // namespace

Figure1Fixture MakeFigure1Graph() {
  Figure1Fixture f;
  f.a = 0;
  f.b = 1;
  f.c = 7;
  // G1 = K7 on {a, b, 2..6}; G2 = K7 on {a, b, c, 8..11};
  // G3 = K6 on {c, 12..16}; G4 = K6 on {17..22};
  // plus the two independent edges (12,17) and (13,18).
  const std::vector<VertexId> g1 = {0, 1, 2, 3, 4, 5, 6};
  const std::vector<VertexId> g2 = {0, 1, 7, 8, 9, 10, 11};
  const std::vector<VertexId> g3 = {7, 12, 13, 14, 15, 16};
  const std::vector<VertexId> g4 = {17, 18, 19, 20, 21, 22};
  GraphBuilder builder(23);
  AddClique(builder, g1);
  AddClique(builder, g2);
  AddClique(builder, g3);
  AddClique(builder, g4);
  builder.AddEdge(12, 17);
  builder.AddEdge(13, 18);
  f.graph = builder.Build();

  f.expected_vccs = {Sorted(g1), Sorted(g2), Sorted(g3), Sorted(g4)};
  std::sort(f.expected_vccs.begin(), f.expected_vccs.end());

  std::vector<VertexId> g123;
  for (VertexId v = 0; v <= 16; ++v) g123.push_back(v);
  f.expected_eccs = {g123, Sorted(g4)};
  std::sort(f.expected_eccs.begin(), f.expected_eccs.end());

  for (VertexId v = 0; v < 23; ++v) f.expected_core.push_back(v);
  return f;
}

CaseStudyFixture MakeCaseStudyGraph() {
  CaseStudyFixture f;
  // Layout: 0 = ego, 1 = hub1, 2 = hub2, 3 = bridge author; members follow.
  f.ego = 0;
  f.hubs = {1, 2};
  f.bridge_author = 3;
  VertexId next = 4;
  auto fresh = [&next](std::size_t count) {
    std::vector<VertexId> out;
    for (std::size_t i = 0; i < count; ++i) out.push_back(next++);
    return out;
  };

  std::vector<std::vector<VertexId>> groups;
  {
    auto m = fresh(4);
    groups.push_back({0, 1, m[0], m[1], m[2], m[3]});  // group 0: ego+hub1
  }
  {
    auto m = fresh(3);
    groups.push_back({0, 1, 2, m[0], m[1], m[2]});  // group 1: ego+both hubs
  }
  {
    auto m = fresh(4);
    groups.push_back({0, 1, m[0], m[1], m[2], m[3]});  // group 2: ego+hub1
  }
  {
    auto m = fresh(4);
    groups.push_back({0, 2, m[0], m[1], m[2], m[3]});  // group 3: ego+hub2
  }
  for (int i = 0; i < 3; ++i) {
    auto m = fresh(5);
    groups.push_back({0, m[0], m[1], m[2], m[3], m[4]});  // groups 4-6
  }

  GraphBuilder builder(next);
  for (const auto& group : groups) AddClique(builder, group);
  // The bridge author co-authored with two members of group 0 and two of
  // group 1 — enough edges to stay in the 4-core and 4-ECC, but without 4
  // vertex-independent paths into any single group.
  builder.AddEdge(3, groups[0][2]);
  builder.AddEdge(3, groups[0][3]);
  builder.AddEdge(3, groups[1][3]);
  builder.AddEdge(3, groups[1][4]);
  f.graph = builder.Build();
  f.expected_vcc_count = groups.size();

  f.names.assign(next, "");
  f.names[0] = "Ego Scholar";
  f.names[1] = "Hub Alpha";
  f.names[2] = "Hub Beta";
  f.names[3] = "Bridge Author";
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    int member = 0;
    for (VertexId v : groups[gi]) {
      if (f.names[v].empty()) {
        std::string name = "G";
        name += std::to_string(gi);
        name += "-member-";
        name += std::to_string(member++);
        f.names[v] = std::move(name);
      }
    }
  }
  return f;
}

Graph CompleteGraph(VertexId n) {
  GraphBuilder builder(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) builder.AddEdge(u, v);
  }
  return builder.Build();
}

Graph CycleGraph(VertexId n) {
  GraphBuilder builder(n);
  for (VertexId u = 0; u + 1 < n; ++u) builder.AddEdge(u, u + 1);
  if (n >= 3) builder.AddEdge(n - 1, 0);
  return builder.Build();
}

Graph PathGraph(VertexId n) {
  GraphBuilder builder(n);
  for (VertexId u = 0; u + 1 < n; ++u) builder.AddEdge(u, u + 1);
  return builder.Build();
}

Graph PetersenGraph() {
  GraphBuilder builder(10);
  // Outer 5-cycle, inner pentagram, spokes.
  for (VertexId i = 0; i < 5; ++i) {
    builder.AddEdge(i, (i + 1) % 5);
    builder.AddEdge(5 + i, 5 + (i + 2) % 5);
    builder.AddEdge(i, 5 + i);
  }
  return builder.Build();
}

Graph GridGraph(VertexId rows, VertexId cols) {
  GraphBuilder builder(rows * cols);
  auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols) builder.AddEdge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) builder.AddEdge(id(r, c), id(r + 1, c));
    }
  }
  return builder.Build();
}

Graph TwoCliquesSharing(VertexId clique, VertexId shared) {
  // Vertices: [0, clique) = first clique; the second clique reuses the last
  // `shared` of those plus fresh ids.
  GraphBuilder builder(2 * clique - shared);
  std::vector<VertexId> first, second;
  for (VertexId v = 0; v < clique; ++v) first.push_back(v);
  for (VertexId v = clique - shared; v < 2 * clique - shared; ++v) {
    second.push_back(v);
  }
  AddClique(builder, first);
  AddClique(builder, second);
  return builder.Build();
}

Graph CompleteBipartite(VertexId a, VertexId b) {
  GraphBuilder builder(a + b);
  for (VertexId u = 0; u < a; ++u) {
    for (VertexId v = 0; v < b; ++v) builder.AddEdge(u, a + v);
  }
  return builder.Build();
}

}  // namespace kvcc
