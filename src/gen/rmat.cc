#include "gen/rmat.h"

#include "graph/graph_builder.h"
#include "util/random.h"

namespace kvcc {

Graph Rmat(const RmatConfig& config) {
  const VertexId n = static_cast<VertexId>(1) << config.scale;
  GraphBuilder builder(n);
  Rng rng(config.seed);
  const double ab = config.a + config.b;
  const double abc = ab + config.c;
  for (std::uint64_t e = 0; e < config.edges; ++e) {
    VertexId row = 0, col = 0;
    for (std::uint32_t bit = 0; bit < config.scale; ++bit) {
      const double r = rng.NextDouble();
      row <<= 1;
      col <<= 1;
      if (r >= ab) {
        if (r < abc) {
          col |= 0;
          row |= 1;
        } else {
          row |= 1;
          col |= 1;
        }
      } else if (r >= config.a) {
        col |= 1;
      }
    }
    builder.AddEdge(row, col);  // Self-loops dropped by the builder.
  }
  return builder.Build();
}

}  // namespace kvcc
