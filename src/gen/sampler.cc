#include "gen/sampler.h"

#include <algorithm>
#include <vector>

#include "graph/graph_builder.h"
#include "util/random.h"

namespace kvcc {

Graph SampleVerticesInduced(const Graph& g, double fraction,
                            std::uint64_t seed) {
  Rng rng(seed);
  std::vector<VertexId> keep;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (rng.NextBernoulli(fraction)) keep.push_back(v);
  }
  return g.InducedSubgraph(keep);
}

Graph SampleEdges(const Graph& g, double fraction, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<VertexId, VertexId>> kept;
  std::vector<VertexId> endpoints;
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    for (VertexId v : g.Neighbors(u)) {
      if (u < v && rng.NextBernoulli(fraction)) {
        kept.emplace_back(u, v);
        endpoints.push_back(u);
        endpoints.push_back(v);
      }
    }
  }
  std::sort(endpoints.begin(), endpoints.end());
  endpoints.erase(std::unique(endpoints.begin(), endpoints.end()),
                  endpoints.end());
  // Compact ids to the endpoint set; labels map back to g.
  std::vector<VertexId> local(g.NumVertices(), kInvalidVertex);
  for (VertexId i = 0; i < endpoints.size(); ++i) local[endpoints[i]] = i;
  GraphBuilder builder(static_cast<VertexId>(endpoints.size()));
  for (const auto& [u, v] : kept) builder.AddEdge(local[u], local[v]);
  std::vector<VertexId> labels(endpoints.begin(), endpoints.end());
  for (auto& l : labels) l = g.LabelOf(l);
  builder.SetLabels(std::move(labels));
  return builder.Build();
}

}  // namespace kvcc
