#include "gen/erdos_renyi.h"

#include <cmath>
#include <unordered_set>

#include "graph/graph_builder.h"
#include "util/random.h"

namespace kvcc {

Graph ErdosRenyiGnm(VertexId n, std::uint64_t m, std::uint64_t seed) {
  GraphBuilder builder(n);
  if (n >= 2) {
    const std::uint64_t max_pairs =
        static_cast<std::uint64_t>(n) * (n - 1) / 2;
    if (m > max_pairs) m = max_pairs;
    Rng rng(seed);
    std::unordered_set<std::uint64_t> chosen;
    chosen.reserve(m * 2);
    while (chosen.size() < m) {
      const auto u = static_cast<VertexId>(rng.NextBounded(n));
      const auto v = static_cast<VertexId>(rng.NextBounded(n));
      if (u == v) continue;
      const std::uint64_t key =
          static_cast<std::uint64_t>(std::min(u, v)) << 32 | std::max(u, v);
      if (chosen.insert(key).second) builder.AddEdge(u, v);
    }
  }
  return builder.Build();
}

Graph ErdosRenyiGnp(VertexId n, double p, std::uint64_t seed) {
  GraphBuilder builder(n);
  if (p > 0 && n >= 2) {
    Rng rng(seed);
    if (p >= 1.0) {
      for (VertexId u = 0; u < n; ++u) {
        for (VertexId v = u + 1; v < n; ++v) builder.AddEdge(u, v);
      }
    } else {
      // Geometric skipping over the linearized strict upper triangle.
      const double log_q = std::log1p(-p);
      std::uint64_t index = 0;
      const std::uint64_t total = static_cast<std::uint64_t>(n) * (n - 1) / 2;
      while (true) {
        const double r = rng.NextDouble();
        const auto skip = static_cast<std::uint64_t>(
            std::floor(std::log1p(-r) / log_q));
        index += skip;
        if (index >= total) break;
        // Unrank `index` into (u, v), u < v: row u has n-1-u entries.
        VertexId u = 0;
        std::uint64_t remaining = index;
        while (remaining >= static_cast<std::uint64_t>(n - 1 - u)) {
          remaining -= n - 1 - u;
          ++u;
        }
        const auto v = static_cast<VertexId>(u + 1 + remaining);
        builder.AddEdge(u, v);
        ++index;
      }
    }
  }
  return builder.Build();
}

}  // namespace kvcc
