// Watts–Strogatz small-world graphs (ring lattice + rewiring).
#ifndef KVCC_GEN_WATTS_STROGATZ_H_
#define KVCC_GEN_WATTS_STROGATZ_H_

#include <cstdint>

#include "graph/graph.h"

namespace kvcc {

/// Ring of n vertices, each joined to its `neighbors_each_side` nearest
/// neighbors on both sides; every edge is rewired to a uniform random
/// endpoint with probability beta.
Graph WattsStrogatz(VertexId n, std::uint32_t neighbors_each_side,
                    double beta, std::uint64_t seed);

}  // namespace kvcc

#endif  // KVCC_GEN_WATTS_STROGATZ_H_
