// Barabási–Albert preferential attachment graphs (heavy-tailed degrees,
// the stand-in shape for social / citation networks).
#ifndef KVCC_GEN_BARABASI_ALBERT_H_
#define KVCC_GEN_BARABASI_ALBERT_H_

#include <cstdint>

#include "graph/graph.h"

namespace kvcc {

/// n vertices; each new vertex attaches to `edges_per_vertex` distinct
/// existing vertices chosen proportionally to degree (repeated-endpoint
/// list method). The first edges_per_vertex+1 vertices form a clique seed.
Graph BarabasiAlbert(VertexId n, std::uint32_t edges_per_vertex,
                     std::uint64_t seed);

}  // namespace kvcc

#endif  // KVCC_GEN_BARABASI_ALBERT_H_
