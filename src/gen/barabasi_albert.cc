#include "gen/barabasi_albert.h"

#include <algorithm>
#include <vector>

#include "graph/graph_builder.h"
#include "util/random.h"

namespace kvcc {

Graph BarabasiAlbert(VertexId n, std::uint32_t edges_per_vertex,
                     std::uint64_t seed) {
  GraphBuilder builder(n);
  const VertexId seed_size = std::min<VertexId>(n, edges_per_vertex + 1);
  std::vector<VertexId> endpoints;  // Every edge endpoint, for degree bias.
  for (VertexId u = 0; u < seed_size; ++u) {
    for (VertexId v = u + 1; v < seed_size; ++v) {
      builder.AddEdge(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  Rng rng(seed);
  std::vector<VertexId> targets;
  for (VertexId u = seed_size; u < n; ++u) {
    targets.clear();
    // Draw `edges_per_vertex` distinct degree-biased targets.
    while (targets.size() < edges_per_vertex && targets.size() < u) {
      const VertexId candidate =
          endpoints[rng.NextBounded(endpoints.size())];
      if (std::find(targets.begin(), targets.end(), candidate) ==
          targets.end()) {
        targets.push_back(candidate);
      }
    }
    for (VertexId t : targets) {
      builder.AddEdge(u, t);
      endpoints.push_back(u);
      endpoints.push_back(t);
    }
  }
  return builder.Build();
}

}  // namespace kvcc
