#include "gen/watts_strogatz.h"

#include "graph/graph_builder.h"
#include "util/random.h"

namespace kvcc {

Graph WattsStrogatz(VertexId n, std::uint32_t neighbors_each_side,
                    double beta, std::uint64_t seed) {
  GraphBuilder builder(n);
  if (n >= 2) {
    Rng rng(seed);
    for (VertexId u = 0; u < n; ++u) {
      for (std::uint32_t off = 1; off <= neighbors_each_side; ++off) {
        VertexId v = (u + off) % n;
        if (rng.NextBernoulli(beta)) {
          // Rewire to a uniform random non-self endpoint.
          VertexId w = u;
          while (w == u) w = static_cast<VertexId>(rng.NextBounded(n));
          v = w;
        }
        builder.AddEdge(u, v);
      }
    }
  }
  return builder.Build();
}

}  // namespace kvcc
