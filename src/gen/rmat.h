// R-MAT recursive-matrix random graphs (Chakrabarti, Zhan, Faloutsos):
// skewed degrees and community-ish blocks; the stand-in shape for web
// graphs (Stanford, Cnr, NotreDame, Google).
#ifndef KVCC_GEN_RMAT_H_
#define KVCC_GEN_RMAT_H_

#include <cstdint>

#include "graph/graph.h"

namespace kvcc {

struct RmatConfig {
  /// log2 of the vertex-id space (n = 2^scale).
  std::uint32_t scale = 14;
  /// Number of (pre-dedup) undirected edges to sample.
  std::uint64_t edges = 1 << 17;
  /// Quadrant probabilities; must sum to ~1.
  double a = 0.57, b = 0.19, c = 0.19, d = 0.05;
  std::uint64_t seed = 1;
};

/// Samples edges by recursive quadrant descent; self-loops dropped and
/// duplicates collapsed, so the final edge count is slightly below
/// config.edges. Isolated ids are kept (callers typically k-core anyway).
Graph Rmat(const RmatConfig& config);

}  // namespace kvcc

#endif  // KVCC_GEN_RMAT_H_
