// Random vertex / edge sampling for the scalability study (paper Fig. 13):
// "we vary the graph size and graph density by randomly sampling vertices
// and edges respectively from 20% to 100%".
#ifndef KVCC_GEN_SAMPLER_H_
#define KVCC_GEN_SAMPLER_H_

#include <cstdint>

#include "graph/graph.h"

namespace kvcc {

/// Keeps each vertex independently with probability `fraction` and returns
/// the induced subgraph (labels point back to g).
Graph SampleVerticesInduced(const Graph& g, double fraction,
                            std::uint64_t seed);

/// Keeps each edge independently with probability `fraction`; the vertex
/// set is the set of incident endpoints of the kept edges (as in the
/// paper's edge-sampling protocol).
Graph SampleEdges(const Graph& g, double fraction, std::uint64_t seed);

}  // namespace kvcc

#endif  // KVCC_GEN_SAMPLER_H_
