// Erdős–Rényi random graphs.
#ifndef KVCC_GEN_ERDOS_RENYI_H_
#define KVCC_GEN_ERDOS_RENYI_H_

#include <cstdint>

#include "graph/graph.h"

namespace kvcc {

/// G(n, m): n vertices, m distinct uniform random edges (m is clamped to
/// the number of available vertex pairs). Deterministic in `seed`.
Graph ErdosRenyiGnm(VertexId n, std::uint64_t m, std::uint64_t seed);

/// G(n, p): each pair independently with probability p, via geometric
/// skipping (O(n + m) expected). Deterministic in `seed`.
Graph ErdosRenyiGnp(VertexId n, double p, std::uint64_t seed);

}  // namespace kvcc

#endif  // KVCC_GEN_ERDOS_RENYI_H_
