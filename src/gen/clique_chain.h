// Chains of overlapping cliques — the clique-rich dense-core structure of
// real web graphs. With overlap >= k + 2, every vertex is a strong
// side-vertex (any non-adjacent neighbor pair shares a full overlap window
// of common neighbors), which makes these cores the best case for the
// paper's neighbor sweep rule 1 and the regime where VCCE* wins by an
// order of magnitude.
#ifndef KVCC_GEN_CLIQUE_CHAIN_H_
#define KVCC_GEN_CLIQUE_CHAIN_H_

#include <cstdint>

#include "graph/graph.h"

namespace kvcc {

/// num_cliques cliques of `clique_size` vertices each; consecutive cliques
/// share `overlap` vertices (0 < overlap < clique_size). The chain has
/// vertex connectivity min(overlap, clique_size - 1): for k <= overlap the
/// whole chain is one k-VCC, above that it shatters into the individual
/// cliques.
Graph CliqueChain(std::uint32_t num_cliques, VertexId clique_size,
                  VertexId overlap);

}  // namespace kvcc

#endif  // KVCC_GEN_CLIQUE_CHAIN_H_
