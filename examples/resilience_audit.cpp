// Network-resilience audit of an infrastructure topology.
//
// Vertex connectivity is the number of simultaneous node failures a
// network segment can survive. This example builds a synthetic backbone
// (rings of sites + a dense core) and audits it by sweeping k: the k-VCC
// hierarchy reveals which cells stay connected under k-1 arbitrary node
// failures, and where the fragile articulation points are.
//
// Run: ./resilience_audit

#include <iomanip>
#include <iostream>

#include "gen/planted_vcc.h"
#include "gen/watts_strogatz.h"
#include "graph/biconnected.h"
#include "graph/graph_builder.h"
#include "kvcc/connectivity.h"
#include "kvcc/kvcc_enum.h"
#include "metrics/diameter.h"
#include "util/random.h"

int main() {
  using namespace kvcc;

  // Topology: a ring of 6 datacenter "cells" (each a dense 8-connected
  // block, adjacent cells sharing 2 gateway nodes) plus a regional access
  // ring (Watts-Strogatz) hanging off the backbone.
  PlantedVccConfig backbone_config;
  backbone_config.num_blocks = 6;
  backbone_config.block_size_min = 20;
  backbone_config.block_size_max = 28;
  backbone_config.connectivity = 8;
  backbone_config.overlap = 2;
  backbone_config.bridge_edges = 1;
  backbone_config.ring = true;
  backbone_config.seed = 7;
  const PlantedVccGraph backbone = GeneratePlantedVcc(backbone_config);

  const Graph access = WattsStrogatz(120, 2, 0.1, 11);
  GraphBuilder builder(backbone.graph.NumVertices() + access.NumVertices());
  for (const auto& [u, v] : backbone.graph.Edges()) builder.AddEdge(u, v);
  const VertexId offset = backbone.graph.NumVertices();
  for (const auto& [u, v] : access.Edges()) {
    builder.AddEdge(offset + u, offset + v);
  }
  Rng rng(3);
  for (int e = 0; e < 4; ++e) {  // Uplinks from the access ring.
    builder.AddEdge(offset + static_cast<VertexId>(rng.NextBounded(120)),
                    static_cast<VertexId>(
                        rng.NextBounded(backbone.graph.NumVertices())));
  }
  const Graph net = builder.Build();
  std::cout << "topology: " << net.NumVertices() << " nodes, "
            << net.NumEdges() << " links\n\n";

  // Fragility first: articulation points = single points of failure.
  const auto blocks = BiconnectedComponents(net);
  std::cout << "single points of failure (articulation nodes): "
            << blocks.cut_vertices.size() << "\n\n";

  // Sweep k and report the surviving cells.
  std::cout << std::left << std::setw(4) << "k" << std::setw(10) << "cells"
            << std::setw(12) << "largest" << std::setw(12) << "avg diam"
            << "meaning\n";
  for (std::uint32_t k = 2; k <= 9; ++k) {
    const KvccResult result = EnumerateKVccs(net, k);
    std::size_t largest = 0;
    double diam = 0;
    for (const auto& cell : result.components) {
      largest = std::max(largest, cell.size());
      diam += ExactDiameter(MaterializeComponent(net, cell));
    }
    if (!result.components.empty()) {
      diam /= static_cast<double>(result.components.size());
    }
    std::cout << std::setw(4) << k << std::setw(10)
              << result.components.size() << std::setw(12) << largest
              << std::setw(12) << diam << "survives any " << (k - 1)
              << " node failures\n";
  }

  // The audit conclusion for the backbone cells.
  const KvccResult cells = EnumerateKVccs(net, 8);
  std::cout << "\n8-resilient cells found: " << cells.components.size()
            << " (designed: " << backbone.blocks.size() << ")\n";
  return 0;
}
