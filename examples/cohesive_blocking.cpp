// Cohesive blocking: the full k-VCC hierarchy of a social network.
//
// Moody & White's structural-cohesion program (the sociological root the
// paper builds on) ranks groups by the number of members whose removal
// disconnects them. BuildKvccHierarchy computes exactly that dendrogram:
// level k holds the k-VCCs, each nested in its (k-1)-VCC parent.
//
// This example drives the build through a shared KvccEngine: every level's
// parent components are submitted as independent jobs on one warm worker
// pool (the way a server would mix hierarchy and decomposition traffic),
// and the result is identical to the serial build for any worker count.
//
// Run: ./cohesive_blocking

#include <iomanip>
#include <iostream>

#include "gen/fixtures.h"
#include "graph/dot_export.h"
#include "kvcc/engine.h"
#include "kvcc/hierarchy.h"

int main() {
  using namespace kvcc;

  const Figure1Fixture fig1 = MakeFigure1Graph();
  const Graph& g = fig1.graph;

  KvccEngine engine;  // One worker per hardware thread.
  std::cout << "engine: " << engine.num_workers() << " worker(s)\n";
  const KvccHierarchy hierarchy = BuildKvccHierarchy(engine, g);
  std::cout << "cohesion dendrogram of the Fig. 1 graph ("
            << g.NumVertices() << " vertices):\n\n";
  for (std::uint32_t k = 1; k <= hierarchy.MaxLevel(); ++k) {
    std::cout << "level " << k << " (" << k << "-VCCs): ";
    for (std::size_t index : hierarchy.NodesAtLevel(k)) {
      std::cout << "[" << hierarchy.nodes[index].vertices.size() << "] ";
    }
    std::cout << "\n";
  }

  // Per-vertex cohesion: how deeply embedded is each vertex?
  std::cout << "\nper-vertex cohesion (max k with a containing k-VCC):\n";
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    std::cout << std::setw(3) << hierarchy.CohesionOf(v);
    if ((v + 1) % 12 == 0) std::cout << "\n";
  }
  std::cout << "\n";
  std::cout << "note: the shared vertices a=0, b=1 (cohesion "
            << hierarchy.CohesionOf(0)
            << ") sit in the deepest blocks, while the G3/G4 cliques top "
               "out at 5.\n";

  // Export the level-4 coloring for Graphviz rendering.
  DotOptions options;
  options.groups_of.assign(g.NumVertices(), {});
  const auto level4 = hierarchy.NodesAtLevel(4);
  for (std::size_t gi = 0; gi < level4.size(); ++gi) {
    for (VertexId v : hierarchy.nodes[level4[gi]].vertices) {
      options.groups_of[v].push_back(gi);
    }
  }
  const std::string path = "/tmp/kvcc_cohesive_blocking.dot";
  WriteDotFile(g, path, options);
  std::cout << "\nwrote " << path
            << " (render with: dot -Tpng -o blocks.png " << path << ")\n";
  return 0;
}
