// Overlapping community detection on a collaboration network.
//
// Scenario from the paper's case study (Section 6.4): find the research
// groups around a prolific author. k-VCCs support *overlap* — hub authors
// belong to several groups — while bounding it below k (Property 1), and
// they exclude weakly attached "free riders" that k-core/k-ECC absorb.
//
// Run: ./community_detection [k]

#include <cstdlib>
#include <iostream>
#include <map>

#include "gen/fixtures.h"
#include "gen/planted_vcc.h"
#include "kvcc/kvcc_enum.h"

int main(int argc, char** argv) {
  using namespace kvcc;
  const std::uint32_t k =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 4;

  // --- Part 1: the ego network ---------------------------------------
  const CaseStudyFixture ego = MakeCaseStudyGraph();
  std::cout << "== ego network (" << ego.graph.NumVertices()
            << " authors) ==\n";
  const KvccResult groups = EnumerateKVccs(ego.graph, k);
  std::map<VertexId, int> memberships;
  for (std::size_t i = 0; i < groups.components.size(); ++i) {
    std::cout << "group " << i << ":";
    for (VertexId v : groups.components[i]) {
      std::cout << " " << ego.names[v];
      ++memberships[v];
    }
    std::cout << "\n";
  }
  std::cout << "hub authors (in several groups):";
  for (const auto& [v, count] : memberships) {
    if (count > 1) std::cout << " " << ego.names[v] << "(x" << count << ")";
  }
  std::cout << "\n'" << ego.names[ego.bridge_author]
            << "' assigned to a group: "
            << (memberships.count(ego.bridge_author) ? "yes" : "no (weak ties"
                                                              " only)")
            << "\n\n";

  // --- Part 2: recovering planted communities at scale ----------------
  PlantedVccConfig config;
  config.num_blocks = 10;
  config.block_size_min = 30;
  config.block_size_max = 50;
  config.connectivity = 12;
  config.overlap = 3;
  config.bridge_edges = 2;
  config.seed = 2024;
  const PlantedVccGraph planted = GeneratePlantedVcc(config);
  std::cout << "== planted communities (" << planted.graph.NumVertices()
            << " vertices, " << planted.graph.NumEdges() << " edges) ==\n";
  const std::uint32_t kp = planted.min_separating_k;
  const KvccResult recovered = EnumerateKVccs(planted.graph, kp);
  std::cout << "k=" << kp << ": recovered " << recovered.components.size()
            << " of " << planted.blocks.size() << " planted communities; "
            << (recovered.components == planted.blocks ? "exact match"
                                                       : "MISMATCH")
            << "\n";
  return recovered.components == planted.blocks ? 0 : 1;
}
