// Tour of the dataset suite: generate a SNAP stand-in, save/reload it in
// the SNAP edge-list format, and decompose it at one k, reporting the
// cohesion metrics of the resulting k-VCCs.
//
// Run: ./dataset_tour [name] [k] [scale]

#include <cstdlib>
#include <iostream>

#include "gen/dataset_suite.h"
#include "graph/graph_io.h"
#include "kvcc/kvcc_enum.h"
#include "metrics/cohesion_report.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace kvcc;
  const std::string name = argc > 1 ? argv[1] : "dblp";
  const std::uint32_t k =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 20;
  const double scale = argc > 3 ? std::atof(argv[3]) : 0.25;

  std::cout << "available datasets:";
  for (const auto& n : DatasetNames()) std::cout << " " << n;
  std::cout << "\n\n";

  Timer gen_timer;
  const Graph g = GenerateDataset(name, scale);
  const DatasetInfo info = GetDatasetInfo(name);
  std::cout << name << " (stand-in for " << info.paper_counterpart
            << ", family: " << info.family << ")\n"
            << "  |V|=" << g.NumVertices() << " |E|=" << g.NumEdges()
            << " avg-deg=" << g.AverageDegree()
            << "  generated in " << gen_timer.ElapsedMillis() << "ms\n";

  // Round-trip through the SNAP text format.
  const std::string path = "/tmp/kvcc_dataset_tour.txt";
  WriteEdgeListFile(g, path);
  const Graph reloaded = ReadEdgeListFile(path);
  std::cout << "  saved+reloaded via " << path << ": |V|="
            << reloaded.NumVertices() << " |E|=" << reloaded.NumEdges()
            << "\n\n";

  Timer enum_timer;
  const KvccResult result = EnumerateKVccs(g, k);
  std::cout << k << "-VCC decomposition in " << enum_timer.ElapsedMillis()
            << "ms: " << result.components.size() << " components\n";

  const CohesionSummary summary = SummarizeComponents(g, result.components);
  std::cout << "  avg size " << summary.avg_size << ", avg diameter "
            << summary.avg_diameter << ", avg density "
            << summary.avg_edge_density << ", avg clustering "
            << summary.avg_clustering << "\n";
  std::cout << "  phase-1 pruning: NS1 " << result.stats.Ns1Share() * 100
            << "%, NS2 " << result.stats.Ns2Share() * 100 << "%, GS "
            << result.stats.GsShare() * 100 << "%, tested "
            << result.stats.NonPrunedShare() * 100 << "%\n";
  return 0;
}
