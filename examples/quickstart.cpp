// Quickstart: build a graph, enumerate its k-VCCs, inspect the result.
//
// Reconstructs the paper's Fig. 1 graph — four dense blocks loosely tied
// together — and shows how the three cohesive-subgraph models differ:
// the 4-core merges everything (free-rider effect), the 4-ECCs split once,
// and the 4-VCCs recover all four blocks.
//
// Run: ./quickstart

#include <iostream>

#include "ecc/kecc.h"
#include "gen/fixtures.h"
#include "graph/graph_builder.h"
#include "graph/k_core.h"
#include "kvcc/connectivity.h"
#include "kvcc/kvcc_enum.h"

int main() {
  using namespace kvcc;

  // 1. Build a graph. GraphBuilder tolerates duplicates and self-loops;
  //    here we just take the ready-made Fig. 1 fixture.
  const Figure1Fixture fig1 = MakeFigure1Graph();
  const Graph& g = fig1.graph;
  std::cout << "graph: " << g.NumVertices() << " vertices, " << g.NumEdges()
            << " edges\n\n";

  // 2. Enumerate all 4-VCCs. The default options run VCCE* (all paper
  //    optimizations on); see KvccOptions for the ablation presets.
  const std::uint32_t k = 4;
  const KvccResult result = EnumerateKVccs(g, k);
  std::cout << result.components.size() << " " << k << "-VCCs:\n";
  for (const auto& component : result.components) {
    std::cout << "  {";
    for (std::size_t i = 0; i < component.size(); ++i) {
      std::cout << (i ? "," : "") << component[i];
    }
    // Each k-VCC really is k-vertex-connected:
    const Graph sub = MaterializeComponent(g, component);
    std::cout << "}  kappa=" << VertexConnectivity(sub) << "\n";
  }

  // 3. Contrast with the other models.
  std::cout << "\n4-core: " << KCoreVertices(g, k).size()
            << " vertices in one blob (free-rider effect)\n";
  const auto eccs = KEdgeConnectedComponents(g, k);
  std::cout << "4-ECCs: " << eccs.size() << " components of sizes";
  for (const auto& ecc : eccs) std::cout << " " << ecc.size();
  std::cout << "\n";

  // 4. The execution counters tell you what the optimizations did.
  std::cout << "\nstats:\n" << result.stats.ToString();
  return 0;
}
