// Guard rails for the paper's headline qualitative claims, evaluated on a
// tiny dataset stand-in so they run in CI time. If a refactor breaks one of
// these, the benchmark reproduction is broken even if unit tests pass.

#include <gtest/gtest.h>

#include "ecc/kecc.h"
#include "gen/dataset_suite.h"
#include "graph/connected_components.h"
#include "graph/k_core.h"
#include "kvcc/kvcc_enum.h"
#include "metrics/cohesion_report.h"

namespace kvcc {
namespace {

class PaperShapesTest : public ::testing::Test {
 protected:
  static const Graph& Dataset() {
    static const Graph g = GenerateDataset("dblp", 0.12);
    return g;
  }

  static std::vector<std::vector<VertexId>> CoreComponents(const Graph& g,
                                                           std::uint32_t k) {
    const Graph core = KCoreSubgraph(g, k);
    std::vector<std::vector<VertexId>> out;
    for (auto& comp : ConnectedComponents(core)) {
      if (comp.size() <= k) continue;
      std::vector<VertexId> ids;
      for (VertexId v : comp) ids.push_back(core.LabelOf(v));
      out.push_back(std::move(ids));
    }
    return out;
  }
};

TEST_F(PaperShapesTest, EffectivenessOrderingFigs7To9) {
  const Graph& g = Dataset();
  const std::uint32_t k = 16;
  const CohesionSummary core = SummarizeComponents(g, CoreComponents(g, k));
  const CohesionSummary ecc =
      SummarizeComponents(g, KEdgeConnectedComponents(g, k));
  const CohesionSummary vcc =
      SummarizeComponents(g, EnumerateKVccs(g, k).components);
  ASSERT_GT(vcc.component_count, 0u);
  ASSERT_GT(ecc.component_count, 0u);
  ASSERT_GT(core.component_count, 0u);
  // Fig. 7: k-VCCs have the smallest average diameter.
  EXPECT_LE(vcc.avg_diameter, ecc.avg_diameter);
  EXPECT_LE(vcc.avg_diameter, core.avg_diameter);
  // Fig. 8 / Fig. 9: k-VCCs are the densest and most clustered. Against
  // the k-core blobs this is clear-cut; against k-ECCs the comparison is
  // of per-component *averages* over different component sets, so allow a
  // small tolerance at this tiny test scale (the paper's plots show the
  // same near-ties on DBLP/Google).
  EXPECT_GE(vcc.avg_edge_density, core.avg_edge_density);
  EXPECT_GE(vcc.avg_clustering, core.avg_clustering);
  EXPECT_GE(vcc.avg_edge_density, 0.85 * ecc.avg_edge_density);
  EXPECT_GE(vcc.avg_clustering, 0.85 * ecc.avg_clustering);
}

TEST_F(PaperShapesTest, FreeRiderCounts) {
  // k-core merges what k-ECC partially splits and k-VCC fully splits.
  const Graph& g = Dataset();
  const std::uint32_t k = 16;
  const auto cores = CoreComponents(g, k);
  const auto eccs = KEdgeConnectedComponents(g, k);
  const auto vccs = EnumerateKVccs(g, k).components;
  EXPECT_LE(cores.size(), eccs.size());
  EXPECT_LE(eccs.size(), vccs.size());
  EXPECT_LT(cores.size(), vccs.size());
}

TEST_F(PaperShapesTest, SweepsReduceWorkFig10) {
  const Graph& g = Dataset();
  const auto star = EnumerateKVccs(g, 16, KvccOptions::VcceStar());
  const auto basic = EnumerateKVccs(g, 16, KvccOptions::Vcce());
  EXPECT_EQ(star.components, basic.components);
  EXPECT_LT(star.stats.loc_cut_flow_calls, basic.stats.loc_cut_flow_calls);
  // Table 2: a meaningful share of phase-1 vertices is pruned.
  EXPECT_GT(star.stats.Ns1Share() + star.stats.Ns2Share() +
                star.stats.GsShare(),
            0.2);
}

TEST_F(PaperShapesTest, CountsDecreaseInKFig11) {
  const Graph& g = Dataset();
  std::size_t previous = static_cast<std::size_t>(-1);
  for (std::uint32_t k : {16u, 24u, 32u, 40u}) {
    const auto result = EnumerateKVccs(g, k);
    EXPECT_LE(result.components.size(), previous) << "k=" << k;
    previous = result.components.size();
  }
}

}  // namespace
}  // namespace kvcc
