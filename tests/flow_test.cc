#include <gtest/gtest.h>

#include "flow/stoer_wagner.h"
#include "flow/unit_flow_network.h"
#include "gen/fixtures.h"
#include "graph/graph.h"
#include "kvcc/flow_graph.h"
#include "support/brute_force.h"

namespace kvcc {
namespace {

TEST(UnitFlowNetworkTest, SingleArc) {
  UnitFlowNetwork net(2);
  net.AddArc(0, 1, 1);
  EXPECT_EQ(net.MaxFlow(0, 1), 1);
}

TEST(UnitFlowNetworkTest, NoPathMeansZeroFlow) {
  UnitFlowNetwork net(3);
  net.AddArc(0, 1, 1);
  EXPECT_EQ(net.MaxFlow(0, 2), 0);
}

TEST(UnitFlowNetworkTest, ParallelPaths) {
  // Two disjoint 0 -> 3 paths.
  UnitFlowNetwork net(4);
  net.AddArc(0, 1, 1);
  net.AddArc(1, 3, 1);
  net.AddArc(0, 2, 1);
  net.AddArc(2, 3, 1);
  EXPECT_EQ(net.MaxFlow(0, 3), 2);
}

TEST(UnitFlowNetworkTest, BottleneckLimitsFlow) {
  // 0 -> 1 (cap 3), 1 -> 2 (cap 1): flow is 1.
  UnitFlowNetwork net(3);
  net.AddArc(0, 1, 3);
  net.AddArc(1, 2, 1);
  EXPECT_EQ(net.MaxFlow(0, 2), 1);
}

TEST(UnitFlowNetworkTest, RequiresAugmentingPathReRouting) {
  // Classic case where a greedy path must be re-routed via residual arcs.
  //   0 -> 1, 0 -> 2, 1 -> 2, 1 -> 3, 2 -> 3 (all cap 1): max flow 2.
  UnitFlowNetwork net(4);
  net.AddArc(0, 1, 1);
  net.AddArc(0, 2, 1);
  net.AddArc(1, 2, 1);
  net.AddArc(1, 3, 1);
  net.AddArc(2, 3, 1);
  EXPECT_EQ(net.MaxFlow(0, 3), 2);
}

TEST(UnitFlowNetworkTest, EarlyTerminationHonorsLimit) {
  // 5 parallel paths; ask for at most 2.
  UnitFlowNetwork net(12);
  for (std::uint32_t i = 0; i < 5; ++i) {
    net.AddArc(0, 2 + i, 1);
    net.AddArc(2 + i, 1, 1);
  }
  EXPECT_EQ(net.MaxFlow(0, 1, 2), 2);
  net.ResetFlow();
  EXPECT_EQ(net.MaxFlow(0, 1), 5);
}

TEST(UnitFlowNetworkTest, ResetFlowRestoresCapacities) {
  UnitFlowNetwork net(2);
  net.AddArc(0, 1, 1);
  EXPECT_EQ(net.MaxFlow(0, 1), 1);
  EXPECT_EQ(net.MaxFlow(0, 1), 0);  // Saturated without reset.
  net.ResetFlow();
  EXPECT_EQ(net.MaxFlow(0, 1), 1);
}

TEST(UnitFlowNetworkTest, ResidualReachabilityDefinesCut) {
  // 0 -> 1 -> 2; after saturating, only 0 is residual-reachable.
  UnitFlowNetwork net(3);
  net.AddArc(0, 1, 1);
  net.AddArc(1, 2, 1);
  EXPECT_EQ(net.MaxFlow(0, 2), 1);
  const auto reachable = net.ResidualReachable(0);
  EXPECT_TRUE(reachable[0]);
  EXPECT_FALSE(reachable[2]);
}

TEST(UnitFlowNetworkTest, RepeatedResetCyclesStayExact) {
  // ResetFlow restores only dirtied arcs; many query/reset cycles against
  // one network must keep matching a fresh network's answers.
  const Graph g = MakeFigure1Graph().graph;
  UnitFlowNetwork reused(g.NumVertices());
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    for (VertexId v : g.Neighbors(u)) reused.AddArc(u, v, 1);
  }
  for (std::uint32_t trial = 0; trial < 30; ++trial) {
    const std::uint32_t s = trial % g.NumVertices();
    const std::uint32_t t = (trial * 7 + 3) % g.NumVertices();
    if (s == t) continue;
    UnitFlowNetwork fresh(g.NumVertices());
    for (VertexId u = 0; u < g.NumVertices(); ++u) {
      for (VertexId v : g.Neighbors(u)) fresh.AddArc(u, v, 1);
    }
    EXPECT_EQ(reused.MaxFlow(s, t), fresh.MaxFlow(s, t))
        << "s=" << s << " t=" << t;
    reused.ResetFlow();
  }
}

TEST(UnitFlowNetworkTest, ResetAfterLimitedFlowRestoresFullValue) {
  UnitFlowNetwork net(12);
  for (std::uint32_t i = 0; i < 5; ++i) {
    net.AddArc(0, 2 + i, 1);
    net.AddArc(2 + i, 1, 1);
  }
  for (int cycle = 0; cycle < 4; ++cycle) {
    EXPECT_EQ(net.MaxFlow(0, 1, 2), 2) << "cycle=" << cycle;
    net.ResetFlow();
    EXPECT_EQ(net.MaxFlow(0, 1), 5) << "cycle=" << cycle;
    net.ResetFlow();
  }
}

TEST(UnitFlowNetworkTest, ReinitReusesNetworkForNewTopology) {
  UnitFlowNetwork net(2);
  net.AddArc(0, 1, 1);
  EXPECT_EQ(net.MaxFlow(0, 1), 1);

  // Rebind to a larger network: two disjoint 0 -> 3 paths.
  net.Reinit(4);
  EXPECT_EQ(net.NumNodes(), 4u);
  EXPECT_EQ(net.NumArcs(), 0u);
  net.AddArc(0, 1, 1);
  net.AddArc(1, 3, 1);
  net.AddArc(0, 2, 1);
  net.AddArc(2, 3, 1);
  EXPECT_EQ(net.MaxFlow(0, 3), 2);

  // And back down to a smaller one.
  net.Reinit(3);
  net.AddArc(0, 1, 2);
  net.AddArc(1, 2, 1);
  EXPECT_EQ(net.MaxFlow(0, 2), 1);
}

TEST(DirectedFlowGraphTest, RebuildReusesOracleAcrossGraphs) {
  DirectedFlowGraph oracle;  // unbound
  const Graph k5 = CompleteGraph(5);
  oracle.Rebuild(k5);
  // kappa(u, v) in K5 \ {u,v} paths: adjacent -> LocCut returns empty.
  EXPECT_TRUE(oracle.LocCut(0, 1, 4).empty());

  const Graph cycle = CycleGraph(8);
  oracle.Rebuild(cycle);
  // In C8, kappa(0, 4) = 2 < 3: a 2-vertex cut must come back.
  const auto cut = oracle.LocCut(0, 4, 3);
  EXPECT_EQ(cut.size(), 2u);

  const Graph bip = CompleteBipartite(3, 3);
  oracle.Rebuild(bip);
  // kappa between two left-side vertices of K_{3,3} is 3: no cut below 3.
  EXPECT_TRUE(oracle.LocCut(0, 1, 3).empty());
}

TEST(StoerWagnerTest, TrivialGraphs) {
  EXPECT_EQ(StoerWagnerMinCut(Graph()).weight, GlobalMinCut::kInfiniteCut);
  EXPECT_EQ(StoerWagnerMinCut(CompleteGraph(1)).weight,
            GlobalMinCut::kInfiniteCut);
}

TEST(StoerWagnerTest, DisconnectedGraphHasZeroCut) {
  const Graph g = Graph::FromEdges(
      4, std::vector<std::pair<VertexId, VertexId>>{{0, 1}, {2, 3}});
  const auto cut = StoerWagnerMinCut(g);
  EXPECT_EQ(cut.weight, 0u);
}

TEST(StoerWagnerTest, BridgeGraph) {
  // Two triangles joined by one edge: min cut 1.
  const Graph g = Graph::FromEdges(
      6, std::vector<std::pair<VertexId, VertexId>>{
             {0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}});
  const auto cut = StoerWagnerMinCut(g);
  EXPECT_EQ(cut.weight, 1u);
  EXPECT_TRUE(cut.side.size() == 3 || cut.side.size() == 3u);
}

TEST(StoerWagnerTest, CompleteGraphCut) {
  // K_5: min cut isolates one vertex, weight 4.
  EXPECT_EQ(StoerWagnerMinCut(CompleteGraph(5)).weight, 4u);
}

TEST(StoerWagnerTest, CycleCutIsTwo) {
  EXPECT_EQ(StoerWagnerMinCut(CycleGraph(9)).weight, 2u);
}

TEST(StoerWagnerTest, EarlyStopReturnsValidSubThresholdCut) {
  const Graph g = MakeFigure1Graph().graph;
  const auto cut = StoerWagnerMinCut(g, /*early_stop_below=*/4);
  ASSERT_LT(cut.weight, 4u);
  ASSERT_FALSE(cut.side.empty());
  ASSERT_LT(cut.side.size(), g.NumVertices());
  // Verify the reported weight matches the actual crossing-edge count.
  std::vector<bool> in_side(g.NumVertices(), false);
  for (VertexId v : cut.side) in_side[v] = true;
  std::uint64_t crossing = 0;
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    for (VertexId v : g.Neighbors(u)) {
      if (u < v && in_side[u] != in_side[v]) ++crossing;
    }
  }
  EXPECT_EQ(crossing, cut.weight);
}

// Property: Stoer–Wagner matches the brute-force min cut on random graphs.
TEST(StoerWagnerTest, MatchesBruteForceOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Graph g = kvcc::testing::RandomConnectedGraph(10, seed % 14, seed);
    const auto cut = StoerWagnerMinCut(g);
    EXPECT_EQ(cut.weight, kvcc::testing::BruteMinEdgeCutWeight(g))
        << "seed=" << seed;
  }
}

}  // namespace
}  // namespace kvcc
