#include <gtest/gtest.h>

#include "flow/stoer_wagner.h"
#include "flow/unit_flow_network.h"
#include "gen/fixtures.h"
#include "graph/graph.h"
#include "support/brute_force.h"

namespace kvcc {
namespace {

TEST(UnitFlowNetworkTest, SingleArc) {
  UnitFlowNetwork net(2);
  net.AddArc(0, 1, 1);
  EXPECT_EQ(net.MaxFlow(0, 1), 1);
}

TEST(UnitFlowNetworkTest, NoPathMeansZeroFlow) {
  UnitFlowNetwork net(3);
  net.AddArc(0, 1, 1);
  EXPECT_EQ(net.MaxFlow(0, 2), 0);
}

TEST(UnitFlowNetworkTest, ParallelPaths) {
  // Two disjoint 0 -> 3 paths.
  UnitFlowNetwork net(4);
  net.AddArc(0, 1, 1);
  net.AddArc(1, 3, 1);
  net.AddArc(0, 2, 1);
  net.AddArc(2, 3, 1);
  EXPECT_EQ(net.MaxFlow(0, 3), 2);
}

TEST(UnitFlowNetworkTest, BottleneckLimitsFlow) {
  // 0 -> 1 (cap 3), 1 -> 2 (cap 1): flow is 1.
  UnitFlowNetwork net(3);
  net.AddArc(0, 1, 3);
  net.AddArc(1, 2, 1);
  EXPECT_EQ(net.MaxFlow(0, 2), 1);
}

TEST(UnitFlowNetworkTest, RequiresAugmentingPathReRouting) {
  // Classic case where a greedy path must be re-routed via residual arcs.
  //   0 -> 1, 0 -> 2, 1 -> 2, 1 -> 3, 2 -> 3 (all cap 1): max flow 2.
  UnitFlowNetwork net(4);
  net.AddArc(0, 1, 1);
  net.AddArc(0, 2, 1);
  net.AddArc(1, 2, 1);
  net.AddArc(1, 3, 1);
  net.AddArc(2, 3, 1);
  EXPECT_EQ(net.MaxFlow(0, 3), 2);
}

TEST(UnitFlowNetworkTest, EarlyTerminationHonorsLimit) {
  // 5 parallel paths; ask for at most 2.
  UnitFlowNetwork net(12);
  for (std::uint32_t i = 0; i < 5; ++i) {
    net.AddArc(0, 2 + i, 1);
    net.AddArc(2 + i, 1, 1);
  }
  EXPECT_EQ(net.MaxFlow(0, 1, 2), 2);
  net.ResetFlow();
  EXPECT_EQ(net.MaxFlow(0, 1), 5);
}

TEST(UnitFlowNetworkTest, ResetFlowRestoresCapacities) {
  UnitFlowNetwork net(2);
  net.AddArc(0, 1, 1);
  EXPECT_EQ(net.MaxFlow(0, 1), 1);
  EXPECT_EQ(net.MaxFlow(0, 1), 0);  // Saturated without reset.
  net.ResetFlow();
  EXPECT_EQ(net.MaxFlow(0, 1), 1);
}

TEST(UnitFlowNetworkTest, ResidualReachabilityDefinesCut) {
  // 0 -> 1 -> 2; after saturating, only 0 is residual-reachable.
  UnitFlowNetwork net(3);
  net.AddArc(0, 1, 1);
  net.AddArc(1, 2, 1);
  EXPECT_EQ(net.MaxFlow(0, 2), 1);
  const auto reachable = net.ResidualReachable(0);
  EXPECT_TRUE(reachable[0]);
  EXPECT_FALSE(reachable[2]);
}

TEST(StoerWagnerTest, TrivialGraphs) {
  EXPECT_EQ(StoerWagnerMinCut(Graph()).weight, GlobalMinCut::kInfiniteCut);
  EXPECT_EQ(StoerWagnerMinCut(CompleteGraph(1)).weight,
            GlobalMinCut::kInfiniteCut);
}

TEST(StoerWagnerTest, DisconnectedGraphHasZeroCut) {
  const Graph g = Graph::FromEdges(
      4, std::vector<std::pair<VertexId, VertexId>>{{0, 1}, {2, 3}});
  const auto cut = StoerWagnerMinCut(g);
  EXPECT_EQ(cut.weight, 0u);
}

TEST(StoerWagnerTest, BridgeGraph) {
  // Two triangles joined by one edge: min cut 1.
  const Graph g = Graph::FromEdges(
      6, std::vector<std::pair<VertexId, VertexId>>{
             {0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}});
  const auto cut = StoerWagnerMinCut(g);
  EXPECT_EQ(cut.weight, 1u);
  EXPECT_TRUE(cut.side.size() == 3 || cut.side.size() == 3u);
}

TEST(StoerWagnerTest, CompleteGraphCut) {
  // K_5: min cut isolates one vertex, weight 4.
  EXPECT_EQ(StoerWagnerMinCut(CompleteGraph(5)).weight, 4u);
}

TEST(StoerWagnerTest, CycleCutIsTwo) {
  EXPECT_EQ(StoerWagnerMinCut(CycleGraph(9)).weight, 2u);
}

TEST(StoerWagnerTest, EarlyStopReturnsValidSubThresholdCut) {
  const Graph g = MakeFigure1Graph().graph;
  const auto cut = StoerWagnerMinCut(g, /*early_stop_below=*/4);
  ASSERT_LT(cut.weight, 4u);
  ASSERT_FALSE(cut.side.empty());
  ASSERT_LT(cut.side.size(), g.NumVertices());
  // Verify the reported weight matches the actual crossing-edge count.
  std::vector<bool> in_side(g.NumVertices(), false);
  for (VertexId v : cut.side) in_side[v] = true;
  std::uint64_t crossing = 0;
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    for (VertexId v : g.Neighbors(u)) {
      if (u < v && in_side[u] != in_side[v]) ++crossing;
    }
  }
  EXPECT_EQ(crossing, cut.weight);
}

// Property: Stoer–Wagner matches the brute-force min cut on random graphs.
TEST(StoerWagnerTest, MatchesBruteForceOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Graph g = kvcc::testing::RandomConnectedGraph(10, seed % 14, seed);
    const auto cut = StoerWagnerMinCut(g);
    EXPECT_EQ(cut.weight, kvcc::testing::BruteMinEdgeCutWeight(g))
        << "seed=" << seed;
  }
}

}  // namespace
}  // namespace kvcc
