#include "kvcc/sparse_certificate.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "gen/fixtures.h"
#include "graph/connected_components.h"
#include "graph/graph.h"
#include "kvcc/connectivity.h"
#include "support/brute_force.h"
#include "util/random.h"

namespace kvcc {
namespace {

TEST(SparseCertificateTest, EdgeBoundKTimesNMinusOne) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Graph g = kvcc::testing::RandomConnectedGraph(40, 200, seed);
    for (std::uint32_t k = 1; k <= 5; ++k) {
      const auto sc = BuildSparseCertificate(g, k);
      EXPECT_LE(sc.certificate.NumEdges(),
                static_cast<std::uint64_t>(k) * (g.NumVertices() - 1))
          << "seed=" << seed << " k=" << k;
      EXPECT_EQ(sc.certificate.NumVertices(), g.NumVertices());
    }
  }
}

TEST(SparseCertificateTest, CertificateIsSubgraph) {
  const Graph g = kvcc::testing::RandomConnectedGraph(30, 120, 3);
  const auto sc = BuildSparseCertificate(g, 3);
  for (const auto& [u, v] : sc.certificate.Edges()) {
    EXPECT_TRUE(g.HasEdge(u, v));
  }
}

TEST(SparseCertificateTest, SparseGraphIsItsOwnCertificate) {
  // A tree has n-1 edges; the k=3 certificate must keep all of them.
  const Graph g = kvcc::testing::RandomConnectedGraph(20, 0, 5);
  const auto sc = BuildSparseCertificate(g, 3);
  EXPECT_EQ(sc.certificate.NumEdges(), g.NumEdges());
}

// The defining property (paper Thm 5): SC is k-connected iff G is.
TEST(SparseCertificateTest, PreservesKConnectivity) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Graph g = kvcc::testing::RandomConnectedGraph(12, 30, seed);
    for (std::uint32_t k = 1; k <= 4; ++k) {
      const auto sc = BuildSparseCertificate(g, k);
      EXPECT_EQ(IsKVertexConnected(sc.certificate, k),
                IsKVertexConnected(g, k))
          << "seed=" << seed << " k=" << k;
    }
  }
}

// The stronger property the algorithm relies on: for every vertex set S
// with |S| < k, G - S and SC - S have identical connected components.
TEST(SparseCertificateTest, SameComponentsUnderSmallRemovals) {
  Rng rng(99);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Graph g = kvcc::testing::RandomConnectedGraph(16, 40, seed);
    const std::uint32_t k = 3;
    const auto sc = BuildSparseCertificate(g, k);
    for (int trial = 0; trial < 40; ++trial) {
      // Random removal set of size < k.
      std::vector<VertexId> removal;
      const auto size = static_cast<std::uint32_t>(rng.NextBounded(k));
      while (removal.size() < size) {
        const auto v = static_cast<VertexId>(
            rng.NextBounded(g.NumVertices()));
        if (std::find(removal.begin(), removal.end(), v) == removal.end()) {
          removal.push_back(v);
        }
      }
      std::vector<VertexId> keep;
      for (VertexId v = 0; v < g.NumVertices(); ++v) {
        if (std::find(removal.begin(), removal.end(), v) == removal.end()) {
          keep.push_back(v);
        }
      }
      const auto comps_g = ConnectedComponents(g.InducedSubgraph(keep));
      const auto comps_sc =
          ConnectedComponents(sc.certificate.InducedSubgraph(keep));
      EXPECT_EQ(comps_g, comps_sc) << "seed=" << seed;
    }
  }
}

TEST(SparseCertificateTest, SideGroupsAreLocallyKConnected) {
  // Paper Thm 10: every pair inside a side-group is locally k-connected
  // *in the original graph*.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Graph g = kvcc::testing::RandomConnectedGraph(14, 50, seed);
    const std::uint32_t k = 3;
    const auto sc = BuildSparseCertificate(g, k);
    for (const auto& group : sc.groups) {
      for (std::size_t i = 0; i < group.size(); ++i) {
        for (std::size_t j = i + 1; j < group.size(); ++j) {
          const std::uint32_t kappa = kvcc::testing::BruteLocalVertexConnectivity(
              g, group[i], group[j]);
          EXPECT_GE(kappa, k) << "seed=" << seed;
        }
      }
    }
  }
}

TEST(SparseCertificateTest, GroupOfIsConsistent) {
  const Graph g = kvcc::testing::RandomConnectedGraph(20, 80, 7);
  const auto sc = BuildSparseCertificate(g, 3);
  for (std::uint32_t gi = 0; gi < sc.groups.size(); ++gi) {
    for (VertexId v : sc.groups[gi]) {
      EXPECT_EQ(sc.group_of[v], gi);
    }
  }
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (sc.group_of[v] != kNoGroup) {
      const auto& group = sc.groups[sc.group_of[v]];
      EXPECT_TRUE(std::binary_search(group.begin(), group.end(), v));
    }
  }
}

TEST(SparseCertificateTest, CompleteGraphCertificateStaysKConnected) {
  const Graph g = CompleteGraph(8);
  const auto sc = BuildSparseCertificate(g, 4);
  EXPECT_TRUE(IsKVertexConnected(sc.certificate, 4));
  EXPECT_LE(sc.certificate.NumEdges(), 4u * 7u);
}

}  // namespace
}  // namespace kvcc
