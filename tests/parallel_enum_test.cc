// Determinism of the parallel enumeration engine: EnumerateKVccs must
// produce identical components and identical stats totals for every thread
// count, because each work item is a pure function of its input and the
// merged output is canonically sorted.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "gen/fixtures.h"
#include "gen/planted_vcc.h"
#include "kvcc/kvcc_enum.h"
#include "support/brute_force.h"

namespace kvcc {
namespace {

const std::vector<std::uint32_t> kThreadCounts = {1, 2, 8};

void ExpectSameStats(const KvccStats& a, const KvccStats& b,
                     const std::string& context) {
  EXPECT_EQ(a.kvccs_found, b.kvccs_found) << context;
  EXPECT_EQ(a.global_cut_calls, b.global_cut_calls) << context;
  EXPECT_EQ(a.overlap_partitions, b.overlap_partitions) << context;
  EXPECT_EQ(a.kcore_rounds, b.kcore_rounds) << context;
  EXPECT_EQ(a.kcore_removed_vertices, b.kcore_removed_vertices) << context;
  EXPECT_EQ(a.loc_cut_flow_calls, b.loc_cut_flow_calls) << context;
  EXPECT_EQ(a.Phase1Total(), b.Phase1Total()) << context;
  EXPECT_EQ(a.phase1_tested_flow, b.phase1_tested_flow) << context;
  EXPECT_EQ(a.phase2_pairs_tested, b.phase2_pairs_tested) << context;
  EXPECT_EQ(a.strong_side_checks_run, b.strong_side_checks_run) << context;
  EXPECT_EQ(a.certificate_cut_fallbacks, b.certificate_cut_fallbacks)
      << context;
}

/// Runs every configured thread count and asserts all runs agree with the
/// serial one (components byte-identical, stats totals equal).
KvccResult ExpectThreadInvariant(const Graph& g, std::uint32_t k,
                                 KvccOptions options) {
  options.num_threads = 1;
  const KvccResult serial = EnumerateKVccs(g, k, options);
  for (std::uint32_t threads : kThreadCounts) {
    options.num_threads = threads;
    const KvccResult run = EnumerateKVccs(g, k, options);
    const std::string context = "threads=" + std::to_string(threads) +
                                " k=" + std::to_string(k);
    EXPECT_EQ(run.components, serial.components) << context;
    ExpectSameStats(run.stats, serial.stats, context);
  }
  return serial;
}

TEST(ParallelEnumTest, PlantedVccFixture) {
  PlantedVccConfig config;
  config.num_blocks = 6;
  config.block_size_min = 18;
  config.block_size_max = 30;
  config.connectivity = 8;
  config.overlap = 2;
  config.bridge_edges = 1;
  config.seed = 99;
  const PlantedVccGraph planted = GeneratePlantedVcc(config);
  const KvccResult serial =
      ExpectThreadInvariant(planted.graph, planted.max_connected_k,
                            KvccOptions::VcceStar());
  EXPECT_EQ(serial.components, planted.blocks);
}

TEST(ParallelEnumTest, PlantedRingAllVariants) {
  PlantedVccConfig config;
  config.num_blocks = 5;
  config.block_size_min = 14;
  config.block_size_max = 20;
  config.connectivity = 7;
  config.overlap = 1;
  config.bridge_edges = 1;
  config.ring = true;
  config.seed = 12;
  const PlantedVccGraph planted = GeneratePlantedVcc(config);
  for (KvccOptions options :
       {KvccOptions::Vcce(), KvccOptions::VcceN(), KvccOptions::VcceG(),
        KvccOptions::VcceStar()}) {
    const KvccResult serial = ExpectThreadInvariant(
        planted.graph, planted.max_connected_k, options);
    EXPECT_EQ(serial.components, planted.blocks);
  }
}

TEST(ParallelEnumTest, Figure1Fixture) {
  const Figure1Fixture f = MakeFigure1Graph();
  const KvccResult serial =
      ExpectThreadInvariant(f.graph, 4, KvccOptions::VcceStar());
  EXPECT_EQ(serial.components, f.expected_vccs);
}

TEST(ParallelEnumTest, CaseStudyFixture) {
  const CaseStudyFixture f = MakeCaseStudyGraph();
  const KvccResult serial =
      ExpectThreadInvariant(f.graph, 4, KvccOptions::VcceStar());
  EXPECT_EQ(serial.components.size(), f.expected_vcc_count);
}

TEST(ParallelEnumTest, RandomGraphsMatchBruteForce) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Graph g = kvcc::testing::RandomConnectedGraph(12, 26, seed);
    for (std::uint32_t k = 2; k <= 4; ++k) {
      const auto expected = kvcc::testing::BruteKVccs(g, k);
      KvccOptions options;
      options.num_threads = 4;
      const KvccResult run = EnumerateKVccs(g, k, options);
      EXPECT_EQ(run.components, expected) << "seed=" << seed << " k=" << k;
    }
  }
}

TEST(ParallelEnumTest, HardwareConcurrencyAutoDetect) {
  // num_threads = 0 resolves to hardware concurrency; result unchanged.
  const Figure1Fixture f = MakeFigure1Graph();
  KvccOptions options;
  options.num_threads = 0;
  const KvccResult run = EnumerateKVccs(f.graph, 4, options);
  EXPECT_EQ(run.components, f.expected_vccs);
}

TEST(ParallelEnumTest, LabeledInputReportsLocalIds) {
  // A subgraph carries labels into EnumerateKVccs; results must still be
  // in the *input graph's* id space for every thread count (the root
  // used to be re-labeled via an identity copy; now the label chain is
  // seeded lazily).
  const Graph big = TwoCliquesSharing(6, 2);  // 4-VCCs {0..5}, {4..9}.
  std::vector<VertexId> keep;
  for (VertexId v = 0; v < big.NumVertices(); ++v) keep.push_back(v);
  // Drop vertex 0: the labeled subgraph maps local v -> big id v + 1.
  keep.erase(keep.begin());
  const Graph labeled = big.InducedSubgraph(keep);
  ASSERT_TRUE(labeled.HasLabels());
  for (std::uint32_t threads : kThreadCounts) {
    KvccOptions options;
    options.num_threads = threads;
    const KvccResult run = EnumerateKVccs(labeled, 4, options);
    // Big's clique {0..5} loses vertex 0 but stays a 4-VCC as a 5-clique
    // (local ids {0..4}); clique {4..9} survives whole (local ids {3..8}).
    ASSERT_EQ(run.components.size(), 2u) << "threads=" << threads;
    EXPECT_EQ(run.components[0], (std::vector<VertexId>{0, 1, 2, 3, 4}))
        << "threads=" << threads;
    EXPECT_EQ(run.components[1], (std::vector<VertexId>{3, 4, 5, 6, 7, 8}))
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace kvcc
