#include <gtest/gtest.h>

#include <algorithm>

#include "gen/barabasi_albert.h"
#include "gen/dataset_suite.h"
#include "gen/erdos_renyi.h"
#include "gen/fixtures.h"
#include "gen/harary.h"
#include "gen/planted_vcc.h"
#include "gen/rmat.h"
#include "gen/sampler.h"
#include "gen/watts_strogatz.h"
#include "graph/connected_components.h"
#include "kvcc/connectivity.h"

namespace kvcc {
namespace {

TEST(ErdosRenyiTest, GnmProducesRequestedEdges) {
  const Graph g = ErdosRenyiGnm(100, 250, 1);
  EXPECT_EQ(g.NumVertices(), 100u);
  EXPECT_EQ(g.NumEdges(), 250u);
}

TEST(ErdosRenyiTest, GnmClampsToMaxPairs) {
  const Graph g = ErdosRenyiGnm(5, 1000, 1);
  EXPECT_EQ(g.NumEdges(), 10u);  // K5.
}

TEST(ErdosRenyiTest, Deterministic) {
  const Graph a = ErdosRenyiGnm(50, 120, 7);
  const Graph b = ErdosRenyiGnm(50, 120, 7);
  EXPECT_TRUE(a.SameStructure(b));
  const Graph c = ErdosRenyiGnm(50, 120, 8);
  EXPECT_FALSE(a.SameStructure(c));
}

TEST(ErdosRenyiTest, GnpEdgeCountNearExpectation) {
  const Graph g = ErdosRenyiGnp(200, 0.1, 3);
  const double expected = 0.1 * 200 * 199 / 2;
  EXPECT_GT(g.NumEdges(), expected * 0.7);
  EXPECT_LT(g.NumEdges(), expected * 1.3);
  EXPECT_EQ(ErdosRenyiGnp(50, 0.0, 1).NumEdges(), 0u);
  EXPECT_EQ(ErdosRenyiGnp(10, 1.0, 1).NumEdges(), 45u);
}

TEST(BarabasiAlbertTest, DegreesAndConnectivity) {
  const Graph g = BarabasiAlbert(500, 3, 11);
  EXPECT_EQ(g.NumVertices(), 500u);
  // Every non-seed vertex attaches with 3 edges.
  for (VertexId v = 4; v < 500; ++v) EXPECT_GE(g.Degree(v), 3u);
  EXPECT_TRUE(IsConnected(g));
  // Preferential attachment: the max degree should be clearly above 3.
  EXPECT_GT(g.MaxDegree(), 12u);
}

TEST(RmatTest, ProducesSkewedGraph) {
  RmatConfig config;
  config.scale = 10;
  config.edges = 4096;
  config.seed = 5;
  const Graph g = Rmat(config);
  EXPECT_EQ(g.NumVertices(), 1024u);
  EXPECT_GT(g.NumEdges(), 2000u);  // Some dedup loss is expected.
  EXPECT_GT(g.MaxDegree(), 30u);   // Heavy tail.
}

TEST(WattsStrogatzTest, LatticeWithoutRewiring) {
  const Graph g = WattsStrogatz(20, 2, 0.0, 1);
  EXPECT_EQ(g.NumEdges(), 40u);
  for (VertexId v = 0; v < 20; ++v) EXPECT_EQ(g.Degree(v), 4u);
}

TEST(HararyTest, ExactConnectivityAcrossParities) {
  // All four (k, n) parity combinations.
  EXPECT_EQ(VertexConnectivity(HararyGraph(4, 10)), 4u);  // even k
  EXPECT_EQ(VertexConnectivity(HararyGraph(4, 11)), 4u);
  EXPECT_EQ(VertexConnectivity(HararyGraph(5, 10)), 5u);  // odd k, even n
  EXPECT_EQ(VertexConnectivity(HararyGraph(5, 11)), 5u);  // odd k, odd n
}

TEST(HararyTest, EdgeCountIsMinimal) {
  // H_{k,n} has ceil(k*n/2) edges (k*n/2 + possibly one extra for odd/odd).
  const Graph g = HararyGraph(4, 9);
  EXPECT_EQ(g.NumEdges(), 18u);
  const Graph h = HararyGraph(3, 8);
  EXPECT_EQ(h.NumEdges(), 12u);
}

TEST(HararyTest, RejectsInvalidArguments) {
  EXPECT_THROW(HararyGraph(0, 5), std::invalid_argument);
  EXPECT_THROW(HararyGraph(5, 5), std::invalid_argument);
}

TEST(PlantedVccTest, EnforcesSeparationBudget) {
  PlantedVccConfig config;
  config.num_blocks = 3;
  config.connectivity = 4;
  config.overlap = 2;      // 2*(2+1) = 6 >= 4: must throw.
  config.bridge_edges = 1;
  EXPECT_THROW(GeneratePlantedVcc(config), std::invalid_argument);
}

TEST(PlantedVccTest, BlocksAreConnectedAndCorrectCount) {
  PlantedVccConfig config;
  config.num_blocks = 4;
  config.block_size_min = 14;
  config.block_size_max = 18;
  config.connectivity = 6;
  config.overlap = 1;
  config.bridge_edges = 1;
  config.seed = 9;
  const PlantedVccGraph planted = GeneratePlantedVcc(config);
  EXPECT_EQ(planted.blocks.size(), 4u);
  EXPECT_EQ(planted.min_separating_k, 5u);
  EXPECT_EQ(planted.max_connected_k, 6u);
  for (const auto& block : planted.blocks) {
    const Graph sub = planted.graph.InducedSubgraph(block);
    EXPECT_TRUE(IsKVertexConnected(sub, config.connectivity));
  }
  EXPECT_TRUE(IsConnected(planted.graph));
}

TEST(PlantedVccTest, MixedConnectivities) {
  PlantedVccConfig config;
  config.num_blocks = 4;
  config.block_size_min = 20;
  config.block_size_max = 24;
  config.connectivities = {8, 10, 12, 14};
  config.overlap = 2;
  config.bridge_edges = 1;
  config.seed = 4;
  const PlantedVccGraph planted = GeneratePlantedVcc(config);
  EXPECT_EQ(planted.max_connected_k, 8u);
  EXPECT_EQ(planted.min_separating_k, 7u);
}

TEST(SamplerTest, VertexSamplingKeepsAboutFraction) {
  const Graph g = ErdosRenyiGnm(1000, 3000, 2);
  const Graph sample = SampleVerticesInduced(g, 0.5, 17);
  EXPECT_GT(sample.NumVertices(), 400u);
  EXPECT_LT(sample.NumVertices(), 600u);
  // Edges of the sample are edges of g (via labels).
  for (const auto& [u, v] : sample.Edges()) {
    EXPECT_TRUE(g.HasEdge(sample.LabelOf(u), sample.LabelOf(v)));
  }
}

TEST(SamplerTest, EdgeSamplingVerticesAreEndpoints) {
  const Graph g = ErdosRenyiGnm(300, 900, 3);
  const Graph sample = SampleEdges(g, 0.4, 23);
  EXPECT_GT(sample.NumEdges(), 250u);
  EXPECT_LT(sample.NumEdges(), 470u);
  for (VertexId v = 0; v < sample.NumVertices(); ++v) {
    EXPECT_GE(sample.Degree(v), 1u);  // Every kept vertex has an edge.
  }
}

TEST(SamplerTest, FullFractionIsIdentity) {
  const Graph g = ErdosRenyiGnm(100, 300, 4);
  EXPECT_EQ(SampleEdges(g, 1.0, 1).NumEdges(), g.NumEdges());
  EXPECT_EQ(SampleVerticesInduced(g, 1.0, 1).NumVertices(),
            g.NumVertices());
}

TEST(DatasetSuiteTest, NamesAndInfo) {
  const auto names = DatasetNames();
  EXPECT_EQ(names.size(), 7u);
  for (const auto& name : names) {
    const DatasetInfo info = GetDatasetInfo(name);
    EXPECT_EQ(info.name, name);
    EXPECT_FALSE(info.paper_counterpart.empty());
  }
  EXPECT_THROW(GetDatasetInfo("bogus"), std::invalid_argument);
}

TEST(DatasetSuiteTest, SmallScaleGenerationIsDeterministic) {
  const Graph a = GenerateDataset("dblp", 0.05);
  const Graph b = GenerateDataset("dblp", 0.05);
  EXPECT_TRUE(a.SameStructure(b));
  EXPECT_GT(a.NumVertices(), 500u);
  EXPECT_GT(a.NumEdges(), a.NumVertices());
}

TEST(DatasetSuiteTest, EffectivenessKsMatchPaperAxes) {
  EXPECT_EQ(EffectivenessKs("youtube"),
            (std::vector<std::uint32_t>{6, 7, 8, 9}));
  EXPECT_EQ(EffectivenessKs("dblp"),
            (std::vector<std::uint32_t>{15, 16, 17, 18}));
  EXPECT_EQ(EfficiencyKs(),
            (std::vector<std::uint32_t>{20, 25, 30, 35, 40}));
}

TEST(FixtureTest, Figure1SelfConsistent) {
  const Figure1Fixture f = MakeFigure1Graph();
  EXPECT_EQ(f.graph.NumVertices(), 23u);
  EXPECT_EQ(f.expected_vccs.size(), 4u);
  // Each expected block is 4-connected.
  for (const auto& block : f.expected_vccs) {
    EXPECT_TRUE(IsKVertexConnected(f.graph.InducedSubgraph(block), 4));
  }
}

TEST(FixtureTest, ClassicGraphSizes) {
  EXPECT_EQ(PetersenGraph().NumEdges(), 15u);
  EXPECT_EQ(GridGraph(3, 3).NumEdges(), 12u);
  EXPECT_EQ(CompleteBipartite(2, 3).NumEdges(), 6u);
  EXPECT_EQ(TwoCliquesSharing(5, 2).NumVertices(), 8u);
}

}  // namespace
}  // namespace kvcc
