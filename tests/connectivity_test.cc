#include "kvcc/connectivity.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "gen/fixtures.h"
#include "gen/harary.h"
#include "graph/bfs.h"
#include "graph/graph.h"
#include "kvcc/flow_graph.h"
#include "support/brute_force.h"

namespace kvcc {
namespace {

TEST(VertexConnectivityTest, ClassicGraphs) {
  EXPECT_EQ(VertexConnectivity(CompleteGraph(2)), 1u);
  EXPECT_EQ(VertexConnectivity(CompleteGraph(5)), 4u);
  EXPECT_EQ(VertexConnectivity(CycleGraph(7)), 2u);
  EXPECT_EQ(VertexConnectivity(PathGraph(5)), 1u);
  EXPECT_EQ(VertexConnectivity(PetersenGraph()), 3u);
  EXPECT_EQ(VertexConnectivity(GridGraph(4, 5)), 2u);
  EXPECT_EQ(VertexConnectivity(CompleteBipartite(3, 6)), 3u);
}

TEST(VertexConnectivityTest, DegenerateCases) {
  EXPECT_EQ(VertexConnectivity(Graph()), 0u);
  EXPECT_EQ(VertexConnectivity(CompleteGraph(1)), 0u);
  const Graph disconnected = Graph::FromEdges(
      4, std::vector<std::pair<VertexId, VertexId>>{{0, 1}, {2, 3}});
  EXPECT_EQ(VertexConnectivity(disconnected), 0u);
}

TEST(VertexConnectivityTest, HararyGraphsHaveExactConnectivity) {
  for (std::uint32_t k = 1; k <= 6; ++k) {
    for (VertexId n = k + 1; n <= k + 6; ++n) {
      SCOPED_TRACE("k=" + std::to_string(k) + " n=" + std::to_string(n));
      EXPECT_EQ(VertexConnectivity(HararyGraph(k, n)), k);
    }
  }
}

TEST(VertexConnectivityTest, MatchesBruteForceOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const Graph g = kvcc::testing::RandomConnectedGraph(9, seed % 18, seed);
    EXPECT_EQ(VertexConnectivity(g),
              kvcc::testing::BruteVertexConnectivity(g))
        << "seed=" << seed;
  }
}

TEST(IsKVertexConnectedTest, DefinitionBoundaries) {
  // K_5 is k-connected for k <= 4 and not for k >= 5 (|V| > k fails).
  const Graph k5 = CompleteGraph(5);
  for (std::uint32_t k = 0; k <= 4; ++k) EXPECT_TRUE(IsKVertexConnected(k5, k));
  EXPECT_FALSE(IsKVertexConnected(k5, 5));
  EXPECT_FALSE(IsKVertexConnected(k5, 6));
}

TEST(IsKVertexConnectedTest, MatchesBruteForceOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const Graph g = kvcc::testing::RandomConnectedGraph(9, 12, seed);
    for (std::uint32_t k = 1; k <= 4; ++k) {
      EXPECT_EQ(IsKVertexConnected(g, k),
                kvcc::testing::BruteIsKVertexConnected(g, k))
          << "seed=" << seed << " k=" << k;
    }
  }
}

TEST(LocalConnectivityTest, AdjacentPairsAreInfinite) {
  const Graph g = PathGraph(3);
  EXPECT_EQ(LocalVertexConnectivity(g, 0, 1), kInfiniteConnectivity);
}

TEST(LocalConnectivityTest, PathHasSingleWitness) {
  const Graph g = PathGraph(5);
  EXPECT_EQ(LocalVertexConnectivity(g, 0, 4), 1u);
}

TEST(LocalConnectivityTest, MatchesBruteForceOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const Graph g = kvcc::testing::RandomConnectedGraph(8, 10, seed);
    for (VertexId u = 0; u < g.NumVertices(); ++u) {
      for (VertexId v = u + 1; v < g.NumVertices(); ++v) {
        EXPECT_EQ(LocalVertexConnectivity(g, u, v),
                  kvcc::testing::BruteLocalVertexConnectivity(g, u, v))
            << "seed=" << seed << " pair=(" << u << "," << v << ")";
      }
    }
  }
}

TEST(LocalConnectivityTest, LimitTruncates) {
  const Graph g = CompleteBipartite(4, 4);
  // kappa between two same-side vertices is 4; a limit of 2 truncates.
  EXPECT_EQ(LocalVertexConnectivity(g, 0, 1, 2), 2u);
  EXPECT_EQ(LocalVertexConnectivity(g, 0, 1), 4u);
}

TEST(DirectedFlowGraphTest, LocCutProducesValidVertexCut) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const Graph g = kvcc::testing::RandomConnectedGraph(12, 10, seed);
    DirectedFlowGraph oracle(g);
    for (VertexId u = 0; u < g.NumVertices(); ++u) {
      for (VertexId v = u + 1; v < g.NumVertices(); ++v) {
        const std::uint32_t k = 3;
        const auto cut = oracle.LocCut(u, v, k);
        if (g.HasEdge(u, v)) {
          EXPECT_TRUE(cut.empty());
          continue;
        }
        const std::uint32_t kappa =
            kvcc::testing::BruteLocalVertexConnectivity(g, u, v);
        if (kappa >= k) {
          EXPECT_TRUE(cut.empty()) << "seed=" << seed;
          continue;
        }
        // The cut must be small, avoid u/v, and actually separate them.
        ASSERT_FALSE(cut.empty()) << "seed=" << seed;
        EXPECT_LT(cut.size(), k);
        EXPECT_EQ(cut.size(), kappa);  // LocCut yields a *minimum* u-v cut.
        std::vector<VertexId> keep;
        for (VertexId w = 0; w < g.NumVertices(); ++w) {
          if (std::find(cut.begin(), cut.end(), w) == cut.end()) {
            keep.push_back(w);
          }
        }
        EXPECT_TRUE(std::find(cut.begin(), cut.end(), u) == cut.end());
        EXPECT_TRUE(std::find(cut.begin(), cut.end(), v) == cut.end());
        const Graph remainder = g.InducedSubgraph(keep);
        // Locate u, v in the remainder via labels.
        VertexId lu = kInvalidVertex, lv = kInvalidVertex;
        for (VertexId w = 0; w < remainder.NumVertices(); ++w) {
          if (remainder.LabelOf(w) == u) lu = w;
          if (remainder.LabelOf(w) == v) lv = w;
        }
        ASSERT_NE(lu, kInvalidVertex);
        ASSERT_NE(lv, kInvalidVertex);
        std::vector<std::uint32_t> dist;
        BfsDistances(remainder, lu, dist);
        EXPECT_EQ(dist[lv], kUnreachable)
            << "seed=" << seed << " cut failed to separate " << u << " and "
            << v;
      }
    }
  }
}

}  // namespace
}  // namespace kvcc
