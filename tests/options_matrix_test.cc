// Exhaustive option-knob correctness sweep: every combination of the
// GLOBAL-CUT* switches must produce exactly the brute-force k-VCC set.
// Sweeps/certificates/ordering/maintenance are pure optimizations — any
// output difference is a soundness bug.

#include <gtest/gtest.h>

#include <string>

#include "kvcc/kvcc_enum.h"
#include "support/brute_force.h"

namespace kvcc {
namespace {

struct Knobs {
  bool neighbor_sweep;
  bool group_sweep;
  bool sparse_certificate;
  bool distance_order;
  bool maintain_side_vertices;
  bool phase2_common_neighbor_skip;
  std::uint32_t degree_cap;
};

class OptionsMatrixTest : public ::testing::TestWithParam<Knobs> {};

std::string KnobsName(const ::testing::TestParamInfo<Knobs>& info) {
  const Knobs& knobs = info.param;
  std::string name;
  name += knobs.neighbor_sweep ? "Ns" : "ns";
  name += knobs.group_sweep ? "Gs" : "gs";
  name += knobs.sparse_certificate ? "Sc" : "sc";
  name += knobs.distance_order ? "Do" : "do";
  name += knobs.maintain_side_vertices ? "Mv" : "mv";
  name += knobs.phase2_common_neighbor_skip ? "P2" : "p2";
  name += "cap" + std::to_string(knobs.degree_cap);
  return name;
}

TEST_P(OptionsMatrixTest, MatchesBruteForce) {
  const Knobs& knobs = GetParam();
  KvccOptions options;
  options.neighbor_sweep = knobs.neighbor_sweep;
  options.group_sweep = knobs.group_sweep;
  options.sparse_certificate = knobs.sparse_certificate;
  options.distance_order = knobs.distance_order;
  options.maintain_side_vertices = knobs.maintain_side_vertices;
  options.phase2_common_neighbor_skip = knobs.phase2_common_neighbor_skip;
  options.side_vertex_degree_cap = knobs.degree_cap;

  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Graph g = kvcc::testing::RandomConnectedGraph(11, 26, seed);
    for (std::uint32_t k = 2; k <= 4; ++k) {
      const auto expected = kvcc::testing::BruteKVccs(g, k);
      const auto result = EnumerateKVccs(g, k, options);
      EXPECT_EQ(result.components, expected)
          << "seed=" << seed << " k=" << k;
      EXPECT_EQ(result.stats.certificate_cut_fallbacks, 0u);
    }
  }
}

// Execution-dimension sweep for the probe engine: the decomposition must
// be byte-identical to the brute-force set for every cut_oracle x thread
// count x intra-cut-parallelism combination — oracles are exact engines
// and the parallel paths replay the serial decision sequence.
TEST(CutOracleMatrixTest, OracleTimesThreadsTimesIntraCutMatchesBruteForce) {
  for (std::uint64_t seed : {2ull, 5ull, 9ull}) {
    const Graph g = kvcc::testing::RandomConnectedGraph(11, 26, seed);
    for (std::uint32_t k = 2; k <= 4; ++k) {
      const auto expected = kvcc::testing::BruteKVccs(g, k);
      for (CutOracleKind kind :
           {CutOracleKind::kDinic, CutOracleKind::kLocalVC,
            CutOracleKind::kHybrid}) {
        for (std::uint32_t threads : {1u, 2u, 8u}) {
          for (const bool intra_cut : {false, true}) {
            KvccOptions options = KvccOptions::VcceStar();
            options.cut_oracle = kind;
            options.num_threads = threads;
            options.intra_cut_parallelism = intra_cut;
            const auto result = EnumerateKVccs(g, k, options);
            EXPECT_EQ(result.components, expected)
                << "seed=" << seed << " k=" << k
                << " oracle=" << CutOracleKindName(kind)
                << " threads=" << threads << " intra_cut=" << intra_cut;
            EXPECT_EQ(result.stats.certificate_cut_fallbacks, 0u);
          }
        }
      }
    }
  }
}

// All 2^4 combinations of the two sweeps x certificate x ordering, with
// the remaining knobs at both extremes on the diagonal.
INSTANTIATE_TEST_SUITE_P(
    AllKnobCombinations, OptionsMatrixTest,
    ::testing::Values(
        Knobs{false, false, false, false, false, false, 0},
        Knobs{false, false, false, true, false, false, 0},
        Knobs{false, false, true, false, false, false, 0},
        Knobs{false, false, true, true, false, false, 0},
        Knobs{false, true, false, false, false, false, 0},
        Knobs{false, true, false, true, false, false, 0},
        Knobs{false, true, true, false, false, false, 0},
        Knobs{false, true, true, true, false, false, 0},
        Knobs{true, false, false, false, true, false, 0},
        Knobs{true, false, false, true, false, true, 0},
        Knobs{true, false, true, false, true, true, 0},
        Knobs{true, false, true, true, true, true, 0},
        Knobs{true, true, false, false, false, false, 0},
        Knobs{true, true, false, true, true, false, 0},
        Knobs{true, true, true, false, false, true, 0},
        Knobs{true, true, true, true, true, true, 0},
        // Degree caps: a tiny cap (heavy under-detection) and cap 1.
        Knobs{true, true, true, true, true, true, 2},
        Knobs{true, true, true, true, false, true, 1}),
    KnobsName);

}  // namespace
}  // namespace kvcc
