// KvccEngine: a batch of (graph, k) jobs on one shared scheduler must give
// every job a result byte-identical to a serial per-call EnumerateKVccs —
// for every worker count, submission order, and interleaving — because
// subproblem tasks are pure functions of their input and each job's merged
// output is canonically sorted.

#include "kvcc/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "gen/fixtures.h"
#include "gen/planted_vcc.h"
#include "kvcc/hierarchy.h"
#include "kvcc/kvcc_enum.h"
#include "support/brute_force.h"

namespace kvcc {
namespace {

const std::vector<unsigned> kWorkerCounts = {1, 2, 8};

struct TestJob {
  Graph graph;
  std::uint32_t k = 0;
  KvccOptions options;
};

/// A mixed bag of jobs: different graphs, ks, and option presets, several
/// sharing a graph shape so concurrent jobs exercise overlapping scratch
/// reuse patterns.
std::vector<TestJob> MakeJobMix() {
  std::vector<TestJob> jobs;

  const Figure1Fixture fig1 = MakeFigure1Graph();
  jobs.push_back({fig1.graph, 4, KvccOptions::VcceStar()});
  jobs.push_back({fig1.graph, 3, KvccOptions::VcceN()});

  PlantedVccConfig config;
  config.num_blocks = 5;
  config.block_size_min = 16;
  config.block_size_max = 24;
  config.connectivity = 7;
  config.overlap = 2;
  config.bridge_edges = 1;
  config.seed = 41;
  jobs.push_back({GeneratePlantedVcc(config).graph, 7,
                  KvccOptions::VcceStar()});
  config.seed = 42;
  config.ring = true;
  jobs.push_back({GeneratePlantedVcc(config).graph, 7,
                  KvccOptions::VcceG()});

  jobs.push_back({TwoCliquesSharing(6, 2), 4, KvccOptions::Vcce()});
  jobs.push_back({PetersenGraph(), 3, KvccOptions::VcceStar()});
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    jobs.push_back({kvcc::testing::RandomConnectedGraph(14, 30, seed), 3,
                    KvccOptions::VcceStar()});
  }
  return jobs;
}

std::vector<KvccResult> SerialReference(const std::vector<TestJob>& jobs) {
  std::vector<KvccResult> reference;
  reference.reserve(jobs.size());
  for (const TestJob& job : jobs) {
    KvccOptions options = job.options;
    options.num_threads = 1;
    reference.push_back(EnumerateKVccs(job.graph, job.k, options));
  }
  return reference;
}

void ExpectSameStats(const KvccStats& a, const KvccStats& b,
                     const std::string& context) {
  EXPECT_EQ(a.kvccs_found, b.kvccs_found) << context;
  EXPECT_EQ(a.global_cut_calls, b.global_cut_calls) << context;
  EXPECT_EQ(a.overlap_partitions, b.overlap_partitions) << context;
  EXPECT_EQ(a.loc_cut_flow_calls, b.loc_cut_flow_calls) << context;
  EXPECT_EQ(a.Phase1Total(), b.Phase1Total()) << context;
  EXPECT_EQ(a.phase2_pairs_tested, b.phase2_pairs_tested) << context;
  EXPECT_EQ(a.certificate_cut_fallbacks, b.certificate_cut_fallbacks)
      << context;
}

TEST(KvccEngineTest, BatchMatchesSerialPerCallForEveryWorkerCount) {
  const std::vector<TestJob> jobs = MakeJobMix();
  const std::vector<KvccResult> reference = SerialReference(jobs);

  for (unsigned workers : kWorkerCounts) {
    KvccEngine engine(workers);
    std::vector<KvccEngine::JobId> ids;
    for (const TestJob& job : jobs) {
      ids.push_back(engine.Submit(job.graph, job.k, job.options));
    }
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const KvccResult result = engine.Wait(ids[i]);
      const std::string context =
          "workers=" + std::to_string(workers) + " job=" + std::to_string(i);
      EXPECT_EQ(result.components, reference[i].components) << context;
      ExpectSameStats(result.stats, reference[i].stats, context);
    }
  }
}

TEST(KvccEngineTest, SubmissionOrderDoesNotChangePerJobResults) {
  const std::vector<TestJob> jobs = MakeJobMix();
  const std::vector<KvccResult> reference = SerialReference(jobs);

  // Three submission orders: forward, reverse, interleaved from the middle.
  std::vector<std::vector<std::size_t>> orders;
  std::vector<std::size_t> forward(jobs.size());
  std::iota(forward.begin(), forward.end(), 0);
  orders.push_back(forward);
  std::vector<std::size_t> reverse = forward;
  std::reverse(reverse.begin(), reverse.end());
  orders.push_back(reverse);
  std::vector<std::size_t> mixed;
  for (std::size_t lo = 0, hi = jobs.size(); lo < hi;) {
    mixed.push_back(lo++);
    if (lo < hi) mixed.push_back(--hi);
  }
  orders.push_back(mixed);

  for (unsigned workers : kWorkerCounts) {
    for (std::size_t o = 0; o < orders.size(); ++o) {
      KvccEngine engine(workers);
      std::vector<KvccEngine::JobId> ids(jobs.size());
      for (std::size_t j : orders[o]) {
        ids[j] = engine.Submit(jobs[j].graph, jobs[j].k, jobs[j].options);
      }
      // Also wait out of submission order.
      for (std::size_t i = jobs.size(); i-- > 0;) {
        const KvccResult result = engine.Wait(ids[i]);
        EXPECT_EQ(result.components, reference[i].components)
            << "workers=" << workers << " order=" << o << " job=" << i;
      }
    }
  }
}

TEST(KvccEngineTest, RunBatchReturnsResultsInSpecOrder) {
  const std::vector<TestJob> jobs = MakeJobMix();
  const std::vector<KvccResult> reference = SerialReference(jobs);
  std::vector<EngineJobSpec> specs;
  for (const TestJob& job : jobs) {
    specs.push_back({&job.graph, job.k, job.options});
  }
  KvccEngine engine(4);
  const std::vector<KvccResult> results = engine.RunBatch(specs);
  ASSERT_EQ(results.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(results[i].components, reference[i].components) << "job=" << i;
  }
}

TEST(KvccEngineTest, WarmScratchGivesIdenticalResultsAcrossRepeats) {
  // The steady-state path (worker scratch already grown) must produce the
  // same bytes as the cold first run.
  const Figure1Fixture fig1 = MakeFigure1Graph();
  KvccEngine engine(2);
  const KvccResult first = engine.Wait(engine.Submit(fig1.graph, 4));
  EXPECT_EQ(first.components, fig1.expected_vccs);
  for (int repeat = 0; repeat < 5; ++repeat) {
    const KvccResult warm = engine.Wait(engine.Submit(fig1.graph, 4));
    EXPECT_EQ(warm.components, first.components) << "repeat=" << repeat;
    ExpectSameStats(warm.stats, first.stats,
                    "repeat=" + std::to_string(repeat));
  }
}

TEST(KvccEngineTest, MixedSizeJobsInterleaveWithoutCrosstalk) {
  // Jobs of very different sizes in flight at once: scratch rebinding from
  // a large subgraph down to a tiny one (and back) must not leak state
  // between jobs. Runs several rounds on one engine to hit warm buffers.
  PlantedVccConfig big;
  big.num_blocks = 7;
  big.block_size_min = 20;
  big.block_size_max = 32;
  big.connectivity = 9;
  big.overlap = 2;
  big.bridge_edges = 2;
  big.seed = 7;
  const PlantedVccGraph planted = GeneratePlantedVcc(big);
  const Graph small = TwoCliquesSharing(5, 1);

  KvccOptions serial;
  serial.num_threads = 1;
  const KvccResult big_ref =
      EnumerateKVccs(planted.graph, planted.max_connected_k, serial);
  const KvccResult small_ref = EnumerateKVccs(small, 3, serial);

  KvccEngine engine(4);
  for (int round = 0; round < 3; ++round) {
    const KvccEngine::JobId big_id =
        engine.Submit(planted.graph, planted.max_connected_k);
    const KvccEngine::JobId small_id = engine.Submit(small, 3);
    const KvccEngine::JobId big_id2 =
        engine.Submit(planted.graph, planted.max_connected_k);
    EXPECT_EQ(engine.Wait(small_id).components, small_ref.components);
    EXPECT_EQ(engine.Wait(big_id).components, big_ref.components);
    EXPECT_EQ(engine.Wait(big_id2).components, big_ref.components);
  }
}

TEST(KvccEngineTest, SmallJobCompletesWhileLargeJobInFlight) {
  // Fairness: root tasks seed round-robin across the worker deques
  // (SubmitShared), so a small latency-sensitive job never queues behind a
  // huge job's whole recursion subtree. The big job here is sized to run
  // for a long multiple of the small job's latency; the small job's Wait
  // must return while the big one is still in flight.
  PlantedVccConfig big;
  big.num_blocks = 10;
  big.block_size_min = 26;
  big.block_size_max = 40;
  big.connectivity = 12;
  big.overlap = 2;
  big.bridge_edges = 2;
  big.seed = 5;
  const PlantedVccGraph planted = GeneratePlantedVcc(big);
  const Graph small = TwoCliquesSharing(5, 1);

  KvccOptions serial;
  serial.num_threads = 1;
  const KvccResult small_ref = EnumerateKVccs(small, 3, serial);

  KvccEngine engine(2);
  std::atomic<bool> big_done{false};
  const KvccEngine::JobId big_id =
      engine.Submit(planted.graph, planted.max_connected_k);
  const KvccEngine::JobId small_id = engine.Submit(small, 3);
  std::thread big_waiter([&] {
    engine.Wait(big_id);
    big_done.store(true);
  });
  const KvccResult small_result = engine.Wait(small_id);
  const bool small_finished_first = !big_done.load();
  big_waiter.join();
  EXPECT_EQ(small_result.components, small_ref.components);
  EXPECT_TRUE(small_finished_first)
      << "small job waited for the large job's subtree";
}

TEST(KvccEngineTest, SubmitRejectsKZero) {
  const Graph g = CompleteGraph(4);
  KvccEngine engine(1);
  EXPECT_THROW(engine.Submit(g, 0), std::invalid_argument);
}

TEST(KvccEngineTest, WaitRejectsUnknownJobId) {
  KvccEngine engine(1);
  EXPECT_THROW(engine.Wait(123), std::out_of_range);
}

TEST(KvccEngineTest, WaitConsumesTheTicket) {
  // Wait reclaims the job's bookkeeping (a long-lived engine must not
  // accumulate state per served job), so a second Wait on the same id
  // throws instead of returning stale data.
  const Figure1Fixture fig1 = MakeFigure1Graph();
  KvccEngine engine(2);
  const KvccEngine::JobId id = engine.Submit(fig1.graph, 4);
  EXPECT_EQ(engine.Wait(id).components, fig1.expected_vccs);
  EXPECT_THROW(engine.Wait(id), std::out_of_range);
}

TEST(KvccEngineTest, DestructorDrainsUnwaitedJobs) {
  // Submitting without waiting must not hang or crash the destructor.
  const Figure1Fixture fig1 = MakeFigure1Graph();
  KvccEngine engine(2);
  for (int i = 0; i < 4; ++i) engine.Submit(fig1.graph, 4);
  // Engine goes out of scope with jobs potentially still running.
}

}  // namespace
}  // namespace kvcc
