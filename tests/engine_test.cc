// KvccEngine: a batch of (graph, k) jobs on one shared scheduler must give
// every job a result byte-identical to a serial per-call EnumerateKVccs —
// for every worker count, submission order, and interleaving — because
// subproblem tasks are pure functions of their input and each job's merged
// output is canonically sorted.

#include "kvcc/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "gen/fixtures.h"
#include "gen/planted_vcc.h"
#include "kvcc/hierarchy.h"
#include "kvcc/job_control.h"
#include "kvcc/kvcc_enum.h"
#include "kvcc/stream.h"
#include "support/brute_force.h"
#include "util/timer.h"

namespace kvcc {
namespace {

const std::vector<unsigned> kWorkerCounts = {1, 2, 8};

struct TestJob {
  Graph graph;
  std::uint32_t k = 0;
  KvccOptions options;
};

/// A mixed bag of jobs: different graphs, ks, and option presets, several
/// sharing a graph shape so concurrent jobs exercise overlapping scratch
/// reuse patterns.
std::vector<TestJob> MakeJobMix() {
  std::vector<TestJob> jobs;

  const Figure1Fixture fig1 = MakeFigure1Graph();
  jobs.push_back({fig1.graph, 4, KvccOptions::VcceStar()});
  jobs.push_back({fig1.graph, 3, KvccOptions::VcceN()});

  PlantedVccConfig config;
  config.num_blocks = 5;
  config.block_size_min = 16;
  config.block_size_max = 24;
  config.connectivity = 7;
  config.overlap = 2;
  config.bridge_edges = 1;
  config.seed = 41;
  jobs.push_back({GeneratePlantedVcc(config).graph, 7,
                  KvccOptions::VcceStar()});
  config.seed = 42;
  config.ring = true;
  jobs.push_back({GeneratePlantedVcc(config).graph, 7,
                  KvccOptions::VcceG()});

  jobs.push_back({TwoCliquesSharing(6, 2), 4, KvccOptions::Vcce()});
  jobs.push_back({PetersenGraph(), 3, KvccOptions::VcceStar()});
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    jobs.push_back({kvcc::testing::RandomConnectedGraph(14, 30, seed), 3,
                    KvccOptions::VcceStar()});
  }
  return jobs;
}

std::vector<KvccResult> SerialReference(const std::vector<TestJob>& jobs) {
  std::vector<KvccResult> reference;
  reference.reserve(jobs.size());
  for (const TestJob& job : jobs) {
    KvccOptions options = job.options;
    options.num_threads = 1;
    reference.push_back(EnumerateKVccs(job.graph, job.k, options));
  }
  return reference;
}

void ExpectSameStats(const KvccStats& a, const KvccStats& b,
                     const std::string& context) {
  EXPECT_EQ(a.kvccs_found, b.kvccs_found) << context;
  EXPECT_EQ(a.global_cut_calls, b.global_cut_calls) << context;
  EXPECT_EQ(a.overlap_partitions, b.overlap_partitions) << context;
  EXPECT_EQ(a.loc_cut_flow_calls, b.loc_cut_flow_calls) << context;
  EXPECT_EQ(a.Phase1Total(), b.Phase1Total()) << context;
  EXPECT_EQ(a.phase2_pairs_tested, b.phase2_pairs_tested) << context;
  EXPECT_EQ(a.certificate_cut_fallbacks, b.certificate_cut_fallbacks)
      << context;
}

TEST(KvccEngineTest, BatchMatchesSerialPerCallForEveryWorkerCount) {
  const std::vector<TestJob> jobs = MakeJobMix();
  const std::vector<KvccResult> reference = SerialReference(jobs);

  for (unsigned workers : kWorkerCounts) {
    KvccEngine engine(workers);
    std::vector<KvccEngine::JobId> ids;
    for (const TestJob& job : jobs) {
      ids.push_back(engine.Submit(job.graph, job.k, job.options));
    }
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const KvccResult result = engine.Wait(ids[i]);
      const std::string context =
          "workers=" + std::to_string(workers) + " job=" + std::to_string(i);
      EXPECT_EQ(result.components, reference[i].components) << context;
      ExpectSameStats(result.stats, reference[i].stats, context);
    }
  }
}

TEST(KvccEngineTest, SubmissionOrderDoesNotChangePerJobResults) {
  const std::vector<TestJob> jobs = MakeJobMix();
  const std::vector<KvccResult> reference = SerialReference(jobs);

  // Three submission orders: forward, reverse, interleaved from the middle.
  std::vector<std::vector<std::size_t>> orders;
  std::vector<std::size_t> forward(jobs.size());
  std::iota(forward.begin(), forward.end(), 0);
  orders.push_back(forward);
  std::vector<std::size_t> reverse = forward;
  std::reverse(reverse.begin(), reverse.end());
  orders.push_back(reverse);
  std::vector<std::size_t> mixed;
  for (std::size_t lo = 0, hi = jobs.size(); lo < hi;) {
    mixed.push_back(lo++);
    if (lo < hi) mixed.push_back(--hi);
  }
  orders.push_back(mixed);

  for (unsigned workers : kWorkerCounts) {
    for (std::size_t o = 0; o < orders.size(); ++o) {
      KvccEngine engine(workers);
      std::vector<KvccEngine::JobId> ids(jobs.size());
      for (std::size_t j : orders[o]) {
        ids[j] = engine.Submit(jobs[j].graph, jobs[j].k, jobs[j].options);
      }
      // Also wait out of submission order.
      for (std::size_t i = jobs.size(); i-- > 0;) {
        const KvccResult result = engine.Wait(ids[i]);
        EXPECT_EQ(result.components, reference[i].components)
            << "workers=" << workers << " order=" << o << " job=" << i;
      }
    }
  }
}

TEST(KvccEngineTest, RunBatchReturnsResultsInSpecOrder) {
  const std::vector<TestJob> jobs = MakeJobMix();
  const std::vector<KvccResult> reference = SerialReference(jobs);
  std::vector<EngineJobSpec> specs;
  for (const TestJob& job : jobs) {
    specs.push_back({&job.graph, job.k, job.options});
  }
  KvccEngine engine(4);
  const std::vector<KvccResult> results = engine.RunBatch(specs);
  ASSERT_EQ(results.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(results[i].components, reference[i].components) << "job=" << i;
  }
}

TEST(KvccEngineTest, WarmScratchGivesIdenticalResultsAcrossRepeats) {
  // The steady-state path (worker scratch already grown) must produce the
  // same bytes as the cold first run.
  const Figure1Fixture fig1 = MakeFigure1Graph();
  KvccEngine engine(2);
  const KvccResult first = engine.Wait(engine.Submit(fig1.graph, 4));
  EXPECT_EQ(first.components, fig1.expected_vccs);
  for (int repeat = 0; repeat < 5; ++repeat) {
    const KvccResult warm = engine.Wait(engine.Submit(fig1.graph, 4));
    EXPECT_EQ(warm.components, first.components) << "repeat=" << repeat;
    ExpectSameStats(warm.stats, first.stats,
                    "repeat=" + std::to_string(repeat));
  }
}

TEST(KvccEngineTest, MixedSizeJobsInterleaveWithoutCrosstalk) {
  // Jobs of very different sizes in flight at once: scratch rebinding from
  // a large subgraph down to a tiny one (and back) must not leak state
  // between jobs. Runs several rounds on one engine to hit warm buffers.
  PlantedVccConfig big;
  big.num_blocks = 7;
  big.block_size_min = 20;
  big.block_size_max = 32;
  big.connectivity = 9;
  big.overlap = 2;
  big.bridge_edges = 2;
  big.seed = 7;
  const PlantedVccGraph planted = GeneratePlantedVcc(big);
  const Graph small = TwoCliquesSharing(5, 1);

  KvccOptions serial;
  serial.num_threads = 1;
  const KvccResult big_ref =
      EnumerateKVccs(planted.graph, planted.max_connected_k, serial);
  const KvccResult small_ref = EnumerateKVccs(small, 3, serial);

  KvccEngine engine(4);
  for (int round = 0; round < 3; ++round) {
    const KvccEngine::JobId big_id =
        engine.Submit(planted.graph, planted.max_connected_k);
    const KvccEngine::JobId small_id = engine.Submit(small, 3);
    const KvccEngine::JobId big_id2 =
        engine.Submit(planted.graph, planted.max_connected_k);
    EXPECT_EQ(engine.Wait(small_id).components, small_ref.components);
    EXPECT_EQ(engine.Wait(big_id).components, big_ref.components);
    EXPECT_EQ(engine.Wait(big_id2).components, big_ref.components);
  }
}

TEST(KvccEngineTest, SmallJobCompletesWhileLargeJobInFlight) {
  // Fairness: root tasks seed round-robin across the worker deques
  // (SubmitShared), so a small latency-sensitive job never queues behind a
  // huge job's whole recursion subtree. The big job here is sized to run
  // for a long multiple of the small job's latency; the small job's Wait
  // must return while the big one is still in flight.
  PlantedVccConfig big;
  big.num_blocks = 10;
  big.block_size_min = 26;
  big.block_size_max = 40;
  big.connectivity = 12;
  big.overlap = 2;
  big.bridge_edges = 2;
  big.seed = 5;
  const PlantedVccGraph planted = GeneratePlantedVcc(big);
  const Graph small = TwoCliquesSharing(5, 1);

  KvccOptions serial;
  serial.num_threads = 1;
  const KvccResult small_ref = EnumerateKVccs(small, 3, serial);

  KvccEngine engine(2);
  std::atomic<bool> big_done{false};
  const KvccEngine::JobId big_id =
      engine.Submit(planted.graph, planted.max_connected_k);
  const KvccEngine::JobId small_id = engine.Submit(small, 3);
  std::thread big_waiter([&] {
    engine.Wait(big_id);
    big_done.store(true);
  });
  const KvccResult small_result = engine.Wait(small_id);
  const bool small_finished_first = !big_done.load();
  big_waiter.join();
  EXPECT_EQ(small_result.components, small_ref.components);
  EXPECT_TRUE(small_finished_first)
      << "small job waited for the large job's subtree";
}

TEST(KvccEngineTest, SubmitRejectsKZero) {
  const Graph g = CompleteGraph(4);
  KvccEngine engine(1);
  EXPECT_THROW(engine.Submit(g, 0), std::invalid_argument);
}

TEST(KvccEngineTest, WaitRejectsUnknownJobId) {
  KvccEngine engine(1);
  EXPECT_THROW(engine.Wait(123), std::out_of_range);
}

TEST(KvccEngineTest, WaitConsumesTheTicket) {
  // Wait reclaims the job's bookkeeping (a long-lived engine must not
  // accumulate state per served job), so a second Wait on the same id
  // throws instead of returning stale data.
  const Figure1Fixture fig1 = MakeFigure1Graph();
  KvccEngine engine(2);
  const KvccEngine::JobId id = engine.Submit(fig1.graph, 4);
  EXPECT_EQ(engine.Wait(id).components, fig1.expected_vccs);
  EXPECT_THROW(engine.Wait(id), std::out_of_range);
}

TEST(KvccEngineTest, DestructorDrainsUnwaitedJobs) {
  // Submitting without waiting must not hang or crash the destructor.
  const Figure1Fixture fig1 = MakeFigure1Graph();
  KvccEngine engine(2);
  for (int i = 0; i < 4; ++i) engine.Submit(fig1.graph, 4);
  // Engine goes out of scope with jobs potentially still running.
}

// ---------------------------------------------------------------------------
// Streaming delivery.
// ---------------------------------------------------------------------------

/// Accumulates every delivery for later inspection. Sink calls are
/// serialized by the engine and happen-before Wait() returns, so the
/// post-Wait reads below need no synchronization of their own.
class CollectingSink : public ComponentSink {
 public:
  void OnComponent(StreamedComponent component) override {
    components.push_back(std::move(component));
  }
  void OnComplete(const KvccStats& final_stats) override {
    stats = final_stats;
    complete = true;
  }
  void OnError(std::exception_ptr e) override { error = e; }

  std::vector<StreamedComponent> components;
  KvccStats stats;
  bool complete = false;
  std::exception_ptr error;
};

/// The streamed components' vertex lists, sorted canonically — the bytes
/// that must equal the buffered KvccResult::components.
std::vector<std::vector<VertexId>> SortedMultiset(
    const std::vector<StreamedComponent>& streamed) {
  std::vector<std::vector<VertexId>> multiset;
  multiset.reserve(streamed.size());
  for (const StreamedComponent& c : streamed) multiset.push_back(c.vertices);
  std::sort(multiset.begin(), multiset.end());
  return multiset;
}

TEST(KvccEngineStreamingTest, MultisetMatchesWaitForEveryWorkerCount) {
  const std::vector<TestJob> jobs = MakeJobMix();
  const std::vector<KvccResult> reference = SerialReference(jobs);

  for (unsigned workers : kWorkerCounts) {
    KvccEngine engine(workers);
    std::vector<std::shared_ptr<CollectingSink>> sinks;
    std::vector<KvccEngine::JobId> ids;
    for (const TestJob& job : jobs) {
      sinks.push_back(std::make_shared<CollectingSink>());
      ids.push_back(
          engine.SubmitStreaming(job.graph, job.k, sinks.back(), job.options));
    }
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const KvccResult waited = engine.Wait(ids[i]);
      const std::string context =
          "workers=" + std::to_string(workers) + " job=" + std::to_string(i);
      // Components were streamed, not buffered; stats still flow through
      // Wait and through OnComplete identically.
      EXPECT_TRUE(waited.components.empty()) << context;
      EXPECT_TRUE(sinks[i]->complete) << context;
      ExpectSameStats(waited.stats, reference[i].stats, context);
      ExpectSameStats(sinks[i]->stats, reference[i].stats, context);
      EXPECT_EQ(SortedMultiset(sinks[i]->components),
                reference[i].components)
          << context;
      // Sequence numbers are a gap-free per-job 0..n-1 in delivery order.
      for (std::size_t s = 0; s < sinks[i]->components.size(); ++s) {
        EXPECT_EQ(sinks[i]->components[s].sequence, s) << context;
      }
    }
  }
}

TEST(KvccEngineStreamingTest, StableOrderReproducesSerialEmissionOrder) {
  // The serial streaming path *defines* the serial emission order; with
  // stable_order every worker count must reproduce it exactly — order,
  // bytes, and sequence numbers — via the reorder buffer.
  std::vector<TestJob> jobs = MakeJobMix();
  for (const TestJob& job : jobs) {
    CollectingSink serial;
    KvccOptions serial_options = job.options;
    serial_options.num_threads = 1;
    EnumerateKVccsStreaming(job.graph, job.k, serial, serial_options);
    ASSERT_TRUE(serial.complete);

    for (unsigned workers : kWorkerCounts) {
      KvccEngine engine(workers);
      auto sink = std::make_shared<CollectingSink>();
      KvccOptions options = job.options;
      options.stable_order = true;
      const KvccResult waited =
          engine.Wait(engine.SubmitStreaming(job.graph, job.k, sink, options));
      const std::string context = "workers=" + std::to_string(workers);
      ASSERT_EQ(sink->components.size(), serial.components.size()) << context;
      for (std::size_t s = 0; s < sink->components.size(); ++s) {
        EXPECT_EQ(sink->components[s].sequence, serial.components[s].sequence)
            << context << " position=" << s;
        EXPECT_EQ(sink->components[s].vertices, serial.components[s].vertices)
            << context << " position=" << s;
      }
      ExpectSameStats(waited.stats, serial.stats, context);
    }
  }
}

TEST(KvccEngineStreamingTest, ResultStreamDeliversEverythingThenStats) {
  const Figure1Fixture fig1 = MakeFigure1Graph();
  const KvccResult reference = EnumerateKVccs(fig1.graph, 4);

  KvccEngine engine(2);
  ResultStream stream = engine.SubmitStream(fig1.graph, 4);
  std::vector<StreamedComponent> streamed;
  while (std::optional<StreamedComponent> c = stream.Next()) {
    streamed.push_back(std::move(*c));
  }
  EXPECT_EQ(SortedMultiset(streamed), reference.components);
  ExpectSameStats(stream.Stats(), reference.stats, "pull stream");
  // Exhausted stream keeps reporting end-of-stream.
  EXPECT_FALSE(stream.Next().has_value());
}

TEST(KvccEngineStreamingTest, ResultStreamStatsBeforeCompletionThrows) {
  // Deterministic incompleteness: a 1-worker engine whose only worker is
  // parked inside a gating sink call, so the stream job submitted behind
  // it provably cannot have completed when Stats() is queried.
  class GateSink : public ComponentSink {
   public:
    void OnComponent(StreamedComponent) override {
      std::unique_lock<std::mutex> lock(mutex_);
      reached_ = true;
      cv_.notify_all();
      cv_.wait(lock, [&] { return released_; });
    }
    void OnComplete(const KvccStats&) override {}
    void WaitUntilBlocking() {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] { return reached_; });
    }
    void Release() {
      std::lock_guard<std::mutex> lock(mutex_);
      released_ = true;
      cv_.notify_all();
    }

   private:
    std::mutex mutex_;
    std::condition_variable cv_;
    bool reached_ = false;
    bool released_ = false;
  };

  const Figure1Fixture fig1 = MakeFigure1Graph();
  KvccEngine engine(1);
  auto gate = std::make_shared<GateSink>();
  const KvccEngine::JobId gated_id =
      engine.SubmitStreaming(fig1.graph, 4, gate);
  gate->WaitUntilBlocking();

  ResultStream stream = engine.SubmitStream(fig1.graph, 4);
  EXPECT_THROW(stream.Stats(), std::logic_error);

  gate->Release();
  engine.Wait(gated_id);
  while (stream.Next().has_value()) {
  }
  EXPECT_NO_THROW(stream.Stats());
}

TEST(KvccEngineStreamingTest, SinkThrowPropagatesToWaitAndJobDrains) {
  class ThrowingSink : public ComponentSink {
   public:
    void OnComponent(StreamedComponent) override {
      throw std::runtime_error("sink rejected component");
    }
    void OnComplete(const KvccStats&) override { completed = true; }
    void OnError(std::exception_ptr e) override { error = e; }
    bool completed = false;
    std::exception_ptr error;
  };

  const Figure1Fixture fig1 = MakeFigure1Graph();
  for (unsigned workers : kWorkerCounts) {
    KvccEngine engine(workers);
    auto sink = std::make_shared<ThrowingSink>();
    const KvccEngine::JobId id = engine.SubmitStreaming(fig1.graph, 4, sink);
    EXPECT_THROW(engine.Wait(id), std::runtime_error)
        << "workers=" << workers;
    EXPECT_FALSE(sink->completed) << "workers=" << workers;
    EXPECT_TRUE(sink->error != nullptr) << "workers=" << workers;
    // A poisoned streaming job must not poison the engine.
    EXPECT_EQ(engine.Wait(engine.Submit(fig1.graph, 4)).components,
              fig1.expected_vccs)
        << "workers=" << workers;
  }
}

TEST(KvccEngineStreamingTest, SerialStreamingSinkThrowPropagatesImmediately) {
  class ThrowOnSecondSink : public ComponentSink {
   public:
    void OnComponent(StreamedComponent) override {
      if (++delivered == 2) throw std::runtime_error("stop after one");
    }
    void OnComplete(const KvccStats&) override { completed = true; }
    void OnError(std::exception_ptr e) override { error = e; }
    int delivered = 0;
    bool completed = false;
    std::exception_ptr error;
  };

  const Figure1Fixture fig1 = MakeFigure1Graph();
  ThrowOnSecondSink sink;
  KvccOptions serial;
  serial.num_threads = 1;
  EXPECT_THROW(EnumerateKVccsStreaming(fig1.graph, 4, sink, serial),
               std::runtime_error);
  EXPECT_EQ(sink.delivered, 2);
  EXPECT_FALSE(sink.completed);
  EXPECT_TRUE(sink.error != nullptr);
}

TEST(KvccEngineStreamingTest, SerialStreamingMatchesBufferedEnumeration) {
  const std::vector<TestJob> jobs = MakeJobMix();
  for (const TestJob& job : jobs) {
    KvccOptions serial = job.options;
    serial.num_threads = 1;
    CollectingSink sink;
    EnumerateKVccsStreaming(job.graph, job.k, sink, serial);
    ASSERT_TRUE(sink.complete);
    const KvccResult reference = EnumerateKVccs(job.graph, job.k, serial);
    EXPECT_EQ(SortedMultiset(sink.components), reference.components);
    ExpectSameStats(sink.stats, reference.stats, "serial streaming");
  }
}

// ---------------------------------------------------------------------------
// Job control: cooperative cancellation, bounded backpressure streams, and
// latency classes (docs/JOB_CONTROL.md).
// ---------------------------------------------------------------------------

/// A saturating multi-block workload: big enough that its recursion spans
/// many tasks and many components, so there is always work left to cancel.
PlantedVccGraph MakeCancellationWorkload(std::uint64_t seed = 23) {
  PlantedVccConfig config;
  config.num_blocks = 8;
  config.block_size_min = 22;
  config.block_size_max = 34;
  config.connectivity = 9;
  config.overlap = 2;
  config.bridge_edges = 1;
  config.seed = seed;
  return GeneratePlantedVcc(config);
}

/// Collects like CollectingSink but parks the delivering worker inside the
/// first OnComponent call until released — a deterministic window in which
/// the job is provably mid-flight.
class GatedCollectingSink : public ComponentSink {
 public:
  void OnComponent(StreamedComponent component) override {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      components.push_back(std::move(component));
      if (components.size() == 1) {
        reached_ = true;
        cv_.notify_all();
        cv_.wait(lock, [&] { return released_; });
      }
    }
  }
  void OnComplete(const KvccStats& final_stats) override {
    stats = final_stats;
    complete = true;
  }
  void OnError(std::exception_ptr e) override { error = e; }

  void WaitUntilBlocking() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return reached_; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mutex_);
    released_ = true;
    cv_.notify_all();
  }

  std::vector<StreamedComponent> components;
  KvccStats stats;
  bool complete = false;
  std::exception_ptr error;

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool reached_ = false;
  bool released_ = false;
};

TEST(KvccEngineJobControlTest, CancelReportsJobCancelledWithPartialStats) {
  // Deterministic mid-flight cancel: the only worker is parked inside the
  // gated sink when Cancel fires, so the remaining recursion provably
  // exists and must be short-circuited, not drained.
  const PlantedVccGraph planted = MakeCancellationWorkload();
  const KvccResult reference = EnumerateKVccs(planted.graph, 9);
  ASSERT_GT(reference.components.size(), 1u);

  KvccEngine engine(1);
  auto sink = std::make_shared<GatedCollectingSink>();
  const KvccEngine::JobId id =
      engine.SubmitStreaming(planted.graph, 9, sink);
  sink->WaitUntilBlocking();
  EXPECT_TRUE(engine.Cancel(id));
  sink->Release();

  try {
    engine.Wait(id);
    FAIL() << "Wait on a cancelled job must throw JobCancelled";
  } catch (const JobCancelled& cancelled) {
    const KvccStats& partial = cancelled.partial_stats();
    // Work that ran is reported; work that did not run is not.
    EXPECT_GE(partial.kvccs_found, 1u);
    EXPECT_LT(partial.kcore_rounds, reference.stats.kcore_rounds);
    // Something was actually short-circuited, at a task or cut boundary.
    EXPECT_GT(partial.tasks_cancelled + partial.cuts_cancelled, 0u);
  }
  // OnError received the same distinct outcome; OnComplete never fired.
  EXPECT_FALSE(sink->complete);
  ASSERT_TRUE(sink->error != nullptr);
  EXPECT_THROW(std::rethrow_exception(sink->error), JobCancelled);
  // Components delivered before the cancel stay delivered.
  EXPECT_GE(sink->components.size(), 1u);

  // A cancelled job must not poison the engine.
  EXPECT_EQ(engine.Wait(engine.Submit(planted.graph, 9)).components,
            reference.components);
}

TEST(KvccEngineJobControlTest, CancelUnsticksABlockedWait) {
  // The watchdog pattern: thread A blocks in Wait(id), thread B calls
  // Cancel(id) to unstick it. The ticket stays reachable until that Wait
  // *returns*, so the Cancel lands and the waiter comes back with
  // JobCancelled instead of sleeping out the whole job.
  const PlantedVccGraph planted = MakeCancellationWorkload(59);
  KvccEngine engine(1);
  auto sink = std::make_shared<GatedCollectingSink>();
  const KvccEngine::JobId id =
      engine.SubmitStreaming(planted.graph, 9, sink);
  sink->WaitUntilBlocking();  // Job provably mid-flight.

  std::exception_ptr wait_error;
  std::thread waiter([&] {
    try {
      engine.Wait(id);
    } catch (...) {
      wait_error = std::current_exception();
    }
  });
  // Let the waiter claim the ticket and block (correctness does not
  // depend on winning this race — the entry is reachable either way).
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_TRUE(engine.Cancel(id));
  sink->Release();
  waiter.join();
  ASSERT_TRUE(wait_error != nullptr);
  EXPECT_THROW(std::rethrow_exception(wait_error), JobCancelled);
  // The returned Wait consumed the ticket.
  EXPECT_FALSE(engine.Cancel(id));
}

TEST(KvccEngineJobControlTest, CancelUnknownOrConsumedTicketReturnsFalse) {
  const Figure1Fixture fig1 = MakeFigure1Graph();
  KvccEngine engine(1);
  EXPECT_FALSE(engine.Cancel(321));
  const KvccEngine::JobId id = engine.Submit(fig1.graph, 4);
  EXPECT_EQ(engine.Wait(id).components, fig1.expected_vccs);
  EXPECT_FALSE(engine.Cancel(id));  // Ticket consumed by Wait.
}

TEST(KvccEngineJobControlTest, DeadlineCancelsEngineJob) {
  const PlantedVccGraph planted = MakeCancellationWorkload(29);
  KvccEngine engine(2);
  KvccOptions options;
  options.deadline_ms = 1;  // Elapses long before the decomposition can.
  const KvccEngine::JobId id = engine.Submit(planted.graph, 9, options);
  EXPECT_THROW(engine.Wait(id), JobCancelled);

  // A generous deadline changes nothing.
  KvccOptions relaxed;
  relaxed.deadline_ms = 5 * 60 * 1000;
  const KvccResult full =
      engine.Wait(engine.Submit(planted.graph, 9, relaxed));
  EXPECT_EQ(full.components, EnumerateKVccs(planted.graph, 9).components);
}

TEST(KvccEngineJobControlTest, DeadlineCancelsSerialEnumeration) {
  const PlantedVccGraph planted = MakeCancellationWorkload(31);
  KvccOptions options;
  options.num_threads = 1;
  options.deadline_ms = 1;
  try {
    EnumerateKVccs(planted.graph, 9, options);
    FAIL() << "serial run must observe the elapsed deadline";
  } catch (const JobCancelled& cancelled) {
    EXPECT_GT(cancelled.partial_stats().tasks_cancelled +
                  cancelled.partial_stats().cuts_cancelled,
              0u);
  }

  // Serial streaming: OnError gets the JobCancelled, OnComplete never
  // fires, and the call rethrows it.
  CollectingSink sink;
  EXPECT_THROW(EnumerateKVccsStreaming(planted.graph, 9, sink, options),
               JobCancelled);
  EXPECT_FALSE(sink.complete);
  ASSERT_TRUE(sink.error != nullptr);
  EXPECT_THROW(std::rethrow_exception(sink.error), JobCancelled);
}

TEST(KvccEngineJobControlTest, AbandonedStreamReclaimsWorkersPromptly) {
  // ROADMAP gap closed by this PR: abandoning a ResultStream used to let
  // the job run to completion. Now abandonment fires the job's cancel
  // token, so tearing the engine down right after an early abandon must
  // take a small fraction of the job's full runtime — the workers return
  // at the next task / probe boundary instead of draining the recursion.
  const PlantedVccGraph planted = MakeCancellationWorkload(37);

  double full_ms = 0;
  {
    KvccEngine engine(2);
    Timer timer;
    ResultStream stream = engine.SubmitStream(planted.graph, 9);
    std::size_t count = 0;
    while (stream.Next().has_value()) ++count;
    full_ms = timer.ElapsedMillis();
    ASSERT_GT(count, 1u);
  }

  Timer timer;
  {
    KvccEngine engine(2);
    std::optional<ResultStream> stream =
        engine.SubmitStream(planted.graph, 9);
    ASSERT_TRUE(stream->Next().has_value());  // Provably mid-flight.
    timer.Restart();  // Measure abandon -> engine fully drained.
    stream.reset();   // Abandon: fires the job's cancel token.
    // Engine destructor joins the workers here; with cancellation that
    // is bounded by one in-flight probe batch, not the remaining
    // recursion.
  }
  const double abandoned_ms = timer.ElapsedMillis();
  // After one component of an 8-block workload, nearly the whole tree is
  // still outstanding; a full drain would cost close to full_ms. The
  // bounded-wall-clock assertion: reclamation costs at most half of it
  // (in practice a few milliseconds; the slack absorbs sanitizer and CI
  // noise, which scales both sides alike).
  EXPECT_LT(abandoned_ms, full_ms * 0.5)
      << "abandonment drained the recursion instead of cancelling it "
      << "(full run " << full_ms << "ms)";
}

TEST(KvccEngineJobControlTest, BoundedStreamHoldsAtMostLimit) {
  const PlantedVccGraph planted = MakeCancellationWorkload(41);
  const KvccResult reference = EnumerateKVccs(planted.graph, 9);
  ASSERT_GT(reference.components.size(), 3u);
  constexpr std::uint32_t kLimit = 2;

  for (unsigned workers : kWorkerCounts) {
    for (const bool stable : {false, true}) {
      KvccEngine engine(workers);
      KvccOptions options;
      options.stream_buffer_limit = kLimit;
      options.stable_order = stable;
      ResultStream stream = engine.SubmitStream(planted.graph, 9, options);
      const std::string context = "workers=" + std::to_string(workers) +
                                  (stable ? " stable" : " immediate");

      // Let the producer run as far ahead as the bound allows: it must
      // fill the channel to the limit (the job has more components than
      // kLimit) and then block instead of overfilling. Synchronize on
      // the block actually happening via the live counter — the producer
      // is guaranteed to attempt the limit+1-th delivery eventually
      // (more components exist), and nothing is popped until it did, so
      // this poll terminates deterministically with no wall-clock guess.
      while (stream.BackpressureBlocks() == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      EXPECT_EQ(stream.BufferedComponents(), kLimit) << context;
      std::vector<std::vector<VertexId>> streamed;
      while (true) {
        EXPECT_LE(stream.BufferedComponents(), kLimit) << context;
        std::optional<StreamedComponent> c = stream.Next();
        if (!c.has_value()) break;
        streamed.push_back(std::move(c->vertices));
      }
      std::sort(streamed.begin(), streamed.end());
      EXPECT_EQ(streamed, reference.components) << context;
      const KvccStats& stats = stream.Stats();
      EXPECT_LE(stats.stream_peak_buffered, kLimit) << context;
      EXPECT_GT(stats.stream_backpressure_blocks, 0u) << context;
      ExpectSameStats(stats, reference.stats, context);
    }
  }
}

TEST(KvccEngineJobControlTest, DeadlineDuringBackpressureReportsCancelled) {
  // Cancellation observed while the producer is parked on a full bounded
  // channel must surface as JobCancelled through the stream — never as a
  // clean completion silently missing the undeliverable component. The
  // delivered prefix stays valid.
  const PlantedVccGraph planted = MakeCancellationWorkload(61);
  KvccEngine engine(2);
  KvccOptions options;
  options.stream_buffer_limit = 1;
  options.deadline_ms = 300;
  ResultStream stream = engine.SubmitStream(planted.graph, 9, options);
  // Hold off consuming until the producer has (almost certainly) filled
  // the channel and parked; if the deadline instead fires at an earlier
  // task/probe boundary, the outcome below is the same JobCancelled.
  Timer timer;
  while (stream.BackpressureBlocks() == 0 && timer.ElapsedSeconds() < 10) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // Keep the channel full until the deadline has provably fired (plus
  // the producer's 10ms cancellation poll): the parked producer must
  // observe the cancel, not get rescued by an early drain.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  std::size_t delivered = 0;
  try {
    while (stream.Next().has_value()) ++delivered;
    FAIL() << "bounded job outlived a 300ms deadline without reporting "
              "JobCancelled (delivered " << delivered << ")";
  } catch (const JobCancelled&) {
    // Expected: the prefix (possibly empty) was delivered, then the
    // cancelled outcome.
  }
  // The engine stays healthy for the next job.
  const Figure1Fixture fig1 = MakeFigure1Graph();
  EXPECT_EQ(engine.Wait(engine.Submit(fig1.graph, 4)).components,
            fig1.expected_vccs);
}

TEST(KvccEngineJobControlTest, AbandoningBlockedBoundedStreamUnblocks) {
  // A producer parked on a full bounded channel must wake and retire when
  // the consumer walks away — abandonment both drops the queue and
  // cancels the job, so the engine drains promptly.
  const PlantedVccGraph planted = MakeCancellationWorkload(43);
  KvccEngine engine(2);
  {
    KvccOptions options;
    options.stream_buffer_limit = 1;
    ResultStream stream = engine.SubmitStream(planted.graph, 9, options);
    while (stream.BufferedComponents() < 1) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    // Producer is now (or soon will be) blocked; abandon without draining.
  }
  // The engine stays healthy and the workers come back.
  const Figure1Fixture fig1 = MakeFigure1Graph();
  EXPECT_EQ(engine.Wait(engine.Submit(fig1.graph, 4)).components,
            fig1.expected_vccs);
}

TEST(KvccEngineJobControlTest, InteractiveJobOvertakesSaturatingBulkBatch) {
  // Latency classes: with the pool saturated by bulk jobs, an interactive
  // job submitted *after* them must still complete while bulk work is in
  // flight, because every pop prefers the higher class (weighted).
  const Graph small = TwoCliquesSharing(5, 1);
  const KvccResult small_ref = EnumerateKVccs(small, 3);

  std::vector<PlantedVccGraph> bulk_graphs;
  for (std::uint64_t seed = 51; seed < 55; ++seed) {
    bulk_graphs.push_back(MakeCancellationWorkload(seed));
  }

  KvccEngine engine(2);
  KvccOptions bulk;
  bulk.priority = JobPriority::kBulk;
  std::vector<KvccEngine::JobId> bulk_ids;
  for (const PlantedVccGraph& g : bulk_graphs) {
    bulk_ids.push_back(engine.Submit(g.graph, 9, bulk));
  }
  KvccOptions interactive;
  interactive.priority = JobPriority::kInteractive;
  const KvccEngine::JobId fast_id = engine.Submit(small, 3, interactive);

  std::atomic<bool> bulk_all_done{false};
  std::thread bulk_waiter([&] {
    for (KvccEngine::JobId id : bulk_ids) engine.Wait(id);
    bulk_all_done.store(true);
  });
  const KvccResult fast = engine.Wait(fast_id);
  const bool overtook = !bulk_all_done.load();
  bulk_waiter.join();
  EXPECT_EQ(fast.components, small_ref.components);
  EXPECT_TRUE(overtook)
      << "interactive job waited out the whole bulk batch";

  // Priorities shape scheduling only: the bulk results are still
  // byte-identical to serial runs (checked via one representative).
  const KvccResult bulk_ref = EnumerateKVccs(bulk_graphs[0].graph, 9);
  EXPECT_EQ(engine.Wait(engine.Submit(bulk_graphs[0].graph, 9, bulk))
                .components,
            bulk_ref.components);
}

TEST(KvccEngineStreamingTest, AbandoningStreamMidFlightLeavesEngineHealthy) {
  // Dropping a ResultStream while its job is still running must neither
  // block nor corrupt the engine: the job drains on the shared pool and
  // later jobs reuse the same per-worker scratch with identical results.
  PlantedVccConfig config;
  config.num_blocks = 6;
  config.block_size_min = 20;
  config.block_size_max = 30;
  config.connectivity = 8;
  config.overlap = 2;
  config.bridge_edges = 1;
  config.seed = 23;
  const PlantedVccGraph planted = GeneratePlantedVcc(config);
  const KvccResult reference = EnumerateKVccs(planted.graph, 8);

  KvccEngine engine(2);
  {
    ResultStream abandoned_immediately =
        engine.SubmitStream(planted.graph, 8);
  }
  {
    ResultStream abandoned_after_one = engine.SubmitStream(planted.graph, 8);
    abandoned_after_one.Next();
  }
  for (int round = 0; round < 2; ++round) {
    ResultStream stream = engine.SubmitStream(planted.graph, 8);
    std::vector<StreamedComponent> streamed;
    while (std::optional<StreamedComponent> c = stream.Next()) {
      streamed.push_back(std::move(*c));
    }
    EXPECT_EQ(SortedMultiset(streamed), reference.components)
        << "round=" << round;
  }
  EXPECT_EQ(engine.Wait(engine.Submit(planted.graph, 8)).components,
            reference.components);
}

}  // namespace
}  // namespace kvcc
