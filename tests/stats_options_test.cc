#include <gtest/gtest.h>

#include "kvcc/options.h"
#include "kvcc/stats.h"

namespace kvcc {
namespace {

TEST(KvccOptionsTest, PresetsMatchPaperVariants) {
  const KvccOptions vcce = KvccOptions::Vcce();
  EXPECT_FALSE(vcce.neighbor_sweep);
  EXPECT_FALSE(vcce.group_sweep);
  EXPECT_TRUE(vcce.sparse_certificate);  // Certificate is part of Alg. 2.

  const KvccOptions vcce_n = KvccOptions::VcceN();
  EXPECT_TRUE(vcce_n.neighbor_sweep);
  EXPECT_FALSE(vcce_n.group_sweep);

  const KvccOptions vcce_g = KvccOptions::VcceG();
  EXPECT_FALSE(vcce_g.neighbor_sweep);
  EXPECT_TRUE(vcce_g.group_sweep);

  const KvccOptions star = KvccOptions::VcceStar();
  EXPECT_TRUE(star.neighbor_sweep);
  EXPECT_TRUE(star.group_sweep);
}

TEST(KvccOptionsTest, FromVariantName) {
  EXPECT_TRUE(KvccOptions::FromVariantName("VCCE*").neighbor_sweep);
  EXPECT_FALSE(KvccOptions::FromVariantName("VCCE").neighbor_sweep);
  EXPECT_TRUE(KvccOptions::FromVariantName("VCCE-N").neighbor_sweep);
  EXPECT_TRUE(KvccOptions::FromVariantName("VCCE-G").group_sweep);
  EXPECT_THROW(KvccOptions::FromVariantName("nope"), std::invalid_argument);
}

TEST(KvccStatsTest, SharesSumToOne) {
  KvccStats stats;
  stats.phase1_pruned_ns1 = 10;
  stats.phase1_pruned_ns2 = 20;
  stats.phase1_pruned_gs = 30;
  stats.phase1_tested_flow = 25;
  stats.phase1_tested_trivial = 15;
  EXPECT_EQ(stats.Phase1Total(), 100u);
  EXPECT_DOUBLE_EQ(stats.Ns1Share(), 0.10);
  EXPECT_DOUBLE_EQ(stats.Ns2Share(), 0.20);
  EXPECT_DOUBLE_EQ(stats.GsShare(), 0.30);
  EXPECT_DOUBLE_EQ(stats.NonPrunedShare(), 0.40);
}

TEST(KvccStatsTest, EmptyStatsShares) {
  const KvccStats stats;
  EXPECT_DOUBLE_EQ(stats.Ns1Share(), 0.0);
  EXPECT_DOUBLE_EQ(stats.NonPrunedShare(), 0.0);
}

TEST(KvccStatsTest, AddAccumulates) {
  KvccStats a, b;
  a.loc_cut_flow_calls = 5;
  a.kvccs_found = 1;
  b.loc_cut_flow_calls = 7;
  b.overlap_partitions = 2;
  a.Add(b);
  EXPECT_EQ(a.loc_cut_flow_calls, 12u);
  EXPECT_EQ(a.kvccs_found, 1u);
  EXPECT_EQ(a.overlap_partitions, 2u);
}

TEST(KvccStatsTest, ToStringMentionsKeyCounters) {
  KvccStats stats;
  stats.kvccs_found = 3;
  const std::string s = stats.ToString();
  EXPECT_NE(s.find("kvccs=3"), std::string::npos);
  EXPECT_NE(s.find("phase1"), std::string::npos);
}

}  // namespace
}  // namespace kvcc
