// Deterministic in-process protocol tests for kvccd: the full request ->
// admission -> cache -> engine -> stream path over LoopbackEndpoint
// transports. No real sockets and no sleeps anywhere — every "wait until
// the server is stuck" step is the loopback's condition-variable hook
// (WaitUntilPeerBlockedWriting), so the scenarios are reproducible under
// any scheduler and any sanitizer.
#include "server/kvccd.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "gen/fixtures.h"
#include "graph/graph.h"
#include "kvcc/hierarchy.h"
#include "kvcc/kvcc_enum.h"
#include "server/protocol.h"
#include "server/transport.h"

namespace kvcc {
namespace {

using server::KvccdConfig;
using server::KvccdServer;
using server::LoopbackPair;
using server::MakeLoopbackPair;

/// One server plus one loopback connection being served on its own
/// thread. Destroying the harness closes the connection and joins.
class Connection {
 public:
  Connection(KvccdServer& daemon, std::size_t client_to_server_capacity = 0,
             std::size_t server_to_client_capacity = 0)
      : pair_(MakeLoopbackPair(client_to_server_capacity,
                               server_to_client_capacity)),
        thread_([this, &daemon] { daemon.ServeConnection(*pair_.server); }) {}

  ~Connection() { Disconnect(); }

  server::LoopbackEndpoint& client() { return *pair_.client; }

  /// Sends one request line.
  bool Send(const std::string& line) {
    return pair_.client->WriteLine(line);
  }

  /// Reads response lines through the request's terminal line.
  std::vector<std::string> ReadResponse() {
    std::vector<std::string> lines;
    std::string line;
    while (pair_.client->ReadLine(line)) {
      lines.push_back(line);
      if (line.rfind("{\"type\":\"component\"", 0) == 0) continue;
      if (line.rfind("{\"type\":\"progress\"", 0) == 0) continue;
      if (line.rfind("{\"type\":\"level\"", 0) == 0) continue;
      break;
    }
    return lines;
  }

  std::vector<std::string> Roundtrip(const std::string& request) {
    EXPECT_TRUE(Send(request));
    return ReadResponse();
  }

  /// Closes the client end and joins the serving thread.
  void Disconnect() {
    pair_.client->Close();
    if (thread_.joinable()) thread_.join();
  }

 private:
  LoopbackPair pair_;
  std::thread thread_;
};

/// The graph's edges as the request's inline "edges" JSON array.
std::string EdgesJson(const Graph& g) {
  std::string json = "[";
  bool first = true;
  for (const auto& [u, v] : g.Edges()) {
    if (!first) json.push_back(',');
    first = false;
    json += "[" + std::to_string(u) + "," + std::to_string(v) + "]";
  }
  json.push_back(']');
  return json;
}

/// `count` disjoint triangles: count 2-VCCs at k=2, one per triangle.
Graph DisjointTriangles(VertexId count) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId t = 0; t < count; ++t) {
    const VertexId base = 3 * t;
    edges.emplace_back(base, base + 1);
    edges.emplace_back(base + 1, base + 2);
    edges.emplace_back(base, base + 2);
  }
  return Graph::FromEdges(3 * count, edges);
}

/// The exact NDJSON lines a decompose response must contain (no
/// progress requested).
std::vector<std::string> ExpectedDecomposeLines(const Graph& g,
                                                std::uint32_t k) {
  const KvccResult result = EnumerateKVccs(g, k);
  std::vector<std::string> lines;
  for (std::size_t i = 0; i < result.components.size(); ++i) {
    lines.push_back(server::ComponentLine(i, result.components[i]));
  }
  lines.push_back(
      server::DecomposeCompleteLine(k, result.components.size()));
  return lines;
}

TEST(KvccdProtocolTest, PingPongAndStats) {
  KvccdServer daemon;
  Connection conn(daemon);
  EXPECT_EQ(conn.Roundtrip("{\"op\":\"ping\"}"),
            std::vector<std::string>{"{\"type\":\"pong\"}"});
  const std::vector<std::string> stats =
      conn.Roundtrip("{\"op\":\"stats\"}");
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].rfind("{\"type\":\"stats\"", 0), 0u);
}

TEST(KvccdProtocolTest, ParseErrorsKeepConnectionAlive) {
  KvccdServer daemon;
  Connection conn(daemon);
  const std::vector<std::pair<std::string, std::string>> probes = {
      {"{\"op\":\"ping\"", "malformed"},          // truncated JSON
      {"not json at all", "malformed"},            // not JSON
      {"{\"op\":\"warp\"}", "bad-request"},       // unknown op
      {"{\"op\":\"decompose\",\"k\":2}", "bad-request"},  // no graph
  };
  for (const auto& [request, code] : probes) {
    const std::vector<std::string> response = conn.Roundtrip(request);
    ASSERT_EQ(response.size(), 1u) << request;
    EXPECT_EQ(response[0].rfind("{\"type\":\"error\",\"code\":\"" + code +
                                    "\"",
                                0),
              0u)
        << request << " -> " << response[0];
  }
  // Still alive after every error.
  EXPECT_EQ(conn.Roundtrip("{\"op\":\"ping\"}"),
            std::vector<std::string>{"{\"type\":\"pong\"}"});
}

TEST(KvccdProtocolTest, DecomposeMatchesDirectEnumeration) {
  KvccdServer daemon;
  Connection conn(daemon);
  const Graph g = TwoCliquesSharing(5, 2);
  const std::string request =
      "{\"op\":\"decompose\",\"k\":3,\"edges\":" + EdgesJson(g) + "}";
  EXPECT_EQ(conn.Roundtrip(request), ExpectedDecomposeLines(g, 3));
}

TEST(KvccdProtocolTest, CachedReplayIsByteIdentical) {
  KvccdServer daemon;
  Connection conn(daemon);
  const Graph g = DisjointTriangles(5);
  const std::string request =
      "{\"op\":\"decompose\",\"k\":2,\"progress_every\":2,\"edges\":" +
      EdgesJson(g) + "}";
  const std::vector<std::string> cold = conn.Roundtrip(request);
  EXPECT_EQ(daemon.Cache().Hits(), 0u);
  const std::vector<std::string> cached = conn.Roundtrip(request);
  EXPECT_EQ(daemon.Cache().Hits(), 1u);
  EXPECT_EQ(cold, cached);
  // The cold run interleaved progress lines; sanity-check they exist and
  // replay regenerated them.
  EXPECT_EQ(cold[0], server::ProgressLine(2));
}

TEST(KvccdProtocolTest, HierarchyAnswersSmallerKFromCache) {
  KvccdServer daemon;
  Connection conn(daemon);
  const Graph g = TwoCliquesSharing(6, 3);
  const std::string edges = EdgesJson(g);
  // Build the full hierarchy once...
  const std::vector<std::string> levels =
      conn.Roundtrip("{\"op\":\"hierarchy\",\"edges\":" + edges + "}");
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.back().rfind("{\"type\":\"complete\",\"op\":"
                                "\"hierarchy\"",
                                0),
            0u);
  const std::uint64_t misses_after_build = daemon.Cache().Misses();
  // ...then every smaller-k decompose is a cache hit, byte-identical to
  // a fresh server's cold enumeration.
  for (std::uint32_t k = 1; k <= 4; ++k) {
    const std::string request = "{\"op\":\"decompose\",\"k\":" +
                                std::to_string(k) + ",\"edges\":" + edges +
                                "}";
    EXPECT_EQ(conn.Roundtrip(request), ExpectedDecomposeLines(g, k))
        << "k=" << k;
  }
  EXPECT_EQ(daemon.Cache().Misses(), misses_after_build);
  EXPECT_GE(daemon.Cache().Hits(), 4u);
}

TEST(KvccdProtocolTest, MembershipServedFromCachedHierarchy) {
  KvccdServer daemon;
  Connection conn(daemon);
  const Graph g = TwoCliquesSharing(5, 2);  // 8 vertices, cliques of 5
  const std::string edges = EdgesJson(g);
  const std::vector<std::string> first = conn.Roundtrip(
      "{\"op\":\"membership\",\"vertex\":0,\"edges\":" + edges + "}");
  ASSERT_EQ(first.size(), 1u);
  // Consistency with the library's own hierarchy.
  const KvccHierarchy h = BuildKvccHierarchy(g);
  EXPECT_EQ(first[0],
            server::MembershipLine(0, h.CohesionOf(0), h.PathOf(0)));
  // The second vertex's query reuses the cached hierarchy: no new miss.
  const std::uint64_t misses = daemon.Cache().Misses();
  const std::vector<std::string> second = conn.Roundtrip(
      "{\"op\":\"membership\",\"vertex\":7,\"edges\":" + edges + "}");
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0],
            server::MembershipLine(7, h.CohesionOf(7), h.PathOf(7)));
  EXPECT_EQ(daemon.Cache().Misses(), misses);
}

TEST(KvccdProtocolTest, DisconnectMidStreamFiresCancel) {
  KvccdServer daemon;
  // Response queue of one line: the server's second progress write
  // blocks until the client reads or disconnects.
  Connection conn(daemon, /*client_to_server_capacity=*/0,
                  /*server_to_client_capacity=*/1);
  const Graph g = DisjointTriangles(8);
  ASSERT_TRUE(conn.Send(
      "{\"op\":\"decompose\",\"k\":2,\"progress_every\":1,\"edges\":" +
      EdgesJson(g) + "}"));
  // Provably parked: the server thread is inside WriteLine on our full
  // receive queue. (The deterministic stand-in for a stalled TCP window.)
  ASSERT_TRUE(conn.client().WaitUntilPeerBlockedWriting());
  EXPECT_EQ(daemon.DisconnectCancels(), 0u);
  // Disconnect exactly at that point. The blocked write fails, the
  // handler returns, and the abandoned ResultStream fires the job's
  // cancel token.
  conn.Disconnect();
  EXPECT_EQ(daemon.DisconnectCancels(), 1u);
  // The engine survives the cancelled job and the server keeps serving.
  Connection conn2(daemon);
  EXPECT_EQ(conn2.Roundtrip("{\"op\":\"ping\"}"),
            std::vector<std::string>{"{\"type\":\"pong\"}"});
}

TEST(KvccdProtocolTest, DeadlineExpiryEmitsCancelledLine) {
  KvccdServer daemon;
  Connection conn(daemon);
  // Large enough that a 1 ms budget reliably expires mid-enumeration on
  // any hardware (one 2-connected grid: thousands of flow probes).
  const Graph g = GridGraph(120, 120);
  const std::vector<std::string> response = conn.Roundtrip(
      "{\"op\":\"decompose\",\"k\":2,\"deadline_ms\":1,\"edges\":" +
      EdgesJson(g) + "}");
  ASSERT_EQ(response.size(), 1u);
  EXPECT_EQ(response[0], server::CancelledLine("decompose", 0));
  EXPECT_EQ(daemon.DeadlineCancels(), 1u);
  // The connection survives a cancelled job.
  EXPECT_EQ(conn.Roundtrip("{\"op\":\"ping\"}"),
            std::vector<std::string>{"{\"type\":\"pong\"}"});
}

TEST(KvccdProtocolTest, BulkShedsFirstUnderAdmissionPressure) {
  KvccdConfig config;
  config.admission.max_total = 2;
  config.admission.bulk_reserve = 1;
  KvccdServer daemon(config);
  const Graph g = DisjointTriangles(4);
  const std::string edges = EdgesJson(g);

  // Connection A parks mid-decompose holding one admission slot: its
  // second progress write blocks on the one-line response queue.
  Connection a(daemon, 0, /*server_to_client_capacity=*/1);
  ASSERT_TRUE(a.Send(
      "{\"op\":\"decompose\",\"k\":2,\"progress_every\":1,\"edges\":" +
      edges + "}"));
  ASSERT_TRUE(a.client().WaitUntilPeerBlockedWriting());
  EXPECT_EQ(daemon.Admission().Running(), 1u);

  // With 1 of 2 total slots used and 1 reserved away from bulk, a bulk
  // request is shed...
  Connection b(daemon);
  const std::vector<std::string> shed = b.Roundtrip(
      "{\"op\":\"decompose\",\"k\":2,\"priority\":\"bulk\",\"edges\":" +
      edges + "}");
  ASSERT_EQ(shed.size(), 1u);
  EXPECT_EQ(shed[0].rfind("{\"type\":\"error\",\"code\":\"overloaded\"", 0),
            0u);
  EXPECT_EQ(daemon.Admission().BulkShed(), 1u);

  // ...while a normal request in the same state is admitted and served.
  EXPECT_EQ(b.Roundtrip("{\"op\":\"decompose\",\"k\":2,\"edges\":" + edges +
                        "}"),
            ExpectedDecomposeLines(g, 2));
  EXPECT_EQ(daemon.Admission().JobsShed(), 1u);

  // Release A; with the slot free, bulk is admitted again.
  a.Disconnect();
  EXPECT_EQ(b.Roundtrip(
                "{\"op\":\"decompose\",\"k\":2,\"priority\":\"bulk\","
                "\"edges\":" +
                edges + "}"),
            ExpectedDecomposeLines(g, 2));
}

TEST(KvccdProtocolTest, StatsCountersReplayIdentically) {
  // The same request sequence against two fresh servers must produce the
  // same stats line — counters are functions of the sequence, not of
  // timing.
  const Graph g = DisjointTriangles(3);
  const std::vector<std::string> script = {
      "{\"op\":\"ping\"}",
      "{\"op\":\"decompose\",\"k\":2,\"edges\":" + EdgesJson(g) + "}",
      "{\"op\":\"decompose\",\"k\":2,\"edges\":" + EdgesJson(g) + "}",
      "{\"op\":\"oops\"}",
      "{\"op\":\"membership\",\"vertex\":1,\"edges\":" + EdgesJson(g) + "}",
  };
  std::vector<std::string> stats_lines;
  for (int run = 0; run < 2; ++run) {
    KvccdServer daemon;
    {
      Connection conn(daemon);
      for (const std::string& request : script) {
        conn.Roundtrip(request);
      }
      // Join the serving thread before sampling: the client can read a
      // terminal line before the handler releases its admission slot,
      // so the "running" gauge is only settled once serving returned.
      conn.Disconnect();
    }
    stats_lines.push_back(daemon.StatsLine());
  }
  EXPECT_EQ(stats_lines[0], stats_lines[1]);
  EXPECT_NE(stats_lines[0].find("\"cache_hits\":1"), std::string::npos)
      << stats_lines[0];
}

TEST(KvccdProtocolTest, MalformedMutationLinesKeepConnectionAlive) {
  KvccdServer daemon;
  Connection conn(daemon);
  const std::vector<std::pair<std::string, std::string>> probes = {
      {"{\"op\":\"insert_edges\",\"edges\":[[0,1", "malformed"},
      {"{\"op\":\"insert_edges\"}", "bad-request"},
      {"{\"op\":\"delete_edges\",\"edges\":\"all\"}", "bad-request"},
      {"{\"op\":\"compact\",\"k\":2}", "bad-request"},
      {"{\"op\":\"decompose\",\"k\":2,\"dynamic\":true,"
       "\"edges\":[[0,1]]}",
       "bad-request"},
  };
  for (const auto& [request, code] : probes) {
    const std::vector<std::string> response = conn.Roundtrip(request);
    ASSERT_EQ(response.size(), 1u) << request;
    EXPECT_EQ(response[0].rfind(
                  "{\"type\":\"error\",\"code\":\"" + code + "\"", 0),
              0u)
        << request << " -> " << response[0];
  }
  // The connection survives every rejected mutation, and a well-formed
  // one still lands.
  const std::vector<std::string> updated = conn.Roundtrip(
      "{\"op\":\"insert_edges\",\"edges\":[[0,1],[1,2],[0,2]]}");
  ASSERT_EQ(updated.size(), 1u);
  EXPECT_EQ(updated[0].rfind("{\"type\":\"updated\",\"op\":\"insert_edges\","
                             "\"version\":1,\"applied\":3",
                             0),
            0u)
      << updated[0];
}

TEST(KvccdProtocolTest, MutationInvalidatesExactlyTheDirtyCacheEntries) {
  KvccdServer daemon;
  Connection conn(daemon);
  const Graph g = DisjointTriangles(3);  // vertices 0..8

  // Load the dynamic graph and decompose it at k=1 and k=2.
  const std::vector<std::string> loaded = conn.Roundtrip(
      "{\"op\":\"insert_edges\",\"edges\":" + EdgesJson(g) + "}");
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].rfind("{\"type\":\"updated\",\"op\":\"insert_edges\","
                            "\"version\":1,\"applied\":9",
                            0),
            0u)
      << loaded[0];

  const std::string decompose1 =
      "{\"op\":\"decompose\",\"k\":1,\"dynamic\":true}";
  const std::string decompose2 =
      "{\"op\":\"decompose\",\"k\":2,\"dynamic\":true}";
  const std::vector<std::string> cold2 = conn.Roundtrip(decompose2);
  EXPECT_EQ(cold2, ExpectedDecomposeLines(g, 2));
  const std::vector<std::string> cold1 = conn.Roundtrip(decompose1);
  EXPECT_EQ(cold1, ExpectedDecomposeLines(g, 1));
  const std::uint64_t hits_before = daemon.Cache().Hits();
  EXPECT_EQ(conn.Roundtrip(decompose2), cold2);
  EXPECT_EQ(daemon.Cache().Hits(), hits_before + 1);

  // Hang a pendant vertex off triangle 0: level 1 changes (one connected
  // component grows), level 2 does not (a degree-1 vertex joins no
  // 2-VCC). The k=2 entry must migrate and keep hitting byte-identically;
  // the k=1 entry must be dropped and re-derived.
  const std::vector<std::string> pendant =
      conn.Roundtrip("{\"op\":\"insert_edges\",\"edges\":[[0,9]]}");
  ASSERT_EQ(pendant.size(), 1u);
  EXPECT_EQ(pendant[0],
            server::UpdatedLine("insert_edges", 2, 1,
                                /*dirty_components=*/1, /*reruns=*/1));

  const std::uint64_t hits_after_mutation = daemon.Cache().Hits();
  const std::uint64_t misses_after_mutation = daemon.Cache().Misses();
  EXPECT_EQ(conn.Roundtrip(decompose2), cold2);  // migrated entry
  EXPECT_EQ(daemon.Cache().Hits(), hits_after_mutation + 1);
  EXPECT_EQ(daemon.Cache().Misses(), misses_after_mutation);

  // k=1 was dirty: its lookup misses and the fresh render reflects the
  // pendant vertex.
  const std::vector<std::string> fresh1 = conn.Roundtrip(decompose1);
  EXPECT_EQ(daemon.Cache().Misses(), misses_after_mutation + 1);
  EXPECT_NE(fresh1, cold1);
  std::vector<std::pair<VertexId, VertexId>> mutated_edges = g.Edges();
  mutated_edges.emplace_back(0, 9);
  const Graph mutated = Graph::FromEdges(10, mutated_edges);
  EXPECT_EQ(fresh1, ExpectedDecomposeLines(mutated, 1));

  // Dynamic hierarchy and membership answer from the maintained state.
  const KvccHierarchy h = BuildKvccHierarchy(mutated);
  const std::vector<std::string> membership = conn.Roundtrip(
      "{\"op\":\"membership\",\"vertex\":9,\"dynamic\":true}");
  ASSERT_EQ(membership.size(), 1u);
  EXPECT_EQ(membership[0],
            server::MembershipLine(9, h.CohesionOf(9), h.PathOf(9)));
}

TEST(KvccdProtocolTest, CompactionPreservesDynamicServing) {
  KvccdServer daemon;
  Connection conn(daemon);
  const Graph g = DisjointTriangles(2);
  conn.Roundtrip("{\"op\":\"insert_edges\",\"edges\":" + EdgesJson(g) + "}");
  const std::string decompose =
      "{\"op\":\"decompose\",\"k\":2,\"dynamic\":true}";
  const std::vector<std::string> before = conn.Roundtrip(decompose);
  EXPECT_EQ(before, ExpectedDecomposeLines(g, 2));

  const std::vector<std::string> compacted =
      conn.Roundtrip("{\"op\":\"compact\"}");
  ASSERT_EQ(compacted.size(), 1u);
  EXPECT_EQ(compacted[0], server::CompactedLine(/*version=*/1,
                                                /*folded=*/6));

  // Serving is untouched by the fold, and the next mutation is still
  // applied incrementally on top of the compacted base.
  EXPECT_EQ(conn.Roundtrip(decompose), before);
  const std::vector<std::string> updated =
      conn.Roundtrip("{\"op\":\"delete_edges\",\"edges\":[[0,1]]}");
  ASSERT_EQ(updated.size(), 1u);
  EXPECT_EQ(updated[0].rfind("{\"type\":\"updated\",\"op\":\"delete_edges\","
                             "\"version\":2,\"applied\":1",
                             0),
            0u)
      << updated[0];
  std::vector<std::pair<VertexId, VertexId>> remaining;
  for (const auto& edge : g.Edges()) {
    if (edge != std::make_pair<VertexId, VertexId>(0, 1)) {
      remaining.push_back(edge);
    }
  }
  const Graph mutated = Graph::FromEdges(6, remaining);
  EXPECT_EQ(conn.Roundtrip(decompose), ExpectedDecomposeLines(mutated, 2));
}

}  // namespace
}  // namespace kvcc
