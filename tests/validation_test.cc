#include "kvcc/validation.h"

#include <gtest/gtest.h>

#include "gen/fixtures.h"
#include "graph/graph.h"
#include "kvcc/kvcc_enum.h"
#include "support/brute_force.h"

namespace kvcc {
namespace {

TEST(ValidationTest, AcceptsCorrectDecomposition) {
  const Figure1Fixture f = MakeFigure1Graph();
  const auto result = EnumerateKVccs(f.graph, 4);
  const ValidationReport report =
      ValidateKvccResult(f.graph, 4, result.components);
  EXPECT_TRUE(report.ok)
      << (report.violations.empty() ? "" : report.violations.front());
}

TEST(ValidationTest, RejectsUndersizedComponent) {
  const Graph g = CompleteGraph(6);
  // A 4-element "4-VCC" violates |V| > k.
  const std::vector<std::vector<VertexId>> bad = {{0, 1, 2, 3}};
  const ValidationReport report = ValidateKvccResult(g, 4, bad);
  EXPECT_FALSE(report.ok);
}

TEST(ValidationTest, RejectsDisconnectedClaim) {
  const Graph g = TwoCliquesSharing(6, 2);
  // Claiming the whole graph as one 4-VCC: it has a 2-cut.
  std::vector<VertexId> all;
  for (VertexId v = 0; v < g.NumVertices(); ++v) all.push_back(v);
  const ValidationReport report = ValidateKvccResult(g, 4, {all});
  EXPECT_FALSE(report.ok);
}

TEST(ValidationTest, RejectsExcessiveOverlap) {
  const Graph g = CompleteGraph(8);
  // Two fabricated components overlapping in 5 >= k vertices.
  const std::vector<std::vector<VertexId>> bad = {{0, 1, 2, 3, 4, 5},
                                                  {1, 2, 3, 4, 5, 6}};
  const ValidationReport report = ValidateKvccResult(g, 4, bad);
  EXPECT_FALSE(report.ok);
}

TEST(ValidationTest, RejectsMissedComponent) {
  const Figure1Fixture f = MakeFigure1Graph();
  const auto result = EnumerateKVccs(f.graph, 4);
  // Drop one component: completeness check must notice the k-connected
  // uncovered region.
  auto partial = result.components;
  partial.pop_back();
  const ValidationReport report = ValidateKvccResult(f.graph, 4, partial);
  EXPECT_FALSE(report.ok);
}

TEST(ValidationTest, RejectsNestedComponents) {
  const Graph g = CompleteGraph(9);
  const std::vector<std::vector<VertexId>> bad = {
      {0, 1, 2, 3, 4, 5, 6, 7, 8}, {0, 1, 2, 3, 4}};
  const ValidationReport report = ValidateKvccResult(g, 4, bad);
  EXPECT_FALSE(report.ok);
}

TEST(ValidationTest, RejectsOutOfRangeVertex) {
  const Graph g = CompleteGraph(6);
  const std::vector<std::vector<VertexId>> bad = {{0, 1, 2, 3, 99}};
  const ValidationReport report = ValidateKvccResult(g, 4, bad);
  EXPECT_FALSE(report.ok);
}

TEST(ValidationTest, RandomDecompositionsAlwaysValidate) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const Graph g = kvcc::testing::RandomConnectedGraph(40, 110, seed);
    for (std::uint32_t k = 2; k <= 5; ++k) {
      const auto result = EnumerateKVccs(g, k);
      const ValidationReport report =
          ValidateKvccResult(g, k, result.components);
      EXPECT_TRUE(report.ok)
          << "seed=" << seed << " k=" << k << ": "
          << (report.violations.empty() ? "" : report.violations.front());
    }
  }
}

}  // namespace
}  // namespace kvcc
