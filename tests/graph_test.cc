#include "graph/graph.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "graph/graph_builder.h"

namespace kvcc {
namespace {

using Edge = std::pair<VertexId, VertexId>;

TEST(GraphTest, EmptyGraph) {
  const Graph g;
  EXPECT_EQ(g.NumVertices(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_EQ(g.AverageDegree(), 0.0);
  EXPECT_EQ(g.MinDegreeVertex(), kInvalidVertex);
}

TEST(GraphTest, FromEdgesBasic) {
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {0, 2}};
  const Graph g = Graph::FromEdges(3, edges);
  EXPECT_EQ(g.NumVertices(), 3u);
  EXPECT_EQ(g.NumEdges(), 3u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_TRUE(g.HasEdge(2, 0));
  EXPECT_EQ(g.Degree(0), 2u);
}

TEST(GraphTest, BuilderDropsSelfLoopsAndDuplicates) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 0);  // duplicate (reversed)
  builder.AddEdge(0, 1);  // duplicate
  builder.AddEdge(2, 2);  // self-loop
  builder.AddEdge(2, 3);
  const Graph g = builder.Build();
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_EQ(g.Degree(2), 1u);
  EXPECT_FALSE(g.HasEdge(2, 2));
}

TEST(GraphTest, NeighborsAreSorted) {
  GraphBuilder builder(6);
  builder.AddEdge(3, 5);
  builder.AddEdge(3, 0);
  builder.AddEdge(3, 4);
  builder.AddEdge(3, 1);
  const Graph g = builder.Build();
  const auto nbrs = g.Neighbors(3);
  ASSERT_EQ(nbrs.size(), 4u);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(nbrs[0], 0u);
  EXPECT_EQ(nbrs[3], 5u);
}

TEST(GraphTest, BuilderGrowsVertexCountAutomatically) {
  GraphBuilder builder;
  builder.AddEdge(2, 9);
  const Graph g = builder.Build();
  EXPECT_EQ(g.NumVertices(), 10u);
  EXPECT_EQ(g.Degree(5), 0u);
}

TEST(GraphTest, EdgesReturnsSortedPairs) {
  const std::vector<Edge> edges = {{2, 1}, {0, 2}, {0, 1}};
  const Graph g = Graph::FromEdges(3, edges);
  const auto out = g.Edges();
  const std::vector<Edge> expected = {{0, 1}, {0, 2}, {1, 2}};
  EXPECT_EQ(out, expected);
}

TEST(GraphTest, InducedSubgraphKeepsInternalEdgesOnly) {
  // Square 0-1-2-3 with a diagonal 0-2.
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}};
  const Graph g = Graph::FromEdges(4, edges);
  const std::vector<VertexId> keep = {0, 1, 2};
  const Graph sub = g.InducedSubgraph(keep);
  EXPECT_EQ(sub.NumVertices(), 3u);
  EXPECT_EQ(sub.NumEdges(), 3u);  // 0-1, 1-2, 0-2
  EXPECT_EQ(sub.LabelOf(0), 0u);
  EXPECT_EQ(sub.LabelOf(2), 2u);
}

TEST(GraphTest, InducedSubgraphComposesLabels) {
  // 5-path; take {1,2,3,4}, then {1,2,3} of that -> labels {2,3,4}.
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 3}, {3, 4}};
  const Graph g = Graph::FromEdges(5, edges);
  const std::vector<VertexId> first = {1, 2, 3, 4};
  const Graph sub1 = g.InducedSubgraph(first);
  const std::vector<VertexId> second = {1, 2, 3};
  const Graph sub2 = sub1.InducedSubgraph(second);
  EXPECT_EQ(sub2.NumVertices(), 3u);
  EXPECT_EQ(sub2.LabelOf(0), 2u);
  EXPECT_EQ(sub2.LabelOf(1), 3u);
  EXPECT_EQ(sub2.LabelOf(2), 4u);
}

TEST(GraphTest, InducedSubgraphIgnoresDuplicateInput) {
  const std::vector<Edge> edges = {{0, 1}, {1, 2}};
  const Graph g = Graph::FromEdges(3, edges);
  const std::vector<VertexId> keep = {1, 1, 0, 0};
  const Graph sub = g.InducedSubgraph(keep);
  EXPECT_EQ(sub.NumVertices(), 2u);
  EXPECT_EQ(sub.NumEdges(), 1u);
}

TEST(GraphTest, WithIdentityLabelsResetsLabeling) {
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 3}};
  const Graph g = Graph::FromEdges(4, edges);
  const std::vector<VertexId> keep = {1, 2, 3};
  const Graph sub = g.InducedSubgraph(keep);
  EXPECT_EQ(sub.LabelOf(0), 1u);
  const Graph reset = sub.WithIdentityLabels();
  EXPECT_EQ(reset.LabelOf(0), 0u);
  EXPECT_TRUE(reset.SameStructure(sub));
}

TEST(GraphTest, DegreeStatistics) {
  // Star with center 0 and 4 leaves.
  const std::vector<Edge> edges = {{0, 1}, {0, 2}, {0, 3}, {0, 4}};
  const Graph g = Graph::FromEdges(5, edges);
  EXPECT_EQ(g.MaxDegree(), 4u);
  EXPECT_EQ(g.MinDegreeVertex(), 1u);  // Smallest id among the leaves.
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 8.0 / 5.0);
}

TEST(GraphTest, LabelsOfMapsIds) {
  const std::vector<Edge> edges = {{0, 1}, {1, 2}};
  const Graph g = Graph::FromEdges(3, edges);
  const std::vector<VertexId> keep = {1, 2};
  const Graph sub = g.InducedSubgraph(keep);
  const std::vector<VertexId> locals = {0, 1};
  EXPECT_EQ(sub.LabelsOf(locals), (std::vector<VertexId>{1, 2}));
}

TEST(GraphTest, MemoryBytesIsPositive) {
  const Graph g = Graph::FromEdges(2, std::vector<Edge>{{0, 1}});
  EXPECT_GT(g.MemoryBytes(), 0u);
}

TEST(GraphTest, BuilderRejectsBadLabelCount) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  builder.SetLabels({7});
  EXPECT_THROW(builder.Build(), std::invalid_argument);
}

}  // namespace
}  // namespace kvcc
