#include "ecc/kecc.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "gen/fixtures.h"
#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "graph/k_core.h"
#include "support/brute_force.h"

namespace kvcc {
namespace {

TEST(KeccTest, Figure1MatchesPaper) {
  const Figure1Fixture f = MakeFigure1Graph();
  EXPECT_EQ(KEdgeConnectedComponents(f.graph, 4), f.expected_eccs);
}

TEST(KeccTest, CliqueIsSingleComponent) {
  const auto eccs = KEdgeConnectedComponents(CompleteGraph(6), 4);
  ASSERT_EQ(eccs.size(), 1u);
  EXPECT_EQ(eccs[0].size(), 6u);
}

TEST(KeccTest, CycleAtKTwo) {
  const auto eccs = KEdgeConnectedComponents(CycleGraph(8), 2);
  ASSERT_EQ(eccs.size(), 1u);
  EXPECT_EQ(eccs[0].size(), 8u);
  EXPECT_TRUE(KEdgeConnectedComponents(CycleGraph(8), 3).empty());
}

TEST(KeccTest, BridgedCliquesSplit) {
  // Two K5 joined by a single edge: 4-ECCs are the two cliques.
  GraphBuilder builder(10);
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = u + 1; v < 5; ++v) {
      builder.AddEdge(u, v);
      builder.AddEdge(u + 5, v + 5);
    }
  }
  builder.AddEdge(0, 5);
  const Graph g = builder.Build();
  const auto eccs = KEdgeConnectedComponents(g, 4);
  ASSERT_EQ(eccs.size(), 2u);
  EXPECT_EQ(eccs[0], (std::vector<VertexId>{0, 1, 2, 3, 4}));
  EXPECT_EQ(eccs[1], (std::vector<VertexId>{5, 6, 7, 8, 9}));
}

TEST(KeccTest, ComponentsAreDisjoint) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Graph g = kvcc::testing::RandomConnectedGraph(40, 120, seed);
    for (std::uint32_t k = 2; k <= 4; ++k) {
      const auto eccs = KEdgeConnectedComponents(g, k);
      std::set<VertexId> seen;
      for (const auto& ecc : eccs) {
        EXPECT_GT(ecc.size(), k);
        for (VertexId v : ecc) {
          EXPECT_TRUE(seen.insert(v).second)
              << "vertex in two k-ECCs, seed=" << seed;
        }
      }
    }
  }
}

TEST(KeccTest, EveryComponentIsKEdgeConnected) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Graph g = kvcc::testing::RandomConnectedGraph(30, 90, seed);
    for (std::uint32_t k = 2; k <= 4; ++k) {
      for (const auto& ecc : KEdgeConnectedComponents(g, k)) {
        EXPECT_TRUE(IsKEdgeConnected(g.InducedSubgraph(ecc), k))
            << "seed=" << seed << " k=" << k;
      }
    }
  }
}

TEST(KeccTest, ComponentsNestInKCore) {
  const Graph g = kvcc::testing::RandomConnectedGraph(50, 150, 3);
  const std::uint32_t k = 3;
  const auto core = KCoreVertices(g, k);
  const std::set<VertexId> core_set(core.begin(), core.end());
  for (const auto& ecc : KEdgeConnectedComponents(g, k)) {
    for (VertexId v : ecc) EXPECT_TRUE(core_set.count(v));
  }
}

TEST(KeccTest, MaximalityNoMergeableNeighborPair) {
  // Merging any two k-ECCs joined by edges must not be k-edge-connected.
  const Figure1Fixture f = MakeFigure1Graph();
  const auto eccs = KEdgeConnectedComponents(f.graph, 4);
  ASSERT_EQ(eccs.size(), 2u);
  std::vector<VertexId> merged;
  merged.insert(merged.end(), eccs[0].begin(), eccs[0].end());
  merged.insert(merged.end(), eccs[1].begin(), eccs[1].end());
  EXPECT_FALSE(IsKEdgeConnected(f.graph.InducedSubgraph(merged), 4));
}

TEST(IsKEdgeConnectedTest, Basics) {
  EXPECT_TRUE(IsKEdgeConnected(CycleGraph(5), 2));
  EXPECT_FALSE(IsKEdgeConnected(CycleGraph(5), 3));
  EXPECT_TRUE(IsKEdgeConnected(CompleteGraph(5), 4));
  EXPECT_FALSE(IsKEdgeConnected(PathGraph(4), 2));
  EXPECT_FALSE(IsKEdgeConnected(CompleteGraph(1), 1));
}

}  // namespace
}  // namespace kvcc
