#include "support/mutation_gen.h"

#include <algorithm>
#include <iterator>

namespace kvcc {
namespace testing {

MutationScript::MutationScript(const Graph& base, std::uint64_t seed)
    : num_vertices_(base.NumVertices()), rng_(seed) {
  for (const auto& edge : base.Edges()) edges_.insert(edge);
}

MutationStep MutationScript::Next() {
  MutationStep step;
  step.insert = edges_.empty() || rng_.NextBernoulli(0.55);
  const std::size_t want = 1 + rng_.NextBounded(4);
  if (step.insert) {
    FillInserts(want, step);
    if (step.edges.empty()) {
      // Dense corner: no absent pair found, mutate the other way.
      step.insert = false;
      FillDeletes(want, step);
    }
  } else {
    FillDeletes(want, step);
  }
  return step;
}

void MutationScript::FillInserts(std::size_t want, MutationStep& step) {
  if (num_vertices_ < 2) num_vertices_ = 2;
  for (std::size_t attempt = 0;
       attempt < want * 8 && step.edges.size() < want; ++attempt) {
    VertexId u;
    VertexId v;
    if (rng_.NextBernoulli(0.05)) {
      v = num_vertices_;  // attach a fresh vertex
      u = static_cast<VertexId>(rng_.NextBounded(num_vertices_));
    } else {
      u = static_cast<VertexId>(rng_.NextBounded(num_vertices_));
      v = static_cast<VertexId>(rng_.NextBounded(num_vertices_));
    }
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (!edges_.insert({u, v}).second) continue;
    step.edges.push_back({u, v});
    num_vertices_ = std::max(num_vertices_, static_cast<VertexId>(v + 1));
  }
}

void MutationScript::FillDeletes(std::size_t want, MutationStep& step) {
  for (std::size_t i = 0; i < want && !edges_.empty(); ++i) {
    auto it = edges_.begin();
    std::advance(it, static_cast<std::ptrdiff_t>(
                         rng_.NextBounded(edges_.size())));
    step.edges.push_back(*it);
    edges_.erase(it);
  }
}

Graph MutationScript::Materialize() const {
  std::vector<std::pair<VertexId, VertexId>> edges(edges_.begin(),
                                                   edges_.end());
  return Graph::FromEdges(num_vertices_, edges);
}

}  // namespace testing
}  // namespace kvcc
