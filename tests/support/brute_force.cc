#include "support/brute_force.h"

#include <algorithm>
#include <limits>

#include "graph/connected_components.h"
#include "graph/graph_builder.h"
#include "kvcc/connectivity.h"  // for kInfiniteConnectivity
#include "util/random.h"

namespace kvcc::testing {
namespace {

/// Is g - removed connected on its surviving vertices (and is at least one
/// vertex surviving)? `removed` is a bitmask over vertex ids.
bool ConnectedWithout(const Graph& g, std::uint32_t removed_mask) {
  const VertexId n = g.NumVertices();
  VertexId start = kInvalidVertex, alive = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (!(removed_mask >> v & 1)) {
      if (start == kInvalidVertex) start = v;
      ++alive;
    }
  }
  if (alive == 0) return false;
  std::uint32_t seen = 1u << start;
  std::vector<VertexId> queue{start};
  VertexId reached = 1;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    for (VertexId w : g.Neighbors(queue[head])) {
      if ((removed_mask >> w & 1) || (seen >> w & 1)) continue;
      seen |= 1u << w;
      ++reached;
      queue.push_back(w);
    }
  }
  return reached == alive;
}

/// Iterates all masks with `bits` bits set over `n` positions, calling f;
/// stops early if f returns true. Returns whether any f returned true.
template <typename F>
bool ForEachSubsetOfSize(VertexId n, std::uint32_t bits, F&& f) {
  if (bits > n) return false;
  // Gosper's hack over n-bit masks.
  std::uint32_t mask = bits == 0 ? 0 : (1u << bits) - 1;
  const std::uint32_t limit = 1u << n;
  if (bits == 0) return f(0u);
  while (mask < limit) {
    if (f(mask)) return true;
    const std::uint32_t c = mask & -mask;
    const std::uint32_t r = mask + c;
    mask = (((r ^ mask) >> 2) / c) | r;
  }
  return false;
}

}  // namespace

std::uint32_t BruteLocalVertexConnectivity(const Graph& g, VertexId u,
                                           VertexId v) {
  if (g.HasEdge(u, v)) return kInfiniteConnectivity;
  const VertexId n = g.NumVertices();
  const std::uint32_t forbidden = (1u << u) | (1u << v);
  for (std::uint32_t size = 0; size + 2 <= n; ++size) {
    bool found = ForEachSubsetOfSize(n, size, [&](std::uint32_t mask) {
      if (mask & forbidden) return false;
      if (ConnectedWithout(g, mask)) return false;
      // Check u and v specifically ended up in different components.
      std::uint32_t seen = 1u << u;
      std::vector<VertexId> queue{u};
      for (std::size_t head = 0; head < queue.size(); ++head) {
        for (VertexId w : g.Neighbors(queue[head])) {
          if ((mask >> w & 1) || (seen >> w & 1)) continue;
          seen |= 1u << w;
          queue.push_back(w);
        }
      }
      return !(seen >> v & 1);
    });
    if (found) return size;
  }
  return kInfiniteConnectivity;
}

bool BruteIsKVertexConnected(const Graph& g, std::uint32_t k) {
  const VertexId n = g.NumVertices();
  if (k == 0) return true;
  if (n <= k) return false;
  for (std::uint32_t size = 0; size < k; ++size) {
    const bool disconnecting =
        ForEachSubsetOfSize(n, size, [&](std::uint32_t mask) {
          return !ConnectedWithout(g, mask);
        });
    if (disconnecting) return false;
  }
  return true;
}

std::uint32_t BruteVertexConnectivity(const Graph& g) {
  const VertexId n = g.NumVertices();
  if (n <= 1) return 0;
  for (std::uint32_t size = 0; size + 2 <= n; ++size) {
    const bool disconnecting =
        ForEachSubsetOfSize(n, size, [&](std::uint32_t mask) {
          return !ConnectedWithout(g, mask);
        });
    if (disconnecting) return size;
  }
  return n - 1;  // Complete graph.
}

std::vector<std::vector<VertexId>> BruteKVccs(const Graph& g,
                                              std::uint32_t k) {
  const VertexId n = g.NumVertices();
  std::vector<std::uint32_t> candidates;
  for (std::uint32_t mask = 1; mask < (1u << n); ++mask) {
    if (static_cast<std::uint32_t>(__builtin_popcount(mask)) <= k) continue;
    std::vector<VertexId> members;
    for (VertexId v = 0; v < n; ++v) {
      if (mask >> v & 1) members.push_back(v);
    }
    const Graph sub = g.InducedSubgraph(members);
    if (BruteIsKVertexConnected(sub, k)) candidates.push_back(mask);
  }
  std::vector<std::vector<VertexId>> result;
  for (std::uint32_t mask : candidates) {
    bool maximal = true;
    for (std::uint32_t other : candidates) {
      if (other != mask && (mask & other) == mask) {
        maximal = false;
        break;
      }
    }
    if (!maximal) continue;
    std::vector<VertexId> members;
    for (VertexId v = 0; v < n; ++v) {
      if (mask >> v & 1) members.push_back(v);
    }
    result.push_back(std::move(members));
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::uint64_t BruteMinEdgeCutWeight(const Graph& g) {
  const VertexId n = g.NumVertices();
  if (n < 2) return std::numeric_limits<std::uint64_t>::max();
  std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
  // Enumerate bipartitions with vertex 0 always on side A.
  for (std::uint32_t mask = 1; mask < (1u << (n - 1)); ++mask) {
    const std::uint32_t side = mask << 1 | 0;  // Vertex 0 stays on side A.
    std::uint64_t crossing = 0;
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId v : g.Neighbors(u)) {
        if (u < v && ((side >> u & 1) != (side >> v & 1))) ++crossing;
      }
    }
    best = std::min(best, crossing);
  }
  return best;
}

Graph RandomConnectedGraph(VertexId n, std::uint64_t extra_edges,
                           std::uint64_t seed) {
  GraphBuilder builder(n);
  Rng rng(seed);
  // Random spanning tree: attach each vertex to a uniform earlier vertex.
  for (VertexId v = 1; v < n; ++v) {
    builder.AddEdge(v, static_cast<VertexId>(rng.NextBounded(v)));
  }
  for (std::uint64_t e = 0; e < extra_edges; ++e) {
    const auto u = static_cast<VertexId>(rng.NextBounded(n));
    const auto v = static_cast<VertexId>(rng.NextBounded(n));
    builder.AddEdge(u, v);  // Self-loops / duplicates dropped by builder.
  }
  return builder.Build();
}

}  // namespace kvcc::testing
