#include "support/request_corpus.h"

#include "server/protocol.h"

namespace kvcc {
namespace testing {

const std::vector<MalformedRequest>& MalformedRequestCorpus() {
  static const std::vector<MalformedRequest>* corpus = [] {
    auto* c = new std::vector<MalformedRequest>();
    // --- truncated / structurally broken JSON -> "malformed" ---
    c->push_back({"truncated-object", "{\"op\":\"ping\"", "malformed"});
    c->push_back({"truncated-string", "{\"op\":\"pi", "malformed"});
    c->push_back({"truncated-array",
                  "{\"op\":\"decompose\",\"k\":2,\"edges\":[[0,1],[1",
                  "malformed"});
    c->push_back({"truncated-escape", "{\"op\":\"ping\\", "malformed"});
    c->push_back({"bare-word", "ping", "malformed"});
    c->push_back({"trailing-junk", "{\"op\":\"ping\"} extra", "malformed"});
    c->push_back({"two-documents", "{\"op\":\"ping\"}{\"op\":\"ping\"}",
                  "malformed"});
    c->push_back({"lone-close-brace", "}", "malformed"});
    c->push_back({"duplicate-key", "{\"op\":\"ping\",\"op\":\"stats\"}",
                  "malformed"});
    c->push_back({"control-char-in-string",
                  std::string("{\"op\":\"pi\x01ng\"}"), "malformed"});
    c->push_back({"lone-surrogate", "{\"op\":\"\\ud800\"}", "malformed"});
    c->push_back({"leading-zero-number",
                  "{\"op\":\"decompose\",\"k\":007}", "malformed"});
    c->push_back({"bad-literal", "{\"op\":\"ping\",\"k\":tru}",
                  "malformed"});
    {
      // 40 levels of array nesting: past the parser's depth cap.
      std::string deep = "{\"op\":";
      for (int i = 0; i < 40; ++i) deep.push_back('[');
      for (int i = 0; i < 40; ++i) deep.push_back(']');
      deep.push_back('}');
      c->push_back({"nesting-too-deep", deep, "malformed"});
    }

    // --- overlong line -> "overlong" ---
    {
      std::string huge = "{\"op\":\"ping\",\"pad\":\"";
      huge.append(kvcc::server::kMaxRequestBytes, 'x');
      huge += "\"}";
      c->push_back({"overlong-line", huge, "overlong"});
    }

    // --- invalid UTF-8 -> "invalid-utf8" ---
    c->push_back({"stray-continuation-byte",
                  std::string("{\"op\":\"ping\x80\"}"), "invalid-utf8"});
    c->push_back({"truncated-multibyte",
                  std::string("{\"op\":\"ping\xC3\"}"), "invalid-utf8"});
    c->push_back({"overlong-encoding",
                  std::string("{\"op\":\"\xC0\xAF\"}"), "invalid-utf8"});
    c->push_back({"utf8-surrogate-bytes",
                  std::string("{\"op\":\"\xED\xA0\x80\"}"),
                  "invalid-utf8"});
    c->push_back({"out-of-range-codepoint",
                  std::string("{\"op\":\"\xF4\x90\x80\x80\"}"),
                  "invalid-utf8"});

    // --- valid JSON, invalid request -> "bad-request" ---
    c->push_back({"not-an-object", "[1,2,3]", "bad-request"});
    c->push_back({"missing-op", "{\"k\":2}", "bad-request"});
    c->push_back({"unknown-op", "{\"op\":\"explode\"}", "bad-request"});
    c->push_back({"op-wrong-type", "{\"op\":42}", "bad-request"});
    c->push_back({"k-wrong-type",
                  "{\"op\":\"decompose\",\"k\":\"two\",\"edges\":[[0,1]]}",
                  "bad-request"});
    c->push_back({"k-negative",
                  "{\"op\":\"decompose\",\"k\":-1,\"edges\":[[0,1]]}",
                  "bad-request"});
    c->push_back({"k-fractional",
                  "{\"op\":\"decompose\",\"k\":2.5,\"edges\":[[0,1]]}",
                  "bad-request"});
    c->push_back({"k-zero",
                  "{\"op\":\"decompose\",\"k\":0,\"edges\":[[0,1]]}",
                  "bad-request"});
    c->push_back({"k-overflow",
                  "{\"op\":\"decompose\",\"k\":4294967296,"
                  "\"edges\":[[0,1]]}",
                  "bad-request"});
    c->push_back({"missing-k",
                  "{\"op\":\"decompose\",\"edges\":[[0,1]]}",
                  "bad-request"});
    c->push_back({"missing-graph-source",
                  "{\"op\":\"decompose\",\"k\":2}", "bad-request"});
    c->push_back({"both-graph-sources",
                  "{\"op\":\"decompose\",\"k\":2,\"graph\":\"g.txt\","
                  "\"edges\":[[0,1]]}",
                  "bad-request"});
    c->push_back({"edges-wrong-shape",
                  "{\"op\":\"decompose\",\"k\":2,\"edges\":[[0,1,2]]}",
                  "bad-request"});
    c->push_back({"edges-not-numbers",
                  "{\"op\":\"decompose\",\"k\":2,"
                  "\"edges\":[[\"a\",\"b\"]]}",
                  "bad-request"});
    c->push_back({"edge-endpoint-overflow",
                  "{\"op\":\"decompose\",\"k\":2,"
                  "\"edges\":[[0,4294967295]]}",
                  "bad-request"});
    c->push_back({"unknown-field",
                  "{\"op\":\"ping\",\"shoe_size\":46}", "bad-request"});
    c->push_back({"field-op-mismatch",
                  "{\"op\":\"ping\",\"k\":2}", "bad-request"});
    c->push_back({"unknown-variant",
                  "{\"op\":\"decompose\",\"k\":2,\"edges\":[[0,1]],"
                  "\"variant\":\"VCCE-X\"}",
                  "bad-request"});
    c->push_back({"unknown-priority",
                  "{\"op\":\"decompose\",\"k\":2,\"edges\":[[0,1]],"
                  "\"priority\":\"urgent\"}",
                  "bad-request"});
    c->push_back({"membership-missing-vertex",
                  "{\"op\":\"membership\",\"edges\":[[0,1]]}",
                  "bad-request"});
    c->push_back({"empty-graph-path",
                  "{\"op\":\"decompose\",\"k\":2,\"graph\":\"\"}",
                  "bad-request"});

    // --- dynamic-graph mutation requests ---
    c->push_back({"mutation-truncated-json",
                  "{\"op\":\"insert_edges\",\"edges\":[[0,1",
                  "malformed"});
    c->push_back({"mutation-missing-edges", "{\"op\":\"insert_edges\"}",
                  "bad-request"});
    c->push_back({"mutation-edges-wrong-type",
                  "{\"op\":\"delete_edges\",\"edges\":42}", "bad-request"});
    c->push_back({"mutation-edge-wrong-shape",
                  "{\"op\":\"insert_edges\",\"edges\":[[1]]}",
                  "bad-request"});
    c->push_back({"mutation-endpoint-overflow",
                  "{\"op\":\"delete_edges\",\"edges\":[[0,4294967295]]}",
                  "bad-request"});
    c->push_back({"mutation-unknown-field",
                  "{\"op\":\"insert_edges\",\"edges\":[],\"k\":2}",
                  "bad-request"});
    c->push_back({"compact-with-edges",
                  "{\"op\":\"compact\",\"edges\":[]}", "bad-request"});
    c->push_back({"dynamic-with-edges",
                  "{\"op\":\"decompose\",\"k\":2,\"dynamic\":true,"
                  "\"edges\":[[0,1]]}",
                  "bad-request"});
    c->push_back({"dynamic-with-graph",
                  "{\"op\":\"hierarchy\",\"dynamic\":true,"
                  "\"graph\":\"g.txt\"}",
                  "bad-request"});
    c->push_back({"dynamic-wrong-type",
                  "{\"op\":\"decompose\",\"k\":2,\"dynamic\":1,"
                  "\"edges\":[[0,1]]}",
                  "bad-request"});
    c->push_back({"dynamic-missing-k",
                  "{\"op\":\"decompose\",\"dynamic\":true}", "bad-request"});
    return c;
  }();
  return *corpus;
}

}  // namespace testing
}  // namespace kvcc
