// Deterministic seeded mutation workloads for the dynamic-graph tests.
//
// A MutationScript owns an evolving edge set and emits normalized
// insert/delete batches over it. Because the script tracks the exact
// post-step edge set, a test can Materialize() the reference graph after
// any prefix of steps and compare a cold decomposition of it against the
// incrementally maintained state — the differential harness of
// tests/incremental_test.cc.
#ifndef KVCC_TESTS_SUPPORT_MUTATION_GEN_H_
#define KVCC_TESTS_SUPPORT_MUTATION_GEN_H_

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "util/random.h"

namespace kvcc {
namespace testing {

// One mutation batch: all inserts or all deletes, normalized (u < v, no
// duplicates, inserts absent from / deletes present in the edge set the
// script held when the step was generated) — so every emitted edge is
// effective and VersionedGraph's applied count equals edges.size().
struct MutationStep {
  bool insert = true;
  std::vector<std::pair<VertexId, VertexId>> edges;
};

class MutationScript {
 public:
  // Seeds the script with `base`'s edge set. Identical (base, seed)
  // pairs replay identical step sequences.
  MutationScript(const Graph& base, std::uint64_t seed);

  // Generates the next step and commits it to the tracked edge set.
  // Insert steps occasionally attach a fresh vertex; delete steps pick
  // uniformly among present edges. Never returns an empty batch: an
  // empty or complete edge set forces the other step kind.
  MutationStep Next();

  // The current edge set as a graph on vertices [0, NumVertices()).
  Graph Materialize() const;

  VertexId NumVertices() const { return num_vertices_; }
  std::size_t NumEdges() const { return edges_.size(); }

 private:
  void FillInserts(std::size_t want, MutationStep& step);
  void FillDeletes(std::size_t want, MutationStep& step);

  std::set<std::pair<VertexId, VertexId>> edges_;
  VertexId num_vertices_ = 0;
  Rng rng_;
};

}  // namespace testing
}  // namespace kvcc

#endif  // KVCC_TESTS_SUPPORT_MUTATION_GEN_H_
