// Exponential reference implementations used as oracles in property tests.
// They rely on nothing but BFS connectivity, so they are independent of the
// max-flow / certificate / sweep machinery under test.
#ifndef KVCC_TESTS_SUPPORT_BRUTE_FORCE_H_
#define KVCC_TESTS_SUPPORT_BRUTE_FORCE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace kvcc::testing {

/// kappa(u, v) by enumerating removal sets of increasing size;
/// kvcc::kInfiniteConnectivity (== UINT32_MAX) when (u,v) in E.
/// Feasible for n <= ~16.
std::uint32_t BruteLocalVertexConnectivity(const Graph& g, VertexId u,
                                           VertexId v);

/// Definition-2 check by enumerating all removal sets of size < k.
bool BruteIsKVertexConnected(const Graph& g, std::uint32_t k);

/// kappa(g) by the definition (smallest disconnecting set; n-1 for K_n).
std::uint32_t BruteVertexConnectivity(const Graph& g);

/// All k-VCCs by enumerating every vertex subset (n <= ~14): keep subsets
/// W with |W| > k whose induced subgraph is k-vertex-connected, drop
/// non-maximal ones. Output format matches KvccResult::components.
std::vector<std::vector<VertexId>> BruteKVccs(const Graph& g,
                                              std::uint32_t k);

/// Global minimum edge cut weight by enumerating bipartitions (n <= ~14).
/// Returns UINT64_MAX for graphs with < 2 vertices.
std::uint64_t BruteMinEdgeCutWeight(const Graph& g);

/// Uniform random connected graph: random spanning tree plus `extra_edges`
/// uniform random extra edges. Deterministic in seed.
Graph RandomConnectedGraph(VertexId n, std::uint64_t extra_edges,
                           std::uint64_t seed);

}  // namespace kvcc::testing

#endif  // KVCC_TESTS_SUPPORT_BRUTE_FORCE_H_
