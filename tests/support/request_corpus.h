// A checked-in corpus of malformed kvccd request lines.
//
// Every entry is one wire line that must produce exactly one "error"
// response and leave the connection alive — the protocol's promise for
// arbitrary hostile input. The corpus is shared test data, not a fuzzer:
// entries are hand-picked minimal representatives of each failure class
// (truncated JSON, overlong lines, invalid UTF-8, wrong field types,
// structural abuse), so a regression points at the exact class that
// broke.
#ifndef KVCC_TESTS_SUPPORT_REQUEST_CORPUS_H_
#define KVCC_TESTS_SUPPORT_REQUEST_CORPUS_H_

#include <string>
#include <vector>

namespace kvcc {
namespace testing {

/// One malformed request line and the error class it must produce.
struct MalformedRequest {
  /// Short stable name for test failure messages.
  std::string name;
  /// The raw request line (may contain arbitrary bytes, no newline).
  std::string line;
  /// The "code" field the error response must carry ("malformed",
  /// "overlong", "invalid-utf8", "bad-request").
  std::string expected_code;
};

/// The full corpus, in a fixed deterministic order.
const std::vector<MalformedRequest>& MalformedRequestCorpus();

}  // namespace testing
}  // namespace kvcc

#endif  // KVCC_TESTS_SUPPORT_REQUEST_CORPUS_H_
