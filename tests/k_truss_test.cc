#include "graph/k_truss.h"

#include <gtest/gtest.h>

#include "gen/fixtures.h"
#include "graph/graph.h"
#include "support/brute_force.h"

namespace kvcc {
namespace {

/// Reference: iteratively delete edges with < k-2 triangles until stable.
Graph ReferenceKTruss(const Graph& g, std::uint32_t k) {
  std::vector<std::pair<VertexId, VertexId>> edges = g.Edges();
  bool changed = true;
  while (changed) {
    changed = false;
    const Graph current = Graph::FromEdges(g.NumVertices(), edges);
    std::vector<std::pair<VertexId, VertexId>> kept;
    for (const auto& [u, v] : edges) {
      std::uint32_t triangles = 0;
      for (VertexId w : current.Neighbors(u)) {
        if (w != v && current.HasEdge(w, v)) ++triangles;
      }
      if (triangles + 2 >= k) {
        kept.push_back({u, v});
      } else {
        changed = true;
      }
    }
    edges = std::move(kept);
  }
  return Graph::FromEdges(g.NumVertices(), edges);
}

TEST(KTrussTest, CliqueTrussness) {
  // K_n is an n-truss: every edge lies in n-2 triangles.
  EXPECT_EQ(Trussness(CompleteGraph(5)), 5u);
  EXPECT_EQ(Trussness(CompleteGraph(8)), 8u);
}

TEST(KTrussTest, TriangleFreeGraphsToppedAtTwo) {
  EXPECT_EQ(Trussness(CycleGraph(8)), 2u);
  EXPECT_EQ(Trussness(CompleteBipartite(3, 3)), 2u);
  EXPECT_EQ(Trussness(PathGraph(2)), 2u);
  EXPECT_EQ(Trussness(Graph()), 0u);
}

TEST(KTrussTest, SubgraphDropsWeakEdges) {
  // Triangle with a pendant edge: 3-truss = the triangle only.
  const Graph g = Graph::FromEdges(
      4, std::vector<std::pair<VertexId, VertexId>>{
             {0, 1}, {1, 2}, {0, 2}, {2, 3}});
  const Graph truss = KTrussSubgraph(g, 3);
  EXPECT_EQ(truss.NumVertices(), 3u);
  EXPECT_EQ(truss.NumEdges(), 3u);
}

TEST(KTrussTest, MatchesReferenceOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Graph g = kvcc::testing::RandomConnectedGraph(20, 50, seed);
    for (std::uint32_t k = 3; k <= 5; ++k) {
      const Graph fast = KTrussSubgraph(g, k);
      const Graph reference = ReferenceKTruss(g, k);
      EXPECT_EQ(fast.NumEdges(), reference.NumEdges())
          << "seed=" << seed << " k=" << k;
      for (const auto& [u, v] : fast.Edges()) {
        EXPECT_TRUE(reference.HasEdge(fast.LabelOf(u), fast.LabelOf(v)))
            << "seed=" << seed;
      }
    }
  }
}

TEST(KTrussTest, TrussNumbersMonotoneUnderK) {
  // truss(e) >= k  <=>  e survives in the k-truss.
  const Graph g = kvcc::testing::RandomConnectedGraph(24, 80, 3);
  const auto edges = g.Edges();
  const auto truss = TrussNumbers(g);
  for (std::uint32_t k = 3; k <= 6; ++k) {
    const Graph sub = ReferenceKTruss(g, k);
    for (std::uint64_t e = 0; e < edges.size(); ++e) {
      EXPECT_EQ(truss[e] >= k, sub.HasEdge(edges[e].first, edges[e].second))
          << "k=" << k << " edge=" << edges[e].first << "-"
          << edges[e].second;
    }
  }
}

TEST(KTrussTest, Figure1TrussAlsoMergesBlocks) {
  // Even the strict 5-truss keeps G1..G3 glued through the shared
  // structures — the free-rider effect the paper's k-VCCs avoid.
  const Figure1Fixture f = MakeFigure1Graph();
  const Graph truss = KTrussSubgraph(f.graph, 5);
  EXPECT_GT(truss.NumVertices(), 7u);  // More than one block survives.
}

}  // namespace
}  // namespace kvcc
