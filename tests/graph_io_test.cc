#include "graph/graph_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/graph.h"

namespace kvcc {
namespace {

TEST(GraphIoTest, ParsesEdgeListWithComments) {
  std::istringstream in(
      "# a SNAP-style header\n"
      "% another comment style\n"
      "0 1\n"
      "1 2\n"
      "\n"
      "2 0\n");
  const Graph g = ReadEdgeList(in);
  EXPECT_EQ(g.NumVertices(), 3u);
  EXPECT_EQ(g.NumEdges(), 3u);
}

TEST(GraphIoTest, CompactsSparseIdsAndKeepsLabels) {
  std::istringstream in("100 205\n205 4000000\n");
  const Graph g = ReadEdgeList(in);
  EXPECT_EQ(g.NumVertices(), 3u);
  EXPECT_EQ(g.NumEdges(), 2u);
  // Labels preserve the original ids in first-seen order.
  EXPECT_EQ(g.LabelOf(0), 100u);
  EXPECT_EQ(g.LabelOf(1), 205u);
  EXPECT_EQ(g.LabelOf(2), 4000000u);
}

TEST(GraphIoTest, ThrowsOnMalformedLine) {
  std::istringstream in("0 1\nbogus line\n");
  EXPECT_THROW(ReadEdgeList(in), std::runtime_error);
}

TEST(GraphIoTest, ThrowsOnMissingFile) {
  EXPECT_THROW(ReadEdgeListFile("/nonexistent/path/graph.txt"),
               std::runtime_error);
}

TEST(GraphIoTest, RoundTripPreservesStructure) {
  std::istringstream in("5 7\n7 9\n9 5\n9 11\n");
  const Graph g = ReadEdgeList(in);
  std::ostringstream out;
  WriteEdgeList(g, out);
  std::istringstream back(out.str());
  const Graph g2 = ReadEdgeList(back);
  EXPECT_EQ(g2.NumVertices(), g.NumVertices());
  EXPECT_EQ(g2.NumEdges(), g.NumEdges());
  // Same label universe.
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    SCOPED_TRACE(v);
    // Find g.LabelOf(v) among g2's labels.
    bool found = false;
    for (VertexId w = 0; w < g2.NumVertices(); ++w) {
      if (g2.LabelOf(w) == g.LabelOf(v)) found = true;
    }
    EXPECT_TRUE(found);
  }
}

TEST(GraphIoTest, FileRoundTrip) {
  std::istringstream in("0 1\n1 2\n2 3\n3 0\n");
  const Graph g = ReadEdgeList(in);
  const std::string path = ::testing::TempDir() + "/kvcc_io_test.txt";
  WriteEdgeListFile(g, path);
  const Graph g2 = ReadEdgeListFile(path);
  EXPECT_EQ(g2.NumVertices(), 4u);
  EXPECT_EQ(g2.NumEdges(), 4u);
}

}  // namespace
}  // namespace kvcc
