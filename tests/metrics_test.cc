#include <gtest/gtest.h>

#include "gen/fixtures.h"
#include "graph/graph.h"
#include "metrics/clustering.h"
#include "metrics/cohesion_report.h"
#include "metrics/density.h"
#include "metrics/diameter.h"
#include "support/brute_force.h"

namespace kvcc {
namespace {

TEST(DiameterTest, ClassicGraphs) {
  EXPECT_EQ(ExactDiameter(CompleteGraph(7)), 1u);
  EXPECT_EQ(ExactDiameter(PathGraph(9)), 8u);
  EXPECT_EQ(ExactDiameter(CycleGraph(10)), 5u);
  EXPECT_EQ(ExactDiameter(CycleGraph(9)), 4u);
  EXPECT_EQ(ExactDiameter(GridGraph(3, 4)), 5u);
  EXPECT_EQ(ExactDiameter(PetersenGraph()), 2u);
  EXPECT_EQ(ExactDiameter(CompleteGraph(1)), 0u);
  EXPECT_EQ(ExactDiameter(Graph()), 0u);
}

TEST(DiameterTest, IfubMatchesAllPairsOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Graph g = kvcc::testing::RandomConnectedGraph(
        40, 10 + seed * 7 % 80, seed);
    EXPECT_EQ(ExactDiameter(g), DiameterByAllPairsBfs(g)) << "seed=" << seed;
  }
}

TEST(DiameterTest, PaperUpperBoundFormula) {
  // Fig. 1 narrative: a 4-VCC with 9 vertices and kappa = 4 has
  // diameter <= floor((9-2)/4) + 1 = 2.
  EXPECT_EQ(KvccDiameterUpperBound(9, 4), 2u);
  EXPECT_EQ(KvccDiameterUpperBound(100, 7), 15u);
}

TEST(DensityTest, KnownValues) {
  EXPECT_DOUBLE_EQ(EdgeDensity(CompleteGraph(5)), 1.0);
  EXPECT_DOUBLE_EQ(EdgeDensity(CycleGraph(4)), 4.0 * 2 / (4 * 3));
  EXPECT_DOUBLE_EQ(EdgeDensity(CompleteGraph(1)), 0.0);
  EXPECT_DOUBLE_EQ(EdgeDensity(Graph()), 0.0);
}

TEST(ClusteringTest, TriangleIsFullyClustered) {
  const Graph g = CompleteGraph(3);
  EXPECT_DOUBLE_EQ(AverageClusteringCoefficient(g), 1.0);
  EXPECT_DOUBLE_EQ(LocalClusteringCoefficient(g, 0), 1.0);
}

TEST(ClusteringTest, StarHasZeroClustering) {
  const Graph g = Graph::FromEdges(
      5, std::vector<std::pair<VertexId, VertexId>>{
             {0, 1}, {0, 2}, {0, 3}, {0, 4}});
  EXPECT_DOUBLE_EQ(AverageClusteringCoefficient(g), 0.0);
}

TEST(ClusteringTest, PaperFormulaOnMixedGraph) {
  // Triangle 0-1-2 plus pendant 3 attached to 0.
  const Graph g = Graph::FromEdges(
      4, std::vector<std::pair<VertexId, VertexId>>{
             {0, 1}, {1, 2}, {0, 2}, {0, 3}});
  // c(0) = 1 triangle / C(3,2) = 1/3; c(1) = c(2) = 1; c(3) = 0 (deg 1).
  EXPECT_DOUBLE_EQ(LocalClusteringCoefficient(g, 0), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(LocalClusteringCoefficient(g, 1), 1.0);
  EXPECT_DOUBLE_EQ(LocalClusteringCoefficient(g, 3), 0.0);
  EXPECT_DOUBLE_EQ(AverageClusteringCoefficient(g),
                   (1.0 / 3.0 + 1.0 + 1.0 + 0.0) / 4.0);
}

TEST(ClusteringTest, TriangleCounts) {
  EXPECT_EQ(TriangleCount(CompleteGraph(5)), 10u);  // C(5,3)
  EXPECT_EQ(TriangleCount(CycleGraph(6)), 0u);
  const auto per_vertex = TrianglesPerVertex(CompleteGraph(4));
  for (VertexId v = 0; v < 4; ++v) EXPECT_EQ(per_vertex[v], 3u);
}

TEST(CohesionReportTest, AveragesOverComponents) {
  const Graph g = CompleteGraph(6);
  const std::vector<std::vector<VertexId>> comps = {{0, 1, 2}, {3, 4, 5}};
  const CohesionSummary summary = SummarizeComponents(g, comps);
  EXPECT_EQ(summary.component_count, 2u);
  EXPECT_DOUBLE_EQ(summary.avg_diameter, 1.0);
  EXPECT_DOUBLE_EQ(summary.avg_edge_density, 1.0);
  EXPECT_DOUBLE_EQ(summary.avg_clustering, 1.0);
  EXPECT_DOUBLE_EQ(summary.avg_size, 3.0);
}

TEST(CohesionReportTest, EmptyInput) {
  const CohesionSummary summary = SummarizeComponents(CompleteGraph(3), {});
  EXPECT_EQ(summary.component_count, 0u);
  EXPECT_DOUBLE_EQ(summary.avg_diameter, 0.0);
}

}  // namespace
}  // namespace kvcc
