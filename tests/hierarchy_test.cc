#include "kvcc/hierarchy.h"

#include <gtest/gtest.h>

#include "gen/fixtures.h"
#include "gen/planted_vcc.h"
#include "graph/graph.h"
#include "kvcc/engine.h"
#include "kvcc/kvcc_enum.h"
#include "support/brute_force.h"

namespace kvcc {
namespace {

/// Field-by-field equality of two hierarchies (vertices, nesting links,
/// level grouping, and per-vertex cohesion).
void ExpectSameHierarchy(const KvccHierarchy& a, const KvccHierarchy& b,
                         VertexId num_vertices, const std::string& context) {
  ASSERT_EQ(a.nodes.size(), b.nodes.size()) << context;
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].level, b.nodes[i].level) << context << " node " << i;
    EXPECT_EQ(a.nodes[i].vertices, b.nodes[i].vertices)
        << context << " node " << i;
    EXPECT_EQ(a.nodes[i].parent, b.nodes[i].parent) << context << " node "
                                                    << i;
    EXPECT_EQ(a.nodes[i].children, b.nodes[i].children)
        << context << " node " << i;
  }
  EXPECT_EQ(a.levels, b.levels) << context;
  for (VertexId v = 0; v < num_vertices; ++v) {
    EXPECT_EQ(a.CohesionOf(v), b.CohesionOf(v)) << context << " v=" << v;
  }
  EXPECT_EQ(a.stats.kvccs_found, b.stats.kvccs_found) << context;
  EXPECT_EQ(a.stats.global_cut_calls, b.stats.global_cut_calls) << context;
}

TEST(HierarchyTest, CliqueHasSingleChain) {
  const Graph g = CompleteGraph(6);
  const KvccHierarchy h = BuildKvccHierarchy(g);
  EXPECT_EQ(h.MaxLevel(), 5u);  // K6 is 5-connected with 6 > 5 vertices.
  for (std::uint32_t k = 1; k <= 5; ++k) {
    ASSERT_EQ(h.NodesAtLevel(k).size(), 1u) << "k=" << k;
    EXPECT_EQ(h.nodes[h.NodesAtLevel(k)[0]].vertices.size(), 6u);
  }
  EXPECT_TRUE(h.NodesAtLevel(6).empty());
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(h.CohesionOf(v), 5u);
}

TEST(HierarchyTest, EveryLevelMatchesDirectEnumeration) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Graph g = kvcc::testing::RandomConnectedGraph(30, 70, seed);
    const KvccHierarchy h = BuildKvccHierarchy(g);
    for (std::uint32_t k = 1; k <= h.MaxLevel() + 1; ++k) {
      EXPECT_EQ(h.ComponentsAtLevel(k), EnumerateKVccs(g, k).components)
          << "seed=" << seed << " k=" << k;
    }
  }
}

TEST(HierarchyTest, ThreadedBuildMatchesSerialExactly) {
  // The engine-driven build submits each level's parents as independent
  // jobs; the merged hierarchy must be identical to the serial one for
  // every worker count.
  std::vector<Graph> inputs;
  inputs.push_back(MakeFigure1Graph().graph);
  inputs.push_back(kvcc::testing::RandomConnectedGraph(30, 70, 3));
  PlantedVccConfig config;
  config.num_blocks = 4;
  config.block_size_min = 12;
  config.block_size_max = 18;
  config.connectivity = 7;
  config.overlap = 2;
  config.bridge_edges = 1;
  config.seed = 77;
  inputs.push_back(GeneratePlantedVcc(config).graph);

  for (std::size_t gi = 0; gi < inputs.size(); ++gi) {
    const Graph& g = inputs[gi];
    KvccOptions serial_options;
    serial_options.num_threads = 1;
    const KvccHierarchy serial = BuildKvccHierarchy(g, 0, serial_options);
    for (std::uint32_t threads : {2u, 8u}) {
      KvccOptions options;
      options.num_threads = threads;
      const KvccHierarchy parallel = BuildKvccHierarchy(g, 0, options);
      ExpectSameHierarchy(serial, parallel, g.NumVertices(),
                          "graph=" + std::to_string(gi) +
                              " threads=" + std::to_string(threads));
    }
  }
}

TEST(HierarchyTest, SharedEngineBuildMatchesSerial) {
  // Several hierarchies built back to back on one warm engine.
  const Figure1Fixture f = MakeFigure1Graph();
  KvccOptions serial_options;
  serial_options.num_threads = 1;
  const KvccHierarchy serial =
      BuildKvccHierarchy(f.graph, 0, serial_options);
  KvccEngine engine(4);
  for (int round = 0; round < 3; ++round) {
    const KvccHierarchy shared = BuildKvccHierarchy(engine, f.graph);
    ExpectSameHierarchy(serial, shared, f.graph.NumVertices(),
                        "round=" + std::to_string(round));
  }
}

TEST(HierarchyTest, ParentsNestChildren) {
  const Figure1Fixture f = MakeFigure1Graph();
  const KvccHierarchy h = BuildKvccHierarchy(f.graph);
  for (const auto& node : h.nodes) {
    if (node.parent == HierarchyNode::kNoParent) {
      EXPECT_EQ(node.level, 1u);
      continue;
    }
    const HierarchyNode& parent = h.nodes[node.parent];
    EXPECT_EQ(parent.level + 1, node.level);
    // The child's vertex set is contained in the parent's.
    EXPECT_TRUE(std::includes(parent.vertices.begin(),
                              parent.vertices.end(),
                              node.vertices.begin(), node.vertices.end()));
  }
}

TEST(HierarchyTest, Figure1LevelsTellTheStory) {
  const Figure1Fixture f = MakeFigure1Graph();
  const KvccHierarchy h = BuildKvccHierarchy(f.graph);
  // Level 1: one connected component. Level 4: the four blocks.
  EXPECT_EQ(h.NodesAtLevel(1).size(), 1u);
  EXPECT_EQ(h.ComponentsAtLevel(4), f.expected_vccs);
  // The K7 blocks survive to level 6, the K6 blocks only to level 5.
  EXPECT_EQ(h.NodesAtLevel(6).size(), 2u);
  EXPECT_EQ(h.NodesAtLevel(7).size(), 0u);
}

TEST(HierarchyTest, CohesionOfTracksDeepestLevel) {
  const Graph g = TwoCliquesSharing(6, 2);  // K6s sharing 2 vertices.
  const KvccHierarchy h = BuildKvccHierarchy(g);
  // Every vertex is in a K6 -> cohesion 5; shared vertices no higher.
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(h.CohesionOf(v), 5u);
  }
  EXPECT_EQ(h.CohesionOf(9999), 0u);  // Out of range is safe.
}

TEST(HierarchyTest, MaxLevelCapRespected) {
  const Graph g = CompleteGraph(8);
  const KvccHierarchy h = BuildKvccHierarchy(g, /*max_level=*/3);
  EXPECT_EQ(h.MaxLevel(), 3u);
}

TEST(HierarchyTest, PlantedBlocksAppearAtTheirLevel) {
  PlantedVccConfig config;
  config.num_blocks = 4;
  config.block_size_min = 14;
  config.block_size_max = 18;
  config.connectivity = 6;
  config.overlap = 1;
  config.bridge_edges = 1;
  config.seed = 12;
  const PlantedVccGraph planted = GeneratePlantedVcc(config);
  const KvccHierarchy h =
      BuildKvccHierarchy(planted.graph, planted.max_connected_k);
  EXPECT_EQ(h.ComponentsAtLevel(planted.max_connected_k), planted.blocks);
}

}  // namespace
}  // namespace kvcc
