#include "kvcc/hierarchy.h"

#include <gtest/gtest.h>

#include "gen/fixtures.h"
#include "gen/planted_vcc.h"
#include "graph/graph.h"
#include "kvcc/kvcc_enum.h"
#include "support/brute_force.h"

namespace kvcc {
namespace {

TEST(HierarchyTest, CliqueHasSingleChain) {
  const Graph g = CompleteGraph(6);
  const KvccHierarchy h = BuildKvccHierarchy(g);
  EXPECT_EQ(h.MaxLevel(), 5u);  // K6 is 5-connected with 6 > 5 vertices.
  for (std::uint32_t k = 1; k <= 5; ++k) {
    ASSERT_EQ(h.NodesAtLevel(k).size(), 1u) << "k=" << k;
    EXPECT_EQ(h.nodes[h.NodesAtLevel(k)[0]].vertices.size(), 6u);
  }
  EXPECT_TRUE(h.NodesAtLevel(6).empty());
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(h.CohesionOf(v), 5u);
}

TEST(HierarchyTest, EveryLevelMatchesDirectEnumeration) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Graph g = kvcc::testing::RandomConnectedGraph(30, 70, seed);
    const KvccHierarchy h = BuildKvccHierarchy(g);
    for (std::uint32_t k = 1; k <= h.MaxLevel() + 1; ++k) {
      EXPECT_EQ(h.ComponentsAtLevel(k), EnumerateKVccs(g, k).components)
          << "seed=" << seed << " k=" << k;
    }
  }
}

TEST(HierarchyTest, ParentsNestChildren) {
  const Figure1Fixture f = MakeFigure1Graph();
  const KvccHierarchy h = BuildKvccHierarchy(f.graph);
  for (const auto& node : h.nodes) {
    if (node.parent == HierarchyNode::kNoParent) {
      EXPECT_EQ(node.level, 1u);
      continue;
    }
    const HierarchyNode& parent = h.nodes[node.parent];
    EXPECT_EQ(parent.level + 1, node.level);
    // The child's vertex set is contained in the parent's.
    EXPECT_TRUE(std::includes(parent.vertices.begin(),
                              parent.vertices.end(),
                              node.vertices.begin(), node.vertices.end()));
  }
}

TEST(HierarchyTest, Figure1LevelsTellTheStory) {
  const Figure1Fixture f = MakeFigure1Graph();
  const KvccHierarchy h = BuildKvccHierarchy(f.graph);
  // Level 1: one connected component. Level 4: the four blocks.
  EXPECT_EQ(h.NodesAtLevel(1).size(), 1u);
  EXPECT_EQ(h.ComponentsAtLevel(4), f.expected_vccs);
  // The K7 blocks survive to level 6, the K6 blocks only to level 5.
  EXPECT_EQ(h.NodesAtLevel(6).size(), 2u);
  EXPECT_EQ(h.NodesAtLevel(7).size(), 0u);
}

TEST(HierarchyTest, CohesionOfTracksDeepestLevel) {
  const Graph g = TwoCliquesSharing(6, 2);  // K6s sharing 2 vertices.
  const KvccHierarchy h = BuildKvccHierarchy(g);
  // Every vertex is in a K6 -> cohesion 5; shared vertices no higher.
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(h.CohesionOf(v), 5u);
  }
  EXPECT_EQ(h.CohesionOf(9999), 0u);  // Out of range is safe.
}

TEST(HierarchyTest, MaxLevelCapRespected) {
  const Graph g = CompleteGraph(8);
  const KvccHierarchy h = BuildKvccHierarchy(g, /*max_level=*/3);
  EXPECT_EQ(h.MaxLevel(), 3u);
}

TEST(HierarchyTest, PlantedBlocksAppearAtTheirLevel) {
  PlantedVccConfig config;
  config.num_blocks = 4;
  config.block_size_min = 14;
  config.block_size_max = 18;
  config.connectivity = 6;
  config.overlap = 1;
  config.bridge_edges = 1;
  config.seed = 12;
  const PlantedVccGraph planted = GeneratePlantedVcc(config);
  const KvccHierarchy h =
      BuildKvccHierarchy(planted.graph, planted.max_connected_k);
  EXPECT_EQ(h.ComponentsAtLevel(planted.max_connected_k), planted.blocks);
}

}  // namespace
}  // namespace kvcc
