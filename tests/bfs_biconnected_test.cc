#include <gtest/gtest.h>

#include <algorithm>

#include "gen/fixtures.h"
#include "graph/bfs.h"
#include "graph/biconnected.h"
#include "graph/graph.h"
#include "kvcc/connectivity.h"
#include "support/brute_force.h"

namespace kvcc {
namespace {

TEST(BfsTest, DistancesOnPath) {
  const Graph g = PathGraph(5);
  std::vector<std::uint32_t> dist;
  const std::uint32_t reached = BfsDistances(g, 0, dist);
  EXPECT_EQ(reached, 5u);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(dist[v], v);
}

TEST(BfsTest, UnreachableMarked) {
  const Graph g = Graph::FromEdges(
      4, std::vector<std::pair<VertexId, VertexId>>{{0, 1}, {2, 3}});
  std::vector<std::uint32_t> dist;
  BfsDistances(g, 0, dist);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], kUnreachable);
}

TEST(BfsTest, OrderStartsAtSourceAndCoversComponent) {
  const Graph g = CycleGraph(6);
  const auto order = BfsOrder(g, 2);
  ASSERT_EQ(order.size(), 6u);
  EXPECT_EQ(order[0], 2u);
}

TEST(BfsTest, FarthestVertexAndEccentricity) {
  const Graph g = PathGraph(7);
  const auto [far, dist] = FarthestVertex(g, 0);
  EXPECT_EQ(far, 6u);
  EXPECT_EQ(dist, 6u);
  EXPECT_EQ(Eccentricity(g, 3), 3u);
}

TEST(BiconnectedTest, PathDecomposesIntoBridgeBlocks) {
  const Graph g = PathGraph(4);
  const auto decomposition = BiconnectedComponents(g);
  EXPECT_EQ(decomposition.blocks.size(), 3u);  // Each edge is a block.
  EXPECT_EQ(decomposition.cut_vertices, (std::vector<VertexId>{1, 2}));
}

TEST(BiconnectedTest, CycleIsOneBlockNoCutVertices) {
  const Graph g = CycleGraph(8);
  const auto decomposition = BiconnectedComponents(g);
  ASSERT_EQ(decomposition.blocks.size(), 1u);
  EXPECT_EQ(decomposition.blocks[0].size(), 8u);
  EXPECT_TRUE(decomposition.cut_vertices.empty());
}

TEST(BiconnectedTest, TwoTrianglesSharingAVertex) {
  // Bowtie: triangles {0,1,2} and {2,3,4} share vertex 2.
  const Graph g = Graph::FromEdges(
      5, std::vector<std::pair<VertexId, VertexId>>{
             {0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}});
  const auto decomposition = BiconnectedComponents(g);
  ASSERT_EQ(decomposition.blocks.size(), 2u);
  EXPECT_EQ(decomposition.cut_vertices, (std::vector<VertexId>{2}));
  std::vector<std::vector<VertexId>> blocks = decomposition.blocks;
  std::sort(blocks.begin(), blocks.end());
  EXPECT_EQ(blocks[0], (std::vector<VertexId>{0, 1, 2}));
  EXPECT_EQ(blocks[1], (std::vector<VertexId>{2, 3, 4}));
}

TEST(BiconnectedTest, IsolatedVerticesFormNoBlock) {
  const Graph g = Graph::FromEdges(
      3, std::vector<std::pair<VertexId, VertexId>>{{0, 1}});
  const auto decomposition = BiconnectedComponents(g);
  EXPECT_EQ(decomposition.blocks.size(), 1u);
}

TEST(BiconnectedTest, BlocksOfAtLeastFiltersBridges) {
  const Graph g = PathGraph(4);
  EXPECT_TRUE(BlocksOfAtLeast(g, 3).empty());
  EXPECT_EQ(BlocksOfAtLeast(g, 2).size(), 3u);
}

// Property: every block with >= 3 vertices is 2-vertex-connected, blocks
// cover all edges, and distinct blocks overlap in at most one vertex.
TEST(BiconnectedTest, RandomGraphsBlockInvariants) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const Graph g = kvcc::testing::RandomConnectedGraph(24, 18, seed);
    const auto decomposition = BiconnectedComponents(g);
    std::uint64_t edge_total = 0;
    for (const auto& block : decomposition.blocks) {
      const Graph sub = g.InducedSubgraph(block);
      edge_total += sub.NumEdges();
      if (block.size() >= 3) {
        EXPECT_TRUE(kvcc::testing::BruteIsKVertexConnected(sub, 2))
            << "seed=" << seed;
      }
    }
    // Blocks partition the edges: induced subgraphs of blocks can only
    // contain block edges because two blocks share at most one vertex.
    EXPECT_EQ(edge_total, g.NumEdges()) << "seed=" << seed;
    for (std::size_t i = 0; i < decomposition.blocks.size(); ++i) {
      for (std::size_t j = i + 1; j < decomposition.blocks.size(); ++j) {
        std::vector<VertexId> overlap;
        std::set_intersection(decomposition.blocks[i].begin(),
                              decomposition.blocks[i].end(),
                              decomposition.blocks[j].begin(),
                              decomposition.blocks[j].end(),
                              std::back_inserter(overlap));
        EXPECT_LE(overlap.size(), 1u) << "seed=" << seed;
      }
    }
  }
}

}  // namespace
}  // namespace kvcc
