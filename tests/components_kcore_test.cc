#include <gtest/gtest.h>

#include <algorithm>

#include "gen/fixtures.h"
#include "graph/connected_components.h"
#include "graph/graph.h"
#include "graph/k_core.h"
#include "support/brute_force.h"

namespace kvcc {
namespace {

TEST(ConnectedComponentsTest, SingleComponent) {
  const Graph g = CycleGraph(5);
  EXPECT_TRUE(IsConnected(g));
  const auto comps = ConnectedComponents(g);
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0].size(), 5u);
}

TEST(ConnectedComponentsTest, MultipleComponentsAndIsolated) {
  Graph g = Graph::FromEdges(
      6, std::vector<std::pair<VertexId, VertexId>>{{0, 1}, {2, 3}});
  EXPECT_FALSE(IsConnected(g));
  const auto comps = ConnectedComponents(g);
  ASSERT_EQ(comps.size(), 4u);  // {0,1}, {2,3}, {4}, {5}
  EXPECT_EQ(comps[0], (std::vector<VertexId>{0, 1}));
  EXPECT_EQ(comps[2], (std::vector<VertexId>{4}));
}

TEST(ConnectedComponentsTest, EmptyGraphIsConnected) {
  EXPECT_TRUE(IsConnected(Graph()));
}

TEST(ConnectedComponentsTest, LabelingCountsMatch) {
  const Graph g = Graph::FromEdges(
      7, std::vector<std::pair<VertexId, VertexId>>{{0, 1}, {1, 2}, {4, 5}});
  const ComponentLabeling labeling = LabelComponents(g);
  EXPECT_EQ(labeling.count, 4u);
  EXPECT_EQ(labeling.component_of[0], labeling.component_of[2]);
  EXPECT_NE(labeling.component_of[0], labeling.component_of[4]);
}

TEST(KCoreTest, CompleteGraphSurvivesUpToDegree) {
  const Graph g = CompleteGraph(6);  // every degree = 5
  EXPECT_EQ(KCoreVertices(g, 5).size(), 6u);
  EXPECT_TRUE(KCoreVertices(g, 6).empty());
}

TEST(KCoreTest, PathPeelsEntirelyAtTwo) {
  const Graph g = PathGraph(10);
  EXPECT_EQ(KCoreVertices(g, 1).size(), 10u);
  EXPECT_TRUE(KCoreVertices(g, 2).empty());
}

TEST(KCoreTest, CorePeelingCascades) {
  // Triangle with a pendant path: 0-1-2 triangle, 2-3-4 path.
  const Graph g = Graph::FromEdges(
      5, std::vector<std::pair<VertexId, VertexId>>{
             {0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}});
  const auto core2 = KCoreVertices(g, 2);
  EXPECT_EQ(core2, (std::vector<VertexId>{0, 1, 2}));
}

TEST(KCoreTest, SubgraphMatchesVertices) {
  const Graph g = MakeFigure1Graph().graph;
  const auto vertices = KCoreVertices(g, 4);
  const Graph core = KCoreSubgraph(g, 4);
  EXPECT_EQ(core.NumVertices(), vertices.size());
}

TEST(KCoreTest, Figure1FourCoreIsWholeGraph) {
  const Figure1Fixture f = MakeFigure1Graph();
  const auto core = KCoreVertices(f.graph, 4);
  EXPECT_EQ(core, f.expected_core);
  // And it is a single connected component, unlike the VCCs/ECCs.
  EXPECT_TRUE(IsConnected(f.graph.InducedSubgraph(core)));
}

TEST(CoreNumbersTest, MatchesKCorePeeling) {
  // core[v] >= k  <=>  v in k-core, for every k.
  const Graph g = kvcc::testing::RandomConnectedGraph(60, 140, 7);
  const auto core = CoreNumbers(g);
  for (std::uint32_t k = 1; k <= 8; ++k) {
    const auto survivors = KCoreVertices(g, k);
    std::vector<VertexId> by_core_number;
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      if (core[v] >= k) by_core_number.push_back(v);
    }
    EXPECT_EQ(survivors, by_core_number) << "k=" << k;
  }
}

TEST(CoreNumbersTest, DegeneracyOfClique) {
  EXPECT_EQ(Degeneracy(CompleteGraph(7)), 6u);
  EXPECT_EQ(Degeneracy(CycleGraph(9)), 2u);
  EXPECT_EQ(Degeneracy(PathGraph(9)), 1u);
}

}  // namespace
}  // namespace kvcc
