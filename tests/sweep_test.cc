#include "kvcc/sweep_context.h"

#include <gtest/gtest.h>

#include "gen/fixtures.h"
#include "graph/graph.h"
#include "kvcc/sparse_certificate.h"

namespace kvcc {
namespace {

class SweepTest : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kNoGroups = 0;
  std::vector<std::vector<VertexId>> no_groups_;
  std::vector<std::uint32_t> no_group_of_;

  void SetupNoGroups(const Graph& g) {
    no_group_of_.assign(g.NumVertices(), kNoGroup);
  }
};

TEST_F(SweepTest, SweepMarksVertex) {
  const Graph g = CompleteGraph(4);
  SetupNoGroups(g);
  std::vector<bool> strong(4, false);
  SweepContext ctx(g, 2, strong, no_groups_, no_group_of_,
                   /*neighbor_sweep=*/true, /*group_sweep=*/false);
  EXPECT_FALSE(ctx.IsSwept(1));
  ctx.Sweep(1, SweepCause::kTested);
  EXPECT_TRUE(ctx.IsSwept(1));
  EXPECT_EQ(ctx.CauseOf(1), SweepCause::kTested);
}

TEST_F(SweepTest, DepositsAccumulateOnNeighbors) {
  // Star: center 0, leaves 1..4; k = 3.
  const Graph g = Graph::FromEdges(
      5, std::vector<std::pair<VertexId, VertexId>>{
             {0, 1}, {0, 2}, {0, 3}, {0, 4}});
  SetupNoGroups(g);
  std::vector<bool> strong(5, false);
  SweepContext ctx(g, 3, strong, no_groups_, no_group_of_, true, false);
  ctx.Sweep(1, SweepCause::kTested);
  ctx.Sweep(2, SweepCause::kTested);
  EXPECT_EQ(ctx.deposit(0), 2u);
  EXPECT_FALSE(ctx.IsSwept(0));
  ctx.Sweep(3, SweepCause::kTested);
  // Third deposit reaches k = 3: center swept by NS rule 2.
  EXPECT_TRUE(ctx.IsSwept(0));
  EXPECT_EQ(ctx.CauseOf(0), SweepCause::kNeighborSweepDeposit);
}

TEST_F(SweepTest, StrongSideVertexSweepsAllNeighbors) {
  const Graph g = CompleteGraph(5);
  SetupNoGroups(g);
  std::vector<bool> strong(5, false);
  strong[0] = true;
  SweepContext ctx(g, 4, strong, no_groups_, no_group_of_, true, false);
  ctx.Sweep(0, SweepCause::kTested);  // Source is the strong vertex.
  for (VertexId v = 1; v < 5; ++v) {
    EXPECT_TRUE(ctx.IsSwept(v));
    EXPECT_EQ(ctx.CauseOf(v), SweepCause::kNeighborSweepSide);
  }
}

TEST_F(SweepTest, CascadeThroughDeposits) {
  // Two hubs: sweeping k neighbors of hub A sweeps A, whose sweep then
  // deposits on hub B's neighborhood.
  // Vertices: 0,1 = hubs; 2,3 = shared neighbors; k = 2.
  const Graph g = Graph::FromEdges(
      4, std::vector<std::pair<VertexId, VertexId>>{
             {0, 2}, {0, 3}, {1, 2}, {1, 3}});
  SetupNoGroups(g);
  std::vector<bool> strong(4, false);
  SweepContext ctx(g, 2, strong, no_groups_, no_group_of_, true, false);
  ctx.Sweep(2, SweepCause::kTested);
  ctx.Sweep(3, SweepCause::kTested);
  // Both hubs reached deposit 2 == k via the cascade.
  EXPECT_TRUE(ctx.IsSwept(0));
  EXPECT_TRUE(ctx.IsSwept(1));
}

TEST_F(SweepTest, NeighborSweepDisabledMeansNoDeposits) {
  const Graph g = CompleteGraph(4);
  SetupNoGroups(g);
  std::vector<bool> strong(4, true);  // Even with strong flags set.
  SweepContext ctx(g, 2, strong, no_groups_, no_group_of_,
                   /*neighbor_sweep=*/false, /*group_sweep=*/false);
  ctx.Sweep(0, SweepCause::kTested);
  EXPECT_TRUE(ctx.IsSwept(0));
  for (VertexId v = 1; v < 4; ++v) {
    EXPECT_FALSE(ctx.IsSwept(v));
    EXPECT_EQ(ctx.deposit(v), 0u);
  }
}

TEST_F(SweepTest, GroupDepositSweepsWholeGroup) {
  // One group of 5 vertices in a clique; k = 3.
  const Graph g = CompleteGraph(6);
  std::vector<bool> strong(6, false);
  std::vector<std::vector<VertexId>> groups = {{0, 1, 2, 3, 4}};
  std::vector<std::uint32_t> group_of = {0, 0, 0, 0, 0, kNoGroup};
  SweepContext ctx(g, 3, strong, groups, group_of,
                   /*neighbor_sweep=*/false, /*group_sweep=*/true);
  ctx.Sweep(0, SweepCause::kTested);
  ctx.Sweep(1, SweepCause::kTested);
  EXPECT_EQ(ctx.group_deposit(0), 2u);
  EXPECT_FALSE(ctx.IsSwept(4));
  ctx.Sweep(2, SweepCause::kTested);
  // Third member reaches group deposit k = 3: whole group swept.
  EXPECT_TRUE(ctx.IsSwept(3));
  EXPECT_TRUE(ctx.IsSwept(4));
  EXPECT_EQ(ctx.CauseOf(4), SweepCause::kGroupSweep);
  EXPECT_FALSE(ctx.IsSwept(5));  // Not in the group.
}

TEST_F(SweepTest, StrongMemberSweepsGroupImmediately) {
  const Graph g = CompleteGraph(5);
  std::vector<bool> strong(5, false);
  strong[1] = true;
  std::vector<std::vector<VertexId>> groups = {{0, 1, 2, 3, 4}};
  std::vector<std::uint32_t> group_of = {0, 0, 0, 0, 0};
  SweepContext ctx(g, 4, strong, groups, group_of,
                   /*neighbor_sweep=*/true, /*group_sweep=*/true);
  ctx.Sweep(1, SweepCause::kTested);  // Strong member: group rule 1.
  for (VertexId v = 0; v < 5; ++v) EXPECT_TRUE(ctx.IsSwept(v));
}

TEST_F(SweepTest, GroupAndNeighborSweepsCompose) {
  // Group {0,1,2} clique + an outside vertex 3 adjacent to all of them.
  // k = 3: sweeping the group deposits 3 onto vertex 3, sweeping it too
  // ("a group sweep can trigger a neighbor sweep", Section 5.2).
  const Graph g = Graph::FromEdges(
      4, std::vector<std::pair<VertexId, VertexId>>{
             {0, 1}, {0, 2}, {1, 2}, {0, 3}, {1, 3}, {2, 3}});
  std::vector<bool> strong(4, false);
  std::vector<std::vector<VertexId>> groups = {{0, 1, 2}};
  std::vector<std::uint32_t> group_of = {0, 0, 0, kNoGroup};
  SweepContext ctx(g, 3, strong, groups, group_of, true, true);
  ctx.Sweep(0, SweepCause::kTested);
  ctx.Sweep(1, SweepCause::kTested);
  ctx.Sweep(2, SweepCause::kTested);  // Group deposit hits 3 -> group done.
  EXPECT_TRUE(ctx.IsSwept(3));
  EXPECT_EQ(ctx.CauseOf(3), SweepCause::kNeighborSweepDeposit);
}

}  // namespace
}  // namespace kvcc
